// Tests for the BLIF reader/writer, both the generic (.names) and the
// mapped (.gate) dialects.

#include <gtest/gtest.h>

#include <sstream>

#include "benchgen/classic.hpp"
#include "benchgen/generators.hpp"
#include "celllib/library.hpp"
#include "netlist/blif.hpp"
#include "util/error.hpp"

namespace tr::netlist {
namespace {

using celllib::CellLibrary;

CellLibrary& lib() {
  static CellLibrary instance = CellLibrary::standard();
  return instance;
}

TEST(BlifReader, ParsesC17) {
  const LogicNetwork net =
      read_blif_logic_string(benchgen::classic_blif("c17"), "c17");
  EXPECT_EQ(net.model(), "c17");
  EXPECT_EQ(net.inputs().size(), 5u);
  EXPECT_EQ(net.outputs().size(), 2u);
  EXPECT_EQ(net.nodes().size(), 6u);
  // Every c17 node is a 2-input NAND.
  for (const LogicNode& node : net.nodes()) {
    EXPECT_EQ(node.function,
              ~(boolfn::TruthTable::variable(2, 0) &
                boolfn::TruthTable::variable(2, 1)))
        << node.name;
  }
}

TEST(BlifReader, C17TruthSpotChecks) {
  const LogicNetwork net =
      read_blif_logic_string(benchgen::classic_blif("c17"));
  // All-zero inputs: every NAND of PIs outputs 1; g22 = nand(g10,g16).
  const auto out0 = net.evaluate({false, false, false, false, false});
  ASSERT_EQ(out0.size(), 2u);
  // g10 = nand(g1,g3) = 1, g11 = nand(g3,g6) = 1, g16 = nand(g2,g11) = 1,
  // g19 = nand(g11,g7) = 1, g22 = nand(1,1) = 0, g23 = nand(1,1) = 0.
  EXPECT_FALSE(out0[0]);
  EXPECT_FALSE(out0[1]);
}

TEST(BlifReader, OffsetCoverAndConstants) {
  const char* text = R"(
.model phases
.inputs a b
.outputs f g one
# f specified through its offset: f = !(a & b)
.names a b f
11 0
.names a b g
11 1
.names one
1
.end
)";
  const LogicNetwork net = read_blif_logic_string(text);
  const auto f_idx = net.node_index("f");
  ASSERT_GE(f_idx, 0);
  EXPECT_EQ(net.nodes()[static_cast<std::size_t>(f_idx)].function,
            ~(boolfn::TruthTable::variable(2, 0) &
              boolfn::TruthTable::variable(2, 1)));
  const auto one_idx = net.node_index("one");
  ASSERT_GE(one_idx, 0);
  EXPECT_TRUE(net.nodes()[static_cast<std::size_t>(one_idx)].function.is_one());
}

TEST(BlifReader, LineContinuationAndComments) {
  const char* text =
      ".model cont\n"
      ".inputs a \\\n"
      "  b\n"
      ".outputs y  # trailing comment\n"
      ".names a b y\n"
      "11 1\n"
      ".end\n";
  const LogicNetwork net = read_blif_logic_string(text);
  EXPECT_EQ(net.inputs().size(), 2u);
  EXPECT_EQ(net.nodes().size(), 1u);
}

TEST(BlifReader, Errors) {
  EXPECT_THROW(
      read_blif_logic_string(".model m\n.inputs a\n.outputs y\n"
                             ".names a y\n1 1\n.latch x y\n.end\n"),
      ParseError);
  // Cube width mismatch.
  EXPECT_THROW(read_blif_logic_string(".model m\n.inputs a b\n.outputs y\n"
                                      ".names a b y\n1 1\n.end\n"),
               ParseError);
  // Mixed output phases.
  EXPECT_THROW(read_blif_logic_string(".model m\n.inputs a b\n.outputs y\n"
                                      ".names a b y\n11 1\n00 0\n.end\n"),
               ParseError);
  // Undriven output.
  EXPECT_THROW(read_blif_logic_string(".model m\n.inputs a\n.outputs nope\n"
                                      ".names a y\n1 1\n.end\n"),
               Error);
  // .gate in the generic reader.
  EXPECT_THROW(read_blif_logic_string(".model m\n.inputs a\n.outputs y\n"
                                      ".gate inv a=a y=y\n.end\n"),
               ParseError);
}

TEST(BlifWriter, LogicRoundTrip) {
  const LogicNetwork original =
      read_blif_logic_string(benchgen::classic_blif("cmp2"));
  std::ostringstream out;
  write_blif(original, out);
  const LogicNetwork reparsed = read_blif_logic_string(out.str(), "rt");
  ASSERT_EQ(reparsed.inputs().size(), original.inputs().size());
  ASSERT_EQ(reparsed.outputs().size(), original.outputs().size());
  // Functional equivalence over all 16 input vectors.
  for (int m = 0; m < 16; ++m) {
    std::vector<bool> in;
    for (int j = 0; j < 4; ++j) in.push_back((m >> j) & 1);
    EXPECT_EQ(original.evaluate(in), reparsed.evaluate(in)) << "vector " << m;
  }
}

TEST(BlifMapped, RoundTripThroughGateDialect) {
  const Netlist original = benchgen::ripple_carry_adder(lib(), 3);
  std::ostringstream out;
  write_blif(original, out);
  const Netlist reparsed = read_blif_mapped_string(out.str(), lib(), "rt");
  EXPECT_EQ(reparsed.gate_count(), original.gate_count());
  EXPECT_EQ(reparsed.primary_inputs().size(),
            original.primary_inputs().size());
  // Functional equivalence over random vectors (7 PIs -> exhaustive).
  const std::size_t n_pi = original.primary_inputs().size();
  for (std::uint64_t m = 0; m < (1ULL << n_pi); ++m) {
    std::vector<bool> in;
    for (std::size_t j = 0; j < n_pi; ++j) in.push_back((m >> j) & 1ULL);
    EXPECT_EQ(original.evaluate(in), reparsed.evaluate(in));
  }
}

TEST(BlifMapped, Errors) {
  EXPECT_THROW(read_blif_mapped_string(".model m\n.inputs a\n.outputs y\n"
                                       ".gate mystery a=a y=y\n.end\n",
                                       lib()),
               ParseError);
  EXPECT_THROW(read_blif_mapped_string(".model m\n.inputs a\n.outputs y\n"
                                       ".gate inv a=a\n.end\n",
                                       lib()),
               ParseError);
  EXPECT_THROW(read_blif_mapped_string(".model m\n.inputs a b\n.outputs y\n"
                                       ".gate nand2 a=a y=y\n.end\n",
                                       lib()),
               ParseError);
  EXPECT_THROW(read_blif_mapped_string(".model m\n.inputs a\n.outputs y\n"
                                       ".gate inv q=a y=y\n.end\n",
                                       lib()),
               ParseError);
}

TEST(BlifFiles, MissingFileThrows) {
  EXPECT_THROW(read_blif_logic_file("/nonexistent/file.blif"), Error);
}

// Parameterized: every embedded classic circuit parses and validates.
class ClassicCircuits : public ::testing::TestWithParam<std::string> {};

TEST_P(ClassicCircuits, ParsesAndValidates) {
  const LogicNetwork net =
      read_blif_logic_string(benchgen::classic_blif(GetParam()));
  EXPECT_NO_THROW(net.validate());
  EXPECT_FALSE(net.inputs().empty());
  EXPECT_FALSE(net.outputs().empty());
}

INSTANTIATE_TEST_SUITE_P(All, ClassicCircuits,
                         ::testing::Values("c17", "fulladder", "cmp2",
                                           "dec2to4"));

}  // namespace
}  // namespace tr::netlist
