// Strict JSON parser unit tests (ISSUE 8): the parser is the server's
// request boundary, so both the accepted language (RFC 8259, exact
// integer preservation) and the rejected one (duplicate keys, leading
// zeros, deep nesting, trailing content) are contract. Diagnostics are
// pinned in the test_parse_errors style: exact "json: offset N: ..."
// strings, byte offsets included.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <string>

#include "util/error.hpp"
#include "util/json.hpp"

namespace tr::util {
namespace {

/// Requires json_parse(text) to throw Error{parse} whose what() is
/// exactly `expected`.
void expect_json_error(const std::string& text, const std::string& expected) {
  try {
    json_parse(text);
    FAIL() << "expected parse error: " << expected;
  } catch (const Error& e) {
    EXPECT_EQ(ErrorCode::parse, e.code());
    EXPECT_STREQ(expected.c_str(), e.what());
  }
}

// ---------------------------------------------------------------------------
// Accepted language

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(json_parse("null").is_null());
  EXPECT_TRUE(json_parse("true").as_bool("v"));
  EXPECT_FALSE(json_parse("false").as_bool("v"));
  EXPECT_EQ(json_parse("\"hi\"").as_string("v"), "hi");
  EXPECT_DOUBLE_EQ(json_parse("1.5").as_double("v"), 1.5);
  EXPECT_DOUBLE_EQ(json_parse("-2.75e-7").as_double("v"), -2.75e-7);
}

TEST(JsonParse, IntegersArePreservedExactly) {
  // Integral lexemes keep exact 64-bit views next to the double — a
  // seed of 2^63 must not round through a double on the way in.
  const JsonValue max_i64 = json_parse("9223372036854775807");
  EXPECT_EQ(max_i64.as_i64("v"), std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(max_i64.as_u64("v"), 9223372036854775807ull);

  const JsonValue max_u64 = json_parse("18446744073709551615");
  EXPECT_EQ(max_u64.as_u64("v"), std::numeric_limits<std::uint64_t>::max());
  EXPECT_THROW(max_u64.as_i64("v"), Error);  // does not fit signed

  const JsonValue negative = json_parse("-1");
  EXPECT_EQ(negative.as_i64("v"), -1);
  EXPECT_THROW(negative.as_u64("v"), Error);

  // A fractional or exponent form is a number but never an "integer",
  // even when its value happens to be integral.
  const JsonValue fractional = json_parse("1.0");
  EXPECT_DOUBLE_EQ(fractional.as_double("v"), 1.0);
  EXPECT_THROW(fractional.as_i64("v"), Error);
  EXPECT_THROW(fractional.as_u64("v"), Error);
}

TEST(JsonParse, ObjectsKeepOrderAndSupportFind) {
  const JsonValue doc = json_parse(R"({"b": 1, "a": {"x": [1, 2, 3]}})");
  ASSERT_EQ(doc.kind, JsonValue::Kind::object);
  ASSERT_EQ(doc.object.size(), 2u);
  EXPECT_EQ(doc.object[0].first, "b");  // document order, not sorted
  EXPECT_EQ(doc.object[1].first, "a");

  const JsonValue* a = doc.find("a");
  ASSERT_NE(a, nullptr);
  const JsonValue* x = a->find("x");
  ASSERT_NE(x, nullptr);
  ASSERT_EQ(x->array.size(), 3u);
  EXPECT_EQ(x->array[2].as_i64("v"), 3);
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(JsonParse, EmptyContainersAndWhitespace) {
  EXPECT_EQ(json_parse(" { } ").object.size(), 0u);
  EXPECT_EQ(json_parse("\n[\t]\r\n").array.size(), 0u);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(json_parse(R"("a\"b\\c\/d\n\t")").as_string("v"), "a\"b\\c/d\n\t");
  EXPECT_EQ(json_parse(R"("Aé")").as_string("v"), "A\xC3\xA9");
  // Surrogate pair: U+1F600 as UTF-8.
  EXPECT_EQ(json_parse(R"("😀")").as_string("v"),
            "\xF0\x9F\x98\x80");
}

TEST(JsonParse, RoundTripsWriterOutput) {
  // The writer and parser are two halves of one wire: whatever the
  // server writes, a client built on the same parser reads back.
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object();
  w.key("name");
  w.value("c17 \"quoted\"");
  w.key("power");
  w.value(1.4874833205017656e-06);
  w.key("gates");
  w.value(std::int64_t{6});
  w.key("entries");
  w.begin_array();
  w.value(true);
  w.null_value();
  w.end_array();
  w.end_object();

  const JsonValue doc = json_parse(out.str());
  EXPECT_EQ(doc.find("name")->as_string("name"), "c17 \"quoted\"");
  EXPECT_DOUBLE_EQ(doc.find("power")->as_double("power"),
                   1.4874833205017656e-06);
  EXPECT_EQ(doc.find("gates")->as_i64("gates"), 6);
  EXPECT_TRUE(doc.find("entries")->array[0].as_bool("v"));
  EXPECT_TRUE(doc.find("entries")->array[1].is_null());
}

// ---------------------------------------------------------------------------
// Rejected language, diagnostics pinned exactly

TEST(JsonParse, RejectsEmptyAndTruncatedInput) {
  expect_json_error("", "json: offset 0: unexpected end of input");
  expect_json_error("   ", "json: offset 3: unexpected end of input");
  expect_json_error("{\"a\": 1", "json: offset 7: unexpected end of input");
  expect_json_error("[1, 2", "json: offset 5: unexpected end of input");
  expect_json_error("\"abc", "json: offset 4: unterminated string");
}

TEST(JsonParse, RejectsTrailingContent) {
  expect_json_error("1 2",
                    "json: offset 2: trailing content after JSON document");
  expect_json_error("{} {}",
                    "json: offset 3: trailing content after JSON document");
}

TEST(JsonParse, RejectsDuplicateKeys) {
  // RFC 8259 leaves duplicate-key behaviour undefined; a strict request
  // boundary must not let {"seed":1,"seed":2} mean either one silently.
  expect_json_error(R"({"a":1,"a":2})",
                    "json: offset 10: duplicate object key 'a'");
}

TEST(JsonParse, RejectsMalformedNumbers) {
  expect_json_error("01", "json: offset 0: invalid number (leading zero)");
  expect_json_error("-", "json: offset 0: invalid number");
  expect_json_error("1.", "json: offset 2: invalid number (missing fraction digits)");
  expect_json_error("1e", "json: offset 2: invalid number (missing exponent digits)");
  expect_json_error("1e999", "json: offset 5: number out of double range");
  // JSON has no non-finite literals: NaN/Infinity are not values.
  expect_json_error("NaN", "json: offset 0: expected a JSON value");
  expect_json_error("Infinity", "json: offset 0: expected a JSON value");
  expect_json_error("-Infinity", "json: offset 0: invalid number");
}

TEST(JsonParse, RejectsMalformedStructure) {
  expect_json_error("[1,]", "json: offset 3: expected a JSON value");
  expect_json_error("{1: 2}",
                    "json: offset 1: expected an object key string");
  expect_json_error("[1 2]", "json: offset 4: expected ',' or ']' in array");
  expect_json_error(R"({"a" 1})", "json: offset 5: expected ':', got '1'");
}

TEST(JsonParse, RejectsBadEscapesAndControlCharacters) {
  expect_json_error(R"("\q")", "json: offset 3: invalid escape sequence");
  expect_json_error(R"("\uZZZZ")",
                    "json: offset 4: invalid hex digit in \\u escape");
  expect_json_error(R"("\ud83d")",
                    "json: offset 7: unpaired UTF-16 surrogate in \\u escape");
  expect_json_error(std::string("\"a\nb\""),
                    "json: offset 2: unescaped control character in string");
}

TEST(JsonParse, RejectsDeepNesting) {
  // 64 levels parse; 65 hit the depth cap (stack-overflow guard for
  // hostile request payloads).
  std::string ok(64, '[');
  ok += std::string(64, ']');
  EXPECT_EQ(json_parse(ok).kind, JsonValue::Kind::array);

  std::string deep(65, '[');
  deep += std::string(65, ']');
  expect_json_error(deep,
                    "json: offset 64: document nested deeper than 64 levels");
}

TEST(JsonParse, AccessorsNameTheFieldInDiagnostics) {
  const JsonValue doc = json_parse(R"({"seed": "one"})");
  try {
    doc.find("seed")->as_u64("seed");
    FAIL() << "expected type error";
  } catch (const Error& e) {
    EXPECT_STREQ("seed must be a non-negative integer", e.what());
  }
}

}  // namespace
}  // namespace tr::util
