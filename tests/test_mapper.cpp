// Tests for technology mapping: functional equivalence against the
// source network, direct matching, complement matching and NAND-NAND
// decomposition.

#include <gtest/gtest.h>

#include "benchgen/classic.hpp"
#include "celllib/library.hpp"
#include "mapper/mapper.hpp"
#include "netlist/blif.hpp"
#include "util/error.hpp"

namespace tr::mapper {
namespace {

using celllib::CellLibrary;
using netlist::LogicNetwork;
using netlist::Netlist;

CellLibrary& lib() {
  static CellLibrary instance = CellLibrary::standard();
  return instance;
}

/// Exhaustive equivalence check (for small input counts).
void expect_equivalent(const LogicNetwork& golden, const Netlist& mapped) {
  const std::size_t n = golden.inputs().size();
  ASSERT_EQ(mapped.primary_inputs().size(), n);
  ASSERT_LE(n, 16u);
  for (std::uint64_t m = 0; m < (1ULL << n); ++m) {
    std::vector<bool> in;
    for (std::size_t j = 0; j < n; ++j) in.push_back((m >> j) & 1ULL);
    EXPECT_EQ(golden.evaluate(in), mapped.evaluate(in)) << "vector " << m;
  }
}

TEST(Mapper, DirectNandMatch) {
  const LogicNetwork net =
      netlist::read_blif_logic_string(benchgen::classic_blif("c17"));
  const Netlist mapped = map_network(net, lib());
  // Six NANDs map 1:1 — no extra gates.
  EXPECT_EQ(mapped.gate_count(), 6);
  for (const auto& g : mapped.gates()) EXPECT_EQ(g.cell, "nand2");
  expect_equivalent(net, mapped);
}

TEST(Mapper, ComplementMatchUsesInverter) {
  // f = a & b: matched as nand2 + inv.
  const char* text =
      ".model andgate\n.inputs a b\n.outputs y\n"
      ".names a b y\n11 1\n.end\n";
  const LogicNetwork net = netlist::read_blif_logic_string(text);
  const Netlist mapped = map_network(net, lib());
  EXPECT_EQ(mapped.gate_count(), 2);
  expect_equivalent(net, mapped);
}

TEST(Mapper, AoiShapeMatchesDirectly) {
  // f = !(ab + c) is exactly aoi21.
  const char* text =
      ".model aoi\n.inputs a b c\n.outputs y\n"
      ".names a b c y\n00- 1\n0-0 1\n-00 1\n.end\n";
  const LogicNetwork net = netlist::read_blif_logic_string(text);
  // Sanity: the cover above is !(ab+c)? Evaluate both ways instead of
  // trusting the comment.
  const Netlist mapped = map_network(net, lib());
  expect_equivalent(net, mapped);
}

TEST(Mapper, XorDecomposes) {
  const char* text =
      ".model x\n.inputs a b\n.outputs y\n"
      ".names a b y\n10 1\n01 1\n.end\n";
  const LogicNetwork net = netlist::read_blif_logic_string(text);
  const Netlist mapped = map_network(net, lib());
  EXPECT_GT(mapped.gate_count(), 1);
  expect_equivalent(net, mapped);
}

TEST(Mapper, AliasAndInverterNodes) {
  const char* text =
      ".model wires\n.inputs a\n.outputs buf inv2\n"
      ".names a buf\n1 1\n"   // buffer = alias
      ".names a inv2\n0 1\n"  // inverter
      ".end\n";
  const LogicNetwork net = netlist::read_blif_logic_string(text);
  const Netlist mapped = map_network(net, lib());
  EXPECT_EQ(mapped.gate_count(), 1);  // only the inverter
  expect_equivalent(net, mapped);
}

TEST(Mapper, SharedInverterCache) {
  // Two nodes needing !a must share one inverter.
  const char* text =
      ".model share\n.inputs a b c\n.outputs y z\n"
      ".names a b y\n01 1\n"   // !a & b
      ".names a c z\n01 1\n"   // !a & c
      ".end\n";
  const LogicNetwork net = netlist::read_blif_logic_string(text);
  const Netlist mapped = map_network(net, lib());
  int inverters = 0;
  for (const auto& g : mapped.gates()) {
    if (g.cell == "inv") ++inverters;
  }
  EXPECT_LE(inverters, 3);  // !a shared; plus the and-gates' inverters
  expect_equivalent(net, mapped);
}

TEST(Mapper, WideFunctionDecomposes) {
  // 6-input AND: needs the nand4 + tree path.
  const char* text =
      ".model wide\n.inputs a b c d e f\n.outputs y\n"
      ".names a b c d e f y\n111111 1\n.end\n";
  const LogicNetwork net = netlist::read_blif_logic_string(text);
  const Netlist mapped = map_network(net, lib());
  expect_equivalent(net, mapped);
}

TEST(Mapper, MultiCubeDecomposition) {
  // f = ab + cd + e!f — three cubes, NAND-NAND structure.
  const char* text =
      ".model sop\n.inputs a b c d e f\n.outputs y\n"
      ".names a b c d e f y\n"
      "11---- 1\n"
      "--11-- 1\n"
      "----10 1\n"
      ".end\n";
  const LogicNetwork net = netlist::read_blif_logic_string(text);
  const Netlist mapped = map_network(net, lib());
  expect_equivalent(net, mapped);
}

TEST(Mapper, ConstantNodeRejected) {
  const char* text =
      ".model k\n.inputs a\n.outputs y\n.names y\n1\n.end\n";
  const LogicNetwork net = netlist::read_blif_logic_string(text);
  EXPECT_THROW(map_network(net, lib()), Error);
}

TEST(Mapper, VacuousFaninDropped) {
  // y depends only on a even though b is listed.
  const char* text =
      ".model vac\n.inputs a b\n.outputs y\n"
      ".names a b y\n10 1\n11 1\n.end\n";
  const LogicNetwork net = netlist::read_blif_logic_string(text);
  const Netlist mapped = map_network(net, lib());
  EXPECT_EQ(mapped.gate_count(), 0);  // y collapses to an alias of a
  expect_equivalent(net, mapped);
}

// Every classic circuit maps and stays equivalent.
class MapClassic : public ::testing::TestWithParam<std::string> {};

TEST_P(MapClassic, EquivalentAfterMapping) {
  const LogicNetwork net =
      netlist::read_blif_logic_string(benchgen::classic_blif(GetParam()));
  const Netlist mapped = map_network(net, lib());
  EXPECT_NO_THROW(mapped.validate());
  expect_equivalent(net, mapped);
}

INSTANTIATE_TEST_SUITE_P(All, MapClassic,
                         ::testing::Values("c17", "fulladder", "cmp2",
                                           "dec2to4"));

}  // namespace
}  // namespace tr::mapper
