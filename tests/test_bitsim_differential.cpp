// Differential suite for the bit-parallel simulation lane (DESIGN.md
// Sec. 11): every extracted lane of a packed 64-replication run must be
// field-identical to the reference event loop run with that lane's seed
// — across seeds, the zero- and unit-delay models, frozen and mixed
// input processes, per-lane truncation and random SP-tree netlists. This
// is the packed lane's entire correctness contract; everything else
// (monte_carlo routing, the perf gate) rides on it.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "benchgen/generators.hpp"
#include "benchgen/suite.hpp"
#include "celllib/library.hpp"
#include "opt/scenario.hpp"
#include "random_sp_tree.hpp"
#include "sim/bitsim.hpp"
#include "sim/sim_engine.hpp"
#include "util/rng.hpp"

namespace tr::sim {
namespace {

using boolfn::SignalStats;
using celllib::CellLibrary;
using celllib::Tech;
using netlist::NetId;
using netlist::Netlist;

CellLibrary& lib() {
  static CellLibrary instance = CellLibrary::standard();
  return instance;
}

/// Field-by-field equality of the semantic (seed-determined) SimResult
/// content; the wall-clock diagnostics are deliberately not compared.
void expect_results_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(a.power, b.power);
  EXPECT_EQ(a.output_node_energy, b.output_node_energy);
  EXPECT_EQ(a.internal_node_energy, b.internal_node_energy);
  EXPECT_EQ(a.pi_energy, b.pi_energy);
  EXPECT_EQ(a.per_gate_energy, b.per_gate_energy);
  EXPECT_EQ(a.per_gate_output_energy, b.per_gate_output_energy);
  ASSERT_EQ(a.nets.size(), b.nets.size());
  for (std::size_t n = 0; n < a.nets.size(); ++n) {
    EXPECT_EQ(a.nets[n].prob, b.nets[n].prob) << "net " << n;
    EXPECT_EQ(a.nets[n].density, b.nets[n].density) << "net " << n;
  }
  EXPECT_EQ(a.event_count, b.event_count);
  EXPECT_EQ(a.truncated, b.truncated);
  EXPECT_EQ(a.measured_time, b.measured_time);
}

/// One packed run vs 64 reference-oracle runs, lane by lane. Returns the
/// scratch's deferred mask so callers can assert on the deferral mix.
std::uint64_t lane_differential_check(
    const Netlist& nl, const std::map<NetId, SignalStats>& stats,
    const SimOptions& opt, std::uint64_t master_seed) {
  const Tech tech;
  const SimEngine engine(nl, stats, tech, opt);
  if (!BitSim::supported(engine)) {
    ADD_FAILURE() << "engine configuration is not packable";
    return 0;
  }
  const BitSim bitsim(engine);
  std::uint64_t seeds[BitSim::lane_count];
  Rng::derive_streams(master_seed, 0, seeds, BitSim::lane_count);
  BitSimScratch scratch;
  bitsim.run(seeds, scratch);
  for (int k = 0; k < BitSim::lane_count; ++k) {
    SCOPED_TRACE(testing::Message() << "lane " << k << " seed " << seeds[k]);
    const SimResult oracle = engine.run_reference(seeds[k]);
    expect_results_identical(bitsim.extract_lane(scratch, k), oracle);
  }
  return scratch.deferred_mask;
}

SimOptions zero_delay_options() {
  SimOptions opt;
  opt.delay_model = DelayModel::zero;
  return opt;
}

SimOptions unit_delay_options(double delay) {
  SimOptions opt;
  opt.delay_model = DelayModel::unit;
  opt.unit_delay = delay;
  return opt;
}

TEST(BitSimDifferential, RippleCarryZeroAndUnitDelay) {
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 4);
  std::map<NetId, SignalStats> stats;
  for (NetId id : nl.primary_inputs()) stats[id] = {0.4, 2e5};
  for (SimOptions opt : {zero_delay_options(), unit_delay_options(1e-9)}) {
    SCOPED_TRACE(testing::Message()
                 << "model "
                 << (opt.delay_model == DelayModel::zero ? "zero" : "unit"));
    opt.measure_time = 4e-4;
    opt.warmup_time = 1e-5;
    for (std::uint64_t master : {1ull, 42ull, 987654321ull}) {
      lane_differential_check(nl, stats, opt, master);
    }
  }
}

TEST(BitSimDifferential, SuiteCircuitScenarioStats) {
  const auto& spec = benchgen::suite_entry("cm85a");
  const Netlist nl = benchgen::build_benchmark(lib(), spec);
  const auto stats = opt::scenario_a(nl, spec.seed ^ 0x5EEDULL);
  for (SimOptions opt : {zero_delay_options(), unit_delay_options(1e-10)}) {
    opt.measure_time = 1e-4;
    lane_differential_check(nl, stats, opt, 7);
  }
}

TEST(BitSimDifferential, RandomSpTreeNetlists) {
  // Random series-parallel cells: deep stacks, many internal nodes,
  // mixed arities, reconvergent fanout — the shared-cascade machinery
  // (same-PI groups, per-lane validity masks) under stress.
  Rng rng(20260808);
  for (int trial = 0; trial < 4; ++trial) {
    SCOPED_TRACE(testing::Message() << "trial " << trial);
    const CellLibrary sp_lib = testutil::random_sp_library(rng, 4);
    const Netlist nl = testutil::random_sp_netlist(sp_lib, rng, 8);
    std::map<NetId, SignalStats> stats;
    for (NetId id : nl.primary_inputs()) {
      stats[id] = {rng.uniform(0.2, 0.8), rng.uniform(1e5, 4e5)};
    }
    SimOptions opt =
        (trial % 2) == 0 ? zero_delay_options() : unit_delay_options(5e-10);
    opt.measure_time = 2e-4;
    opt.warmup_time = 1e-5;
    lane_differential_check(nl, stats, opt,
                            11 + static_cast<std::uint64_t>(trial));
  }
}

TEST(BitSimDifferential, PerLaneTruncationMixedBudgets) {
  // A budget between the lanes' natural event counts truncates some
  // lanes and not others; each lane must match its own oracle exactly —
  // including which lanes carry the truncated flag (the per-lane
  // truncation regression: one lane hitting max_events must not mark the
  // other 63).
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 3);
  std::map<NetId, SignalStats> stats;
  for (NetId id : nl.primary_inputs()) stats[id] = {0.5, 2e5};
  SimOptions opt = zero_delay_options();
  opt.measure_time = 4e-4;
  const Tech tech;
  const SimEngine probe(nl, stats, tech, opt);
  std::uint64_t seeds[BitSim::lane_count];
  Rng::derive_streams(5, 0, seeds, BitSim::lane_count);
  std::uint64_t min_events = ~std::uint64_t{0}, max_events = 0;
  for (int k = 0; k < BitSim::lane_count; ++k) {
    const std::uint64_t events = probe.run_reference(seeds[k]).event_count;
    min_events = std::min(min_events, events);
    max_events = std::max(max_events, events);
  }
  ASSERT_LT(min_events, max_events);
  for (std::uint64_t budget :
       {(min_events + max_events) / 2, std::uint64_t{1}}) {
    SCOPED_TRACE(testing::Message() << "max_events " << budget);
    opt.max_events = budget;
    lane_differential_check(nl, stats, opt, 5);
  }

  // The mixed budget really does produce a mixture.
  opt.max_events = (min_events + max_events) / 2;
  const SimEngine engine(nl, stats, tech, opt);
  const BitSim bitsim(engine);
  BitSimScratch scratch;
  bitsim.run(seeds, scratch);
  EXPECT_NE(scratch.truncated_mask, 0u);
  EXPECT_NE(scratch.truncated_mask, ~std::uint64_t{0});
}

TEST(BitSimDifferential, FrozenAndMixedInputProcesses) {
  // Frozen inputs exercise the empty-calendar lane exit; the mixed case
  // leaves some processes frozen with others toggling.
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 2);
  const std::vector<NetId> pis = nl.primary_inputs();
  std::map<NetId, SignalStats> frozen;
  for (NetId id : pis) frozen[id] = {1.0, 0.0};
  SimOptions opt = zero_delay_options();
  opt.measure_time = 2e-4;
  lane_differential_check(nl, frozen, opt, 3);

  std::map<NetId, SignalStats> mixed = frozen;
  mixed[pis.front()] = {0.5, 3e5};
  lane_differential_check(nl, mixed, opt, 3);
  lane_differential_check(nl, mixed, opt, 4);
}

TEST(BitSimDifferential, UnitDelayDeferralMixtureStaysExact) {
  // A unit delay comparable to the PI toggle gaps forces many lanes
  // through the deferral path (next toggle inside the cascade horizon);
  // deferred lanes are rerun scalar with the same seed and must be just
  // as exact as packed ones.
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 4);
  std::map<NetId, SignalStats> stats;
  for (NetId id : nl.primary_inputs()) stats[id] = {0.5, 3e5};
  SimOptions opt = unit_delay_options(1e-7);
  opt.measure_time = 3e-4;
  opt.warmup_time = 1e-5;
  const std::uint64_t deferred = lane_differential_check(nl, stats, opt, 99);
  EXPECT_NE(deferred, 0u) << "test expected to exercise the deferral path";
}

TEST(BitSimDifferential, UnsupportedConfigurationsAreRejected) {
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 2);
  std::map<NetId, SignalStats> stats;
  for (NetId id : nl.primary_inputs()) stats[id] = {0.5, 2e5};
  const Tech tech;

  SimOptions elmore;
  elmore.delay_model = DelayModel::elmore;
  EXPECT_FALSE(BitSim::supported(SimEngine(nl, stats, tech, elmore)));

  // The legacy flag resolves to elmore by default...
  SimOptions legacy;
  EXPECT_FALSE(BitSim::supported(SimEngine(nl, stats, tech, legacy)));
  // ...and to zero-delay when delays are off.
  legacy.use_gate_delays = false;
  EXPECT_TRUE(BitSim::supported(SimEngine(nl, stats, tech, legacy)));

  // A unit delay below the window's floating-point resolution cannot be
  // ordered by hop count; the lane refuses rather than drifting.
  SimOptions subulp = unit_delay_options(1e-22);
  EXPECT_FALSE(BitSim::supported(SimEngine(nl, stats, tech, subulp)));
}

}  // namespace
}  // namespace tr::sim
