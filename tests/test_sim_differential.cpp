// Differential suite pinning the rewritten simulation hot path
// bit-identical to the retained reference event loop (DESIGN.md
// Sec. 10.5): same SimResult for every seed, both delay models,
// zero-delay mode, truncation, both scheduler lanes, and seeded random
// SP-tree netlists; plus the scratch-reuse contracts — zero steady-state
// allocation on a scaled circuit and Monte-Carlo thread-scratch safety.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "benchgen/generators.hpp"
#include "benchgen/suite.hpp"
#include "celllib/cell.hpp"
#include "celllib/library.hpp"
#include "opt/scenario.hpp"
#include "random_sp_tree.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/sim_engine.hpp"
#include "util/rng.hpp"

// ---------------------------------------------------------------------------
// Allocation counter: global operator new/delete instrumented so the
// no-allocation-growth stress can observe the steady state directly.
// Counting is gated by a flag, so gtest bookkeeping outside the measured
// window stays invisible.
// ---------------------------------------------------------------------------
namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<long> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace tr::sim {
namespace {

using boolfn::SignalStats;
using celllib::CellLibrary;
using celllib::Tech;
using netlist::NetId;
using netlist::Netlist;

CellLibrary& lib() {
  static CellLibrary instance = CellLibrary::standard();
  return instance;
}

/// Field-by-field equality of the semantic (seed-determined) SimResult
/// content; the wall-clock diagnostics are deliberately not compared.
void expect_results_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(a.power, b.power);
  EXPECT_EQ(a.output_node_energy, b.output_node_energy);
  EXPECT_EQ(a.internal_node_energy, b.internal_node_energy);
  EXPECT_EQ(a.pi_energy, b.pi_energy);
  EXPECT_EQ(a.per_gate_energy, b.per_gate_energy);
  EXPECT_EQ(a.per_gate_output_energy, b.per_gate_output_energy);
  ASSERT_EQ(a.nets.size(), b.nets.size());
  for (std::size_t n = 0; n < a.nets.size(); ++n) {
    EXPECT_EQ(a.nets[n].prob, b.nets[n].prob) << "net " << n;
    EXPECT_EQ(a.nets[n].density, b.nets[n].density) << "net " << n;
  }
  EXPECT_EQ(a.event_count, b.event_count);
  EXPECT_EQ(a.truncated, b.truncated);
  EXPECT_EQ(a.measured_time, b.measured_time);
}

/// Fast path (both scheduler lanes) vs the reference oracle on one
/// engine configuration, across several replicate seeds.
void differential_check(const Netlist& nl,
                        const std::map<NetId, SignalStats>& stats,
                        SimOptions opt,
                        const std::vector<std::uint64_t>& seeds) {
  const Tech tech;
  opt.scheduler = SchedulerKind::calendar;
  const SimEngine calendar(nl, stats, tech, opt);
  opt.scheduler = SchedulerKind::heap;
  const SimEngine heap(nl, stats, tech, opt);
  ASSERT_TRUE(calendar.fast_path_available());
  ReplicationScratch scratch;
  for (std::uint64_t seed : seeds) {
    SCOPED_TRACE(testing::Message() << "seed " << seed);
    const SimResult oracle = calendar.run_reference(seed);
    expect_results_identical(calendar.run(seed, scratch), oracle);
    expect_results_identical(heap.run(seed, scratch), oracle);
  }
}

TEST(SimDifferential, RippleCarryBothDelayModels) {
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 4);
  std::map<NetId, SignalStats> stats;
  for (NetId id : nl.primary_inputs()) stats[id] = {0.4, 2e5};
  SimOptions opt;
  opt.measure_time = 6e-4;
  opt.warmup_time = 1e-5;
  for (bool delays : {true, false}) {
    SCOPED_TRACE(testing::Message() << "delays=" << delays);
    opt.use_gate_delays = delays;
    differential_check(nl, stats, opt, {1, 2, 42, 987654321});
  }
}

TEST(SimDifferential, SuiteCircuitScenarioStats) {
  const auto& spec = benchgen::suite_entry("cm85a");
  const Netlist nl = benchgen::build_benchmark(lib(), spec);
  const auto stats = opt::scenario_a(nl, spec.seed ^ 0x5EEDULL);
  SimOptions opt;
  opt.measure_time = 2e-4;
  differential_check(nl, stats, opt, {7, 1234});
}

TEST(SimDifferential, RandomSpTreeNetlists) {
  // Random series-parallel cells: deep stacks, many internal nodes,
  // mixed arities — the gate-level state machinery under stress.
  Rng rng(20260728);
  const Tech tech;
  for (int trial = 0; trial < 4; ++trial) {
    SCOPED_TRACE(testing::Message() << "trial " << trial);
    const CellLibrary sp_lib = testutil::random_sp_library(rng, 4);
    const Netlist nl = testutil::random_sp_netlist(sp_lib, rng, 8);
    std::map<NetId, SignalStats> stats;
    for (NetId id : nl.primary_inputs()) {
      stats[id] = {rng.uniform(0.2, 0.8), rng.uniform(1e5, 4e5)};
    }
    SimOptions opt;
    opt.measure_time = 3e-4;
    opt.warmup_time = 1e-5;
    opt.use_gate_delays = (trial % 2) == 0;
    differential_check(nl, stats, opt, {11 + static_cast<std::uint64_t>(trial)});
  }
}

TEST(SimDifferential, TruncationIsBitIdentical) {
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 3);
  std::map<NetId, SignalStats> stats;
  for (NetId id : nl.primary_inputs()) stats[id] = {0.5, 2e5};
  SimOptions opt;
  opt.measure_time = 6e-4;
  const Tech tech;
  const SimEngine probe(nl, stats, tech, opt);
  const std::uint64_t full_events = probe.run_reference(5).event_count;
  ASSERT_GT(full_events, 50u);
  for (std::uint64_t budget : {full_events / 2, std::uint64_t{1}}) {
    SCOPED_TRACE(testing::Message() << "max_events " << budget);
    opt.max_events = budget;
    differential_check(nl, stats, opt, {5, 6});
  }
}

TEST(SimDifferential, FrozenAndMixedInputProcesses) {
  // Frozen inputs exercise the empty-queue path and the scheduler's
  // degenerate-grid fallback; the mixed case leaves some processes
  // frozen with others toggling.
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 2);
  const std::vector<NetId> pis = nl.primary_inputs();
  std::map<NetId, SignalStats> frozen;
  for (NetId id : pis) frozen[id] = {1.0, 0.0};
  SimOptions opt;
  opt.measure_time = 2e-4;
  differential_check(nl, frozen, opt, {3});

  std::map<NetId, SignalStats> mixed = frozen;
  mixed[pis.front()] = {0.5, 3e5};
  differential_check(nl, mixed, opt, {3, 4});
}

TEST(SimDifferential, PiStatsTableMatchesMapBoundary) {
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 3);
  std::map<NetId, SignalStats> stats;
  for (NetId id : nl.primary_inputs()) stats[id] = {0.3, 1e5};
  const Tech tech;
  SimOptions opt;
  opt.measure_time = 4e-4;
  const SimEngine from_map(nl, stats, tech, opt);
  const SimEngine from_table(
      nl, PiStatsTable(nl.net_count(), stats), tech, opt);
  expect_results_identical(from_map.run(9), from_table.run(9));

  // Missing-PI validation holds for the flat boundary too.
  PiStatsTable incomplete(nl.net_count());
  EXPECT_THROW(SimEngine(nl, incomplete, tech, opt), Error);
}

TEST(SimDifferential, MonteCarloSummariesMatchPreRewriteAccumulation) {
  // The MC layer folds fast-path results; replaying the fold over
  // reference results must give the identical summary (scratch reuse and
  // the scheduler drop out of the estimates entirely).
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 3);
  const auto stats = opt::scenario_b(nl, 2e6);
  const Tech tech;
  MonteCarloOptions mc;
  mc.sim.seed = 77;
  mc.sim.measure_time = 3e-4;
  mc.sim.warmup_time = 1e-5;
  mc.replications = 8;
  mc.threads = 2;
  const SimEngine engine(nl, stats, tech, mc.sim);
  const SimSummary summary = monte_carlo(engine, mc);
  ASSERT_EQ(summary.replications, 8u);
  for (std::size_t k = 0; k < 8; ++k) {
    const SimResult oracle =
        engine.run_reference(Rng::derive_stream(mc.sim.seed, k));
    EXPECT_EQ(summary.replicate_energy[k], oracle.energy) << "replicate " << k;
  }
  EXPECT_GT(summary.events_per_sec, 0.0);
  EXPECT_GT(summary.scratch_high_water_bytes, 0u);
}

TEST(SimDifferential, ScaledCircuitSteadyStateDoesNotAllocate) {
  // Slow-tier stress (ISSUE 5): on a scaled-suite circuit, replications
  // reusing one scratch + one result must reach an allocation-free
  // steady state — the arena high-water stabilises and the global
  // operator-new counter stays at zero across later replications.
  const auto& spec = benchgen::suite_entry("syn1000");
  const Netlist nl = benchgen::build_benchmark(lib(), spec);
  const auto stats = opt::scenario_a(nl, spec.seed);
  const Tech tech;
  SimOptions opt;
  // A short window keeps the test fast; the state arenas (the thing the
  // contract is about) are sized by the circuit, not the window.
  opt.measure_time = 2e-5;
  opt.warmup_time = 2e-6;
  const SimEngine engine(nl, stats, tech, opt);
  ASSERT_TRUE(engine.fast_path_available());

  ReplicationScratch scratch;
  SimResult result;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    engine.run(seed, scratch, result);  // warmup: arenas grow to size
  }
  const std::size_t warm_bytes = scratch.high_water_bytes();
  EXPECT_GT(warm_bytes, 0u);

  g_alloc_count.store(0);
  g_count_allocs.store(true);
  for (std::uint64_t seed = 5; seed <= 16; ++seed) {
    engine.run(seed, scratch, result);
  }
  g_count_allocs.store(false);
  EXPECT_EQ(g_alloc_count.load(), 0)
      << "steady-state replications allocated";
  EXPECT_EQ(scratch.high_water_bytes(), warm_bytes);
  EXPECT_EQ(result.scratch_bytes, warm_bytes);
  EXPECT_FALSE(result.truncated);
}

TEST(SimDifferential, ScaledCircuitFastPathMatchesOracle) {
  // One scaled-tier differential point (slow tier): the whole reason the
  // rewrite is trusted on the syn tier.
  const auto& spec = benchgen::suite_entry("syn1000");
  const Netlist nl = benchgen::build_benchmark(lib(), spec);
  const auto stats = opt::scenario_a(nl, spec.seed);
  SimOptions opt;
  opt.measure_time = 2e-5;
  opt.warmup_time = 2e-6;
  differential_check(nl, stats, opt, {2026});
}

}  // namespace
}  // namespace tr::sim
