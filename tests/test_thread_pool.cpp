// Tests for util::ThreadPool, the gate-parallel traversal's engine:
// every index runs exactly once, results land in disjoint slots
// regardless of thread count, exceptions propagate, and the pool is
// reusable across jobs (the optimizer calls parallel_for once per
// optimize() invocation on a long-lived pool).

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace tr::util {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 7}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.thread_count(), threads);
    std::vector<std::atomic<int>> hits(257);
    pool.parallel_for(hits.size(),
                      [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPool, DisjointSlotWritesAreDeterministic) {
  // The optimizer's usage pattern: worker i writes only slot i, so the
  // result must be independent of scheduling and thread count.
  std::vector<long> expected(1000);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    expected[i] = static_cast<long>(i * i + 7);
  }
  for (int threads : {1, 3, 8}) {
    ThreadPool pool(threads);
    std::vector<long> out(expected.size(), -1);
    pool.parallel_for(out.size(), [&](std::size_t i) {
      out[i] = static_cast<long>(i * i + 7);
    });
    EXPECT_EQ(out, expected);
  }
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(3);
  long total = 0;
  for (int round = 0; round < 20; ++round) {
    std::vector<long> out(64, 0);
    pool.parallel_for(out.size(), [&](std::size_t i) {
      out[i] = static_cast<long>(i) + round;
    });
    total += std::accumulate(out.begin(), out.end(), 0L);
  }
  // sum over rounds of sum_i (i + round), i < 64.
  long expected = 0;
  for (int round = 0; round < 20; ++round) {
    expected += 64L * 63 / 2 + 64L * round;
  }
  EXPECT_EQ(total, expected);
}

TEST(ThreadPool, PropagatesExceptions) {
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    EXPECT_THROW(pool.parallel_for(100,
                                   [](std::size_t i) {
                                     if (i == 37) {
                                       throw std::runtime_error("boom");
                                     }
                                   }),
                 std::runtime_error);
    // The pool survives a failed job.
    std::atomic<int> count{0};
    pool.parallel_for(10, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 10);
  }
}

TEST(ThreadPool, PreservesExceptionTypeAndMessage) {
  // The fault-isolation layer classifies failures by tr::Error code, so
  // the pool must rethrow the original exception object at the join —
  // not a wrapper, not a stripped copy.
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    try {
      pool.parallel_for(50, [](std::size_t i) {
        if (i == 13) {
          Error e("circuit exploded", ErrorCode::parse);
          e.add_site("score");
          throw e;
        }
      });
      FAIL() << "expected tr::Error";
    } catch (const Error& e) {
      EXPECT_EQ(ErrorCode::parse, e.code());
      EXPECT_STREQ("circuit exploded", e.what());
      EXPECT_EQ("score", e.site_chain());
    }
  }
}

TEST(ThreadPool, SurvivesManyFailedJobs) {
  // A long-lived pool (the batch driver's) must not leak state from a
  // failed generation into the next: alternate failing and succeeding
  // jobs on one pool.
  ThreadPool pool(3);
  for (int round = 0; round < 25; ++round) {
    EXPECT_THROW(pool.parallel_for(40,
                                   [&](std::size_t i) {
                                     if (i == static_cast<std::size_t>(
                                                  round % 40)) {
                                       throw Error("round failure");
                                     }
                                   }),
                 Error);
    std::atomic<int> count{0};
    pool.parallel_for(40, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 40) << "round " << round;
  }
}

TEST(ThreadPool, ConcurrentThrowersPropagateExactlyOne) {
  // Every index throws; exactly one exception reaches the caller and
  // the rest are swallowed with their indices aborted.
  for (int threads : {1, 4, 8}) {
    ThreadPool pool(threads);
    int caught = 0;
    try {
      pool.parallel_for(100, [](std::size_t i) {
        throw Error("thrower " + std::to_string(i));
      });
    } catch (const Error&) {
      ++caught;
    }
    EXPECT_EQ(caught, 1);
    // And the pool still works afterwards.
    std::atomic<int> count{0};
    pool.parallel_for(16, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 16);
  }
}

TEST(ThreadPool, HandlesEmptyAndSingleElementRanges) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, DefaultSizeUsesHardware) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1);
}

}  // namespace
}  // namespace tr::util
