// Property suite for the bit-parallel simulation lane (DESIGN.md
// Sec. 11): per-lane energy-accounting identities, engine purity (same
// seeds, any scratch history -> identical extractions), and lane
// independence — each lane reproduces its own scalar stream and the
// cross-lane energies behave like independent samples.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "benchgen/generators.hpp"
#include "celllib/library.hpp"
#include "sim/bitsim.hpp"
#include "sim/sim_engine.hpp"
#include "util/rng.hpp"

namespace tr::sim {
namespace {

using boolfn::SignalStats;
using celllib::CellLibrary;
using celllib::Tech;
using netlist::NetId;
using netlist::Netlist;

CellLibrary& lib() {
  static CellLibrary instance = CellLibrary::standard();
  return instance;
}

struct Fixture {
  Netlist nl;
  std::map<NetId, SignalStats> stats;
  Tech tech;
  SimOptions opt;

  explicit Fixture(DelayModel model, double unit_delay = 1e-9)
      : nl(benchgen::ripple_carry_adder(lib(), 4)) {
    for (NetId id : nl.primary_inputs()) stats[id] = {0.45, 2.5e5};
    opt.delay_model = model;
    opt.unit_delay = unit_delay;
    opt.measure_time = 4e-4;
    opt.warmup_time = 1e-5;
  }
};

void expect_close(double a, double b, double rel = 1e-9) {
  EXPECT_NEAR(a, b, rel * (std::abs(a) + std::abs(b) + 1e-300));
}

TEST(BitSimProperties, EnergyAccountingIdentityHoldsPerLane) {
  for (DelayModel model : {DelayModel::zero, DelayModel::unit}) {
    SCOPED_TRACE(testing::Message()
                 << "model " << (model == DelayModel::zero ? "zero" : "unit"));
    const Fixture f(model);
    const SimEngine engine(f.nl, f.stats, f.tech, f.opt);
    const BitSim bitsim(engine);
    std::uint64_t seeds[BitSim::lane_count];
    Rng::derive_streams(17, 0, seeds, BitSim::lane_count);
    BitSimScratch scratch;
    bitsim.run(seeds, scratch);
    for (int k = 0; k < BitSim::lane_count; ++k) {
      SCOPED_TRACE(testing::Message() << "lane " << k);
      const SimResult r = bitsim.extract_lane(scratch, k);
      // Total = output + internal + PI shares.
      expect_close(r.energy, r.output_node_energy + r.internal_node_energy +
                                 r.pi_energy);
      // Per-gate energies partition the non-PI share, and the output
      // sub-vector never exceeds its gate total.
      double gate_sum = 0.0, output_sum = 0.0;
      for (std::size_t g = 0; g < r.per_gate_energy.size(); ++g) {
        EXPECT_LE(r.per_gate_output_energy[g], r.per_gate_energy[g] + 1e-18);
        gate_sum += r.per_gate_energy[g];
        output_sum += r.per_gate_output_energy[g];
      }
      expect_close(gate_sum, r.output_node_energy + r.internal_node_energy);
      expect_close(output_sum, r.output_node_energy);
      // Power is energy over the lane's own window.
      expect_close(r.power * r.measured_time, r.energy);
      EXPECT_FALSE(r.truncated);
    }
  }
}

TEST(BitSimProperties, PackedRunsArePureFunctionsOfTheSeeds) {
  const Fixture f(DelayModel::zero);
  const SimEngine engine(f.nl, f.stats, f.tech, f.opt);
  const BitSim bitsim(engine);
  std::uint64_t seeds[BitSim::lane_count];
  Rng::derive_streams(23, 0, seeds, BitSim::lane_count);

  // Fresh scratch vs a scratch with a different run's history: every
  // extracted lane must be identical in every seed-determined field.
  BitSimScratch fresh;
  bitsim.run(seeds, fresh);

  BitSimScratch reused;
  std::uint64_t other[BitSim::lane_count];
  Rng::derive_streams(0xABCDEF, 7, other, BitSim::lane_count);
  bitsim.run(other, reused);  // pollute the arenas
  bitsim.run(seeds, reused);

  for (int k = 0; k < BitSim::lane_count; ++k) {
    SCOPED_TRACE(testing::Message() << "lane " << k);
    const SimResult a = bitsim.extract_lane(fresh, k);
    const SimResult b = bitsim.extract_lane(reused, k);
    EXPECT_EQ(a.energy, b.energy);
    EXPECT_EQ(a.power, b.power);
    EXPECT_EQ(a.output_node_energy, b.output_node_energy);
    EXPECT_EQ(a.internal_node_energy, b.internal_node_energy);
    EXPECT_EQ(a.pi_energy, b.pi_energy);
    EXPECT_EQ(a.per_gate_energy, b.per_gate_energy);
    EXPECT_EQ(a.per_gate_output_energy, b.per_gate_output_energy);
    ASSERT_EQ(a.nets.size(), b.nets.size());
    for (std::size_t n = 0; n < a.nets.size(); ++n) {
      EXPECT_EQ(a.nets[n].prob, b.nets[n].prob);
      EXPECT_EQ(a.nets[n].density, b.nets[n].density);
    }
    EXPECT_EQ(a.event_count, b.event_count);
    EXPECT_EQ(a.truncated, b.truncated);
    EXPECT_EQ(a.measured_time, b.measured_time);
  }
  EXPECT_EQ(fresh.truncated_mask, reused.truncated_mask);
  EXPECT_EQ(fresh.deferred_mask, reused.deferred_mask);
}

TEST(BitSimProperties, LanesReproduceTheirOwnScalarStreams) {
  // Lane k is driven by derive_stream(master, k) and nothing else: its
  // packed event count and energy equal the scalar engine's run with
  // that exact seed (the full field-exact pin is the differential
  // suite's job; this pins the seed plumbing end to end).
  const Fixture f(DelayModel::zero);
  const SimEngine engine(f.nl, f.stats, f.tech, f.opt);
  const BitSim bitsim(engine);
  const std::uint64_t master = 4242;
  std::uint64_t seeds[BitSim::lane_count];
  Rng::derive_streams(master, 0, seeds, BitSim::lane_count);
  BitSimScratch scratch;
  bitsim.run(seeds, scratch);
  ReplicationScratch scalar;
  for (int k : {0, 1, 31, 63}) {
    SCOPED_TRACE(testing::Message() << "lane " << k);
    ASSERT_EQ(seeds[k], Rng::derive_stream(master, static_cast<unsigned>(k)));
    const SimResult packed = bitsim.extract_lane(scratch, k);
    const SimResult direct = engine.run(seeds[k], scalar);
    EXPECT_EQ(packed.event_count, direct.event_count);
    EXPECT_EQ(packed.energy, direct.energy);
  }
}

TEST(BitSimProperties, CrossLaneStreamsAreDecorrelated) {
  // The 64 lanes must behave like independent replicates: all lane
  // energies distinct, non-degenerate spread, and the lag-1 cross-lane
  // correlation of the energy samples statistically null (|r| < 0.5 is
  // ~4 sigma for 63 pairs of truly independent samples).
  const Fixture f(DelayModel::zero);
  const SimEngine engine(f.nl, f.stats, f.tech, f.opt);
  const BitSim bitsim(engine);
  std::uint64_t seeds[BitSim::lane_count];
  Rng::derive_streams(31337, 0, seeds, BitSim::lane_count);
  BitSimScratch scratch;
  bitsim.run(seeds, scratch);

  std::vector<double> energy(BitSim::lane_count);
  for (int k = 0; k < BitSim::lane_count; ++k) {
    energy[static_cast<std::size_t>(k)] = bitsim.extract_lane(scratch, k).energy;
  }
  for (int k = 1; k < BitSim::lane_count; ++k) {
    for (int j = 0; j < k; ++j) {
      EXPECT_NE(energy[static_cast<std::size_t>(k)],
                energy[static_cast<std::size_t>(j)])
          << "lanes " << k << "," << j;
    }
  }

  double mean = 0.0;
  for (double e : energy) mean += e;
  mean /= static_cast<double>(energy.size());
  double var = 0.0, lag1 = 0.0;
  for (std::size_t k = 0; k < energy.size(); ++k) {
    var += (energy[k] - mean) * (energy[k] - mean);
    if (k + 1 < energy.size()) {
      lag1 += (energy[k] - mean) * (energy[k + 1] - mean);
    }
  }
  ASSERT_GT(var, 0.0);
  EXPECT_LT(std::abs(lag1 / var), 0.5);
}

}  // namespace
}  // namespace tr::sim
