// Tests for the Table 3 suite registry and its materialisation.

#include <gtest/gtest.h>

#include <set>

#include "benchgen/suite.hpp"
#include "celllib/library.hpp"
#include "util/error.hpp"

namespace tr::benchgen {
namespace {

TEST(Suite, HasThirtyNineCircuitsLikeTable3) {
  const auto& suite = table3_suite();
  EXPECT_EQ(suite.size(), 39u);
  std::set<std::string> names;
  for (const BenchmarkSpec& spec : suite) {
    EXPECT_TRUE(names.insert(spec.name).second) << "duplicate " << spec.name;
    EXPECT_GE(spec.gates, 24);   // Table 3 range
    EXPECT_LE(spec.gates, 540);
    EXPECT_GE(spec.primary_inputs, 5);
    EXPECT_NE(spec.seed, 0u);
  }
}

TEST(Suite, SortedByGateCountLikeTheRegistry) {
  const auto& suite = table3_suite();
  for (std::size_t i = 1; i < suite.size(); ++i) {
    EXPECT_LE(suite[i - 1].gates, suite[i].gates);
  }
  EXPECT_EQ(suite.front().gates, 24);  // b1
  EXPECT_EQ(suite.back().gates, 540);  // alu4
}

TEST(Suite, LookupByName) {
  EXPECT_EQ(suite_entry("alu2").gates, 401);
  EXPECT_EQ(suite_entry("c8").gates, 222);
  EXPECT_THROW(suite_entry("not-a-circuit"), Error);
}

TEST(Suite, SeedsAreStableAcrossCalls) {
  EXPECT_EQ(suite_entry("mux").seed, suite_entry("mux").seed);
  EXPECT_NE(suite_entry("mux").seed, suite_entry("cmb").seed);
}

TEST(Suite, BuildBenchmarkHonoursTheSpec) {
  const celllib::CellLibrary lib = celllib::CellLibrary::standard();
  for (const char* name : {"b1", "cm85a", "comp"}) {
    const BenchmarkSpec& spec = suite_entry(name);
    const netlist::Netlist nl = build_benchmark(lib, spec);
    EXPECT_EQ(nl.gate_count(), spec.gates) << name;
    EXPECT_EQ(nl.name(), spec.name);
    EXPECT_NO_THROW(nl.validate());
  }
}

TEST(Suite, BuildIsDeterministic) {
  const celllib::CellLibrary lib = celllib::CellLibrary::standard();
  const BenchmarkSpec& spec = suite_entry("decod");
  const netlist::Netlist a = build_benchmark(lib, spec);
  const netlist::Netlist b = build_benchmark(lib, spec);
  ASSERT_EQ(a.gate_count(), b.gate_count());
  for (netlist::GateId g = 0; g < a.gate_count(); ++g) {
    EXPECT_EQ(a.gate(g).cell, b.gate(g).cell);
  }
}

}  // namespace
}  // namespace tr::benchgen
