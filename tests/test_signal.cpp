// Tests for Parker-McCluskey probability and Najm transition-density
// propagation across single boolean functions.

#include <gtest/gtest.h>

#include "boolfn/signal.hpp"
#include "util/error.hpp"

namespace tr::boolfn {
namespace {

TEST(Signal, InverterPassesDensityAndFlipsProbability) {
  const TruthTable inv = ~TruthTable::variable(1, 0);
  const std::vector<SignalStats> in{{0.3, 1000.0}};
  EXPECT_NEAR(output_probability(inv, in), 0.7, 1e-12);
  EXPECT_NEAR(output_density(inv, in), 1000.0, 1e-12);
}

TEST(Signal, And2Density) {
  // D(ab) = P(b) D(a) + P(a) D(b).
  const TruthTable f =
      TruthTable::variable(2, 0) & TruthTable::variable(2, 1);
  const std::vector<SignalStats> in{{0.25, 100.0}, {0.75, 400.0}};
  EXPECT_NEAR(output_probability(f, in), 0.25 * 0.75, 1e-12);
  EXPECT_NEAR(output_density(f, in), 0.75 * 100.0 + 0.25 * 400.0, 1e-12);
}

TEST(Signal, Or2Density) {
  // D(a+b) = (1-P(b)) D(a) + (1-P(a)) D(b).
  const TruthTable f =
      TruthTable::variable(2, 0) | TruthTable::variable(2, 1);
  const std::vector<SignalStats> in{{0.2, 300.0}, {0.6, 50.0}};
  EXPECT_NEAR(output_density(f, in), 0.4 * 300.0 + 0.8 * 50.0, 1e-12);
}

TEST(Signal, XorPropagatesAllTransitions) {
  // dy/dx = 1 for both inputs: D = D1 + D2 regardless of probabilities.
  const TruthTable f =
      TruthTable::variable(2, 0) ^ TruthTable::variable(2, 1);
  const std::vector<SignalStats> in{{0.9, 123.0}, {0.1, 456.0}};
  EXPECT_NEAR(output_density(f, in), 579.0, 1e-12);
}

TEST(Signal, ConstantFunctionHasNoActivity) {
  const TruthTable f = TruthTable::one(2);
  const std::vector<SignalStats> in{{0.5, 100.0}, {0.5, 100.0}};
  EXPECT_NEAR(output_probability(f, in), 1.0, 1e-12);
  EXPECT_NEAR(output_density(f, in), 0.0, 1e-12);
}

TEST(Signal, VacuousInputContributesNothing) {
  // f = x0; huge density on x1 must not leak through.
  const TruthTable f = TruthTable::variable(2, 0);
  const std::vector<SignalStats> in{{0.5, 10.0}, {0.5, 1e9}};
  EXPECT_NEAR(output_density(f, in), 10.0, 1e-12);
}

TEST(Signal, FrozenInputsYieldZeroDensity) {
  const TruthTable f =
      TruthTable::variable(2, 0) & TruthTable::variable(2, 1);
  const std::vector<SignalStats> in{{1.0, 0.0}, {0.0, 0.0}};
  EXPECT_NEAR(output_density(f, in), 0.0, 1e-12);
}

TEST(Signal, PropagateBundlesBoth) {
  const TruthTable f =
      TruthTable::variable(2, 0) | TruthTable::variable(2, 1);
  const std::vector<SignalStats> in{{0.5, 10.0}, {0.5, 20.0}};
  const SignalStats out = propagate(f, in);
  EXPECT_NEAR(out.prob, 0.75, 1e-12);
  EXPECT_NEAR(out.density, 0.5 * 10.0 + 0.5 * 20.0, 1e-12);
}

TEST(Signal, ArityMismatchRejected) {
  const TruthTable f = TruthTable::variable(2, 0);
  EXPECT_THROW(output_density(f, {{0.5, 1.0}}), Error);
}

// The ripple-carry observation of paper Sec. 1.1: with equal input
// statistics, the carry chain's transition density grows along the chain
// even though every equilibrium probability stays at 0.5.
TEST(Signal, CarryChainDensityGrowsAlongRippleAdder) {
  // carry_out = majority(a, b, c) = ab + ac + bc.
  const TruthTable a = TruthTable::variable(3, 0);
  const TruthTable b = TruthTable::variable(3, 1);
  const TruthTable c = TruthTable::variable(3, 2);
  const TruthTable maj = (a & b) | (a & c) | (b & c);

  SignalStats carry{0.5, 0.5};  // cin
  double previous_density = carry.density;
  for (int bit = 0; bit < 8; ++bit) {
    const std::vector<SignalStats> in{{0.5, 0.5}, {0.5, 0.5}, carry};
    carry = propagate(maj, in);
    EXPECT_NEAR(carry.prob, 0.5, 1e-12);
    EXPECT_GT(carry.density, previous_density);
    previous_density = carry.density;
  }
  // And it converges towards the fixed point D* = 1 (for D_a = 0.5):
  // D* = 0.5*0.5 + 0.5*0.5 + 0.5*D => D* = 1.
  EXPECT_NEAR(carry.density, 1.0, 0.01);
}

}  // namespace
}  // namespace tr::boolfn
