// Tests for the constrained optimization modes that implement the
// paper's two conclusions: (a) instance-restricted exploration (pure
// input reordering within one sea-of-gates layout) and (b)
// delay-constrained power optimization ("power reductions without
// increasing the delay").

#include <gtest/gtest.h>

#include "benchgen/generators.hpp"
#include "benchgen/suite.hpp"
#include "celllib/library.hpp"
#include "delay/elmore.hpp"
#include "gategraph/gate_graph.hpp"
#include "opt/optimizer.hpp"
#include "opt/scenario.hpp"
#include "power/circuit_power.hpp"

namespace tr::opt {
namespace {

using celllib::CellLibrary;
using celllib::Tech;
using netlist::GateId;
using netlist::NetId;
using netlist::Netlist;

CellLibrary& lib() {
  static CellLibrary instance = CellLibrary::standard();
  return instance;
}

std::map<NetId, boolfn::SignalStats> uniform_stats(const Netlist& nl,
                                                   double p, double d) {
  std::map<NetId, boolfn::SignalStats> stats;
  for (NetId id : nl.primary_inputs()) stats[id] = {p, d};
  return stats;
}

TEST(DelayConstraint, ZeroBudgetKeepsEveryNetArrivalWithinOriginal) {
  // The arrival-budgeting invariant: with a zero budget, every net of
  // the optimized circuit arrives no later than in the original mapping.
  const Tech tech;
  Netlist nl = benchgen::ripple_carry_adder(lib(), 8);
  const Netlist original = nl;
  const auto stats = uniform_stats(nl, 0.5, 3e5);

  OptimizeOptions constrained;
  constrained.max_circuit_delay_increase = 0.0;
  optimize(nl, stats, tech, constrained);

  const auto before = delay::circuit_delay(original, tech);
  const auto after = delay::circuit_delay(nl, tech);
  ASSERT_EQ(before.net_arrival.size(), after.net_arrival.size());
  for (std::size_t i = 0; i < before.net_arrival.size(); ++i) {
    EXPECT_LE(after.net_arrival[i], before.net_arrival[i] * (1.0 + 1e-9))
        << "net " << nl.net(static_cast<NetId>(i)).name;
  }
}

TEST(DelayConstraint, RejectsSlowerInstancesFromAFastStart) {
  // An oai21 that starts in its *fast* layout (parallel pair at the
  // rail, smaller output diffusion) must not migrate to the slower
  // pair-at-output instance under a zero delay budget, even when that
  // instance is the power optimum.
  const Tech tech;
  Netlist nl(lib(), "one_gate");
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId c = nl.add_net("c");
  nl.mark_primary_input(a);
  nl.mark_primary_input(b);
  nl.mark_primary_input(c);
  const NetId y = nl.add_net("y");
  const GateId g = nl.add_gate("g", "oai21", {a, b, c}, y);
  nl.mark_primary_output(y);

  // Find the configuration with the smallest worst delay and start there.
  const double load = nl.external_load(g, tech);
  const auto delay_of = [&](const gategraph::GateTopology& config) {
    const gategraph::GateGraph graph(config);
    return delay::gate_delays(
               graph, celllib::node_capacitances(graph, tech, load), tech)
        .worst;
  };
  gategraph::GateTopology fastest = nl.gate(g).config;
  for (const auto& config : nl.gate(g).config.all_reorderings()) {
    if (delay_of(config) < delay_of(fastest)) fastest = config;
  }
  nl.set_config(g, fastest);
  ASSERT_LT(delay_of(nl.gate(g).config),
            delay_of(lib().cell("oai21").topology()));

  // Hot pin a favours the pair-at-output instance for power.
  std::map<NetId, boolfn::SignalStats> stats{
      {a, {0.5, 1e6}}, {b, {0.5, 1e4}}, {c, {0.5, 1e4}}};

  Netlist unconstrained = nl;
  optimize(unconstrained, stats, tech);

  OptimizeOptions constrained;
  constrained.max_circuit_delay_increase = 0.0;
  const OptimizeReport report = optimize(nl, stats, tech, constrained);
  EXPECT_GT(report.configs_rejected_by_delay, 0);
  EXPECT_LE(delay_of(nl.gate(g).config), delay_of(fastest) * (1.0 + 1e-12));
  // The unconstrained optimum is at least as good in power.
  EXPECT_LE(optimize(unconstrained, stats, tech).model_power_after,
            report.model_power_after + 1e-18);
}

TEST(DelayConstraint, CircuitDelayDoesNotIncrease) {
  // Per-gate non-increase implies circuit-level non-increase.
  const Tech tech;
  Netlist nl = benchgen::ripple_carry_adder(lib(), 12);
  const double before = delay::circuit_delay(nl, tech).critical_path;
  OptimizeOptions constrained;
  constrained.max_circuit_delay_increase = 0.0;
  optimize(nl, uniform_stats(nl, 0.5, 3e5), tech, constrained);
  const double after = delay::circuit_delay(nl, tech).critical_path;
  EXPECT_LE(after, before * (1.0 + 1e-12));
}

TEST(DelayConstraint, StillReducesPower) {
  // Paper conclusion (b): power reductions exist at zero delay cost.
  const Tech tech;
  Netlist nl = benchgen::ripple_carry_adder(lib(), 12);
  const auto stats = uniform_stats(nl, 0.5, 3e5);
  OptimizeOptions constrained;
  constrained.max_circuit_delay_increase = 0.0;
  const OptimizeReport report = optimize(nl, stats, tech, constrained);
  EXPECT_LT(report.model_power_after, report.model_power_before);
}

TEST(DelayConstraint, ConstrainedIsBetweenOriginalAndUnconstrained) {
  const Tech tech;
  const auto spec = benchgen::suite_entry("cm138a");
  const Netlist original = benchgen::build_benchmark(lib(), spec);
  const auto stats = scenario_a(original, 5);

  Netlist unconstrained = original;
  const OptimizeReport ru = optimize(unconstrained, stats, tech);

  Netlist constrained = original;
  OptimizeOptions copt;
  copt.max_circuit_delay_increase = 0.0;
  const OptimizeReport rc = optimize(constrained, stats, tech, copt);

  EXPECT_LE(ru.model_power_after, rc.model_power_after + 1e-18);
  EXPECT_LE(rc.model_power_after, rc.model_power_before + 1e-18);
}

TEST(DelayConstraint, LooseBudgetConvergesToUnconstrained) {
  const Tech tech;
  Netlist loose = benchgen::ripple_carry_adder(lib(), 6);
  Netlist free_opt = benchgen::ripple_carry_adder(lib(), 6);
  const auto stats = uniform_stats(loose, 0.5, 3e5);
  OptimizeOptions lopt;
  lopt.max_circuit_delay_increase = 100.0;  // effectively unconstrained
  const OptimizeReport rl = optimize(loose, stats, tech, lopt);
  const OptimizeReport rf = optimize(free_opt, stats, tech);
  EXPECT_NEAR(rl.model_power_after, rf.model_power_after,
              1e-12 * rf.model_power_after);
}

TEST(InstanceRestriction, NeverLeavesTheIncomingInstance) {
  const Tech tech;
  Netlist nl = benchgen::ripple_carry_adder(lib(), 8);
  const Netlist original = nl;
  OptimizeOptions ropt;
  ropt.restrict_to_instance = true;
  const OptimizeReport report =
      optimize(nl, uniform_stats(nl, 0.5, 3e5), tech, ropt);
  for (GateId g = 0; g < nl.gate_count(); ++g) {
    EXPECT_EQ(nl.gate(g).config.instance_key(),
              original.gate(g).config.instance_key())
        << nl.gate(g).name;
  }
  // oai21 gates have two instances, so rejections must occur.
  EXPECT_GT(report.configs_rejected_by_instance, 0);
}

TEST(InstanceRestriction, UnconstrainedDominatesInstanceRestricted) {
  // Paper conclusion (a): richer libraries (more instances) beat pure
  // input reordering.
  const Tech tech;
  const auto spec = benchgen::suite_entry("decod");
  const Netlist original = benchgen::build_benchmark(lib(), spec);
  const auto stats = scenario_a(original, 9);

  Netlist full = original;
  const OptimizeReport rf = optimize(full, stats, tech);

  Netlist restricted = original;
  OptimizeOptions ropt;
  ropt.restrict_to_instance = true;
  const OptimizeReport rr = optimize(restricted, stats, tech, ropt);

  EXPECT_LE(rf.model_power_after, rr.model_power_after + 1e-18);
  EXPECT_LE(rr.model_power_after, rr.model_power_before + 1e-18);
}

TEST(InstanceRestriction, SymmetricStacksLoseNothing) {
  // A circuit of only nand/nor/inv gates has single-instance cells:
  // instance restriction must be a no-op.
  const Tech tech;
  Netlist a(lib(), "stacks");
  const NetId x = a.add_net("x");
  const NetId y = a.add_net("y");
  const NetId z = a.add_net("z");
  a.mark_primary_input(x);
  a.mark_primary_input(y);
  a.mark_primary_input(z);
  const NetId n1 = a.add_net("n1");
  const NetId n2 = a.add_net("n2");
  a.add_gate("g1", "nand3", {x, y, z}, n1);
  a.add_gate("g2", "nor3", {n1, y, z}, n2);
  a.mark_primary_output(n2);
  Netlist b = a;

  std::map<NetId, boolfn::SignalStats> stats{
      {x, {0.5, 1e4}}, {y, {0.5, 1e5}}, {z, {0.5, 1e6}}};
  OptimizeOptions ropt;
  ropt.restrict_to_instance = true;
  const OptimizeReport rr = optimize(a, stats, tech, ropt);
  const OptimizeReport rf = optimize(b, stats, tech);
  EXPECT_EQ(rr.configs_rejected_by_instance, 0);
  EXPECT_NEAR(rr.model_power_after, rf.model_power_after,
              1e-12 * rf.model_power_after);
}

TEST(Constraints, ComposeDelayAndInstance) {
  const Tech tech;
  Netlist nl = benchgen::ripple_carry_adder(lib(), 6);
  const Netlist original = nl;
  OptimizeOptions both;
  both.max_circuit_delay_increase = 0.0;
  both.restrict_to_instance = true;
  const OptimizeReport report =
      optimize(nl, uniform_stats(nl, 0.5, 3e5), tech, both);
  EXPECT_LE(report.model_power_after, report.model_power_before + 1e-18);
  for (GateId g = 0; g < nl.gate_count(); ++g) {
    EXPECT_EQ(nl.gate(g).config.instance_key(),
              original.gate(g).config.instance_key());
  }
  EXPECT_LE(delay::circuit_delay(nl, tech).critical_path,
            delay::circuit_delay(original, tech).critical_path *
                (1.0 + 1e-12));
}

}  // namespace
}  // namespace tr::opt
