// Randomised parity suite: the catalog/gate-parallel fast path must
// return bit-identical OptimizeReport power numbers and choose the same
// configurations as the retained reference scorer (per-candidate graph
// rebuild + path DFS), across random SP trees, both input scenarios,
// every ModelKind, and both objectives. "Bit-identical" is literal:
// doubles are compared with ==, not tolerances — both engines funnel
// through power::evaluate_node_tables on identical tables and weights,
// so any divergence is a bug, not rounding.

#include <gtest/gtest.h>

#include "benchgen/generators.hpp"
#include "benchgen/suite.hpp"
#include "celllib/library.hpp"
#include "opt/optimizer.hpp"
#include "opt/scenario.hpp"
#include "random_sp_tree.hpp"
#include "util/rng.hpp"

namespace tr::opt {
namespace {

using boolfn::SignalStats;
using celllib::CellLibrary;
using celllib::Tech;
using gategraph::GateTopology;
using gategraph::SpNode;
using netlist::NetId;
using netlist::Netlist;

CellLibrary& lib() {
  static CellLibrary instance = CellLibrary::standard();
  return instance;
}

/// Runs both engines on copies of `original` and asserts the reports and
/// resulting netlists are identical.
void expect_engine_parity(const Netlist& original,
                          const std::map<NetId, SignalStats>& stats,
                          OptimizeOptions options) {
  const Tech tech;
  Netlist fast_netlist = original;
  Netlist reference_netlist = original;

  options.engine = Engine::catalog;
  options.threads = 3;  // exercise the pool even on small machines
  const OptimizeReport fast = optimize(fast_netlist, stats, tech, options);
  options.engine = Engine::reference;
  const OptimizeReport reference =
      optimize(reference_netlist, stats, tech, options);

  EXPECT_EQ(fast.model_power_before, reference.model_power_before);
  EXPECT_EQ(fast.model_power_after, reference.model_power_after);
  EXPECT_EQ(fast.gates_changed, reference.gates_changed);
  EXPECT_EQ(fast.configs_rejected_by_delay,
            reference.configs_rejected_by_delay);
  EXPECT_EQ(fast.configs_rejected_by_instance,
            reference.configs_rejected_by_instance);
  ASSERT_EQ(fast.decisions.size(), reference.decisions.size());
  for (std::size_t g = 0; g < fast.decisions.size(); ++g) {
    const GateDecision& a = fast.decisions[g];
    const GateDecision& b = reference.decisions[g];
    EXPECT_EQ(a.gate, b.gate);
    EXPECT_EQ(a.config_count, b.config_count);
    EXPECT_EQ(a.chosen_power, b.chosen_power) << "gate " << g;
    EXPECT_EQ(a.best_power, b.best_power) << "gate " << g;
    EXPECT_EQ(a.worst_power, b.worst_power) << "gate " << g;
    EXPECT_EQ(a.original_power, b.original_power) << "gate " << g;
    EXPECT_EQ(a.changed, b.changed) << "gate " << g;
  }
  for (int g = 0; g < original.gate_count(); ++g) {
    EXPECT_EQ(fast_netlist.gate(g).config.canonical_key(),
              reference_netlist.gate(g).config.canonical_key())
        << "gate " << g;
  }
}

/// The full option matrix of the parity contract (delay budgeting is
/// excluded by design: it always runs on the reference engine).
void expect_parity_across_options(const Netlist& original,
                                  const std::map<NetId, SignalStats>& stats) {
  for (power::ModelKind model :
       {power::ModelKind::extended, power::ModelKind::output_only}) {
    for (Objective objective :
         {Objective::minimize_power, Objective::maximize_power}) {
      for (bool restrict_instance : {false, true}) {
        SCOPED_TRACE(testing::Message()
                     << "model=" << static_cast<int>(model)
                     << " objective=" << static_cast<int>(objective)
                     << " restrict=" << restrict_instance);
        OptimizeOptions options;
        options.model = model;
        options.objective = objective;
        options.restrict_to_instance = restrict_instance;
        expect_engine_parity(original, stats, options);
      }
    }
  }
}

TEST(OptParity, SuiteCircuitScenarioA) {
  const auto& spec = benchgen::suite_entry("b1");
  const Netlist nl = benchgen::build_benchmark(lib(), spec);
  expect_parity_across_options(nl, scenario_a(nl, spec.seed));
}

TEST(OptParity, SuiteCircuitScenarioB) {
  const auto& spec = benchgen::suite_entry("b1");
  const Netlist nl = benchgen::build_benchmark(lib(), spec);
  expect_parity_across_options(nl, scenario_b(nl, 1e6));
}

TEST(OptParity, RippleCarryBothScenarios) {
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 6);
  expect_parity_across_options(nl, scenario_a(nl, 77));
  expect_parity_across_options(nl, scenario_b(nl, 2e6));
}

TEST(OptParity, SecondPassFromNonCanonicalConfigurations) {
  // After one optimization the gates sit in non-canonical configurations;
  // the catalogs for these start points differ (enumeration starts at the
  // current configuration) and parity must still hold.
  const auto& spec = benchgen::suite_entry("cm82a");
  Netlist nl = benchgen::build_benchmark(lib(), spec);
  const auto stats = scenario_a(nl, spec.seed);
  const Tech tech;
  optimize(nl, stats, tech);
  expect_parity_across_options(nl, stats);
}

TEST(OptParity, RandomSpTreeGates) {
  // Random SP topologies beyond the library: single-gate netlists are not
  // expressible (Netlist needs library cells), so parity is asserted at
  // the scorer level, which is exactly what optimize() consumes per gate.
  Rng rng(424242);
  const Tech tech;
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 2 + static_cast<int>(rng.next_below(4));
    std::vector<int> pool;
    for (int i = 0; i < n; ++i) pool.push_back(i);
    const GateTopology gate = GateTopology::from_pulldown(
        testutil::random_sp_tree(pool, rng, /*max_groups=*/3), n);
    if (gate.reordering_count_formula() > 64) continue;
    SCOPED_TRACE(gate.canonical_key());

    std::vector<SignalStats> inputs;
    for (int i = 0; i < n; ++i) {
      inputs.push_back({rng.next_double(), rng.uniform(0.0, 1e6)});
    }
    const double load = rng.uniform(1e-15, 50e-15);
    for (power::ModelKind model :
         {power::ModelKind::extended, power::ModelKind::output_only}) {
      const auto fast = score_configurations(gate, inputs, load, tech, model);
      const auto reference =
          score_configurations_reference(gate, inputs, load, tech, model);
      ASSERT_EQ(fast.size(), reference.size());
      for (std::size_t i = 0; i < fast.size(); ++i) {
        EXPECT_EQ(fast[i].first.canonical_key(),
                  reference[i].first.canonical_key());
        EXPECT_EQ(fast[i].second, reference[i].second);  // bitwise
      }
    }
  }
}

TEST(OptParity, ScratchReuseDoesNotChangeResults) {
  // One ScoreScratch carried across cells and calls (the amortisation the
  // optimizer relies on) must not perturb any score.
  const Tech tech;
  ScoreScratch scratch;
  for (const char* name : {"nand3", "oai21", "aoi221"}) {
    const auto& cell = lib().cell(name);
    std::vector<SignalStats> inputs(
        static_cast<std::size_t>(cell.input_count()),
        SignalStats{0.37, 2.5e5});
    const auto with_scratch = score_configurations(
        cell.topology(), inputs, 8e-15, tech, power::ModelKind::extended,
        scratch);
    const auto fresh = score_configurations(cell.topology(), inputs, 8e-15,
                                            tech, power::ModelKind::extended);
    ASSERT_EQ(with_scratch.size(), fresh.size());
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      EXPECT_EQ(with_scratch[i].second, fresh[i].second);
    }
  }
}

TEST(OptParity, DelayBudgetRoutesToReferenceEngine) {
  // Arrival budgeting is sequential by nature; requesting it with the
  // catalog engine must still produce the reference result.
  const Netlist original = benchgen::ripple_carry_adder(lib(), 4);
  const auto stats = scenario_b(original, 1e6);
  const Tech tech;
  OptimizeOptions budgeted;
  budgeted.max_circuit_delay_increase = 0.0;
  budgeted.engine = Engine::catalog;  // must be overridden internally
  Netlist a = original;
  const OptimizeReport ra = optimize(a, stats, tech, budgeted);
  budgeted.engine = Engine::reference;
  Netlist b = original;
  const OptimizeReport rb = optimize(b, stats, tech, budgeted);
  EXPECT_EQ(ra.model_power_after, rb.model_power_after);
  EXPECT_EQ(ra.gates_changed, rb.gates_changed);
  EXPECT_EQ(ra.configs_rejected_by_delay, rb.configs_rejected_by_delay);
  for (int g = 0; g < original.gate_count(); ++g) {
    EXPECT_EQ(a.gate(g).config.canonical_key(),
              b.gate(g).config.canonical_key());
  }
}

}  // namespace
}  // namespace tr::opt
