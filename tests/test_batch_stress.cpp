// Batch stress (ISSUE 4, `slow` label): generate and batch-optimize the
// scaled synthetic tier — >= 10k gates across four multi-thousand-gate
// circuits — and assert the run completes without truncation while
// memory stays gate-count-proportional: the shared catalog cache must
// remain bounded by the number of distinct structural forms (a
// library-sized constant, independent of gate count), and on Linux the
// resident-set growth of the whole run must stay under a generous
// per-gate bound that any super-linear blowup would break.

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "benchgen/suite.hpp"
#include "celllib/library.hpp"
#include "opt/batch.hpp"
#include "opt/batch_report.hpp"

#ifdef __linux__
#include <fstream>
#include <string>
#endif

namespace tr::opt {
namespace {

using celllib::CellLibrary;
using celllib::Tech;

/// Current resident set in bytes via /proc/self/statm; 0 off Linux.
long long resident_bytes() {
#ifdef __linux__
  std::ifstream statm("/proc/self/statm");
  long long pages_total = 0;
  long long pages_resident = 0;
  statm >> pages_total >> pages_resident;
  return pages_resident * 4096;
#else
  return 0;
#endif
}

TEST(BatchStress, ScaledTierOptimizesWithoutTruncation) {
  const long long rss_before = resident_bytes();

  const CellLibrary library = CellLibrary::standard();
  const Tech tech;
  std::vector<BatchCircuit> batch;
  int expected_gates = 0;
  for (const auto& spec : benchgen::scaled_suite()) {
    batch.push_back(make_scenario_circuit(
        benchgen::build_benchmark(library, spec), 'A', /*master_seed=*/7));
    expected_gates += spec.gates;
  }
  ASSERT_GE(expected_gates, 10000) << "scaled tier shrank below the bar";

  BatchOptions options;
  options.jobs = 0;  // circuit-level fan-out over all cores
  const BatchReport report = BatchOptimizer(library, tech, options).run(batch);

  // No truncation anywhere: every circuit reports a decision for every
  // gate, and every decision explored at least the incoming config.
  EXPECT_EQ(report.gates_total, expected_gates);
  ASSERT_EQ(report.circuits.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const BatchCircuitResult& result = report.circuits[i];
    EXPECT_EQ(result.gates, batch[i].netlist.gate_count());
    ASSERT_EQ(result.report.decisions.size(),
              static_cast<std::size_t>(result.gates));
    for (const GateDecision& decision : result.report.decisions) {
      EXPECT_GE(decision.gate, 0);
      EXPECT_GE(decision.config_count, 1);
    }
  }
  EXPECT_GT(report.gates_changed, 0);

  // Cache memory is flat in gate count: one catalog per distinct
  // structural form, bounded by the cell library, not by the 15k gates.
  EXPECT_LE(library.cached_catalog_count(), library.size());
  EXPECT_EQ(report.cache.lookups(),
            static_cast<std::uint64_t>(report.gates_total));
  EXPECT_GT(report.cache.hit_rate(), 0.99);

  // The full JSON report renders untruncated: one gate_configs entry per
  // changed gate across all circuits.
  std::ostringstream out;
  write_batch_json(batch, report, options, out);
  const std::string json = out.str();
  std::size_t entries = 0;
  for (std::size_t at = json.find("\"gate\":"); at != std::string::npos;
       at = json.find("\"gate\":", at + 1)) {
    ++entries;
  }
  EXPECT_EQ(entries, static_cast<std::size_t>(report.gates_changed));

  // Linear-ish memory: generously 48 KiB per gate end to end (netlists,
  // statistics, catalogs, decisions, the JSON text). A quadratic term at
  // this scale would overshoot by orders of magnitude.
  const long long rss_after = resident_bytes();
  if (rss_before > 0 && rss_after > rss_before) {
    const long long grown = rss_after - rss_before;
    EXPECT_LT(grown, 48LL * 1024 * expected_gates)
        << "batch RSS grew " << grown / (1024 * 1024) << " MiB for "
        << expected_gates << " gates";
  }
}

TEST(BatchStress, ScaledSuiteSpecsAreWellFormed) {
  int total = 0;
  for (const auto& spec : benchgen::scaled_suite()) {
    EXPECT_GE(spec.gates, 1000);
    EXPECT_GT(spec.primary_inputs, 48)
        << spec.name << ": scaled tier should exceed the MCNC PI cap";
    EXPECT_EQ(spec.seed, benchgen::suite_entry(spec.name).seed);
    total += spec.gates;
  }
  EXPECT_GE(total, 10000);
}

}  // namespace
}  // namespace tr::opt
