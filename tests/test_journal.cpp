// Crash-consistent journal entry format (ISSUE 10, util/journal):
// round-trip, atomicity hygiene, and the damage corpus — every way an
// entry can be torn, truncated or rotted must be *detected* and mapped
// to the right EntryStatus, never parsed as trusted data. The
// corruption fixtures are built by mutating real written entries, the
// same shapes chaos_soak.sh inflicts on live checkpoint directories.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "util/error.hpp"
#include "util/journal.hpp"

namespace tr::util::journal {
namespace {

namespace fs = std::filesystem;

class JournalTest : public ::testing::Test {
protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("tr_journal_test_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name()))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const { return dir_ + "/" + name; }

  std::string read_raw(const std::string& name) const {
    std::ifstream in(path(name), std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }

  void write_raw(const std::string& name, const std::string& bytes) const {
    std::ofstream out(path(name), std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string dir_;
};

TEST_F(JournalTest, RoundTripsArbitraryPayloadBytes) {
  // Binary-hostile payload: NULs, high bytes, newlines — the frame is
  // length-prefixed, nothing may be delimiter-sensitive.
  std::string payload = "json{}\n";
  payload.push_back('\0');
  for (int i = 0; i < 256; ++i) payload.push_back(static_cast<char>(i));

  write_entry(dir_, "entry.jnl", payload);
  const ReadResult r = read_entry(path("entry.jnl"));
  EXPECT_EQ(r.status, EntryStatus::ok);
  EXPECT_EQ(r.payload, payload);
}

TEST_F(JournalTest, EmptyPayloadRoundTrips) {
  write_entry(dir_, "empty.jnl", "");
  const ReadResult r = read_entry(path("empty.jnl"));
  EXPECT_EQ(r.status, EntryStatus::ok);
  EXPECT_TRUE(r.payload.empty());
}

TEST_F(JournalTest, WriteLeavesNoTempFilesBehind) {
  write_entry(dir_, "a.jnl", "payload-a");
  write_entry(dir_, "b.jnl", "payload-b");
  int files = 0;
  for (const auto& e : fs::directory_iterator(dir_)) {
    ++files;
    EXPECT_EQ(e.path().extension(), ".jnl") << e.path();
  }
  // Only the renamed entries — a .tmp survivor would mean the write is
  // not publish-by-rename.
  EXPECT_EQ(files, 2);
}

TEST_F(JournalTest, RewriteReplacesAtomically) {
  write_entry(dir_, "e.jnl", "first");
  write_entry(dir_, "e.jnl", "second");
  const ReadResult r = read_entry(path("e.jnl"));
  EXPECT_EQ(r.status, EntryStatus::ok);
  EXPECT_EQ(r.payload, "second");
}

TEST_F(JournalTest, MissingFileIsMissingNotError) {
  const ReadResult r = read_entry(path("never-written.jnl"));
  EXPECT_EQ(r.status, EntryStatus::missing);
}

// --------------------------------------------------------------------
// The damage corpus: every mutation of a real entry maps to a distinct
// detected status, and none throws.

TEST_F(JournalTest, TruncationInsideHeaderDetected) {
  write_entry(dir_, "e.jnl", "payload");
  const std::string raw = read_raw("e.jnl");
  for (std::size_t keep : {std::size_t{0}, std::size_t{1}, std::size_t{23}}) {
    write_raw("torn.jnl", raw.substr(0, keep));
    const ReadResult r = read_entry(path("torn.jnl"));
    EXPECT_EQ(r.status, EntryStatus::truncated_header) << "kept " << keep;
  }
}

TEST_F(JournalTest, TruncationInsidePayloadDetected) {
  write_entry(dir_, "e.jnl", "a payload long enough to cut");
  const std::string raw = read_raw("e.jnl");
  // Cut anywhere after the header but before the end: torn write.
  write_raw("torn.jnl", raw.substr(0, raw.size() - 5));
  const ReadResult r = read_entry(path("torn.jnl"));
  EXPECT_EQ(r.status, EntryStatus::truncated_payload);
}

TEST_F(JournalTest, BadMagicDetected) {
  write_entry(dir_, "e.jnl", "payload");
  std::string raw = read_raw("e.jnl");
  raw[0] = 'X';
  write_raw("bad.jnl", raw);
  EXPECT_EQ(read_entry(path("bad.jnl")).status, EntryStatus::bad_magic);
}

TEST_F(JournalTest, UnknownVersionDetected) {
  write_entry(dir_, "e.jnl", "payload");
  std::string raw = read_raw("e.jnl");
  raw[4] = static_cast<char>(kFrameVersion + 1);  // version u32-LE low byte
  write_raw("bad.jnl", raw);
  EXPECT_EQ(read_entry(path("bad.jnl")).status, EntryStatus::bad_version);
}

TEST_F(JournalTest, TrailingBytesDetected) {
  write_entry(dir_, "e.jnl", "payload");
  write_raw("bad.jnl", read_raw("e.jnl") + "extra");
  EXPECT_EQ(read_entry(path("bad.jnl")).status, EntryStatus::trailing_bytes);
}

TEST_F(JournalTest, PayloadBitFlipDetected) {
  const std::string payload = "the checksum must catch a single flipped bit";
  write_entry(dir_, "e.jnl", payload);
  std::string raw = read_raw("e.jnl");
  // Flip one payload bit per byte position; every mutation must be
  // caught (FNV-1a is not cryptographic, but single-bit flips always
  // change the hash).
  for (std::size_t i = 24; i < raw.size(); i += 7) {
    std::string mutated = raw;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x10);
    write_raw("bad.jnl", mutated);
    EXPECT_EQ(read_entry(path("bad.jnl")).status, EntryStatus::bad_checksum)
        << "flip at offset " << i;
  }
}

TEST_F(JournalTest, ChecksumFieldBitFlipDetected) {
  write_entry(dir_, "e.jnl", "payload");
  std::string raw = read_raw("e.jnl");
  raw[16] = static_cast<char>(raw[16] ^ 0x01);  // stored checksum, u64-LE
  write_raw("bad.jnl", raw);
  EXPECT_EQ(read_entry(path("bad.jnl")).status, EntryStatus::bad_checksum);
}

TEST_F(JournalTest, DeclaredLengthLongerThanFileDetected) {
  write_entry(dir_, "e.jnl", "payload");
  std::string raw = read_raw("e.jnl");
  raw[8] = static_cast<char>(raw[8] + 1);  // payload_len u64-LE low byte
  write_raw("bad.jnl", raw);
  // Length now exceeds the bytes present: truncated payload, and the
  // checksum would not match anyway.
  EXPECT_EQ(read_entry(path("bad.jnl")).status,
            EntryStatus::truncated_payload);
}

TEST_F(JournalTest, StatusNamesAreStable) {
  // The names surface in JournalWarning messages and chaos_soak greps.
  EXPECT_STREQ(entry_status_name(EntryStatus::ok), "ok");
  EXPECT_STREQ(entry_status_name(EntryStatus::missing), "missing");
  EXPECT_STREQ(entry_status_name(EntryStatus::io_error), "io_error");
  EXPECT_STREQ(entry_status_name(EntryStatus::truncated_header),
               "truncated_header");
  EXPECT_STREQ(entry_status_name(EntryStatus::bad_magic), "bad_magic");
  EXPECT_STREQ(entry_status_name(EntryStatus::bad_version), "bad_version");
  EXPECT_STREQ(entry_status_name(EntryStatus::truncated_payload),
               "truncated_payload");
  EXPECT_STREQ(entry_status_name(EntryStatus::trailing_bytes),
               "trailing_bytes");
  EXPECT_STREQ(entry_status_name(EntryStatus::bad_checksum), "bad_checksum");
}

TEST_F(JournalTest, WriteToUnwritableDirectoryThrowsResource) {
  try {
    write_entry(dir_ + "/no/such/subdir", "e.jnl", "payload");
    FAIL() << "expected tr::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::resource);
  }
}

TEST_F(JournalTest, Fnv1a64MatchesReferenceVectors) {
  // Pinned reference values (FNV-1a 64-bit test vectors): the on-disk
  // checksum must never silently change across refactors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

}  // namespace
}  // namespace tr::util::journal
