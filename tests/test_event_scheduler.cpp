// EventScheduler order-contract tests (DESIGN.md Sec. 10.1): both lanes
// (calendar and pure heap) must pop in the exact (time, level, seq)
// order of the reference std::priority_queue the simulation engine used
// before the rewrite, across irregular times, equal-time delta cycles,
// far-future events and interleaved push/pop streams.

#include <gtest/gtest.h>

#include <queue>
#include <vector>

#include "sim/event_scheduler.hpp"
#include "util/rng.hpp"

namespace tr::sim {
namespace {

struct RefEvent {
  double time = 0.0;
  int level = 0;
  std::uint64_t seq = 0;
  std::uint32_t payload = 0;

  bool operator>(const RefEvent& rhs) const {
    if (time != rhs.time) return time > rhs.time;
    if (level != rhs.level) return level > rhs.level;
    return seq > rhs.seq;
  }
};

using RefQueue =
    std::priority_queue<RefEvent, std::vector<RefEvent>, std::greater<>>;

/// Drives the scheduler and the reference queue with one interleaved
/// push/pop stream and asserts identical pop sequences. Pushed times are
/// always >= the last popped time, matching the engine's contract.
void differential_run(std::uint64_t seed, double bucket_width,
                      int bucket_count, int operations,
                      bool equal_time_bursts) {
  Rng rng(seed);
  EventScheduler scheduler;
  scheduler.reset(bucket_width, bucket_count);
  RefQueue reference;
  std::uint64_t seq = 0;
  double now = 0.0;
  std::uint32_t payload = 0;

  const auto push_one = [&](double time, int level) {
    scheduler.push(time, EventScheduler::pack_order(level, seq), payload);
    reference.push(RefEvent{time, level, seq, payload});
    ++seq;
    ++payload;
  };

  for (int op = 0; op < operations; ++op) {
    const bool do_push = reference.empty() || rng.next_double() < 0.55;
    if (do_push) {
      // Mix near (same-bucket to few-buckets), mid-window and far-future
      // horizons so every lane and the window slide get exercised.
      const double pick = rng.next_double();
      double delta = 0.0;
      if (pick < 0.5) {
        delta = rng.uniform(0.0, 4.0 * bucket_width);
      } else if (pick < 0.85) {
        delta = rng.uniform(0.0, bucket_width * bucket_count);
      } else {
        delta = rng.uniform(0.0, 50.0 * bucket_width * bucket_count);
      }
      const int level = static_cast<int>(rng.next_below(12));
      push_one(now + delta, level);
      if (equal_time_bursts && rng.next_double() < 0.4) {
        // Delta cycle: several events at the identical instant with
        // mixed levels — the zero-delay mode's bread and butter.
        const double t = now + rng.uniform(0.0, 2.0 * bucket_width);
        for (int burst = 0; burst < 3; ++burst) {
          push_one(t, static_cast<int>(rng.next_below(5)));
        }
      }
    } else {
      EventScheduler::Event got;
      ASSERT_TRUE(scheduler.peek(got));
      const RefEvent expected = reference.top();
      reference.pop();
      EXPECT_EQ(got.time, expected.time);
      EXPECT_EQ(got.order,
                EventScheduler::pack_order(expected.level, expected.seq));
      EXPECT_EQ(got.payload, expected.payload);
      scheduler.pop();
      now = expected.time;
    }
  }
  // Drain both completely.
  while (!reference.empty()) {
    EventScheduler::Event got;
    ASSERT_TRUE(scheduler.peek(got));
    const RefEvent expected = reference.top();
    reference.pop();
    ASSERT_EQ(got.time, expected.time);
    ASSERT_EQ(got.order,
              EventScheduler::pack_order(expected.level, expected.seq));
    ASSERT_EQ(got.payload, expected.payload);
    scheduler.pop();
  }
  EventScheduler::Event leftover;
  EXPECT_FALSE(scheduler.peek(leftover));
  EXPECT_TRUE(scheduler.empty());
}

TEST(EventScheduler, CalendarMatchesReferenceOrder) {
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL, 12345ULL}) {
    SCOPED_TRACE(testing::Message() << "seed " << seed);
    differential_run(seed, 1e-6, 64, 4000, false);
  }
}

TEST(EventScheduler, CalendarHandlesEqualTimeDeltaCycles) {
  for (std::uint64_t seed : {3ULL, 9ULL, 77ULL}) {
    SCOPED_TRACE(testing::Message() << "seed " << seed);
    differential_run(seed, 1e-6, 128, 4000, true);
  }
}

TEST(EventScheduler, PureHeapModeMatchesReferenceOrder) {
  for (std::uint64_t seed : {5ULL, 11ULL, 99ULL}) {
    SCOPED_TRACE(testing::Message() << "seed " << seed);
    differential_run(seed, 0.0, 0, 4000, true);
  }
}

TEST(EventScheduler, TinyBucketCountStressesWindowSlides) {
  // Two buckets: nearly every push is far-future, so the window slides
  // and drains constantly.
  differential_run(2026, 5e-7, 2, 3000, true);
}

TEST(EventScheduler, FarFutureJumpSkipsEmptyLaps) {
  EventScheduler scheduler;
  scheduler.reset(1e-9, 16);
  // An event ~1e12 bucket-widths away: per-lap sliding would never
  // terminate in test time, so peek must jump.
  scheduler.push(1e3, EventScheduler::pack_order(0, 0), 7);
  EventScheduler::Event got;
  ASSERT_TRUE(scheduler.peek(got));
  EXPECT_EQ(got.time, 1e3);
  EXPECT_EQ(got.payload, 7u);
  scheduler.pop();
  EXPECT_TRUE(scheduler.empty());
}

TEST(EventScheduler, ResetRetainsStorageAndClearsEvents) {
  EventScheduler scheduler;
  scheduler.reset(1e-6, 32);
  for (int i = 0; i < 1000; ++i) {
    scheduler.push(1e-7 * i, EventScheduler::pack_order(0, i), 0);
  }
  const std::size_t warm = scheduler.allocated_bytes();
  EXPECT_GT(warm, 0u);
  scheduler.reset(1e-6, 32);
  EXPECT_TRUE(scheduler.empty());
  EXPECT_EQ(scheduler.allocated_bytes(), warm);  // capacity retained
  // And it still orders correctly after reuse.
  scheduler.push(2.0, EventScheduler::pack_order(1, 11), 1);
  scheduler.push(2.0, EventScheduler::pack_order(0, 12), 2);
  EventScheduler::Event got;
  ASSERT_TRUE(scheduler.peek(got));
  EXPECT_EQ(got.payload, 2u);  // lower level wins the time tie
}

TEST(EventScheduler, PackOrderIsLexicographic) {
  // level dominates seq; seq orders FIFO within a level.
  EXPECT_LT(EventScheduler::pack_order(0, 5), EventScheduler::pack_order(1, 0));
  EXPECT_LT(EventScheduler::pack_order(2, 3), EventScheduler::pack_order(2, 4));
  EXPECT_EQ(EventScheduler::pack_order(EventScheduler::max_level,
                                       EventScheduler::max_seq),
            ~std::uint64_t{0});
}

}  // namespace
}  // namespace tr::sim
