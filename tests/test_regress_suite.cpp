// Whole-suite regression: every Table 3 circuit builds, validates,
// propagates activity and (for the smaller half) optimizes with a
// positive model reduction and unchanged logic. Catches regressions that
// unit tests on single modules cannot.

#include <gtest/gtest.h>

#include "benchgen/suite.hpp"
#include "celllib/library.hpp"
#include "opt/optimizer.hpp"
#include "opt/scenario.hpp"
#include "power/circuit_power.hpp"
#include "util/rng.hpp"

namespace tr {
namespace {

using celllib::CellLibrary;
using celllib::Tech;

CellLibrary& lib() {
  static CellLibrary instance = CellLibrary::standard();
  return instance;
}

class SuiteCircuit : public ::testing::TestWithParam<std::string> {};

TEST_P(SuiteCircuit, BuildsPropagatesAndOptimizes) {
  const auto& spec = benchgen::suite_entry(GetParam());
  const Tech tech;
  netlist::Netlist nl = benchgen::build_benchmark(lib(), spec);
  EXPECT_EQ(nl.gate_count(), spec.gates);
  EXPECT_NO_THROW(nl.validate());

  const auto stats = opt::scenario_a(nl, spec.seed + 77);
  const auto activity = power::propagate_activity(nl, stats);
  // Activity sanity on every net.
  for (const auto& s : activity.net_stats) {
    EXPECT_GE(s.prob, 0.0);
    EXPECT_LE(s.prob, 1.0);
    EXPECT_GE(s.density, 0.0);
  }
  const double p_before = power::circuit_power(nl, activity, tech).total();
  EXPECT_GT(p_before, 0.0);

  if (spec.gates > 160) return;  // optimization covered on the small half

  // Function fingerprint before/after optimization on random vectors.
  const std::size_t n_pi = nl.primary_inputs().size();
  Rng rng(spec.seed);
  std::vector<std::vector<bool>> vectors;
  for (int v = 0; v < 16; ++v) {
    std::vector<bool> in;
    for (std::size_t j = 0; j < n_pi; ++j) in.push_back(rng.bernoulli(0.5));
    vectors.push_back(std::move(in));
  }
  std::vector<std::vector<bool>> golden;
  for (const auto& in : vectors) golden.push_back(nl.evaluate(in));

  const opt::OptimizeReport report = opt::optimize(nl, stats, tech);
  EXPECT_LE(report.model_power_after, report.model_power_before);
  const double p_after = power::circuit_power(nl, activity, tech).total();
  EXPECT_LT(p_after, p_before);

  for (std::size_t v = 0; v < vectors.size(); ++v) {
    EXPECT_EQ(nl.evaluate(vectors[v]), golden[v]) << "vector " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTable3, SuiteCircuit, [] {
  std::vector<std::string> names;
  for (const auto& spec : benchgen::table3_suite()) names.push_back(spec.name);
  return ::testing::ValuesIn(names);
}());

}  // namespace
}  // namespace tr
