// Tests for the auxiliary interchange formats: activity files and
// structural Verilog, including the full write -> parse -> compare
// round-trip contracts for both.

#include <gtest/gtest.h>

#include <sstream>

#include "benchgen/generators.hpp"
#include "celllib/library.hpp"
#include "netlist/activity_io.hpp"
#include "netlist/verilog.hpp"
#include "opt/scenario.hpp"
#include "power/circuit_power.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace tr::netlist {
namespace {

using celllib::CellLibrary;

CellLibrary& lib() {
  static CellLibrary instance = CellLibrary::standard();
  return instance;
}

/// Structural equality of two netlists by names (ids may differ):
/// same PIs/POs, same gates with the same cells and pin-order net
/// bindings, plus logic equivalence on random input vectors.
void expect_same_structure(const Netlist& a, const Netlist& b) {
  auto names = [&](const std::vector<NetId>& ids, const Netlist& nl) {
    std::vector<std::string> out;
    for (NetId id : ids) out.push_back(nl.net(id).name);
    return out;
  };
  EXPECT_EQ(a.name(), b.name());
  EXPECT_EQ(names(a.primary_inputs(), a), names(b.primary_inputs(), b));
  EXPECT_EQ(names(a.primary_outputs(), a), names(b.primary_outputs(), b));
  ASSERT_EQ(a.gate_count(), b.gate_count());
  for (GateId g = 0; g < a.gate_count(); ++g) {
    const GateInst& ga = a.gate(g);
    const GateInst& gb = b.gate(g);
    EXPECT_EQ(ga.name, gb.name);
    EXPECT_EQ(ga.cell, gb.cell);
    EXPECT_EQ(a.net(ga.output).name, b.net(gb.output).name);
    ASSERT_EQ(ga.inputs.size(), gb.inputs.size());
    for (std::size_t pin = 0; pin < ga.inputs.size(); ++pin) {
      EXPECT_EQ(a.net(ga.inputs[pin]).name, b.net(gb.inputs[pin]).name)
          << "gate " << ga.name << " pin " << pin;
    }
  }
  Rng rng(9);
  const std::size_t pis = a.primary_inputs().size();
  for (int trial = 0; trial < 16; ++trial) {
    std::vector<bool> vec;
    for (std::size_t i = 0; i < pis; ++i) vec.push_back(rng.bernoulli(0.5));
    EXPECT_EQ(a.evaluate(vec), b.evaluate(vec));
  }
}

TEST(ActivityIo, RoundTripsPrimaryInputStatistics) {
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 4);
  const auto original = opt::scenario_a(nl, 17);

  // Serialise through the circuit-activity vector.
  std::vector<boolfn::SignalStats> net_stats(
      static_cast<std::size_t>(nl.net_count()));
  for (const auto& [id, s] : original) {
    net_stats[static_cast<std::size_t>(id)] = s;
  }
  std::ostringstream out;
  write_activity(nl, net_stats, out);

  std::istringstream in(out.str());
  const auto reloaded = read_activity(nl, in);
  ASSERT_EQ(reloaded.size(), original.size());
  for (const auto& [id, s] : original) {
    ASSERT_TRUE(reloaded.contains(id));
    EXPECT_NEAR(reloaded.at(id).prob, s.prob, 1e-6);
    EXPECT_NEAR(reloaded.at(id).density, s.density, 1e-2);
  }
}

TEST(ActivityIo, WholeCircuitDump) {
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 2);
  const auto pi_stats = opt::scenario_b(nl);
  const auto activity = power::propagate_activity(nl, pi_stats);
  std::ostringstream out;
  write_activity(nl, activity.net_stats, out, /*all_nets=*/true);
  // One line per net plus two comment lines.
  int lines = 0;
  std::istringstream in(out.str());
  std::string line;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, nl.net_count() + 2);
}

TEST(ActivityIo, Errors) {
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 2);
  const auto check_throws = [&](const char* text) {
    Netlist copy = nl;
    std::istringstream in(text);
    EXPECT_THROW(read_activity(copy, in), Error) << text;
  };
  check_throws("nosuchnet 0.5 1000\n");
  check_throws("s0 0.5 1000\n");            // not a primary input
  check_throws("a0 1.5 1000\n");            // probability out of range
  check_throws("a0 0.5 -3\n");              // negative density
  check_throws("a0 0.5\n");                 // arity
  check_throws("a0 zzz 1\n");               // malformed number
  check_throws("a0 0.5 1\na0 0.5 1\n");     // duplicate
  check_throws("a0 0.5 1\n");               // missing other PIs
}

TEST(Verilog, EmitsWellFormedModule) {
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 2);
  std::ostringstream out;
  write_verilog(nl, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("module rca2 ("), std::string::npos);
  EXPECT_NE(text.find("endmodule"), std::string::npos);
  EXPECT_NE(text.find("input a0;"), std::string::npos);
  EXPECT_NE(text.find("output s0;"), std::string::npos);
  // One instantiation per gate.
  std::size_t count = 0, pos = 0;
  while ((pos = text.find(".y(", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, static_cast<std::size_t>(nl.gate_count()));
}

TEST(Verilog, SanitisesAwkwardNames) {
  Netlist nl(lib(), "weird-top");
  const NetId in = nl.add_net("3via[2].x");
  nl.mark_primary_input(in);
  const NetId out_net = nl.add_net("out!");
  nl.add_gate("u-1", "inv", {in}, out_net);
  nl.mark_primary_output(out_net);

  std::ostringstream out;
  write_verilog(nl, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("module weird_top"), std::string::npos);
  EXPECT_NE(text.find("n3via_2__x"), std::string::npos);
  EXPECT_NE(text.find("out_"), std::string::npos);
  EXPECT_EQ(text.find("out!"), std::string::npos);  // no raw names leak
}

TEST(ActivityIo, RoundTripsRandomCircuitScenarios) {
  // The least-tested IO path under its real workloads: both scenario
  // generators over a random multilevel circuit survive the text format.
  benchgen::RandomCircuitSpec spec;
  spec.target_gates = 40;
  spec.primary_inputs = 12;
  spec.seed = 5;
  const Netlist nl = benchgen::random_circuit(lib(), spec);
  for (int scenario = 0; scenario < 2; ++scenario) {
    const auto original = scenario == 0 ? opt::scenario_a(nl, 33)
                                        : opt::scenario_b(nl, 1e6);
    std::vector<boolfn::SignalStats> net_stats(
        static_cast<std::size_t>(nl.net_count()));
    for (const auto& [id, s] : original) {
      net_stats[static_cast<std::size_t>(id)] = s;
    }
    std::ostringstream out;
    write_activity(nl, net_stats, out);
    std::istringstream in(out.str());
    const auto reloaded = read_activity(nl, in);
    ASSERT_EQ(reloaded.size(), original.size()) << "scenario " << scenario;
    for (const auto& [id, s] : original) {
      EXPECT_NEAR(reloaded.at(id).prob, s.prob, 1e-6);
      EXPECT_NEAR(reloaded.at(id).density, s.density, 1e-2);
    }
  }
}

TEST(ActivityIo, ToleratesCommentsAndBlankLines) {
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 1);
  std::ostringstream text;
  text << "# header\n\n   \n";
  for (NetId id : nl.primary_inputs()) {
    text << "  " << nl.net(id).name << "   0.25\t1234.5  # inline? no\n";
  }
  // The trailing token makes the arity 4 -> the format has no inline
  // comments; drop the suffix and re-read cleanly.
  std::istringstream bad(text.str());
  EXPECT_THROW(read_activity(nl, bad), Error);
  std::ostringstream clean;
  clean << "# header\n\n   \n";
  for (NetId id : nl.primary_inputs()) {
    clean << "  " << nl.net(id).name << "   0.25\t1234.5\n";
  }
  std::istringstream in(clean.str());
  const auto stats = read_activity(nl, in);
  for (const auto& [id, s] : stats) {
    EXPECT_DOUBLE_EQ(s.prob, 0.25);
    EXPECT_DOUBLE_EQ(s.density, 1234.5);
  }
}

TEST(Verilog, NameCollisionsResolved) {
  Netlist nl(lib(), "collide");
  const NetId a = nl.add_net("sig a");
  const NetId b = nl.add_net("sig_a");
  nl.mark_primary_input(a);
  nl.mark_primary_input(b);
  const NetId y = nl.add_net("y");
  nl.add_gate("g", "nand2", {a, b}, y);
  nl.mark_primary_output(y);

  std::ostringstream out;
  write_verilog(nl, out);
  const std::string text = out.str();
  // Both inputs appear, distinctly.
  EXPECT_NE(text.find("input sig_a;"), std::string::npos);
  EXPECT_NE(text.find("input sig_a_1;"), std::string::npos);
}

TEST(Verilog, RoundTripsRippleCarryAdder) {
  const Netlist original = benchgen::ripple_carry_adder(lib(), 4);
  std::ostringstream out;
  write_verilog(original, out);
  std::istringstream in(out.str());
  const Netlist reloaded = read_verilog(lib(), in);
  expect_same_structure(original, reloaded);

  // write(read(write(nl))) == write(nl): the reader accepts exactly what
  // the writer emits and loses nothing the writer records.
  std::ostringstream again;
  write_verilog(reloaded, again);
  EXPECT_EQ(out.str(), again.str());
}

TEST(Verilog, RoundTripsRandomMultilevelCircuit) {
  benchgen::RandomCircuitSpec spec;
  spec.name = "rnd_rt";
  spec.target_gates = 60;
  spec.primary_inputs = 10;
  spec.seed = 21;
  const Netlist original = benchgen::random_circuit(lib(), spec);
  std::ostringstream out;
  write_verilog(original, out);
  std::istringstream in(out.str());
  const Netlist reloaded = read_verilog(lib(), in);
  expect_same_structure(original, reloaded);
  std::ostringstream again;
  write_verilog(reloaded, again);
  EXPECT_EQ(out.str(), again.str());
}

TEST(Verilog, RoundTripsPrimaryInputFedStraightOut) {
  // A PI that is also a PO cannot carry an `output` declaration in legal
  // Verilog; the writer's tr:primary_output directive must preserve the
  // marking across the round-trip.
  Netlist original(lib(), "passthrough");
  const NetId a = original.add_net("a");
  original.mark_primary_input(a);
  original.mark_primary_output(a);  // fed straight out
  const NetId b = original.add_net("b");
  original.mark_primary_input(b);
  const NetId y = original.add_net("y");
  original.add_gate("g", "nand2", {a, b}, y);
  original.mark_primary_output(y);

  std::ostringstream out;
  write_verilog(original, out);
  EXPECT_NE(out.str().find("// tr:primary_output a"), std::string::npos);
  std::istringstream in(out.str());
  const Netlist reloaded = read_verilog(lib(), in);
  expect_same_structure(original, reloaded);
  ASSERT_EQ(reloaded.primary_outputs().size(), 2u);
  EXPECT_TRUE(reloaded.net(reloaded.find_net("a")).is_primary_output);

  std::ostringstream again;
  write_verilog(reloaded, again);
  EXPECT_EQ(out.str(), again.str());
}

TEST(Verilog, ReaderHandlesCommentsAndWhitespace) {
  std::istringstream in(
      "// header comment\n"
      "// tr:primary_outputs are declared below (prose, not a directive)\n"
      "module /* inline */ top (a, b, y);\n"
      "  input a;\n\n"
      "  input b;\n"
      "  output y;\n"
      "  /* a block\n     spanning lines */\n"
      "  nand2 g0 (.a(a), .b(b),\n"
      "            .y(y));\n"
      "endmodule\n");
  const Netlist nl = read_verilog(lib(), in);
  EXPECT_EQ(nl.name(), "top");
  EXPECT_EQ(nl.gate_count(), 1);
  EXPECT_EQ(nl.primary_inputs().size(), 2u);
  EXPECT_EQ(nl.net(nl.primary_outputs().front()).name, "y");
}

TEST(Verilog, ReaderRejectsMalformedInput) {
  const auto check_throws = [&](const char* text) {
    std::istringstream in(text);
    EXPECT_THROW(read_verilog(lib(), in), Error) << text;
  };
  check_throws("");                                          // no module
  check_throws("module t (y); output y;\n");                 // no endmodule
  check_throws("module t (y); output y; endmodule trail");   // trailing
  check_throws("module t (a, y); input a; output y;\n"
               "bogus g (.a(a), .y(y)); endmodule");          // unknown cell
  check_throws("module t (a, y); input a; output y;\n"
               "inv g (.a(q), .y(y)); endmodule");            // undeclared net
  check_throws("module t (a, y); input a; output y;\n"
               "inv g (.z(a), .y(y)); endmodule");            // unknown pin
  check_throws("module t (a, y); input a; output y;\n"
               "inv g (.a(a)); endmodule");                   // missing .y
  check_throws("module t (a, y); input a; output y;\n"
               "nand2 g (.a(a), .a(a), .y(y)); endmodule");   // pin twice
  check_throws("module t (a, y); input a; output y; wire w;\n"
               "inv g (.y(w), .a(a), .y(y)); endmodule");     // output twice
  check_throws("module t (a, y); input a; input a; output y;\n"
               "inv g (.a(a), .y(y)); endmodule");            // net twice
  check_throws("module t (a, b, y); input a; output y;\n"
               "inv g (.a(a), .y(y)); endmodule");            // undeclared port
}

}  // namespace
}  // namespace tr::netlist
