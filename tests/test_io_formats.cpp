// Tests for the auxiliary interchange formats: activity files and the
// structural Verilog writer.

#include <gtest/gtest.h>

#include <sstream>

#include "benchgen/generators.hpp"
#include "celllib/library.hpp"
#include "netlist/activity_io.hpp"
#include "netlist/verilog.hpp"
#include "opt/scenario.hpp"
#include "power/circuit_power.hpp"
#include "util/error.hpp"

namespace tr::netlist {
namespace {

using celllib::CellLibrary;

CellLibrary& lib() {
  static CellLibrary instance = CellLibrary::standard();
  return instance;
}

TEST(ActivityIo, RoundTripsPrimaryInputStatistics) {
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 4);
  const auto original = opt::scenario_a(nl, 17);

  // Serialise through the circuit-activity vector.
  std::vector<boolfn::SignalStats> net_stats(
      static_cast<std::size_t>(nl.net_count()));
  for (const auto& [id, s] : original) {
    net_stats[static_cast<std::size_t>(id)] = s;
  }
  std::ostringstream out;
  write_activity(nl, net_stats, out);

  std::istringstream in(out.str());
  const auto reloaded = read_activity(nl, in);
  ASSERT_EQ(reloaded.size(), original.size());
  for (const auto& [id, s] : original) {
    ASSERT_TRUE(reloaded.contains(id));
    EXPECT_NEAR(reloaded.at(id).prob, s.prob, 1e-6);
    EXPECT_NEAR(reloaded.at(id).density, s.density, 1e-2);
  }
}

TEST(ActivityIo, WholeCircuitDump) {
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 2);
  const auto pi_stats = opt::scenario_b(nl);
  const auto activity = power::propagate_activity(nl, pi_stats);
  std::ostringstream out;
  write_activity(nl, activity.net_stats, out, /*all_nets=*/true);
  // One line per net plus two comment lines.
  int lines = 0;
  std::istringstream in(out.str());
  std::string line;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, nl.net_count() + 2);
}

TEST(ActivityIo, Errors) {
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 2);
  const auto check_throws = [&](const char* text) {
    Netlist copy = nl;
    std::istringstream in(text);
    EXPECT_THROW(read_activity(copy, in), Error) << text;
  };
  check_throws("nosuchnet 0.5 1000\n");
  check_throws("s0 0.5 1000\n");            // not a primary input
  check_throws("a0 1.5 1000\n");            // probability out of range
  check_throws("a0 0.5 -3\n");              // negative density
  check_throws("a0 0.5\n");                 // arity
  check_throws("a0 zzz 1\n");               // malformed number
  check_throws("a0 0.5 1\na0 0.5 1\n");     // duplicate
  check_throws("a0 0.5 1\n");               // missing other PIs
}

TEST(Verilog, EmitsWellFormedModule) {
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 2);
  std::ostringstream out;
  write_verilog(nl, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("module rca2 ("), std::string::npos);
  EXPECT_NE(text.find("endmodule"), std::string::npos);
  EXPECT_NE(text.find("input a0;"), std::string::npos);
  EXPECT_NE(text.find("output s0;"), std::string::npos);
  // One instantiation per gate.
  std::size_t count = 0, pos = 0;
  while ((pos = text.find(".y(", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, static_cast<std::size_t>(nl.gate_count()));
}

TEST(Verilog, SanitisesAwkwardNames) {
  Netlist nl(lib(), "weird-top");
  const NetId in = nl.add_net("3via[2].x");
  nl.mark_primary_input(in);
  const NetId out_net = nl.add_net("out!");
  nl.add_gate("u-1", "inv", {in}, out_net);
  nl.mark_primary_output(out_net);

  std::ostringstream out;
  write_verilog(nl, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("module weird_top"), std::string::npos);
  EXPECT_NE(text.find("n3via_2__x"), std::string::npos);
  EXPECT_NE(text.find("out_"), std::string::npos);
  EXPECT_EQ(text.find("out!"), std::string::npos);  // no raw names leak
}

TEST(Verilog, NameCollisionsResolved) {
  Netlist nl(lib(), "collide");
  const NetId a = nl.add_net("sig a");
  const NetId b = nl.add_net("sig_a");
  nl.mark_primary_input(a);
  nl.mark_primary_input(b);
  const NetId y = nl.add_net("y");
  nl.add_gate("g", "nand2", {a, b}, y);
  nl.mark_primary_output(y);

  std::ostringstream out;
  write_verilog(nl, out);
  const std::string text = out.str();
  // Both inputs appear, distinctly.
  EXPECT_NE(text.find("input sig_a;"), std::string::npos);
  EXPECT_NE(text.find("input sig_a_1;"), std::string::npos);
}

}  // namespace
}  // namespace tr::netlist
