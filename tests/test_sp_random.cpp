// Randomised property tests over arbitrary series-parallel gate
// topologies (not just library shapes): complementarity, path-function
// invariants, enumeration-vs-oracle equality, encode/parse round trips
// and model consistency must hold for *every* SP gate, not only Table 2.

#include <gtest/gtest.h>

#include <set>

#include "boolfn/signal.hpp"
#include "celllib/cell.hpp"
#include "gategraph/gate_graph.hpp"
#include "gategraph/sp_parse.hpp"
#include "power/gate_power.hpp"
#include "random_sp_tree.hpp"
#include "util/rng.hpp"

namespace tr::gategraph {
namespace {

using testutil::random_sp_tree;

class RandomTopology : public ::testing::TestWithParam<int> {};

TEST_P(RandomTopology, InvariantsHold) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 2 + static_cast<int>(rng.next_below(5));
    std::vector<int> inputs;
    for (int i = 0; i < n; ++i) inputs.push_back(i);
    const SpNode pulldown = random_sp_tree(inputs, rng);
    const GateTopology gate = GateTopology::from_pulldown(pulldown, n);

    // 1. Output function is the complement of the pull-down conduction.
    const auto fn = gate.output_function();
    EXPECT_EQ(fn, ~conduction_function(gate.nmos(), DeviceType::nmos, n));

    // 2. encode/parse round trip for both networks.
    EXPECT_EQ(encode(parse_sp_tree(encode(gate.nmos()))), encode(gate.nmos()));
    EXPECT_EQ(encode(parse_sp_tree(encode(gate.pmos()))), encode(gate.pmos()));

    // 3. Pivoting is an involution that preserves the function.
    for (int gap = 0; gap < gate.internal_node_count(); ++gap) {
      const GateTopology pivoted = gate.pivoted(gap);
      EXPECT_EQ(pivoted.output_function(), fn);
      EXPECT_EQ(pivoted.pivoted(gap).canonical_key(), gate.canonical_key());
    }

    // 4. Enumeration equals the oracle (skip huge spaces to stay fast).
    if (gate.reordering_count_formula() <= 160) {
      std::set<std::string> pivot_keys, brute_keys;
      for (const auto& c : gate.all_reorderings()) {
        EXPECT_TRUE(pivot_keys.insert(c.canonical_key()).second);
        EXPECT_EQ(c.output_function(), fn);
      }
      for (const auto& c : gate.all_reorderings_brute()) {
        brute_keys.insert(c.canonical_key());
      }
      EXPECT_EQ(pivot_keys, brute_keys);
      EXPECT_EQ(pivot_keys.size(), gate.reordering_count_formula());
    }

    // 5. Graph-level invariants: H_y == fn, H & G == 0 everywhere,
    //    terminal counts sum to twice the transistor count.
    const GateGraph graph(gate);
    EXPECT_EQ(graph.h_function(GateGraph::output_node), fn);
    int terminal_sum = 0;
    for (int c : graph.terminal_counts()) terminal_sum += c;
    EXPECT_EQ(terminal_sum, 2 * gate.transistor_count());
    for (int node = GateGraph::output_node; node < graph.node_count();
         ++node) {
      EXPECT_TRUE((graph.h_function(node) & graph.g_function(node)).is_zero())
          << graph.node_name(node);
    }

    // 6. Model consistency: the extended model's output density equals
    //    Najm's density for random input statistics.
    std::vector<boolfn::SignalStats> stats;
    for (int i = 0; i < n; ++i) {
      stats.push_back({rng.next_double(), rng.uniform(0.0, 1e6)});
    }
    const celllib::Tech tech;
    const auto caps = celllib::node_capacitances(graph, tech, 10e-15);
    const auto gp = power::evaluate_gate_power(graph, caps, stats, tech);
    const double najm = boolfn::output_density(fn, stats);
    EXPECT_NEAR(gp.output.density, najm, 1e-6 * std::max(1.0, najm));
    EXPECT_GE(gp.total_power, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTopology, ::testing::Range(1, 13));

TEST(RandomTopology, DeepNestedShape) {
  // A hand-built 8-transistor nested shape exercising series-in-parallel-
  // in-series nesting beyond any library cell.
  const SpNode pd = SpNode::series(
      {SpNode::parallel(
           {SpNode::series({SpNode::transistor(0),
                            SpNode::parallel({SpNode::transistor(1),
                                              SpNode::transistor(2)})}),
            SpNode::transistor(3)}),
       SpNode::transistor(4)});
  const GateTopology gate = GateTopology::from_pulldown(pd, 5);
  // ordering_count: inner series (t0, par) = 2! = 2; outer parallel = 2;
  // outer series = 2! * 2 = ... verify against the oracle instead.
  const auto all = gate.all_reorderings();
  std::set<std::string> keys;
  for (const auto& c : all) keys.insert(c.canonical_key());
  std::set<std::string> brute;
  for (const auto& c : gate.all_reorderings_brute()) {
    brute.insert(c.canonical_key());
  }
  EXPECT_EQ(keys, brute);
  EXPECT_EQ(keys.size(), gate.reordering_count_formula());
  EXPECT_EQ(all.size(), keys.size());
}

}  // namespace
}  // namespace tr::gategraph
