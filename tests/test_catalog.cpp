// Tests for the per-cell reordering catalogs (celllib::ReorderCatalog)
// and the configuration isomorphism they are built on: every derived
// table must equal direct graph characterisation bit for bit, the
// enumeration order must match GateTopology::all_reorderings (and, as a
// set, the brute-force oracle — the guard that keeps all_reorderings_brute
// test-only), and the CellLibrary cache must share catalogs.

#include <gtest/gtest.h>

#include <set>

#include "celllib/catalog.hpp"
#include "celllib/library.hpp"
#include "gategraph/gate_graph.hpp"
#include "gategraph/isomorphism.hpp"
#include "random_sp_tree.hpp"
#include "util/rng.hpp"

namespace tr::celllib {
namespace {

using gategraph::GateGraph;
using gategraph::GateTopology;
using gategraph::SpNode;

/// Asserts every node table of every catalog configuration equals what a
/// fresh GateGraph characterisation computes — the oracle the derivation
/// by variable permutation must reproduce exactly.
void expect_catalog_matches_graphs(const ReorderCatalog& catalog) {
  for (const CatalogConfig& entry : catalog.configs()) {
    const GateGraph graph(entry.topology);
    const std::vector<int> terminals = graph.terminal_counts();
    ASSERT_EQ(entry.nodes.size(),
              static_cast<std::size_t>(graph.internal_node_count()) + 1);
    // Node order contract: internal nodes ascending, output last.
    for (std::size_t k = 0; k + 1 < entry.nodes.size(); ++k) {
      EXPECT_EQ(entry.nodes[k].node,
                GateGraph::first_internal_node + static_cast<int>(k));
    }
    EXPECT_EQ(entry.nodes.back().node, GateGraph::output_node);
    for (const CatalogNode& node : entry.nodes) {
      EXPECT_EQ(node.terminal_count,
                terminals[static_cast<std::size_t>(node.node)]);
      EXPECT_EQ(node.h, graph.h_function(node.node));
      EXPECT_EQ(node.g, graph.g_function(node.node));
      ASSERT_EQ(node.dh.size(),
                static_cast<std::size_t>(catalog.input_count()));
      ASSERT_EQ(node.dg.size(),
                static_cast<std::size_t>(catalog.input_count()));
      for (int i = 0; i < catalog.input_count(); ++i) {
        EXPECT_EQ(node.dh[static_cast<std::size_t>(i)],
                  node.h.boolean_difference(i));
        EXPECT_EQ(node.dg[static_cast<std::size_t>(i)],
                  node.g.boolean_difference(i));
      }
    }
  }
}

TEST(ReorderCatalog, EveryLibraryCellMatchesGraphOracle) {
  const CellLibrary lib = CellLibrary::standard();
  for (const std::string& name : lib.cell_names()) {
    SCOPED_TRACE(name);
    const ReorderCatalog catalog =
        ReorderCatalog::build(lib.cell(name).topology());
    expect_catalog_matches_graphs(catalog);
    // Derivation must actually kick in for every multi-config cell with
    // instance-mates (sanity that the fast path is exercised).
    EXPECT_LE(catalog.characterized_instances(),
              static_cast<int>(catalog.configs().size()));
  }
}

TEST(ReorderCatalog, EnumerationOrderMatchesAllReorderingsAndBruteOracle) {
  const CellLibrary lib = CellLibrary::standard();
  for (const char* name : {"nand3", "aoi21", "oai221", "aoi222"}) {
    SCOPED_TRACE(name);
    const GateTopology& start = lib.cell(name).topology();
    const ReorderCatalog catalog = ReorderCatalog::build(start);
    const auto reference = start.all_reorderings();
    ASSERT_EQ(catalog.configs().size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(catalog.configs()[i].topology.canonical_key(),
                reference[i].canonical_key());
    }
    // The brute-force oracle (test-only) agrees as a set and on count.
    std::set<std::string> catalog_keys, brute_keys;
    for (const auto& entry : catalog.configs()) {
      EXPECT_TRUE(catalog_keys.insert(entry.topology.canonical_key()).second);
    }
    for (const auto& config : start.all_reorderings_brute()) {
      brute_keys.insert(config.canonical_key());
    }
    EXPECT_EQ(catalog_keys, brute_keys);
    EXPECT_EQ(catalog_keys.size(), start.reordering_count_formula());
  }
}

TEST(ReorderCatalog, StartingConfigurationComesFirstWithInstanceFlag) {
  const CellLibrary lib = CellLibrary::standard();
  const GateTopology& oai21 = lib.cell("oai21").topology();
  const ReorderCatalog catalog = ReorderCatalog::build(oai21);
  ASSERT_FALSE(catalog.configs().empty());
  EXPECT_EQ(catalog.configs().front().topology.canonical_key(),
            oai21.canonical_key());
  EXPECT_TRUE(catalog.configs().front().same_instance_as_first);
  // oai21 has two layout instances (paper Sec. 5.1): some configuration
  // must fall outside the starting instance.
  bool saw_other_instance = false;
  const std::string first_key = oai21.instance_key();
  for (const CatalogConfig& entry : catalog.configs()) {
    EXPECT_EQ(entry.same_instance_as_first,
              entry.topology.instance_key() == first_key);
    saw_other_instance = saw_other_instance || !entry.same_instance_as_first;
  }
  EXPECT_TRUE(saw_other_instance);
}

TEST(ReorderCatalog, NonCanonicalStartEnumeratesFromItself) {
  const CellLibrary lib = CellLibrary::standard();
  const GateTopology pivoted = lib.cell("nand3").topology().pivoted(1);
  const ReorderCatalog catalog = ReorderCatalog::build(pivoted);
  EXPECT_EQ(catalog.configs().front().topology.canonical_key(),
            pivoted.canonical_key());
  EXPECT_EQ(catalog.configs().size(), 6u);
  expect_catalog_matches_graphs(catalog);
}

TEST(ReorderCatalog, RandomTopologiesMatchGraphOracle) {
  // Catalog derivation must hold for arbitrary SP shapes, not only the
  // library; same generator as test_sp_random.cpp.
  Rng rng(20260728);
  for (int trial = 0; trial < 12; ++trial) {
    const int n = 2 + static_cast<int>(rng.next_below(4));
    std::vector<int> inputs;
    for (int i = 0; i < n; ++i) inputs.push_back(i);
    const GateTopology gate = GateTopology::from_pulldown(
        testutil::random_sp_tree(inputs, rng, /*max_groups=*/3), n);
    if (gate.reordering_count_formula() > 64) continue;  // keep it fast
    SCOPED_TRACE(gate.canonical_key());
    expect_catalog_matches_graphs(ReorderCatalog::build(gate));
  }
}

TEST(ConfigIsomorphism, SelfIsomorphismIsIdentityShaped) {
  const CellLibrary lib = CellLibrary::standard();
  const GateTopology& aoi22 = lib.cell("aoi22").topology();
  const auto iso = gategraph::find_isomorphism(aoi22, aoi22);
  ASSERT_TRUE(iso.has_value());
  // Self-matching need not be the identity permutation (symmetric gates
  // admit several), but it must be a valid permutation and remap.
  std::set<int> vars(iso->var_perm.begin(), iso->var_perm.end());
  EXPECT_EQ(vars.size(), iso->var_perm.size());
  std::set<int> nodes(iso->node_remap.begin(), iso->node_remap.end());
  EXPECT_EQ(nodes.size(), iso->node_remap.size());
}

TEST(ConfigIsomorphism, RejectsDifferentShapes) {
  const CellLibrary lib = CellLibrary::standard();
  // oai21's two configurations S(P01,T2) and S(T2,P01) are different
  // layout instances — no single input relabelling maps one onto the
  // other.
  const GateTopology& oai21 = lib.cell("oai21").topology();
  const GateTopology flipped = oai21.pivoted(0);
  EXPECT_NE(oai21.instance_key(), flipped.instance_key());
  EXPECT_FALSE(gategraph::find_isomorphism(oai21, flipped).has_value());
  // And across cells of different arity.
  EXPECT_FALSE(gategraph::find_isomorphism(lib.cell("nand2").topology(),
                                           lib.cell("nand3").topology())
                   .has_value());
}

TEST(CellLibraryCatalogCache, SharesOneCatalogPerConfiguration) {
  const CellLibrary lib = CellLibrary::standard();
  const auto first = lib.catalog(lib.cell("nand3").topology());
  const auto second = lib.catalog(lib.cell("nand3").topology());
  EXPECT_EQ(first.get(), second.get());  // same cached instance
  const auto other = lib.catalog(lib.cell("nand2").topology());
  EXPECT_NE(first.get(), other.get());
  // A different configuration of the same cell gets its own catalog
  // (enumeration order starts from the given configuration).
  const auto pivoted = lib.catalog(lib.cell("nand3").topology().pivoted(0));
  EXPECT_NE(first.get(), pivoted.get());
  EXPECT_EQ(pivoted->configs().front().topology.canonical_key(),
            lib.cell("nand3").topology().pivoted(0).canonical_key());
}

TEST(CellLibraryCatalogCache, DistinguishesInputCountsOfIdenticalTrees) {
  // Identical trees declared over different variable universes (trailing
  // vacuous inputs are legal for hand-built topologies) must not collide
  // on one cache entry: their tables have different widths.
  const CellLibrary lib;
  const SpNode stack = SpNode::series({SpNode::transistor(0),
                                       SpNode::transistor(1)});
  const GateTopology two = GateTopology::from_pulldown(stack, 2);
  const GateTopology three = GateTopology::from_pulldown(stack, 3);
  const auto catalog2 = lib.catalog(two);
  const auto catalog3 = lib.catalog(three);
  EXPECT_NE(catalog2.get(), catalog3.get());
  EXPECT_EQ(catalog2->input_count(), 2);
  EXPECT_EQ(catalog3->input_count(), 3);
}

TEST(CellLibraryCatalogCache, CopiedLibraryKeepsWorking) {
  const CellLibrary lib = CellLibrary::standard();
  const auto before = lib.catalog(lib.cell("nand2").topology());
  const CellLibrary copy = lib;  // copies cells and built catalogs
  const auto after = copy.catalog(copy.cell("nand2").topology());
  EXPECT_EQ(before.get(), after.get());  // shared immutable catalog
  EXPECT_EQ(copy.size(), lib.size());
}

}  // namespace
}  // namespace tr::celllib
