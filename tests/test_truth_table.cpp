// Unit and property tests for the dense truth-table boolean kernel.

#include <gtest/gtest.h>

#include "boolfn/minterm_weights.hpp"
#include "boolfn/truth_table.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace tr::boolfn {
namespace {

TruthTable random_table(int vars, Rng& rng) {
  std::vector<bool> bits(1ULL << vars);
  for (std::size_t i = 0; i < bits.size(); ++i) bits[i] = rng.bernoulli(0.5);
  return TruthTable::from_bits(vars, bits);
}

TEST(TruthTable, ConstantsAndCounting) {
  EXPECT_TRUE(TruthTable::zero(3).is_zero());
  EXPECT_TRUE(TruthTable::one(3).is_one());
  EXPECT_EQ(TruthTable::one(3).count_ones(), 8u);
  EXPECT_EQ(TruthTable::zero(0).minterm_count(), 1u);
  EXPECT_TRUE(TruthTable::one(0).is_one());
}

TEST(TruthTable, VariableProjection) {
  const TruthTable x0 = TruthTable::variable(2, 0);
  const TruthTable x1 = TruthTable::variable(2, 1);
  EXPECT_EQ(x0.to_binary_string(), "0101");
  EXPECT_EQ(x1.to_binary_string(), "0011");
}

TEST(TruthTable, VariableAboveWordBoundary) {
  // Variable 7 over 8 vars: 256 minterms, alternating blocks of 128.
  const TruthTable x7 = TruthTable::variable(8, 7);
  EXPECT_EQ(x7.count_ones(), 128u);
  EXPECT_FALSE(x7.value_at(0));
  EXPECT_TRUE(x7.value_at(1ULL << 7));
  EXPECT_TRUE(x7.value_at(255));
}

TEST(TruthTable, BasicAlgebra) {
  const TruthTable a = TruthTable::variable(2, 0);
  const TruthTable b = TruthTable::variable(2, 1);
  EXPECT_EQ((a & b).to_binary_string(), "0001");
  EXPECT_EQ((a | b).to_binary_string(), "0111");
  EXPECT_EQ((a ^ b).to_binary_string(), "0110");
  EXPECT_EQ((~a).to_binary_string(), "1010");
}

TEST(TruthTable, DeMorganProperty) {
  Rng rng(101);
  for (int vars = 1; vars <= 8; ++vars) {
    const TruthTable f = random_table(vars, rng);
    const TruthTable g = random_table(vars, rng);
    EXPECT_EQ(~(f & g), ~f | ~g);
    EXPECT_EQ(~(f | g), ~f & ~g);
  }
}

TEST(TruthTable, XorIsAddMod2) {
  Rng rng(102);
  const TruthTable f = random_table(5, rng);
  const TruthTable g = random_table(5, rng);
  EXPECT_EQ(f ^ g, (f & ~g) | (~f & g));
  EXPECT_TRUE((f ^ f).is_zero());
}

TEST(TruthTable, FromCubes) {
  // f = a*~c + b over (a,b,c)
  const TruthTable f = TruthTable::from_cubes(3, {"1-0", "-1-"});
  const TruthTable a = TruthTable::variable(3, 0);
  const TruthTable b = TruthTable::variable(3, 1);
  const TruthTable c = TruthTable::variable(3, 2);
  EXPECT_EQ(f, (a & ~c) | b);
  EXPECT_TRUE(TruthTable::from_cubes(2, {}).is_zero());
  EXPECT_TRUE(TruthTable::from_cubes(2, {"--"}).is_one());
}

TEST(TruthTable, FromCubesRejectsBadInput) {
  EXPECT_THROW(TruthTable::from_cubes(2, {"1"}), Error);
  EXPECT_THROW(TruthTable::from_cubes(2, {"1x"}), Error);
}

TEST(TruthTable, CofactorShannonExpansion) {
  Rng rng(103);
  for (int trial = 0; trial < 20; ++trial) {
    const int vars = 1 + static_cast<int>(rng.next_below(7));
    const TruthTable f = random_table(vars, rng);
    for (int j = 0; j < vars; ++j) {
      const TruthTable x = TruthTable::variable(vars, j);
      const TruthTable expansion =
          (x & f.cofactor(j, true)) | (~x & f.cofactor(j, false));
      EXPECT_EQ(expansion, f) << "vars=" << vars << " j=" << j;
      EXPECT_FALSE(f.cofactor(j, true).depends_on(j));
    }
  }
}

TEST(TruthTable, BooleanDifferenceDefinition) {
  Rng rng(104);
  for (int trial = 0; trial < 20; ++trial) {
    const int vars = 2 + static_cast<int>(rng.next_below(5));
    const TruthTable f = random_table(vars, rng);
    for (int j = 0; j < vars; ++j) {
      const TruthTable diff = f.boolean_difference(j);
      // Minterms where toggling x_j toggles f.
      for (std::uint64_t m = 0; m < f.minterm_count(); ++m) {
        const bool toggles =
            f.value_at(m) != f.value_at(m ^ (1ULL << j));
        EXPECT_EQ(diff.value_at(m), toggles);
      }
    }
  }
}

TEST(TruthTable, BooleanDifferenceOfAnd) {
  // d(ab)/da = b.
  const TruthTable a = TruthTable::variable(2, 0);
  const TruthTable b = TruthTable::variable(2, 1);
  EXPECT_EQ((a & b).boolean_difference(0), b);
  // d(a^b)/da = 1.
  EXPECT_TRUE((a ^ b).boolean_difference(0).is_one());
}

TEST(TruthTable, SupportDetection) {
  const TruthTable a = TruthTable::variable(3, 0);
  const TruthTable c = TruthTable::variable(3, 2);
  const TruthTable f = a | c;
  EXPECT_TRUE(f.depends_on(0));
  EXPECT_FALSE(f.depends_on(1));
  EXPECT_TRUE(f.depends_on(2));
  EXPECT_EQ(f.support(), (std::vector<int>{0, 2}));
}

TEST(TruthTable, ExistsQuantification) {
  const TruthTable a = TruthTable::variable(2, 0);
  const TruthTable b = TruthTable::variable(2, 1);
  EXPECT_EQ((a & b).exists(0), b);
  EXPECT_TRUE((a | b).exists(0).is_one());
}

TEST(TruthTable, ComposeSubstitutes) {
  // f = a & b; substitute a <- (b | a): f becomes (b|a) & b = b.
  const TruthTable a = TruthTable::variable(2, 0);
  const TruthTable b = TruthTable::variable(2, 1);
  EXPECT_EQ((a & b).compose(0, a | b), b);
}

TEST(TruthTable, WidenedKeepsFunction) {
  const TruthTable f2 = TruthTable::variable(2, 1);
  const TruthTable f4 = f2.widened(4);
  EXPECT_EQ(f4.var_count(), 4);
  for (std::uint64_t m = 0; m < 16; ++m) {
    EXPECT_EQ(f4.value_at(m), (m >> 1) & 1ULL);
  }
  EXPECT_FALSE(f4.depends_on(2));
  EXPECT_FALSE(f4.depends_on(3));
}

TEST(TruthTable, PermutedRelabelsVariables) {
  // f(a,b,c) = a & ~c, permutation a->2, b->0, c->1 gives x2 & ~x1.
  const TruthTable f = TruthTable::variable(3, 0) & ~TruthTable::variable(3, 2);
  const TruthTable g = f.permuted({2, 0, 1});
  EXPECT_EQ(g, TruthTable::variable(3, 2) & ~TruthTable::variable(3, 1));
}

TEST(TruthTable, PermutedIdentityAndInverse) {
  Rng rng(105);
  const TruthTable f = random_table(5, rng);
  EXPECT_EQ(f.permuted({0, 1, 2, 3, 4}), f);
  const std::vector<int> perm{3, 0, 4, 1, 2};
  std::vector<int> inverse(5);
  for (int j = 0; j < 5; ++j) inverse[perm[static_cast<std::size_t>(j)]] = j;
  EXPECT_EQ(f.permuted(perm).permuted(inverse), f);
}

TEST(TruthTable, PermutedRejectsNonPermutation) {
  const TruthTable f = TruthTable::variable(2, 0);
  EXPECT_THROW(f.permuted({0, 0}), Error);
  EXPECT_THROW(f.permuted({0}), Error);
}

TEST(TruthTable, CompactedProjectsSupport) {
  // f over (a,b,c) = a | c compacted onto {0,2}.
  const TruthTable f =
      TruthTable::variable(3, 0) | TruthTable::variable(3, 2);
  const TruthTable g = f.compacted({0, 2});
  EXPECT_EQ(g.var_count(), 2);
  EXPECT_EQ(g, TruthTable::variable(2, 0) | TruthTable::variable(2, 1));
  EXPECT_THROW(f.compacted({0}), Error);  // dropped var not vacuous
}

TEST(TruthTable, ProbabilityMatchesEnumeration) {
  Rng rng(106);
  for (int trial = 0; trial < 10; ++trial) {
    const int vars = 1 + static_cast<int>(rng.next_below(6));
    const TruthTable f = random_table(vars, rng);
    std::vector<double> probs;
    for (int j = 0; j < vars; ++j) probs.push_back(rng.next_double());
    double expected = 0.0;
    for (std::uint64_t m = 0; m < f.minterm_count(); ++m) {
      if (!f.value_at(m)) continue;
      double w = 1.0;
      for (int j = 0; j < vars; ++j) {
        w *= ((m >> j) & 1ULL) ? probs[static_cast<std::size_t>(j)]
                               : 1.0 - probs[static_cast<std::size_t>(j)];
      }
      expected += w;
    }
    EXPECT_NEAR(f.probability(probs), expected, 1e-12);
  }
}

TEST(TruthTable, ProbabilityOfComplement) {
  Rng rng(107);
  const TruthTable f = random_table(4, rng);
  const std::vector<double> probs{0.1, 0.9, 0.4, 0.7};
  EXPECT_NEAR(f.probability(probs) + (~f).probability(probs), 1.0, 1e-12);
}

TEST(TruthTable, ProbabilityValidatesInput) {
  const TruthTable f = TruthTable::variable(2, 0);
  EXPECT_THROW(f.probability({0.5}), Error);
  EXPECT_THROW(f.probability({0.5, 1.5}), Error);
}

TEST(TruthTable, RejectsTooManyVariables) {
  EXPECT_THROW(TruthTable t(TruthTable::max_vars + 1), Error);
  EXPECT_THROW(TruthTable t(-1), Error);
}

TEST(TruthTable, MixedArityOperandsRejected) {
  const TruthTable f = TruthTable::variable(2, 0);
  const TruthTable g = TruthTable::variable(3, 0);
  EXPECT_THROW(f & g, Error);
}

// Property sweep: the bit-parallel word operations agree with per-minterm
// semantics across widths that cross the 64-bit word boundary.
class TruthTableWidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(TruthTableWidthSweep, OperationsMatchPerMintermSemantics) {
  const int vars = GetParam();
  Rng rng(1000 + static_cast<std::uint64_t>(vars));
  const TruthTable f = random_table(vars, rng);
  const TruthTable g = random_table(vars, rng);
  const TruthTable fg_and = f & g;
  const TruthTable fg_or = f | g;
  const TruthTable f_not = ~f;
  for (std::uint64_t m = 0; m < f.minterm_count(); ++m) {
    EXPECT_EQ(fg_and.value_at(m), f.value_at(m) && g.value_at(m));
    EXPECT_EQ(fg_or.value_at(m), f.value_at(m) || g.value_at(m));
    EXPECT_EQ(f_not.value_at(m), !f.value_at(m));
  }
  EXPECT_EQ(f_not.count_ones() + f.count_ones(), f.minterm_count());
}

INSTANTIATE_TEST_SUITE_P(Widths, TruthTableWidthSweep,
                         ::testing::Values(0, 1, 2, 3, 5, 6, 7, 8, 10));

// The word-parallel kernel rewrites (cofactor, permute_vars, widened,
// MintermWeights-backed probability) against naive per-minterm oracles,
// specifically crossing the 64-bit word boundary at 6 variables.

TEST(TruthTableKernel, CofactorMatchesPerMintermOracle) {
  for (int vars : {1, 2, 5, 6, 7, 9}) {
    Rng rng(2000 + static_cast<std::uint64_t>(vars));
    const TruthTable f = random_table(vars, rng);
    for (int var = 0; var < vars; ++var) {
      for (bool value : {false, true}) {
        const TruthTable cof = f.cofactor(var, value);
        for (std::uint64_t m = 0; m < f.minterm_count(); ++m) {
          std::uint64_t src = m;
          if (value) {
            src |= 1ULL << var;
          } else {
            src &= ~(1ULL << var);
          }
          ASSERT_EQ(cof.value_at(m), f.value_at(src))
              << vars << " vars, var " << var << ", value " << value;
        }
      }
    }
  }
}

TEST(TruthTableKernel, PermuteVarsMatchesPerMintermOracle) {
  for (int vars : {2, 4, 6, 7, 8, 10}) {
    Rng rng(3000 + static_cast<std::uint64_t>(vars));
    const TruthTable f = random_table(vars, rng);
    for (int trial = 0; trial < 4; ++trial) {
      std::vector<int> perm(static_cast<std::size_t>(vars));
      for (int j = 0; j < vars; ++j) perm[static_cast<std::size_t>(j)] = j;
      rng.shuffle(perm.begin(), perm.end());
      const TruthTable p = f.permute_vars(perm);
      for (std::uint64_t m = 0; m < f.minterm_count(); ++m) {
        if (!f.value_at(m)) continue;
        std::uint64_t dst = 0;
        for (int j = 0; j < vars; ++j) {
          if ((m >> j) & 1ULL) dst |= 1ULL << perm[static_cast<std::size_t>(j)];
        }
        ASSERT_TRUE(p.value_at(dst)) << vars << " vars, trial " << trial;
      }
      ASSERT_EQ(p.count_ones(), f.count_ones());
    }
  }
}

TEST(TruthTableKernel, WidenedCrossesWordBoundary) {
  Rng rng(4000);
  const TruthTable f = random_table(3, rng);
  const TruthTable wide = f.widened(9);
  for (std::uint64_t m = 0; m < wide.minterm_count(); ++m) {
    ASSERT_EQ(wide.value_at(m), f.value_at(m & 7));
  }
  const TruthTable f7 = random_table(7, rng);
  const TruthTable wide8 = f7.widened(8);
  for (std::uint64_t m = 0; m < wide8.minterm_count(); ++m) {
    ASSERT_EQ(wide8.value_at(m), f7.value_at(m & 127));
  }
}

TEST(TruthTableKernel, ProbabilityMatchesEnumerationAboveWordBoundary) {
  Rng rng(5000);
  for (int vars : {7, 9}) {
    const TruthTable f = random_table(vars, rng);
    std::vector<double> probs;
    for (int j = 0; j < vars; ++j) probs.push_back(rng.next_double());
    double expected = 0.0;
    for (std::uint64_t m = 0; m < f.minterm_count(); ++m) {
      if (!f.value_at(m)) continue;
      double w = 1.0;
      for (int j = 0; j < vars; ++j) {
        w *= ((m >> j) & 1ULL) ? probs[static_cast<std::size_t>(j)]
                               : 1.0 - probs[static_cast<std::size_t>(j)];
      }
      expected += w;
    }
    EXPECT_NEAR(f.probability(probs), expected, 1e-12);
  }
}

TEST(TruthTableKernel, MintermWeightsReuseIsBitIdentical) {
  // The amortisation contract: one MintermWeights reused across many
  // tables returns exactly the doubles probability() would (probability
  // itself builds a fresh MintermWeights per call).
  Rng rng(6000);
  const std::vector<double> probs{0.12, 0.9, 0.5, 0.31, 0.77};
  MintermWeights weights(probs);
  for (int trial = 0; trial < 16; ++trial) {
    const TruthTable f = random_table(5, rng);
    const double via_reuse = weights.sum(f);
    const double via_probability = f.probability(probs);
    EXPECT_EQ(via_reuse, via_probability);  // bitwise, not approximate
  }
  // assign() rebinding matches a freshly constructed instance.
  const std::vector<double> other{0.5, 0.5, 0.01, 0.99, 0.6};
  weights.assign(other);
  const TruthTable f = random_table(5, rng);
  EXPECT_EQ(weights.sum(f), MintermWeights(other).sum(f));
  EXPECT_THROW(weights.sum(random_table(3, rng)), Error);
  EXPECT_THROW(weights.assign({0.5, 1.5}), Error);
}

}  // namespace
}  // namespace tr::boolfn
