// BatchOptimizer contract tests (ISSUE 4): batch results are bit-identical
// to N independent optimize() calls, deterministic across worker counts
// (both levels), the shared catalog cache characterises each structural
// form exactly once per batch, and the JSON report is byte-stable across
// --jobs values — including over the full 39-circuit Table 3 suite (the
// acceptance criterion, with a > 50% cache hit rate).

#include <gtest/gtest.h>

#include <sstream>

#include "benchgen/classic.hpp"
#include "benchgen/suite.hpp"
#include "celllib/library.hpp"
#include "mapper/mapper.hpp"
#include "netlist/blif.hpp"
#include "opt/batch.hpp"
#include "opt/batch_report.hpp"
#include "opt/scenario.hpp"
#include "util/error.hpp"

namespace tr::opt {
namespace {

using celllib::CellLibrary;
using celllib::Tech;

constexpr std::uint64_t kSeed = 1;

/// Suite entries small enough to optimize many times in one test.
const std::vector<std::string>& small_suite() {
  static const std::vector<std::string> names{"b1", "cm82a", "decod",
                                              "cm85a", "cmb"};
  return names;
}

std::vector<BatchCircuit> make_batch(const CellLibrary& library,
                                     const std::vector<std::string>& names) {
  std::vector<BatchCircuit> batch;
  for (const std::string& name : names) {
    batch.push_back(make_scenario_circuit(
        benchgen::build_benchmark(library, benchgen::suite_entry(name)), 'A',
        kSeed));
  }
  return batch;
}

void expect_identical_reports(const OptimizeReport& a,
                              const OptimizeReport& b) {
  EXPECT_EQ(a.model_power_before, b.model_power_before);
  EXPECT_EQ(a.model_power_after, b.model_power_after);
  EXPECT_EQ(a.gates_changed, b.gates_changed);
  EXPECT_EQ(a.configs_rejected_by_delay, b.configs_rejected_by_delay);
  EXPECT_EQ(a.configs_rejected_by_instance, b.configs_rejected_by_instance);
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (std::size_t i = 0; i < a.decisions.size(); ++i) {
    const GateDecision& da = a.decisions[i];
    const GateDecision& db = b.decisions[i];
    EXPECT_EQ(da.gate, db.gate);
    EXPECT_EQ(da.config_count, db.config_count);
    EXPECT_EQ(da.chosen_power, db.chosen_power);
    EXPECT_EQ(da.best_power, db.best_power);
    EXPECT_EQ(da.worst_power, db.worst_power);
    EXPECT_EQ(da.original_power, db.original_power);
    EXPECT_EQ(da.changed, db.changed);
  }
}

void expect_identical_configs(const netlist::Netlist& a,
                              const netlist::Netlist& b) {
  ASSERT_EQ(a.gate_count(), b.gate_count());
  for (netlist::GateId g = 0; g < a.gate_count(); ++g) {
    EXPECT_EQ(a.gate(g).config.canonical_key(),
              b.gate(g).config.canonical_key())
        << "gate " << g;
  }
}

TEST(BatchOptimizer, MatchesIndependentOptimizeCalls) {
  // Batch run against one shared library...
  const CellLibrary shared = CellLibrary::standard();
  const Tech tech;
  std::vector<BatchCircuit> batch = make_batch(shared, small_suite());
  BatchOptions options;
  options.jobs = 4;
  options.threads_per_circuit = 2;
  const BatchReport report =
      BatchOptimizer(shared, tech, options).run(batch);

  // ... must be bit-identical to N independent optimize() calls against
  // a *different* library instance (proving cache sharing changes no
  // result, only work).
  const CellLibrary independent_lib = CellLibrary::standard();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    netlist::Netlist fresh = benchgen::build_benchmark(
        independent_lib, benchgen::suite_entry(small_suite()[i]));
    const auto stats = scenario_a(fresh, circuit_seed(kSeed, fresh.name()));
    OptimizeOptions opt;
    opt.threads = 1;
    const OptimizeReport expected = optimize(fresh, stats, tech, opt);
    expect_identical_reports(expected, report.circuits[i].report);
    expect_identical_configs(fresh, batch[i].netlist);
  }
}

TEST(BatchOptimizer, DeterministicAcrossWorkerCounts) {
  const Tech tech;
  std::vector<BatchReport> reports;
  std::vector<std::vector<BatchCircuit>> batches;
  const std::vector<std::pair<int, int>> shapes = {
      {1, 1}, {4, 1}, {2, 3}, {0, 1}};
  for (const auto& [jobs, threads] : shapes) {
    const CellLibrary library = CellLibrary::standard();
    std::vector<BatchCircuit> batch = make_batch(library, small_suite());
    BatchOptions options;
    options.jobs = jobs;
    options.threads_per_circuit = threads;
    reports.push_back(BatchOptimizer(library, tech, options).run(batch));
    batches.push_back(std::move(batch));
  }
  for (std::size_t r = 1; r < reports.size(); ++r) {
    ASSERT_EQ(reports[0].circuits.size(), reports[r].circuits.size());
    EXPECT_EQ(reports[0].gates_total, reports[r].gates_total);
    EXPECT_EQ(reports[0].gates_changed, reports[r].gates_changed);
    EXPECT_EQ(reports[0].model_power_before, reports[r].model_power_before);
    EXPECT_EQ(reports[0].model_power_after, reports[r].model_power_after);
    EXPECT_EQ(reports[0].cache.hits, reports[r].cache.hits);
    EXPECT_EQ(reports[0].cache.misses, reports[r].cache.misses);
    for (std::size_t i = 0; i < reports[0].circuits.size(); ++i) {
      expect_identical_reports(reports[0].circuits[i].report,
                               reports[r].circuits[i].report);
      expect_identical_configs(batches[0][i].netlist, batches[r][i].netlist);
    }
  }
}

TEST(BatchOptimizer, SharesCatalogCacheAcrossCircuits) {
  const CellLibrary library = CellLibrary::standard();
  const Tech tech;

  // First batch on a cold cache: one miss per distinct structural form,
  // everything else hits — well above the 50% bar even on this small
  // batch, and lookups must equal one catalog fetch per gate.
  std::vector<BatchCircuit> batch = make_batch(library, small_suite());
  BatchOptions options;
  options.jobs = 3;
  const BatchReport cold = BatchOptimizer(library, tech, options).run(batch);
  EXPECT_EQ(cold.cache.lookups(),
            static_cast<std::uint64_t>(cold.gates_total));
  EXPECT_EQ(cold.cache.misses, library.cached_catalog_count());
  EXPECT_GT(cold.cache.hit_rate(), 0.5);

  // A second batch over the same library re-characterises nothing: the
  // canonical starting forms are already cached (optimized configs map
  // to the same stored keys only for unchanged gates, so fresh
  // canonical netlists are the clean probe).
  std::vector<BatchCircuit> again = make_batch(library, small_suite());
  const BatchReport warm = BatchOptimizer(library, tech, options).run(again);
  EXPECT_EQ(warm.cache.misses, 0u);
  EXPECT_EQ(warm.cache.hits, warm.cache.lookups());
}

TEST(BatchOptimizer, RejectsForeignLibraryNetlists) {
  const CellLibrary shared = CellLibrary::standard();
  const CellLibrary other = CellLibrary::standard();
  const Tech tech;
  std::vector<BatchCircuit> batch;
  batch.push_back(make_scenario_circuit(
      benchgen::build_benchmark(other, benchgen::suite_entry("b1")), 'A',
      kSeed));
  EXPECT_THROW(BatchOptimizer(shared, tech).run(batch), Error);
}

TEST(BatchOptimizer, EmptyBatch) {
  const CellLibrary library = CellLibrary::standard();
  const Tech tech;
  std::vector<BatchCircuit> batch;
  const BatchReport report = BatchOptimizer(library, tech).run(batch);
  EXPECT_EQ(report.circuits.size(), 0u);
  EXPECT_EQ(report.gates_total, 0);
  EXPECT_EQ(report.cache.lookups(), 0u);
}

TEST(BatchOptimizer, PropagatesCircuitFailures) {
  const CellLibrary library = CellLibrary::standard();
  const Tech tech;
  std::vector<BatchCircuit> batch = make_batch(library, {"b1", "cm82a"});
  batch[1].pi_stats.clear();  // optimize() must throw: missing PI stats
  BatchOptions options;
  options.jobs = 2;

  // keep_going (default): the failure is contained as an error record
  // and the healthy circuit still completes.
  const BatchReport report = BatchOptimizer(library, tech, options).run(batch);
  ASSERT_EQ(report.circuits.size(), 2u);
  EXPECT_EQ(report.circuits[0].status, CircuitStatus::ok);
  EXPECT_GT(report.circuits[0].gates, 0);
  ASSERT_EQ(report.circuits[1].status, CircuitStatus::error);
  ASSERT_TRUE(report.circuits[1].error.has_value());
  EXPECT_EQ(report.circuits[1].error->code, ErrorCode::invalid_argument);
  EXPECT_EQ(report.circuits_ok, 1);
  EXPECT_EQ(report.circuits_failed, 1);

  // fail_fast: the same failure aborts the batch out of run().
  options.keep_going = false;
  EXPECT_THROW(BatchOptimizer(library, tech, options).run(batch), Error);
}

TEST(BatchOptimizer, ClassicCircuitsBatch) {
  // The embedded classics go through the technology mapper, mirroring
  // the tr_opt --suite classic path end to end.
  const CellLibrary library = CellLibrary::standard();
  const Tech tech;
  std::vector<BatchCircuit> batch;
  for (const std::string& name : benchgen::classic_names()) {
    const auto logic =
        netlist::read_blif_logic_string(benchgen::classic_blif(name), name);
    batch.push_back(make_scenario_circuit(
        mapper::map_network(logic, library), 'A', kSeed));
  }
  const BatchReport report = BatchOptimizer(library, tech).run(batch);
  ASSERT_EQ(report.circuits.size(), benchgen::classic_names().size());
  for (const BatchCircuitResult& result : report.circuits) {
    EXPECT_GT(result.gates, 0);
    EXPECT_GT(result.report.model_power_before, 0.0);
    EXPECT_LE(result.report.model_power_after,
              result.report.model_power_before);
  }
  EXPECT_GT(report.cache.hit_rate(), 0.5);
}

TEST(BatchOptimizer, FullSuiteDeterministicWithHighHitRate) {
  // Acceptance criterion: the full 39-circuit suite batch-optimizes
  // deterministically (same JSON for jobs=1 and jobs=N) with a catalog
  // cache hit rate above 50%.
  const Tech tech;
  std::vector<std::string> names;
  for (const auto& spec : benchgen::table3_suite()) names.push_back(spec.name);

  BatchJsonOptions json;
  json.include_timing = false;

  std::string serial_json;
  std::string parallel_json;
  for (const int jobs : {1, 0}) {
    const CellLibrary library = CellLibrary::standard();
    std::vector<BatchCircuit> batch = make_batch(library, names);
    BatchOptions options;
    options.jobs = jobs;
    const BatchReport report =
        BatchOptimizer(library, tech, options).run(batch);
    EXPECT_EQ(report.circuits.size(), 39u);
    EXPECT_GT(report.cache.hit_rate(), 0.5);
    EXPECT_GT(report.gates_changed, 0);
    std::ostringstream out;
    write_batch_json(batch, report, options, out, json);
    (jobs == 1 ? serial_json : parallel_json) = out.str();
  }
  EXPECT_EQ(serial_json, parallel_json);
}

TEST(CircuitSeed, StableAndNameSensitive) {
  EXPECT_EQ(circuit_seed(1, "alu2"), circuit_seed(1, "alu2"));
  EXPECT_NE(circuit_seed(1, "alu2"), circuit_seed(2, "alu2"));
  EXPECT_NE(circuit_seed(1, "alu2"), circuit_seed(1, "alu4"));
  // Pinned value: the golden files depend on this derivation; changing
  // it invalidates tests/golden/ (regenerate via TR_UPDATE_GOLDEN).
  EXPECT_EQ(circuit_seed(0, ""), 0xa8c7f832281a39c5ULL);
}

}  // namespace
}  // namespace tr::opt
