// Tests for the Minato-Morreale irredundant SOP extraction.

#include <gtest/gtest.h>

#include "boolfn/isop.hpp"
#include "boolfn/truth_table.hpp"
#include "util/rng.hpp"

namespace tr::boolfn {
namespace {

TruthTable random_table(int vars, Rng& rng, double density = 0.5) {
  std::vector<bool> bits(1ULL << vars);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    bits[i] = rng.bernoulli(density);
  }
  return TruthTable::from_bits(vars, bits);
}

TEST(Isop, ConstantFunctions) {
  EXPECT_TRUE(isop(TruthTable::zero(3)).empty());
  const auto one_cover = isop(TruthTable::one(3));
  ASSERT_EQ(one_cover.size(), 1u);
  EXPECT_EQ(one_cover[0], "---");
}

TEST(Isop, SingleLiteral) {
  const auto cover = isop(TruthTable::variable(3, 1));
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], "-1-");
}

TEST(Isop, AndOrShapes) {
  const TruthTable a = TruthTable::variable(2, 0);
  const TruthTable b = TruthTable::variable(2, 1);
  EXPECT_EQ(isop(a & b), (std::vector<Cube>{"11"}));
  const auto or_cover = isop(a | b);
  EXPECT_EQ(or_cover.size(), 2u);
  EXPECT_EQ(TruthTable::from_cubes(2, or_cover), a | b);
}

TEST(Isop, XorNeedsTwoCubes) {
  const TruthTable f =
      TruthTable::variable(2, 0) ^ TruthTable::variable(2, 1);
  const auto cover = isop(f);
  EXPECT_EQ(cover.size(), 2u);
  EXPECT_EQ(TruthTable::from_cubes(2, cover), f);
}

TEST(Isop, CoverIsExactOnRandomFunctions) {
  Rng rng(42);
  for (int trial = 0; trial < 60; ++trial) {
    const int vars = 1 + static_cast<int>(rng.next_below(8));
    const double density = 0.15 + 0.7 * rng.next_double();
    const TruthTable f = random_table(vars, rng, density);
    const auto cover = isop(f);
    EXPECT_EQ(TruthTable::from_cubes(vars, cover), f)
        << "vars=" << vars << " trial=" << trial;
  }
}

TEST(Isop, CubesAreImplicants) {
  // Every cube of the cover must individually imply f.
  Rng rng(43);
  for (int trial = 0; trial < 20; ++trial) {
    const int vars = 2 + static_cast<int>(rng.next_below(6));
    const TruthTable f = random_table(vars, rng);
    for (const Cube& cube : isop(f)) {
      const TruthTable t = TruthTable::from_cubes(vars, {cube});
      EXPECT_TRUE((t & ~f).is_zero()) << "cube " << cube << " not an implicant";
    }
  }
}

TEST(Isop, IrredundantOnRandomFunctions) {
  // Dropping any single cube must lose part of the onset.
  Rng rng(44);
  for (int trial = 0; trial < 20; ++trial) {
    const int vars = 2 + static_cast<int>(rng.next_below(5));
    const TruthTable f = random_table(vars, rng, 0.4);
    const auto cover = isop(f);
    if (cover.size() < 2) continue;
    for (std::size_t drop = 0; drop < cover.size(); ++drop) {
      std::vector<Cube> reduced;
      for (std::size_t i = 0; i < cover.size(); ++i) {
        if (i != drop) reduced.push_back(cover[i]);
      }
      EXPECT_NE(TruthTable::from_cubes(vars, reduced), f)
          << "cube " << cover[drop] << " is redundant";
    }
  }
}

// Parameterized sweep over onset densities: sparse and dense functions
// both round-trip exactly.
class IsopDensitySweep : public ::testing::TestWithParam<double> {};

TEST_P(IsopDensitySweep, RoundTripsExactly) {
  Rng rng(static_cast<std::uint64_t>(GetParam() * 1000) + 7);
  for (int trial = 0; trial < 10; ++trial) {
    const TruthTable f = random_table(6, rng, GetParam());
    EXPECT_EQ(TruthTable::from_cubes(6, isop(f)), f);
  }
}

INSTANTIATE_TEST_SUITE_P(Density, IsopDensitySweep,
                         ::testing::Values(0.05, 0.25, 0.5, 0.75, 0.95));

}  // namespace
}  // namespace tr::boolfn
