// Unit tests for the util subsystem: RNG determinism and distribution
// sanity, running statistics, string helpers, table rendering, and the
// byte-stable JSON writer behind the batch reports.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace tr {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> buckets(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++buckets[rng.next_below(8)];
  for (int count : buckets) {
    EXPECT_NEAR(count, n / 8, n / 8 * 0.1);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(5);
  const double rate = 250.0;
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.exponential(rate));
  EXPECT_NEAR(stats.mean(), 1.0 / rate, 0.05 / rate);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(9);
  int ones = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ones += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.3, 0.01);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(13);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1.next_u64() == child2.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  rng.shuffle(v.begin(), v.end());
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 4, 5, 6, 7}));
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sem(), 0.0);
}

TEST(RunningStats, ConfidenceIntervalUsesStudentT) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  // n = 8 -> df = 7 -> t = 2.365.
  EXPECT_NEAR(s.ci95_half_width(), 2.365 * s.sem(), 1e-12);
  const Estimate e = s.estimate();
  EXPECT_DOUBLE_EQ(e.mean, s.mean());
  EXPECT_DOUBLE_EQ(e.stddev, s.stddev());
  EXPECT_DOUBLE_EQ(e.sem, s.sem());
  EXPECT_DOUBLE_EQ(e.ci95, s.ci95_half_width());
  EXPECT_EQ(e.count, 8u);
  EXPECT_TRUE(e.contains(s.mean()));
  EXPECT_TRUE(e.contains(s.mean() + e.ci95));
  EXPECT_FALSE(e.contains(s.mean() + 2.0 * e.ci95));

  RunningStats single;
  single.add(1.0);
  EXPECT_EQ(single.ci95_half_width(), 0.0);
}

TEST(Stats, StudentTCriticalValues) {
  EXPECT_NEAR(t_critical_975(1), 12.706, 1e-9);
  EXPECT_NEAR(t_critical_975(7), 2.365, 1e-9);
  EXPECT_NEAR(t_critical_975(30), 2.042, 1e-9);
  EXPECT_NEAR(t_critical_975(1000), 1.960, 1e-9);
  EXPECT_EQ(t_critical_975(0), 0.0);
  // Monotone non-increasing in df, bounded below by the normal quantile.
  double prev = t_critical_975(1);
  for (std::size_t df = 2; df <= 200; ++df) {
    const double t = t_critical_975(df);
    EXPECT_LE(t, prev) << "df " << df;
    EXPECT_GE(t, 1.96) << "df " << df;
    prev = t;
  }
}

TEST(Stats, ScaledEstimate) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0}) s.add(x);
  const Estimate e = scaled(s.estimate(), -10.0);
  EXPECT_DOUBLE_EQ(e.mean, -20.0);
  EXPECT_GT(e.stddev, 0.0);  // spread magnitudes stay positive
  EXPECT_DOUBLE_EQ(e.stddev, 10.0 * s.stddev());
  EXPECT_DOUBLE_EQ(e.ci95, 10.0 * s.ci95_half_width());
  EXPECT_EQ(e.count, 3u);
}

TEST(Rng, DeriveStreamIsStatelessAndDistinct) {
  EXPECT_EQ(Rng::derive_stream(5, 3), Rng::derive_stream(5, 3));
  EXPECT_NE(Rng::derive_stream(5, 3), Rng::derive_stream(5, 4));
  EXPECT_NE(Rng::derive_stream(5, 3), Rng::derive_stream(6, 3));
}

TEST(Stats, PercentHelpers) {
  EXPECT_DOUBLE_EQ(percent_reduction(200.0, 150.0), 25.0);
  EXPECT_DOUBLE_EQ(percent_increase(100.0, 104.0), 4.0);
  EXPECT_DOUBLE_EQ(percent_reduction(0.0, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
}

TEST(Strings, SplitTrimJoin) {
  EXPECT_EQ(split("  a  b\tc "), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", " "), std::vector<std::string>{});
  EXPECT_EQ(trim("  hello \r\n"), "hello");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(join({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(to_lower("NAND2"), "nand2");
  EXPECT_TRUE(starts_with(".names a b", ".names"));
  EXPECT_FALSE(starts_with(".gate", ".names"));
}

TEST(Strings, FormatFixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha |     1 |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, RejectsArityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Error, AssertThrowsInternalError) {
  EXPECT_THROW(TR_ASSERT(false), InternalError);
  EXPECT_NO_THROW(TR_ASSERT(true));
}

TEST(Error, RequireCarriesMessage) {
  try {
    require(false, "specific message");
    FAIL() << "require did not throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("specific message"),
              std::string::npos);
  }
}

TEST(Error, RetryClassificationIsPinnedPerCode) {
  // is_retryable drives the resilient client's retry loop and the
  // "retryable" field of every JSON error object (schema v4, DESIGN.md
  // Sec. 15.3) — reclassifying a code is a behavior change for every
  // deployed retrying client, so each one is pinned individually.
  // Retrying can help: the condition is transient or external.
  EXPECT_TRUE(is_retryable(ErrorCode::cancelled));       // deadline/admission
  EXPECT_TRUE(is_retryable(ErrorCode::resource));        // fd/memory pressure
  EXPECT_TRUE(is_retryable(ErrorCode::disconnect));      // daemon may return
  EXPECT_TRUE(is_retryable(ErrorCode::fault_injected));  // one-shot harness
  // Retrying cannot help: the request itself is wrong or the code is.
  EXPECT_FALSE(is_retryable(ErrorCode::invalid_argument));
  EXPECT_FALSE(is_retryable(ErrorCode::parse));
  EXPECT_FALSE(is_retryable(ErrorCode::internal));
  EXPECT_FALSE(is_retryable(ErrorCode::unknown));
}

TEST(Error, CodeNamesAreStable) {
  // The JSON encoding of ErrorCode; grepped by scripts and clients.
  EXPECT_STREQ(error_code_name(ErrorCode::invalid_argument),
               "invalid_argument");
  EXPECT_STREQ(error_code_name(ErrorCode::parse), "parse");
  EXPECT_STREQ(error_code_name(ErrorCode::internal), "internal");
  EXPECT_STREQ(error_code_name(ErrorCode::cancelled), "cancelled");
  EXPECT_STREQ(error_code_name(ErrorCode::fault_injected), "fault_injected");
  EXPECT_STREQ(error_code_name(ErrorCode::resource), "resource");
  EXPECT_STREQ(error_code_name(ErrorCode::unknown), "unknown");
  EXPECT_STREQ(error_code_name(ErrorCode::disconnect), "disconnect");
}

TEST(Json, DoubleRendersShortestRoundTrip) {
  EXPECT_EQ(util::json_double(0.0), "0");
  EXPECT_EQ(util::json_double(1.5), "1.5");
  EXPECT_EQ(util::json_double(0.1), "0.1");  // shortest form, not 0.1000...
  EXPECT_EQ(util::json_double(-2.75e-7), "-2.75e-07");
  EXPECT_EQ(util::json_double(std::nan("")), "null");
  // Round-trip guarantee: parsing the text recovers the exact bits.
  const double value = 1.4874833205017656e-06;
  EXPECT_EQ(std::stod(util::json_double(value)), value);
}

TEST(Json, NonFiniteDoublesRenderAsNull) {
  // JSON has no NaN/Infinity literals; emitting them would produce a
  // document no strict parser (including ours) accepts. The writer
  // substitutes null so a rogue computation can never corrupt the wire
  // format (DESIGN.md Sec. 13.2).
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(util::json_double(inf), "null");
  EXPECT_EQ(util::json_double(-inf), "null");

  std::ostringstream out;
  util::JsonWriter w(out);
  w.begin_object();
  w.key("nan");
  w.value(std::nan(""));
  w.key("inf");
  w.value(inf);
  w.key("neg_inf");
  w.value(-inf);
  w.key("finite");
  w.value(1.5);
  w.end_object();
  EXPECT_EQ(out.str(),
            "{\n"
            "  \"nan\": null,\n"
            "  \"inf\": null,\n"
            "  \"neg_inf\": null,\n"
            "  \"finite\": 1.5\n"
            "}\n");
}

TEST(Json, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(util::json_escape("plain"), "plain");
  EXPECT_EQ(util::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(util::json_escape("x\n\t\x01"), "x\\n\\t\\u0001");
}

TEST(Json, WriterProducesStableDocument) {
  std::ostringstream out;
  util::JsonWriter w(out);
  w.begin_object();
  w.key("name");
  w.value("c17");
  w.key("gates");
  w.value(6);
  w.key("ratio");
  w.value(0.5);
  w.key("flags");
  w.begin_array();
  w.value(true);
  w.value(false);
  w.null_value();
  w.end_array();
  w.key("empty_obj");
  w.begin_object();
  w.end_object();
  w.key("empty_arr");
  w.begin_array();
  w.end_array();
  w.end_object();
  EXPECT_EQ(out.str(),
            "{\n"
            "  \"name\": \"c17\",\n"
            "  \"gates\": 6,\n"
            "  \"ratio\": 0.5,\n"
            "  \"flags\": [\n"
            "    true,\n"
            "    false,\n"
            "    null\n"
            "  ],\n"
            "  \"empty_obj\": {},\n"
            "  \"empty_arr\": []\n"
            "}\n");
}

TEST(Json, NestedContainersIndentConsistently) {
  std::ostringstream out;
  util::JsonWriter w(out);
  w.begin_array();
  w.begin_object();
  w.key("inner");
  w.begin_array();
  w.value(1);
  w.end_array();
  w.end_object();
  w.end_array();
  EXPECT_EQ(out.str(),
            "[\n"
            "  {\n"
            "    \"inner\": [\n"
            "      1\n"
            "    ]\n"
            "  }\n"
            "]\n");
}

TEST(Json, MisuseTripsAssertions) {
  std::ostringstream out;
  util::JsonWriter w(out);
  w.begin_array();
  EXPECT_THROW(w.key("no-keys-in-arrays"), InternalError);
  EXPECT_THROW(w.end_object(), InternalError);
}

}  // namespace
}  // namespace tr
