// Tests for the extended power-consumption model (paper Sec. 3.3) and the
// circuit-level propagation (Sec. 4 / Fig. 3 support machinery).

#include <gtest/gtest.h>

#include <algorithm>

#include "benchgen/generators.hpp"
#include "celllib/library.hpp"
#include "power/circuit_power.hpp"
#include "power/gate_power.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace tr::power {
namespace {

using boolfn::SignalStats;
using celllib::CellLibrary;
using celllib::Tech;
using gategraph::GateGraph;

std::vector<double> caps_for(const GateGraph& graph, const Tech& tech,
                             double load = 10e-15) {
  return celllib::node_capacitances(graph, tech, load);
}

TEST(GatePower, InverterClosedForm) {
  const CellLibrary lib = CellLibrary::standard();
  const Tech tech;
  const GateGraph graph(lib.cell("inv").topology());
  const double load = 8e-15;
  const auto caps = caps_for(graph, tech, load);

  const double p = 0.3, d = 2.0e5;
  const GatePower gp = evaluate_gate_power(graph, caps, {{p, d}}, tech);

  // No internal nodes: only the output node.
  ASSERT_EQ(gp.nodes.size(), 1u);
  EXPECT_NEAR(gp.output.prob, 1.0 - p, 1e-12);
  // An inverter propagates every input transition.
  EXPECT_NEAR(gp.output.density, d, 1e-9);
  const double c_out = 2.0 * tech.c_diff + load;
  EXPECT_NEAR(gp.total_power, tech.energy_per_transition(c_out) * d, 1e-18);
}

TEST(GatePower, OutputNodeDensityEqualsNajmDensity) {
  // DESIGN.md Sec. 2 consistency property: at the output node, where
  // G = ~H, the extended model's T collapses to Najm's density exactly.
  const CellLibrary lib = CellLibrary::standard();
  const Tech tech;
  Rng rng(77);
  for (const std::string& name : lib.cell_names()) {
    const auto& cell = lib.cell(name);
    const GateGraph graph(cell.topology());
    const auto caps = caps_for(graph, tech);
    std::vector<SignalStats> inputs;
    for (int j = 0; j < cell.input_count(); ++j) {
      inputs.push_back({rng.next_double(), rng.uniform(0.0, 1e6)});
    }
    const GatePower gp = evaluate_gate_power(graph, caps, inputs, tech);
    const double najm = boolfn::output_density(cell.function(), inputs);
    EXPECT_NEAR(gp.output.density, najm, 1e-6 * std::max(1.0, najm)) << name;
    EXPECT_NEAR(gp.output.prob,
                boolfn::output_probability(cell.function(), inputs), 1e-12)
        << name;
  }
}

TEST(GatePower, OutputStatsInvariantUnderReordering) {
  // The monotonicity precondition (paper Sec. 4.2): every reordering
  // yields the same output probability and density.
  const CellLibrary lib = CellLibrary::standard();
  const Tech tech;
  Rng rng(78);
  for (const char* name : {"nand3", "aoi21", "oai221", "aoi222"}) {
    const auto& cell = lib.cell(name);
    std::vector<SignalStats> inputs;
    for (int j = 0; j < cell.input_count(); ++j) {
      inputs.push_back({rng.next_double(), rng.uniform(0.0, 1e6)});
    }
    double ref_prob = -1.0, ref_density = -1.0;
    for (const auto& config : cell.topology().all_reorderings()) {
      const GateGraph graph(config);
      const GatePower gp =
          evaluate_gate_power(graph, caps_for(graph, tech), inputs, tech);
      if (ref_prob < 0.0) {
        ref_prob = gp.output.prob;
        ref_density = gp.output.density;
      }
      EXPECT_NEAR(gp.output.prob, ref_prob, 1e-12) << name;
      EXPECT_NEAR(gp.output.density, ref_density, 1e-6) << name;
    }
  }
}

TEST(GatePower, ReorderingChangesInternalPower) {
  // The whole point of the paper: configurations differ in power.
  const CellLibrary lib = CellLibrary::standard();
  const Tech tech;
  const auto& cell = lib.cell("oai21");
  const std::vector<SignalStats> inputs{
      {0.5, 1e4}, {0.5, 1e5}, {0.5, 1e6}};
  std::vector<double> powers;
  for (const auto& config : cell.topology().all_reorderings()) {
    const GateGraph graph(config);
    powers.push_back(
        evaluate_gate_power(graph, caps_for(graph, tech), inputs, tech)
            .total_power);
  }
  ASSERT_EQ(powers.size(), 4u);
  const double lo = *std::min_element(powers.begin(), powers.end());
  const double hi = *std::max_element(powers.begin(), powers.end());
  EXPECT_GT(hi, lo * 1.02);  // at least a few percent spread
}

TEST(GatePower, HighActivityInputBelongsNearTheOutput) {
  // The placement rule the model reproduces (Hossain et al. [4], the
  // paper's reference for serial stacks): the highest-activity input
  // drives the transistor *nearest the output node*. An internal node
  // that sits below the hot device is gated by the colder inputs and
  // barely switches; put the hot device at the rail instead and the node
  // above it follows every toggle. For oai21 = !((a+b)c) with
  // D_c >> D_a, D_b the best configuration therefore has c's device next
  // to y, the worst has it at the vss rail.
  const CellLibrary lib = CellLibrary::standard();
  const Tech tech;
  const auto& cell = lib.cell("oai21");
  const std::vector<SignalStats> inputs{
      {0.5, 1e4}, {0.5, 1e5}, {0.5, 1e6}};  // pin c = highest activity

  double best_power = 1e30, worst_power = -1.0;
  gategraph::GateTopology best = cell.topology(), worst = cell.topology();
  for (const auto& config : cell.topology().all_reorderings()) {
    const GateGraph graph(config);
    const double p =
        evaluate_gate_power(graph, caps_for(graph, tech), inputs, tech)
            .total_power;
    if (p < best_power) {
      best_power = p;
      best = config;
    }
    if (p > worst_power) {
      worst_power = p;
      worst = config;
    }
  }
  // Pull-down series children are listed output-side first: the best
  // config has the c device (input 2) first, the worst has it last.
  ASSERT_EQ(best.nmos().kind, gategraph::SpNode::Kind::series);
  EXPECT_TRUE(best.nmos().children.front().is_leaf());
  EXPECT_EQ(best.nmos().children.front().input, 2);
  EXPECT_TRUE(worst.nmos().children.back().is_leaf());
  EXPECT_EQ(worst.nmos().children.back().input, 2);
}

TEST(GatePower, Nand2HotInputPlacementClosedForm) {
  // nand2 with equal probabilities 0.5: the internal node sees
  //   T = D_top/3 + 2 D_bottom/3
  // (top = output side). Verify the closed form and hence the rule.
  const CellLibrary lib = CellLibrary::standard();
  const Tech tech;
  const auto& cell = lib.cell("nand2");
  const double d_a = 9e5, d_b = 1e5;  // pin a hot
  const std::vector<SignalStats> inputs{{0.5, d_a}, {0.5, d_b}};
  const auto configs = cell.topology().all_reorderings();
  ASSERT_EQ(configs.size(), 2u);
  for (const auto& config : configs) {
    const GateGraph graph(config);
    const GatePower gp =
        evaluate_gate_power(graph, caps_for(graph, tech), inputs, tech);
    ASSERT_EQ(gp.nodes.size(), 2u);  // internal + output
    const bool a_on_top = config.nmos().children.front().input == 0;
    const double d_top = a_on_top ? d_a : d_b;
    const double d_bottom = a_on_top ? d_b : d_a;
    EXPECT_NEAR(gp.nodes[0].density, d_top / 3.0 + 2.0 * d_bottom / 3.0,
                1e-6 * (d_top + d_bottom));
  }
}

TEST(GatePower, FrozenInputsGiveZeroPower) {
  const CellLibrary lib = CellLibrary::standard();
  const Tech tech;
  const GateGraph graph(lib.cell("nand3").topology());
  const std::vector<SignalStats> inputs{{1.0, 0.0}, {0.0, 0.0}, {0.5, 0.0}};
  const GatePower gp =
      evaluate_gate_power(graph, caps_for(graph, tech), inputs, tech);
  EXPECT_DOUBLE_EQ(gp.total_power, 0.0);
}

TEST(GatePower, OutputOnlyModelIsALowerBound) {
  const CellLibrary lib = CellLibrary::standard();
  const Tech tech;
  Rng rng(79);
  for (const char* name : {"nand2", "nor3", "aoi22", "oai211"}) {
    const auto& cell = lib.cell(name);
    const GateGraph graph(cell.topology());
    std::vector<SignalStats> inputs;
    for (int j = 0; j < cell.input_count(); ++j) {
      inputs.push_back({rng.next_double(), rng.uniform(1e3, 1e6)});
    }
    const auto caps = caps_for(graph, tech);
    const double full =
        evaluate_gate_power(graph, caps, inputs, tech).total_power;
    const double output_only =
        evaluate_output_only_power(graph, caps, inputs, tech).total_power;
    EXPECT_LE(output_only, full) << name;
    EXPECT_GT(output_only, 0.0) << name;
  }
}

TEST(GatePower, ValidatesArity) {
  const CellLibrary lib = CellLibrary::standard();
  const Tech tech;
  const GateGraph graph(lib.cell("nand2").topology());
  const auto caps = caps_for(graph, tech);
  EXPECT_THROW(evaluate_gate_power(graph, caps, {{0.5, 1.0}}, tech), Error);
  EXPECT_THROW(
      evaluate_gate_power(graph, {1e-15}, {{0.5, 1.0}, {0.5, 1.0}}, tech),
      Error);
}

TEST(CircuitPower, PropagationThroughInverterChain) {
  const CellLibrary lib = CellLibrary::standard();
  netlist::Netlist nl(lib, "chain");
  const auto a = nl.add_net("a");
  nl.mark_primary_input(a);
  const auto n1 = nl.add_net("n1");
  const auto n2 = nl.add_net("n2");
  nl.add_gate("i1", "inv", {a}, n1);
  nl.add_gate("i2", "inv", {n1}, n2);
  nl.mark_primary_output(n2);

  const auto activity = propagate_activity(nl, {{a, {0.2, 5e4}}});
  EXPECT_NEAR(activity.net_stats[static_cast<std::size_t>(n1)].prob, 0.8,
              1e-12);
  EXPECT_NEAR(activity.net_stats[static_cast<std::size_t>(n2)].prob, 0.2,
              1e-12);
  EXPECT_NEAR(activity.net_stats[static_cast<std::size_t>(n2)].density, 5e4,
              1e-6);
}

TEST(CircuitPower, TotalsAreSumsAndPiLoadCounted) {
  const CellLibrary lib = CellLibrary::standard();
  const Tech tech;
  netlist::Netlist nl = benchgen::ripple_carry_adder(lib, 4);
  std::map<netlist::NetId, SignalStats> pi_stats;
  for (auto id : nl.primary_inputs()) pi_stats[id] = {0.5, 1e5};

  const auto activity = propagate_activity(nl, pi_stats);
  const CircuitPower cp = circuit_power(nl, activity, tech);
  double sum = 0.0;
  for (double p : cp.per_gate) sum += p;
  EXPECT_NEAR(cp.gate_power, sum, 1e-15);
  EXPECT_GT(cp.pi_load_power, 0.0);
  EXPECT_NEAR(cp.total(), cp.gate_power + cp.pi_load_power, 1e-15);

  // Output-only model gives a strictly smaller gate total here.
  const CircuitPower co =
      circuit_power(nl, activity, tech, ModelKind::output_only);
  EXPECT_LT(co.gate_power, cp.gate_power);
}

TEST(CircuitPower, MissingPiStatsRejected) {
  const CellLibrary lib = CellLibrary::standard();
  netlist::Netlist nl = benchgen::ripple_carry_adder(lib, 2);
  EXPECT_THROW(propagate_activity(nl, {}), Error);
}

// Property sweep: for every library cell, the model total is monotone in
// each input's transition density (more activity can never reduce power).
class DensityMonotonicity : public ::testing::TestWithParam<const char*> {};

TEST_P(DensityMonotonicity, PowerIsMonotoneInInputDensity) {
  const CellLibrary lib = CellLibrary::standard();
  const Tech tech;
  const auto& cell = lib.cell(GetParam());
  const GateGraph graph(cell.topology());
  const auto caps = caps_for(graph, tech);
  std::vector<SignalStats> inputs(
      static_cast<std::size_t>(cell.input_count()), SignalStats{0.5, 1e5});
  const double base =
      evaluate_gate_power(graph, caps, inputs, tech).total_power;
  for (int j = 0; j < cell.input_count(); ++j) {
    auto bumped = inputs;
    bumped[static_cast<std::size_t>(j)].density *= 3.0;
    const double more =
        evaluate_gate_power(graph, caps, bumped, tech).total_power;
    EXPECT_GE(more, base - 1e-18) << "input " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCells, DensityMonotonicity,
                         ::testing::Values("inv", "nand2", "nand3", "nand4",
                                           "nor2", "nor3", "nor4", "aoi21",
                                           "aoi22", "aoi31", "aoi211",
                                           "aoi221", "aoi222", "oai21",
                                           "oai22", "oai31", "oai211",
                                           "oai221", "oai222"));

}  // namespace
}  // namespace tr::power
