// Tests for the Liberty-style characterisation writer.

#include <gtest/gtest.h>

#include <sstream>

#include "celllib/library.hpp"
#include "characterize/liberty.hpp"

namespace tr::celllib {
namespace {

TEST(Liberty, EmitsEveryCellAndConfiguration) {
  const CellLibrary lib = CellLibrary::standard();
  const Tech tech;
  std::ostringstream out;
  write_liberty(lib, tech, out);
  const std::string text = out.str();

  EXPECT_NE(text.find("library (reordering_lib)"), std::string::npos);
  for (const std::string& name : lib.cell_names()) {
    EXPECT_NE(text.find("cell (" + name + ")"), std::string::npos) << name;
  }
  // One reordering_config group per configuration across the library.
  std::size_t total_configs = 0;
  for (const std::string& name : lib.cell_names()) {
    total_configs += lib.cell(name).config_count();
  }
  std::size_t count = 0, pos = 0;
  while ((pos = text.find("reordering_config (", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, total_configs);
}

TEST(Liberty, CanonicalOnlyModeIsCompact) {
  const CellLibrary lib = CellLibrary::standard();
  const Tech tech;
  LibertyOptions options;
  options.all_configurations = false;
  std::ostringstream out;
  write_liberty(lib, tech, out, options);
  const std::string text = out.str();
  std::size_t count = 0, pos = 0;
  while ((pos = text.find("reordering_config (", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, lib.size());
}

TEST(Liberty, FunctionExpressionsAndNumbersPresent) {
  const CellLibrary lib = CellLibrary::standard();
  const Tech tech;
  std::ostringstream out;
  write_liberty(lib, tech, out);
  const std::string text = out.str();
  // inv: y = !a.
  EXPECT_NE(text.find("function : \"!a\""), std::string::npos);
  // Pin capacitance value appears (2 gate terminals * 5 fF = 10 fF).
  EXPECT_NE(text.find("capacitance : 10.000"), std::string::npos);
  // Configuration payloads carry SP trees and delays.
  EXPECT_NE(text.find("pulldown : \"S(T0,T1)\""), std::string::npos);
  EXPECT_NE(text.find("pin_delay (a)"), std::string::npos);
  EXPECT_NE(text.find("reference_power"), std::string::npos);
}

TEST(Liberty, PowerDiffersAcrossConfigurationsOfOneCell) {
  // The characterisation must expose the power spread that motivates the
  // whole technique: under asymmetric reference stats all entries would
  // be needed; even under symmetric ones the output-cap asymmetry of
  // aoi21 shows up.
  const CellLibrary lib = CellLibrary::standard();
  const Tech tech;
  std::ostringstream out;
  LibertyOptions options;
  write_liberty(lib, tech, out, options);
  const std::string text = out.str();
  // Find the aoi21 cell block and collect its reference_power values.
  const std::size_t cell_pos = text.find("cell (aoi21)");
  ASSERT_NE(cell_pos, std::string::npos);
  const std::size_t cell_end = text.find("cell (", cell_pos + 1);
  std::set<std::string> powers;
  std::size_t pos = cell_pos;
  while (true) {
    pos = text.find("reference_power : ", pos);
    if (pos == std::string::npos || pos > cell_end) break;
    const std::size_t semi = text.find(';', pos);
    powers.insert(text.substr(pos, semi - pos));
    ++pos;
  }
  EXPECT_GT(powers.size(), 1u);
}

}  // namespace
}  // namespace tr::celllib
