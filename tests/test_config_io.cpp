// Tests for SP-tree parsing and configuration persistence: the
// encode/parse round trip, topology_from_key validation, and the netlist
// configuration sidecar that survives a BLIF write/read cycle.

#include <gtest/gtest.h>

#include <sstream>

#include "benchgen/generators.hpp"
#include "celllib/library.hpp"
#include "gategraph/sp_parse.hpp"
#include "netlist/blif.hpp"
#include "netlist/config_io.hpp"
#include "opt/optimizer.hpp"
#include "power/circuit_power.hpp"
#include "util/error.hpp"

namespace tr {
namespace {

using celllib::CellLibrary;
using gategraph::GateTopology;
using gategraph::parse_sp_tree;
using gategraph::SpNode;
using gategraph::topology_from_key;

CellLibrary& lib() {
  static CellLibrary instance = CellLibrary::standard();
  return instance;
}

TEST(SpParse, LeafAndComposites) {
  const SpNode leaf = parse_sp_tree("T7");
  EXPECT_TRUE(leaf.is_leaf());
  EXPECT_EQ(leaf.input, 7);

  const SpNode s = parse_sp_tree("S(T0,T1,T2)");
  EXPECT_EQ(s.kind, SpNode::Kind::series);
  ASSERT_EQ(s.children.size(), 3u);
  EXPECT_EQ(s.children[2].input, 2);

  const SpNode nested = parse_sp_tree("S(P(T0,T1),T2)");
  EXPECT_EQ(nested.kind, SpNode::Kind::series);
  EXPECT_EQ(nested.children[0].kind, SpNode::Kind::parallel);
}

TEST(SpParse, MultiDigitIndices) {
  const SpNode leaf = parse_sp_tree("T123");
  EXPECT_EQ(leaf.input, 123);
}

TEST(SpParse, RoundTripsEncodeForEveryLibraryConfiguration) {
  for (const std::string& name : lib().cell_names()) {
    for (const auto& config : lib().cell(name).topology().all_reorderings()) {
      const std::string n = gategraph::encode(config.nmos());
      const std::string p = gategraph::encode(config.pmos());
      EXPECT_EQ(gategraph::encode(parse_sp_tree(n)), n) << name;
      EXPECT_EQ(gategraph::encode(parse_sp_tree(p)), p) << name;
    }
  }
}

TEST(SpParse, RejectsMalformedInput) {
  for (const char* bad :
       {"", "X", "T", "Tx", "S()", "S(T0)", "S(T0,)", "S(T0,T1",
        "S(T0,T1))", "P(T0 T1)", "S(T0,T1)x"}) {
    EXPECT_THROW(parse_sp_tree(bad), Error) << "input: '" << bad << "'";
  }
}

TEST(TopologyFromKey, RoundTripsCanonicalKeys) {
  for (const std::string& name : lib().cell_names()) {
    const auto& cell = lib().cell(name);
    for (const auto& config : cell.topology().all_reorderings()) {
      const GateTopology rebuilt =
          topology_from_key(config.canonical_key(), cell.input_count());
      EXPECT_EQ(rebuilt.canonical_key(), config.canonical_key()) << name;
      EXPECT_EQ(rebuilt.output_function(), cell.function()) << name;
    }
  }
}

TEST(TopologyFromKey, RejectsBadKeys) {
  EXPECT_THROW(topology_from_key("S(T0,T1)", 2), Error);  // missing '|'
  // Non-complementary pair.
  EXPECT_THROW(topology_from_key("S(T0,T1)|S(T0,T1)", 2), Error);
  // Leaf index beyond input count.
  EXPECT_THROW(topology_from_key("S(T0,T5)|P(T0,T5)", 2), Error);
}

TEST(ConfigSidecar, EmptyWhenEverythingCanonical) {
  const netlist::Netlist nl = benchgen::ripple_carry_adder(lib(), 3);
  std::ostringstream out;
  netlist::write_config_sidecar(nl, out);
  // Only comment lines.
  std::istringstream in(out.str());
  std::string line;
  while (std::getline(in, line)) {
    EXPECT_TRUE(line.empty() || line[0] == '#') << line;
  }
}

TEST(ConfigSidecar, RoundTripsOptimizedConfigurations) {
  const celllib::Tech tech;
  netlist::Netlist optimized = benchgen::ripple_carry_adder(lib(), 6);
  std::map<netlist::NetId, boolfn::SignalStats> stats;
  for (auto id : optimized.primary_inputs()) stats[id] = {0.5, 3e5};
  const opt::OptimizeReport report = opt::optimize(optimized, stats, tech);
  ASSERT_GT(report.gates_changed, 0);

  // Serialise the netlist as BLIF (loses configurations) + sidecar.
  std::ostringstream blif, sidecar;
  netlist::write_blif(optimized, blif);
  netlist::write_config_sidecar(optimized, sidecar);

  netlist::Netlist reloaded =
      netlist::read_blif_mapped_string(blif.str(), lib(), "rt");
  // Before applying the sidecar: canonical configs, higher model power.
  const auto activity = power::propagate_activity(optimized, stats);
  const double p_optimized =
      power::circuit_power(optimized, activity, tech).total();
  const double p_reloaded_raw =
      power::circuit_power(reloaded, activity, tech).total();
  EXPECT_GT(p_reloaded_raw, p_optimized);

  std::istringstream sidecar_in(sidecar.str());
  const int applied = netlist::read_config_sidecar(reloaded, sidecar_in);
  EXPECT_EQ(applied, report.gates_changed);
  const double p_reloaded =
      power::circuit_power(reloaded, activity, tech).total();
  EXPECT_NEAR(p_reloaded, p_optimized, 1e-12 * p_optimized);

  // Every configuration matches exactly.
  ASSERT_EQ(reloaded.gate_count(), optimized.gate_count());
  for (netlist::GateId g = 0; g < reloaded.gate_count(); ++g) {
    EXPECT_EQ(reloaded.gate(g).config.canonical_key(),
              optimized.gate(g).config.canonical_key());
  }
}

TEST(ConfigSidecar, RejectsUnknownNetAndBadKey) {
  netlist::Netlist nl = benchgen::ripple_carry_adder(lib(), 2);
  {
    std::istringstream in("ghost_net S(T0,T1)|P(T0,T1)\n");
    EXPECT_THROW(netlist::read_config_sidecar(nl, in), ParseError);
  }
  {
    std::istringstream in("n1_0 half-a-line\n");
    EXPECT_THROW(netlist::read_config_sidecar(nl, in), Error);
  }
  {
    // Valid instance but a key computing a different function (nor2
    // topology onto a nand2 gate).
    std::istringstream in("n1_0 P(T0,T1)|S(T0,T1)\n");
    EXPECT_THROW(netlist::read_config_sidecar(nl, in), Error);
  }
}

TEST(ConfigSidecar, CommentsAndBlankLinesIgnored) {
  netlist::Netlist nl = benchgen::ripple_carry_adder(lib(), 2);
  std::istringstream in(
      "# header\n\n   \n# another comment\nn1_0 S(T1,T0)|P(T0,T1)\n");
  EXPECT_EQ(netlist::read_config_sidecar(nl, in), 1);
}

}  // namespace
}  // namespace tr
