// Resilient client + idempotency cache (ISSUE 10, server/retry_client +
// OptimizeService replay): bounded retries with deterministic jittered
// backoff, per-read timeouts against silent peers, retry-through of
// injected daemon faults, immediate return of non-retryable errors, and
// the request_id replay contract (at-most-once execution composed with
// retry-until-success). In-process counterpart of chaos_soak.sh phase 2.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "server/client.hpp"
#include "server/retry_client.hpp"
#include "server/server.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/json.hpp"

namespace tr::server {
namespace {

using util::JsonValue;

/// A live daemon on an ephemeral loopback port (test_server idiom).
class TestServer {
public:
  explicit TestServer(ServerConfig config = {}) : server_(std::move(config)) {
    server_.start();
    thread_ = std::thread([this] { server_.serve(); });
  }

  ~TestServer() { drain(); }

  void drain() {
    if (!thread_.joinable()) return;
    server_.request_drain();
    thread_.join();
  }

  int port() const noexcept { return server_.port(); }
  ServiceMetrics metrics() { return server_.service().metrics(); }

private:
  Server server_;
  std::thread thread_;
};

/// A port that refuses connections: bind, then close without listening.
/// The kernel will not reassign the port to another process within the
/// test's lifetime on loopback, so connects fail fast with ECONNREFUSED.
int refused_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const int port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

struct RetryRecord {
  int attempt;
  double delay_ms;
  std::string why;
};

RetryPolicy fast_policy(int retries, std::uint64_t seed = 1,
                        std::vector<RetryRecord>* records = nullptr) {
  RetryPolicy policy;
  policy.max_retries = retries;
  policy.base_backoff_ms = 1.0;  // keep test wall-clock negligible
  policy.jitter_seed = seed;
  if (records != nullptr) {
    policy.on_retry = [records](int attempt, double delay_ms,
                                const std::string& why) {
      records->push_back({attempt, delay_ms, why});
    };
  }
  return policy;
}

const char kRequest[] = R"({"circuits": ["c17"]})";

// ---------------------------------------------------------------------------
// Transport-level retries

TEST(RetryClient, ExhaustsRetriesAgainstRefusedPortThenThrows) {
  std::vector<RetryRecord> records;
  const RetryPolicy policy = fast_policy(3, 7, &records);
  try {
    run_request_with_retry("127.0.0.1", refused_port(), kRequest, policy);
    FAIL() << "expected tr::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::disconnect);
  }
  // One initial attempt + 3 retries; each backoff reported before the
  // sleep, attempts numbered from 1.
  ASSERT_EQ(records.size(), 3u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].attempt, static_cast<int>(i) + 1);
    EXPECT_NE(records[i].why.find("connect"), std::string::npos);
  }
}

TEST(RetryClient, BackoffDoublesWithBoundedDeterministicJitter) {
  const int port = refused_port();
  std::vector<RetryRecord> first;
  std::vector<RetryRecord> second;
  EXPECT_THROW(run_request_with_retry("127.0.0.1", port, kRequest,
                                      fast_policy(4, 42, &first)),
               Error);
  EXPECT_THROW(run_request_with_retry("127.0.0.1", port, kRequest,
                                      fast_policy(4, 42, &second)),
               Error);
  ASSERT_EQ(first.size(), 4u);
  ASSERT_EQ(second.size(), 4u);
  for (std::size_t i = 0; i < first.size(); ++i) {
    // Deterministic: the same seed replays the same schedule exactly.
    EXPECT_EQ(first[i].delay_ms, second[i].delay_ms) << "retry " << i;
    // Bounded: delay_k in [0.5, 1.0) x base x 2^k.
    const double exp_delay = 1.0 * static_cast<double>(1 << i);
    EXPECT_GE(first[i].delay_ms, 0.5 * exp_delay) << "retry " << i;
    EXPECT_LT(first[i].delay_ms, exp_delay) << "retry " << i;
  }

  // A different seed decorrelates (the fleet-of-clients property).
  std::vector<RetryRecord> other;
  EXPECT_THROW(run_request_with_retry("127.0.0.1", port, kRequest,
                                      fast_policy(4, 43, &other)),
               Error);
  bool any_differs = false;
  for (std::size_t i = 0; i < other.size(); ++i) {
    any_differs = any_differs || other[i].delay_ms != first[i].delay_ms;
  }
  EXPECT_TRUE(any_differs);
}

TEST(RetryClient, SilentPeerTripsPerReadTimeoutAsRetryableDisconnect) {
  // A socket that listens but never answers: the connect succeeds, the
  // request frame lands in the accept queue's buffer, and no frame ever
  // comes back — exactly the hung-daemon shape the per-read timeout is
  // for.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(fd, 4), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);

  std::vector<RetryRecord> records;
  RetryPolicy policy = fast_policy(1, 1, &records);
  policy.timeout_ms = 100.0;
  try {
    run_request_with_retry("127.0.0.1", ntohs(addr.sin_port), kRequest,
                           policy);
    FAIL() << "expected tr::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::disconnect);
    EXPECT_NE(std::string(e.what()).find("no frame within"),
              std::string::npos);
  }
  ASSERT_EQ(records.size(), 1u);  // it did retry once before giving up
  ::close(fd);
}

// ---------------------------------------------------------------------------
// Error-frame classification

TEST(RetryClient, RetriesThroughOneShotInjectedDaemonFault) {
  TestServer daemon;
  std::vector<RetryRecord> records;
  ClientResult result;
  {
    util::fault::ScopedFault fault("server.request");
    result = run_request_with_retry("127.0.0.1", daemon.port(), kRequest,
                                    fast_policy(2, 1, &records));
  }
  // First attempt hit the injected fault (a retryable error frame), the
  // second attempt found the site disarmed and succeeded.
  ASSERT_EQ(result.type, kFrameResponse);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_NE(records[0].why.find("fault_injected"), std::string::npos);
  const JsonValue doc = util::json_parse(result.payload);
  EXPECT_EQ(doc.find("totals")->find("circuits_ok")->as_i64("ok"), 1);
}

TEST(RetryClient, NonRetryableErrorFrameReturnsWithoutRetrying) {
  TestServer daemon;
  std::vector<RetryRecord> records;
  // A schema violation: retrying cannot change the outcome, so the
  // error frame must come back immediately even with retries budgeted.
  const ClientResult result = run_request_with_retry(
      "127.0.0.1", daemon.port(), R"({"circuits": ["../../etc/passwd"]})",
      fast_policy(5, 1, &records));
  EXPECT_EQ(result.type, kFrameError);
  EXPECT_TRUE(records.empty());
  const JsonValue doc = util::json_parse(result.payload);
  const JsonValue* retryable = doc.find("retryable");
  ASSERT_NE(retryable, nullptr);
  EXPECT_FALSE(retryable->as_bool("retryable"));
}

// ---------------------------------------------------------------------------
// Idempotency-key replay (the daemon side of "retry until success")

const char kKeyedRequest[] =
    R"({"circuits": ["c17"], "request_id": "retry-test-1"})";

TEST(RetryClient, SecondRequestWithSameIdReplaysFromCache) {
  TestServer daemon;
  const ClientResult first =
      run_request("127.0.0.1", daemon.port(), kKeyedRequest);
  ASSERT_EQ(first.type, kFrameResponse);
  const ClientResult second =
      run_request("127.0.0.1", daemon.port(), kKeyedRequest);
  ASSERT_EQ(second.type, kFrameResponse);
  // Byte-identical, and the daemon must not have executed twice.
  EXPECT_EQ(second.payload, first.payload);
  // A replay answers with the terminal frame only — no progress stream,
  // the observable difference between replaying and re-executing.
  EXPECT_FALSE(first.progress.empty());
  EXPECT_TRUE(second.progress.empty());

  daemon.drain();
  const ServiceMetrics metrics = daemon.metrics();
  EXPECT_EQ(metrics.ok, 1u);
  EXPECT_EQ(metrics.replayed, 1u);
}

TEST(RetryClient, DistinctIdsExecuteIndependently) {
  TestServer daemon;
  const ClientResult a = run_request(
      "127.0.0.1", daemon.port(),
      R"({"circuits": ["c17"], "request_id": "key-a"})");
  const ClientResult b = run_request(
      "127.0.0.1", daemon.port(),
      R"({"circuits": ["c17"], "request_id": "key-b"})");
  ASSERT_EQ(a.type, kFrameResponse);
  ASSERT_EQ(b.type, kFrameResponse);
  EXPECT_EQ(a.payload, b.payload);  // deterministic daemon, same work

  daemon.drain();
  const ServiceMetrics metrics = daemon.metrics();
  EXPECT_EQ(metrics.ok, 2u);
  EXPECT_EQ(metrics.replayed, 0u);
}

TEST(RetryClient, ErrorResponsesAreNotReplayed) {
  TestServer daemon;
  ClientResult failed;
  {
    util::fault::ScopedFault fault("server.request");
    failed = run_request("127.0.0.1", daemon.port(), kKeyedRequest);
  }
  ASSERT_EQ(failed.type, kFrameError);
  // The same key re-executes — transient failures must not be pinned
  // into the cache, or a retry could replay the failure forever.
  const ClientResult retried =
      run_request("127.0.0.1", daemon.port(), kKeyedRequest);
  ASSERT_EQ(retried.type, kFrameResponse);

  daemon.drain();
  const ServiceMetrics metrics = daemon.metrics();
  EXPECT_EQ(metrics.ok, 1u);
  EXPECT_EQ(metrics.replayed, 0u);
}

TEST(RetryClient, ReplayCapacityZeroDisablesTheCache) {
  ServerConfig config;
  config.service.replay_capacity = 0;
  TestServer daemon(std::move(config));
  const ClientResult first =
      run_request("127.0.0.1", daemon.port(), kKeyedRequest);
  const ClientResult second =
      run_request("127.0.0.1", daemon.port(), kKeyedRequest);
  ASSERT_EQ(first.type, kFrameResponse);
  ASSERT_EQ(second.type, kFrameResponse);
  EXPECT_EQ(second.payload, first.payload);  // still deterministic

  daemon.drain();
  const ServiceMetrics metrics = daemon.metrics();
  EXPECT_EQ(metrics.ok, 2u);
  EXPECT_EQ(metrics.replayed, 0u);
}

TEST(RetryClient, LeastRecentKeyIsEvictedAtCapacity) {
  ServerConfig config;
  config.service.replay_capacity = 2;
  TestServer daemon(std::move(config));
  auto keyed = [&](const std::string& id) {
    return run_request(
        "127.0.0.1", daemon.port(),
        R"({"circuits": ["c17"], "request_id": ")" + id + R"("})");
  };
  keyed("k1");
  keyed("k2");
  keyed("k3");  // evicts k1 (least recently used)
  keyed("k1");  // miss: re-executes
  keyed("k3");  // hit

  daemon.drain();
  const ServiceMetrics metrics = daemon.metrics();
  EXPECT_EQ(metrics.ok, 4u);
  EXPECT_EQ(metrics.replayed, 1u);
}

}  // namespace
}  // namespace tr::server
