// Checkpoint/resume journaling (ISSUE 10, opt/checkpoint): the
// byte-identity contract — a resumed batch renders output identical to
// an uninterrupted run — plus the manifest fingerprint, damaged-entry
// fallback (warn + re-run, never trust), stale-entry validation, and
// the ok-only journaling rule. In-process equivalent of the
// chaos_soak.sh phase-1 drill, minus the SIGKILL.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "celllib/library.hpp"
#include "celllib/tech.hpp"
#include "opt/batch.hpp"
#include "opt/batch_report.hpp"
#include "opt/checkpoint.hpp"
#include "opt/circuit_load.hpp"
#include "util/error.hpp"
#include "util/journal.hpp"

namespace tr::opt::checkpoint {
namespace {

namespace fs = std::filesystem;

const std::vector<std::string> kSpecs = {"c17", "fulladder", "cmp2"};

class CheckpointTest : public ::testing::Test {
protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            (std::string("tr_checkpoint_test_") +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::vector<BatchCircuit> load_batch(const celllib::CellLibrary& library,
                                       std::uint64_t seed = 1) {
    std::vector<BatchCircuit> batch;
    for (const std::string& spec : kSpecs) {
      batch.push_back(make_scenario_circuit_guarded(
          spec, 'A', seed, library,
          [&] { return load_circuit_spec(spec, library); }));
      EXPECT_FALSE(batch.back().load_error);
    }
    return batch;
  }

  /// Deterministic report bytes: timing and cache deltas excluded, the
  /// same carve-outs as the CLI/daemon byte-identity contracts.
  static std::string render(const std::vector<BatchCircuit>& batch,
                            const BatchReport& report,
                            const BatchOptions& options) {
    BatchJsonOptions json;
    json.include_timing = false;
    json.include_cache_stats = false;
    std::ostringstream out;
    write_batch_json(batch, report, options, out, json);
    return out.str();
  }

  std::string dir_;
};

TEST_F(CheckpointTest, ManifestPinsEverythingThatShapesBytes) {
  BatchOptions base;
  const std::string manifest = render_manifest(kSpecs, 'A', 1, base);
  EXPECT_EQ(manifest, render_manifest(kSpecs, 'A', 1, base));

  // Every knob that changes result bytes must change the fingerprint.
  EXPECT_NE(manifest, render_manifest({"c17"}, 'A', 1, base));
  EXPECT_NE(manifest, render_manifest(kSpecs, 'B', 1, base));
  EXPECT_NE(manifest, render_manifest(kSpecs, 'A', 2, base));
  BatchOptions changed = base;
  changed.opt.objective = Objective::maximize_power;
  EXPECT_NE(manifest, render_manifest(kSpecs, 'A', 1, changed));
  changed = base;
  changed.opt.engine = Engine::anneal;
  EXPECT_NE(manifest, render_manifest(kSpecs, 'A', 1, changed));
  changed = base;
  changed.opt.anneal.seed = 99;
  EXPECT_NE(manifest, render_manifest(kSpecs, 'A', 1, changed));
  changed = base;
  changed.opt.max_circuit_delay_increase = 0.1;
  EXPECT_NE(manifest, render_manifest(kSpecs, 'A', 1, changed));
  changed = base;
  changed.opt.restrict_to_instance = true;
  EXPECT_NE(manifest, render_manifest(kSpecs, 'A', 1, changed));
  // threads_per_circuit shapes the rendered "threads" field, so it is
  // pinned too...
  changed = base;
  changed.threads_per_circuit = 4;
  EXPECT_NE(manifest, render_manifest(kSpecs, 'A', 1, changed));
  // ...but jobs never changes bytes — resuming under a different --jobs
  // is the whole point of crash recovery on a different machine.
  changed = base;
  changed.jobs = 7;
  EXPECT_EQ(manifest, render_manifest(kSpecs, 'A', 1, changed));
}

TEST_F(CheckpointTest, EntryNamesAreOrderedAndSanitized) {
  EXPECT_EQ(entry_name(0, "c17"), "circuit-0000-c17.jnl");
  EXPECT_EQ(entry_name(12, "alu2"), "circuit-0012-alu2.jnl");
  EXPECT_EQ(entry_name(3, "../evil name"), "circuit-0003-.._evil_name.jnl");
}

TEST_F(CheckpointTest, FreshModeRefusesAnExistingJournal) {
  const std::string manifest = render_manifest(kSpecs, 'A', 1, {});
  CheckpointJournal first(dir_, false, manifest);
  try {
    CheckpointJournal second(dir_, false, manifest);
    FAIL() << "expected tr::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::invalid_argument);
    EXPECT_NE(std::string(e.what()).find("--resume"), std::string::npos);
  }
}

TEST_F(CheckpointTest, ResumeRequiresAManifest) {
  fs::create_directories(dir_);
  EXPECT_THROW(CheckpointJournal(dir_, true, "whatever"), Error);
}

TEST_F(CheckpointTest, ResumeRefusesAMismatchedManifest) {
  CheckpointJournal fresh(dir_, false, render_manifest(kSpecs, 'A', 1, {}));
  try {
    CheckpointJournal other(dir_, true, render_manifest(kSpecs, 'A', 2, {}));
    FAIL() << "expected tr::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::invalid_argument);
    EXPECT_NE(std::string(e.what()).find("manifest mismatch"),
              std::string::npos);
  }
}

TEST_F(CheckpointTest, ResumeRefusesADamagedManifest) {
  CheckpointJournal fresh(dir_, false, render_manifest(kSpecs, 'A', 1, {}));
  // Torn manifest: keep half the bytes.
  const std::string path = dir_ + "/manifest.jnl";
  std::ifstream in(path, std::ios::binary);
  std::string raw(std::istreambuf_iterator<char>(in), {});
  in.close();
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      .write(raw.data(), static_cast<std::streamsize>(raw.size() / 2));
  EXPECT_THROW(CheckpointJournal(dir_, true, render_manifest(kSpecs, 'A', 1, {})),
               Error);
}

/// Runs the batch with journaling on and returns the rendered bytes.
std::string run_journaled(const celllib::CellLibrary& library,
                          std::vector<BatchCircuit>& batch,
                          BatchOptions options, CheckpointJournal& journal) {
  options.journal = [&journal](std::size_t i, const BatchCircuit& circuit,
                               const BatchCircuitResult& result) {
    journal.record(i, circuit, result);
  };
  const celllib::Tech tech;
  const BatchOptimizer optimizer(library, tech, options);
  const BatchReport report = optimizer.run(batch);
  std::ostringstream out;
  BatchJsonOptions json;
  json.include_timing = false;
  json.include_cache_stats = false;
  write_batch_json(batch, report, options, out, json);
  return out.str();
}

TEST_F(CheckpointTest, ResumedRunRendersByteIdenticalOutput) {
  const celllib::CellLibrary library = celllib::CellLibrary::standard();
  BatchOptions options;
  options.jobs = 1;
  const std::string manifest = render_manifest(kSpecs, 'A', 1, options);

  std::vector<BatchCircuit> original = load_batch(library);
  CheckpointJournal journal(dir_, false, manifest);
  const std::string uninterrupted =
      run_journaled(library, original, options, journal);
  EXPECT_TRUE(journal.warnings().empty());

  // Resume into a *fresh* process state: newly loaded netlists, a
  // different jobs value — the journaled results must carry everything.
  BatchOptions resumed_options;
  resumed_options.jobs = 3;
  std::vector<BatchCircuit> resumed = load_batch(library);
  CheckpointJournal resume(dir_, true, manifest);
  EXPECT_EQ(resume.load(resumed), static_cast<int>(kSpecs.size()));
  for (const BatchCircuit& circuit : resumed) {
    EXPECT_TRUE(circuit.resumed.has_value()) << circuit.name;
  }

  const celllib::Tech tech;
  const BatchOptimizer optimizer(library, tech, resumed_options);
  const BatchReport report = optimizer.run(resumed);
  std::ostringstream out;
  BatchJsonOptions json;
  json.include_timing = false;
  json.include_cache_stats = false;
  // Render under the *original* options (the manifest guarantees they
  // match up to jobs, which the report header does not carry).
  write_batch_json(resumed, report, resumed_options, out, json);
  EXPECT_EQ(out.str(), uninterrupted);
}

TEST_F(CheckpointTest, AnnealResultsResumeByteIdentical) {
  const celllib::CellLibrary library = celllib::CellLibrary::standard();
  BatchOptions options;
  options.opt.engine = Engine::anneal;
  options.opt.anneal.iterations_per_gate = 16;
  const std::string manifest = render_manifest(kSpecs, 'A', 1, options);

  std::vector<BatchCircuit> original = load_batch(library);
  CheckpointJournal journal(dir_, false, manifest);
  const std::string uninterrupted =
      run_journaled(library, original, options, journal);

  std::vector<BatchCircuit> resumed = load_batch(library);
  CheckpointJournal resume(dir_, true, manifest);
  EXPECT_EQ(resume.load(resumed), static_cast<int>(kSpecs.size()));
  const celllib::Tech tech;
  const BatchReport report = BatchOptimizer(library, tech, options).run(resumed);
  std::ostringstream out;
  BatchJsonOptions json;
  json.include_timing = false;
  json.include_cache_stats = false;
  write_batch_json(resumed, report, options, out, json);
  EXPECT_EQ(out.str(), uninterrupted);
}

TEST_F(CheckpointTest, DamagedEntryWarnsAndRerunsByteIdentical) {
  const celllib::CellLibrary library = celllib::CellLibrary::standard();
  BatchOptions options;
  const std::string manifest = render_manifest(kSpecs, 'A', 1, options);

  std::vector<BatchCircuit> original = load_batch(library);
  CheckpointJournal journal(dir_, false, manifest);
  const std::string uninterrupted =
      run_journaled(library, original, options, journal);

  // Bit-flip one entry's payload: detected via checksum, re-run.
  const std::string victim = dir_ + "/" + entry_name(1, "fulladder");
  std::ifstream in(victim, std::ios::binary);
  std::string raw(std::istreambuf_iterator<char>(in), {});
  in.close();
  raw[raw.size() - 3] = static_cast<char>(raw[raw.size() - 3] ^ 0x40);
  std::ofstream(victim, std::ios::binary | std::ios::trunc)
      .write(raw.data(), static_cast<std::streamsize>(raw.size()));

  std::vector<BatchCircuit> resumed = load_batch(library);
  CheckpointJournal resume(dir_, true, manifest);
  EXPECT_EQ(resume.load(resumed), static_cast<int>(kSpecs.size()) - 1);
  ASSERT_EQ(resume.warnings().size(), 1u);
  EXPECT_EQ(resume.warnings()[0].file, entry_name(1, "fulladder"));
  EXPECT_NE(resume.warnings()[0].message.find("bad_checksum"),
            std::string::npos);
  EXPECT_FALSE(resumed[1].resumed.has_value());

  const std::string bytes =
      run_journaled(library, resumed, options, resume);
  EXPECT_EQ(bytes, uninterrupted);
}

TEST_F(CheckpointTest, StaleEntryForADifferentCircuitIsRejected) {
  const celllib::CellLibrary library = celllib::CellLibrary::standard();
  BatchOptions options;
  const std::string manifest = render_manifest(kSpecs, 'A', 1, options);

  std::vector<BatchCircuit> original = load_batch(library);
  CheckpointJournal journal(dir_, false, manifest);
  run_journaled(library, original, options, journal);

  // Masquerade: c17's entry under fulladder's file name. The embedded
  // index/name must unmask it — a frame-valid entry is still untrusted
  // until it matches the circuit it claims to describe.
  fs::copy_file(dir_ + "/" + entry_name(0, "c17"),
                dir_ + "/" + entry_name(1, "fulladder"),
                fs::copy_options::overwrite_existing);

  std::vector<BatchCircuit> resumed = load_batch(library);
  CheckpointJournal resume(dir_, true, manifest);
  EXPECT_EQ(resume.load(resumed), static_cast<int>(kSpecs.size()) - 1);
  ASSERT_EQ(resume.warnings().size(), 1u);
  EXPECT_EQ(resume.warnings()[0].code, ErrorCode::invalid_argument);
  EXPECT_FALSE(resumed[1].resumed.has_value());
}

TEST_F(CheckpointTest, OnlyOkCircuitsAreJournaled) {
  const celllib::CellLibrary library = celllib::CellLibrary::standard();
  BatchCircuit circuit = make_scenario_circuit_guarded(
      "c17", 'A', 1, library, [&] { return load_circuit_spec("c17", library); });
  BatchCircuitResult failed;
  failed.name = "c17";
  failed.status = CircuitStatus::error;

  CheckpointJournal journal(dir_, false, render_manifest({"c17"}, 'A', 1, {}));
  journal.record(0, circuit, failed);
  EXPECT_TRUE(journal.warnings().empty());
  EXPECT_FALSE(fs::exists(dir_ + "/" + entry_name(0, "c17")));
}

}  // namespace
}  // namespace tr::opt::checkpoint
