// Property tests for simulator invariants on randomised circuits whose
// gates are themselves random series-parallel stacks
// (tests/random_sp_tree.hpp): energy accounting
// (output + internal + pi == total), engine purity/determinism,
// replicate-seed independence, and the surfaced max_events truncation
// (DESIGN.md Sec. 8.1/8.3).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "celllib/cell.hpp"
#include "celllib/library.hpp"
#include "random_sp_tree.hpp"
#include "sim/sim_engine.hpp"
#include "sim/switch_sim.hpp"
#include "util/rng.hpp"

namespace tr::sim {
namespace {

using boolfn::SignalStats;
using celllib::CellLibrary;
using celllib::Tech;
using netlist::NetId;
using netlist::Netlist;
using testutil::random_sp_library;
using testutil::random_sp_netlist;

std::map<NetId, SignalStats> random_pi_stats(const Netlist& nl, Rng& rng) {
  std::map<NetId, SignalStats> stats;
  for (NetId id : nl.primary_inputs()) {
    stats[id] = {rng.uniform(0.2, 0.8), rng.uniform(1e5, 4e5)};
  }
  return stats;
}

TEST(SimProperties, EnergyAccountingIdentityOnRandomSpCircuits) {
  Rng rng(20260728);
  const Tech tech;
  for (int trial = 0; trial < 6; ++trial) {
    SCOPED_TRACE(testing::Message() << "trial " << trial);
    const CellLibrary lib = random_sp_library(rng, 4);
    const Netlist nl = random_sp_netlist(lib, rng, 6);
    const auto stats = random_pi_stats(nl, rng);
    for (bool delays : {true, false}) {
      SimOptions opt;
      opt.seed = 1000 + static_cast<std::uint64_t>(trial);
      opt.measure_time = 4e-4;
      opt.warmup_time = 1e-5;
      opt.use_gate_delays = delays;
      const SimResult r = simulate(nl, stats, tech, opt);
      ASSERT_FALSE(r.truncated);
      ASSERT_GT(r.energy, 0.0);
      EXPECT_NEAR((r.output_node_energy + r.internal_node_energy +
                   r.pi_energy) /
                      r.energy,
                  1.0, 1e-9)
          << "delays=" << delays;
      double per_gate_sum = 0.0;
      for (double e : r.per_gate_energy) per_gate_sum += e;
      EXPECT_NEAR(per_gate_sum / (r.output_node_energy + r.internal_node_energy),
                  1.0, 1e-9)
          << "delays=" << delays;
      EXPECT_NEAR(r.power * r.measured_time, r.energy, r.energy * 1e-12);
      EXPECT_DOUBLE_EQ(r.measured_time, opt.measure_time);
    }
  }
}

TEST(SimProperties, EngineRunsArePureFunctionsOfTheSeed) {
  Rng rng(77);
  const Tech tech;
  const CellLibrary lib = random_sp_library(rng, 3);
  const Netlist nl = random_sp_netlist(lib, rng, 5);
  const auto stats = random_pi_stats(nl, rng);
  SimOptions opt;
  opt.measure_time = 4e-4;
  const SimEngine engine(nl, stats, tech, opt);

  // Same seed twice from one engine: the first run must not leave any
  // state behind that could bias the second.
  const SimResult a = engine.run(42);
  const SimResult b = engine.run(42);
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(a.event_count, b.event_count);
  EXPECT_EQ(a.per_gate_energy, b.per_gate_energy);

  // And the engine path equals the one-shot simulate() path.
  SimOptions seeded = opt;
  seeded.seed = 42;
  const SimResult c = simulate(nl, stats, tech, seeded);
  EXPECT_EQ(a.energy, c.energy);
  EXPECT_EQ(a.event_count, c.event_count);

  // Distinct derived streams see distinct waveforms.
  const SimResult d = engine.run(Rng::derive_stream(42, 0));
  const SimResult e = engine.run(Rng::derive_stream(42, 1));
  EXPECT_NE(d.energy, e.energy);
}

TEST(SimProperties, TruncationIsSurfacedNotSilent) {
  Rng rng(99);
  const Tech tech;
  const CellLibrary lib = random_sp_library(rng, 3);
  const Netlist nl = random_sp_netlist(lib, rng, 5);
  const auto stats = random_pi_stats(nl, rng);

  SimOptions opt;
  opt.seed = 5;
  opt.measure_time = 4e-4;
  opt.warmup_time = 1e-5;
  const SimResult full = simulate(nl, stats, tech, opt);
  ASSERT_FALSE(full.truncated);
  EXPECT_DOUBLE_EQ(full.measured_time, opt.measure_time);
  ASSERT_GT(full.event_count, 100u);

  // A budget below the full event count must be reported as a partial
  // window, with every statistic normalised over the window actually
  // simulated.
  opt.max_events = full.event_count / 2;
  const SimResult partial = simulate(nl, stats, tech, opt);
  EXPECT_TRUE(partial.truncated);
  EXPECT_LE(partial.event_count, opt.max_events);
  EXPECT_LT(partial.measured_time, opt.measure_time);
  EXPECT_LT(partial.energy, full.energy);
  if (partial.measured_time > 0.0) {
    EXPECT_NEAR(partial.power * partial.measured_time, partial.energy,
                partial.energy * 1e-12);
  }

  // Degenerate budget: truncation before the warmup ends yields an empty
  // window, not garbage.
  opt.max_events = 1;
  const SimResult empty = simulate(nl, stats, tech, opt);
  EXPECT_TRUE(empty.truncated);
  EXPECT_EQ(empty.measured_time, 0.0);
  EXPECT_EQ(empty.power, 0.0);
}

TEST(SimProperties, FrozenCircuitProducesNoEvents) {
  // All-frozen inputs: no toggles, no energy, no truncation — the
  // engine's empty-queue path.
  Rng rng(123);
  const Tech tech;
  const CellLibrary lib = random_sp_library(rng, 2);
  const Netlist nl = random_sp_netlist(lib, rng, 3);
  std::map<NetId, SignalStats> stats;
  for (NetId id : nl.primary_inputs()) stats[id] = {1.0, 0.0};
  SimOptions opt;
  opt.measure_time = 1e-4;
  const SimResult r = simulate(nl, stats, tech, opt);
  EXPECT_EQ(r.event_count, 0u);
  EXPECT_EQ(r.energy, 0.0);
  EXPECT_FALSE(r.truncated);
  EXPECT_DOUBLE_EQ(r.measured_time, opt.measure_time);
}

}  // namespace
}  // namespace tr::sim
