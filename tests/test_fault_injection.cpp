// Deterministic fault-injection harness tests (ISSUE 7): the site
// registry and arming contract, nth/kind/context targeting, TR_FAULT
// parsing, and the containment matrix — a poisoned circuit in a
// multi-circuit batch becomes a structured error record while every
// survivor's report stays byte-identical to a batch that never
// contained it, at jobs=1 and jobs=8.

#include <gtest/gtest.h>

#include <cstdlib>
#include <new>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "benchgen/suite.hpp"
#include "celllib/library.hpp"
#include "netlist/blif.hpp"
#include "opt/batch.hpp"
#include "opt/batch_report.hpp"
#include "opt/scenario.hpp"
#include "sim/monte_carlo.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/thread_pool.hpp"

namespace tr::opt {
namespace {

namespace fault = util::fault;
using celllib::CellLibrary;
using celllib::Tech;

constexpr std::uint64_t kSeed = 1;

CellLibrary& lib() {
  static CellLibrary instance = CellLibrary::standard();
  return instance;
}

const char* kValidMappedBlif =
    ".model tiny\n"
    ".inputs a b\n"
    ".outputs f\n"
    ".gate nand2 a=a b=b y=f\n";

std::vector<BatchCircuit> make_batch(const std::vector<std::string>& names) {
  std::vector<BatchCircuit> batch;
  for (const std::string& name : names) {
    batch.push_back(make_scenario_circuit(
        benchgen::build_benchmark(lib(), benchgen::suite_entry(name)), 'A',
        kSeed));
  }
  return batch;
}

BatchOptions batch_options(int jobs) {
  BatchOptions options;
  options.jobs = jobs;
  options.threads_per_circuit = 1;  // keep fault context on one thread
  return options;
}

std::string circuit_json(const BatchCircuit& circuit,
                         const BatchCircuitResult& result) {
  BatchJsonOptions json;
  json.include_timing = false;  // wall clock is not part of the contract
  std::ostringstream out;
  write_circuit_json(circuit, result, out, json);
  return out.str();
}

// ---------------------------------------------------------------------------
// Registry and arming contract

TEST(FaultRegistry, ContainsEveryPipelineSite) {
  const std::vector<std::string>& registry = fault::sites();
  for (const char* site :
       {"parse.blif", "parse.blif_mapped", "parse.verilog",
        "celllib.characterize", "opt.score", "sim.replicate",
        "batch.circuit", "server.request"}) {
    EXPECT_NE(std::find(registry.begin(), registry.end(), site),
              registry.end())
        << site;
  }
  EXPECT_EQ(registry.size(), 8u);
}

TEST(FaultRegistry, ArmingUnknownSiteThrows) {
  try {
    fault::ScopedFault bad("parse.bliff");
    FAIL() << "expected tr::Error";
  } catch (const Error& e) {
    EXPECT_STREQ("unknown fault site 'parse.bliff'", e.what());
  }
  EXPECT_FALSE(fault::enabled());
}

TEST(FaultRegistry, ArmingTwiceThrows) {
  fault::ScopedFault first("parse.blif");
  // The failed arm never constructs, so the first fault stays armed.
  EXPECT_THROW(fault::ScopedFault second("opt.score"), Error);
  EXPECT_TRUE(fault::enabled());
}

TEST(FaultHarness, DisarmedChecksAreFree) {
  EXPECT_FALSE(fault::enabled());
  fault::check("parse.blif");  // no-op, must not throw
}

TEST(FaultHarness, FiresOnNthPassageThenLatches) {
  fault::ScopedFault f("parse.blif_mapped", 2);
  EXPECT_TRUE(fault::enabled());
  // Passage 1: counted, not fired.
  netlist::read_blif_mapped_string(kValidMappedBlif, lib());
  EXPECT_EQ(f.hits(), 1u);
  EXPECT_FALSE(f.fired());
  // Passage 2: fires with the site recorded in the chain.
  try {
    netlist::read_blif_mapped_string(kValidMappedBlif, lib());
    FAIL() << "expected FaultInjected";
  } catch (const fault::FaultInjected& e) {
    EXPECT_EQ(ErrorCode::fault_injected, e.code());
    EXPECT_STREQ("injected fault at site 'parse.blif_mapped'", e.what());
    EXPECT_EQ("parse.blif_mapped", e.site_chain());
  }
  EXPECT_TRUE(f.fired());
  // Passage 3: a fault fires once, then the site goes quiet.
  netlist::read_blif_mapped_string(kValidMappedBlif, lib());
  EXPECT_EQ(f.hits(), 3u);
}

TEST(FaultHarness, KindsThrowTheDocumentedTypes) {
  {
    fault::ScopedFault f("parse.blif_mapped", 1, fault::FaultKind::internal);
    try {
      netlist::read_blif_mapped_string(kValidMappedBlif, lib());
      FAIL() << "expected InternalError";
    } catch (const InternalError& e) {
      EXPECT_EQ(ErrorCode::internal, e.code());
      EXPECT_STREQ("injected internal fault at site 'parse.blif_mapped'",
                   e.what());
    }
  }
  {
    fault::ScopedFault f("parse.blif_mapped", 1, fault::FaultKind::bad_alloc);
    EXPECT_THROW(netlist::read_blif_mapped_string(kValidMappedBlif, lib()),
                 std::bad_alloc);
  }
  {
    fault::ScopedFault f("parse.blif_mapped", 1, fault::FaultKind::runtime);
    try {
      netlist::read_blif_mapped_string(kValidMappedBlif, lib());
      FAIL() << "expected std::runtime_error";
    } catch (const Error&) {
      FAIL() << "runtime kind must be a foreign exception, not tr::Error";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ("injected runtime fault at site 'parse.blif_mapped'",
                   e.what());
    }
  }
}

TEST(FaultHarness, ContextFilterTargetsOneWorkUnit) {
  fault::ScopedFault f("parse.blif_mapped", 1, fault::FaultKind::error,
                       "victim");
  {
    const fault::ScopedContext ctx("bystander");
    netlist::read_blif_mapped_string(kValidMappedBlif, lib());  // no match
  }
  EXPECT_EQ(f.hits(), 0u);
  {
    const fault::ScopedContext ctx("victim");
    EXPECT_THROW(netlist::read_blif_mapped_string(kValidMappedBlif, lib()),
                 fault::FaultInjected);
  }
  EXPECT_TRUE(f.fired());
  // Context restored: the site is quiet again outside the scope even
  // for a fresh fault with the same filter.
}

TEST(FaultHarness, InstallFromEnvParsesFullSpec) {
  ASSERT_EQ(unsetenv("TR_FAULT"), 0);
  EXPECT_FALSE(fault::install_from_env());

  ASSERT_EQ(setenv("TR_FAULT", "parse.blif_mapped:2:internal@c17", 1), 0);
  EXPECT_TRUE(fault::install_from_env());
  {
    const fault::ScopedContext ctx("c17");
    netlist::read_blif_mapped_string(kValidMappedBlif, lib());  // hit 1
    EXPECT_THROW(netlist::read_blif_mapped_string(kValidMappedBlif, lib()),
                 InternalError);
  }
  fault::clear();

  ASSERT_EQ(setenv("TR_FAULT", "no.such.site", 1), 0);
  EXPECT_THROW(fault::install_from_env(), Error);
  ASSERT_EQ(setenv("TR_FAULT", "parse.blif:bogus_kind", 1), 0);
  EXPECT_THROW(fault::install_from_env(), Error);
  ASSERT_EQ(unsetenv("TR_FAULT"), 0);
  EXPECT_FALSE(fault::enabled());
}

// ---------------------------------------------------------------------------
// Containment matrix: one poisoned circuit, survivors byte-identical

TEST(FaultContainment, PoisonedCircuitIsContainedAcrossSitesAndJobs) {
  const std::vector<std::string> names{"b1", "decod", "cmb"};
  const std::vector<std::string> survivors{"b1", "cmb"};

  // The fault-free reference: a batch that never contained the victim.
  std::vector<BatchCircuit> reference = make_batch(survivors);
  const BatchReport reference_report =
      BatchOptimizer(lib(), Tech{}, batch_options(1)).run(reference);
  ASSERT_EQ(reference_report.circuits_ok, 2);

  for (const char* site :
       {"celllib.characterize", "opt.score", "batch.circuit"}) {
    for (int jobs : {1, 8}) {
      std::vector<BatchCircuit> batch = make_batch(names);
      const std::string victim = batch[1].name;
      const fault::ScopedFault f(site, 1, fault::FaultKind::error, victim);

      const BatchReport report =
          BatchOptimizer(lib(), Tech{}, batch_options(jobs)).run(batch);

      SCOPED_TRACE(std::string(site) + " jobs=" + std::to_string(jobs));
      EXPECT_TRUE(f.fired());
      ASSERT_EQ(report.circuits.size(), 3u);
      EXPECT_EQ(report.circuits_ok, 2);
      EXPECT_EQ(report.circuits_failed, 1);
      EXPECT_EQ(report.circuits_cancelled, 0);

      const BatchCircuitResult& poisoned = report.circuits[1];
      EXPECT_EQ(poisoned.status, CircuitStatus::error);
      ASSERT_TRUE(poisoned.error.has_value());
      EXPECT_EQ(poisoned.error->code, ErrorCode::fault_injected);
      EXPECT_NE(poisoned.error->site.find(site), std::string::npos)
          << "site chain '" << poisoned.error->site << "'";
      // All-or-nothing: no numbers escape the failed circuit.
      EXPECT_EQ(poisoned.gates, 0);
      EXPECT_EQ(poisoned.report.gates_changed, 0);
      EXPECT_EQ(poisoned.report.model_power_after, 0.0);

      // Survivors: byte-identical to the batch without the victim.
      EXPECT_EQ(circuit_json(batch[0], report.circuits[0]),
                circuit_json(reference[0], reference_report.circuits[0]));
      EXPECT_EQ(circuit_json(batch[2], report.circuits[2]),
                circuit_json(reference[1], reference_report.circuits[1]));

      // Aggregates count the survivors only.
      EXPECT_EQ(report.gates_total, reference_report.gates_total);
      EXPECT_EQ(report.gates_changed, reference_report.gates_changed);
      EXPECT_EQ(report.model_power_after,
                reference_report.model_power_after);
    }
  }
}

TEST(FaultContainment, PoisonedNetlistIsRestored) {
  std::vector<BatchCircuit> batch = make_batch({"b1", "decod"});
  std::vector<std::string> before;
  for (netlist::GateId g = 0; g < batch[1].netlist.gate_count(); ++g) {
    before.push_back(batch[1].netlist.gate(g).config.canonical_key());
  }
  const fault::ScopedFault f("opt.score", 1, fault::FaultKind::error,
                             batch[1].name);
  const BatchReport report =
      BatchOptimizer(lib(), Tech{}, batch_options(1)).run(batch);
  EXPECT_EQ(report.circuits[1].status, CircuitStatus::error);
  ASSERT_EQ(batch[1].netlist.gate_count(),
            static_cast<netlist::GateId>(before.size()));
  for (netlist::GateId g = 0; g < batch[1].netlist.gate_count(); ++g) {
    EXPECT_EQ(batch[1].netlist.gate(g).config.canonical_key(), before[g])
        << "gate " << g;
  }
}

TEST(FaultContainment, ForeignExceptionsFoldIntoTheTaxonomy) {
  struct Case {
    fault::FaultKind kind;
    ErrorCode code;
  };
  for (const Case c : {Case{fault::FaultKind::internal, ErrorCode::internal},
                       Case{fault::FaultKind::bad_alloc, ErrorCode::resource},
                       Case{fault::FaultKind::runtime, ErrorCode::unknown}}) {
    std::vector<BatchCircuit> batch = make_batch({"b1", "decod"});
    const fault::ScopedFault f("batch.circuit", 1, c.kind, batch[0].name);
    const BatchReport report =
        BatchOptimizer(lib(), Tech{}, batch_options(1)).run(batch);
    ASSERT_TRUE(report.circuits[0].error.has_value());
    EXPECT_EQ(report.circuits[0].error->code, c.code);
    EXPECT_EQ(report.circuits[1].status, CircuitStatus::ok);
  }
}

TEST(FaultContainment, FailFastRethrowsTheFirstFailure) {
  std::vector<BatchCircuit> batch = make_batch({"b1", "decod"});
  BatchOptions options = batch_options(1);
  options.keep_going = false;
  const fault::ScopedFault f("batch.circuit", 1, fault::FaultKind::error,
                             batch[0].name);
  EXPECT_THROW(BatchOptimizer(lib(), Tech{}, options).run(batch),
               fault::FaultInjected);
}

TEST(FaultContainment, GuardedLoaderCapturesParseFaults) {
  const fault::ScopedFault f("parse.blif_mapped", 1);
  const BatchCircuit circuit = make_scenario_circuit_guarded(
      "tiny.blif", 'A', kSeed, lib(), [] {
        return netlist::read_blif_mapped_string(kValidMappedBlif, lib(),
                                                "tiny.blif");
      });
  ASSERT_TRUE(circuit.load_error.has_value());
  EXPECT_EQ(circuit.load_error->code, ErrorCode::fault_injected);
  EXPECT_EQ(circuit.load_error->site, "load/parse.blif_mapped");
  EXPECT_EQ(circuit.name, "tiny.blif");
}

TEST(FaultContainment, LoadErrorRidesThroughTheBatch) {
  std::vector<BatchCircuit> batch = make_batch({"b1"});
  {
    const fault::ScopedFault f("parse.blif_mapped", 1);
    batch.push_back(make_scenario_circuit_guarded(
        "bad.blif", 'A', kSeed, lib(), [] {
          return netlist::read_blif_mapped_string(kValidMappedBlif, lib(),
                                                  "bad.blif");
        }));
  }
  const BatchReport report =
      BatchOptimizer(lib(), Tech{}, batch_options(1)).run(batch);
  EXPECT_EQ(report.circuits_ok, 1);
  EXPECT_EQ(report.circuits_failed, 1);
  EXPECT_EQ(report.circuits[1].status, CircuitStatus::error);
  ASSERT_TRUE(report.circuits[1].error.has_value());
  EXPECT_EQ(report.circuits[1].error->code, ErrorCode::fault_injected);
  EXPECT_EQ(report.circuits[1].name, "bad.blif");
}

// ---------------------------------------------------------------------------
// sim.replicate: failure at the pool join, engine and pool reusable

TEST(FaultSim, ReplicateFaultSurfacesAtJoinAndEverythingIsReusable) {
  const netlist::Netlist nl =
      benchgen::build_benchmark(lib(), benchgen::suite_entry("b1"));
  const auto stats = opt::scenario_b(nl);
  const Tech tech;

  sim::MonteCarloOptions mc;
  mc.sim.seed = 7;
  mc.sim.measure_time = 2e-4;
  mc.sim.warmup_time = 1e-5;
  mc.replications = 4;
  mc.threads = 1;  // serial: nth counting is deterministic
  mc.packing = sim::PackingMode::scalar;

  const sim::SimEngine engine(nl, stats, tech, mc.sim);
  util::ThreadPool pool(1);

  const sim::SimSummary baseline = sim::monte_carlo(engine, mc, &pool);

  {
    const fault::ScopedFault f("sim.replicate", 3);
    try {
      sim::monte_carlo(engine, mc, &pool);
      FAIL() << "expected FaultInjected";
    } catch (const fault::FaultInjected& e) {
      EXPECT_EQ("monte_carlo/sim.replicate", e.site_chain());
    }
    EXPECT_TRUE(f.fired());
  }

  // The engine and the pool both survive the failed run; the retry is
  // bit-identical to the baseline.
  const sim::SimSummary retry = sim::monte_carlo(engine, mc, &pool);
  EXPECT_EQ(baseline.replicate_energy, retry.replicate_energy);
  EXPECT_EQ(baseline.total_events, retry.total_events);
  EXPECT_EQ(baseline.energy.mean, retry.energy.mean);
  EXPECT_EQ(baseline.energy.ci95, retry.energy.ci95);
}

}  // namespace
}  // namespace tr::opt
