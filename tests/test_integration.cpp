// End-to-end integration tests: BLIF -> mapper -> optimizer -> model /
// switch-level simulation / delay, reproducing the paper's full flow on
// small circuits.

#include <gtest/gtest.h>

#include "benchgen/classic.hpp"
#include "benchgen/suite.hpp"
#include "celllib/library.hpp"
#include "delay/elmore.hpp"
#include "mapper/mapper.hpp"
#include "netlist/blif.hpp"
#include "opt/optimizer.hpp"
#include "opt/scenario.hpp"
#include "power/circuit_power.hpp"
#include "sim/switch_sim.hpp"
#include "util/stats.hpp"

namespace tr {
namespace {

using celllib::CellLibrary;
using celllib::Tech;
using netlist::NetId;
using netlist::Netlist;

CellLibrary& lib() {
  static CellLibrary instance = CellLibrary::standard();
  return instance;
}

/// The paper's evaluation pipeline for one circuit and one scenario:
/// optimize for best and worst, return model and simulated powers.
struct PipelineResult {
  double model_best = 0.0, model_worst = 0.0;
  double sim_best = 0.0, sim_worst = 0.0;
  double delay_original = 0.0, delay_best = 0.0;
};

PipelineResult run_pipeline(const Netlist& original,
                            const std::map<NetId, boolfn::SignalStats>& stats,
                            std::uint64_t sim_seed) {
  const Tech tech;
  Netlist best = original;
  Netlist worst = original;
  opt::optimize(best, stats, tech);
  opt::OptimizeOptions maximize;
  maximize.objective = opt::Objective::maximize_power;
  opt::optimize(worst, stats, tech, maximize);

  PipelineResult r;
  const auto activity = power::propagate_activity(original, stats);
  r.model_best = power::circuit_power(best, activity, tech).total();
  r.model_worst = power::circuit_power(worst, activity, tech).total();

  sim::SimOptions so;
  so.seed = sim_seed;
  so.measure_time = 1.5e-3;
  const sim::SimResult sim_best = sim::simulate(best, stats, tech, so);
  const sim::SimResult sim_worst = sim::simulate(worst, stats, tech, so);
  EXPECT_FALSE(sim_best.truncated);
  EXPECT_FALSE(sim_worst.truncated);
  r.sim_best = sim_best.power;
  r.sim_worst = sim_worst.power;

  r.delay_original = delay::circuit_delay(original, tech).critical_path;
  r.delay_best = delay::circuit_delay(best, tech).critical_path;
  return r;
}

TEST(Integration, ClassicCircuitsFullFlow) {
  for (const std::string& name : benchgen::classic_names()) {
    const auto net = netlist::read_blif_logic_string(
        benchgen::classic_blif(name), name);
    const Netlist mapped = mapper::map_network(net, lib());
    const auto stats = opt::scenario_a(mapped, 17);
    const PipelineResult r = run_pipeline(mapped, stats, 501);
    EXPECT_LE(r.model_best, r.model_worst) << name;
    EXPECT_GT(r.model_best, 0.0) << name;
    EXPECT_GT(r.sim_best, 0.0) << name;
  }
}

TEST(Integration, SuiteCircuitScenarioA) {
  // One mid-size suite circuit end to end; model best-vs-worst reduction
  // must be positive, simulated reduction must agree in sign.
  const auto spec = benchgen::suite_entry("cmb");  // 117 gates
  const Netlist original = benchgen::build_benchmark(lib(), spec);
  const auto stats = opt::scenario_a(original, spec.seed + 1);
  const PipelineResult r = run_pipeline(original, stats, 502);

  const double model_reduction = percent_reduction(r.model_worst, r.model_best);
  const double sim_reduction = percent_reduction(r.sim_worst, r.sim_best);
  EXPECT_GT(model_reduction, 0.0);
  EXPECT_GT(sim_reduction, 0.0);
  // The paper's Table 3 reductions are single to low double digits.
  EXPECT_LT(model_reduction, 60.0);
}

TEST(Integration, ScenarioBReductionIsSmallerThanScenarioA) {
  // Paper Sec. 5: "the power reduction in scenario B is roughly half the
  // one in scenario A". Check the direction on a small suite sample.
  const Tech tech;
  RunningStats a_red, b_red;
  for (const char* name : {"b1", "cm138a", "decod", "cu"}) {
    const auto spec = benchgen::suite_entry(name);
    const Netlist original = benchgen::build_benchmark(lib(), spec);

    for (const bool scenario_a_flag : {true, false}) {
      const auto stats = scenario_a_flag
                             ? opt::scenario_a(original, spec.seed + 2)
                             : opt::scenario_b(original);
      Netlist best = original;
      Netlist worst = original;
      opt::optimize(best, stats, tech);
      opt::OptimizeOptions maximize;
      maximize.objective = opt::Objective::maximize_power;
      opt::optimize(worst, stats, tech, maximize);
      const auto activity = power::propagate_activity(original, stats);
      const double pb = power::circuit_power(best, activity, tech).total();
      const double pw = power::circuit_power(worst, activity, tech).total();
      (scenario_a_flag ? a_red : b_red).add(percent_reduction(pw, pb));
    }
  }
  EXPECT_GT(a_red.mean(), 0.0);
  EXPECT_GT(b_red.mean(), 0.0);
  EXPECT_GT(a_red.mean(), b_red.mean());
}

TEST(Integration, ModelAndSimulationAgreeOnRanking) {
  // Over several seeds, the model-best netlist must beat the model-worst
  // in simulated power on average (Table 3's M/S agreement).
  const auto spec = benchgen::suite_entry("cm138a");
  const Netlist original = benchgen::build_benchmark(lib(), spec);
  RunningStats sim_reduction;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto stats = opt::scenario_a(original, seed * 13);
    const PipelineResult r = run_pipeline(original, stats, 600 + seed);
    sim_reduction.add(percent_reduction(r.sim_worst, r.sim_best));
  }
  EXPECT_GT(sim_reduction.mean(), 0.0);
}

TEST(Integration, DelayImpactIsBounded) {
  // Optimizing for power may slow the circuit, but not catastrophically
  // (the paper reports a ~4% average increase).
  const auto spec = benchgen::suite_entry("cm82a");
  const Netlist original = benchgen::build_benchmark(lib(), spec);
  const auto stats = opt::scenario_a(original, 99);
  const PipelineResult r = run_pipeline(original, stats, 700);
  const double increase = percent_increase(r.delay_original, r.delay_best);
  EXPECT_LT(increase, 40.0);
  EXPECT_GT(increase, -40.0);
}

TEST(Integration, OptimizedNetlistSurvivesBlifRoundTrip) {
  const auto spec = benchgen::suite_entry("b1");
  Netlist original = benchgen::build_benchmark(lib(), spec);
  const auto stats = opt::scenario_a(original, 3);
  const Tech tech;
  opt::optimize(original, stats, tech);
  std::ostringstream out;
  netlist::write_blif(original, out);
  const Netlist reparsed =
      netlist::read_blif_mapped_string(out.str(), lib(), "rt");
  EXPECT_EQ(reparsed.gate_count(), original.gate_count());
}

}  // namespace
}  // namespace tr
