// Determinism-under-concurrency hammer (ISSUE 8 acceptance criterion):
// N parallel clients fire interleaved requests at one daemon — shared
// warm catalog cache, bounded capacity forcing concurrent evictions,
// mixed seeds/scenarios/options — and every response must be
// byte-identical to a serial in-process run of the same request against
// a fresh library. This is the strongest statement of the server
// contract: a response is a pure function of (request bytes, seed), no
// matter what else the daemon is doing. CI additionally runs this
// binary under ThreadSanitizer.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "celllib/library.hpp"
#include "celllib/tech.hpp"
#include "opt/batch.hpp"
#include "opt/batch_report.hpp"
#include "opt/circuit_load.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "util/json.hpp"

namespace tr::server {
namespace {

struct RequestCase {
  std::string name;
  std::string json;            ///< the request document, byte-exact
  std::vector<std::string> circuits;
  char scenario = 'A';
  std::uint64_t seed = 1;
};

/// Serial oracle: the same pipeline the service runs, against a fresh
/// cold library, no concurrency — exactly what `tr_opt --no-timing
/// --no-cache-stats` would print for this request.
std::string serial_reference(const RequestCase& rc) {
  const celllib::CellLibrary library = celllib::CellLibrary::standard();
  const celllib::Tech tech;
  std::vector<opt::BatchCircuit> batch;
  for (const std::string& spec : rc.circuits) {
    batch.push_back(opt::make_scenario_circuit_guarded(
        spec, rc.scenario, rc.seed, library,
        [&] { return opt::load_circuit_spec(spec, library); }));
  }
  const opt::BatchOptions options;  // defaults, as the requests below
  const opt::BatchOptimizer optimizer(library, tech, options);
  const opt::BatchReport report = optimizer.run(batch);
  opt::BatchJsonOptions json;
  json.include_timing = false;
  json.include_cache_stats = false;
  std::ostringstream out;
  write_batch_json(batch, report, options, out, json);
  return out.str();
}

TEST(ServerHammer, ParallelClientsMatchSerialOracleByteForByte) {
  // Bounded cache (3 entries) so eviction churns *while* requests race:
  // determinism must survive the worst cache weather, not just a warm
  // steady state.
  ServerConfig config;
  config.service.workers = 4;
  config.service.catalog_capacity = 3;
  Server daemon(config);
  daemon.start();
  std::thread serve_thread([&daemon] { daemon.serve(); });

  std::vector<RequestCase> cases;
  cases.push_back({"c17_s1",
                   R"({"circuits": ["c17"], "seed": 1})",
                   {"c17"},
                   'A',
                   1});
  cases.push_back({"pair_s7",
                   R"({"circuits": ["fulladder", "cmp2"], "seed": 7})",
                   {"fulladder", "cmp2"},
                   'A',
                   7});
  cases.push_back({"dec_b",
                   R"({"circuits": ["dec2to4", "c17"], "scenario": "B"})",
                   {"dec2to4", "c17"},
                   'B',
                   1});
  cases.push_back({"classic_s3",
                   R"({"suite": "classic", "seed": 3})",
                   {"c17", "cmp2", "dec2to4", "fulladder"},  // registry order
                   'A',
                   3});

  std::vector<std::string> expected;
  expected.reserve(cases.size());
  for (const RequestCase& rc : cases) expected.push_back(serial_reference(rc));

  // 8 client threads x 3 rounds, each thread walking the cases from a
  // different offset so distinct requests genuinely interleave.
  constexpr int kClients = 8;
  constexpr int kRounds = 3;
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < kRounds; ++round) {
        const std::size_t which =
            (static_cast<std::size_t>(c) + static_cast<std::size_t>(round)) %
            cases.size();
        ClientResult result;
        try {
          result = run_request("127.0.0.1", daemon.port(), cases[which].json);
        } catch (const std::exception& e) {
          failures[c] = cases[which].name + ": " + e.what();
          return;
        }
        if (result.type != kFrameResponse) {
          failures[c] = cases[which].name + ": error frame: " + result.payload;
          return;
        }
        if (result.payload != expected[which]) {
          failures[c] = cases[which].name + ": response diverged from oracle";
          return;
        }
        // Progress frames cover every circuit exactly once (order is
        // scheduling-dependent and deliberately unasserted).
        if (result.progress.size() != cases[which].circuits.size()) {
          failures[c] = cases[which].name + ": wrong progress frame count";
          return;
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], "") << "client " << c;
  }

  daemon.request_drain();
  serve_thread.join();

  const ServiceMetrics metrics = daemon.service().metrics();
  constexpr std::uint64_t kTotal = kClients * kRounds;
  EXPECT_EQ(metrics.received, kTotal);
  EXPECT_EQ(metrics.ok, kTotal);
  // The warm cache genuinely carried across requests...
  EXPECT_GT(metrics.cache.hits, 0u);
  // ...while the capacity bound forced concurrent evictions.
  EXPECT_GT(metrics.cache.evictions, 0u);
  EXPECT_LE(metrics.cached_catalogs, 3u);
}

}  // namespace
}  // namespace tr::server
