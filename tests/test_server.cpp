// Optimization-server integration tests (ISSUE 8): the daemon's whole
// contract exercised in-process — wire framing, the malformed-frame
// corpus (pinned diagnostics in the test_parse_errors style), strict
// request validation, admission control, disconnect- and
// deadline-driven cancellation, the server.request fault site, warm
// catalog-cache reuse with LRU eviction, and graceful drain with the
// metrics dump. Every test that abuses the daemon finishes by proving
// it still serves a clean request: fault isolation means no request,
// however hostile, corrupts daemon state.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/server.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/json.hpp"

namespace tr::server {
namespace {

using util::JsonValue;

/// A live daemon on an ephemeral loopback port, serve() on its own
/// thread. Draining (explicitly or at scope exit) joins the thread.
class TestServer {
public:
  explicit TestServer(ServerConfig config = {}) : server_(std::move(config)) {
    server_.start();
    thread_ = std::thread([this] { server_.serve(); });
  }

  ~TestServer() { drain(); }

  void drain() {
    if (!thread_.joinable()) return;
    server_.request_drain();
    thread_.join();
  }

  int port() const noexcept { return server_.port(); }
  Server& server() noexcept { return server_; }
  ServiceMetrics metrics() { return server_.service().metrics(); }

private:
  Server server_;
  std::thread thread_;
};

/// Sends raw bytes, half-closes the write side, and reads the server's
/// single reply frame (if any) — the malformed-frame harness.
ReadResult abuse(int port, const std::string& bytes, Frame& reply) {
  const int fd = connect_tcp("127.0.0.1", port);
  if (!bytes.empty()) {
    EXPECT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }
  ::shutdown(fd, SHUT_WR);  // EOF on the server's read side
  const ReadResult result = read_frame(fd, reply, kDefaultMaxFrameBytes);
  ::close(fd);
  return result;
}

std::string frame_bytes(char type, const std::string& payload) {
  std::string out;
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  out += static_cast<char>(n & 0xff);
  out += static_cast<char>((n >> 8) & 0xff);
  out += static_cast<char>((n >> 16) & 0xff);
  out += static_cast<char>((n >> 24) & 0xff);
  out += type;
  out += payload;
  return out;
}

/// Expects `reply` to be an error frame and returns its parsed payload.
JsonValue expect_error_frame(const Frame& reply) {
  EXPECT_EQ(reply.type, kFrameError);
  JsonValue doc = util::json_parse(reply.payload);
  EXPECT_EQ(doc.find("type")->as_string("type"), "error");
  return doc;
}

void expect_serves_cleanly(int port) {
  const ClientResult result =
      run_request("127.0.0.1", port, R"({"circuits": ["c17"]})");
  ASSERT_EQ(result.type, kFrameResponse);
  const JsonValue doc = util::json_parse(result.payload);
  EXPECT_EQ(doc.find("totals")->find("circuits_ok")->as_i64("ok"), 1);
}

// ---------------------------------------------------------------------------
// Wire protocol primitives

TEST(ServerProtocol, FrameRoundTripOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string payload("hello \0 frame", 13);  // embedded NUL survives
  ASSERT_TRUE(write_frame(fds[0], kFrameRequest, payload));
  Frame frame;
  ASSERT_EQ(read_frame(fds[1], frame, kDefaultMaxFrameBytes), ReadResult::ok);
  EXPECT_EQ(frame.type, kFrameRequest);
  EXPECT_EQ(frame.payload, payload);
  EXPECT_EQ(frame.declared_length, payload.size());

  // Empty payload is a legal frame (the shutdown request).
  ASSERT_TRUE(write_frame(fds[0], kFrameShutdown, ""));
  ASSERT_EQ(read_frame(fds[1], frame, kDefaultMaxFrameBytes), ReadResult::ok);
  EXPECT_EQ(frame.type, kFrameShutdown);
  EXPECT_TRUE(frame.payload.empty());
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ServerProtocol, WriteToClosedPeerFailsInsteadOfSigpipe) {
  // The SIGPIPE satellite at its smallest: writing a frame into a
  // closed peer must report failure, not kill the process.
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[1]);
  // The first write may land in the send buffer; keep writing a large
  // payload until the RST surfaces as an error.
  const std::string big(1 << 20, 'x');
  bool failed = false;
  for (int i = 0; i < 16 && !failed; ++i) {
    failed = !write_frame(fds[0], kFrameProgress, big);
  }
  EXPECT_TRUE(failed);
  ::close(fds[0]);
}

TEST(ServerProtocol, ReadInterruptedByPredicate) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Frame frame;
  // Nothing will ever arrive; the predicate aborts the wait (this is
  // how draining unblocks idle connections).
  EXPECT_EQ(read_frame(fds[1], frame, kDefaultMaxFrameBytes,
                       [] { return true; }),
            ReadResult::interrupted);
  ::close(fds[0]);
  ::close(fds[1]);
}

// ---------------------------------------------------------------------------
// Malformed-frame corpus: every entry gets a structured error (or a
// clean close), and the daemon then serves an untouched request.

TEST(ServerCorpus, TruncatedHeaderOversizedAndGarbage) {
  TestServer daemon;
  Frame reply;

  // Truncated length prefix: 3 of 5 header bytes, then EOF.
  ASSERT_EQ(abuse(daemon.port(), std::string("\x01\x02\x03", 3), reply),
            ReadResult::ok);
  {
    const JsonValue doc = expect_error_frame(reply);
    EXPECT_EQ(doc.find("code")->as_string("code"), "parse");
    EXPECT_EQ(doc.find("site")->as_string("site"), "wire");
    EXPECT_EQ(doc.find("message")->as_string("message"),
              "wire: truncated frame header");
  }

  // Oversized declared length: 17 MiB against the 16 MiB bound. The
  // payload is never read.
  std::string oversized(std::string("\x00\x00\x10\x01", 4));  // 17825792 LE
  oversized += kFrameRequest;
  ASSERT_EQ(abuse(daemon.port(), oversized, reply), ReadResult::ok);
  {
    const JsonValue doc = expect_error_frame(reply);
    EXPECT_EQ(doc.find("code")->as_string("code"), "parse");
    EXPECT_EQ(doc.find("message")->as_string("message"),
              "wire: frame length 17825792 exceeds limit of 16777216 bytes");
  }

  // Truncated payload: header promises 100 bytes, 10 arrive.
  {
    std::string bytes = frame_bytes(kFrameRequest, std::string(100, 'x'));
    bytes.resize(5 + 10);
    ASSERT_EQ(abuse(daemon.port(), bytes, reply), ReadResult::ok);
    const JsonValue doc = expect_error_frame(reply);
    EXPECT_EQ(doc.find("code")->as_string("code"), "parse");
    EXPECT_EQ(doc.find("message")->as_string("message"),
              "wire: truncated frame payload (got 10 of 100 bytes)");
  }

  // Garbage JSON in a well-formed frame: the parser's diagnostic
  // travels back verbatim.
  ASSERT_EQ(abuse(daemon.port(), frame_bytes(kFrameRequest, "not json"),
                  reply),
            ReadResult::ok);
  {
    const JsonValue doc = expect_error_frame(reply);
    EXPECT_EQ(doc.find("code")->as_string("code"), "parse");
    EXPECT_EQ(doc.find("message")->as_string("message"),
              "json: offset 0: expected a JSON value");
  }

  // Empty request object: valid JSON, no circuits.
  ASSERT_EQ(abuse(daemon.port(), frame_bytes(kFrameRequest, "{}"), reply),
            ReadResult::ok);
  {
    const JsonValue doc = expect_error_frame(reply);
    EXPECT_EQ(doc.find("code")->as_string("code"), "invalid_argument");
    EXPECT_EQ(doc.find("message")->as_string("message"),
              "request: no circuits given");
  }

  // Unknown frame type.
  ASSERT_EQ(abuse(daemon.port(), frame_bytes('X', "payload"), reply),
            ReadResult::ok);
  {
    const JsonValue doc = expect_error_frame(reply);
    EXPECT_EQ(doc.find("code")->as_string("code"), "invalid_argument");
    EXPECT_EQ(doc.find("message")->as_string("message"),
              "wire: unexpected frame type 'X'");
  }

  // A bare connect-then-close is a clean EOF: no reply, no harm.
  ASSERT_EQ(abuse(daemon.port(), "", reply), ReadResult::closed);

  // After the whole corpus the daemon is uncorrupted.
  expect_serves_cleanly(daemon.port());

  daemon.drain();
  const ServiceMetrics metrics = daemon.metrics();
  // Only the framed-but-invalid payloads reach the service (garbage
  // JSON + empty object); framing-level rejects never do.
  EXPECT_EQ(metrics.invalid, 2u);
  EXPECT_EQ(metrics.ok, 1u);
}

TEST(ServerCorpus, StrictRequestValidation) {
  TestServer daemon;
  Frame reply;

  const auto expect_invalid = [&](const std::string& request,
                                  const std::string& message) {
    ASSERT_EQ(abuse(daemon.port(), frame_bytes(kFrameRequest, request),
                    reply),
              ReadResult::ok);
    const JsonValue doc = expect_error_frame(reply);
    EXPECT_EQ(doc.find("code")->as_string("code"), "invalid_argument");
    EXPECT_EQ(doc.find("message")->as_string("message"), message);
  };

  expect_invalid(R"({"circuits": ["c17"], "dedline_ms": 5})",
                 "request: unknown field 'dedline_ms'");
  expect_invalid(R"({"circuits": ["/etc/passwd.blif"]})",
                 "request: unknown circuit '/etc/passwd.blif' (the server "
                 "serves embedded classics and suite entries only)");
  expect_invalid(R"({"circuits": ["c17"], "scenario": "C"})",
                 "request: scenario must be \"A\" or \"B\"");
  expect_invalid(R"({"circuits": ["c17"], "deadline_ms": -1})",
                 "request: deadline_ms must be a finite non-negative number "
                 "or null");
  expect_invalid(R"({"circuits": ["c17"], "seed": -1})",
                 "seed must be a non-negative integer");
  expect_invalid(R"({"circuits": ["c17"], "delay_budget": -0.5})",
                 "request: delay_budget must be a non-negative number or "
                 "null");

  expect_serves_cleanly(daemon.port());
}

// ---------------------------------------------------------------------------
// Admission control

TEST(ServerAdmission, DrainingRejectsNewRequests) {
  ServerConfig config;
  TestServer daemon(config);
  // Drain via the wire ('S' frame), acknowledged with 'B'.
  EXPECT_TRUE(send_shutdown("127.0.0.1", daemon.port()));
  daemon.drain();

  // The service itself now refuses admissions (transport is gone, so
  // exercise the service layer directly).
  struct CaptureSink : Sink {
    std::string error;
    void on_progress(const std::string&) override {}
    void on_response(const std::string&) override {}
    void on_error(const std::string& payload) override { error = payload; }
  };
  const auto sink = std::make_shared<CaptureSink>();
  const util::CancellationToken token =
      daemon.server().service().submit(R"({"circuits": ["c17"]})", sink);
  EXPECT_FALSE(token.valid());
  const JsonValue doc = util::json_parse(sink->error);
  EXPECT_EQ(doc.find("code")->as_string("code"), "resource");
  EXPECT_EQ(doc.find("message")->as_string("message"),
            "server: draining, not accepting requests");
  EXPECT_EQ(daemon.metrics().rejected, 1u);
}

TEST(ServerAdmission, FullQueueRejectsWithResourceError) {
  // max_queue = 0 bounds the admission queue at zero entries: every
  // submission is refused before execution — the deterministic way to
  // observe the queue-full path.
  ServerConfig config;
  config.service.max_queue = 0;
  TestServer daemon(config);

  const ClientResult result = run_request("127.0.0.1", daemon.port(),
                                          R"({"circuits": ["c17"]})");
  ASSERT_EQ(result.type, kFrameError);
  const JsonValue doc = util::json_parse(result.payload);
  EXPECT_EQ(doc.find("code")->as_string("code"), "resource");
  EXPECT_EQ(doc.find("message")->as_string("message"),
            "server: queue full (0 pending requests)");

  daemon.drain();
  EXPECT_EQ(daemon.metrics().rejected, 1u);
}

// ---------------------------------------------------------------------------
// Cancellation: deadlines and client disconnects

TEST(ServerCancel, ExpiredDeadlineCancelsEveryCircuit) {
  TestServer daemon;
  const ClientResult result = run_request(
      "127.0.0.1", daemon.port(),
      R"({"circuits": ["c17", "fulladder"], "deadline_ms": 0})");
  ASSERT_EQ(result.type, kFrameResponse);
  const JsonValue doc = util::json_parse(result.payload);
  EXPECT_EQ(
      doc.find("totals")->find("circuits_cancelled")->as_i64("cancelled"), 2);
  EXPECT_EQ(doc.find("totals")->find("circuits_error")->as_i64("error"), 0);

  daemon.drain();
  EXPECT_EQ(daemon.metrics().cancelled, 1u);
}

TEST(ServerCancel, ClientDisconnectMidStreamCancelsAndDaemonSurvives) {
  // The disconnect satellite: a client that walks away mid-stream must
  // (a) not kill the daemon via SIGPIPE on the orphaned writes, and
  // (b) cancel the request so executors stop burning on it.
  TestServer daemon;

  const int fd = connect_tcp("127.0.0.1", daemon.port());
  // A wide request (whole table3 suite, serial) so work is still
  // outstanding when the disconnect lands.
  const std::string request =
      R"({"suite": "table3", "jobs": 1, "threads_per_circuit": 1})";
  ASSERT_TRUE(write_frame(fd, kFrameRequest, request));

  // Wait for the first progress frame — the request is demonstrably
  // executing and streaming to us — then vanish without a goodbye.
  Frame frame;
  ASSERT_EQ(read_frame(fd, frame, kDefaultMaxFrameBytes), ReadResult::ok);
  EXPECT_EQ(frame.type, kFrameProgress);
  ::close(fd);

  // Drain returns only after in-flight work settles; the daemon
  // surviving to report metrics IS the SIGPIPE assertion.
  daemon.drain();
  const ServiceMetrics metrics = daemon.metrics();
  EXPECT_EQ(metrics.received, 1u);
  // The disconnect raced the (fast) suite: either the cancel landed in
  // time, or the batch finished ok first. Both leave a live daemon and
  // exactly one classified request; what must never happen is a crash
  // or an unclassified request.
  EXPECT_EQ(metrics.ok + metrics.cancelled, 1u);

  // A cancelled or completed stream must not poison the next client.
  // (The daemon is draining now, so assert via counters only.)
  EXPECT_EQ(metrics.error, 0u);
}

// ---------------------------------------------------------------------------
// Fault injection: the server.request site

TEST(ServerFault, InjectedRequestFaultAnswersStructuredErrorAndRecovers) {
  TestServer daemon;
  {
    util::fault::ScopedFault fault("server.request");
    const ClientResult result = run_request("127.0.0.1", daemon.port(),
                                            R"({"circuits": ["c17"]})");
    ASSERT_EQ(result.type, kFrameError);
    const JsonValue doc = util::json_parse(result.payload);
    EXPECT_EQ(doc.find("code")->as_string("code"), "fault_injected");
    // The fault's own site string, same convention as the golden
    // batch.circuit fixtures.
    EXPECT_EQ(doc.find("site")->as_string("site"), "server.request");
  }
  // Disarmed: the daemon recovers without restart.
  expect_serves_cleanly(daemon.port());

  daemon.drain();
  const ServiceMetrics metrics = daemon.metrics();
  EXPECT_EQ(metrics.error, 1u);
  EXPECT_EQ(metrics.ok, 1u);
}

// ---------------------------------------------------------------------------
// Warm cache, determinism and eviction

TEST(ServerCache, WarmCacheKeepsResponsesByteIdentical) {
  TestServer daemon;
  const std::string request = R"({"circuits": ["c17", "cmp2"], "seed": 7})";
  const ClientResult cold = run_request("127.0.0.1", daemon.port(), request);
  ASSERT_EQ(cold.type, kFrameResponse);
  const ServiceMetrics after_cold = daemon.metrics();

  const ClientResult warm = run_request("127.0.0.1", daemon.port(), request);
  ASSERT_EQ(warm.type, kFrameResponse);
  const ServiceMetrics after_warm = daemon.metrics();

  // The determinism contract across cache states: byte-identical.
  EXPECT_EQ(cold.payload, warm.payload);
  // And the second run genuinely reused the warm cache: no new misses.
  EXPECT_EQ(after_warm.cache.misses, after_cold.cache.misses);
  EXPECT_GT(after_warm.cache.hits, after_cold.cache.hits);
}

TEST(ServerCache, BoundedCatalogCacheEvictsLru) {
  ServerConfig config;
  config.service.catalog_capacity = 2;
  TestServer daemon(config);
  // The classic suite instantiates more than two distinct structural
  // forms; a capacity-2 cache must evict and still answer correctly.
  const ClientResult result = run_request("127.0.0.1", daemon.port(),
                                          R"({"suite": "classic"})");
  ASSERT_EQ(result.type, kFrameResponse);
  const JsonValue doc = util::json_parse(result.payload);
  EXPECT_EQ(doc.find("totals")->find("circuits_error")->as_i64("error"), 0);

  daemon.drain();
  const ServiceMetrics metrics = daemon.metrics();
  EXPECT_GT(metrics.cache.evictions, 0u);
  EXPECT_LE(metrics.cached_catalogs, 2u);
}

// ---------------------------------------------------------------------------
// Drain: the metrics dump

TEST(ServerDrain, MetricsDumpCarriesCountersAndCacheTotals) {
  TestServer daemon;
  expect_serves_cleanly(daemon.port());
  EXPECT_TRUE(send_shutdown("127.0.0.1", daemon.port()));
  daemon.drain();

  std::ostringstream out;
  daemon.server().write_metrics_json(out);
  const JsonValue doc = util::json_parse(out.str());
  EXPECT_EQ(doc.find("generator")->as_string("generator"), "tr_opt_server");
  const JsonValue* requests = doc.find("requests");
  ASSERT_NE(requests, nullptr);
  EXPECT_EQ(requests->find("received")->as_u64("received"), 1u);
  EXPECT_EQ(requests->find("ok")->as_u64("ok"), 1u);
  const JsonValue* cache = doc.find("catalog_cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_GT(cache->find("lookups")->as_u64("lookups"), 0u);
  EXPECT_GE(cache->find("hit_rate")->as_double("hit_rate"), 0.0);
  ASSERT_NE(cache->find("evictions"), nullptr);
}

}  // namespace
}  // namespace tr::server
