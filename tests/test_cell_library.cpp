// Tests for the Table 2 cell library: functions, counts, capacitances,
// instance structure, and function matching.

#include <gtest/gtest.h>

#include "celllib/catalog.hpp"
#include "celllib/library.hpp"
#include "util/error.hpp"

namespace tr::celllib {
namespace {

using boolfn::TruthTable;

TruthTable var(int n, int j) { return TruthTable::variable(n, j); }

TEST(CellLibrary, HasThePaperCells) {
  const CellLibrary lib = CellLibrary::standard();
  for (const char* name :
       {"inv", "nand2", "nand3", "nand4", "nor2", "nor3", "nor4", "aoi21",
        "aoi22", "aoi31", "aoi211", "aoi221", "aoi222", "oai21", "oai22",
        "oai31", "oai211", "oai221", "oai222", "aoi32", "oai32", "aoi33",
        "oai33"}) {
    EXPECT_TRUE(lib.contains(name)) << name;
  }
  EXPECT_EQ(lib.size(), 23u);
}

TEST(CellLibrary, CellFunctions) {
  const CellLibrary lib = CellLibrary::standard();
  EXPECT_EQ(lib.cell("inv").function(), ~var(1, 0));
  EXPECT_EQ(lib.cell("nand2").function(), ~(var(2, 0) & var(2, 1)));
  EXPECT_EQ(lib.cell("nor3").function(),
            ~(var(3, 0) | var(3, 1) | var(3, 2)));
  EXPECT_EQ(lib.cell("aoi21").function(),
            ~((var(3, 0) & var(3, 1)) | var(3, 2)));
  EXPECT_EQ(lib.cell("oai21").function(),
            ~((var(3, 0) | var(3, 1)) & var(3, 2)));
  EXPECT_EQ(lib.cell("aoi22").function(),
            ~((var(4, 0) & var(4, 1)) | (var(4, 2) & var(4, 3))));
  EXPECT_EQ(lib.cell("oai222").function(),
            ~((var(6, 0) | var(6, 1)) & (var(6, 2) | var(6, 3)) &
              (var(6, 4) | var(6, 5))));
}

TEST(CellLibrary, TransistorCountsAndArea) {
  const CellLibrary lib = CellLibrary::standard();
  EXPECT_EQ(lib.cell("inv").transistor_count(), 2);
  EXPECT_EQ(lib.cell("nand2").transistor_count(), 4);
  EXPECT_EQ(lib.cell("aoi222").transistor_count(), 12);
  EXPECT_DOUBLE_EQ(lib.cell("nand3").area(), 6.0);
}

TEST(CellLibrary, PinNamesAndCapacitance) {
  const CellLibrary lib = CellLibrary::standard();
  const Cell& aoi21 = lib.cell("aoi21");
  EXPECT_EQ(aoi21.pin_names(),
            (std::vector<std::string>{"a", "b", "c"}));
  const Tech tech = default_tech();
  // Every pin drives exactly one N + one P device: 2 gate terminals.
  for (int pin = 0; pin < aoi21.input_count(); ++pin) {
    EXPECT_DOUBLE_EQ(aoi21.pin_capacitance(tech, pin), 2.0 * tech.c_gate);
  }
  EXPECT_THROW(aoi21.pin_capacitance(tech, 3), Error);
}

TEST(CellLibrary, InstanceCounts) {
  // Paper Sec. 5.1: oai21 splits into instances [A] and [B]; stacks of
  // identical devices form a single instance.
  const CellLibrary lib = CellLibrary::standard();
  EXPECT_EQ(lib.cell("oai21").instance_count(), 2);
  EXPECT_EQ(lib.cell("aoi21").instance_count(), 2);
  EXPECT_EQ(lib.cell("nand3").instance_count(), 1);
  EXPECT_EQ(lib.cell("nor4").instance_count(), 1);
  EXPECT_EQ(lib.cell("inv").instance_count(), 1);
}

TEST(CellLibrary, DuplicateCellRejected) {
  CellLibrary lib = CellLibrary::standard();
  EXPECT_THROW(
      lib.add(Cell("inv", {"a"}, gategraph::SpNode::transistor(0))), Error);
}

TEST(CellLibrary, UnknownCellLookup) {
  const CellLibrary lib = CellLibrary::standard();
  EXPECT_THROW(lib.cell("xor2"), Error);
  EXPECT_EQ(lib.find("xor2"), nullptr);
  EXPECT_NE(lib.find("nand2"), nullptr);
}

TEST(CellLibrary, MatchFunctionIdentity) {
  const CellLibrary lib = CellLibrary::standard();
  for (const std::string& name : lib.cell_names()) {
    const auto match = lib.match_function(lib.cell(name).function());
    ASSERT_TRUE(match.has_value()) << name;
    // nand/aoi families have symmetric-but-distinct shapes; the matched
    // cell must compute the same function.
    const auto& [matched_cell, pin_to_var] = *match;
    EXPECT_EQ(lib.cell(matched_cell).function().var_count(),
              lib.cell(name).function().var_count());
  }
}

TEST(CellLibrary, MatchFunctionUnderPermutation) {
  const CellLibrary lib = CellLibrary::standard();
  // aoi21 with pins permuted: f = !(cb + a) over (a,b,c).
  const TruthTable f = ~((var(3, 2) & var(3, 1)) | var(3, 0));
  const auto match = lib.match_function(f);
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->first, "aoi21");
  // Verify the binding: cell.function permuted by pin_to_var equals f.
  const auto& pin_to_var = match->second;
  std::vector<int> perm(3, -1);
  std::vector<bool> used(3, false);
  for (std::size_t pin = 0; pin < pin_to_var.size(); ++pin) {
    perm[pin] = pin_to_var[pin];
    used[static_cast<std::size_t>(pin_to_var[pin])] = true;
  }
  EXPECT_EQ(lib.cell("aoi21").function().permuted(perm), f);
}

TEST(CellLibrary, MatchFunctionWidensVacuousVariables) {
  const CellLibrary lib = CellLibrary::standard();
  // nor2 over variables {1, 3} of a 4-variable space.
  const TruthTable f = ~(var(4, 1) | var(4, 3));
  const auto match = lib.match_function(f);
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->first, "nor2");
  EXPECT_EQ(match->second, (std::vector<int>{1, 3}));
}

TEST(CellLibrary, MatchFunctionRejectsNonLibraryShapes) {
  const CellLibrary lib = CellLibrary::standard();
  // XOR is not in the library (not a single SP complementary gate here).
  EXPECT_FALSE(lib.match_function(var(2, 0) ^ var(2, 1)).has_value());
  // AND (positive-unate) is not directly implementable either.
  EXPECT_FALSE(lib.match_function(var(2, 0) & var(2, 1)).has_value());
}

TEST(CellLibrary, NodeCapacitances) {
  const CellLibrary lib = CellLibrary::standard();
  const Tech tech = default_tech();
  const gategraph::GateGraph graph(lib.cell("nand2").topology());
  const double load = 10e-15;
  const auto caps = node_capacitances(graph, tech, load);
  ASSERT_EQ(caps.size(), 4u);  // vss, vdd, y, one internal node
  EXPECT_DOUBLE_EQ(caps[gategraph::GateGraph::vss_node], 0.0);
  EXPECT_DOUBLE_EQ(caps[gategraph::GateGraph::vdd_node], 0.0);
  // y: 1 N terminal + 2 P terminals = 3 diffusion terminals + load.
  EXPECT_DOUBLE_EQ(caps[gategraph::GateGraph::output_node],
                   3.0 * tech.c_diff + load);
  // internal node: 2 terminals.
  EXPECT_DOUBLE_EQ(caps[3], 2.0 * tech.c_diff);
}

TEST(CellLibrary, EnergyPerTransitionConvention) {
  Tech tech;
  tech.vdd = 5.0;
  EXPECT_DOUBLE_EQ(tech.energy_per_transition(2e-15), 0.5 * 2e-15 * 25.0);
}

// ---------------------------------------------------------------------------
// Bounded catalog cache (ISSUE 8): the server keeps one process-lifetime
// library, so the reorder-catalog cache needs a capacity bound with LRU
// eviction and counters a drain-time metrics dump can report.

TEST(CellLibraryCatalogCache, UnboundedByDefaultAndCountsHits) {
  CellLibrary lib = CellLibrary::standard();
  EXPECT_EQ(lib.catalog_capacity(), 0u);  // 0 = unbounded
  EXPECT_EQ(lib.cached_catalog_count(), 0u);

  const auto first = lib.catalog(lib.cell("nand2").topology());
  const auto again = lib.catalog(lib.cell("nand2").topology());
  EXPECT_EQ(first.get(), again.get());  // same shared catalog instance

  const CatalogCacheStats stats = lib.catalog_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.lookups(), 2u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
  EXPECT_EQ(lib.cached_catalog_count(), 1u);
}

TEST(CellLibraryCatalogCache, EvictsLeastRecentlyUsedAtCapacity) {
  CellLibrary lib = CellLibrary::standard();
  lib.set_catalog_capacity(2);
  EXPECT_EQ(lib.catalog_capacity(), 2u);

  lib.catalog(lib.cell("nand2").topology());  // miss; cache {nand2}
  lib.catalog(lib.cell("nor2").topology());   // miss; cache {nor2, nand2}
  lib.catalog(lib.cell("nand2").topology());  // hit; nand2 becomes MRU

  // A third distinct form must evict nor2 (the LRU), not nand2.
  lib.catalog(lib.cell("nand3").topology());  // miss; evicts nor2
  EXPECT_EQ(lib.cached_catalog_count(), 2u);
  CatalogCacheStats stats = lib.catalog_cache_stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.hits, 1u);

  // nor2 was evicted: asking again re-misses (and evicts nand2, which
  // became LRU once nand3 was inserted)...
  lib.catalog(lib.cell("nor2").topology());
  stats = lib.catalog_cache_stats();
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.evictions, 2u);
  // ...while nand3, the recently used survivor, still hits.
  lib.catalog(lib.cell("nand3").topology());
  EXPECT_EQ(lib.catalog_cache_stats().hits, 2u);
  EXPECT_EQ(lib.cached_catalog_count(), 2u);
}

TEST(CellLibraryCatalogCache, EvictedCatalogStaysUsableViaSharedOwnership) {
  CellLibrary lib = CellLibrary::standard();
  lib.set_catalog_capacity(1);
  const auto held = lib.catalog(lib.cell("nand2").topology());
  lib.catalog(lib.cell("nor2").topology());  // evicts nand2 from the cache
  EXPECT_EQ(lib.catalog_cache_stats().evictions, 1u);
  // The shared_ptr the caller holds outlives the cache entry; a rebuild
  // after the eviction produces an equivalent (but distinct) catalog.
  ASSERT_NE(held, nullptr);
  const auto rebuilt = lib.catalog(lib.cell("nand2").topology());
  EXPECT_NE(held.get(), rebuilt.get());
  EXPECT_EQ(held->configs().size(), rebuilt->configs().size());
}

TEST(CellLibraryCatalogCache, ShrinkingCapacityEvictsImmediately) {
  CellLibrary lib = CellLibrary::standard();
  lib.catalog(lib.cell("nand2").topology());
  lib.catalog(lib.cell("nor2").topology());
  lib.catalog(lib.cell("nand3").topology());
  EXPECT_EQ(lib.cached_catalog_count(), 3u);

  lib.set_catalog_capacity(1);  // trims to the single most recent entry
  EXPECT_EQ(lib.cached_catalog_count(), 1u);
  EXPECT_EQ(lib.catalog_cache_stats().evictions, 2u);
  // The survivor is the MRU form, nand3.
  lib.catalog(lib.cell("nand3").topology());
  EXPECT_EQ(lib.catalog_cache_stats().hits, 1u);
}

}  // namespace
}  // namespace tr::celllib
