// The sim-vs-model differential suite (DESIGN.md Sec. 8.4): on
// glitch-free circuits the stochastic power model's per-gate predictions
// must agree with the Monte-Carlo simulator under the two documented
// tolerances — the exact output-node claim inside the 95% CI (plus
// rel_slack), and the extended totals inside the internal-node bias
// envelope. This is the machine-checked form of the paper's Table 3
// model-vs-S validation. Negative controls: a glitching circuit
// evaluated with real gate delays must NOT agree, and a truncated
// oracle must fail loudly.

#include <gtest/gtest.h>

#include <string>

#include "benchgen/generators.hpp"
#include "celllib/library.hpp"
#include "power/validation.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace tr::power {
namespace {

using boolfn::SignalStats;
using celllib::CellLibrary;
using celllib::Tech;
using netlist::NetId;
using netlist::Netlist;

CellLibrary& lib() {
  static CellLibrary instance = CellLibrary::standard();
  return instance;
}

/// Deterministic assorted PI statistics (fixed by `seed`, biased away
/// from the degenerate corners).
std::map<NetId, SignalStats> assorted_stats(const Netlist& nl,
                                            std::uint64_t seed) {
  Rng rng(seed);
  std::map<NetId, SignalStats> stats;
  for (NetId id : nl.primary_inputs()) {
    stats[id] = {rng.uniform(0.25, 0.75), rng.uniform(1e5, 3e5)};
  }
  return stats;
}

ValidationOptions default_options(std::uint64_t seed) {
  ValidationOptions options;
  options.mc.sim.seed = seed;
  options.mc.sim.measure_time = 1.5e-3;  // ~200-450 toggles per PI
  options.mc.sim.warmup_time = 3e-5;
  options.mc.replications = 16;
  return options;
}

void expect_report_agrees(const ValidationReport& report,
                          const std::string& context) {
  ASSERT_FALSE(report.truncated) << context;
  EXPECT_TRUE(report.output_totals_within_ci)
      << context << ": output-node model " << report.model_output_total
      << " W vs sim " << report.sim_output_total.mean << " ± "
      << report.sim_output_total.ci95 << " W";
  EXPECT_TRUE(report.totals_within_envelope)
      << context << ": extended model " << report.model_gate_power
      << " W vs sim " << report.sim_gate_power.mean << " ± "
      << report.sim_gate_power.ci95 << " W";
  EXPECT_TRUE(report.pi_within_ci)
      << context << ": PI model " << report.model_pi_power << " W vs sim "
      << report.sim_pi_power.mean << " ± " << report.sim_pi_power.ci95
      << " W";
  for (const GateValidation& row : report.gates) {
    EXPECT_TRUE(row.output_within_ci)
        << context << ": gate " << row.name << " (" << row.cell
        << "): output model " << row.model_output_power << " W vs sim "
        << row.sim_output_power.mean << " ± " << row.sim_output_power.ci95
        << " W over " << row.sim_output_power.count << " replications";
    EXPECT_TRUE(row.total_within_envelope)
        << context << ": gate " << row.name << " (" << row.cell
        << "): extended model " << row.model_total_power << " W vs sim "
        << row.sim_total_power.mean << " ± " << row.sim_total_power.ci95
        << " W";
  }
  EXPECT_TRUE(report.all_within_tolerance()) << context;
}

TEST(Validation, EveryLibraryCellAgreesGlitchFree) {
  // One single-gate netlist per library cell, distinct PIs: spatial
  // independence holds exactly, so zero-delay simulation must reproduce
  // the model within the documented tolerances on every cell — the
  // Table 3 protocol at gate granularity.
  const Tech tech;
  std::uint64_t seed = 101;
  for (const std::string& cell_name : lib().cell_names()) {
    SCOPED_TRACE(cell_name);
    Netlist nl(lib(), "cell_" + cell_name);
    const int arity = lib().cell(cell_name).input_count();
    std::vector<NetId> inputs;
    for (int i = 0; i < arity; ++i) {
      const NetId id = nl.add_net("x" + std::to_string(i));
      nl.mark_primary_input(id);
      inputs.push_back(id);
    }
    const NetId y = nl.add_net("y");
    nl.add_gate("g", cell_name, std::move(inputs), y);
    nl.mark_primary_output(y);

    const auto stats = assorted_stats(nl, seed);
    const ValidationReport report =
        validate_power_model(nl, stats, tech, default_options(seed));
    expect_report_agrees(report, cell_name);
    ++seed;
  }
}

TEST(Validation, ExtendedModelBiasIsSystematicOnDeepStacks) {
  // The envelope exists for a reason: on a 4-high series stack the
  // charge-retention approximation overestimates the internal-node
  // power well beyond the CI (measured ~+35%, DESIGN.md Sec. 8.4),
  // while the output-node claim stays sharp. Pin that down so the
  // envelope cannot silently be narrowed below reality.
  const Tech tech;
  Netlist nl(lib(), "cell_nand4");
  std::vector<NetId> inputs;
  for (int i = 0; i < 4; ++i) {
    const NetId id = nl.add_net("x" + std::to_string(i));
    nl.mark_primary_input(id);
    inputs.push_back(id);
  }
  const NetId y = nl.add_net("y");
  nl.add_gate("g", "nand4", std::move(inputs), y);
  nl.mark_primary_output(y);

  const ValidationReport report = validate_power_model(
      nl, assorted_stats(nl, 104), tech, default_options(104));
  ASSERT_FALSE(report.truncated);
  const GateValidation& row = report.gates.front();
  EXPECT_TRUE(row.output_within_ci);
  // The extended model overestimates by more than the CI can explain...
  EXPECT_GT(row.model_total_power,
            row.sim_total_power.mean + row.sim_total_power.ci95);
  // ...but stays inside the documented envelope.
  EXPECT_TRUE(row.total_within_envelope);
  EXPECT_GT(report.max_total_rel_error, 0.10);
  EXPECT_LT(report.max_total_rel_error, report.bias_envelope);
}

TEST(Validation, ReadOnceNandTreeAgreesPerGateAndInTotal) {
  // A balanced nand2 tree over distinct PIs is read-once, so Najm's
  // independence assumption holds on every internal net, not just at the
  // leaves.
  const Tech tech;
  Netlist nl(lib(), "nandtree");
  std::vector<NetId> level;
  for (int i = 0; i < 8; ++i) {
    const NetId net = nl.add_net("x" + std::to_string(i));
    nl.mark_primary_input(net);
    level.push_back(net);
  }
  int counter = 0;
  while (level.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      const NetId out = nl.add_net("t" + std::to_string(counter));
      nl.add_gate("g" + std::to_string(counter++), "nand2",
                  {level[i], level[i + 1]}, out);
      next.push_back(out);
    }
    level = std::move(next);
  }
  nl.mark_primary_output(level.front());

  const ValidationReport report = validate_power_model(
      nl, assorted_stats(nl, 7), tech, default_options(7));
  EXPECT_EQ(report.gates.size(), 7u);
  expect_report_agrees(report, "nandtree");
}

TEST(Validation, InverterChainHasNoInternalNodeBias) {
  // Inverters have no internal nodes: the extended and output-only
  // models coincide exactly, so the sharp claim covers the totals too.
  const Tech tech;
  Netlist nl(lib(), "chain");
  NetId prev = nl.add_net("a");
  nl.mark_primary_input(prev);
  for (int i = 0; i < 4; ++i) {
    const NetId next = nl.add_net("n" + std::to_string(i));
    nl.add_gate("u" + std::to_string(i), "inv", {prev}, next);
    prev = next;
  }
  nl.mark_primary_output(prev);

  const ValidationReport report = validate_power_model(
      nl, assorted_stats(nl, 13), tech, default_options(13));
  expect_report_agrees(report, "chain");
  EXPECT_EQ(report.replications, 16u);
  for (const GateValidation& row : report.gates) {
    EXPECT_DOUBLE_EQ(row.model_total_power, row.model_output_power);
    EXPECT_DOUBLE_EQ(row.sim_total_power.mean, row.sim_output_power.mean);
  }
}

TEST(Validation, ReconvergentGlitcherIsFlaggedAsDisagreement) {
  // Negative control: out = nand2(a, delayed(!a)) is logically constant.
  // The gate-level model is reconvergence-blind (it treats a and !a as
  // independent), so it predicts a finite output density; the zero-delay
  // simulator, which sees the truth, commits no output transition at
  // all. The differential machinery must flag the gap, not paper over
  // it. With real delays the same gate burns glitch power instead —
  // transitions the model cannot see either (paper Sec. 1).
  const Tech tech;
  Netlist nl(lib(), "glitcher");
  const NetId a = nl.add_net("a");
  nl.mark_primary_input(a);
  NetId prev = a;
  for (int i = 0; i < 3; ++i) {
    const NetId next = nl.add_net("n" + std::to_string(i));
    nl.add_gate("u" + std::to_string(i), "inv", {prev}, next);
    prev = next;
  }
  const NetId y = nl.add_net("y");
  nl.add_gate("g", "nand2", {a, prev}, y);
  nl.mark_primary_output(y);
  const std::map<NetId, SignalStats> stats{{a, SignalStats{0.5, 2e5}}};

  const ValidationReport glitch_free =
      validate_power_model(nl, stats, tech, default_options(17));
  ASSERT_FALSE(glitch_free.truncated);
  const GateValidation& row = glitch_free.gates.back();
  EXPECT_EQ(row.cell, "nand2");
  EXPECT_EQ(row.sim_output_power.mean, 0.0);  // constant output, no glitches
  EXPECT_GT(row.model_output_power, 0.0);     // blind to a/!a correlation
  EXPECT_FALSE(row.output_within_ci);
  EXPECT_FALSE(glitch_free.all_within_tolerance());

  ValidationOptions delayed = default_options(17);
  delayed.mc.sim.use_gate_delays = true;
  const ValidationReport glitchy =
      validate_power_model(nl, stats, tech, delayed);
  ASSERT_FALSE(glitchy.truncated);
  // Every committed transition of the constant output is a glitch.
  EXPECT_GT(glitchy.gates.back().sim_output_power.mean, 0.0);
}

TEST(Validation, TruncatedOracleFailsLoudly) {
  // The satellite contract: a replication that hits max_events must
  // poison the report — agreement claims over partial windows are void.
  const Tech tech;
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 2);
  ValidationOptions options = default_options(23);
  options.mc.replications = 4;
  options.mc.sim.max_events = 40;
  const ValidationReport report =
      validate_power_model(nl, assorted_stats(nl, 23), tech, options);
  EXPECT_TRUE(report.truncated);
  EXPECT_FALSE(report.all_within_tolerance());
}

TEST(Validation, ValidatesOptions) {
  const Tech tech;
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 1);
  ValidationOptions options = default_options(1);
  options.rel_slack = -0.1;
  EXPECT_THROW(
      validate_power_model(nl, assorted_stats(nl, 1), tech, options), Error);
}

}  // namespace
}  // namespace tr::power
