// Tests for the paper's optimization algorithm (Fig. 3): model-power
// improvement, best/worst bracketing, idempotence, monotonicity and the
// interaction with the switch-level simulator.

#include <gtest/gtest.h>

#include "benchgen/generators.hpp"
#include "celllib/library.hpp"
#include "opt/optimizer.hpp"
#include "opt/scenario.hpp"
#include "power/circuit_power.hpp"
#include "sim/switch_sim.hpp"
#include "util/error.hpp"

namespace tr::opt {
namespace {

using boolfn::SignalStats;
using celllib::CellLibrary;
using celllib::Tech;
using netlist::NetId;
using netlist::Netlist;

CellLibrary& lib() {
  static CellLibrary instance = CellLibrary::standard();
  return instance;
}

std::map<NetId, SignalStats> uniform_stats(const Netlist& nl, double p,
                                           double d) {
  std::map<NetId, SignalStats> stats;
  for (NetId id : nl.primary_inputs()) stats[id] = {p, d};
  return stats;
}

TEST(Optimizer, ReducesModelPowerOnCarryChain) {
  Netlist nl = benchgen::ripple_carry_adder(lib(), 8);
  const Tech tech;
  const auto stats = uniform_stats(nl, 0.5, 2e5);
  const OptimizeReport report = optimize(nl, stats, tech);
  EXPECT_LT(report.model_power_after, report.model_power_before);
  EXPECT_GT(report.gates_changed, 0);
  // The report totals must agree with an independent circuit evaluation.
  const auto activity = power::propagate_activity(nl, stats);
  const auto cp = power::circuit_power(nl, activity, tech);
  EXPECT_NEAR(cp.gate_power, report.model_power_after,
              1e-9 * report.model_power_after);
}

TEST(Optimizer, DecisionsBracketChosenPower) {
  Netlist nl = benchgen::ripple_carry_adder(lib(), 4);
  const Tech tech;
  const OptimizeReport report = optimize(nl, uniform_stats(nl, 0.5, 1e5), tech);
  for (const GateDecision& d : report.decisions) {
    EXPECT_LE(d.best_power, d.chosen_power + 1e-18);
    EXPECT_GE(d.worst_power, d.chosen_power - 1e-18);
    EXPECT_LE(d.best_power, d.original_power + 1e-18);
    EXPECT_GE(d.worst_power, d.original_power - 1e-18);
    // Minimisation: chosen == best.
    EXPECT_NEAR(d.chosen_power, d.best_power, 1e-18);
    EXPECT_GT(d.config_count, 0);
  }
}

TEST(Optimizer, IsIdempotent) {
  Netlist nl = benchgen::ripple_carry_adder(lib(), 6);
  const Tech tech;
  const auto stats = uniform_stats(nl, 0.5, 3e5);
  const OptimizeReport first = optimize(nl, stats, tech);
  const OptimizeReport second = optimize(nl, stats, tech);
  EXPECT_EQ(second.gates_changed, 0);
  EXPECT_NEAR(second.model_power_after, first.model_power_after,
              1e-12 * first.model_power_after);
}

TEST(Optimizer, MaximizeBuildsTheWorstNetlist) {
  const Tech tech;
  Netlist best = benchgen::ripple_carry_adder(lib(), 6);
  Netlist worst = benchgen::ripple_carry_adder(lib(), 6);
  const auto stats = uniform_stats(best, 0.5, 3e5);

  OptimizeOptions minimize;
  const OptimizeReport rb = optimize(best, stats, tech, minimize);
  OptimizeOptions maximize;
  maximize.objective = Objective::maximize_power;
  const OptimizeReport rw = optimize(worst, stats, tech, maximize);

  EXPECT_GT(rw.model_power_after, rb.model_power_after);
  // Per-gate: worst >= best everywhere.
  for (std::size_t g = 0; g < rb.decisions.size(); ++g) {
    EXPECT_GE(rw.decisions[g].chosen_power,
              rb.decisions[g].chosen_power - 1e-18);
  }
}

TEST(Optimizer, PreservesLogicFunction) {
  Netlist nl = benchgen::ripple_carry_adder(lib(), 4);
  Netlist reference = benchgen::ripple_carry_adder(lib(), 4);
  const Tech tech;
  optimize(nl, uniform_stats(nl, 0.5, 5e5), tech);
  const std::size_t n = nl.primary_inputs().size();
  for (std::uint64_t m = 0; m < (1ULL << n); ++m) {
    std::vector<bool> in;
    for (std::size_t j = 0; j < n; ++j) in.push_back((m >> j) & 1ULL);
    EXPECT_EQ(nl.evaluate(in), reference.evaluate(in)) << "vector " << m;
  }
}

TEST(Optimizer, MonotonicProperty) {
  // Sec. 4.2: reordering one gate never changes any net's statistics, so
  // the sum of independently minimised gates is the circuit minimum.
  // Check: net statistics before and after optimization are identical.
  Netlist nl = benchgen::ripple_carry_adder(lib(), 5);
  const Tech tech;
  const auto stats = uniform_stats(nl, 0.5, 2e5);
  const auto before = power::propagate_activity(nl, stats);
  optimize(nl, stats, tech);
  const auto after = power::propagate_activity(nl, stats);
  ASSERT_EQ(before.net_stats.size(), after.net_stats.size());
  for (std::size_t i = 0; i < before.net_stats.size(); ++i) {
    EXPECT_DOUBLE_EQ(before.net_stats[i].prob, after.net_stats[i].prob);
    EXPECT_DOUBLE_EQ(before.net_stats[i].density, after.net_stats[i].density);
  }
}

TEST(Optimizer, ScoreConfigurationsExposesTheSpread) {
  const Tech tech;
  const auto& cell = lib().cell("oai21");
  const std::vector<SignalStats> inputs{{0.5, 1e4}, {0.5, 1e5}, {0.5, 1e6}};
  const auto scored =
      score_configurations(cell.topology(), inputs, 10e-15, tech);
  ASSERT_EQ(scored.size(), 4u);
  // First entry is the canonical configuration.
  EXPECT_EQ(scored.front().first.canonical_key(),
            cell.topology().canonical_key());
  double lo = scored[0].second, hi = scored[0].second;
  for (const auto& [config, p] : scored) {
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  EXPECT_GT(hi, lo);
}

TEST(Optimizer, OutputOnlyModelChoosesDifferently) {
  // The ablation: optimizing with the output-only model must yield a
  // higher extended-model power than optimizing with the extended model
  // itself (it cannot see internal nodes).
  const Tech tech;
  Netlist full = benchgen::ripple_carry_adder(lib(), 8);
  Netlist ablated = benchgen::ripple_carry_adder(lib(), 8);
  const auto stats = uniform_stats(full, 0.5, 3e5);

  optimize(full, stats, tech);
  OptimizeOptions ablation;
  ablation.model = power::ModelKind::output_only;
  optimize(ablated, stats, tech, ablation);

  const auto activity = power::propagate_activity(full, stats);
  const double p_full =
      power::circuit_power(full, activity, tech).gate_power;
  const double p_ablated =
      power::circuit_power(ablated, activity, tech).gate_power;
  EXPECT_LE(p_full, p_ablated + 1e-18);
}

TEST(Optimizer, BestBeatsWorstInSwitchLevelSimulation) {
  // The paper's end-to-end claim (Table 3 column S): the model-best
  // netlist consumes less simulated power than the model-worst one.
  const Tech tech;
  Netlist best = benchgen::ripple_carry_adder(lib(), 8);
  Netlist worst = benchgen::ripple_carry_adder(lib(), 8);
  const auto stats = uniform_stats(best, 0.5, 4e5);

  optimize(best, stats, tech);
  OptimizeOptions maximize;
  maximize.objective = Objective::maximize_power;
  optimize(worst, stats, tech, maximize);

  sim::SimOptions so;
  so.seed = 31;
  so.measure_time = 2e-3;
  const sim::SimResult sim_best = sim::simulate(best, stats, tech, so);
  const sim::SimResult sim_worst = sim::simulate(worst, stats, tech, so);
  ASSERT_FALSE(sim_best.truncated);
  ASSERT_FALSE(sim_worst.truncated);
  EXPECT_LT(sim_best.energy, sim_worst.energy);
}

TEST(Optimizer, MissingPiStatsRejected) {
  Netlist nl = benchgen::ripple_carry_adder(lib(), 2);
  const Tech tech;
  EXPECT_THROW(optimize(nl, {}, tech), Error);
}

TEST(Scenario, ScenarioARangesAndDeterminism) {
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 4);
  const auto s1 = scenario_a(nl, 42);
  const auto s2 = scenario_a(nl, 42);
  const auto s3 = scenario_a(nl, 43);
  ASSERT_EQ(s1.size(), nl.primary_inputs().size());
  bool any_difference = false;
  for (const auto& [net, stats] : s1) {
    EXPECT_GE(stats.prob, 0.0);
    EXPECT_LE(stats.prob, 1.0);
    EXPECT_GE(stats.density, 0.0);
    EXPECT_LE(stats.density, 1e6);
    EXPECT_DOUBLE_EQ(stats.prob, s2.at(net).prob);
    EXPECT_DOUBLE_EQ(stats.density, s2.at(net).density);
    any_difference = any_difference ||
                     stats.density != s3.at(net).density;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Scenario, ScenarioBIsLatchedHalfActivity) {
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 4);
  const auto s = scenario_b(nl, 2e6);
  for (const auto& [net, stats] : s) {
    EXPECT_DOUBLE_EQ(stats.prob, 0.5);
    EXPECT_DOUBLE_EQ(stats.density, 1e6);  // 0.5 transitions per cycle
  }
}

}  // namespace
}  // namespace tr::opt
