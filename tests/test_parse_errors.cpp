// Malformed-input corpus for the BLIF and Verilog readers (ISSUE 7,
// satellite b): every diagnostic is pinned against its exact
// "file:line: message" rendering, so error messages are part of the
// compatibility surface — a reader refactor that shifts a line number
// or rewords a message fails here, not in a user's log-scraping script.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "celllib/library.hpp"
#include "netlist/blif.hpp"
#include "netlist/verilog.hpp"
#include "util/error.hpp"

namespace tr::netlist {
namespace {

using celllib::CellLibrary;

CellLibrary& lib() {
  static CellLibrary instance = CellLibrary::standard();
  return instance;
}

/// Runs `fn` and requires it to throw ParseError whose what() is
/// exactly `expected` (the "file:line: message" contract).
template <typename Fn>
void expect_parse_error(Fn&& fn, const std::string& expected) {
  try {
    fn();
    FAIL() << "expected ParseError: " << expected;
  } catch (const ParseError& e) {
    EXPECT_EQ(ErrorCode::parse, e.code());
    EXPECT_STREQ(expected.c_str(), e.what());
  }
}

// ---------------------------------------------------------------------------
// Generic BLIF (.names dialect)

TEST(ParseErrorsBlif, NamesNeedsOutputSignal) {
  const std::string text =
      ".model m\n"
      ".inputs a\n"
      ".outputs f\n"
      ".names\n";
  expect_parse_error([&] { read_blif_logic_string(text, "t.blif"); },
                     "t.blif:4: .names needs at least an output signal");
}

TEST(ParseErrorsBlif, TooManyFanins) {
  std::string header = ".names";
  std::string inputs = ".inputs";
  for (char c = 'a'; c <= 'u'; ++c) {  // 21 fanins > TruthTable::max_vars
    header += std::string(" ") + c;
    inputs += std::string(" ") + c;
  }
  header += " f\n";
  const std::string text =
      ".model m\n" + inputs + "\n.outputs f\n" + header;
  expect_parse_error([&] { read_blif_logic_string(text, "t.blif"); },
                     "t.blif:4: .names node 'f' has too many fanins");
}

TEST(ParseErrorsBlif, ConstantRowMustBeSingleBit) {
  const std::string text =
      ".model m\n"
      ".outputs f\n"
      ".names f\n"
      "11\n";
  expect_parse_error([&] { read_blif_logic_string(text, "t.blif"); },
                     "t.blif:4: constant .names row must be a single bit");
}

TEST(ParseErrorsBlif, RowShape) {
  const std::string text =
      ".model m\n"
      ".inputs a b\n"
      ".outputs f\n"
      ".names a b f\n"
      "1 1 1\n";
  expect_parse_error([&] { read_blif_logic_string(text, "t.blif"); },
                     "t.blif:5: .names row must be '<cube> <value>'");
}

TEST(ParseErrorsBlif, CubeWidthMismatch) {
  const std::string text =
      ".model m\n"
      ".inputs a b\n"
      ".outputs f\n"
      ".names a b f\n"
      "1 1\n";
  expect_parse_error([&] { read_blif_logic_string(text, "t.blif"); },
                     "t.blif:5: cube width does not match fanin count");
}

TEST(ParseErrorsBlif, OutputValueSingleBit) {
  const std::string text =
      ".model m\n"
      ".inputs a b\n"
      ".outputs f\n"
      ".names a b f\n"
      "11 10\n";
  expect_parse_error([&] { read_blif_logic_string(text, "t.blif"); },
                     "t.blif:5: output value must be a single bit");
}

TEST(ParseErrorsBlif, OutputValueZeroOrOne) {
  const std::string text =
      ".model m\n"
      ".inputs a b\n"
      ".outputs f\n"
      ".names a b f\n"
      "11 x\n";
  expect_parse_error([&] { read_blif_logic_string(text, "t.blif"); },
                     "t.blif:5: output value must be 0 or 1");
}

TEST(ParseErrorsBlif, MixedOutputPhases) {
  const std::string text =
      ".model m\n"
      ".inputs a b\n"
      ".outputs f\n"
      ".names a b f\n"
      "11 1\n"
      "00 0\n";
  expect_parse_error([&] { read_blif_logic_string(text, "t.blif"); },
                     "t.blif:6: mixed output phases in one .names block");
}

TEST(ParseErrorsBlif, SequentialRejected) {
  const std::string text =
      ".model m\n"
      ".inputs a\n"
      ".outputs f\n"
      ".latch a f re clk 0\n";
  expect_parse_error(
      [&] { read_blif_logic_string(text, "t.blif"); },
      "t.blif:4: sequential BLIF is not supported (combinational flow only)");
}

TEST(ParseErrorsBlif, GateInLogicDialect) {
  const std::string text =
      ".model m\n"
      ".inputs a b\n"
      ".outputs f\n"
      ".gate nand2 a=a b=b y=f\n";
  expect_parse_error(
      [&] { read_blif_logic_string(text, "t.blif"); },
      "t.blif:4: mapped BLIF: use read_blif_mapped for .gate models");
}

TEST(ParseErrorsBlif, ContinuationKeepsFirstLineNumber) {
  // A '\'-folded .names header spans lines 4-5; its diagnostics must
  // point at the first physical line of the logical line.
  const std::string text =
      ".model m\n"
      ".inputs a\n"
      ".outputs f\n"
      ".names \\\n"
      "\n";
  expect_parse_error([&] { read_blif_logic_string(text, "t.blif"); },
                     "t.blif:4: .names needs at least an output signal");
}

TEST(ParseErrorsBlif, UnopenableFile) {
  try {
    read_blif_logic_file("/nonexistent/no-such-dir/x.blif");
    FAIL() << "expected tr::Error";
  } catch (const Error& e) {
    EXPECT_EQ(ErrorCode::invalid_argument, e.code());
    EXPECT_STREQ("cannot open BLIF file '/nonexistent/no-such-dir/x.blif'",
                 e.what());
  }
}

// ---------------------------------------------------------------------------
// Mapped BLIF (.gate dialect)

TEST(ParseErrorsBlifMapped, GateNeedsCellAndBindings) {
  const std::string text =
      ".model m\n"
      ".inputs a\n"
      ".outputs f\n"
      ".gate inv\n";
  expect_parse_error(
      [&] { read_blif_mapped_string(text, lib(), "t.blif"); },
      "t.blif:4: .gate needs a cell name and pin bindings");
}

TEST(ParseErrorsBlifMapped, UnknownCell) {
  const std::string text =
      ".model m\n"
      ".inputs a\n"
      ".outputs f\n"
      ".gate xor9 a=a y=f\n";
  expect_parse_error([&] { read_blif_mapped_string(text, lib(), "t.blif"); },
                     "t.blif:4: unknown cell 'xor9'");
}

TEST(ParseErrorsBlifMapped, MalformedPinBinding) {
  const std::string text =
      ".model m\n"
      ".inputs a\n"
      ".outputs f\n"
      ".gate inv a y=f\n";
  expect_parse_error(
      [&] { read_blif_mapped_string(text, lib(), "t.blif"); },
      "t.blif:4: pin binding 'a' is not of the form pin=net");
}

TEST(ParseErrorsBlifMapped, UnknownPin) {
  const std::string text =
      ".model m\n"
      ".inputs a b\n"
      ".outputs f\n"
      ".gate nand2 a=a c=b y=f\n";
  expect_parse_error([&] { read_blif_mapped_string(text, lib(), "t.blif"); },
                     "t.blif:4: cell 'nand2' has no pin 'c'");
}

TEST(ParseErrorsBlifMapped, MissingOutputBinding) {
  const std::string text =
      ".model m\n"
      ".inputs a b\n"
      ".outputs f\n"
      ".gate nand2 a=a b=b\n";
  expect_parse_error([&] { read_blif_mapped_string(text, lib(), "t.blif"); },
                     "t.blif:4: missing output binding y=<net>");
}

TEST(ParseErrorsBlifMapped, MissingInputBinding) {
  const std::string text =
      ".model m\n"
      ".inputs a\n"
      ".outputs f\n"
      ".gate nand2 a=a y=f\n";
  expect_parse_error([&] { read_blif_mapped_string(text, lib(), "t.blif"); },
                     "t.blif:4: missing binding for pin 'b'");
}

TEST(ParseErrorsBlifMapped, UndrivenPrimaryOutput) {
  // A semantic (post-parse) failure: plain tr::Error, source-prefixed
  // but without a line number.
  const std::string text =
      ".model m\n"
      ".inputs a\n"
      ".outputs f\n"
      ".gate inv a=a y=g\n";
  try {
    read_blif_mapped_string(text, lib(), "t.blif");
    FAIL() << "expected tr::Error";
  } catch (const Error& e) {
    EXPECT_EQ(ErrorCode::invalid_argument, e.code());
    EXPECT_STREQ("t.blif: primary output 'f' is undriven", e.what());
  }
}

// ---------------------------------------------------------------------------
// Structural Verilog

Netlist parse_verilog(const std::string& text) {
  std::istringstream in(text);
  return read_verilog(lib(), in, "t.v");
}

TEST(ParseErrorsVerilog, ValidSkeletonParses) {
  // The corpus below mutates this skeleton; it must itself be valid.
  const Netlist nl = parse_verilog(
      "module m (a, b, f);\n"
      "  input a;\n"
      "  input b;\n"
      "  output f;\n"
      "  nand2 g (.a(a), .b(b), .y(f));\n"
      "endmodule\n");
  EXPECT_EQ(nl.gate_count(), 1);
}

TEST(ParseErrorsVerilog, WrongLeadingKeyword) {
  expect_parse_error([&] { parse_verilog("modul m ();\n"); },
                     "t.v:1: expected 'module', got 'modul'");
}

TEST(ParseErrorsVerilog, TruncatedInput) {
  expect_parse_error([&] { parse_verilog("module m\n"); },
                     "t.v:1: expected '(', got end of input");
}

TEST(ParseErrorsVerilog, UnexpectedCharacter) {
  expect_parse_error([&] { parse_verilog("module m @ ();\n"); },
                     "t.v:1: unexpected character '@'");
}

TEST(ParseErrorsVerilog, UnterminatedBlockComment) {
  expect_parse_error(
      [&] { parse_verilog("module m ();\n/* never closed\n"); },
      "t.v:2: unterminated /* comment");
}

TEST(ParseErrorsVerilog, NetDeclaredTwice) {
  expect_parse_error([&] {
    parse_verilog(
        "module m (a, f);\n"
        "  input a;\n"
        "  input a;\n"
        "  output f;\n"
        "endmodule\n");
  }, "t.v:3: net 'a' declared twice");
}

TEST(ParseErrorsVerilog, PortWithoutDeclaration) {
  try {
    parse_verilog(
        "module m (a, f);\n"
        "  output f;\n"
        "endmodule\n");
    FAIL() << "expected tr::Error";
  } catch (const Error& e) {
    EXPECT_EQ(ErrorCode::invalid_argument, e.code());
    EXPECT_STREQ("t.v: port 'a' has no input/output declaration", e.what());
  }
}

TEST(ParseErrorsVerilog, UnknownCell) {
  expect_parse_error([&] {
    parse_verilog(
        "module m (a, f);\n"
        "  input a;\n"
        "  output f;\n"
        "  xor9 g (.a(a), .y(f));\n"
        "endmodule\n");
  }, "t.v:4: unknown cell 'xor9'");
}

TEST(ParseErrorsVerilog, UndeclaredNet) {
  expect_parse_error([&] {
    parse_verilog(
        "module m (a, f);\n"
        "  input a;\n"
        "  output f;\n"
        "  inv g (.a(x), .y(f));\n"
        "endmodule\n");
  }, "t.v:4: undeclared net 'x'");
}

TEST(ParseErrorsVerilog, OutputPinConnectedTwice) {
  expect_parse_error([&] {
    parse_verilog(
        "module m (a, f);\n"
        "  input a;\n"
        "  output f;\n"
        "  inv g (.y(f), .a(a), .y(f));\n"
        "endmodule\n");
  }, "t.v:4: pin 'y' connected twice");
}

TEST(ParseErrorsVerilog, InputPinConnectedTwice) {
  expect_parse_error([&] {
    parse_verilog(
        "module m (a, b, f);\n"
        "  input a;\n"
        "  input b;\n"
        "  output f;\n"
        "  nand2 g (.a(a), .a(b), .y(f));\n"
        "endmodule\n");
  }, "t.v:5: pin 'a' connected twice");
}

TEST(ParseErrorsVerilog, UnknownPin) {
  expect_parse_error([&] {
    parse_verilog(
        "module m (a, b, f);\n"
        "  input a;\n"
        "  input b;\n"
        "  output f;\n"
        "  nand2 g (.a(a), .q(b), .y(f));\n"
        "endmodule\n");
  }, "t.v:5: cell 'nand2' has no pin 'q'");
}

TEST(ParseErrorsVerilog, MissingOutputConnection) {
  expect_parse_error([&] {
    parse_verilog(
        "module m (a, f);\n"
        "  input a;\n"
        "  output f;\n"
        "  wire w;\n"
        "  inv g (.a(a));\n"
        "endmodule\n");
  }, "t.v:5: instance 'g' has no .y() output");
}

TEST(ParseErrorsVerilog, UnconnectedInputPin) {
  expect_parse_error([&] {
    parse_verilog(
        "module m (a, f);\n"
        "  input a;\n"
        "  output f;\n"
        "  nand2 g (.a(a), .y(f));\n"
        "endmodule\n");
  }, "t.v:4: instance 'g' leaves pin 'b' unconnected");
}

TEST(ParseErrorsVerilog, TrailingTokens) {
  expect_parse_error([&] {
    parse_verilog(
        "module m (a, f);\n"
        "  input a;\n"
        "  output f;\n"
        "  inv g (.a(a), .y(f));\n"
        "endmodule\n"
        "junk\n");
  }, "t.v:6: unexpected trailing token 'junk'");
}

}  // namespace
}  // namespace tr::netlist
