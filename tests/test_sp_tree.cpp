// Tests for series-parallel network trees: structure, duality,
// conduction functions, encodings and ordering counts.

#include <gtest/gtest.h>

#include <set>

#include "gategraph/sp_tree.hpp"
#include "util/error.hpp"

namespace tr::gategraph {
namespace {

using boolfn::TruthTable;

SpNode T(int i) { return SpNode::transistor(i); }
SpNode S(std::vector<SpNode> c) { return SpNode::series(std::move(c)); }
SpNode P(std::vector<SpNode> c) { return SpNode::parallel(std::move(c)); }

TEST(SpTree, CompositeFlattening) {
  // series(series(a,b),c) flattens to series(a,b,c).
  const SpNode nested = S({S({T(0), T(1)}), T(2)});
  ASSERT_EQ(nested.children.size(), 3u);
  EXPECT_EQ(nested.children[0].input, 0);
  EXPECT_EQ(nested.children[2].input, 2);
  // Mixed kinds do not flatten.
  const SpNode mixed = S({P({T(0), T(1)}), T(2)});
  EXPECT_EQ(mixed.children.size(), 2u);
}

TEST(SpTree, CountsAndInputs) {
  const SpNode g = P({S({T(0), T(1)}), T(2)});  // aoi21 pulldown
  EXPECT_EQ(transistor_count(g), 3);
  EXPECT_EQ(internal_node_count(g), 1);  // one gap in the series pair
  EXPECT_EQ(max_input_plus_one(g), 3);
  const SpNode chain = S({T(0), T(1), T(2), T(3)});
  EXPECT_EQ(internal_node_count(chain), 3);
}

TEST(SpTree, CompositeNeedsTwoChildren) {
  EXPECT_THROW(S({T(0)}), Error);
  EXPECT_THROW(SpNode::transistor(-1), Error);
}

TEST(SpTree, DualSwapsSeriesParallel) {
  const SpNode g = S({P({T(0), T(1)}), T(2)});
  const SpNode d = dual(g);
  EXPECT_EQ(d.kind, SpNode::Kind::parallel);
  ASSERT_EQ(d.children.size(), 2u);
  EXPECT_EQ(d.children[0].kind, SpNode::Kind::series);
  EXPECT_TRUE(d.children[1].is_leaf());
  // Involution.
  EXPECT_EQ(dual(d), g);
}

TEST(SpTree, ConductionFunctionNmos) {
  // series(parallel(a,b), c) conducts iff (a|b) & c.
  const SpNode g = S({P({T(0), T(1)}), T(2)});
  const TruthTable expected = (TruthTable::variable(3, 0) |
                               TruthTable::variable(3, 1)) &
                              TruthTable::variable(3, 2);
  EXPECT_EQ(conduction_function(g, DeviceType::nmos, 3), expected);
}

TEST(SpTree, ConductionFunctionPmosUsesNegativeLiterals) {
  const SpNode g = S({T(0), T(1)});
  const TruthTable expected =
      ~TruthTable::variable(2, 0) & ~TruthTable::variable(2, 1);
  EXPECT_EQ(conduction_function(g, DeviceType::pmos, 2), expected);
}

TEST(SpTree, DualOfPulldownIsComplementaryPullup) {
  // For every SP network: conduction of the dual with P devices equals
  // the complement of the N conduction (De Morgan).
  const std::vector<SpNode> shapes = {
      T(0),
      S({T(0), T(1), T(2)}),
      P({T(0), T(1)}),
      S({P({T(0), T(1)}), T(2)}),
      P({S({T(0), T(1)}), S({T(2), T(3)}), T(4)}),
      S({P({T(0), T(1), T(2)}), P({T(3), T(4)})}),
  };
  for (const SpNode& shape : shapes) {
    const int n = max_input_plus_one(shape);
    EXPECT_EQ(conduction_function(dual(shape), DeviceType::pmos, n),
              ~conduction_function(shape, DeviceType::nmos, n));
  }
}

TEST(SpTree, EncodeCanonicalisesParallelOnly) {
  // Series order is significant.
  EXPECT_NE(encode(S({T(0), T(1)})), encode(S({T(1), T(0)})));
  // Parallel order is not.
  EXPECT_EQ(encode(P({T(0), T(1)})), encode(P({T(1), T(0)})));
  EXPECT_EQ(encode(S({P({T(2), T(1)}), T(0)})),
            encode(S({P({T(1), T(2)}), T(0)})));
}

TEST(SpTree, EncodeAnonymizedIdentifiesLayoutInstances) {
  // Same shape, permuted inputs -> same instance key.
  EXPECT_EQ(encode_anonymized(S({P({T(0), T(1)}), T(2)})),
            encode_anonymized(S({P({T(2), T(0)}), T(1)})));
  // Different shapes -> different keys (singleton near rail vs output).
  EXPECT_NE(encode_anonymized(S({P({T(0), T(1)}), T(2)})),
            encode_anonymized(S({T(2), P({T(0), T(1)})})));
}

TEST(SpTree, OrderingCountClosedForms) {
  EXPECT_EQ(ordering_count(T(0)), 1u);
  EXPECT_EQ(ordering_count(S({T(0), T(1)})), 2u);
  EXPECT_EQ(ordering_count(S({T(0), T(1), T(2)})), 6u);
  EXPECT_EQ(ordering_count(S({T(0), T(1), T(2), T(3)})), 24u);
  EXPECT_EQ(ordering_count(P({T(0), T(1), T(2)})), 1u);
  // aoi22 pulldown: parallel of two series pairs: 2*2 = 4.
  EXPECT_EQ(ordering_count(P({S({T(0), T(1)}), S({T(2), T(3)})})), 4u);
  // oai221 pulldown: series(p2, p2, t): 3! = 6.
  EXPECT_EQ(ordering_count(S({P({T(0), T(1)}), P({T(2), T(3)}), T(4)})), 6u);
}

TEST(SpTree, BruteEnumerationIsDistinctAndComplete) {
  const std::vector<SpNode> shapes = {
      S({T(0), T(1), T(2)}),
      P({S({T(0), T(1)}), S({T(2), T(3)})}),
      S({P({T(0), T(1)}), T(2), T(3)}),
  };
  for (const SpNode& shape : shapes) {
    const auto all = enumerate_orderings_brute(shape);
    EXPECT_EQ(all.size(), ordering_count(shape));
    std::set<std::string> keys;
    for (const SpNode& config : all) {
      EXPECT_TRUE(keys.insert(encode(config)).second) << "duplicate ordering";
      // Reordering never changes the conduction function.
      EXPECT_EQ(conduction_function(config, DeviceType::nmos,
                                    max_input_plus_one(shape)),
                conduction_function(shape, DeviceType::nmos,
                                    max_input_plus_one(shape)));
    }
  }
}

}  // namespace
}  // namespace tr::gategraph
