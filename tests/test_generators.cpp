// Tests for the benchmark circuit generators: functional correctness of
// the structured circuits and structural sanity of the random generator.

#include <gtest/gtest.h>

#include "benchgen/generators.hpp"
#include "celllib/library.hpp"
#include "util/error.hpp"

namespace tr::benchgen {
namespace {

using celllib::CellLibrary;
using netlist::NetId;
using netlist::Netlist;

CellLibrary& lib() {
  static CellLibrary instance = CellLibrary::standard();
  return instance;
}

TEST(RippleCarryAdder, ComputesAdditionExhaustively) {
  const int bits = 4;
  const Netlist nl = ripple_carry_adder(lib(), bits);
  // PI order: a0,b0,a1,b1,...,cin (as created). Map by name instead.
  const auto pis = nl.primary_inputs();
  const auto pos = nl.primary_outputs();
  ASSERT_EQ(pis.size(), 2u * bits + 1u);
  ASSERT_EQ(pos.size(), static_cast<std::size_t>(bits) + 1u);

  for (unsigned a = 0; a < 16; ++a) {
    for (unsigned b = 0; b < 16; ++b) {
      for (unsigned cin = 0; cin <= 1; ++cin) {
        std::vector<bool> in(pis.size());
        for (std::size_t i = 0; i < pis.size(); ++i) {
          const std::string& name = nl.net(pis[i]).name;
          if (name == "cin") {
            in[i] = cin;
          } else if (name[0] == 'a') {
            in[i] = (a >> (name[1] - '0')) & 1u;
          } else {
            in[i] = (b >> (name[1] - '0')) & 1u;
          }
        }
        const auto out = nl.evaluate(in);
        unsigned sum = 0;
        for (std::size_t i = 0; i < pos.size(); ++i) {
          const std::string& name = nl.net(pos[i]).name;
          if (name[0] == 's') {
            sum |= static_cast<unsigned>(out[i]) << (name[1] - '0');
          } else {
            sum |= static_cast<unsigned>(out[i]) << bits;  // carry out
          }
        }
        EXPECT_EQ(sum, a + b + cin) << "a=" << a << " b=" << b;
      }
    }
  }
}

TEST(RippleCarryAdder, GateCountIsSixPerBit) {
  for (int bits : {1, 4, 16}) {
    EXPECT_EQ(ripple_carry_adder(lib(), bits).gate_count(), 6 * bits);
  }
  EXPECT_THROW(ripple_carry_adder(lib(), 0), Error);
}

TEST(ParityTree, ComputesXorOfAllInputs) {
  for (int n : {2, 3, 5, 8}) {
    const Netlist nl = parity_tree(lib(), n);
    const auto pis = nl.primary_inputs();
    ASSERT_EQ(pis.size(), static_cast<std::size_t>(n));
    for (std::uint64_t m = 0; m < (1ULL << n); ++m) {
      std::vector<bool> in;
      bool expected = false;
      for (int j = 0; j < n; ++j) {
        const bool bit = (m >> j) & 1ULL;
        in.push_back(bit);
        expected ^= bit;
      }
      const auto out = nl.evaluate(in);
      ASSERT_EQ(out.size(), 1u);
      EXPECT_EQ(out[0], expected) << "n=" << n << " m=" << m;
    }
  }
}

TEST(MuxTree, SelectsTheAddressedInput) {
  const int select_bits = 3;
  const Netlist nl = mux_tree(lib(), select_bits);
  const auto pis = nl.primary_inputs();
  // 8 data + 3 select inputs.
  ASSERT_EQ(pis.size(), 11u);
  for (unsigned address = 0; address < 8; ++address) {
    for (unsigned pattern : {0x5Au, 0xC3u, 0x01u}) {
      std::vector<bool> in(pis.size());
      for (std::size_t i = 0; i < pis.size(); ++i) {
        const std::string& name = nl.net(pis[i]).name;
        if (name[0] == 'd') {
          const unsigned idx = static_cast<unsigned>(std::stoi(name.substr(1)));
          in[i] = (pattern >> idx) & 1u;
        } else {  // selN
          const unsigned s = static_cast<unsigned>(std::stoi(name.substr(3)));
          in[i] = (address >> s) & 1u;
        }
      }
      const auto out = nl.evaluate(in);
      ASSERT_EQ(out.size(), 1u);
      EXPECT_EQ(out[0], static_cast<bool>((pattern >> address) & 1u))
          << "address=" << address;
    }
  }
}

TEST(RandomCircuit, MeetsSpecAndValidates) {
  RandomCircuitSpec spec;
  spec.target_gates = 150;
  spec.primary_inputs = 12;
  spec.seed = 7;
  const Netlist nl = random_circuit(lib(), spec);
  EXPECT_EQ(nl.gate_count(), 150);
  EXPECT_EQ(nl.primary_inputs().size(), 12u);
  EXPECT_FALSE(nl.primary_outputs().empty());
  EXPECT_NO_THROW(nl.validate());
}

TEST(RandomCircuit, DeterministicInSeed) {
  RandomCircuitSpec spec;
  spec.target_gates = 60;
  spec.primary_inputs = 8;
  spec.seed = 11;
  const Netlist a = random_circuit(lib(), spec);
  const Netlist b = random_circuit(lib(), spec);
  ASSERT_EQ(a.gate_count(), b.gate_count());
  for (netlist::GateId g = 0; g < a.gate_count(); ++g) {
    EXPECT_EQ(a.gate(g).cell, b.gate(g).cell);
    EXPECT_EQ(a.gate(g).inputs, b.gate(g).inputs);
  }
  spec.seed = 12;
  const Netlist c = random_circuit(lib(), spec);
  bool differs = c.gate_count() != a.gate_count();
  for (netlist::GateId g = 0; !differs && g < a.gate_count(); ++g) {
    differs = a.gate(g).cell != c.gate(g).cell ||
              a.gate(g).inputs != c.gate(g).inputs;
  }
  EXPECT_TRUE(differs);
}

TEST(RandomCircuit, UsesAMixOfCells) {
  RandomCircuitSpec spec;
  spec.target_gates = 400;
  spec.primary_inputs = 20;
  spec.seed = 3;
  const Netlist nl = random_circuit(lib(), spec);
  std::set<std::string> used;
  bool has_complex = false;
  for (const auto& g : nl.gates()) {
    used.insert(g.cell);
    has_complex = has_complex || g.cell.substr(0, 3) == "aoi" ||
                  g.cell.substr(0, 3) == "oai";
  }
  EXPECT_GE(used.size(), 8u);
  EXPECT_TRUE(has_complex);
}

TEST(RandomCircuit, HasRealLogicDepth) {
  RandomCircuitSpec spec;
  spec.target_gates = 200;
  spec.primary_inputs = 16;
  spec.seed = 5;
  const Netlist nl = random_circuit(lib(), spec);
  // Longest gate-count path from a PI.
  std::vector<int> depth(static_cast<std::size_t>(nl.net_count()), 0);
  int max_depth = 0;
  for (netlist::GateId g : nl.topological_order()) {
    int d = 0;
    for (NetId in : nl.gate(g).inputs) {
      d = std::max(d, depth[static_cast<std::size_t>(in)]);
    }
    depth[static_cast<std::size_t>(nl.gate(g).output)] = d + 1;
    max_depth = std::max(max_depth, d + 1);
  }
  EXPECT_GE(max_depth, 6);
}

TEST(RandomCircuit, RejectsBadSpecs) {
  RandomCircuitSpec spec;
  spec.target_gates = 0;
  EXPECT_THROW(random_circuit(lib(), spec), Error);
  spec.target_gates = 10;
  spec.primary_inputs = 1;
  EXPECT_THROW(random_circuit(lib(), spec), Error);
}

}  // namespace
}  // namespace tr::benchgen
