// Tests for the switch-level simulator: input-process statistics, model
// agreement in zero-delay mode, glitch generation with delays, energy
// accounting and determinism.

#include <gtest/gtest.h>

#include "benchgen/generators.hpp"
#include "celllib/library.hpp"
#include "power/circuit_power.hpp"
#include "sim/switch_sim.hpp"
#include "util/error.hpp"

namespace tr::sim {
namespace {

using boolfn::SignalStats;
using celllib::CellLibrary;
using celllib::Tech;
using netlist::NetId;
using netlist::Netlist;

CellLibrary& lib() {
  static CellLibrary instance = CellLibrary::standard();
  return instance;
}

Netlist inverter_chain(int length) {
  Netlist nl(lib(), "chain");
  NetId prev = nl.add_net("a");
  nl.mark_primary_input(prev);
  for (int i = 0; i < length; ++i) {
    const NetId next = nl.add_net("n" + std::to_string(i));
    nl.add_gate("u" + std::to_string(i), "inv", {prev}, next);
    prev = next;
  }
  nl.mark_primary_output(prev);
  return nl;
}

TEST(SwitchSim, InputProcessMatchesRequestedStatistics) {
  // The CTMC generator must realise the requested (P, D) pair.
  const Netlist nl = inverter_chain(1);
  const NetId a = nl.find_net("a");
  const Tech tech;
  SimOptions opt;
  opt.measure_time = 4e-3;
  opt.seed = 5;
  for (const auto& [p, d] :
       std::vector<std::pair<double, double>>{{0.5, 1e5}, {0.2, 4e5},
                                              {0.85, 5e4}}) {
    const SimResult r =
        simulate(nl, {{a, SignalStats{p, d}}}, tech, opt);
    EXPECT_NEAR(r.nets[static_cast<std::size_t>(a)].prob, p, 0.04)
        << "P=" << p;
    EXPECT_NEAR(r.nets[static_cast<std::size_t>(a)].density / d, 1.0, 0.08)
        << "D=" << d;
  }
}

TEST(SwitchSim, FrozenInputNeverToggles) {
  const Netlist nl = inverter_chain(1);
  const NetId a = nl.find_net("a");
  const Tech tech;
  SimOptions opt;
  opt.seed = 6;
  const SimResult r = simulate(nl, {{a, SignalStats{1.0, 0.0}}}, tech, opt);
  EXPECT_EQ(r.nets[static_cast<std::size_t>(a)].density, 0.0);
  EXPECT_NEAR(r.nets[static_cast<std::size_t>(a)].prob, 1.0, 1e-12);
  EXPECT_EQ(r.energy, 0.0);
}

TEST(SwitchSim, InverterChainPropagatesEveryTransition) {
  // A tree circuit has no reconvergence: in zero-delay mode every net of
  // the chain shows the input density.
  const Netlist nl = inverter_chain(4);
  const NetId a = nl.find_net("a");
  const Tech tech;
  SimOptions opt;
  opt.use_gate_delays = false;
  opt.measure_time = 2e-3;
  opt.seed = 7;
  const double d = 2e5;
  const SimResult r = simulate(nl, {{a, SignalStats{0.5, d}}}, tech, opt);
  for (int i = 0; i < 4; ++i) {
    const NetId net = nl.find_net("n" + std::to_string(i));
    EXPECT_NEAR(r.nets[static_cast<std::size_t>(net)].density /
                    r.nets[static_cast<std::size_t>(a)].density,
                1.0, 1e-9)
        << "stage " << i;
  }
}

TEST(SwitchSim, EnergyAccountingMatchesTransitionCounts) {
  // Chain of inverters: every output transition costs exactly
  // 1/2 C_out V^2; PI transitions cost 1/2 C_load V^2.
  const Netlist nl = inverter_chain(2);
  const NetId a = nl.find_net("a");
  const Tech tech;
  SimOptions opt;
  opt.use_gate_delays = false;
  opt.seed = 8;
  opt.measure_time = 1e-3;
  const SimResult r = simulate(nl, {{a, SignalStats{0.5, 1e5}}}, tech, opt);

  // Reconstruct energy from observed densities and the known caps.
  double expected = 0.0;
  const double t = opt.measure_time;
  const double pi_cap = tech.c_wire + lib().cell("inv").pin_capacitance(tech, 0);
  expected += tech.energy_per_transition(pi_cap) *
              r.nets[static_cast<std::size_t>(a)].density * t;
  for (netlist::GateId g = 0; g < nl.gate_count(); ++g) {
    const gategraph::GateGraph graph(nl.gate(g).config);
    const auto caps = celllib::node_capacitances(
        graph, tech, nl.external_load(g, tech));
    const NetId out = nl.gate(g).output;
    expected += tech.energy_per_transition(
                    caps[gategraph::GateGraph::output_node]) *
                r.nets[static_cast<std::size_t>(out)].density * t;
  }
  EXPECT_NEAR(r.energy / expected, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.internal_node_energy, 0.0);  // inverters have none
  EXPECT_NEAR(r.power * t, r.energy, 1e-18);
}

TEST(SwitchSim, DeterministicForFixedSeed) {
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 3);
  const Tech tech;
  std::map<NetId, SignalStats> stats;
  for (NetId id : nl.primary_inputs()) stats[id] = {0.5, 2e5};
  SimOptions opt;
  opt.seed = 99;
  opt.measure_time = 5e-4;
  const SimResult r1 = simulate(nl, stats, tech, opt);
  const SimResult r2 = simulate(nl, stats, tech, opt);
  EXPECT_EQ(r1.energy, r2.energy);
  EXPECT_EQ(r1.event_count, r2.event_count);
  opt.seed = 100;
  const SimResult r3 = simulate(nl, stats, tech, opt);
  EXPECT_NE(r1.energy, r3.energy);
}

TEST(SwitchSim, ZeroDelayDensityTracksNajmOnReadOnceCircuit) {
  // A balanced nand2 tree over distinct PIs is read-once: every net
  // feeds exactly one pin, so Najm's independence assumption holds and
  // the propagated densities must match the zero-delay simulation.
  const Tech tech;
  Netlist nl(lib(), "nandtree");
  std::vector<NetId> level;
  for (int i = 0; i < 8; ++i) {
    const NetId net = nl.add_net("x" + std::to_string(i));
    nl.mark_primary_input(net);
    level.push_back(net);
  }
  int counter = 0;
  while (level.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      const NetId out = nl.add_net("t" + std::to_string(counter));
      nl.add_gate("g" + std::to_string(counter++), "nand2",
                  {level[i], level[i + 1]}, out);
      next.push_back(out);
    }
    level = std::move(next);
  }
  nl.mark_primary_output(level.front());

  std::map<NetId, SignalStats> stats;
  for (NetId id : nl.primary_inputs()) stats[id] = {0.5, 1e5};
  SimOptions opt;
  opt.use_gate_delays = false;
  opt.measure_time = 6e-3;
  opt.seed = 11;
  const SimResult sim = simulate(nl, stats, tech, opt);
  const auto activity = power::propagate_activity(nl, stats);
  for (netlist::GateId g = 0; g < nl.gate_count(); ++g) {
    const NetId out = nl.gate(g).output;
    const double predicted =
        activity.net_stats[static_cast<std::size_t>(out)].density;
    const double observed = sim.nets[static_cast<std::size_t>(out)].density;
    EXPECT_NEAR(observed / predicted, 1.0, 0.15) << nl.net(out).name;
  }
}

TEST(SwitchSim, CorrelationMakesNajmUnderestimateParityTrees) {
  // The XOR macro (aoi21 + nor2) reconverges internally, violating the
  // spatial-independence assumption: gate-level Najm *underestimates* the
  // true parity-tree activity (a documented limitation the paper shares).
  const Netlist nl = benchgen::parity_tree(lib(), 4);
  const Tech tech;
  std::map<NetId, SignalStats> stats;
  for (NetId id : nl.primary_inputs()) stats[id] = {0.5, 1e5};
  SimOptions opt;
  opt.use_gate_delays = false;
  opt.measure_time = 4e-3;
  opt.seed = 11;
  const SimResult sim = simulate(nl, stats, tech, opt);
  const auto activity = power::propagate_activity(nl, stats);
  const NetId out = nl.primary_outputs().front();
  const double predicted =
      activity.net_stats[static_cast<std::size_t>(out)].density;
  const double observed = sim.nets[static_cast<std::size_t>(out)].density;
  // A 2-level tree of decomposed XORs: true density is (4/3)^2 ~ 1.78x
  // the independence estimate.
  EXPECT_GT(observed, predicted * 1.4);
  EXPECT_LT(observed, predicted * 2.2);
}

TEST(SwitchSim, GateDelaysCreateGlitches) {
  // Explicit glitch generator: out = nand2(a, delayed(!a)) is logically
  // constant 1, so every committed output transition is a useless
  // (glitch) transition. They exist with real gate delays and vanish in
  // zero-delay mode.
  const Tech tech;
  Netlist nl(lib(), "glitcher");
  const NetId a = nl.add_net("a");
  nl.mark_primary_input(a);
  NetId prev = a;
  for (int i = 0; i < 3; ++i) {  // odd-length inverter chain = !a, skewed
    const NetId next = nl.add_net("n" + std::to_string(i));
    nl.add_gate("u" + std::to_string(i), "inv", {prev}, next);
    prev = next;
  }
  const NetId y = nl.add_net("y");
  nl.add_gate("g", "nand2", {a, prev}, y);
  nl.mark_primary_output(y);

  std::map<NetId, SignalStats> stats{{a, SignalStats{0.5, 2e5}}};
  SimOptions opt;
  opt.measure_time = 2e-3;
  opt.seed = 12;
  opt.use_gate_delays = true;
  const SimResult with_delays = simulate(nl, stats, tech, opt);
  opt.use_gate_delays = false;
  const SimResult zero_delay = simulate(nl, stats, tech, opt);

  const double glitch_density =
      with_delays.nets[static_cast<std::size_t>(y)].density;
  EXPECT_GT(glitch_density, 0.0);
  EXPECT_EQ(zero_delay.nets[static_cast<std::size_t>(y)].density, 0.0);
  EXPECT_GT(with_delays.energy, zero_delay.energy);
}

TEST(SwitchSim, InternalNodeEnergyIsCounted) {
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 2);
  const Tech tech;
  std::map<NetId, SignalStats> stats;
  for (NetId id : nl.primary_inputs()) stats[id] = {0.5, 2e5};
  SimOptions opt;
  opt.seed = 13;
  const SimResult r = simulate(nl, stats, tech, opt);
  EXPECT_GT(r.internal_node_energy, 0.0);
  EXPECT_GT(r.output_node_energy, 0.0);
  EXPECT_GT(r.pi_energy, 0.0);
  EXPECT_NEAR(r.energy,
              r.internal_node_energy + r.output_node_energy + r.pi_energy,
              1e-18);
  // Per-gate energies sum to the non-PI part.
  double per_gate_sum = 0.0;
  for (double e : r.per_gate_energy) per_gate_sum += e;
  EXPECT_NEAR(per_gate_sum, r.internal_node_energy + r.output_node_energy,
              1e-18);
}

TEST(SwitchSim, PiEnergyCanBeExcluded) {
  const Netlist nl = inverter_chain(2);
  const NetId a = nl.find_net("a");
  const Tech tech;
  SimOptions opt;
  opt.seed = 14;
  opt.count_pi_energy = false;
  const SimResult r = simulate(nl, {{a, SignalStats{0.5, 1e5}}}, tech, opt);
  EXPECT_EQ(r.pi_energy, 0.0);
  EXPECT_GT(r.energy, 0.0);
}

TEST(SwitchSim, ValidatesInputs) {
  const Netlist nl = inverter_chain(1);
  const Tech tech;
  SimOptions opt;
  EXPECT_THROW(simulate(nl, std::map<NetId, SignalStats>{}, tech, opt),
               Error);  // missing PI stats
  opt.measure_time = 0.0;
  const NetId a = nl.find_net("a");
  EXPECT_THROW(simulate(nl, {{a, SignalStats{0.5, 1e5}}}, tech, opt), Error);
}

// Sweep: observed equilibrium probability tracks the request across the
// unit interval.
class PiProbabilitySweep : public ::testing::TestWithParam<double> {};

TEST_P(PiProbabilitySweep, ObservedProbabilityMatches) {
  const Netlist nl = inverter_chain(1);
  const NetId a = nl.find_net("a");
  const Tech tech;
  SimOptions opt;
  opt.seed = 21;
  opt.measure_time = 4e-3;
  const double p = GetParam();
  const SimResult r =
      simulate(nl, {{a, SignalStats{p, 2e5}}}, tech, opt);
  EXPECT_NEAR(r.nets[static_cast<std::size_t>(a)].prob, p, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, PiProbabilitySweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

}  // namespace
}  // namespace tr::sim
