#pragma once
// Shared test helpers: random series-parallel pull-down trees over a
// fixed input set — plus random cell libraries and multilevel netlists
// built from them — used by the randomized property suites
// (test_sp_random, test_catalog, test_opt_parity, test_sim_properties,
// test_sim_differential) so they all sample the same topology space.
// Every input index appears on exactly one leaf, mirroring real gate
// topologies.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "celllib/cell.hpp"
#include "celllib/library.hpp"
#include "gategraph/sp_tree.hpp"
#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace tr::testutil {

/// Recursive composition: shuffles the inputs, splits them into
/// 2..max_groups groups and combines the recursively built children with
/// a random series/parallel node. (SpNode::series/parallel flatten
/// same-kind children, so the resulting shape may have fewer levels than
/// the recursion — that is fine.)
inline gategraph::SpNode random_sp_tree(std::vector<int> inputs, Rng& rng,
                                        int max_groups = 4) {
  using gategraph::SpNode;
  if (inputs.size() == 1) return SpNode::transistor(inputs[0]);
  const std::size_t groups =
      2 + rng.next_below(std::min<std::uint64_t>(
              static_cast<std::uint64_t>(max_groups - 1), inputs.size() - 1));
  rng.shuffle(inputs.begin(), inputs.end());
  std::vector<std::vector<int>> parts(groups);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    parts[i % groups].push_back(inputs[i]);
  }
  std::vector<SpNode> children;
  children.reserve(parts.size());
  for (auto& part : parts) {
    children.push_back(random_sp_tree(std::move(part), rng, max_groups));
  }
  const bool series = rng.bernoulli(0.5);
  return series ? SpNode::series(std::move(children))
                : SpNode::parallel(std::move(children));
}

/// A library of random series-parallel cells with 2..5 inputs each.
inline celllib::CellLibrary random_sp_library(Rng& rng, int cell_count) {
  celllib::CellLibrary lib;
  for (int c = 0; c < cell_count; ++c) {
    const int n = 2 + static_cast<int>(rng.next_below(4));
    std::vector<int> inputs;
    std::vector<std::string> pins;
    for (int i = 0; i < n; ++i) {
      inputs.push_back(i);
      pins.push_back("p" + std::to_string(i));
    }
    lib.add(celllib::Cell("sp" + std::to_string(c), std::move(pins),
                          random_sp_tree(std::move(inputs), rng)));
  }
  return lib;
}

/// A small multilevel netlist over the random cells: every gate draws
/// distinct input nets from the pool of PIs and earlier outputs.
inline netlist::Netlist random_sp_netlist(const celllib::CellLibrary& lib,
                                          Rng& rng, int gates) {
  netlist::Netlist nl(lib, "sp_rand");
  std::vector<netlist::NetId> pool;
  for (int i = 0; i < 6; ++i) {
    const netlist::NetId id = nl.add_net("x" + std::to_string(i));
    nl.mark_primary_input(id);
    pool.push_back(id);
  }
  const std::vector<std::string> cells = lib.cell_names();
  for (int g = 0; g < gates; ++g) {
    const std::string& cell =
        cells[rng.next_below(static_cast<std::uint64_t>(cells.size()))];
    const int arity = lib.cell(cell).input_count();
    rng.shuffle(pool.begin(), pool.end());
    std::vector<netlist::NetId> inputs(pool.begin(), pool.begin() + arity);
    const netlist::NetId out = nl.add_net("t" + std::to_string(g));
    nl.add_gate("g" + std::to_string(g), cell, std::move(inputs), out);
    pool.push_back(out);
  }
  for (netlist::NetId id = 0; id < nl.net_count(); ++id) {
    if (nl.net(id).fanouts.empty() && !nl.net(id).is_primary_input) {
      nl.mark_primary_output(id);
    }
  }
  nl.validate();
  return nl;
}

}  // namespace tr::testutil
