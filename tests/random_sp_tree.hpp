#pragma once
// Shared test helper: random series-parallel pull-down trees over a fixed
// input set, used by the randomized property suites (test_sp_random,
// test_catalog, test_opt_parity) so they all sample the same topology
// space. Every input index appears on exactly one leaf, mirroring real
// gate topologies.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "gategraph/sp_tree.hpp"
#include "util/rng.hpp"

namespace tr::testutil {

/// Recursive composition: shuffles the inputs, splits them into
/// 2..max_groups groups and combines the recursively built children with
/// a random series/parallel node. (SpNode::series/parallel flatten
/// same-kind children, so the resulting shape may have fewer levels than
/// the recursion — that is fine.)
inline gategraph::SpNode random_sp_tree(std::vector<int> inputs, Rng& rng,
                                        int max_groups = 4) {
  using gategraph::SpNode;
  if (inputs.size() == 1) return SpNode::transistor(inputs[0]);
  const std::size_t groups =
      2 + rng.next_below(std::min<std::uint64_t>(
              static_cast<std::uint64_t>(max_groups - 1), inputs.size() - 1));
  rng.shuffle(inputs.begin(), inputs.end());
  std::vector<std::vector<int>> parts(groups);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    parts[i % groups].push_back(inputs[i]);
  }
  std::vector<SpNode> children;
  children.reserve(parts.size());
  for (auto& part : parts) {
    children.push_back(random_sp_tree(std::move(part), rng, max_groups));
  }
  const bool series = rng.bernoulli(0.5);
  return series ? SpNode::series(std::move(children))
                : SpNode::parallel(std::move(children));
}

}  // namespace tr::testutil
