// Tests for the rule-based reordering baseline ([9]/[2]-style related
// work): rule semantics, function preservation, and its relation to the
// model-driven optimizer.

#include <gtest/gtest.h>

#include "benchgen/generators.hpp"
#include "benchgen/suite.hpp"
#include "celllib/library.hpp"
#include "opt/optimizer.hpp"
#include "opt/rule_based.hpp"
#include "opt/scenario.hpp"
#include "power/circuit_power.hpp"
#include "util/error.hpp"

namespace tr::opt {
namespace {

using celllib::CellLibrary;
using celllib::Tech;
using netlist::NetId;
using netlist::Netlist;

CellLibrary& lib() {
  static CellLibrary instance = CellLibrary::standard();
  return instance;
}

TEST(RuleBased, HottestInputMovesToTheOutputSide) {
  Netlist nl(lib(), "one_gate");
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId c = nl.add_net("c");
  nl.mark_primary_input(a);
  nl.mark_primary_input(b);
  nl.mark_primary_input(c);
  const NetId y = nl.add_net("y");
  nl.add_gate("g", "nand3", {a, b, c}, y);
  nl.mark_primary_output(y);

  std::map<NetId, boolfn::SignalStats> stats{
      {a, {0.5, 1e4}}, {b, {0.5, 1e6}}, {c, {0.5, 1e5}}};
  const RuleBasedReport report = optimize_rule_based(nl, stats);
  EXPECT_EQ(report.gates_changed, 1);

  // Pull-down series order must be b (hot), c, a.
  const auto& chain = nl.gate(0).config.nmos();
  ASSERT_EQ(chain.children.size(), 3u);
  EXPECT_EQ(chain.children[0].input, 1);
  EXPECT_EQ(chain.children[1].input, 2);
  EXPECT_EQ(chain.children[2].input, 0);
}

TEST(RuleBased, PreservesLogicFunction) {
  Netlist nl = benchgen::ripple_carry_adder(lib(), 4);
  Netlist reference = benchgen::ripple_carry_adder(lib(), 4);
  std::map<NetId, boolfn::SignalStats> stats;
  for (NetId id : nl.primary_inputs()) stats[id] = {0.5, 3e5};
  optimize_rule_based(nl, stats);
  const std::size_t n = nl.primary_inputs().size();
  for (std::uint64_t m = 0; m < (1ULL << n); ++m) {
    std::vector<bool> in;
    for (std::size_t j = 0; j < n; ++j) in.push_back((m >> j) & 1ULL);
    EXPECT_EQ(nl.evaluate(in), reference.evaluate(in));
  }
}

TEST(RuleBased, IsIdempotent) {
  Netlist nl = benchgen::ripple_carry_adder(lib(), 6);
  std::map<NetId, boolfn::SignalStats> stats;
  for (NetId id : nl.primary_inputs()) stats[id] = {0.5, 3e5};
  optimize_rule_based(nl, stats);
  const RuleBasedReport second = optimize_rule_based(nl, stats);
  EXPECT_EQ(second.gates_changed, 0);
}

TEST(RuleBased, ReducesPowerOnTheCarryChain) {
  // The rule captures the dominant serial-stack effect, so it must beat
  // the canonical mapping on the adder even without a model.
  const Tech tech;
  Netlist nl = benchgen::ripple_carry_adder(lib(), 8);
  std::map<NetId, boolfn::SignalStats> stats;
  for (NetId id : nl.primary_inputs()) stats[id] = {0.5, 3e5};
  const auto activity = power::propagate_activity(nl, stats);
  const double before = power::circuit_power(nl, activity, tech).total();
  optimize_rule_based(nl, stats);
  const double after = power::circuit_power(nl, activity, tech).total();
  EXPECT_LT(after, before);
}

TEST(RuleBased, ModelDrivenOptimizerDominatesTheRule) {
  // The paper's point about rule/na\"ive approaches (Sec. 2): the model
  // sees probabilities and capacitances the rule ignores. Under the
  // model, the model-driven result is at least as good on every circuit.
  const Tech tech;
  for (const char* name : {"b1", "cm138a", "decod", "cmb"}) {
    const auto& spec = benchgen::suite_entry(name);
    const Netlist original = benchgen::build_benchmark(lib(), spec);
    const auto stats = scenario_a(original, spec.seed + 3);
    const auto activity = power::propagate_activity(original, stats);

    Netlist by_rule = original;
    optimize_rule_based(by_rule, stats);
    Netlist by_model = original;
    optimize(by_model, stats, tech);

    const double p_rule =
        power::circuit_power(by_rule, activity, tech).total();
    const double p_model =
        power::circuit_power(by_model, activity, tech).total();
    EXPECT_LE(p_model, p_rule + 1e-18) << name;
  }
}

TEST(RuleBased, MissingPiStatsRejected) {
  Netlist nl = benchgen::ripple_carry_adder(lib(), 2);
  EXPECT_THROW(optimize_rule_based(nl, {}), tr::Error);
}

}  // namespace
}  // namespace tr::opt
