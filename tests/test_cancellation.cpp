// Cooperative cancellation and deadline tests (ISSUE 7): token
// semantics (inert default, latching deadlines), the Cancelled paths
// through optimize/monte_carlo/the simulator event loop, and the batch
// all-or-nothing contract — a cancelled circuit reports `cancelled`
// with no numbers and an untouched netlist, while completed circuits
// keep their full deterministic results.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "benchgen/suite.hpp"
#include "celllib/library.hpp"
#include "opt/batch.hpp"
#include "opt/batch_report.hpp"
#include "opt/scenario.hpp"
#include "sim/monte_carlo.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"

namespace tr::opt {
namespace {

using celllib::CellLibrary;
using celllib::Tech;
using util::CancellationToken;
using util::Cancelled;

constexpr std::uint64_t kSeed = 1;

CellLibrary& lib() {
  static CellLibrary instance = CellLibrary::standard();
  return instance;
}

std::vector<BatchCircuit> make_batch(const std::vector<std::string>& names) {
  std::vector<BatchCircuit> batch;
  for (const std::string& name : names) {
    batch.push_back(make_scenario_circuit(
        benchgen::build_benchmark(lib(), benchgen::suite_entry(name)), 'A',
        kSeed));
  }
  return batch;
}

std::vector<std::string> config_keys(const netlist::Netlist& nl) {
  std::vector<std::string> keys;
  for (netlist::GateId g = 0; g < nl.gate_count(); ++g) {
    keys.push_back(nl.gate(g).config.canonical_key());
  }
  return keys;
}

std::string circuit_json(const BatchCircuit& circuit,
                         const BatchCircuitResult& result) {
  BatchJsonOptions json;
  json.include_timing = false;
  std::ostringstream out;
  write_circuit_json(circuit, result, out, json);
  return out.str();
}

// ---------------------------------------------------------------------------
// Token semantics

TEST(CancellationToken, DefaultIsInert) {
  const CancellationToken token;
  EXPECT_FALSE(token.valid());
  EXPECT_FALSE(token.should_cancel());
  token.check("work");          // must not throw
  token.request_cancel();       // no state to cancel; still a no-op
  EXPECT_FALSE(token.should_cancel());
}

TEST(CancellationToken, RequestCancelLatches) {
  const CancellationToken token = CancellationToken::cancellable();
  EXPECT_TRUE(token.valid());
  EXPECT_FALSE(token.should_cancel());
  token.check("work");  // not cancelled yet
  token.request_cancel();
  EXPECT_TRUE(token.should_cancel());
  try {
    token.check("work");
    FAIL() << "expected Cancelled";
  } catch (const Cancelled& e) {
    EXPECT_EQ(ErrorCode::cancelled, e.code());
    EXPECT_STREQ("work cancelled", e.what());
  }
  // Copies share the state.
  const CancellationToken copy = token;
  EXPECT_TRUE(copy.should_cancel());
}

TEST(CancellationToken, DeadlineLatches) {
  const CancellationToken expired = CancellationToken::with_deadline_ms(0.0);
  EXPECT_TRUE(expired.valid());
  EXPECT_TRUE(expired.should_cancel());
  EXPECT_TRUE(expired.should_cancel());  // latched, never reverts

  const CancellationToken far = CancellationToken::with_deadline_ms(1e9);
  EXPECT_FALSE(far.should_cancel());

  const CancellationToken soon = CancellationToken::with_deadline_ms(1.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(soon.should_cancel());
}

TEST(CancellationToken, NonFiniteDeadlineIsRejected) {
  // A NaN deadline would silently latch "always expired" (NaN
  // comparisons are false, so the arithmetic lands wherever the
  // implementation happens to put it); an infinite one degrades to "no
  // deadline". Both are caller bugs the constructor refuses to arm.
  const double inf = std::numeric_limits<double>::infinity();
  for (const double bad : {std::nan(""), inf, -inf}) {
    try {
      CancellationToken::with_deadline_ms(bad);
      FAIL() << "expected rejection of deadline " << bad;
    } catch (const Error& e) {
      EXPECT_EQ(ErrorCode::invalid_argument, e.code());
      EXPECT_NE(std::string(e.what()).find(
                    "CancellationToken: deadline must be finite, got "),
                std::string::npos)
          << e.what();
    }
  }
}

// ---------------------------------------------------------------------------
// Pipeline entry points throw Cancelled

TEST(Cancellation, OptimizeThrowsAndLeavesNetlistUntouched) {
  for (const Engine engine : {Engine::catalog, Engine::reference}) {
    BatchCircuit circuit = make_scenario_circuit(
        benchgen::build_benchmark(lib(), benchgen::suite_entry("b1")), 'A',
        kSeed);
    const std::vector<std::string> before = config_keys(circuit.netlist);

    OptimizeOptions options;
    options.engine = engine;
    options.cancel = CancellationToken::with_deadline_ms(0.0);
    try {
      optimize(circuit.netlist, circuit.pi_stats, Tech{}, options);
      FAIL() << "expected Cancelled";
    } catch (const Cancelled& e) {
      EXPECT_EQ(ErrorCode::cancelled, e.code());
      EXPECT_STREQ("optimize cancelled", e.what());
      EXPECT_EQ("optimize", e.site_chain());
    }
    // The first checkpoint precedes the first commit on both engines.
    EXPECT_EQ(config_keys(circuit.netlist), before);
  }
}

TEST(Cancellation, MonteCarloThrowsCancelled) {
  const netlist::Netlist nl =
      benchgen::build_benchmark(lib(), benchgen::suite_entry("b1"));
  const auto stats = opt::scenario_b(nl);

  sim::MonteCarloOptions mc;
  mc.sim.seed = 7;
  mc.sim.measure_time = 1e-4;
  mc.sim.warmup_time = 1e-5;
  mc.replications = 4;
  mc.threads = 1;
  mc.sim.cancel = CancellationToken::with_deadline_ms(0.0);

  const Tech tech;
  const sim::SimEngine engine(nl, stats, tech, mc.sim);
  try {
    sim::monte_carlo(engine, mc);
    FAIL() << "expected Cancelled";
  } catch (const Cancelled& e) {
    EXPECT_EQ(ErrorCode::cancelled, e.code());
    EXPECT_STREQ("monte_carlo cancelled", e.what());
    EXPECT_EQ("monte_carlo", e.site_chain());
  }
}

TEST(Cancellation, SimulatorEventLoopObservesDeadlineMidRun) {
  // A window long enough for millions of events, a deadline that
  // expires almost immediately: the event-loop checkpoint (every 8192
  // events) must stop the run long before the window completes. The
  // deadline is armed before the engine runs, so the first replicate
  // observes it; which site reports first (monte_carlo boundary or
  // simulate loop) depends on timing, the code/latching does not.
  const netlist::Netlist nl =
      benchgen::build_benchmark(lib(), benchgen::suite_entry("alu4"));
  const auto stats = opt::scenario_b(nl);

  sim::MonteCarloOptions mc;
  mc.sim.seed = 7;
  mc.sim.measure_time = 10.0;  // ~hours of simulated activity
  mc.sim.warmup_time = 0.0;
  mc.replications = 2;
  mc.threads = 1;
  mc.packing = sim::PackingMode::scalar;
  mc.sim.cancel = CancellationToken::with_deadline_ms(20.0);

  const Tech tech;
  const sim::SimEngine engine(nl, stats, tech, mc.sim);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(sim::monte_carlo(engine, mc), Cancelled);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // Bounded lag: generous to absorb slow CI machines, but far below
  // the time the full window would need.
  EXPECT_LT(elapsed, 30.0);
}

// ---------------------------------------------------------------------------
// Batch all-or-nothing

TEST(Cancellation, PreCancelledBatchCancelsEveryCircuitAndRestores) {
  std::vector<BatchCircuit> batch = make_batch({"b1", "decod", "cmb"});
  std::vector<std::vector<std::string>> before;
  for (const BatchCircuit& circuit : batch) {
    before.push_back(config_keys(circuit.netlist));
  }

  BatchOptions options;
  options.jobs = 2;
  options.cancel = CancellationToken::with_deadline_ms(0.0);
  const BatchReport report = BatchOptimizer(lib(), Tech{}, options).run(batch);

  EXPECT_EQ(report.circuits_ok, 0);
  EXPECT_EQ(report.circuits_failed, 0);
  EXPECT_EQ(report.circuits_cancelled, 3);
  EXPECT_EQ(report.gates_total, 0);
  EXPECT_EQ(report.model_power_after, 0.0);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const BatchCircuitResult& result = report.circuits[i];
    EXPECT_EQ(result.status, CircuitStatus::cancelled);
    ASSERT_TRUE(result.error.has_value());
    EXPECT_EQ(result.error->code, ErrorCode::cancelled);
    EXPECT_EQ(result.error->message, "batch cancelled");
    EXPECT_EQ(result.gates, 0);
    EXPECT_EQ(config_keys(batch[i].netlist), before[i]);
  }
}

TEST(Cancellation, LiveTokenThatNeverFiresIsByteIdenticalToInert) {
  // The polling paths must be observation-free: a valid token that
  // never cancels yields exactly the inert-token results.
  std::vector<BatchCircuit> inert_batch = make_batch({"b1", "decod"});
  BatchOptions inert_options;
  inert_options.jobs = 1;
  const BatchReport inert_report =
      BatchOptimizer(lib(), Tech{}, inert_options).run(inert_batch);

  std::vector<BatchCircuit> live_batch = make_batch({"b1", "decod"});
  BatchOptions live_options;
  live_options.jobs = 1;
  live_options.cancel = CancellationToken::cancellable();
  const BatchReport live_report =
      BatchOptimizer(lib(), Tech{}, live_options).run(live_batch);

  ASSERT_EQ(inert_report.circuits.size(), live_report.circuits.size());
  for (std::size_t i = 0; i < inert_report.circuits.size(); ++i) {
    EXPECT_EQ(circuit_json(inert_batch[i], inert_report.circuits[i]),
              circuit_json(live_batch[i], live_report.circuits[i]));
  }
}

TEST(Cancellation, MidRunDeadlineIsAllOrNothingPerCircuit) {
  // A short-but-nonzero deadline over a batch with real work: whatever
  // subset finishes, every circuit must be either fully reported or
  // cancelled with nothing — never in between. The reference engine
  // commits gate by gate, so a cancelled circuit here exercises the
  // snapshot-restore path for real.
  const std::vector<std::string> names{"b1", "alu2", "alu4", "apex7"};
  std::vector<BatchCircuit> batch = make_batch(names);
  std::vector<std::vector<std::string>> before;
  for (const BatchCircuit& circuit : batch) {
    before.push_back(config_keys(circuit.netlist));
  }

  BatchOptions options;
  options.jobs = 1;
  options.opt.engine = Engine::reference;
  options.cancel = CancellationToken::with_deadline_ms(30.0);
  const BatchReport report = BatchOptimizer(lib(), Tech{}, options).run(batch);

  EXPECT_EQ(report.circuits_failed, 0);
  EXPECT_EQ(report.circuits_ok + report.circuits_cancelled,
            static_cast<int>(batch.size()));
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const BatchCircuitResult& result = report.circuits[i];
    if (result.status == CircuitStatus::ok) {
      EXPECT_FALSE(result.error.has_value());
      EXPECT_GT(result.gates, 0);
    } else {
      EXPECT_EQ(result.status, CircuitStatus::cancelled);
      ASSERT_TRUE(result.error.has_value());
      EXPECT_EQ(result.error->code, ErrorCode::cancelled);
      EXPECT_EQ(result.gates, 0);
      EXPECT_EQ(result.report.gates_changed, 0);
      // All-or-nothing: the cancelled netlist is exactly the input.
      EXPECT_EQ(config_keys(batch[i].netlist), before[i]);
    }
  }
}

}  // namespace
}  // namespace tr::opt
