// Tests for the flat transistor graph and the H_nk / G_nk path functions
// (paper Sec. 3.3.2, Fig. 2).

#include <gtest/gtest.h>

#include <set>

#include "celllib/library.hpp"
#include "gategraph/gate_graph.hpp"
#include "util/error.hpp"

namespace tr::gategraph {
namespace {

using boolfn::TruthTable;

SpNode T(int i) { return SpNode::transistor(i); }
SpNode S(std::vector<SpNode> c) { return SpNode::series(std::move(c)); }
SpNode P(std::vector<SpNode> c) { return SpNode::parallel(std::move(c)); }

/// Paper Fig. 2(a): gate (C) of Fig. 1(a), y = !((a1+a2) b), with the
/// parallel pair next to the output in the pull-down network and the
/// series pair next to the output in the pull-up network.
/// Inputs: 0 = a1, 1 = a2, 2 = b.
GateTopology paper_gate_c() {
  return GateTopology::from_pulldown(S({P({T(0), T(1)}), T(2)}), 3);
}

TEST(GateGraph, NodeNumbering) {
  const GateGraph g(paper_gate_c());
  EXPECT_EQ(g.input_count(), 3);
  EXPECT_EQ(g.internal_node_count(), 2);
  EXPECT_EQ(g.node_count(), 5);
  EXPECT_EQ(g.node_name(GateGraph::vss_node), "vss");
  EXPECT_EQ(g.node_name(GateGraph::vdd_node), "vdd");
  EXPECT_EQ(g.node_name(GateGraph::output_node), "y");
  EXPECT_EQ(g.node_name(3), "n0");
  EXPECT_EQ(g.transistors().size(), 6u);
}

TEST(GateGraph, PaperExampleHAndGFunctions) {
  // Paper Sec. 3.3.2: for gate (C), the internal pull-down node n1
  // (between the parallel pair and transistor b) has
  //   H_n1 = !b (a1 + a2)   and   G_n1 = b.
  // (The DFS generates four minterms; the contradictory ones collapse.)
  const GateGraph g(paper_gate_c());
  const TruthTable a1 = TruthTable::variable(3, 0);
  const TruthTable a2 = TruthTable::variable(3, 1);
  const TruthTable b = TruthTable::variable(3, 2);

  // Node 3 = first internal node = the N-network series gap.
  EXPECT_EQ(g.h_function(3), ~b & (a1 | a2));
  EXPECT_EQ(g.g_function(3), b);

  // Node 4 = the P-network series gap (between the a1/a2 series pair and
  // the parallel b device... by duality: pull-up = parallel(series(a1,a2), b),
  // so node 4 sits inside the series pair): H_n2 = !a1, G_n2 = a1? No —
  // derive from first principles instead: the node between the two
  // series P devices (a1 nearer y) charges through the a2 device from
  // vdd when a2=0, discharges through a1 then the N network when
  // a1=0 is false... assert the complementarity invariants instead.
  EXPECT_TRUE((g.h_function(4) & g.g_function(4)).is_zero());
}

TEST(GateGraph, PullupInternalNodeFunctions) {
  // Same gate; derive node 4's functions from the electrical structure.
  // Pull-up = parallel(series(a1,a2), b) between y and vdd, with the
  // series pair ordered a1 (output side), a2 (rail side). Node n sits
  // between them.
  //   H_n: direct through a2's device (!a2), or up through a1's device
  //        to y and across the parallel b device to vdd (!a1 & !b).
  //   G_n: to vss it must first reach y through a1's device (!a1) and
  //        then pull down through the N network: the a1 branch of the
  //        parallel pair contradicts !a1, leaving !a1 & a2 & b.
  const GateGraph g(paper_gate_c());
  const TruthTable a1 = TruthTable::variable(3, 0);
  const TruthTable a2 = TruthTable::variable(3, 1);
  const TruthTable b = TruthTable::variable(3, 2);
  EXPECT_EQ(g.h_function(4), ~a2 | (~a1 & ~b));
  EXPECT_EQ(g.g_function(4), ~a1 & a2 & b);
}

TEST(GateGraph, OutputNodeFunctionsAreComplementary) {
  // H_y is the gate function itself, G_y its complement — for every cell
  // in the library and every reordering.
  const celllib::CellLibrary lib = celllib::CellLibrary::standard();
  for (const std::string& name : lib.cell_names()) {
    for (const auto& config : lib.cell(name).topology().all_reorderings()) {
      const GateGraph g(config);
      EXPECT_EQ(g.h_function(GateGraph::output_node), config.output_function())
          << name;
      EXPECT_EQ(g.g_function(GateGraph::output_node),
                ~config.output_function())
          << name;
    }
  }
}

TEST(GateGraph, NoRailToRailShortThroughAnyNode) {
  // H_nk & G_nk = 0 for every node of every configuration of every cell:
  // a conducting path from vdd to vss through a node would be a short.
  const celllib::CellLibrary lib = celllib::CellLibrary::standard();
  for (const std::string& name : lib.cell_names()) {
    for (const auto& config : lib.cell(name).topology().all_reorderings()) {
      const GateGraph g(config);
      for (int node = GateGraph::output_node; node < g.node_count(); ++node) {
        EXPECT_TRUE((g.h_function(node) & g.g_function(node)).is_zero())
            << name << " node " << g.node_name(node);
      }
    }
  }
}

TEST(GateGraph, InternalNodeImpliesOutputPullup) {
  // A path from an internal pull-down node to vdd runs through y, so
  // H_nk implies H_y (and dually G for pull-up nodes). Weaker but
  // universal: H_nk & !H_y == 0 for N-side nodes. We check the paper
  // gate explicitly.
  const GateGraph g(paper_gate_c());
  const TruthTable hy = g.h_function(GateGraph::output_node);
  EXPECT_TRUE((g.h_function(3) & ~hy).is_zero());
}

TEST(GateGraph, RailsAtRailsPathFunctions) {
  const GateGraph g(paper_gate_c());
  EXPECT_TRUE(g.h_function(GateGraph::vdd_node).is_one());
  EXPECT_TRUE(g.g_function(GateGraph::vss_node).is_one());
}

TEST(GateGraph, TerminalCounts) {
  // Paper gate (C): y touches the two parallel N devices and the two
  // parallel-side P devices (a1-series top device and b device) = 4.
  const GateGraph g(paper_gate_c());
  const std::vector<int> counts = g.terminal_counts();
  ASSERT_EQ(counts.size(), 5u);
  // Every transistor contributes exactly two terminals somewhere.
  int total = 0;
  for (int c : counts) total += c;
  EXPECT_EQ(total, 12);
  // vss: one terminal (the b device); vdd: two (a2-series device + b).
  EXPECT_EQ(counts[GateGraph::vss_node], 1);
  EXPECT_EQ(counts[GateGraph::vdd_node], 2);
  EXPECT_EQ(counts[GateGraph::output_node], 4);
  EXPECT_EQ(counts[3], 3);  // two parallel devices + b device
  EXPECT_EQ(counts[4], 2);  // between the two series P devices
}

TEST(GateGraph, TerminalCountsChangeWithReordering) {
  // nand3: output node always touches 1 N device + 3 P devices = 4;
  // but for aoi21 the output terminal count depends on which pull-up
  // element is adjacent to y, which is what makes reordering change the
  // output capacitance.
  const celllib::CellLibrary lib = celllib::CellLibrary::standard();
  const auto& aoi21 = lib.cell("aoi21");
  std::set<int> output_terminal_variants;
  for (const auto& config : aoi21.topology().all_reorderings()) {
    const GateGraph g(config);
    output_terminal_variants.insert(
        g.terminal_counts()[GateGraph::output_node]);
  }
  EXPECT_GT(output_terminal_variants.size(), 1u);
}

TEST(GateGraph, InverterDegenerateCase) {
  const GateGraph g(GateTopology::from_pulldown(T(0), 1));
  EXPECT_EQ(g.internal_node_count(), 0);
  EXPECT_EQ(g.h_function(GateGraph::output_node),
            ~TruthTable::variable(1, 0));
}

TEST(GateGraph, PathFunctionValidatesArguments) {
  const GateGraph g(paper_gate_c());
  EXPECT_THROW(g.h_function(99), Error);
  EXPECT_THROW(g.node_name(-1), Error);
}

}  // namespace
}  // namespace tr::gategraph
