// Tests for the mapped netlist container: construction rules, topological
// order, loads, validation and logic evaluation.

#include <gtest/gtest.h>

#include "celllib/library.hpp"
#include "netlist/netlist.hpp"
#include "util/error.hpp"

namespace tr::netlist {
namespace {

using celllib::CellLibrary;

CellLibrary& lib() {
  static CellLibrary instance = CellLibrary::standard();
  return instance;
}

Netlist small_circuit() {
  // y = nand2(a, inv(b))
  Netlist nl(lib(), "small");
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  nl.mark_primary_input(a);
  nl.mark_primary_input(b);
  const NetId nb = nl.add_net("nb");
  const NetId y = nl.add_net("y");
  nl.add_gate("u1", "inv", {b}, nb);
  nl.add_gate("u2", "nand2", {a, nb}, y);
  nl.mark_primary_output(y);
  return nl;
}

TEST(Netlist, BasicConstruction) {
  const Netlist nl = small_circuit();
  EXPECT_EQ(nl.net_count(), 4);
  EXPECT_EQ(nl.gate_count(), 2);
  EXPECT_EQ(nl.primary_inputs().size(), 2u);
  EXPECT_EQ(nl.primary_outputs().size(), 1u);
  EXPECT_NO_THROW(nl.validate());
  EXPECT_EQ(nl.find_net("nb"), 2);
  EXPECT_EQ(nl.find_net("zz"), -1);
}

TEST(Netlist, DuplicateNetRejected) {
  Netlist nl(lib(), "t");
  nl.add_net("a");
  EXPECT_THROW(nl.add_net("a"), Error);
  EXPECT_THROW(nl.add_net(""), Error);
  EXPECT_EQ(nl.ensure_net("a"), 0);
}

TEST(Netlist, DoubleDriverRejected) {
  Netlist nl(lib(), "t");
  const NetId a = nl.add_net("a");
  nl.mark_primary_input(a);
  const NetId y = nl.add_net("y");
  nl.add_gate("u1", "inv", {a}, y);
  EXPECT_THROW(nl.add_gate("u2", "inv", {a}, y), Error);
  // PI nets cannot be driven either.
  EXPECT_THROW(nl.add_gate("u3", "inv", {y}, a), Error);
}

TEST(Netlist, ArityMismatchRejected) {
  Netlist nl(lib(), "t");
  const NetId a = nl.add_net("a");
  nl.mark_primary_input(a);
  const NetId y = nl.add_net("y");
  EXPECT_THROW(nl.add_gate("u1", "nand2", {a}, y), Error);
  EXPECT_THROW(nl.add_gate("u1", "mystery", {a}, y), Error);
}

TEST(Netlist, SelfLoopRejected) {
  Netlist nl(lib(), "t");
  const NetId y = nl.add_net("y");
  EXPECT_THROW(nl.add_gate("u1", "inv", {y}, y), Error);
}

TEST(Netlist, TopologicalOrderRespectsFanin) {
  const Netlist nl = small_circuit();
  const auto order = nl.topological_order();
  ASSERT_EQ(order.size(), 2u);
  // u1 (inv) drives u2's pin, so u1 must come first.
  EXPECT_EQ(nl.gate(order[0]).name, "u1");
  EXPECT_EQ(nl.gate(order[1]).name, "u2");
}

TEST(Netlist, CycleDetected) {
  Netlist nl(lib(), "t");
  const NetId a = nl.add_net("a");
  nl.mark_primary_input(a);
  const NetId x = nl.add_net("x");
  const NetId y = nl.add_net("y");
  nl.add_gate("u1", "nand2", {a, y}, x);
  nl.add_gate("u2", "inv", {x}, y);
  nl.mark_primary_output(y);
  EXPECT_THROW(nl.topological_order(), Error);
  EXPECT_THROW(nl.validate(), Error);
}

TEST(Netlist, UndrivenNetFailsValidation) {
  Netlist nl(lib(), "t");
  const NetId a = nl.add_net("a");  // never marked PI, never driven
  const NetId y = nl.add_net("y");
  nl.add_gate("u1", "inv", {a}, y);
  nl.mark_primary_output(y);
  EXPECT_THROW(nl.validate(), Error);
}

TEST(Netlist, ExternalLoadSumsFanoutPins) {
  const Netlist nl = small_circuit();
  const celllib::Tech tech = celllib::default_tech();
  // u1's output nb feeds one nand2 pin.
  const double load_u1 = nl.external_load(0, tech);
  EXPECT_DOUBLE_EQ(load_u1, tech.c_wire + 2.0 * tech.c_gate);
  // u2's output y is a PO with no fanouts: wire + PO pad wire.
  const double load_u2 = nl.external_load(1, tech);
  EXPECT_DOUBLE_EQ(load_u2, 2.0 * tech.c_wire);
}

TEST(Netlist, EvaluateComputesLogic) {
  const Netlist nl = small_circuit();
  // y = !(a & !b)
  EXPECT_EQ(nl.evaluate({false, false}), std::vector<bool>{true});
  EXPECT_EQ(nl.evaluate({true, false}), std::vector<bool>{false});
  EXPECT_EQ(nl.evaluate({true, true}), std::vector<bool>{true});
  EXPECT_EQ(nl.evaluate({false, true}), std::vector<bool>{true});
}

TEST(Netlist, SetConfigPreservesFunction) {
  Netlist nl = small_circuit();
  const auto& inst = nl.gate(1);  // the nand2
  const auto configs = inst.config.all_reorderings();
  ASSERT_EQ(configs.size(), 2u);
  EXPECT_NO_THROW(nl.set_config(1, configs[1]));
  // A different cell's topology changes the function: rejected.
  EXPECT_THROW(nl.set_config(1, lib().cell("nor2").topology()), Error);
}

TEST(Netlist, FanoutBookkeeping) {
  const Netlist nl = small_circuit();
  const Net& b = nl.net(nl.find_net("b"));
  ASSERT_EQ(b.fanouts.size(), 1u);
  EXPECT_EQ(b.fanouts[0].first, 0);
  EXPECT_EQ(b.fanouts[0].second, 0);
  const Net& nb = nl.net(nl.find_net("nb"));
  ASSERT_EQ(nb.fanouts.size(), 1u);
  EXPECT_EQ(nb.fanouts[0].first, 1);
  EXPECT_EQ(nb.fanouts[0].second, 1);  // pin b of the nand2
}

}  // namespace
}  // namespace tr::netlist
