// Tests for the delay-constrained global search layer (opt/search.hpp,
// DESIGN.md Sec. 14):
//
//  * the differential oracle — after arbitrary apply/revert sequences
//    (including moves whose fanout cones cross reconvergent fanout) the
//    incrementally maintained arrivals are FIELD-EXACT against both a
//    from-scratch topological recompute and delay::circuit_delay on a
//    materialised netlist, across random SP netlists, both power
//    models and both objectives;
//  * greedy-seed parity — the table-driven greedy replica is
//    bit-identical to optimize() with the reference/catalog engines,
//    budgets or not;
//  * the annealing engine — dominates greedy at equal delay budgets,
//    honours the ceilings, is deterministic per seed (byte-identical
//    batch JSON, jobs=1 vs jobs=4), and cancels all-or-nothing;
//  * the delay-budget option sweep — std::optional semantics (unset vs
//    a legitimate 0.0), validation, and the engine/threads recording
//    that replaced the batch-report inference bug.

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <sstream>
#include <vector>

#include "benchgen/classic.hpp"
#include "benchgen/generators.hpp"
#include "benchgen/suite.hpp"
#include "celllib/library.hpp"
#include "delay/elmore.hpp"
#include "mapper/mapper.hpp"
#include "netlist/blif.hpp"
#include "opt/batch.hpp"
#include "opt/batch_report.hpp"
#include "opt/optimizer.hpp"
#include "opt/scenario.hpp"
#include "opt/search.hpp"
#include "random_sp_tree.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace tr::opt {
namespace {

using celllib::CellLibrary;
using celllib::Tech;
using netlist::GateId;
using netlist::NetId;
using netlist::Netlist;
using search::GreedySeed;
using search::IncrementalScorer;

CellLibrary& lib() {
  static CellLibrary instance = CellLibrary::standard();
  return instance;
}

std::map<NetId, boolfn::SignalStats> uniform_stats(const Netlist& nl,
                                                   double p, double d) {
  std::map<NetId, boolfn::SignalStats> stats;
  for (NetId id : nl.primary_inputs()) stats[id] = {p, d};
  return stats;
}

std::map<NetId, boolfn::SignalStats> random_stats(const Netlist& nl,
                                                  Rng& rng) {
  std::map<NetId, boolfn::SignalStats> stats;
  for (NetId id : nl.primary_inputs()) {
    stats[id] = {rng.uniform(0.05, 0.95), rng.uniform(1e3, 1e6)};
  }
  return stats;
}

/// Materialises the scorer's current configurations onto a copy of the
/// netlist and returns delay::circuit_delay's arrivals — the end-to-end
/// oracle the incremental state must match field-exactly.
std::vector<double> materialised_arrivals(const IncrementalScorer& scorer,
                                          const Tech& tech) {
  Netlist copy = scorer.netlist();
  for (GateId g = 0; g < copy.gate_count(); ++g) {
    const int cfg = scorer.config_of(g);
    if (cfg != 0) {
      copy.set_config(
          g, scorer.table(g).catalog->configs()[static_cast<std::size_t>(cfg)]
                 .topology);
    }
  }
  return delay::circuit_delay(copy, tech).net_arrival;
}

void expect_arrivals_exact(const IncrementalScorer& scorer, const Tech& tech,
                           const char* context) {
  const std::vector<double> full = scorer.full_arrivals();
  ASSERT_EQ(scorer.arrivals().size(), full.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(scorer.arrivals()[i], full[i])
        << context << ": cone-rescore drifted from full rescore at net " << i;
  }
  const std::vector<double> oracle = materialised_arrivals(scorer, tech);
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(scorer.arrivals()[i], oracle[i])
        << context << ": scorer drifted from delay::circuit_delay at net "
        << i;
  }
}

TEST(IncrementalScorer, ConstructionMatchesCircuitDelayExactly) {
  const Tech tech;
  Rng rng(11);
  for (int round = 0; round < 4; ++round) {
    const CellLibrary sp_lib = testutil::random_sp_library(rng, 4);
    const Netlist nl = testutil::random_sp_netlist(sp_lib, rng, 14);
    const IncrementalScorer scorer(nl, random_stats(nl, rng), tech,
                                   power::ModelKind::extended);
    const delay::CircuitDelay timing = delay::circuit_delay(nl, tech);
    ASSERT_EQ(scorer.arrivals().size(), timing.net_arrival.size());
    for (std::size_t i = 0; i < timing.net_arrival.size(); ++i) {
      EXPECT_EQ(scorer.arrivals()[i], timing.net_arrival[i]);
    }
  }
}

TEST(IncrementalScorer, ConeRescoreMatchesFullRescoreAcrossRandomMoves) {
  // The tentpole oracle: long random move sequences on random SP
  // netlists (whose nets feed multiple gates, so cones reconverge), both
  // power models, applies interleaved with exact reverts.
  const Tech tech;
  Rng rng(29);
  for (const power::ModelKind model :
       {power::ModelKind::extended, power::ModelKind::output_only}) {
    for (int round = 0; round < 3; ++round) {
      const CellLibrary sp_lib = testutil::random_sp_library(rng, 5);
      const Netlist nl = testutil::random_sp_netlist(sp_lib, rng, 16);
      IncrementalScorer scorer(nl, random_stats(nl, rng), tech, model);
      for (int move = 0; move < 60; ++move) {
        const GateId g = static_cast<GateId>(
            rng.next_below(static_cast<std::uint64_t>(nl.gate_count())));
        const int n = scorer.table(g).config_count();
        const int cfg =
            static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
        const std::vector<double> before_arrivals = scorer.arrivals();
        const std::vector<int> before_configs = scorer.configs();
        const double before_power = scorer.total_power();
        const IncrementalScorer::Undo undo = scorer.apply(g, cfg);
        expect_arrivals_exact(scorer, tech, "after apply");
        if (rng.bernoulli(0.4)) {
          scorer.revert(undo);
          // Reverts restore the exact previous state, bit for bit.
          EXPECT_EQ(scorer.configs(), before_configs);
          EXPECT_EQ(scorer.total_power(), before_power);
          for (std::size_t i = 0; i < before_arrivals.size(); ++i) {
            EXPECT_EQ(scorer.arrivals()[i], before_arrivals[i]);
          }
        }
      }
      expect_arrivals_exact(scorer, tech, "after move sequence");
    }
  }
}

TEST(IncrementalScorer, ConeCrossesReconvergentFanout) {
  // Explicit diamond: a's gate output feeds two branches that reconverge
  // in one sink — a move on the source must re-evaluate the sink once
  // with both updated branch arrivals, not twice or with a stale one.
  const Tech tech;
  Netlist nl(lib(), "diamond");
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId c = nl.add_net("c");
  for (const NetId id : {a, b, c}) nl.mark_primary_input(id);
  const NetId src = nl.add_net("src");
  const NetId left = nl.add_net("left");
  const NetId right = nl.add_net("right");
  const NetId sink = nl.add_net("sink");
  nl.add_gate("gsrc", "nand3", {a, b, c}, src);
  nl.add_gate("gleft", "nand2", {src, a}, left);
  nl.add_gate("gright", "nor2", {src, b}, right);
  nl.add_gate("gsink", "aoi21", {left, right, src}, sink);
  nl.mark_primary_output(sink);

  IncrementalScorer scorer(nl, uniform_stats(nl, 0.5, 3e5), tech,
                           power::ModelKind::extended);
  const GateId gsrc = 0;
  for (int cfg = 0; cfg < scorer.table(gsrc).config_count(); ++cfg) {
    scorer.apply(gsrc, cfg);
    expect_arrivals_exact(scorer, tech, "reconvergent move");
  }
}

TEST(IncrementalScorer, TotalPowerTracksTopoOrderSum) {
  const Tech tech;
  Rng rng(47);
  const CellLibrary sp_lib = testutil::random_sp_library(rng, 4);
  const Netlist nl = testutil::random_sp_netlist(sp_lib, rng, 12);
  IncrementalScorer scorer(nl, random_stats(nl, rng), tech,
                           power::ModelKind::extended);
  for (int move = 0; move < 40; ++move) {
    const GateId g = static_cast<GateId>(
        rng.next_below(static_cast<std::uint64_t>(nl.gate_count())));
    const int n = scorer.table(g).config_count();
    scorer.apply(
        g, static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n))));
    // Exact-difference maintenance may drift from the topo-order sum only
    // in the last few ulps; the engine resynchronises via set_configs.
    EXPECT_NEAR(scorer.total_power(), scorer.total_power_in_topo_order(),
                1e-9 * scorer.total_power_in_topo_order());
  }
}

/// Runs greedy_seed over a fresh scorer and returns the chosen
/// configuration topologies keyed like the netlist.
GreedySeed table_greedy(const Netlist& nl,
                        const std::map<NetId, boolfn::SignalStats>& stats,
                        const Tech& tech, const OptimizeOptions& options,
                        std::vector<std::string>* keys) {
  const IncrementalScorer scorer(nl, stats, tech, options.model);
  const GreedySeed seed = greedy_seed(scorer, options);
  if (keys != nullptr) {
    keys->clear();
    for (GateId g = 0; g < nl.gate_count(); ++g) {
      keys->push_back(
          scorer.table(g)
              .catalog->configs()[static_cast<std::size_t>(
                  seed.configs[static_cast<std::size_t>(g)])]
              .topology.canonical_key());
    }
  }
  return seed;
}

TEST(GreedySeed, BitIdenticalToEngineDecisionsAcrossOptionSweep) {
  // The annealing seed replays the engines' greedy pass from the
  // precomputed tables; any divergence would void the "never loses to
  // greedy" guarantee, so the replica is pinned bit-exactly: same chosen
  // configuration per gate, same rejection counters, same power totals.
  const Tech tech;
  Rng rng(83);
  std::vector<Netlist> circuits;
  circuits.push_back(benchgen::ripple_carry_adder(lib(), 6));
  const CellLibrary sp_lib = testutil::random_sp_library(rng, 4);
  circuits.push_back(testutil::random_sp_netlist(sp_lib, rng, 15));

  const std::optional<double> budgets[] = {std::nullopt, 0.0, 0.08};
  for (const Netlist& original : circuits) {
    const auto stats = random_stats(original, rng);
    for (const std::optional<double>& budget : budgets) {
      for (const Objective objective :
           {Objective::minimize_power, Objective::maximize_power}) {
        for (const power::ModelKind model :
             {power::ModelKind::extended, power::ModelKind::output_only}) {
          for (const bool restrict_instance : {false, true}) {
            OptimizeOptions options;
            options.objective = objective;
            options.model = model;
            options.max_circuit_delay_increase = budget;
            options.restrict_to_instance = restrict_instance;

            Netlist engine_nl = original;
            const OptimizeReport report =
                optimize(engine_nl, stats, tech, options);

            std::vector<std::string> seed_keys;
            const GreedySeed seed =
                table_greedy(original, stats, tech, options, &seed_keys);

            EXPECT_EQ(seed.rejected_delay,
                      report.configs_rejected_by_delay);
            EXPECT_EQ(seed.rejected_instance,
                      report.configs_rejected_by_instance);
            double seed_power = 0.0;
            const IncrementalScorer scorer(original, stats, tech, model);
            for (GateId g : scorer.topo_order()) {
              seed_power +=
                  scorer.table(g).power[static_cast<std::size_t>(
                      seed.configs[static_cast<std::size_t>(g)])];
            }
            EXPECT_EQ(seed_power, report.model_power_after);
            for (GateId g = 0; g < original.gate_count(); ++g) {
              EXPECT_EQ(seed_keys[static_cast<std::size_t>(g)],
                        engine_nl.gate(g).config.canonical_key())
                  << "gate " << g;
            }
          }
        }
      }
    }
  }
}

TEST(AnnealEngine, MeetsOrBeatsGreedyAtEqualDelayBudgets) {
  const Tech tech;
  std::vector<Netlist> circuits;
  circuits.push_back(benchgen::ripple_carry_adder(lib(), 8));
  circuits.push_back(
      benchgen::build_benchmark(lib(), benchgen::suite_entry("decod")));
  int strictly_better = 0;
  for (const Netlist& original : circuits) {
    const auto stats = scenario_a(original, 7);
    for (const double budget : {0.0, 0.1}) {
      OptimizeOptions greedy;
      greedy.max_circuit_delay_increase = budget;
      Netlist greedy_nl = original;
      const OptimizeReport greedy_report =
          optimize(greedy_nl, stats, tech, greedy);

      OptimizeOptions anneal = greedy;
      anneal.engine = Engine::anneal;
      Netlist anneal_nl = original;
      const OptimizeReport anneal_report =
          optimize(anneal_nl, stats, tech, anneal);

      // Domination is by construction (the search starts at the greedy
      // solution and never commits a worse true objective).
      EXPECT_LE(anneal_report.model_power_after,
                greedy_report.model_power_after);
      if (anneal_report.model_power_after <
          greedy_report.model_power_after) {
        ++strictly_better;
      }
      ASSERT_TRUE(anneal_report.anneal.has_value());
      EXPECT_EQ(anneal_report.anneal->greedy_power,
                greedy_report.model_power_after);
      EXPECT_EQ(anneal_report.anneal->final_power,
                anneal_report.model_power_after);

      // The ceilings hold on the committed netlist, end to end.
      const delay::CircuitDelay before = delay::circuit_delay(original, tech);
      const std::vector<double> after =
          delay::circuit_delay(anneal_nl, tech).net_arrival;
      for (const NetId po : original.primary_outputs()) {
        EXPECT_LE(after[static_cast<std::size_t>(po)],
                  before.net_arrival[static_cast<std::size_t>(po)] *
                          (1.0 + budget) +
                      1e-15);
      }
    }
  }
  // At least one pinned circuit/budget pair must show a real win, or the
  // annealing layer is dead weight.
  EXPECT_GT(strictly_better, 0);
}

TEST(AnnealEngine, UnconstrainedMatchesPerGateOptimum) {
  // Without a delay budget the objective is separable, so the greedy
  // per-gate optimum is the global one — annealing must tie it exactly.
  const Tech tech;
  Netlist greedy_nl = benchgen::ripple_carry_adder(lib(), 6);
  Netlist anneal_nl = greedy_nl;
  const auto stats = uniform_stats(greedy_nl, 0.5, 3e5);
  const OptimizeReport greedy_report = optimize(greedy_nl, stats, tech);
  OptimizeOptions options;
  options.engine = Engine::anneal;
  const OptimizeReport anneal_report =
      optimize(anneal_nl, stats, tech, options);
  EXPECT_EQ(anneal_report.model_power_after, greedy_report.model_power_after);
}

TEST(AnnealEngine, DeterministicPerSeedAndByteStableAcrossJobs) {
  // Same seed => byte-identical batch JSON, whatever the circuit-level
  // parallelism; a different anneal seed is a different (valid) search.
  const auto batch_json = [&](int jobs, std::uint64_t anneal_seed) {
    const CellLibrary library = CellLibrary::standard();
    const Tech tech;
    std::vector<BatchCircuit> batch;
    for (const std::string& name : benchgen::classic_names()) {
      const auto logic =
          netlist::read_blif_logic_string(benchgen::classic_blif(name), name);
      batch.push_back(make_scenario_circuit(
          mapper::map_network(logic, library), 'A', /*master_seed=*/1));
    }
    BatchOptions options;
    options.jobs = jobs;
    options.opt.engine = Engine::anneal;
    options.opt.max_circuit_delay_increase = 0.05;
    options.opt.anneal.seed = anneal_seed;
    const BatchReport report =
        BatchOptimizer(library, tech, options).run(batch);
    BatchJsonOptions json;
    json.include_timing = false;
    json.include_cache_stats = false;
    std::ostringstream out;
    write_batch_json(batch, report, options, out, json);
    return out.str();
  };
  const std::string serial = batch_json(1, 1);
  EXPECT_EQ(serial, batch_json(1, 1));
  EXPECT_EQ(serial, batch_json(4, 1));
  EXPECT_NE(serial, batch_json(1, 2));
  EXPECT_NE(serial.find("\"engine\": \"anneal\""), std::string::npos);
}

TEST(AnnealEngine, CancellationLeavesNetlistUntouched) {
  const Tech tech;
  Netlist nl = benchgen::ripple_carry_adder(lib(), 8);
  std::vector<std::string> original_keys;
  for (GateId g = 0; g < nl.gate_count(); ++g) {
    original_keys.push_back(nl.gate(g).config.canonical_key());
  }
  OptimizeOptions options;
  options.engine = Engine::anneal;
  options.max_circuit_delay_increase = 0.1;
  options.cancel = util::CancellationToken::cancellable();
  options.cancel.request_cancel();
  EXPECT_THROW(optimize(nl, uniform_stats(nl, 0.5, 3e5), tech, options),
               util::Cancelled);
  for (GateId g = 0; g < nl.gate_count(); ++g) {
    EXPECT_EQ(nl.gate(g).config.canonical_key(),
              original_keys[static_cast<std::size_t>(g)]);
  }
}

TEST(DelayBudgetOption, UnsetAndZeroAreDistinctAndNegativeRejected) {
  // The satellite regression: unset must run the parallel catalog engine
  // with no rejections; 0.0 is a legitimate zero-slack budget (reference
  // fallback); invalid values throw instead of silently toggling.
  const Tech tech;
  const auto run = [&](OptimizeOptions options) {
    Netlist nl = benchgen::ripple_carry_adder(lib(), 6);
    return optimize(nl, uniform_stats(nl, 0.5, 3e5), tech, options);
  };

  OptimizeOptions unset;
  EXPECT_FALSE(unset.max_circuit_delay_increase.has_value());
  const OptimizeReport unconstrained = run(unset);
  EXPECT_EQ(unconstrained.engine_used, Engine::catalog);
  EXPECT_EQ(unconstrained.configs_rejected_by_delay, 0);

  OptimizeOptions zero;
  zero.max_circuit_delay_increase = 0.0;
  const OptimizeReport constrained = run(zero);
  EXPECT_EQ(constrained.engine_used, Engine::reference);
  EXPECT_EQ(constrained.threads_used, 1);
  // A zero-slack budget constrains for real on this circuit.
  EXPECT_GE(constrained.model_power_after, unconstrained.model_power_after);

  OptimizeOptions negative;
  negative.max_circuit_delay_increase = -1.0;
  EXPECT_THROW(run(negative), Error);
  OptimizeOptions infinite;
  infinite.max_circuit_delay_increase =
      std::numeric_limits<double>::infinity();
  EXPECT_THROW(run(infinite), Error);
}

TEST(EngineRecording, ReportsTheEngineAndThreadsActuallyUsed) {
  const Tech tech;
  const Netlist original = benchgen::ripple_carry_adder(lib(), 4);
  const auto stats = uniform_stats(original, 0.5, 3e5);

  OptimizeOptions catalog2;
  catalog2.threads = 2;
  Netlist a = original;
  const OptimizeReport rc = optimize(a, stats, tech, catalog2);
  EXPECT_EQ(rc.engine_used, Engine::catalog);
  EXPECT_EQ(rc.threads_used, 2);
  EXPECT_FALSE(rc.anneal.has_value());

  // The routing bug the satellite fixed: a delay-budgeted catalog
  // request is downgraded to the sequential reference engine, and the
  // report now records that instead of consumers re-inferring it.
  OptimizeOptions downgraded = catalog2;
  downgraded.max_circuit_delay_increase = 0.0;
  Netlist b = original;
  const OptimizeReport rr = optimize(b, stats, tech, downgraded);
  EXPECT_EQ(rr.engine_used, Engine::reference);
  EXPECT_EQ(rr.threads_used, 1);

  OptimizeOptions anneal;
  anneal.engine = Engine::anneal;
  anneal.threads = 4;  // ignored: the search itself is serial
  Netlist c = original;
  const OptimizeReport ra = optimize(c, stats, tech, anneal);
  EXPECT_EQ(ra.engine_used, Engine::anneal);
  EXPECT_EQ(ra.threads_used, 1);
  EXPECT_TRUE(ra.anneal.has_value());

  EXPECT_STREQ(engine_name(Engine::catalog), "catalog");
  EXPECT_STREQ(engine_name(Engine::reference), "reference");
  EXPECT_STREQ(engine_name(Engine::anneal), "anneal");
}

}  // namespace
}  // namespace tr::opt
