// Tests for the replicated Monte-Carlo simulation engine: thread-count
// invariance (bit-identical summaries), replicate-seed independence,
// confidence-interval behaviour, the early-stop mode and truncation
// accounting (DESIGN.md Sec. 8.2).

#include <gtest/gtest.h>

#include <set>

#include "benchgen/generators.hpp"
#include "celllib/library.hpp"
#include "opt/scenario.hpp"
#include "sim/monte_carlo.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace tr::sim {
namespace {

using boolfn::SignalStats;
using celllib::CellLibrary;
using celllib::Tech;
using netlist::NetId;
using netlist::Netlist;

CellLibrary& lib() {
  static CellLibrary instance = CellLibrary::standard();
  return instance;
}

MonteCarloOptions small_options(std::uint64_t seed, int replications) {
  MonteCarloOptions mc;
  mc.sim.seed = seed;
  mc.sim.measure_time = 4e-4;
  mc.sim.warmup_time = 1e-5;
  mc.replications = replications;
  return mc;
}

void expect_estimates_identical(const Estimate& a, const Estimate& b) {
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.stddev, b.stddev);
  EXPECT_EQ(a.sem, b.sem);
  EXPECT_EQ(a.ci95, b.ci95);
  EXPECT_EQ(a.count, b.count);
}

void expect_summaries_identical(const SimSummary& a, const SimSummary& b) {
  expect_estimates_identical(a.energy, b.energy);
  expect_estimates_identical(a.power, b.power);
  expect_estimates_identical(a.output_node_energy, b.output_node_energy);
  expect_estimates_identical(a.internal_node_energy, b.internal_node_energy);
  expect_estimates_identical(a.pi_energy, b.pi_energy);
  expect_estimates_identical(a.gate_energy, b.gate_energy);
  ASSERT_EQ(a.per_gate_energy.size(), b.per_gate_energy.size());
  for (std::size_t g = 0; g < a.per_gate_energy.size(); ++g) {
    expect_estimates_identical(a.per_gate_energy[g], b.per_gate_energy[g]);
  }
  ASSERT_EQ(a.nets.size(), b.nets.size());
  for (std::size_t n = 0; n < a.nets.size(); ++n) {
    expect_estimates_identical(a.nets[n].prob, b.nets[n].prob);
    expect_estimates_identical(a.nets[n].density, b.nets[n].density);
  }
  EXPECT_EQ(a.replications, b.replications);
  EXPECT_EQ(a.truncated_replications, b.truncated_replications);
  EXPECT_EQ(a.total_events, b.total_events);
  EXPECT_EQ(a.target_reached, b.target_reached);
  EXPECT_EQ(a.replicate_energy, b.replicate_energy);
}

TEST(MonteCarlo, SummaryBitIdenticalAcrossThreadCounts) {
  // The acceptance criterion: the summary is a pure function of the
  // options, never of the worker count or scheduling.
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 3);
  const auto stats = opt::scenario_b(nl, 2e6);
  const Tech tech;
  MonteCarloOptions mc = small_options(41, 12);
  const SimEngine engine(nl, stats, tech, mc.sim);

  mc.threads = 1;
  const SimSummary serial = monte_carlo(engine, mc);
  for (int threads : {2, 4, 7}) {
    mc.threads = threads;
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    expect_summaries_identical(serial, monte_carlo(engine, mc));
  }
}

TEST(MonteCarlo, ReplicateStreamsAreIndependent) {
  // Every replicate must see its own input waveforms: with a continuous
  // event-time distribution, two identical energies would mean two
  // identical streams.
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 2);
  const auto stats = opt::scenario_b(nl, 2e6);
  const Tech tech;
  const SimSummary summary =
      monte_carlo(nl, stats, tech, small_options(7, 24));
  ASSERT_EQ(summary.replicate_energy.size(), 24u);
  const std::set<double> distinct(summary.replicate_energy.begin(),
                                  summary.replicate_energy.end());
  EXPECT_EQ(distinct.size(), summary.replicate_energy.size());
  for (double e : summary.replicate_energy) EXPECT_GT(e, 0.0);
}

TEST(MonteCarlo, DeriveStreamDecorrelatesSeedsAndStreams) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t seed : {1ULL, 2ULL, 999ULL}) {
    for (std::uint64_t k = 0; k < 64; ++k) {
      seen.insert(Rng::derive_stream(seed, k));
    }
    // Stream 0 must not collapse onto the master seed itself.
    EXPECT_NE(Rng::derive_stream(seed, 0), seed);
  }
  EXPECT_EQ(seen.size(), 3u * 64u);
}

TEST(MonteCarlo, MeanMatchesReplicateSample) {
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 2);
  const auto stats = opt::scenario_b(nl, 2e6);
  const Tech tech;
  const SimSummary summary =
      monte_carlo(nl, stats, tech, small_options(11, 16));
  double sum = 0.0;
  for (double e : summary.replicate_energy) sum += e;
  EXPECT_NEAR(summary.energy.mean / (sum / 16.0), 1.0, 1e-12);
  EXPECT_GT(summary.energy.ci95, 0.0);
  EXPECT_GE(summary.energy.ci95, summary.energy.sem);  // t >= 1.96 > 1
  EXPECT_EQ(summary.replications, 16u);
  EXPECT_EQ(summary.truncated_replications, 0u);
}

TEST(MonteCarlo, UncertaintyShrinksWithMoreReplications) {
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 2);
  const auto stats = opt::scenario_b(nl, 2e6);
  const Tech tech;
  const SimSummary few = monte_carlo(nl, stats, tech, small_options(3, 8));
  const SimSummary many = monte_carlo(nl, stats, tech, small_options(3, 64));
  EXPECT_LT(many.energy.sem, few.energy.sem);
  EXPECT_LT(many.energy.ci95, few.energy.ci95);
  // The two estimates agree within their joint uncertainty.
  EXPECT_NEAR(many.energy.mean, few.energy.mean,
              few.energy.ci95 + many.energy.ci95);
}

TEST(MonteCarlo, EarlyStopReachesTargetDeterministically) {
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 2);
  const auto stats = opt::scenario_b(nl, 2e6);
  const Tech tech;
  MonteCarloOptions mc = small_options(19, 4);
  mc.target_rel_ci = 0.05;
  mc.batch_size = 4;
  mc.max_replications = 128;
  const SimEngine engine(nl, stats, tech, mc.sim);

  mc.threads = 1;
  const SimSummary serial = monte_carlo(engine, mc);
  EXPECT_TRUE(serial.target_reached);
  EXPECT_LE(serial.energy.ci95, mc.target_rel_ci * serial.energy.mean);
  EXPECT_LE(serial.replications, 128u);

  // The stopping decision is part of the determinism contract: batch
  // boundaries are an option, not the thread count.
  mc.threads = 4;
  expect_summaries_identical(serial, monte_carlo(engine, mc));
}

TEST(MonteCarlo, EarlyStopHonoursReplicationCap) {
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 2);
  const auto stats = opt::scenario_b(nl, 2e6);
  const Tech tech;
  MonteCarloOptions mc = small_options(23, 4);
  mc.target_rel_ci = 1e-6;  // unreachably tight
  mc.batch_size = 4;
  mc.max_replications = 12;
  const SimSummary summary = monte_carlo(nl, stats, tech, mc);
  EXPECT_FALSE(summary.target_reached);
  EXPECT_EQ(summary.replications, 12u);
}

TEST(MonteCarlo, TruncatedReplicationsAreCounted) {
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 3);
  const auto stats = opt::scenario_b(nl, 2e6);
  const Tech tech;
  MonteCarloOptions mc = small_options(29, 6);
  mc.sim.max_events = 50;  // far below the ~hundreds of toggles per window
  const SimSummary summary = monte_carlo(nl, stats, tech, mc);
  EXPECT_EQ(summary.truncated_replications, 6u);
}

TEST(MonteCarlo, ValidatesOptions) {
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 2);
  const auto stats = opt::scenario_b(nl, 2e6);
  const Tech tech;
  MonteCarloOptions mc = small_options(1, 0);
  EXPECT_THROW(monte_carlo(nl, stats, tech, mc), Error);
  mc = small_options(1, 8);
  mc.target_rel_ci = 0.1;
  mc.max_replications = 4;  // below the first batch
  EXPECT_THROW(monte_carlo(nl, stats, tech, mc), Error);
}

}  // namespace
}  // namespace tr::sim
