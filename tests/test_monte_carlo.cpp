// Tests for the replicated Monte-Carlo simulation engine: thread-count
// invariance (bit-identical summaries), replicate-seed independence,
// confidence-interval behaviour, the early-stop mode and truncation
// accounting (DESIGN.md Sec. 8.2).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "benchgen/generators.hpp"
#include "celllib/library.hpp"
#include "opt/scenario.hpp"
#include "sim/bitsim.hpp"
#include "sim/monte_carlo.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace tr::sim {
namespace {

using boolfn::SignalStats;
using celllib::CellLibrary;
using celllib::Tech;
using netlist::NetId;
using netlist::Netlist;

CellLibrary& lib() {
  static CellLibrary instance = CellLibrary::standard();
  return instance;
}

MonteCarloOptions small_options(std::uint64_t seed, int replications) {
  MonteCarloOptions mc;
  mc.sim.seed = seed;
  mc.sim.measure_time = 4e-4;
  mc.sim.warmup_time = 1e-5;
  mc.replications = replications;
  return mc;
}

void expect_estimates_identical(const Estimate& a, const Estimate& b) {
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.stddev, b.stddev);
  EXPECT_EQ(a.sem, b.sem);
  EXPECT_EQ(a.ci95, b.ci95);
  EXPECT_EQ(a.count, b.count);
}

void expect_summaries_identical(const SimSummary& a, const SimSummary& b) {
  expect_estimates_identical(a.energy, b.energy);
  expect_estimates_identical(a.power, b.power);
  expect_estimates_identical(a.output_node_energy, b.output_node_energy);
  expect_estimates_identical(a.internal_node_energy, b.internal_node_energy);
  expect_estimates_identical(a.pi_energy, b.pi_energy);
  expect_estimates_identical(a.gate_energy, b.gate_energy);
  ASSERT_EQ(a.per_gate_energy.size(), b.per_gate_energy.size());
  for (std::size_t g = 0; g < a.per_gate_energy.size(); ++g) {
    expect_estimates_identical(a.per_gate_energy[g], b.per_gate_energy[g]);
  }
  ASSERT_EQ(a.nets.size(), b.nets.size());
  for (std::size_t n = 0; n < a.nets.size(); ++n) {
    expect_estimates_identical(a.nets[n].prob, b.nets[n].prob);
    expect_estimates_identical(a.nets[n].density, b.nets[n].density);
  }
  EXPECT_EQ(a.replications, b.replications);
  EXPECT_EQ(a.truncated_replications, b.truncated_replications);
  EXPECT_EQ(a.total_events, b.total_events);
  EXPECT_EQ(a.target_reached, b.target_reached);
  EXPECT_EQ(a.replicate_energy, b.replicate_energy);
}

TEST(MonteCarlo, SummaryBitIdenticalAcrossThreadCounts) {
  // The acceptance criterion: the summary is a pure function of the
  // options, never of the worker count or scheduling.
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 3);
  const auto stats = opt::scenario_b(nl, 2e6);
  const Tech tech;
  MonteCarloOptions mc = small_options(41, 12);
  const SimEngine engine(nl, stats, tech, mc.sim);

  mc.threads = 1;
  const SimSummary serial = monte_carlo(engine, mc);
  for (int threads : {2, 4, 7}) {
    mc.threads = threads;
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    expect_summaries_identical(serial, monte_carlo(engine, mc));
  }
}

TEST(MonteCarlo, ReplicateStreamsAreIndependent) {
  // Every replicate must see its own input waveforms: with a continuous
  // event-time distribution, two identical energies would mean two
  // identical streams.
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 2);
  const auto stats = opt::scenario_b(nl, 2e6);
  const Tech tech;
  const SimSummary summary =
      monte_carlo(nl, stats, tech, small_options(7, 24));
  ASSERT_EQ(summary.replicate_energy.size(), 24u);
  const std::set<double> distinct(summary.replicate_energy.begin(),
                                  summary.replicate_energy.end());
  EXPECT_EQ(distinct.size(), summary.replicate_energy.size());
  for (double e : summary.replicate_energy) EXPECT_GT(e, 0.0);
}

TEST(MonteCarlo, DeriveStreamDecorrelatesSeedsAndStreams) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t seed : {1ULL, 2ULL, 999ULL}) {
    for (std::uint64_t k = 0; k < 64; ++k) {
      seen.insert(Rng::derive_stream(seed, k));
    }
    // Stream 0 must not collapse onto the master seed itself.
    EXPECT_NE(Rng::derive_stream(seed, 0), seed);
  }
  EXPECT_EQ(seen.size(), 3u * 64u);
}

TEST(MonteCarlo, MeanMatchesReplicateSample) {
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 2);
  const auto stats = opt::scenario_b(nl, 2e6);
  const Tech tech;
  const SimSummary summary =
      monte_carlo(nl, stats, tech, small_options(11, 16));
  double sum = 0.0;
  for (double e : summary.replicate_energy) sum += e;
  EXPECT_NEAR(summary.energy.mean / (sum / 16.0), 1.0, 1e-12);
  EXPECT_GT(summary.energy.ci95, 0.0);
  EXPECT_GE(summary.energy.ci95, summary.energy.sem);  // t >= 1.96 > 1
  EXPECT_EQ(summary.replications, 16u);
  EXPECT_EQ(summary.truncated_replications, 0u);
}

TEST(MonteCarlo, UncertaintyShrinksWithMoreReplications) {
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 2);
  const auto stats = opt::scenario_b(nl, 2e6);
  const Tech tech;
  const SimSummary few = monte_carlo(nl, stats, tech, small_options(3, 8));
  const SimSummary many = monte_carlo(nl, stats, tech, small_options(3, 64));
  EXPECT_LT(many.energy.sem, few.energy.sem);
  EXPECT_LT(many.energy.ci95, few.energy.ci95);
  // The two estimates agree within their joint uncertainty.
  EXPECT_NEAR(many.energy.mean, few.energy.mean,
              few.energy.ci95 + many.energy.ci95);
}

TEST(MonteCarlo, EarlyStopReachesTargetDeterministically) {
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 2);
  const auto stats = opt::scenario_b(nl, 2e6);
  const Tech tech;
  MonteCarloOptions mc = small_options(19, 4);
  mc.target_rel_ci = 0.05;
  mc.batch_size = 4;
  mc.max_replications = 128;
  const SimEngine engine(nl, stats, tech, mc.sim);

  mc.threads = 1;
  const SimSummary serial = monte_carlo(engine, mc);
  EXPECT_TRUE(serial.target_reached);
  EXPECT_LE(serial.energy.ci95, mc.target_rel_ci * serial.energy.mean);
  EXPECT_LE(serial.replications, 128u);

  // The stopping decision is part of the determinism contract: batch
  // boundaries are an option, not the thread count.
  mc.threads = 4;
  expect_summaries_identical(serial, monte_carlo(engine, mc));
}

TEST(MonteCarlo, EarlyStopHonoursReplicationCap) {
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 2);
  const auto stats = opt::scenario_b(nl, 2e6);
  const Tech tech;
  MonteCarloOptions mc = small_options(23, 4);
  mc.target_rel_ci = 1e-6;  // unreachably tight
  mc.batch_size = 4;
  mc.max_replications = 12;
  const SimSummary summary = monte_carlo(nl, stats, tech, mc);
  EXPECT_FALSE(summary.target_reached);
  EXPECT_EQ(summary.replications, 12u);
}

TEST(MonteCarlo, TruncatedReplicationsAreCounted) {
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 3);
  const auto stats = opt::scenario_b(nl, 2e6);
  const Tech tech;
  MonteCarloOptions mc = small_options(29, 6);
  mc.sim.max_events = 50;  // far below the ~hundreds of toggles per window
  const SimSummary summary = monte_carlo(nl, stats, tech, mc);
  EXPECT_EQ(summary.truncated_replications, 6u);
}

// ---------------------------------------------------------------------------
// Bit-parallel replication routing (sim/bitsim.hpp): the packed route
// must be invisible in the estimates — bit-identical summaries against
// the scalar route for every batch shape, thread count and delay model
// it accepts, with truncation still surfacing loudly.
// ---------------------------------------------------------------------------

TEST(MonteCarlo, PackedAndScalarRoutesAreBitIdentical) {
  // 130 replications = two full 64-lane groups + a 2-replicate scalar
  // tail; the packed, scalar and automatic routes must agree bit for bit
  // at every thread count.
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 3);
  const auto stats = opt::scenario_b(nl, 2e6);
  const Tech tech;
  MonteCarloOptions mc = small_options(51, 130);
  mc.sim.delay_model = DelayModel::zero;
  const SimEngine engine(nl, stats, tech, mc.sim);
  ASSERT_TRUE(BitSim::supported(engine));

  mc.packing = PackingMode::scalar;
  mc.threads = 1;
  const SimSummary scalar = monte_carlo(engine, mc);
  for (int threads : {1, 4}) {
    mc.threads = threads;
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    mc.packing = PackingMode::packed;
    expect_summaries_identical(scalar, monte_carlo(engine, mc));
    mc.packing = PackingMode::automatic;
    expect_summaries_identical(scalar, monte_carlo(engine, mc));
  }
}

TEST(MonteCarlo, PackedUnitDelayRouteMatchesScalar) {
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 3);
  const auto stats = opt::scenario_b(nl, 2e6);
  const Tech tech;
  MonteCarloOptions mc = small_options(52, 64);
  mc.sim.delay_model = DelayModel::unit;
  mc.sim.unit_delay = 1e-9;
  const SimEngine engine(nl, stats, tech, mc.sim);
  ASSERT_TRUE(BitSim::supported(engine));

  mc.packing = PackingMode::scalar;
  const SimSummary scalar = monte_carlo(engine, mc);
  mc.packing = PackingMode::packed;
  mc.threads = 3;
  expect_summaries_identical(scalar, monte_carlo(engine, mc));
}

TEST(MonteCarlo, PackedEarlyStopKeepsTheDeterminismContract) {
  // Adaptive batches of 64 go packed; the stopping decision and the
  // summary must stay identical to the scalar route (batch boundaries
  // are an option, never a routing artefact).
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 2);
  const auto stats = opt::scenario_b(nl, 2e6);
  const Tech tech;
  MonteCarloOptions mc = small_options(53, 64);
  mc.sim.delay_model = DelayModel::zero;
  mc.target_rel_ci = 0.02;
  mc.batch_size = 64;
  mc.max_replications = 256;
  const SimEngine engine(nl, stats, tech, mc.sim);

  mc.packing = PackingMode::scalar;
  const SimSummary scalar = monte_carlo(engine, mc);
  mc.packing = PackingMode::automatic;
  mc.threads = 4;
  expect_summaries_identical(scalar, monte_carlo(engine, mc));
}

TEST(MonteCarlo, ForcedPackingRejectsUnsupportedEngines) {
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 2);
  const auto stats = opt::scenario_b(nl, 2e6);
  const Tech tech;
  MonteCarloOptions mc = small_options(54, 64);
  // Default options resolve to the Elmore model, which cannot be packed.
  const SimEngine engine(nl, stats, tech, mc.sim);
  ASSERT_FALSE(BitSim::supported(engine));
  mc.packing = PackingMode::packed;
  EXPECT_THROW(monte_carlo(engine, mc), Error);
  // Automatic silently stays scalar instead.
  mc.packing = PackingMode::automatic;
  EXPECT_EQ(monte_carlo(engine, mc).replications, 64u);
}

TEST(MonteCarlo, PackedReplicationBudgetShrinksTheInterval) {
  // The point of packing: 64x the replications at roughly flat cost per
  // word. 4 -> 256 replications must shrink the Student-t CI by roughly
  // sqrt(64); we assert a loose factor 3 on the pinned seed.
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 2);
  const auto stats = opt::scenario_b(nl, 2e6);
  const Tech tech;
  MonteCarloOptions mc = small_options(55, 4);
  mc.sim.delay_model = DelayModel::zero;
  const SimSummary few = monte_carlo(nl, stats, tech, mc);
  mc.replications = 256;
  const SimSummary many = monte_carlo(nl, stats, tech, mc);
  EXPECT_EQ(many.replications, 256u);
  EXPECT_LT(many.energy.ci95, few.energy.ci95 / 3.0);
  EXPECT_NEAR(many.energy.mean, few.energy.mean,
              few.energy.ci95 + many.energy.ci95);
}

TEST(MonteCarlo, PackedTruncationStaysLoudPerLane) {
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 3);
  const auto stats = opt::scenario_b(nl, 2e6);
  const Tech tech;
  MonteCarloOptions mc = small_options(56, 64);
  mc.sim.delay_model = DelayModel::zero;
  mc.packing = PackingMode::packed;

  // A budget under every lane's event count truncates all replicates.
  mc.sim.max_events = 50;
  EXPECT_EQ(monte_carlo(nl, stats, tech, mc).truncated_replications, 64u);

  // A budget between the lanes' natural counts truncates exactly the
  // lanes that exceed it — a single runaway replicate must be visible
  // without poisoning the other 63.
  mc.sim.max_events = 200'000'000;
  const SimEngine probe(nl, stats, tech, mc.sim);
  ReplicationScratch scratch;
  std::uint64_t lo = ~std::uint64_t{0}, hi = 0;
  std::size_t above = 0;
  std::uint64_t seeds[64];
  Rng::derive_streams(mc.sim.seed, 0, seeds, 64);
  std::uint64_t counts[64];
  for (int k = 0; k < 64; ++k) {
    counts[k] = probe.run(seeds[k], scratch).event_count;
    lo = std::min(lo, counts[k]);
    hi = std::max(hi, counts[k]);
  }
  ASSERT_LT(lo, hi);
  const std::uint64_t budget = (lo + hi) / 2;
  for (std::uint64_t c : counts) above += c > budget ? 1u : 0u;
  ASSERT_GT(above, 0u);
  ASSERT_LT(above, 64u);
  mc.sim.max_events = budget;
  const SimSummary mixed = monte_carlo(nl, stats, tech, mc);
  EXPECT_EQ(mixed.truncated_replications, above);
}

TEST(MonteCarlo, ValidatesOptions) {
  const Netlist nl = benchgen::ripple_carry_adder(lib(), 2);
  const auto stats = opt::scenario_b(nl, 2e6);
  const Tech tech;
  MonteCarloOptions mc = small_options(1, 0);
  EXPECT_THROW(monte_carlo(nl, stats, tech, mc), Error);
  mc = small_options(1, 8);
  mc.target_rel_ci = 0.1;
  mc.max_replications = 4;  // below the first batch
  EXPECT_THROW(monte_carlo(nl, stats, tech, mc), Error);
}

}  // namespace
}  // namespace tr::sim
