// Tests for GateTopology: pivoting (paper Fig. 4), exhaustive reordering
// enumeration vs the brute-force oracle, Table 2 configuration counts and
// layout-instance grouping.

#include <gtest/gtest.h>

#include <set>

#include "celllib/library.hpp"
#include "gategraph/gate_topology.hpp"
#include "util/error.hpp"

namespace tr::gategraph {
namespace {

SpNode T(int i) { return SpNode::transistor(i); }
SpNode S(std::vector<SpNode> c) { return SpNode::series(std::move(c)); }
SpNode P(std::vector<SpNode> c) { return SpNode::parallel(std::move(c)); }

GateTopology oai21() {
  // y = !((a0+a1) a2), pulldown = series(parallel(a0,a1), a2).
  return GateTopology::from_pulldown(S({P({T(0), T(1)}), T(2)}), 3);
}

TEST(GateTopology, ConstructionDerivesDualPullup) {
  const GateTopology g = oai21();
  EXPECT_EQ(g.transistor_count(), 6);
  EXPECT_EQ(g.internal_node_count(), 2);  // one N-side gap + one P-side gap
  EXPECT_EQ(g.pmos().kind, SpNode::Kind::parallel);
}

TEST(GateTopology, RejectsNonComplementaryNetworks) {
  // Pull-up that is NOT the complement of the pull-down.
  EXPECT_THROW(GateTopology(S({T(0), T(1)}), S({T(0), T(1)}), 2), Error);
}

TEST(GateTopology, OutputFunction) {
  const GateTopology g = oai21();
  const auto a0 = boolfn::TruthTable::variable(3, 0);
  const auto a1 = boolfn::TruthTable::variable(3, 1);
  const auto a2 = boolfn::TruthTable::variable(3, 2);
  EXPECT_EQ(g.output_function(), ~((a0 | a1) & a2));
}

TEST(GateTopology, PivotIsAnInvolution) {
  const GateTopology g = oai21();
  for (int gap = 0; gap < g.internal_node_count(); ++gap) {
    EXPECT_EQ(g.pivoted(gap).pivoted(gap).canonical_key(), g.canonical_key());
  }
  EXPECT_THROW(g.pivoted(99), Error);
  EXPECT_THROW(g.pivoted(-1), Error);
}

TEST(GateTopology, PivotPreservesFunction) {
  const GateTopology g = oai21();
  for (int gap = 0; gap < g.internal_node_count(); ++gap) {
    EXPECT_EQ(g.pivoted(gap).output_function(), g.output_function());
  }
}

TEST(GateTopology, PivotTransposesAdjacentSeriesElements) {
  // nand3 pull-down: series(t0, t1, t2), gaps 0 and 1.
  const GateTopology g = GateTopology::from_pulldown(S({T(0), T(1), T(2)}), 3);
  const GateTopology p0 = g.pivoted(0);
  EXPECT_EQ(p0.nmos().children[0].input, 1);
  EXPECT_EQ(p0.nmos().children[1].input, 0);
  EXPECT_EQ(p0.nmos().children[2].input, 2);
  const GateTopology p1 = g.pivoted(1);
  EXPECT_EQ(p1.nmos().children[0].input, 0);
  EXPECT_EQ(p1.nmos().children[1].input, 2);
  EXPECT_EQ(p1.nmos().children[2].input, 1);
}

TEST(GateTopology, Fig5GeneratesAllFourOai21Reorderings) {
  // Paper Fig. 5: the pivot exploration of y=(a1+a2)b yields exactly the
  // four configurations (A)-(D) of Fig. 1(a).
  const auto all = oai21().all_reorderings();
  EXPECT_EQ(all.size(), 4u);
  std::set<std::string> keys;
  for (const auto& config : all) keys.insert(config.canonical_key());
  EXPECT_EQ(keys.size(), 4u);
}

TEST(GateTopology, EnumerationStartsWithSelf) {
  const GateTopology g = oai21();
  const auto all = g.all_reorderings();
  ASSERT_FALSE(all.empty());
  EXPECT_EQ(all.front().canonical_key(), g.canonical_key());
}

TEST(GateTopology, SingleGapGateHasBothConfigs) {
  // nand2: one internal node; the paper's literal pseudo-code would lose
  // the starting configuration (documented deviation).
  const GateTopology g = GateTopology::from_pulldown(S({T(0), T(1)}), 2);
  EXPECT_EQ(g.all_reorderings().size(), 2u);
}

TEST(GateTopology, InverterHasSingleConfig) {
  const GateTopology g = GateTopology::from_pulldown(T(0), 1);
  EXPECT_EQ(g.internal_node_count(), 0);
  EXPECT_EQ(g.all_reorderings().size(), 1u);
  EXPECT_EQ(g.reordering_count_formula(), 1u);
}

TEST(GateTopology, PivotEnumerationMatchesBruteForceOracle) {
  // The paper's recursive pivoting (Fig. 4) must generate *exactly* the
  // set of orderings the direct constructive enumeration produces
  // ([5] proves completeness; this is the reproduction of that proof).
  const std::vector<SpNode> pulldowns = {
      S({T(0), T(1)}),
      S({T(0), T(1), T(2)}),
      S({T(0), T(1), T(2), T(3)}),
      P({T(0), T(1), T(2)}),
      P({S({T(0), T(1)}), T(2)}),
      S({P({T(0), T(1)}), T(2)}),
      P({S({T(0), T(1)}), S({T(2), T(3)})}),
      S({P({T(0), T(1)}), P({T(2), T(3)})}),
      P({S({T(0), T(1)}), T(2), T(3)}),
      S({P({T(0), T(1)}), T(2), T(3)}),
      P({S({T(0), T(1)}), S({T(2), T(3)}), T(4)}),
      S({P({T(0), T(1)}), P({T(2), T(3)}), T(4)}),
      P({S({T(0), T(1), T(2)}), T(3)}),
  };
  for (const SpNode& pd : pulldowns) {
    const GateTopology g =
        GateTopology::from_pulldown(pd, max_input_plus_one(pd));
    std::set<std::string> pivot_keys, brute_keys;
    for (const auto& c : g.all_reorderings()) {
      EXPECT_TRUE(pivot_keys.insert(c.canonical_key()).second)
          << "pivot enumeration emitted a duplicate";
    }
    for (const auto& c : g.all_reorderings_brute()) {
      brute_keys.insert(c.canonical_key());
    }
    EXPECT_EQ(pivot_keys, brute_keys) << "for pulldown " << encode(pd);
    EXPECT_EQ(pivot_keys.size(), g.reordering_count_formula());
  }
}

TEST(GateTopology, Table2ConfigurationCounts) {
  // Paper Table 2 (#C column). nand3 = 6, aoi211 = 12, aoi221 = 24,
  // aoi222 = 48, oai21 = 4 and the aoi/oai duals. The scanned "nor4 = 18"
  // is an OCR artefact: a 4-stack has 4! = 24 orderings (DESIGN.md Sec. 3).
  const celllib::CellLibrary lib = celllib::CellLibrary::standard();
  const std::map<std::string, std::uint64_t> expected = {
      {"inv", 1},     {"nand2", 2},  {"nand3", 6},  {"nand4", 24},
      {"nor2", 2},    {"nor3", 6},   {"nor4", 24},  {"aoi21", 4},
      {"oai21", 4},   {"aoi22", 8},  {"oai22", 8},  {"aoi31", 12},
      {"oai31", 12},  {"aoi211", 12}, {"oai211", 12},
      {"aoi221", 24}, {"oai221", 24}, {"aoi222", 48}, {"oai222", 48},
      {"aoi32", 24},  {"oai32", 24},  {"aoi33", 72},  {"oai33", 72},
  };
  for (const auto& [name, count] : expected) {
    const auto& cell = lib.cell(name);
    EXPECT_EQ(cell.topology().reordering_count_formula(), count) << name;
    EXPECT_EQ(cell.topology().all_reorderings().size(), count) << name;
  }
}

TEST(GateTopology, InstanceGroupingOai21) {
  // Paper Sec. 5.1: oai21 needs two sea-of-gates instances, oai21[A]
  // covering configurations (A),(B) and oai21[B] covering (C),(D).
  const auto groups = group_by_instance(oai21().all_reorderings());
  EXPECT_EQ(groups.size(), 2u);
  for (const auto& [key, configs] : groups) {
    EXPECT_EQ(configs.size(), 2u);
  }
}

TEST(GateTopology, InstanceGroupingNand3) {
  // All 6 orderings of nand3 are input permutations of one layout.
  const GateTopology g = GateTopology::from_pulldown(S({T(0), T(1), T(2)}), 3);
  const auto groups = group_by_instance(g.all_reorderings());
  EXPECT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups.begin()->second.size(), 6u);
}

TEST(GateTopology, ReorderingsShareFunctionAndCounts) {
  const celllib::CellLibrary lib = celllib::CellLibrary::standard();
  for (const std::string& name : lib.cell_names()) {
    const auto& cell = lib.cell(name);
    const auto all = cell.topology().all_reorderings();
    for (const auto& config : all) {
      EXPECT_EQ(config.output_function(), cell.function()) << name;
      EXPECT_EQ(config.transistor_count(), cell.transistor_count()) << name;
      EXPECT_EQ(config.internal_node_count(),
                cell.topology().internal_node_count())
          << name;
    }
  }
}

}  // namespace
}  // namespace tr::gategraph
