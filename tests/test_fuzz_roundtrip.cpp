// Round-trip fuzz over seeded random multilevel netlists (ISSUE 4): for
// every generated circuit, the mapped-BLIF and structural-Verilog
// writers must reach a fixed point under write -> read -> write, the
// reparsed netlist must be structurally and logically identical, and
// activity files must preserve the statistics they carry.
//
// The same source builds two binaries: the default small tier (tier1
// label) and, with TR_FUZZ_LARGE defined, a multi-thousand-gate tier
// (test_fuzz_roundtrip_slow, `slow` label) that exercises the writers at
// batch scale.

#include <gtest/gtest.h>

#include <sstream>

#include "benchgen/generators.hpp"
#include "celllib/library.hpp"
#include "netlist/activity_io.hpp"
#include "netlist/blif.hpp"
#include "netlist/verilog.hpp"
#include "opt/scenario.hpp"
#include "util/rng.hpp"

namespace tr::netlist {
namespace {

using celllib::CellLibrary;

CellLibrary& lib() {
  static CellLibrary instance = CellLibrary::standard();
  return instance;
}

struct FuzzCase {
  int gates;
  int primary_inputs;
  std::uint64_t seed;
};

std::vector<FuzzCase> fuzz_cases() {
  std::vector<FuzzCase> cases;
#ifdef TR_FUZZ_LARGE
  const int sizes[] = {1500, 3000};
  const int seeds_per_size = 2;
#else
  const int sizes[] = {10, 40, 120};
  const int seeds_per_size = 5;
#endif
  for (const int gates : sizes) {
    for (int s = 0; s < seeds_per_size; ++s) {
      FuzzCase c;
      c.gates = gates;
      c.primary_inputs = 4 + gates / 8 % 40 + s;
      c.seed = 0x5eedULL * static_cast<std::uint64_t>(gates) +
               static_cast<std::uint64_t>(s);
      cases.push_back(c);
    }
  }
  return cases;
}

Netlist make_circuit(const FuzzCase& c) {
  benchgen::RandomCircuitSpec spec;
  spec.name = "fuzz_g" + std::to_string(c.gates) + "_s" +
              std::to_string(c.seed & 0xff);
  spec.target_gates = c.gates;
  spec.primary_inputs = c.primary_inputs;
  spec.seed = c.seed;
  return benchgen::random_circuit(lib(), spec);
}

/// Structural + logical equality. BLIF .gate lines do not carry instance
/// names (the reader resynthesises them), so `compare_instance_names`
/// is off for the BLIF round trip and on for Verilog.
void expect_same_structure(const Netlist& a, const Netlist& b,
                           bool compare_instance_names, std::uint64_t seed) {
  auto names = [&](const std::vector<NetId>& ids, const Netlist& nl) {
    std::vector<std::string> out;
    for (NetId id : ids) out.push_back(nl.net(id).name);
    return out;
  };
  EXPECT_EQ(a.name(), b.name());
  EXPECT_EQ(names(a.primary_inputs(), a), names(b.primary_inputs(), b));
  EXPECT_EQ(names(a.primary_outputs(), a), names(b.primary_outputs(), b));
  ASSERT_EQ(a.gate_count(), b.gate_count());
  for (GateId g = 0; g < a.gate_count(); ++g) {
    const GateInst& ga = a.gate(g);
    const GateInst& gb = b.gate(g);
    if (compare_instance_names) {
      EXPECT_EQ(ga.name, gb.name);
    }
    EXPECT_EQ(ga.cell, gb.cell);
    EXPECT_EQ(a.net(ga.output).name, b.net(gb.output).name);
    ASSERT_EQ(ga.inputs.size(), gb.inputs.size());
    for (std::size_t pin = 0; pin < ga.inputs.size(); ++pin) {
      EXPECT_EQ(a.net(ga.inputs[pin]).name, b.net(gb.inputs[pin]).name)
          << "gate " << g << " pin " << pin;
    }
  }
  Rng rng(seed);
  const std::size_t pis = a.primary_inputs().size();
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<bool> vec;
    for (std::size_t i = 0; i < pis; ++i) vec.push_back(rng.bernoulli(0.5));
    EXPECT_EQ(a.evaluate(vec), b.evaluate(vec));
  }
}

class FuzzRoundtrip : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(FuzzRoundtrip, BlifFixedPoint) {
  const Netlist original = make_circuit(GetParam());

  std::ostringstream first;
  write_blif(original, first);
  const Netlist reparsed =
      read_blif_mapped_string(first.str(), lib(), "fuzz-blif");
  std::ostringstream second;
  write_blif(reparsed, second);

  EXPECT_EQ(first.str(), second.str()) << "BLIF write->read->write moved";
  expect_same_structure(original, reparsed, /*compare_instance_names=*/false,
                        GetParam().seed ^ 0xb11f);
}

TEST_P(FuzzRoundtrip, VerilogFixedPoint) {
  const Netlist original = make_circuit(GetParam());

  std::ostringstream first;
  write_verilog(original, first);
  std::istringstream in(first.str());
  const Netlist reparsed = read_verilog(lib(), in, "fuzz-verilog");
  std::ostringstream second;
  write_verilog(reparsed, second);

  EXPECT_EQ(first.str(), second.str()) << "Verilog write->read->write moved";
  expect_same_structure(original, reparsed, /*compare_instance_names=*/true,
                        GetParam().seed ^ 0x7e12);
}

TEST_P(FuzzRoundtrip, ActivityPreserved) {
  const Netlist nl = make_circuit(GetParam());
  const auto original = opt::scenario_a(nl, GetParam().seed ^ 0xac7);

  std::vector<boolfn::SignalStats> net_stats(
      static_cast<std::size_t>(nl.net_count()));
  for (const auto& [id, s] : original) {
    net_stats[static_cast<std::size_t>(id)] = s;
  }
  std::ostringstream first;
  write_activity(nl, net_stats, first);

  std::istringstream in(first.str());
  const auto reloaded = read_activity(nl, in);
  ASSERT_EQ(reloaded.size(), original.size());
  for (const auto& [id, s] : original) {
    ASSERT_TRUE(reloaded.contains(id));
    // The writer rounds to 6 fractional digits (probability) / 3
    // (density); the reparse must stay within that quantisation.
    EXPECT_NEAR(reloaded.at(id).prob, s.prob, 5e-7);
    EXPECT_NEAR(reloaded.at(id).density, s.density, 5e-4);
  }

  // And the text itself reaches a fixed point: re-serialising the
  // reloaded statistics reproduces the file byte for byte.
  std::vector<boolfn::SignalStats> reloaded_stats(
      static_cast<std::size_t>(nl.net_count()));
  for (const auto& [id, s] : reloaded) {
    reloaded_stats[static_cast<std::size_t>(id)] = s;
  }
  std::ostringstream second;
  write_activity(nl, reloaded_stats, second);
  EXPECT_EQ(first.str(), second.str()) << "activity write->read->write moved";
}

INSTANTIATE_TEST_SUITE_P(
    Seeded, FuzzRoundtrip, ::testing::ValuesIn(fuzz_cases()),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      return "g" + std::to_string(info.param.gates) + "_i" +
             std::to_string(info.param.primary_inputs) + "_s" +
             std::to_string(info.param.seed & 0xffff);
    });

}  // namespace
}  // namespace tr::netlist
