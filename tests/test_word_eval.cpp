// Word-parallel truth-table evaluation (boolfn/word_eval.hpp): the
// Shannon lane evaluator, support probing and compaction are pinned
// against the scalar TruthTable semantics exhaustively over every
// variable count the simulation hot path stores as a single word, plus
// the batch seed fan-out backing the bit-parallel simulation lane.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "boolfn/truth_table.hpp"
#include "boolfn/word_eval.hpp"
#include "util/rng.hpp"

namespace {

using tr::Rng;
using tr::boolfn::TruthTable;
using tr::boolfn::eval_lanes;
using tr::boolfn::word_compact;
using tr::boolfn::word_full_mask;
using tr::boolfn::word_support;

/// The function word under test, masked to its n-variable extent.
std::uint64_t random_fn(Rng& rng, int n) {
  return rng.next_u64() & word_full_mask(n);
}

TEST(WordEval, FullMaskMatchesMintermCount) {
  for (int n = 0; n <= 6; ++n) {
    const std::uint64_t minterms = std::uint64_t{1} << (std::uint64_t{1} << n);
    if (n == 6) {
      EXPECT_EQ(word_full_mask(6), ~std::uint64_t{0});
    } else {
      EXPECT_EQ(word_full_mask(n), minterms - 1) << "n=" << n;
    }
  }
}

TEST(WordEval, LanesMatchScalarEvaluationExhaustively) {
  Rng rng(0xe7a1);
  for (int n = 0; n <= 6; ++n) {
    for (int rep = 0; rep < 64; ++rep) {
      std::uint64_t fn = random_fn(rng, n);
      if (rep == 0) fn = 0;
      if (rep == 1) fn = word_full_mask(n);
      // 64 random lane minterms, transposed into pin words.
      std::uint64_t minterm[64];
      std::uint64_t pins[6] = {0, 0, 0, 0, 0, 0};
      for (int k = 0; k < 64; ++k) {
        minterm[k] = n > 0 ? rng.next_below(std::uint64_t{1} << n) : 0;
        for (int j = 0; j < n; ++j) {
          pins[j] |= ((minterm[k] >> j) & 1u) << k;
        }
      }
      const std::uint64_t out = eval_lanes(fn, pins, n);
      for (int k = 0; k < 64; ++k) {
        EXPECT_EQ((out >> k) & 1u, (fn >> minterm[k]) & 1u)
            << "n=" << n << " rep=" << rep << " lane=" << k;
      }
    }
  }
}

TEST(WordEval, SupportMatchesTruthTable) {
  Rng rng(0x50bb);
  for (int n = 0; n <= 6; ++n) {
    for (int rep = 0; rep < 64; ++rep) {
      const std::uint64_t fn = random_fn(rng, n);
      std::vector<bool> bits;
      for (std::uint64_t m = 0; m < (std::uint64_t{1} << n); ++m) {
        bits.push_back(((fn >> m) & 1u) != 0);
      }
      const TruthTable table = TruthTable::from_bits(n, bits);
      std::uint32_t expected = 0;
      for (int var : table.support()) expected |= std::uint32_t{1} << var;
      EXPECT_EQ(word_support(fn, n), expected) << "n=" << n << " rep=" << rep;
    }
  }
}

TEST(WordEval, CompactionMatchesTruthTableAndPreservesEvaluation) {
  Rng rng(0xc033);
  for (int n = 1; n <= 6; ++n) {
    for (int rep = 0; rep < 64; ++rep) {
      // Force vacuous variables by composing a narrower function into a
      // random subset of the n positions.
      const std::uint32_t support_mask =
          static_cast<std::uint32_t>(rng.next_u64()) & ((1u << n) - 1);
      int vars[6];
      int k = 0;
      for (int j = 0; j < n; ++j) {
        if ((support_mask >> j) & 1u) vars[k++] = j;
      }
      const std::uint64_t narrow = random_fn(rng, k);
      std::uint64_t fn = 0;
      for (std::uint64_t m = 0; m < (std::uint64_t{1} << n); ++m) {
        std::uint64_t compact = 0;
        for (int i = 0; i < k; ++i) compact |= ((m >> vars[i]) & 1u) << i;
        fn |= ((narrow >> compact) & 1u) << m;
      }
      const std::uint32_t support = word_support(fn, n);
      EXPECT_EQ(support & ~support_mask, 0u);
      // Compacting onto the (possibly over-wide) embedding mask must
      // recover the narrow function exactly.
      EXPECT_EQ(word_compact(fn, n, support_mask), narrow)
          << "n=" << n << " rep=" << rep;
      // And the scalar TruthTable agrees on the true-support compaction.
      std::vector<bool> bits;
      for (std::uint64_t m = 0; m < (std::uint64_t{1} << n); ++m) {
        bits.push_back(((fn >> m) & 1u) != 0);
      }
      const TruthTable table = TruthTable::from_bits(n, bits);
      const TruthTable compacted = table.compacted(table.support());
      const std::uint64_t compact_fn = word_compact(fn, n, support);
      for (std::uint64_t m = 0; m < compacted.minterm_count(); ++m) {
        EXPECT_EQ(((compact_fn >> m) & 1u) != 0, compacted.value_at(m));
      }
    }
  }
}

TEST(WordEval, DeriveStreamsMatchesScalarDeriveStream) {
  const std::uint64_t seeds[] = {0, 1, 42, 0x9e3779b97f4a7c15ULL,
                                 ~std::uint64_t{0}};
  for (std::uint64_t seed : seeds) {
    for (std::uint64_t first : {std::uint64_t{0}, std::uint64_t{7},
                                std::uint64_t{64}, std::uint64_t{1} << 40}) {
      std::uint64_t batch[64];
      Rng::derive_streams(seed, first, batch, 64);
      for (std::uint64_t i = 0; i < 64; ++i) {
        EXPECT_EQ(batch[i], Rng::derive_stream(seed, first + i))
            << "seed=" << seed << " first=" << first << " i=" << i;
      }
    }
  }
}

}  // namespace
