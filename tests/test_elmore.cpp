// Tests for the Elmore RC delay model: closed forms for simple gates,
// the speed rule of thumb (critical input near the output is faster) and
// circuit-level static timing.

#include <gtest/gtest.h>

#include "benchgen/generators.hpp"
#include "celllib/library.hpp"
#include "delay/elmore.hpp"
#include "util/error.hpp"

namespace tr::delay {
namespace {

using celllib::CellLibrary;
using celllib::Tech;
using gategraph::GateGraph;

constexpr double k_factor = 0.69;

CellLibrary& lib() {
  static CellLibrary instance = CellLibrary::standard();
  return instance;
}

TEST(Elmore, InverterClosedForm) {
  const Tech tech;
  const GateGraph graph(lib().cell("inv").topology());
  const double load = 10e-15;
  const auto caps = celllib::node_capacitances(graph, tech, load);
  const GateDelays d = gate_delays(graph, caps, tech);
  ASSERT_EQ(d.pin_delay.size(), 1u);
  // Pull-down: tau = R_n * C_y; pull-up: R_p * C_y; worst = pull-up.
  const double c_y = caps[GateGraph::output_node];
  EXPECT_NEAR(d.pin_delay[0], k_factor * tech.r_p * c_y, 1e-15);
  EXPECT_DOUBLE_EQ(d.worst, d.pin_delay[0]);
}

TEST(Elmore, Nand2PinAsymmetry) {
  // nand2 pull-down stack: y - [a] - n - [b] - vss.
  // Pin a (next to output): discharges only C_y through R_a + R_b.
  // Pin b (next to rail): discharges C_y through both devices plus C_n
  // through R_b: strictly slower.
  const Tech tech;
  const GateGraph graph(lib().cell("nand2").topology());
  const auto caps = celllib::node_capacitances(graph, tech, 10e-15);
  const GateDelays d = gate_delays(graph, caps, tech);
  ASSERT_EQ(d.pin_delay.size(), 2u);

  const double c_y = caps[GateGraph::output_node];
  const double c_n = caps[3];
  // Pull-down through both N devices:
  const double tau_a = c_y * 2.0 * tech.r_n;
  const double tau_b = c_y * 2.0 * tech.r_n + c_n * tech.r_n;
  // Pull-up is parallel single P devices: tau_up = R_p * C_y.
  const double tau_up = tech.r_p * c_y;
  EXPECT_NEAR(d.pin_delay[0], k_factor * std::max(tau_a, tau_up), 1e-15);
  EXPECT_NEAR(d.pin_delay[1], k_factor * std::max(tau_b, tau_up), 1e-15);
  EXPECT_GT(d.pin_delay[1], d.pin_delay[0]);
}

TEST(Elmore, SpeedRuleOfThumb) {
  // Paper Sec. 5: "the critical transistor should always be placed near
  // the output terminal to obtain a fast gate". Reordering a nand3 so a
  // given input moves from the rail to the output side must reduce that
  // pin's delay.
  const Tech tech;
  const auto& cell = lib().cell("nand3");
  double best_pin0 = 1e9, worst_pin0 = -1.0;
  for (const auto& config : cell.topology().all_reorderings()) {
    const GateGraph graph(config);
    const auto caps = celllib::node_capacitances(graph, tech, 10e-15);
    const double d0 = gate_delays(graph, caps, tech).pin_delay[0];
    best_pin0 = std::min(best_pin0, d0);
    worst_pin0 = std::max(worst_pin0, d0);
  }
  EXPECT_GT(worst_pin0, best_pin0 * 1.05);
}

TEST(Elmore, LoadIncreasesDelay) {
  const Tech tech;
  const GateGraph graph(lib().cell("nor2").topology());
  const auto caps_small = celllib::node_capacitances(graph, tech, 5e-15);
  const auto caps_large = celllib::node_capacitances(graph, tech, 50e-15);
  EXPECT_GT(gate_delays(graph, caps_large, tech).worst,
            gate_delays(graph, caps_small, tech).worst);
}

TEST(Elmore, DelayValidatesArity) {
  const Tech tech;
  const GateGraph graph(lib().cell("inv").topology());
  EXPECT_THROW(gate_delays(graph, {1e-15}, tech), Error);
}

TEST(CircuitDelay, ChainAccumulates) {
  const Tech tech;
  netlist::Netlist nl(lib(), "chain");
  auto prev = nl.add_net("a");
  nl.mark_primary_input(prev);
  for (int i = 0; i < 5; ++i) {
    const auto next = nl.add_net("n" + std::to_string(i));
    nl.add_gate("u" + std::to_string(i), "inv", {prev}, next);
    prev = next;
  }
  nl.mark_primary_output(prev);
  const CircuitDelay cd = circuit_delay(nl, tech);
  EXPECT_GT(cd.critical_path, 0.0);
  // Arrival times must be strictly increasing along the chain.
  double last = -1.0;
  for (int i = 0; i < 5; ++i) {
    const double arr =
        cd.net_arrival[static_cast<std::size_t>(nl.find_net(
            "n" + std::to_string(i)))];
    EXPECT_GT(arr, last);
    last = arr;
  }
  EXPECT_DOUBLE_EQ(cd.critical_path, last);
}

TEST(CircuitDelay, AdderCriticalPathGrowsWithWidth) {
  const Tech tech;
  const auto rca4 = benchgen::ripple_carry_adder(lib(), 4);
  const auto rca8 = benchgen::ripple_carry_adder(lib(), 8);
  const double d4 = circuit_delay(rca4, tech).critical_path;
  const double d8 = circuit_delay(rca8, tech).critical_path;
  EXPECT_GT(d8, d4 * 1.5);  // carry chain roughly doubles
}

TEST(CircuitDelay, ReorderingAffectsCircuitDelay) {
  // Scrambling configurations changes the critical path (that is what
  // Table 3's D column measures).
  const Tech tech;
  auto nl = benchgen::ripple_carry_adder(lib(), 4);
  const double before = circuit_delay(nl, tech).critical_path;
  // Flip every gate to its "last" enumerated configuration.
  for (netlist::GateId g = 0; g < nl.gate_count(); ++g) {
    const auto configs = nl.gate(g).config.all_reorderings();
    nl.set_config(g, configs.back());
  }
  const double after = circuit_delay(nl, tech).critical_path;
  EXPECT_NE(before, after);
}

}  // namespace
}  // namespace tr::delay
