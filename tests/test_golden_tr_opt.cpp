// Golden-file regression for the tr_opt JSON output (ISSUE 4): the
// deterministic report for the four embedded classic circuits must stay
// byte-identical to the checked-in fixture, across runs and across
// worker counts at both parallelism levels.
//
// The test drives the exact library path the CLI uses (load classics ->
// map -> make_scenario_circuit -> BatchOptimizer -> write_batch_json
// with timing off), so a golden mismatch means the CLI's output contract
// changed. Intentional schema changes: regenerate with
//   TR_UPDATE_GOLDEN=1 ctest -R GoldenTrOpt
// and commit the refreshed tests/golden/ files with the change that
// caused them.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "benchgen/classic.hpp"
#include "celllib/library.hpp"
#include "mapper/mapper.hpp"
#include "netlist/blif.hpp"
#include "opt/batch.hpp"
#include "opt/batch_report.hpp"
#include "util/fault.hpp"

namespace tr::opt {
namespace {

using celllib::CellLibrary;
using celllib::Tech;

#ifndef TR_GOLDEN_DIR
#error "TR_GOLDEN_DIR must point at tests/golden (set by CMake)"
#endif

std::string golden_path(const std::string& name) {
  return std::string(TR_GOLDEN_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return {};
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// The tr_opt --suite classic --seed 1 --no-timing pipeline.
std::string classic_batch_json(int jobs, int threads_per_circuit,
                               BatchJsonOptions json) {
  const CellLibrary library = CellLibrary::standard();
  const Tech tech;
  std::vector<BatchCircuit> batch;
  for (const std::string& name : benchgen::classic_names()) {
    const auto logic =
        netlist::read_blif_logic_string(benchgen::classic_blif(name), name);
    batch.push_back(make_scenario_circuit(
        mapper::map_network(logic, library), 'A', /*master_seed=*/1));
  }
  BatchOptions options;
  options.jobs = jobs;
  options.threads_per_circuit = threads_per_circuit;
  const BatchReport report =
      BatchOptimizer(library, tech, options).run(batch);
  std::ostringstream out;
  json.include_timing = false;  // goldens are wall-clock-free by contract
  write_batch_json(batch, report, options, out, json);
  return out.str();
}

TEST(GoldenTrOpt, ClassicSuiteMatchesGolden) {
  const std::string current = classic_batch_json(1, 1, {});
  const std::string path = golden_path("tr_opt_classic.json");

  if (std::getenv("TR_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write golden " << path;
    out << current;
    GTEST_SKIP() << "golden regenerated at " << path;
  }

  const std::string golden = read_file(path);
  ASSERT_FALSE(golden.empty())
      << "missing golden " << path
      << " — run with TR_UPDATE_GOLDEN=1 to create it";
  EXPECT_EQ(golden, current)
      << "tr_opt JSON drifted from the golden; if intentional, regenerate "
         "with TR_UPDATE_GOLDEN=1 and commit the diff";
}

TEST(GoldenTrOpt, ByteStableAcrossWorkerCounts) {
  const std::string serial = classic_batch_json(1, 1, {});
  EXPECT_EQ(serial, classic_batch_json(4, 1, {}));
  EXPECT_EQ(serial, classic_batch_json(0, 1, {}));
  // Since schema v3 every circuit reports the gate-level worker count it
  // actually used, so a different --threads-per-circuit legitimately
  // changes exactly that one field — everything else (all decisions, all
  // numbers) must stay byte-identical.
  std::string threaded = classic_batch_json(2, 2, {});
  std::size_t replaced = 0;
  const std::string from = "\"threads\": 2";
  const std::string to = "\"threads\": 1";
  for (std::size_t pos = threaded.find(from); pos != std::string::npos;
       pos = threaded.find(from, pos + to.size())) {
    threaded.replace(pos, from.size(), to);
    ++replaced;
  }
  EXPECT_EQ(replaced, 4u);  // one per classic circuit
  EXPECT_EQ(serial, threaded);
}

TEST(GoldenTrOpt, ByteStableAcrossRepeatedRuns) {
  const std::string first = classic_batch_json(0, 1, {});
  EXPECT_EQ(first, classic_batch_json(0, 1, {}));
}

/// The classic pipeline with one circuit poisoned at the batch-worker
/// boundary: the error record (code/site/message) is deterministic, so
/// the whole report — survivors plus the errors index — is
/// golden-pinnable like the healthy run.
std::string poisoned_batch_json(int jobs) {
  const CellLibrary library = CellLibrary::standard();
  const Tech tech;
  std::vector<BatchCircuit> batch;
  for (const std::string& name : benchgen::classic_names()) {
    const auto logic =
        netlist::read_blif_logic_string(benchgen::classic_blif(name), name);
    batch.push_back(make_scenario_circuit(
        mapper::map_network(logic, library), 'A', /*master_seed=*/1));
  }
  BatchOptions options;
  options.jobs = jobs;
  options.threads_per_circuit = 1;  // fault context stays on the worker
  const util::fault::ScopedFault fault("batch.circuit", 1,
                                       util::fault::FaultKind::error, "cmp2");
  const BatchReport report =
      BatchOptimizer(library, tech, options).run(batch);
  BatchJsonOptions json;
  json.include_timing = false;
  std::ostringstream out;
  write_batch_json(batch, report, options, out, json);
  return out.str();
}

TEST(GoldenTrOpt, PoisonedBatchMatchesGolden) {
  const std::string current = poisoned_batch_json(1);
  const std::string path = golden_path("tr_opt_poisoned.json");

  if (std::getenv("TR_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write golden " << path;
    out << current;
    GTEST_SKIP() << "golden regenerated at " << path;
  }

  const std::string golden = read_file(path);
  ASSERT_FALSE(golden.empty())
      << "missing golden " << path
      << " — run with TR_UPDATE_GOLDEN=1 to create it";
  EXPECT_EQ(golden, current)
      << "poisoned-batch JSON drifted from the golden; if intentional, "
         "regenerate with TR_UPDATE_GOLDEN=1 and commit the diff";
}

TEST(GoldenTrOpt, PoisonedBatchByteStableAcrossWorkerCounts) {
  const std::string serial = poisoned_batch_json(1);
  EXPECT_EQ(serial, poisoned_batch_json(4));
}

TEST(GoldenTrOpt, GateConfigsToggleOnlyRemovesArrays) {
  BatchJsonOptions lean;
  lean.include_gate_configs = false;
  const std::string without = classic_batch_json(1, 1, lean);
  EXPECT_EQ(without.find("\"gate_configs\""), std::string::npos);
  const std::string with_configs = classic_batch_json(1, 1, {});
  EXPECT_NE(with_configs.find("\"gate_configs\""), std::string::npos);
}

}  // namespace
}  // namespace tr::opt
