#pragma once
// A GateTopology is one concrete transistor-level configuration of a
// static CMOS gate: an ordered pull-down (NMOS) SP tree plus an ordered
// pull-up (PMOS) SP tree over the same inputs. Reordering transistors
// (the paper's subject) = changing series child orders in either tree;
// the logic function never changes, only the internal nodes' exposure.
//
// The pull-up tree of a freshly built gate is the dual of the pull-down
// tree, but the two are reordered independently afterwards, so both are
// stored.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "gategraph/sp_tree.hpp"

namespace tr::gategraph {

class GateTopology {
public:
  /// Builds the canonical configuration of a gate from its pull-down
  /// network. The output function is the complement of the pull-down
  /// conduction function; the pull-up network is the dual tree.
  static GateTopology from_pulldown(SpNode nmos, int input_count);

  /// Builds from explicit pull-down and pull-up trees (used by pivoting).
  /// Validates that the networks are complementary.
  GateTopology(SpNode nmos, SpNode pmos, int input_count);

  const SpNode& nmos() const noexcept { return nmos_; }
  const SpNode& pmos() const noexcept { return pmos_; }
  int input_count() const noexcept { return input_count_; }

  /// Total transistors (2q in the paper's notation).
  int transistor_count() const;

  /// Internal nodes materialised by series gaps in both trees. This is
  /// the pivot index space of the paper's Fig. 4 algorithm: indices
  /// 0 .. internal_node_count()-1 first cover the pull-down tree's gaps in
  /// pre-order, then the pull-up tree's.
  int internal_node_count() const;

  /// Gate output logic function y = NOT(pull-down conduction).
  boolfn::TruthTable output_function() const;

  /// PIVOTING_ON_INTERNAL_NODE (paper Fig. 4): returns the configuration
  /// with the two series sub-networks adjacent to internal node
  /// `gap_index` transposed. Pivoting is an involution.
  GateTopology pivoted(int gap_index) const;

  /// Canonical configuration key: series order significant, parallel
  /// order canonicalised. Equal keys == same electrical configuration.
  std::string canonical_key() const;

  /// Layout-instance key: configurations with equal instance keys are
  /// input-permutations of each other and can be realised by the same
  /// sea-of-gates layout instance (paper Sec. 5.1).
  std::string instance_key() const;

  /// All distinct reorderings via the paper's recursive pivot exploration
  /// (Fig. 4). Includes this configuration itself. Deterministic order:
  /// discovery order with this configuration first.
  std::vector<GateTopology> all_reorderings() const;

  /// Brute-force oracle: direct construction of every series ordering.
  /// TEST-ONLY — exponential allocation behaviour; nothing under src/ or
  /// bench/ may call it. Tests assert that all_reorderings() (and the
  /// catalog enumeration built on it) matches this oracle, which is the
  /// guard that keeps the fast enumeration honest without death tests.
  std::vector<GateTopology> all_reorderings_brute() const;

  /// Closed-form count of distinct reorderings (Table 2's #C column):
  /// product over both trees of (k! per series node x child products).
  std::uint64_t reordering_count_formula() const;

  bool operator==(const GateTopology& rhs) const {
    return canonical_key() == rhs.canonical_key();
  }

private:
  SpNode nmos_;
  SpNode pmos_;
  int input_count_ = 0;
};

/// Groups configurations by layout instance key. The map is ordered so
/// iteration is deterministic; the vectors preserve input order.
std::map<std::string, std::vector<GateTopology>> group_by_instance(
    const std::vector<GateTopology>& configs);

}  // namespace tr::gategraph
