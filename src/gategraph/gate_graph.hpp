#pragma once
// Flat transistor-graph view of a GateTopology (paper Fig. 2a) and the
// H_nk / G_nk path functions of the power model (paper Fig. 2b).
//
// Node numbering is deterministic:
//   0 = vss, 1 = vdd, 2 = y (output), 3.. = internal nodes
// with internal nodes assigned in pre-order over the pull-down tree
// first, then the pull-up tree — matching GateTopology's pivot index
// space exactly (internal node k <-> graph node 3+k).

#include <string>
#include <vector>

#include "boolfn/truth_table.hpp"
#include "gategraph/gate_topology.hpp"
#include "gategraph/sp_tree.hpp"

namespace tr::gategraph {

/// One transistor edge. `node_out` is the output-side terminal, `node_rail`
/// the rail-side terminal (drain/source distinction is irrelevant for the
/// boolean path analysis but the orientation aids debugging and the delay
/// model).
struct Transistor {
  DeviceType type = DeviceType::nmos;
  int input = -1;      ///< gate-input index driving this device
  int node_out = -1;   ///< terminal closer to the output node
  int node_rail = -1;  ///< terminal closer to the rail
};

class GateGraph {
public:
  static constexpr int vss_node = 0;
  static constexpr int vdd_node = 1;
  static constexpr int output_node = 2;
  static constexpr int first_internal_node = 3;

  explicit GateGraph(const GateTopology& topology);

  int input_count() const noexcept { return input_count_; }
  int node_count() const noexcept { return node_count_; }
  int internal_node_count() const noexcept {
    return node_count_ - first_internal_node;
  }
  const std::vector<Transistor>& transistors() const noexcept {
    return transistors_;
  }

  /// Boolean function of all rail paths from `node` to vdd (H_nk when
  /// `node` is internal or the output). Implemented as the paper's
  /// depth-first minterm enumeration generalised to both rails: a simple
  /// path contributes the AND of the conduction literals of its
  /// transistors; rails are never traversed through.
  boolfn::TruthTable h_function(int node) const;

  /// Boolean function of all rail paths from `node` to vss (G_nk).
  boolfn::TruthTable g_function(int node) const;

  /// Number of transistor terminals incident to each node; the diffusion
  /// capacitance of a node is proportional to this count.
  std::vector<int> terminal_counts() const;

  /// Human-readable node name ("vss", "vdd", "y", "n0", "n1", ...).
  std::string node_name(int node) const;

private:
  boolfn::TruthTable path_function(int node, int rail) const;

  int input_count_ = 0;
  int node_count_ = 0;
  std::vector<Transistor> transistors_;
  /// adjacency_[v] = indices into transistors_ incident to node v.
  std::vector<std::vector<int>> adjacency_;
};

}  // namespace tr::gategraph
