#pragma once
// Series-parallel (SP) trees describing one pull network of a static CMOS
// gate (paper Sec. 4.3: "the gates of typical libraries can all be
// represented with this type of graphs").
//
// An SpNode is either a transistor leaf (carrying the index of the gate
// input that drives it), a series composition, or a parallel composition.
// *Series child order is significant*: children are listed from the
// output-side terminal towards the rail-side terminal, and each gap
// between two consecutive series children materialises one internal node
// of the transistor graph. Parallel child order is electrically
// irrelevant and is canonicalised away when encoding.

#include <cstdint>
#include <string>
#include <vector>

#include "boolfn/truth_table.hpp"

namespace tr::gategraph {

/// Transistor device type. N devices conduct when their input is 1,
/// P devices when it is 0.
enum class DeviceType : std::uint8_t { nmos, pmos };

/// One node of a series-parallel network tree.
struct SpNode {
  enum class Kind : std::uint8_t { transistor, series, parallel };

  Kind kind = Kind::transistor;
  /// For transistor leaves: index of the driving gate input.
  int input = -1;
  /// For series/parallel nodes: at least two children. Series children are
  /// ordered output-side first, rail-side last.
  std::vector<SpNode> children;

  /// Leaf constructor helper.
  static SpNode transistor(int input_index);
  /// Composite constructor helpers (flatten same-kind children, so
  /// series(series(a,b),c) == series(a,b,c)).
  static SpNode series(std::vector<SpNode> children);
  static SpNode parallel(std::vector<SpNode> children);

  bool is_leaf() const noexcept { return kind == Kind::transistor; }

  bool operator==(const SpNode& rhs) const;
};

/// Total number of transistor leaves in the tree.
int transistor_count(const SpNode& node);

/// Number of internal nodes the tree materialises: one per gap between
/// consecutive children of every series node (at any depth).
int internal_node_count(const SpNode& node);

/// Highest input index referenced plus one (0 for a tree with no leaves).
int max_input_plus_one(const SpNode& node);

/// The dual network: series and parallel swapped, leaves preserved.
/// The pull-up network of a complementary CMOS gate is the dual of its
/// pull-down network.
SpNode dual(const SpNode& node);

/// Conduction function of the network between its two terminals, over
/// `var_count` gate inputs. For DeviceType::nmos a leaf contributes the
/// positive literal of its input; for pmos the negative literal.
boolfn::TruthTable conduction_function(const SpNode& node, DeviceType type,
                                       int var_count);

/// Deterministic structural encoding. Series children keep their order;
/// parallel children are sorted by their own encodings, so two trees that
/// differ only in parallel child order encode identically.
/// Example: "S(T3,P(T1,T2))".
std::string encode(const SpNode& node);

/// Encoding with input indices anonymised by first occurrence during the
/// (canonicalised) traversal. Two configurations share an anonymised
/// encoding iff one is an input-pin permutation of the other — i.e. iff
/// they can be realised by the same sea-of-gates layout *instance*
/// (paper Sec. 5.1, e.g. oai21[A] vs oai21[B]).
std::string encode_anonymized(const SpNode& node);

/// Number of distinct series orderings of the tree (the closed form that
/// the pivot enumeration of paper Fig. 4 must reproduce):
///   transistor -> 1
///   parallel   -> product of child counts
///   series     -> k! * product of child counts   (k = child count)
/// Distinctness assumes distinct input indices on the leaves (true for
/// every library cell).
std::uint64_t ordering_count(const SpNode& node);

/// All distinct orderings of the tree by direct recursive construction
/// (series-child permutations x child orderings). Used as the brute-force
/// oracle against the pivot algorithm. Parallel children are emitted in
/// canonical (encoding-sorted) order.
std::vector<SpNode> enumerate_orderings_brute(const SpNode& node);

}  // namespace tr::gategraph
