#include "gategraph/gate_topology.hpp"

#include <set>

#include "util/error.hpp"

namespace tr::gategraph {

GateTopology GateTopology::from_pulldown(SpNode nmos, int input_count) {
  SpNode pmos = dual(nmos);
  return GateTopology(std::move(nmos), std::move(pmos), input_count);
}

GateTopology::GateTopology(SpNode nmos, SpNode pmos, int input_count)
    : nmos_(std::move(nmos)), pmos_(std::move(pmos)), input_count_(input_count) {
  require(input_count_ > 0, "GateTopology: input_count must be positive");
  require(max_input_plus_one(nmos_) <= input_count_,
          "GateTopology: pull-down tree references input beyond input_count");
  require(max_input_plus_one(pmos_) <= input_count_,
          "GateTopology: pull-up tree references input beyond input_count");
  // Complementary CMOS: the pull-up network must conduct exactly when the
  // pull-down network does not.
  const auto down = conduction_function(nmos_, DeviceType::nmos, input_count_);
  const auto up = conduction_function(pmos_, DeviceType::pmos, input_count_);
  require(up == ~down,
          "GateTopology: pull-up and pull-down networks are not complementary");
}

int GateTopology::transistor_count() const {
  return gategraph::transistor_count(nmos_) + gategraph::transistor_count(pmos_);
}

int GateTopology::internal_node_count() const {
  return gategraph::internal_node_count(nmos_) +
         gategraph::internal_node_count(pmos_);
}

boolfn::TruthTable GateTopology::output_function() const {
  return ~conduction_function(nmos_, DeviceType::nmos, input_count_);
}

namespace {
/// Walks the tree in pre-order; when the running gap counter hits zero at
/// a series gap, transposes the two adjacent children. Returns true once
/// the swap happened.
bool pivot_rec(SpNode& node, int& remaining) {
  if (node.is_leaf()) return false;
  if (node.kind == SpNode::Kind::series) {
    const int gaps = static_cast<int>(node.children.size()) - 1;
    if (remaining < gaps) {
      std::swap(node.children[static_cast<std::size_t>(remaining)],
                node.children[static_cast<std::size_t>(remaining) + 1]);
      return true;
    }
    remaining -= gaps;
  }
  for (SpNode& child : node.children) {
    if (pivot_rec(child, remaining)) return true;
  }
  return false;
}
}  // namespace

GateTopology GateTopology::pivoted(int gap_index) const {
  require(gap_index >= 0 && gap_index < internal_node_count(),
          "GateTopology::pivoted: gap index " + std::to_string(gap_index) +
              " out of range [0, " + std::to_string(internal_node_count()) +
              ")");
  GateTopology next(*this);
  int remaining = gap_index;
  if (!pivot_rec(next.nmos_, remaining)) {
    const bool done = pivot_rec(next.pmos_, remaining);
    TR_ASSERT(done);
  }
  return next;
}

std::string GateTopology::canonical_key() const {
  return encode(nmos_) + "|" + encode(pmos_);
}

std::string GateTopology::instance_key() const {
  return encode_anonymized(nmos_) + "|" + encode_anonymized(pmos_);
}

namespace {
/// PIVOTE_AND_SEARCH of paper Fig. 4: pivot every gap except the one we
/// arrived by (pivoting is an involution, so that would only undo);
/// record new configurations and recurse. `at` indexes into `out` rather
/// than holding a reference — the vector reallocates as it grows — and
/// freshly produced configurations are moved, never copied, so the
/// enumeration allocates exactly one GateTopology and one key string per
/// distinct configuration.
void pivot_and_search(std::size_t at, int arrived_by,
                      std::set<std::string>& visited,
                      std::vector<GateTopology>& out) {
  const int gaps = out[at].internal_node_count();
  for (int gap = 0; gap < gaps; ++gap) {
    if (gap == arrived_by) continue;
    GateTopology next = out[at].pivoted(gap);
    std::string key = next.canonical_key();
    if (!visited.insert(std::move(key)).second) continue;
    out.push_back(std::move(next));
    pivot_and_search(out.size() - 1, gap, visited, out);
  }
}
}  // namespace

std::vector<GateTopology> GateTopology::all_reorderings() const {
  // Deviation from the paper's pseudo-code (DESIGN.md Sec. 3): the
  // initial configuration is seeded into the visited set up front.
  // Fig. 4 only records configurations *produced by* a pivot, which
  // silently drops the starting point for gates whose pivot graph has no
  // cycle back to it (e.g. nand2 with a single internal node).
  std::vector<GateTopology> out;
  out.reserve(reordering_count_formula());
  std::set<std::string> visited;
  visited.insert(canonical_key());
  out.push_back(*this);
  pivot_and_search(0, -1, visited, out);
  return out;
}

std::vector<GateTopology> GateTopology::all_reorderings_brute() const {
  std::vector<GateTopology> out;
  std::set<std::string> seen;
  for (const SpNode& n : enumerate_orderings_brute(nmos_)) {
    for (const SpNode& p : enumerate_orderings_brute(pmos_)) {
      GateTopology config(n, p, input_count_);
      if (seen.insert(config.canonical_key()).second) {
        out.push_back(std::move(config));
      }
    }
  }
  return out;
}

std::uint64_t GateTopology::reordering_count_formula() const {
  return ordering_count(nmos_) * ordering_count(pmos_);
}

std::map<std::string, std::vector<GateTopology>> group_by_instance(
    const std::vector<GateTopology>& configs) {
  std::map<std::string, std::vector<GateTopology>> groups;
  for (const GateTopology& c : configs) groups[c.instance_key()].push_back(c);
  return groups;
}

}  // namespace tr::gategraph
