#include "gategraph/isomorphism.hpp"

#include <functional>
#include <string>
#include <utility>

#include "gategraph/gate_graph.hpp"
#include "util/error.hpp"

namespace tr::gategraph {

namespace {

/// SP tree annotated with the GateGraph node ids its series gaps
/// materialise. Gap ids are allocated exactly like GateGraph's
/// build_network: all gaps of a series node first, then the children left
/// to right (pre-order), pull-down tree before pull-up.
struct Annotated {
  const SpNode* node = nullptr;
  std::vector<int> gap_ids;  ///< k-1 graph node ids for a series node
  std::vector<Annotated> children;
  std::string shape;  ///< label-independent shape key for parallel pairing
};

Annotated annotate(const SpNode& node, int& next_node) {
  Annotated a;
  a.node = &node;
  a.shape = encode_anonymized(node);
  if (node.kind == SpNode::Kind::series) {
    for (std::size_t gap = 1; gap < node.children.size(); ++gap) {
      a.gap_ids.push_back(next_node++);
    }
  }
  a.children.reserve(node.children.size());
  for (const SpNode& child : node.children) {
    a.children.push_back(annotate(child, next_node));
  }
  return a;
}

/// Backtracking state: the partial input permutation (both directions)
/// and the gap pairs recorded so far.
struct MatchState {
  std::vector<int> sigma;      ///< rep_var -> config_var, -1 unset
  std::vector<int> sigma_inv;  ///< config_var -> rep_var, -1 unset
  std::vector<std::pair<int, int>> gap_pairs;  ///< (config_node, rep_node)
};

using Cont = std::function<bool()>;

bool match(const Annotated& rep, const Annotated& cfg, MatchState& st,
           const Cont& k);

/// Matches rep.children[idx..] against cfg children positionally.
bool match_seq(const Annotated& rep, const Annotated& cfg, std::size_t idx,
               MatchState& st, const Cont& k) {
  if (idx == rep.children.size()) return k();
  return match(rep.children[idx], cfg.children[idx], st, [&] {
    return match_seq(rep, cfg, idx + 1, st, k);
  });
}

/// Matches rep.children[idx..] against any unused cfg child of equal
/// shape (parallel composition: order is electrically irrelevant).
bool match_par(const Annotated& rep, const Annotated& cfg, std::size_t idx,
               std::vector<bool>& used, MatchState& st, const Cont& k) {
  if (idx == rep.children.size()) return k();
  for (std::size_t j = 0; j < cfg.children.size(); ++j) {
    if (used[j] || rep.children[idx].shape != cfg.children[j].shape) continue;
    used[j] = true;
    if (match(rep.children[idx], cfg.children[j], st,
              [&] { return match_par(rep, cfg, idx + 1, used, st, k); })) {
      return true;
    }
    used[j] = false;
  }
  return false;
}

bool match(const Annotated& rep, const Annotated& cfg, MatchState& st,
           const Cont& k) {
  const SpNode& rn = *rep.node;
  const SpNode& cn = *cfg.node;
  if (rn.kind != cn.kind) return false;

  if (rn.is_leaf()) {
    const std::size_t ri = static_cast<std::size_t>(rn.input);
    const std::size_t ci = static_cast<std::size_t>(cn.input);
    if (st.sigma[ri] == cn.input) return k();  // already bound consistently
    if (st.sigma[ri] != -1 || st.sigma_inv[ci] != -1) return false;
    st.sigma[ri] = cn.input;
    st.sigma_inv[ci] = rn.input;
    if (k()) return true;
    st.sigma[ri] = -1;
    st.sigma_inv[ci] = -1;
    return false;
  }

  if (rn.children.size() != cn.children.size()) return false;

  if (rn.kind == SpNode::Kind::series) {
    const std::size_t recorded = st.gap_pairs.size();
    for (std::size_t i = 0; i < rep.gap_ids.size(); ++i) {
      st.gap_pairs.emplace_back(cfg.gap_ids[i], rep.gap_ids[i]);
    }
    if (match_seq(rep, cfg, 0, st, k)) return true;
    st.gap_pairs.resize(recorded);
    return false;
  }

  std::vector<bool> used(cn.children.size(), false);
  return match_par(rep, cfg, 0, used, st, k);
}

}  // namespace

std::optional<ConfigIsomorphism> find_isomorphism(const GateTopology& rep,
                                                  const GateTopology& config) {
  if (rep.input_count() != config.input_count()) return std::nullopt;
  if (rep.internal_node_count() != config.internal_node_count()) {
    return std::nullopt;
  }
  const std::size_t inputs = static_cast<std::size_t>(rep.input_count());

  int next_rep = GateGraph::first_internal_node;
  const Annotated rep_nmos = annotate(rep.nmos(), next_rep);
  const Annotated rep_pmos = annotate(rep.pmos(), next_rep);
  int next_cfg = GateGraph::first_internal_node;
  const Annotated cfg_nmos = annotate(config.nmos(), next_cfg);
  const Annotated cfg_pmos = annotate(config.pmos(), next_cfg);
  TR_ASSERT(next_rep == next_cfg);

  MatchState st;
  st.sigma.assign(inputs, -1);
  st.sigma_inv.assign(inputs, -1);
  const bool found = match(rep_nmos, cfg_nmos, st, [&] {
    return match(rep_pmos, cfg_pmos, st, [] { return true; });
  });
  if (!found) return std::nullopt;

  ConfigIsomorphism iso;
  iso.var_perm = std::move(st.sigma);
  // Inputs absent from both trees (possible for hand-built topologies, not
  // library cells) are vacuous in every table; pair them in index order.
  std::size_t next_free = 0;
  for (std::size_t v = 0; v < inputs; ++v) {
    if (iso.var_perm[v] != -1) continue;
    while (st.sigma_inv[next_free] != -1) ++next_free;
    iso.var_perm[v] = static_cast<int>(next_free);
    st.sigma_inv[next_free] = static_cast<int>(v);
  }

  iso.node_remap.assign(static_cast<std::size_t>(next_cfg), -1);
  iso.node_remap[GateGraph::vss_node] = GateGraph::vss_node;
  iso.node_remap[GateGraph::vdd_node] = GateGraph::vdd_node;
  iso.node_remap[GateGraph::output_node] = GateGraph::output_node;
  for (const auto& [cfg_node, rep_node] : st.gap_pairs) {
    iso.node_remap[static_cast<std::size_t>(cfg_node)] = rep_node;
  }
  for (int mapped : iso.node_remap) TR_ASSERT(mapped != -1);
  return iso;
}

}  // namespace tr::gategraph
