#pragma once
// Parser for the textual SP-network encoding produced by encode():
//
//   tree     := leaf | composite
//   leaf     := "T" <input-index>
//   composite:= ("S" | "P") "(" tree ("," tree)+ ")"
//
// encode()/parse_sp_tree() round-trip exactly (modulo the canonical
// parallel-child sort that encode applies). Together with
// GateTopology::from_keys this lets optimized transistor configurations
// be serialised (netlist::write_config_sidecar) and restored — plain
// BLIF .gate lines cannot carry the ordering.

#include <string>
#include <string_view>

#include "gategraph/gate_topology.hpp"
#include "gategraph/sp_tree.hpp"

namespace tr::gategraph {

/// Parses one SP tree. Throws tr::Error on malformed input.
SpNode parse_sp_tree(std::string_view text);

/// Rebuilds a configuration from a canonical key
/// ("<nmos-tree>|<pmos-tree>", as produced by GateTopology::canonical_key).
/// Validates complementarity. `input_count` must cover all leaf indices.
GateTopology topology_from_key(std::string_view key, int input_count);

}  // namespace tr::gategraph
