#include "gategraph/sp_tree.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"

namespace tr::gategraph {

SpNode SpNode::transistor(int input_index) {
  require(input_index >= 0, "SpNode::transistor: negative input index");
  SpNode n;
  n.kind = Kind::transistor;
  n.input = input_index;
  return n;
}

namespace {
SpNode make_composite(SpNode::Kind kind, std::vector<SpNode> children) {
  require(children.size() >= 2,
          "SpNode: composite nodes need at least two children");
  SpNode n;
  n.kind = kind;
  // Flatten nested same-kind composites so that the tree is canonical in
  // depth: series(series(a,b),c) == series(a,b,c). This keeps the internal
  // node <-> series gap correspondence unambiguous.
  for (SpNode& child : children) {
    if (child.kind == kind) {
      for (SpNode& grandchild : child.children) {
        n.children.push_back(std::move(grandchild));
      }
    } else {
      n.children.push_back(std::move(child));
    }
  }
  return n;
}
}  // namespace

SpNode SpNode::series(std::vector<SpNode> children) {
  return make_composite(Kind::series, std::move(children));
}

SpNode SpNode::parallel(std::vector<SpNode> children) {
  return make_composite(Kind::parallel, std::move(children));
}

bool SpNode::operator==(const SpNode& rhs) const {
  if (kind != rhs.kind) return false;
  if (kind == Kind::transistor) return input == rhs.input;
  return children == rhs.children;
}

int transistor_count(const SpNode& node) {
  if (node.is_leaf()) return 1;
  int total = 0;
  for (const SpNode& c : node.children) total += transistor_count(c);
  return total;
}

int internal_node_count(const SpNode& node) {
  if (node.is_leaf()) return 0;
  int total = node.kind == SpNode::Kind::series
                  ? static_cast<int>(node.children.size()) - 1
                  : 0;
  for (const SpNode& c : node.children) total += internal_node_count(c);
  return total;
}

int max_input_plus_one(const SpNode& node) {
  if (node.is_leaf()) return node.input + 1;
  int mx = 0;
  for (const SpNode& c : node.children) mx = std::max(mx, max_input_plus_one(c));
  return mx;
}

SpNode dual(const SpNode& node) {
  if (node.is_leaf()) return node;
  SpNode d;
  d.kind = node.kind == SpNode::Kind::series ? SpNode::Kind::parallel
                                             : SpNode::Kind::series;
  d.children.reserve(node.children.size());
  for (const SpNode& c : node.children) d.children.push_back(dual(c));
  return d;
}

boolfn::TruthTable conduction_function(const SpNode& node, DeviceType type,
                                       int var_count) {
  using boolfn::TruthTable;
  if (node.is_leaf()) {
    TruthTable lit = TruthTable::variable(var_count, node.input);
    return type == DeviceType::nmos ? lit : ~lit;
  }
  if (node.kind == SpNode::Kind::series) {
    TruthTable f = TruthTable::one(var_count);
    for (const SpNode& c : node.children) {
      f &= conduction_function(c, type, var_count);
    }
    return f;
  }
  TruthTable f = TruthTable::zero(var_count);
  for (const SpNode& c : node.children) {
    f |= conduction_function(c, type, var_count);
  }
  return f;
}

std::string encode(const SpNode& node) {
  if (node.is_leaf()) return "T" + std::to_string(node.input);
  std::vector<std::string> parts;
  parts.reserve(node.children.size());
  for (const SpNode& c : node.children) parts.push_back(encode(c));
  if (node.kind == SpNode::Kind::parallel) {
    std::sort(parts.begin(), parts.end());
  }
  std::string out(node.kind == SpNode::Kind::series ? "S(" : "P(");
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += ',';
    out += parts[i];
  }
  out += ')';
  return out;
}

namespace {
void encode_anon_rec(const SpNode& node, std::map<int, int>& renumber,
                     std::string& out) {
  if (node.is_leaf()) {
    const auto [it, inserted] =
        renumber.emplace(node.input, static_cast<int>(renumber.size()));
    out += "T" + std::to_string(it->second);
    (void)inserted;
    return;
  }
  std::vector<const SpNode*> order;
  order.reserve(node.children.size());
  for (const SpNode& c : node.children) order.push_back(&c);
  if (node.kind == SpNode::Kind::parallel) {
    // Sort by *shape* (anonymised with a fresh scratch numbering) so the
    // traversal order itself is label-independent.
    std::vector<std::pair<std::string, const SpNode*>> keyed;
    keyed.reserve(order.size());
    for (const SpNode* c : order) {
      std::map<int, int> scratch;
      std::string key;
      encode_anon_rec(*c, scratch, key);
      keyed.emplace_back(std::move(key), c);
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    order.clear();
    for (auto& [key, child] : keyed) order.push_back(child);
  }
  out += node.kind == SpNode::Kind::series ? "S(" : "P(";
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (i > 0) out += ',';
    encode_anon_rec(*order[i], renumber, out);
  }
  out += ')';
}
}  // namespace

std::string encode_anonymized(const SpNode& node) {
  std::map<int, int> renumber;
  std::string out;
  encode_anon_rec(node, renumber, out);
  return out;
}

std::uint64_t ordering_count(const SpNode& node) {
  if (node.is_leaf()) return 1;
  std::uint64_t product = 1;
  for (const SpNode& c : node.children) product *= ordering_count(c);
  if (node.kind == SpNode::Kind::series) {
    std::uint64_t fact = 1;
    for (std::uint64_t k = 2; k <= node.children.size(); ++k) fact *= k;
    product *= fact;
  }
  return product;
}

std::vector<SpNode> enumerate_orderings_brute(const SpNode& node) {
  if (node.is_leaf()) return {node};

  // Orderings of each child, independently.
  std::vector<std::vector<SpNode>> child_orderings;
  child_orderings.reserve(node.children.size());
  for (const SpNode& c : node.children) {
    child_orderings.push_back(enumerate_orderings_brute(c));
  }

  // Cartesian product over child choices.
  std::vector<std::vector<SpNode>> combos{{}};
  for (const auto& options : child_orderings) {
    std::vector<std::vector<SpNode>> next;
    next.reserve(combos.size() * options.size());
    for (const auto& prefix : combos) {
      for (const SpNode& option : options) {
        std::vector<SpNode> extended = prefix;
        extended.push_back(option);
        next.push_back(std::move(extended));
      }
    }
    combos = std::move(next);
  }

  std::vector<SpNode> results;
  if (node.kind == SpNode::Kind::parallel) {
    results.reserve(combos.size());
    for (auto& combo : combos) {
      SpNode n;
      n.kind = node.kind;
      n.children = std::move(combo);
      results.push_back(std::move(n));
    }
    return results;
  }

  // Series: additionally permute the child order.
  for (auto& combo : combos) {
    std::vector<std::size_t> perm(combo.size());
    for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    do {
      SpNode n;
      n.kind = SpNode::Kind::series;
      n.children.reserve(combo.size());
      for (std::size_t i : perm) n.children.push_back(combo[i]);
      results.push_back(std::move(n));
    } while (std::next_permutation(perm.begin(), perm.end()));
  }
  return results;
}

}  // namespace tr::gategraph
