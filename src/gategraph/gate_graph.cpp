#include "gategraph/gate_graph.hpp"

#include "util/error.hpp"

namespace tr::gategraph {

namespace {
/// Recursively emits transistors for `node` spanning terminals
/// (`top` = output side, `bottom` = rail side). Series gaps allocate
/// internal node ids in pre-order via `next_node`.
void build_network(const SpNode& node, DeviceType type, int top, int bottom,
                   int& next_node, std::vector<Transistor>& out) {
  switch (node.kind) {
    case SpNode::Kind::transistor:
      out.push_back(Transistor{type, node.input, top, bottom});
      return;
    case SpNode::Kind::series: {
      // Children are ordered output-side first; allocate one internal node
      // per gap, left to right, before descending (pre-order).
      const std::size_t k = node.children.size();
      std::vector<int> terminals(k + 1);
      terminals[0] = top;
      for (std::size_t i = 1; i < k; ++i) terminals[i] = next_node++;
      terminals[k] = bottom;
      for (std::size_t i = 0; i < k; ++i) {
        build_network(node.children[i], type, terminals[i], terminals[i + 1],
                      next_node, out);
      }
      return;
    }
    case SpNode::Kind::parallel:
      for (const SpNode& child : node.children) {
        build_network(child, type, top, bottom, next_node, out);
      }
      return;
  }
  TR_ASSERT(false);
}
}  // namespace

GateGraph::GateGraph(const GateTopology& topology)
    : input_count_(topology.input_count()) {
  int next_node = first_internal_node;
  build_network(topology.nmos(), DeviceType::nmos, output_node, vss_node,
                next_node, transistors_);
  build_network(topology.pmos(), DeviceType::pmos, output_node, vdd_node,
                next_node, transistors_);
  node_count_ = next_node;
  TR_ASSERT(internal_node_count() == topology.internal_node_count());

  adjacency_.assign(static_cast<std::size_t>(node_count_), {});
  for (std::size_t t = 0; t < transistors_.size(); ++t) {
    adjacency_[static_cast<std::size_t>(transistors_[t].node_out)].push_back(
        static_cast<int>(t));
    adjacency_[static_cast<std::size_t>(transistors_[t].node_rail)].push_back(
        static_cast<int>(t));
  }
}

boolfn::TruthTable GateGraph::h_function(int node) const {
  return path_function(node, vdd_node);
}

boolfn::TruthTable GateGraph::g_function(int node) const {
  return path_function(node, vss_node);
}

boolfn::TruthTable GateGraph::path_function(int node, int rail) const {
  require(node >= 0 && node < node_count_,
          "GateGraph::path_function: node out of range");
  require(rail == vss_node || rail == vdd_node,
          "GateGraph::path_function: target must be a rail");
  using boolfn::TruthTable;

  TruthTable result = TruthTable::zero(input_count_);
  if (node == rail) return TruthTable::one(input_count_);

  // Depth-first enumeration of simple paths (paper Fig. 2b). `cube`
  // accumulates the conduction literals along the current path; reaching a
  // contradictory cube (constant zero) prunes the branch, which is what
  // collapses the paper's a1*~a1 minterms.
  std::vector<bool> visited(static_cast<std::size_t>(node_count_), false);
  TruthTable cube = TruthTable::one(input_count_);

  auto dfs = [&](auto&& self, int v) -> void {
    visited[static_cast<std::size_t>(v)] = true;
    for (int t : adjacency_[static_cast<std::size_t>(v)]) {
      const Transistor& tx = transistors_[static_cast<std::size_t>(t)];
      const int next = tx.node_out == v ? tx.node_rail : tx.node_out;
      if (visited[static_cast<std::size_t>(next)]) continue;
      // Rails terminate paths: a path may end at the target rail but can
      // never pass through either rail.
      if (next != rail && (next == vss_node || next == vdd_node)) continue;

      TruthTable literal = TruthTable::variable(input_count_, tx.input);
      if (tx.type == DeviceType::pmos) literal = ~literal;
      const TruthTable saved = cube;
      cube &= literal;
      if (!cube.is_zero()) {
        if (next == rail) {
          result |= cube;
        } else {
          self(self, next);
        }
      }
      cube = saved;
    }
    visited[static_cast<std::size_t>(v)] = false;
  };
  dfs(dfs, node);
  return result;
}

std::vector<int> GateGraph::terminal_counts() const {
  std::vector<int> counts(static_cast<std::size_t>(node_count_), 0);
  for (const Transistor& t : transistors_) {
    ++counts[static_cast<std::size_t>(t.node_out)];
    ++counts[static_cast<std::size_t>(t.node_rail)];
  }
  return counts;
}

std::string GateGraph::node_name(int node) const {
  require(node >= 0 && node < node_count_, "GateGraph::node_name: out of range");
  switch (node) {
    case vss_node: return "vss";
    case vdd_node: return "vdd";
    case output_node: return "y";
    default: return "n" + std::to_string(node - first_internal_node);
  }
}

}  // namespace tr::gategraph
