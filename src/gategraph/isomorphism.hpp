#pragma once
// Configuration isomorphism: maps one reordering of a gate onto another
// via a single input-pin permutation.
//
// Two configurations with equal instance keys are input-permutations of
// each other (paper Sec. 5.1), so every H_nk / G_nk path function of one
// is a variable permutation of the corresponding path function of the
// other, and every internal node corresponds 1:1. Finding that
// correspondence once per cell is what lets the reordering catalogs
// (celllib::ReorderCatalog, DESIGN.md Sec. 7.1) derive the tables of all
// configurations from a single characterised representative instead of
// rebuilding a GateGraph and re-running the path DFS per candidate.

#include <optional>
#include <vector>

#include "gategraph/gate_topology.hpp"

namespace tr::gategraph {

/// A witness that `config` = `rep` with inputs relabelled.
struct ConfigIsomorphism {
  /// var_perm[rep_var] = config_var: the input permutation sigma such that
  /// relabelling the representative's pull trees by sigma yields the
  /// config's trees (up to electrically irrelevant parallel child order).
  std::vector<int> var_perm;
  /// node_remap[config_graph_node] = rep_graph_node, over GateGraph node
  /// ids (rails and output map to themselves). Corresponding nodes have
  /// equal terminal counts and sigma-permuted path functions.
  std::vector<int> node_remap;
};

/// Searches for an isomorphism mapping `config` onto `rep`. One
/// permutation must relabel BOTH pull networks simultaneously (the pin
/// assignment of a layout instance is shared), so the search backtracks
/// across the two trees; parallel children may pair in any order, series
/// children are positional. Returns nullopt when the configurations are
/// not input-permutations of each other.
std::optional<ConfigIsomorphism> find_isomorphism(const GateTopology& rep,
                                                  const GateTopology& config);

}  // namespace tr::gategraph
