#include "gategraph/sp_parse.hpp"

#include <cctype>

#include "util/error.hpp"

namespace tr::gategraph {

namespace {

/// Recursive-descent parser over a cursor into the encoded text.
class Parser {
public:
  explicit Parser(std::string_view text) : text_(text) {}

  SpNode parse() {
    SpNode node = parse_tree();
    require(pos_ == text_.size(),
            "parse_sp_tree: trailing characters after tree: '" +
                std::string(text_.substr(pos_)) + "'");
    return node;
  }

private:
  [[noreturn]] void fail(const std::string& message) const {
    throw Error("parse_sp_tree: " + message + " at offset " +
                std::to_string(pos_) + " in '" + std::string(text_) + "'");
  }

  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  SpNode parse_tree() {
    switch (peek()) {
      case 'T': return parse_leaf();
      case 'S': return parse_composite(SpNode::Kind::series);
      case 'P': return parse_composite(SpNode::Kind::parallel);
      default: fail("expected 'T', 'S' or 'P'");
    }
  }

  SpNode parse_leaf() {
    expect('T');
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      fail("expected input index after 'T'");
    }
    int index = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      index = index * 10 + (text_[pos_] - '0');
      require(index <= 1'000'000, "parse_sp_tree: input index overflow");
      ++pos_;
    }
    return SpNode::transistor(index);
  }

  SpNode parse_composite(SpNode::Kind kind) {
    ++pos_;  // consume 'S' / 'P'
    expect('(');
    std::vector<SpNode> children;
    children.push_back(parse_tree());
    while (peek() == ',') {
      ++pos_;
      children.push_back(parse_tree());
    }
    expect(')');
    if (children.size() < 2) fail("composite needs at least two children");
    return kind == SpNode::Kind::series
               ? SpNode::series(std::move(children))
               : SpNode::parallel(std::move(children));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

SpNode parse_sp_tree(std::string_view text) { return Parser(text).parse(); }

GateTopology topology_from_key(std::string_view key, int input_count) {
  const std::size_t bar = key.find('|');
  require(bar != std::string_view::npos,
          "topology_from_key: key must be '<nmos>|<pmos>', got '" +
              std::string(key) + "'");
  SpNode nmos = parse_sp_tree(key.substr(0, bar));
  SpNode pmos = parse_sp_tree(key.substr(bar + 1));
  return GateTopology(std::move(nmos), std::move(pmos), input_count);
}

}  // namespace tr::gategraph
