#pragma once
// Liberty-flavoured library characterisation writer.
//
// Emits a .lib-style description of the cell library: per-cell area,
// logic function, pin capacitances, and — the part specific to this
// project — one timing/power record per *transistor configuration*,
// characterised with the extended power model and the Elmore delay
// model at a reference load and input statistics. This is what the
// paper's conclusion (a) asks library teams to build: "current
// libraries may be upgraded with more instances of the gates with
// different transistor reorderings".
//
// The dialect is a readable subset of Liberty (group/attribute syntax);
// it is meant for inspection and downstream tooling of this project,
// not for sign-off consumption by commercial tools.

#include <iosfwd>

#include "boolfn/signal.hpp"
#include "celllib/library.hpp"

namespace tr::celllib {

/// Characterisation operating point.
struct LibertyOptions {
  double reference_load = 20e-15;  ///< output load for timing/power [F]
  /// Input statistics applied to every pin during power characterisation.
  boolfn::SignalStats reference_stats{0.5, 1e5};
  /// Include one `reordering_config` group per configuration (can be
  /// large for aoi33/oai33: 72 configs). When false, only the canonical
  /// configuration is characterised.
  bool all_configurations = true;
};

/// Writes the whole library.
void write_liberty(const CellLibrary& library, const Tech& tech,
                   std::ostream& out, const LibertyOptions& options = {});

}  // namespace tr::celllib
