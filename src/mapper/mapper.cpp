#include "mapper/mapper.hpp"

#include <map>

#include "boolfn/isop.hpp"
#include "util/error.hpp"

namespace tr::mapper {

using boolfn::TruthTable;
using celllib::CellLibrary;
using netlist::LogicNetwork;
using netlist::LogicNode;
using netlist::NetId;
using netlist::Netlist;

namespace {

/// Builds the mapped netlist node by node, caching inverters per net so a
/// signal is complemented at most once.
class MapContext {
public:
  MapContext(const LogicNetwork& network, const CellLibrary& library,
             const MapOptions& options)
      : network_(network),
        library_(library),
        options_(options),
        out_(library, network.model()) {}

  Netlist run() {
    for (const std::string& name : network_.inputs()) {
      const NetId net = out_.add_net(name);
      out_.mark_primary_input(net);
      signal_net_.emplace(name, net);
    }
    for (int index : network_.topological_nodes()) {
      map_node(network_.nodes()[static_cast<std::size_t>(index)]);
    }
    for (const std::string& name : network_.outputs()) {
      out_.mark_primary_output(resolve(name));
    }
    out_.validate();
    return std::move(out_);
  }

private:
  NetId resolve(const std::string& name) const {
    const auto it = signal_net_.find(name);
    require(it != signal_net_.end(),
            "mapper: signal '" + name + "' has no mapped net");
    return it->second;
  }

  NetId fresh_net() {
    return out_.add_net("_m" + std::to_string(counter_++));
  }

  std::string fresh_instance(const std::string& cell) {
    return cell + "_i" + std::to_string(instance_counter_++);
  }

  /// Inverter with caching. If `target` >= 0 the inverter drives that
  /// specific net (and is cached for later reuse).
  NetId make_inv(NetId src, NetId target = -1) {
    if (target < 0) {
      const auto it = inverter_cache_.find(src);
      if (it != inverter_cache_.end()) return it->second;
    }
    const NetId net = target >= 0 ? target : fresh_net();
    out_.add_gate(fresh_instance("inv"), "inv", {src}, net);
    inverter_cache_.emplace(src, net);
    return net;
  }

  /// NAND of the given nets (>= 2 of them), into `target` or a fresh net.
  /// Wide NANDs split into an AND-tree feeding a nand2.
  NetId make_nand(const std::vector<NetId>& ins, NetId target = -1) {
    TR_ASSERT(ins.size() >= 2);
    if (ins.size() <= 4) {
      static const char* cells[] = {nullptr, nullptr, "nand2", "nand3",
                                    "nand4"};
      const NetId net = target >= 0 ? target : fresh_net();
      out_.add_gate(fresh_instance(cells[ins.size()]), cells[ins.size()], ins,
                    net);
      return net;
    }
    const std::size_t half = ins.size() / 2;
    const NetId left = make_and({ins.begin(), ins.begin() + half});
    const NetId right = make_and({ins.begin() + half, ins.end()});
    const NetId net = target >= 0 ? target : fresh_net();
    out_.add_gate(fresh_instance("nand2"), "nand2", {left, right}, net);
    return net;
  }

  /// AND of the given nets (>= 1).
  NetId make_and(const std::vector<NetId>& ins) {
    if (ins.size() == 1) return ins[0];
    return make_inv(make_nand(ins));
  }

  void map_node(const LogicNode& node) {
    const std::vector<int> support = node.function.support();
    require(!support.empty(),
            "mapper: node '" + node.name +
                "' is constant; constant sources are not supported by the "
                "combinational power flow");
    const TruthTable f = node.function.compacted(support);
    std::vector<NetId> fanin_nets;
    fanin_nets.reserve(support.size());
    for (int v : support) {
      fanin_nets.push_back(resolve(node.fanins[static_cast<std::size_t>(v)]));
    }

    // Wire / single-literal nodes.
    if (support.size() == 1) {
      if (f == TruthTable::variable(1, 0)) {
        signal_net_.emplace(node.name, fanin_nets[0]);  // pure alias
        return;
      }
      // ~x: a named inverter.
      const NetId net = out_.add_net(node.name);
      make_inv(fanin_nets[0], net);
      signal_net_.emplace(node.name, net);
      return;
    }

    // Direct cell match under input permutation.
    if (const auto match = library_.match_function(f)) {
      const auto& [cell_name, pin_to_var] = *match;
      std::vector<NetId> pins;
      pins.reserve(pin_to_var.size());
      for (int var : pin_to_var) {
        pins.push_back(fanin_nets[static_cast<std::size_t>(var)]);
      }
      const NetId net = out_.add_net(node.name);
      out_.add_gate(fresh_instance(cell_name), cell_name, std::move(pins), net);
      signal_net_.emplace(node.name, net);
      return;
    }

    // Complemented match + inverter.
    if (options_.try_complement) {
      if (const auto match = library_.match_function(~f)) {
        const auto& [cell_name, pin_to_var] = *match;
        std::vector<NetId> pins;
        pins.reserve(pin_to_var.size());
        for (int var : pin_to_var) {
          pins.push_back(fanin_nets[static_cast<std::size_t>(var)]);
        }
        const NetId inner = fresh_net();
        out_.add_gate(fresh_instance(cell_name), cell_name, std::move(pins),
                      inner);
        const NetId net = out_.add_net(node.name);
        make_inv(inner, net);
        signal_net_.emplace(node.name, net);
        return;
      }
    }

    // Two-level NAND-NAND over an irredundant SOP:
    //   f = sum_i c_i = NAND(!c_1, ..., !c_n), !c_i = NAND(literals of c_i).
    const std::vector<boolfn::Cube> cubes = boolfn::isop(f);
    TR_ASSERT(!cubes.empty());
    std::vector<NetId> cube_bars;
    cube_bars.reserve(cubes.size());
    for (const boolfn::Cube& cube : cubes) {
      std::vector<NetId> literals;
      for (std::size_t j = 0; j < cube.size(); ++j) {
        if (cube[j] == '1') {
          literals.push_back(fanin_nets[j]);
        } else if (cube[j] == '0') {
          literals.push_back(make_inv(fanin_nets[j]));
        }
      }
      TR_ASSERT(!literals.empty());
      cube_bars.push_back(literals.size() == 1 ? make_inv(literals[0])
                                               : make_nand(literals));
    }
    const NetId net = out_.add_net(node.name);
    if (cube_bars.size() == 1) {
      make_inv(cube_bars[0], net);
    } else {
      make_nand(cube_bars, net);
    }
    signal_net_.emplace(node.name, net);
  }

  const LogicNetwork& network_;
  const CellLibrary& library_;
  MapOptions options_;
  Netlist out_;
  std::map<std::string, NetId> signal_net_;
  std::map<NetId, NetId> inverter_cache_;
  int counter_ = 0;
  int instance_counter_ = 0;
};

}  // namespace

Netlist map_network(const LogicNetwork& network, const CellLibrary& library,
                    const MapOptions& options) {
  network.validate();
  return MapContext(network, library, options).run();
}

}  // namespace tr::mapper
