#pragma once
// Technology mapping onto the paper's Table 2 library.
//
// Strategy (paper Sec. 5.1 maps the MCNC circuits "into the gate library
// shown in Table 2"):
//   1. direct match: the node function (or its complement, plus an
//      inverter) equals a library cell under an input permutation —
//      this catches NAND/NOR/AOI/OAI shapes directly;
//   2. otherwise two-level NAND-NAND decomposition of an irredundant SOP
//      cover (Minato-Morreale ISOP), with wide ANDs split across
//      nand2/3/4 and cached inverters for negative literals.
//
// The result is functionally equivalent to the source network (verified
// by tests via exhaustive or randomised simulation).

#include "celllib/library.hpp"
#include "netlist/logic_network.hpp"
#include "netlist/netlist.hpp"

namespace tr::mapper {

struct MapOptions {
  /// Also try matching the complemented node function followed by an
  /// inverter before falling back to SOP decomposition.
  bool try_complement = true;
};

/// Maps a generic logic network onto `library`. Throws tr::Error on
/// constant nodes (the combinational power flow has no constant sources).
/// The library must outlive the returned netlist.
netlist::Netlist map_network(const netlist::LogicNetwork& network,
                             const celllib::CellLibrary& library,
                             const MapOptions& options = {});

}  // namespace tr::mapper
