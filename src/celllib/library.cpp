#include "celllib/library.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tr::celllib {

using gategraph::SpNode;

void CellLibrary::add(Cell cell) {
  require(!cells_.contains(cell.name()),
          "CellLibrary: duplicate cell name '" + cell.name() + "'");
  insertion_order_.push_back(cell.name());
  cells_.emplace(cell.name(), std::move(cell));
}

bool CellLibrary::contains(const std::string& name) const {
  return cells_.contains(name);
}

const Cell& CellLibrary::cell(const std::string& name) const {
  const auto it = cells_.find(name);
  require(it != cells_.end(), "CellLibrary: unknown cell '" + name + "'");
  return it->second;
}

const Cell* CellLibrary::find(const std::string& name) const {
  const auto it = cells_.find(name);
  return it == cells_.end() ? nullptr : &it->second;
}

std::vector<std::string> CellLibrary::cell_names() const {
  return insertion_order_;
}

namespace {
SpNode T(int i) { return SpNode::transistor(i); }
SpNode S(std::vector<SpNode> c) { return SpNode::series(std::move(c)); }
SpNode P(std::vector<SpNode> c) { return SpNode::parallel(std::move(c)); }

std::vector<std::string> pins(int n) {
  static const char* names[] = {"a", "b", "c", "d", "e", "f"};
  require(n >= 1 && n <= 6, "pins: supported pin counts are 1..6");
  return {names, names + n};
}
}  // namespace

CellLibrary CellLibrary::standard() {
  CellLibrary lib;
  // Single-input and simple stacks.
  lib.add(Cell("inv", pins(1), T(0)));
  lib.add(Cell("nand2", pins(2), S({T(0), T(1)})));
  lib.add(Cell("nand3", pins(3), S({T(0), T(1), T(2)})));
  lib.add(Cell("nand4", pins(4), S({T(0), T(1), T(2), T(3)})));
  lib.add(Cell("nor2", pins(2), P({T(0), T(1)})));
  lib.add(Cell("nor3", pins(3), P({T(0), T(1), T(2)})));
  lib.add(Cell("nor4", pins(4), P({T(0), T(1), T(2), T(3)})));
  // AND-OR-INVERT family: y = !(products summed).
  lib.add(Cell("aoi21", pins(3), P({S({T(0), T(1)}), T(2)})));
  lib.add(Cell("aoi22", pins(4), P({S({T(0), T(1)}), S({T(2), T(3)})})));
  lib.add(Cell("aoi31", pins(4), P({S({T(0), T(1), T(2)}), T(3)})));
  lib.add(Cell("aoi211", pins(4), P({S({T(0), T(1)}), T(2), T(3)})));
  lib.add(Cell("aoi221", pins(5),
               P({S({T(0), T(1)}), S({T(2), T(3)}), T(4)})));
  lib.add(Cell("aoi222", pins(6),
               P({S({T(0), T(1)}), S({T(2), T(3)}), S({T(4), T(5)})})));
  lib.add(Cell("aoi32", pins(5),
               P({S({T(0), T(1), T(2)}), S({T(3), T(4)})})));
  lib.add(Cell("aoi33", pins(6),
               P({S({T(0), T(1), T(2)}), S({T(3), T(4), T(5)})})));
  // OR-AND-INVERT family: y = !(sums multiplied).
  lib.add(Cell("oai21", pins(3), S({P({T(0), T(1)}), T(2)})));
  lib.add(Cell("oai22", pins(4), S({P({T(0), T(1)}), P({T(2), T(3)})})));
  lib.add(Cell("oai31", pins(4), S({P({T(0), T(1), T(2)}), T(3)})));
  lib.add(Cell("oai211", pins(4), S({P({T(0), T(1)}), T(2), T(3)})));
  lib.add(Cell("oai221", pins(5),
               S({P({T(0), T(1)}), P({T(2), T(3)}), T(4)})));
  lib.add(Cell("oai222", pins(6),
               S({P({T(0), T(1)}), P({T(2), T(3)}), P({T(4), T(5)})})));
  lib.add(Cell("oai32", pins(5),
               S({P({T(0), T(1), T(2)}), P({T(3), T(4)})})));
  lib.add(Cell("oai33", pins(6),
               S({P({T(0), T(1), T(2)}), P({T(3), T(4), T(5)})})));
  return lib;
}

std::optional<std::pair<std::string, std::vector<int>>>
CellLibrary::match_function(const boolfn::TruthTable& f) const {
  const std::vector<int> support = f.support();
  const int n = f.var_count();

  for (const std::string& name : insertion_order_) {
    const Cell& cell = cells_.at(name);
    if (cell.input_count() != static_cast<int>(support.size())) continue;

    // Try every assignment of cell pins to the support variables.
    std::vector<int> sigma(support.size());
    for (std::size_t i = 0; i < sigma.size(); ++i) sigma[i] = static_cast<int>(i);
    const boolfn::TruthTable widened = cell.function().widened(n);
    do {
      std::vector<int> perm(static_cast<std::size_t>(n), -1);
      std::vector<bool> used(static_cast<std::size_t>(n), false);
      for (std::size_t j = 0; j < sigma.size(); ++j) {
        const int target = support[static_cast<std::size_t>(sigma[j])];
        perm[j] = target;
        used[static_cast<std::size_t>(target)] = true;
      }
      int next_free = 0;
      for (int j = cell.input_count(); j < n; ++j) {
        while (used[static_cast<std::size_t>(next_free)]) ++next_free;
        perm[static_cast<std::size_t>(j)] = next_free;
        used[static_cast<std::size_t>(next_free)] = true;
      }
      if (widened.permuted(perm) == f) {
        std::vector<int> pin_to_var(sigma.size());
        for (std::size_t j = 0; j < sigma.size(); ++j) {
          pin_to_var[j] = support[static_cast<std::size_t>(sigma[j])];
        }
        return std::make_pair(name, pin_to_var);
      }
    } while (std::next_permutation(sigma.begin(), sigma.end()));
  }
  return std::nullopt;
}

}  // namespace tr::celllib
