#include "celllib/library.hpp"

#include <algorithm>
#include <utility>

#include "celllib/catalog.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace tr::celllib {

using gategraph::SpNode;

// Copies rebuild the catalog map by walking the copied recency list:
// the stored recency iterators must point into the *new* list
// (recency order is preserved, counters reset).
CellLibrary::CellLibrary(const CellLibrary& rhs)
    : cells_(rhs.cells_), insertion_order_(rhs.insertion_order_) {
  const std::lock_guard<std::mutex> lock(rhs.catalog_mutex_);
  lru_ = rhs.lru_;
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    catalogs_.emplace(*it, CatalogEntry{rhs.catalogs_.at(*it).catalog, it});
  }
  catalog_capacity_ = rhs.catalog_capacity_;
}

CellLibrary& CellLibrary::operator=(const CellLibrary& rhs) {
  if (this == &rhs) return *this;
  cells_ = rhs.cells_;
  insertion_order_ = rhs.insertion_order_;
  const std::lock_guard<std::mutex> lock(rhs.catalog_mutex_);
  catalogs_.clear();
  lru_ = rhs.lru_;
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    catalogs_.emplace(*it, CatalogEntry{rhs.catalogs_.at(*it).catalog, it});
  }
  catalog_capacity_ = rhs.catalog_capacity_;
  cache_stats_ = {};  // counters describe this instance's lookup history
  return *this;
}

// Moving the std::list transfers its nodes, so the recency iterators
// stored in the moved map stay valid — plain member moves suffice.
CellLibrary::CellLibrary(CellLibrary&& rhs) noexcept
    : cells_(std::move(rhs.cells_)),
      insertion_order_(std::move(rhs.insertion_order_)),
      catalogs_(std::move(rhs.catalogs_)),
      lru_(std::move(rhs.lru_)),
      catalog_capacity_(rhs.catalog_capacity_) {}

CellLibrary& CellLibrary::operator=(CellLibrary&& rhs) noexcept {
  if (this == &rhs) return *this;
  cells_ = std::move(rhs.cells_);
  insertion_order_ = std::move(rhs.insertion_order_);
  catalogs_ = std::move(rhs.catalogs_);
  lru_ = std::move(rhs.lru_);
  catalog_capacity_ = rhs.catalog_capacity_;
  cache_stats_ = {};  // counters describe this instance's lookup history
  return *this;
}

namespace {
/// Catalog cache key: the stored structural form of both pull trees, with
/// series AND parallel child order significant. This refines
/// canonical_key (which sorts parallel children away): the reordering
/// enumeration walks the stored tree, so only configurations with equal
/// stored forms are guaranteed the same enumeration order — sharing a
/// catalog across them keeps the fast path's tie-breaking bit-identical
/// to the per-gate reference enumeration. Gates instantiating the same
/// cell share stored forms, so the common case still caches perfectly.
void encode_stored(const SpNode& node, std::string& out) {
  if (node.is_leaf()) {
    out += 'T';
    out += std::to_string(node.input);
    return;
  }
  out += node.kind == SpNode::Kind::series ? "S(" : "P(";
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) out += ',';
    encode_stored(node.children[i], out);
  }
  out += ')';
}

std::string stored_key(const gategraph::GateTopology& topology) {
  // input_count is part of the key: identical trees declared over
  // different variable universes (trailing vacuous inputs) need catalogs
  // with different table widths.
  std::string key = std::to_string(topology.input_count());
  key += ':';
  encode_stored(topology.nmos(), key);
  key += '|';
  encode_stored(topology.pmos(), key);
  return key;
}
}  // namespace

std::shared_ptr<const ReorderCatalog> CellLibrary::catalog(
    const gategraph::GateTopology& start) const {
  // Before the cache lookup, so a targeted fault fires for its circuit
  // regardless of whether another circuit already populated the key.
  if (util::fault::enabled()) util::fault::check("celllib.characterize");
  const std::string key = stored_key(start);
  const std::lock_guard<std::mutex> lock(catalog_mutex_);
  auto it = catalogs_.find(key);
  if (it == catalogs_.end()) {
    // Build under the lock: concurrent first lookups of the same key must
    // characterise exactly once (the batch driver's cache-sharing
    // contract, DESIGN.md Sec. 9.2); later lookups wait and then hit.
    ++cache_stats_.misses;
    lru_.push_front(key);
    it = catalogs_
             .emplace(key, CatalogEntry{std::make_shared<const ReorderCatalog>(
                                            ReorderCatalog::build(start)),
                                        lru_.begin()})
             .first;
    // The just-inserted entry sits at the recency front, so a capacity
    // of >= 1 never evicts what this lookup is about to return.
    evict_to_capacity_locked();
  } else {
    ++cache_stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second.lru);
  }
  return it->second.catalog;
}

void CellLibrary::evict_to_capacity_locked() const {
  if (catalog_capacity_ == 0) return;
  while (catalogs_.size() > catalog_capacity_) {
    catalogs_.erase(lru_.back());
    lru_.pop_back();
    ++cache_stats_.evictions;
  }
}

void CellLibrary::set_catalog_capacity(std::size_t capacity) {
  const std::lock_guard<std::mutex> lock(catalog_mutex_);
  catalog_capacity_ = capacity;
  evict_to_capacity_locked();
}

std::size_t CellLibrary::catalog_capacity() const {
  const std::lock_guard<std::mutex> lock(catalog_mutex_);
  return catalog_capacity_;
}

CatalogCacheStats CellLibrary::catalog_cache_stats() const {
  const std::lock_guard<std::mutex> lock(catalog_mutex_);
  return cache_stats_;
}

std::size_t CellLibrary::cached_catalog_count() const {
  const std::lock_guard<std::mutex> lock(catalog_mutex_);
  return catalogs_.size();
}

void CellLibrary::add(Cell cell) {
  require(!cells_.contains(cell.name()),
          "CellLibrary: duplicate cell name '" + cell.name() + "'");
  insertion_order_.push_back(cell.name());
  cells_.emplace(cell.name(), std::move(cell));
}

bool CellLibrary::contains(const std::string& name) const {
  return cells_.contains(name);
}

const Cell& CellLibrary::cell(const std::string& name) const {
  const auto it = cells_.find(name);
  require(it != cells_.end(), "CellLibrary: unknown cell '" + name + "'");
  return it->second;
}

const Cell* CellLibrary::find(const std::string& name) const {
  const auto it = cells_.find(name);
  return it == cells_.end() ? nullptr : &it->second;
}

std::vector<std::string> CellLibrary::cell_names() const {
  return insertion_order_;
}

namespace {
SpNode T(int i) { return SpNode::transistor(i); }
SpNode S(std::vector<SpNode> c) { return SpNode::series(std::move(c)); }
SpNode P(std::vector<SpNode> c) { return SpNode::parallel(std::move(c)); }

std::vector<std::string> pins(int n) {
  static const char* names[] = {"a", "b", "c", "d", "e", "f"};
  require(n >= 1 && n <= 6, "pins: supported pin counts are 1..6");
  return {names, names + n};
}
}  // namespace

CellLibrary CellLibrary::standard() {
  CellLibrary lib;
  // Single-input and simple stacks.
  lib.add(Cell("inv", pins(1), T(0)));
  lib.add(Cell("nand2", pins(2), S({T(0), T(1)})));
  lib.add(Cell("nand3", pins(3), S({T(0), T(1), T(2)})));
  lib.add(Cell("nand4", pins(4), S({T(0), T(1), T(2), T(3)})));
  lib.add(Cell("nor2", pins(2), P({T(0), T(1)})));
  lib.add(Cell("nor3", pins(3), P({T(0), T(1), T(2)})));
  lib.add(Cell("nor4", pins(4), P({T(0), T(1), T(2), T(3)})));
  // AND-OR-INVERT family: y = !(products summed).
  lib.add(Cell("aoi21", pins(3), P({S({T(0), T(1)}), T(2)})));
  lib.add(Cell("aoi22", pins(4), P({S({T(0), T(1)}), S({T(2), T(3)})})));
  lib.add(Cell("aoi31", pins(4), P({S({T(0), T(1), T(2)}), T(3)})));
  lib.add(Cell("aoi211", pins(4), P({S({T(0), T(1)}), T(2), T(3)})));
  lib.add(Cell("aoi221", pins(5),
               P({S({T(0), T(1)}), S({T(2), T(3)}), T(4)})));
  lib.add(Cell("aoi222", pins(6),
               P({S({T(0), T(1)}), S({T(2), T(3)}), S({T(4), T(5)})})));
  lib.add(Cell("aoi32", pins(5),
               P({S({T(0), T(1), T(2)}), S({T(3), T(4)})})));
  lib.add(Cell("aoi33", pins(6),
               P({S({T(0), T(1), T(2)}), S({T(3), T(4), T(5)})})));
  // OR-AND-INVERT family: y = !(sums multiplied).
  lib.add(Cell("oai21", pins(3), S({P({T(0), T(1)}), T(2)})));
  lib.add(Cell("oai22", pins(4), S({P({T(0), T(1)}), P({T(2), T(3)})})));
  lib.add(Cell("oai31", pins(4), S({P({T(0), T(1), T(2)}), T(3)})));
  lib.add(Cell("oai211", pins(4), S({P({T(0), T(1)}), T(2), T(3)})));
  lib.add(Cell("oai221", pins(5),
               S({P({T(0), T(1)}), P({T(2), T(3)}), T(4)})));
  lib.add(Cell("oai222", pins(6),
               S({P({T(0), T(1)}), P({T(2), T(3)}), P({T(4), T(5)})})));
  lib.add(Cell("oai32", pins(5),
               S({P({T(0), T(1), T(2)}), P({T(3), T(4)})})));
  lib.add(Cell("oai33", pins(6),
               S({P({T(0), T(1), T(2)}), P({T(3), T(4), T(5)})})));
  return lib;
}

std::optional<std::pair<std::string, std::vector<int>>>
CellLibrary::match_function(const boolfn::TruthTable& f) const {
  const std::vector<int> support = f.support();
  const int n = f.var_count();

  for (const std::string& name : insertion_order_) {
    const Cell& cell = cells_.at(name);
    if (cell.input_count() != static_cast<int>(support.size())) continue;

    // Try every assignment of cell pins to the support variables.
    std::vector<int> sigma(support.size());
    for (std::size_t i = 0; i < sigma.size(); ++i) sigma[i] = static_cast<int>(i);
    const boolfn::TruthTable widened = cell.function().widened(n);
    do {
      std::vector<int> perm(static_cast<std::size_t>(n), -1);
      std::vector<bool> used(static_cast<std::size_t>(n), false);
      for (std::size_t j = 0; j < sigma.size(); ++j) {
        const int target = support[static_cast<std::size_t>(sigma[j])];
        perm[j] = target;
        used[static_cast<std::size_t>(target)] = true;
      }
      int next_free = 0;
      for (int j = cell.input_count(); j < n; ++j) {
        while (used[static_cast<std::size_t>(next_free)]) ++next_free;
        perm[static_cast<std::size_t>(j)] = next_free;
        used[static_cast<std::size_t>(next_free)] = true;
      }
      if (widened.permuted(perm) == f) {
        std::vector<int> pin_to_var(sigma.size());
        for (std::size_t j = 0; j < sigma.size(); ++j) {
          pin_to_var[j] = support[static_cast<std::size_t>(sigma[j])];
        }
        return std::make_pair(name, pin_to_var);
      }
    } while (std::next_permutation(sigma.begin(), sigma.end()));
  }
  return std::nullopt;
}

}  // namespace tr::celllib
