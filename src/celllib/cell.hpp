#pragma once
// Library cells: name, pins, logic function and canonical transistor
// topology. A Cell owns the *canonical* configuration; the reordering
// machinery (gategraph) derives every other configuration from it.

#include <string>
#include <vector>

#include "boolfn/truth_table.hpp"
#include "celllib/tech.hpp"
#include "gategraph/gate_graph.hpp"
#include "gategraph/gate_topology.hpp"

namespace tr::celllib {

/// One library cell (paper Table 2 row).
class Cell {
public:
  Cell(std::string name, std::vector<std::string> pin_names,
       gategraph::SpNode pulldown);

  const std::string& name() const noexcept { return name_; }
  int input_count() const noexcept {
    return static_cast<int>(pin_names_.size());
  }
  const std::vector<std::string>& pin_names() const noexcept {
    return pin_names_;
  }
  /// Output logic function y = f(pins), pin j = variable j.
  const boolfn::TruthTable& function() const noexcept { return function_; }
  /// The canonical transistor configuration.
  const gategraph::GateTopology& topology() const noexcept { return topology_; }

  int transistor_count() const { return topology_.transistor_count(); }
  /// Cell area in unit-transistor equivalents (all configurations of a
  /// cell share it: reordering is area-neutral, paper Sec. 5.1).
  double area() const { return static_cast<double>(transistor_count()); }

  /// Input pin capacitance: every pin drives one NMOS and one PMOS gate
  /// terminal per device pair connected to it.
  double pin_capacitance(const Tech& tech, int pin) const;

  /// Distinct transistor reorderings (Table 2 #C).
  std::uint64_t config_count() const {
    return topology_.reordering_count_formula();
  }

  /// Number of sea-of-gates layout instances needed to cover all
  /// configurations (paper Sec. 5.1, e.g. oai21 needs oai21[A] and
  /// oai21[B]).
  int instance_count() const;

private:
  std::string name_;
  std::vector<std::string> pin_names_;
  gategraph::GateTopology topology_;
  boolfn::TruthTable function_;
};

/// Capacitance of one node from its diffusion terminal count; the output
/// node adds the external load on top. The single definition shared by
/// node_capacitances (reference scoring path) and the catalog scorer
/// (opt::score_catalog), so the two paths cannot drift apart.
inline double node_capacitance(const Tech& tech, int terminal_count,
                               bool is_output, double external_load) {
  double cap = tech.c_diff * static_cast<double>(terminal_count);
  if (is_output) cap += external_load;
  return cap;
}

/// Per-node capacitances of one configuration of a cell:
/// index = GateGraph node id. Rails get 0 (their charge comes from the
/// supply and is accounted as the energy drawn per transition of the
/// charged nodes); the output node adds `external_load` farads on top of
/// its diffusion capacitance.
std::vector<double> node_capacitances(const gategraph::GateGraph& graph,
                                      const Tech& tech, double external_load);

}  // namespace tr::celllib
