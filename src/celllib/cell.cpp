#include "celllib/cell.hpp"

#include "util/error.hpp"

namespace tr::celllib {

Cell::Cell(std::string name, std::vector<std::string> pin_names,
           gategraph::SpNode pulldown)
    : name_(std::move(name)),
      pin_names_(std::move(pin_names)),
      topology_(gategraph::GateTopology::from_pulldown(
          std::move(pulldown), static_cast<int>(pin_names_.size()))),
      function_(topology_.output_function()) {
  require(!name_.empty(), "Cell: empty name");
  require(!pin_names_.empty(), "Cell: a cell needs at least one pin");
  // Every pin must actually drive a device pair.
  for (int j = 0; j < input_count(); ++j) {
    require(function_.depends_on(j) || input_count() == 1,
            "Cell " + name_ + ": pin " + pin_names_[static_cast<std::size_t>(j)] +
                " does not affect the output");
  }
}

double Cell::pin_capacitance(const Tech& tech, int pin) const {
  require(pin >= 0 && pin < input_count(), "Cell::pin_capacitance: bad pin");
  int devices = 0;
  const gategraph::GateGraph graph(topology_);
  for (const auto& t : graph.transistors()) {
    if (t.input == pin) ++devices;
  }
  return tech.c_gate * static_cast<double>(devices);
}

int Cell::instance_count() const {
  const auto groups = gategraph::group_by_instance(topology_.all_reorderings());
  return static_cast<int>(groups.size());
}

std::vector<double> node_capacitances(const gategraph::GateGraph& graph,
                                      const Tech& tech, double external_load) {
  const std::vector<int> terminals = graph.terminal_counts();
  std::vector<double> caps(terminals.size(), 0.0);
  for (std::size_t v = 0; v < terminals.size(); ++v) {
    const int node = static_cast<int>(v);
    if (node == gategraph::GateGraph::vss_node ||
        node == gategraph::GateGraph::vdd_node) {
      continue;  // rails are ideal supplies
    }
    caps[v] = node_capacitance(tech, terminals[v],
                               node == gategraph::GateGraph::output_node,
                               external_load);
  }
  return caps;
}

}  // namespace tr::celllib
