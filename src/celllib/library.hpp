#pragma once
// The standard cell library of the paper (Table 2): inverter, NAND/NOR
// stacks, and the AOI/OAI complex-gate families, all series-parallel and
// all reorderable. Extended with nand4/nor2/aoi31/oai31/aoi32/oai32/
// aoi33/oai33 so the mapper has a complete 2-to-6 input complex-gate
// family (documented in DESIGN.md Sec. 4.4).

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "celllib/cell.hpp"

namespace tr::celllib {

class ReorderCatalog;

/// Cumulative catalog-cache counters (see CellLibrary::catalog). A hit
/// returns an already-built characterisation; a miss pays for one
/// ReorderCatalog::build; an eviction drops the least-recently-used
/// catalog of a capacity-bounded cache (DESIGN.md Sec. 13.4). Counts
/// are monotone over the library's lifetime; batch consumers diff two
/// snapshots to get per-run stats (opt::BatchOptimizer, DESIGN.md
/// Sec. 9.2), the server reports the process-lifetime totals at drain.
struct CatalogCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  std::uint64_t lookups() const noexcept { return hits + misses; }
  /// Hits per lookup in [0,1]; 0 when no lookups happened.
  double hit_rate() const noexcept {
    return lookups() == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(lookups());
  }
};

/// An immutable collection of cells indexed by name.
class CellLibrary {
public:
  /// The paper's Table 2 library.
  static CellLibrary standard();

  /// Builds an empty library (for tests).
  CellLibrary() = default;

  /// Copies/moves transfer the cells and the already-built catalogs
  /// (shared, immutable) but never the mutex guarding the cache.
  CellLibrary(const CellLibrary& rhs);
  CellLibrary& operator=(const CellLibrary& rhs);
  CellLibrary(CellLibrary&& rhs) noexcept;
  CellLibrary& operator=(CellLibrary&& rhs) noexcept;

  /// Adds a cell; rejects duplicate names.
  void add(Cell cell);

  bool contains(const std::string& name) const;
  /// Throws tr::Error for unknown names.
  const Cell& cell(const std::string& name) const;
  /// Returns nullptr for unknown names.
  const Cell* find(const std::string& name) const;

  std::vector<std::string> cell_names() const;
  std::size_t size() const noexcept { return cells_.size(); }

  /// Finds a cell and an input permutation realising `f`:
  /// returns (cell name, perm) such that
  /// cell.function().permuted(perm) == f widened to f.var_count().
  /// perm[cell_pin] = function variable index. Only cells whose input
  /// count equals |support(f)| are considered. nullopt if no match.
  std::optional<std::pair<std::string, std::vector<int>>> match_function(
      const boolfn::TruthTable& f) const;

  /// Reordering catalog for the configuration `start`, built on first
  /// request and cached by the topology's stored structural key, so every
  /// gate of a netlist instantiating the same cell in the same
  /// configuration (the common case in mapped netlists) shares one
  /// characterisation. Thread-safe; the returned catalog is immutable and
  /// outlives the library via shared ownership.
  std::shared_ptr<const ReorderCatalog> catalog(
      const gategraph::GateTopology& start) const;

  /// Snapshot of the cumulative catalog-cache counters. Thread-safe.
  /// Copies/moves reset the copy's counters to zero (they describe this
  /// instance's lookup history, not the transferred catalogs).
  CatalogCacheStats catalog_cache_stats() const;

  /// Number of distinct structural forms currently cached. Thread-safe.
  std::size_t cached_catalog_count() const;

  /// Bounds the catalog cache to `capacity` entries, evicting the
  /// least-recently-used catalogs immediately if it is already over.
  /// 0 (the default) means unbounded — the batch driver's behaviour,
  /// where the library itself bounds the number of structural forms.
  /// A long-running server sets a finite capacity so an adversarial
  /// request stream of novel forms cannot grow the process without
  /// bound. Eviction only drops the cache entry; in-flight users keep
  /// their catalogs alive through shared ownership, and a re-request
  /// rebuilds deterministically (a miss, never a wrong answer).
  /// Thread-safe.
  void set_catalog_capacity(std::size_t capacity);

  /// The current capacity bound; 0 = unbounded. Thread-safe.
  std::size_t catalog_capacity() const;

private:
  struct CatalogEntry {
    std::shared_ptr<const ReorderCatalog> catalog;
    /// Position in lru_; kept valid by std::list's iterator stability.
    std::list<std::string>::iterator lru;
  };

  /// Drops LRU entries until the cache fits the capacity bound. Caller
  /// holds catalog_mutex_.
  void evict_to_capacity_locked() const;

  std::map<std::string, Cell> cells_;
  std::vector<std::string> insertion_order_;
  /// Lazily built reordering catalogs, keyed by stored structural form,
  /// with an LRU recency list (front = most recent) for the optional
  /// capacity bound.
  mutable std::mutex catalog_mutex_;
  mutable std::map<std::string, CatalogEntry> catalogs_;
  mutable std::list<std::string> lru_;
  mutable std::size_t catalog_capacity_ = 0;  ///< 0 = unbounded
  mutable CatalogCacheStats cache_stats_;
};

}  // namespace tr::celllib
