#include "celllib/catalog.hpp"

#include <string>
#include <utility>

#include "gategraph/gate_graph.hpp"
#include "gategraph/isomorphism.hpp"
#include "util/error.hpp"

namespace tr::celllib {

using boolfn::TruthTable;
using gategraph::GateGraph;
using gategraph::GateTopology;

namespace {

/// Fills dh/dg from the node's h/g tables. Derived configurations run the
/// same code as representatives so their tables are bit-identical to what
/// the reference scorer computes on the fly.
void fill_differences(CatalogNode& node, int input_count) {
  node.dh.reserve(static_cast<std::size_t>(input_count));
  node.dg.reserve(static_cast<std::size_t>(input_count));
  for (int i = 0; i < input_count; ++i) {
    node.dh.push_back(node.h.boolean_difference(i));
    node.dg.push_back(node.g.boolean_difference(i));
  }
}

/// Model node order: internal nodes ascending, output last (the order
/// power::evaluate_gate_power sums node powers in).
std::vector<int> model_node_order(int internal_count) {
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(internal_count) + 1);
  for (int k = 0; k < internal_count; ++k) {
    order.push_back(GateGraph::first_internal_node + k);
  }
  order.push_back(GateGraph::output_node);
  return order;
}

/// Characterises a configuration directly: graph construction + path DFS.
void characterize(CatalogConfig& entry, int input_count, int internal_count) {
  const GateGraph graph(entry.topology);
  const std::vector<int> terminals = graph.terminal_counts();
  entry.nodes.clear();
  entry.nodes.reserve(static_cast<std::size_t>(internal_count) + 1);
  for (int node : model_node_order(internal_count)) {
    CatalogNode cn;
    cn.node = node;
    cn.terminal_count = terminals[static_cast<std::size_t>(node)];
    cn.h = graph.h_function(node);
    cn.g = graph.g_function(node);
    fill_differences(cn, input_count);
    entry.nodes.push_back(std::move(cn));
  }
}

/// Derives a configuration's tables from its instance representative by
/// variable permutation and node remapping — no graph rebuild.
void derive(CatalogConfig& entry, const CatalogConfig& rep,
            const gategraph::ConfigIsomorphism& iso, int input_count,
            int internal_count) {
  entry.nodes.clear();
  entry.nodes.reserve(static_cast<std::size_t>(internal_count) + 1);
  for (int node : model_node_order(internal_count)) {
    const int rep_node = iso.node_remap[static_cast<std::size_t>(node)];
    // Representative storage position for a graph node id (internal nodes
    // are contiguous from first_internal_node; output is stored last).
    const std::size_t rep_pos =
        rep_node == GateGraph::output_node
            ? static_cast<std::size_t>(internal_count)
            : static_cast<std::size_t>(rep_node - GateGraph::first_internal_node);
    const CatalogNode& src = rep.nodes[rep_pos];
    CatalogNode cn;
    cn.node = node;
    cn.terminal_count = src.terminal_count;
    cn.h = src.h.permute_vars(iso.var_perm);
    cn.g = src.g.permute_vars(iso.var_perm);
    fill_differences(cn, input_count);
    entry.nodes.push_back(std::move(cn));
  }
}

/// Build-time sanity: the output node's path functions have closed forms
/// (H_y = pull-up conduction, G_y = pull-down conduction) and no node may
/// see both rails at once in a complementary gate. Internal-node tables
/// are covered by the parity test suite.
void verify(const CatalogConfig& entry, int input_count) {
  const TruthTable up = gategraph::conduction_function(
      entry.topology.pmos(), gategraph::DeviceType::pmos, input_count);
  const TruthTable down = gategraph::conduction_function(
      entry.topology.nmos(), gategraph::DeviceType::nmos, input_count);
  TR_ASSERT(entry.nodes.back().h == up);
  TR_ASSERT(entry.nodes.back().g == down);
  for (const CatalogNode& node : entry.nodes) {
    TR_ASSERT((node.h & node.g).is_zero());
  }
}

}  // namespace

ReorderCatalog ReorderCatalog::build(const GateTopology& start) {
  ReorderCatalog catalog;
  catalog.input_count_ = start.input_count();
  catalog.internal_node_count_ = start.internal_node_count();

  std::vector<GateTopology> orderings = start.all_reorderings();
  catalog.configs_.reserve(orderings.size());

  // Instance representatives seen so far: (config index, instance key).
  std::vector<std::pair<int, std::string>> reps;
  std::string first_key;
  for (GateTopology& topology : orderings) {
    CatalogConfig entry(std::move(topology));
    const std::string key = entry.topology.instance_key();
    if (catalog.configs_.empty()) first_key = key;
    entry.same_instance_as_first = key == first_key;

    bool derived = false;
    for (const auto& [rep_index, rep_key] : reps) {
      if (rep_key != key) continue;
      const CatalogConfig& rep =
          catalog.configs_[static_cast<std::size_t>(rep_index)];
      const auto iso = find_isomorphism(rep.topology, entry.topology);
      if (!iso) continue;  // fall through to direct characterisation
      derive(entry, rep, *iso, catalog.input_count_,
             catalog.internal_node_count_);
      derived = true;
      break;
    }
    if (!derived) {
      characterize(entry, catalog.input_count_, catalog.internal_node_count_);
      reps.emplace_back(static_cast<int>(catalog.configs_.size()), key);
      ++catalog.characterized_;
    }
    verify(entry, catalog.input_count_);
    catalog.configs_.push_back(std::move(entry));
  }
  return catalog;
}

}  // namespace tr::celllib
