#pragma once
// Technology parameters of the target process. The paper evaluates a
// 1996-era Sea-of-Gates style; absolute values only scale the results, so
// they are centralised here and injectable everywhere (DESIGN.md Sec. 4.3).

namespace tr::celllib {

/// Electrical parameters used by the power model, the delay model and the
/// switch-level simulator.
struct Tech {
  double vdd = 5.0;       ///< supply voltage [V]
  double c_diff = 2e-15;  ///< diffusion cap per transistor terminal [F]
  double c_gate = 5e-15;  ///< gate cap per transistor gate pin [F]
  double c_wire = 4e-15;  ///< fixed wire cap per output net [F]
  double r_n = 10e3;      ///< on-resistance of an NMOS device [ohm]
  double r_p = 20e3;      ///< on-resistance of a PMOS device [ohm]

  /// Energy of one full swing of capacitance `c`: c * vdd^2 / 2 per
  /// transition (matching the paper's Pow = 1/2 C V^2 D / Tcyc convention,
  /// where D counts both rising and falling transitions).
  double energy_per_transition(double c) const { return 0.5 * c * vdd * vdd; }
};

/// The default technology used across tests and benchmarks.
inline Tech default_tech() { return Tech{}; }

}  // namespace tr::celllib
