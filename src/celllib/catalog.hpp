#pragma once
// Per-cell reordering catalogs: the one-time characterisation that powers
// the configuration-scoring engine (DESIGN.md Sec. 7.1).
//
// A catalog enumerates every reordering of a starting configuration (in
// GateTopology::all_reorderings order, starting configuration first) and
// precomputes, for every node of every configuration, the data the power
// model needs: terminal count (diffusion capacitance is proportional),
// the H/G path functions, and their boolean differences per input. Only
// one representative per layout-instance group is characterised with a
// GateGraph path DFS; all other configurations derive their tables by
// word-parallel variable permutation through a ConfigIsomorphism — the
// configurations of a cell are input-permutations of their instance
// representative (paper Sec. 5.1), so no graph is ever rebuilt per
// candidate.
//
// Catalogs contain no technology constants and no input statistics, so
// one catalog serves every gate of a netlist that instantiates the same
// cell in the same configuration; CellLibrary caches them by the
// topology's STORED structural form (not the canonical key: enumeration
// order walks the stored tree, and tie-break parity with the reference
// engine requires equal enumeration orders — see stored_key() in
// library.cpp).

#include <utility>
#include <vector>

#include "boolfn/truth_table.hpp"
#include "gategraph/gate_topology.hpp"

namespace tr::celllib {

/// Precomputed model inputs for one node of one configuration.
struct CatalogNode {
  int node = -1;           ///< GateGraph node id in this configuration
  int terminal_count = 0;  ///< diffusion terminals (C = c_diff * count)
  boolfn::TruthTable h;    ///< paths to vdd
  boolfn::TruthTable g;    ///< paths to vss
  std::vector<boolfn::TruthTable> dh;  ///< dH/dx_i per gate input i
  std::vector<boolfn::TruthTable> dg;  ///< dG/dx_i per gate input i
};

/// One reordering of the cell, fully characterised.
struct CatalogConfig {
  explicit CatalogConfig(gategraph::GateTopology t)
      : topology(std::move(t)) {}

  gategraph::GateTopology topology;
  /// True when this configuration is realisable by the same sea-of-gates
  /// layout instance as the catalog's starting configuration (equal
  /// instance keys) — precomputed for OptimizeOptions::restrict_to_instance.
  bool same_instance_as_first = true;
  /// Internal nodes in ascending GateGraph id order, then the output node
  /// last — the exact node order evaluate_gate_power sums in.
  std::vector<CatalogNode> nodes;
};

class ReorderCatalog {
public:
  /// Characterises the full reordering space reachable from `start`.
  static ReorderCatalog build(const gategraph::GateTopology& start);

  int input_count() const noexcept { return input_count_; }
  int internal_node_count() const noexcept { return internal_node_count_; }
  /// Configurations in GateTopology::all_reorderings enumeration order;
  /// configs()[0] is the starting configuration.
  const std::vector<CatalogConfig>& configs() const noexcept {
    return configs_;
  }
  /// Instance representatives characterised by graph DFS; the remaining
  /// configs().size() - characterized_instances() entries were derived by
  /// variable permutation.
  int characterized_instances() const noexcept { return characterized_; }

private:
  ReorderCatalog() = default;

  int input_count_ = 0;
  int internal_node_count_ = 0;
  int characterized_ = 0;
  std::vector<CatalogConfig> configs_;
};

}  // namespace tr::celllib
