#pragma once
// Hand-embedded classic netlists in BLIF form, used by the examples and
// by the parser/mapper integration tests. These are public-domain
// textbook circuits (ISCAS-85 c17, a 2-bit comparator, a full adder, a
// 2-to-4 decoder), small enough to verify exhaustively.

#include <string>
#include <vector>

namespace tr::benchgen {

/// Names of the embedded circuits.
std::vector<std::string> classic_names();

/// BLIF text of one embedded circuit (generic .names dialect).
/// Throws tr::Error for unknown names.
const std::string& classic_blif(const std::string& name);

}  // namespace tr::benchgen
