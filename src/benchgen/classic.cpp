#include "benchgen/classic.hpp"

#include <map>

#include "util/error.hpp"

namespace tr::benchgen {

namespace {

const std::map<std::string, std::string>& registry() {
  static const std::map<std::string, std::string> circuits = {
      {"c17", R"(# ISCAS-85 c17: six 2-input NANDs
.model c17
.inputs g1 g2 g3 g6 g7
.outputs g22 g23
.names g1 g3 g10
0- 1
-0 1
.names g3 g6 g11
0- 1
-0 1
.names g2 g11 g16
0- 1
-0 1
.names g11 g7 g19
0- 1
-0 1
.names g10 g16 g22
0- 1
-0 1
.names g16 g19 g23
0- 1
-0 1
.end
)"},
      {"fulladder", R"(# one-bit full adder
.model fulladder
.inputs a b cin
.outputs sum cout
.names a b cin sum
100 1
010 1
001 1
111 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end
)"},
      {"cmp2", R"(# 2-bit magnitude comparator: gt = (a1a0 > b1b0), eq
.model cmp2
.inputs a1 a0 b1 b0
.outputs gt eq
.names a1 b1 w_gt1
10 1
.names a1 b1 w_eq1
11 1
00 1
.names a0 b0 w_gt0
10 1
.names a0 b0 w_eq0
11 1
00 1
.names w_gt1 w_eq1 w_gt0 gt
1-- 1
-11 1
.names w_eq1 w_eq0 eq
11 1
.end
)"},
      {"dec2to4", R"(# 2-to-4 decoder with enable
.model dec2to4
.inputs en s1 s0
.outputs y0 y1 y2 y3
.names en s1 s0 y0
100 1
.names en s1 s0 y1
101 1
.names en s1 s0 y2
110 1
.names en s1 s0 y3
111 1
.end
)"},
  };
  return circuits;
}

}  // namespace

std::vector<std::string> classic_names() {
  std::vector<std::string> names;
  for (const auto& [name, text] : registry()) names.push_back(name);
  return names;
}

const std::string& classic_blif(const std::string& name) {
  const auto it = registry().find(name);
  require(it != registry().end(),
          "classic_blif: unknown circuit '" + name + "'");
  return it->second;
}

}  // namespace tr::benchgen
