#pragma once
// Circuit generators for the benchmark suite.
//
// The paper evaluates on MCNC netlists, which are not redistributable
// here; DESIGN.md Sec. 4.1 documents the substitution: structured
// generators (adders — the paper's own Sec. 1.1 motivation —, parity and
// mux trees) plus a seeded random multilevel generator that reproduces
// the suite's cell mix and size distribution. Everything is
// deterministic in the seed.

#include <cstdint>

#include "netlist/netlist.hpp"

namespace tr::benchgen {

/// n-bit ripple-carry adder built from the Table 2 library
/// (6 gates per full adder: nor3/nand3/nand2/oai21/nand2/oai21).
/// Inputs a0..a{n-1}, b0..b{n-1}, cin; outputs s0..s{n-1}, cout.
/// This is the paper's Sec. 1.1 motivating workload: the carry chain
/// accumulates transition density that equilibrium probabilities alone
/// cannot see.
netlist::Netlist ripple_carry_adder(const celllib::CellLibrary& library,
                                    int bits);

/// n-input parity tree (XOR as aoi21 + nor2 pairs).
netlist::Netlist parity_tree(const celllib::CellLibrary& library, int inputs);

/// Transparency chain for the bit-parallel benchmark tier: a running
/// value threaded through runs of `inverter_run` inverters punctuated by
/// XOR taps that cycle over `inputs` primary inputs. Inverters and XOR
/// outputs flip whenever their driving net flips, so an input toggle
/// traverses every stage up to the next tap of the same input — in the
/// packed 64-lane simulator the replication masks stay dense along the
/// whole cascade instead of fragmenting as they do in random logic.
netlist::Netlist xor_chain(const celllib::CellLibrary& library,
                           const std::string& name, int target_gates,
                           int inputs, int inverter_run);

/// 2^k-to-1 multiplexer tree (mux cell = aoi22 + inverters).
netlist::Netlist mux_tree(const celllib::CellLibrary& library,
                          int select_bits);

/// Specification of a random multilevel circuit.
struct RandomCircuitSpec {
  std::string name = "random";
  int target_gates = 100;
  int primary_inputs = 16;
  std::uint64_t seed = 1;
};

/// Random mapped circuit: gates drawn from a realistic cell mix, inputs
/// biased towards recently created nets (depth), every sink net becomes a
/// primary output. Deterministic in the seed.
netlist::Netlist random_circuit(const celllib::CellLibrary& library,
                                const RandomCircuitSpec& spec);

}  // namespace tr::benchgen
