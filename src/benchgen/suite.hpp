#pragma once
// The Table 3 benchmark suite registry.
//
// The paper reports 39 MCNC circuits (24-540 gates). The original
// netlists are not redistributable, so each entry here is a synthetic
// stand-in: a deterministic random multilevel circuit with the same gate
// count, named after the MCNC circuit it substitutes (DESIGN.md Sec. 4.1).
// Sizes follow the G column of Table 3 as far as it is legible.

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace tr::benchgen {

/// One suite entry.
struct BenchmarkSpec {
  std::string name;  ///< MCNC circuit this stands in for
  int gates = 0;     ///< Table 3 G column
  int primary_inputs = 0;
  std::uint64_t seed = 0;  ///< derived from the name, stable across runs
};

/// The 39-circuit suite in Table 3 order (by gate count).
const std::vector<BenchmarkSpec>& table3_suite();

/// The scaled synthetic tier: multi-thousand-gate random multilevel
/// circuits (syn1000 … syn8000, ~15k gates total) that exercise the
/// batch-optimization path well beyond the paper-sized suite. Same
/// generator and seed derivation as table3_suite, larger sizes and
/// uncapped PI counts.
const std::vector<BenchmarkSpec>& scaled_suite();

/// Looks a spec up by name across table3_suite and scaled_suite; throws
/// tr::Error when absent.
const BenchmarkSpec& suite_entry(const std::string& name);

/// Materialises a suite entry as a mapped netlist.
netlist::Netlist build_benchmark(const celllib::CellLibrary& library,
                                 const BenchmarkSpec& spec);

}  // namespace tr::benchgen
