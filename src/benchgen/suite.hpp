#pragma once
// The Table 3 benchmark suite registry.
//
// The paper reports 39 MCNC circuits (24-540 gates). The original
// netlists are not redistributable, so each entry here is a synthetic
// stand-in: a deterministic random multilevel circuit with the same gate
// count, named after the MCNC circuit it substitutes (DESIGN.md Sec. 4.1).
// Sizes follow the G column of Table 3 as far as it is legible.

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace tr::benchgen {

/// Generator a suite entry is materialised with.
enum class CircuitKind {
  random,     ///< random_circuit: MCNC-like multilevel cell mix
  xor_chain,  ///< xor_chain: transparency chain for the packed-lane tier
};

/// One suite entry.
struct BenchmarkSpec {
  std::string name;  ///< MCNC circuit this stands in for
  int gates = 0;     ///< Table 3 G column
  int primary_inputs = 0;
  std::uint64_t seed = 0;  ///< derived from the name, stable across runs
  CircuitKind kind = CircuitKind::random;
};

/// The 39-circuit suite in Table 3 order (by gate count).
const std::vector<BenchmarkSpec>& table3_suite();

/// The scaled synthetic tier: multi-thousand-gate random multilevel
/// circuits (syn1000 … syn8000, ~15k gates total) that exercise the
/// batch-optimization path well beyond the paper-sized suite. Same
/// generator and seed derivation as table3_suite, larger sizes and
/// uncapped PI counts.
const std::vector<BenchmarkSpec>& scaled_suite();

/// The bit-parallel tier: deep, narrow transparency chains (2 primary
/// inputs, 2000-8000 gates, bp2000 … bp8000) shaped for the packed
/// 64-lane Monte-Carlo path (sim/bitsim.hpp) — with few input processes
/// ~32 replication lanes toggle the same input each round, and because
/// every chain stage is flip-transparent (inverters, XOR taps) the
/// packed lane masks stay dense along the whole cascade instead of
/// fragmenting as in random logic. BENCH_sim measures the packed vs
/// scalar replication throughput on this tier and CI gates on it.
const std::vector<BenchmarkSpec>& bit_parallel_suite();

/// Looks a spec up by name across table3_suite, scaled_suite and
/// bit_parallel_suite; throws tr::Error when absent.
const BenchmarkSpec& suite_entry(const std::string& name);

/// Materialises a suite entry as a mapped netlist.
netlist::Netlist build_benchmark(const celllib::CellLibrary& library,
                                 const BenchmarkSpec& spec);

}  // namespace tr::benchgen
