#include "benchgen/suite.hpp"

#include <cmath>

#include "benchgen/generators.hpp"
#include "util/error.hpp"

namespace tr::benchgen {

namespace {

/// FNV-1a so suite seeds never change across platforms or releases.
std::uint64_t stable_hash(const std::string& text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

int derive_inputs(int gates) {
  // MCNC-suite-like PI counts: tens of inputs for hundreds of gates.
  const int pi = static_cast<int>(std::lround(1.6 * std::sqrt(gates)));
  return std::max(5, std::min(pi, 48));
}

std::vector<BenchmarkSpec> make_suite() {
  // Names: 39 MCNC combinational circuits commonly used in 1995/96 DATE
  // papers. Gate counts follow the legible entries of Table 3's G column.
  const std::pair<const char*, int> entries[] = {
      {"b1", 24},       {"cm82a", 41},   {"cm42a", 43},   {"majority", 45},
      {"cm138a", 47},   {"cm151a", 49},  {"cm152a", 50},  {"decod", 55},
      {"tcon", 60},     {"cm163a", 62},  {"cm162a", 64},  {"cu", 64},
      {"pm1", 67},      {"x2", 73},      {"cm85a", 84},   {"z4ml", 90},
      {"cmb", 117},     {"cm150a", 128}, {"mux", 132},    {"9symml", 148},
      {"count", 155},   {"comp", 196},   {"unreg", 206},  {"c8", 222},
      {"apex7", 224},   {"lal", 235},    {"pcle", 244},   {"frg1", 284},
      {"sct", 313},     {"b9", 316},     {"alu2", 401},   {"ttt2", 408},
      {"pcler8", 411},  {"term1", 424},  {"cht", 442},    {"f51m", 459},
      {"example2", 485},{"cordic", 516}, {"alu4", 540},
  };
  std::vector<BenchmarkSpec> suite;
  for (const auto& [name, gates] : entries) {
    BenchmarkSpec spec;
    spec.name = name;
    spec.gates = gates;
    spec.primary_inputs = derive_inputs(gates);
    spec.seed = stable_hash(spec.name);
    suite.push_back(std::move(spec));
  }
  return suite;
}

}  // namespace

const std::vector<BenchmarkSpec>& table3_suite() {
  static const std::vector<BenchmarkSpec> suite = make_suite();
  return suite;
}

const std::vector<BenchmarkSpec>& scaled_suite() {
  static const std::vector<BenchmarkSpec> suite = [] {
    // Sizes double from 1k to 8k gates; the same 1.6*sqrt(G) PI formula
    // as derive_inputs but without its MCNC-era 48-input cap, so the
    // generated circuits stay wide enough to avoid degenerate depth.
    const int sizes[] = {1000, 2000, 4000, 8000};
    std::vector<BenchmarkSpec> tier;
    for (const int gates : sizes) {
      BenchmarkSpec spec;
      spec.name = "syn" + std::to_string(gates);
      spec.gates = gates;
      spec.primary_inputs =
          static_cast<int>(std::lround(1.6 * std::sqrt(gates)));
      spec.seed = stable_hash(spec.name);
      tier.push_back(std::move(spec));
    }
    return tier;
  }();
  return suite;
}

const std::vector<BenchmarkSpec>& bit_parallel_suite() {
  static const std::vector<BenchmarkSpec> suite = [] {
    // Deep and narrow: 2 PIs regardless of size, so a packed 64-lane
    // round averages ~32 lanes per input-toggle group, and the
    // transparency-chain structure keeps those group masks dense for
    // the entire cascade (every stage flips when its driver flips; the
    // one XOR tap a cascade crosses before cancelling splits the group
    // at most once).
    const int sizes[] = {2000, 4000, 8000};
    std::vector<BenchmarkSpec> tier;
    for (const int gates : sizes) {
      BenchmarkSpec spec;
      spec.name = "bp" + std::to_string(gates);
      spec.gates = gates;
      spec.primary_inputs = 2;
      spec.seed = stable_hash(spec.name);
      spec.kind = CircuitKind::xor_chain;
      tier.push_back(std::move(spec));
    }
    return tier;
  }();
  return suite;
}

const BenchmarkSpec& suite_entry(const std::string& name) {
  for (const BenchmarkSpec& spec : table3_suite()) {
    if (spec.name == name) return spec;
  }
  for (const BenchmarkSpec& spec : scaled_suite()) {
    if (spec.name == name) return spec;
  }
  for (const BenchmarkSpec& spec : bit_parallel_suite()) {
    if (spec.name == name) return spec;
  }
  throw Error("suite_entry: unknown benchmark '" + name + "'");
}

netlist::Netlist build_benchmark(const celllib::CellLibrary& library,
                                 const BenchmarkSpec& spec) {
  if (spec.kind == CircuitKind::xor_chain) {
    // 30 inverters per XOR tap: one toggle traverses PI-count segments
    // (it cancels at the next tap of the same input), i.e. a ~64-gate
    // cascade that the packed lanes walk together.
    return xor_chain(library, spec.name, spec.gates, spec.primary_inputs, 30);
  }
  RandomCircuitSpec rc;
  rc.name = spec.name;
  rc.target_gates = spec.gates;
  rc.primary_inputs = spec.primary_inputs;
  rc.seed = spec.seed;
  return random_circuit(library, rc);
}

}  // namespace tr::benchgen
