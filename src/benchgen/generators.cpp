#include "benchgen/generators.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace tr::benchgen {

using netlist::NetId;
using netlist::Netlist;

Netlist ripple_carry_adder(const celllib::CellLibrary& library, int bits) {
  require(bits >= 1, "ripple_carry_adder: need at least one bit");
  Netlist nl(library, "rca" + std::to_string(bits));

  std::vector<NetId> a(static_cast<std::size_t>(bits));
  std::vector<NetId> b(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i) {
    a[static_cast<std::size_t>(i)] = nl.add_net("a" + std::to_string(i));
    b[static_cast<std::size_t>(i)] = nl.add_net("b" + std::to_string(i));
    nl.mark_primary_input(a[static_cast<std::size_t>(i)]);
    nl.mark_primary_input(b[static_cast<std::size_t>(i)]);
  }
  NetId carry = nl.add_net("cin");
  nl.mark_primary_input(carry);

  for (int i = 0; i < bits; ++i) {
    const std::string sfx = std::to_string(i);
    const NetId ai = a[static_cast<std::size_t>(i)];
    const NetId bi = b[static_cast<std::size_t>(i)];
    // Full adder over (ai, bi, carry):
    //   u    = nor3(a,b,c)            v  = nand3(a,b,c)
    //   n1   = nand2(a,b)             o1 = oai21(a,b,c) = !((a+b)c)
    //   cout = nand2(n1,o1) = ab + (a+b)c
    //   sum  = oai21(u,cout,v) = !((u+cout)v) = a^b^c
    const NetId u = nl.add_net("u" + sfx);
    const NetId v = nl.add_net("v" + sfx);
    const NetId n1 = nl.add_net("n1_" + sfx);
    const NetId o1 = nl.add_net("o1_" + sfx);
    const NetId cout = nl.add_net("c" + std::to_string(i + 1));
    const NetId sum = nl.add_net("s" + sfx);
    nl.add_gate("fa" + sfx + "_nor3", "nor3", {ai, bi, carry}, u);
    nl.add_gate("fa" + sfx + "_nand3", "nand3", {ai, bi, carry}, v);
    nl.add_gate("fa" + sfx + "_nand2a", "nand2", {ai, bi}, n1);
    nl.add_gate("fa" + sfx + "_oai21a", "oai21", {ai, bi, carry}, o1);
    nl.add_gate("fa" + sfx + "_nand2b", "nand2", {n1, o1}, cout);
    nl.add_gate("fa" + sfx + "_oai21b", "oai21", {u, cout, v}, sum);
    nl.mark_primary_output(sum);
    carry = cout;
  }
  nl.mark_primary_output(carry);
  nl.validate();
  return nl;
}

namespace {
/// XOR of two nets: xor(a,b) = !(ab + !(a+b)) = aoi21(a, b, nor2(a,b)).
NetId make_xor(Netlist& nl, NetId a, NetId b, int& counter) {
  const std::string sfx = std::to_string(counter++);
  const NetId nor_ab = nl.add_net("_xn" + sfx);
  const NetId out = nl.add_net("_xo" + sfx);
  nl.add_gate("xor" + sfx + "_nor2", "nor2", {a, b}, nor_ab);
  nl.add_gate("xor" + sfx + "_aoi21", "aoi21", {a, b, nor_ab}, out);
  return out;
}
}  // namespace

Netlist parity_tree(const celllib::CellLibrary& library, int inputs) {
  require(inputs >= 2, "parity_tree: need at least two inputs");
  Netlist nl(library, "parity" + std::to_string(inputs));
  std::vector<NetId> level;
  for (int i = 0; i < inputs; ++i) {
    const NetId net = nl.add_net("x" + std::to_string(i));
    nl.mark_primary_input(net);
    level.push_back(net);
  }
  int counter = 0;
  while (level.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(make_xor(nl, level[i], level[i + 1], counter));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  nl.mark_primary_output(level.front());
  nl.validate();
  return nl;
}

Netlist xor_chain(const celllib::CellLibrary& library, const std::string& name,
                  int target_gates, int inputs, int inverter_run) {
  require(inputs >= 2, "xor_chain: need at least two inputs");
  require(inverter_run >= 1, "xor_chain: inverter_run must be >= 1");
  // Enough segments that every input gets tapped at least twice — the
  // cascade of one toggle dies at the next tap of the same input, so
  // shorter chains would never exercise the cancellation path.
  require(target_gates >= (2 * inputs + 1) * (inverter_run + 2),
          "xor_chain: target_gates too small for this input count");
  Netlist nl(library, name);
  std::vector<NetId> pi;
  for (int i = 0; i < inputs; ++i) {
    const NetId net = nl.add_net("p" + std::to_string(i));
    nl.mark_primary_input(net);
    pi.push_back(net);
  }
  int xor_counter = 0;
  NetId chain = make_xor(nl, pi[0], pi[1], xor_counter);
  int gate_count = 2;
  int tap = 2 % inputs;
  int inv_counter = 0;
  while (gate_count + inverter_run + 2 <= target_gates) {
    for (int r = 0; r < inverter_run; ++r) {
      const NetId out = nl.add_net("_ic" + std::to_string(inv_counter));
      nl.add_gate("chinv" + std::to_string(inv_counter), "inv", {chain}, out);
      ++inv_counter;
      ++gate_count;
      chain = out;
    }
    chain = make_xor(nl, chain, pi[static_cast<std::size_t>(tap)],
                     xor_counter);
    gate_count += 2;
    tap = (tap + 1) % inputs;
  }
  nl.mark_primary_output(chain);
  nl.validate();
  return nl;
}

Netlist mux_tree(const celllib::CellLibrary& library, int select_bits) {
  require(select_bits >= 1 && select_bits <= 6,
          "mux_tree: select_bits must be in 1..6");
  Netlist nl(library, "mux" + std::to_string(1 << select_bits));

  std::vector<NetId> data;
  const int leaves = 1 << select_bits;
  for (int i = 0; i < leaves; ++i) {
    const NetId net = nl.add_net("d" + std::to_string(i));
    nl.mark_primary_input(net);
    data.push_back(net);
  }
  std::vector<NetId> selects, select_bars;
  for (int s = 0; s < select_bits; ++s) {
    const NetId sel = nl.add_net("sel" + std::to_string(s));
    nl.mark_primary_input(sel);
    selects.push_back(sel);
    const NetId bar = nl.add_net("_selb" + std::to_string(s));
    nl.add_gate("selinv" + std::to_string(s), "inv", {sel}, bar);
    select_bars.push_back(bar);
  }

  int counter = 0;
  std::vector<NetId> level = data;
  for (int s = 0; s < select_bits; ++s) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      // mux = !aoi22(sel, hi, !sel, lo) : sel ? hi : lo.
      const std::string sfx = std::to_string(counter++);
      const NetId inner = nl.add_net("_ma" + sfx);
      const NetId out = nl.add_net("_mo" + sfx);
      nl.add_gate("mux" + sfx + "_aoi22", "aoi22",
                  {selects[static_cast<std::size_t>(s)], level[i + 1],
                   select_bars[static_cast<std::size_t>(s)], level[i]},
                  inner);
      nl.add_gate("mux" + sfx + "_inv", "inv", {inner}, out);
      next.push_back(out);
    }
    level = std::move(next);
  }
  nl.mark_primary_output(level.front());
  nl.validate();
  return nl;
}

Netlist random_circuit(const celllib::CellLibrary& library,
                       const RandomCircuitSpec& spec) {
  require(spec.target_gates >= 1, "random_circuit: target_gates must be >= 1");
  require(spec.primary_inputs >= 2, "random_circuit: need >= 2 inputs");
  Rng rng(spec.seed);
  Netlist nl(library, spec.name);

  // Realistic cell mix (weights loosely follow SIS mappings of the MCNC
  // suite: inverters and 2-input gates dominate, complex gates taper off).
  static const std::pair<const char*, int> mix[] = {
      {"inv", 10},    {"nand2", 16}, {"nor2", 12},  {"nand3", 8},
      {"nor3", 6},    {"aoi21", 8},  {"oai21", 8},  {"aoi22", 5},
      {"oai22", 5},   {"nand4", 3},  {"nor4", 2},   {"aoi211", 3},
      {"oai211", 3},  {"aoi221", 2}, {"oai221", 2}, {"aoi31", 2},
      {"oai31", 2},   {"aoi222", 1}, {"oai222", 1},
  };
  int total_weight = 0;
  for (const auto& [cell, w] : mix) total_weight += w;

  std::vector<NetId> pool;
  for (int i = 0; i < spec.primary_inputs; ++i) {
    const NetId net = nl.add_net("pi" + std::to_string(i));
    nl.mark_primary_input(net);
    pool.push_back(net);
  }

  for (int g = 0; g < spec.target_gates; ++g) {
    // Weighted cell pick.
    int roll = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(total_weight)));
    const char* cell_name = mix[0].first;
    for (const auto& [cell, w] : mix) {
      if (roll < w) {
        cell_name = cell;
        break;
      }
      roll -= w;
    }
    const celllib::Cell& cell = library.cell(cell_name);
    const int arity = cell.input_count();
    if (arity > static_cast<int>(pool.size())) {
      cell_name = "nand2";
    }
    const celllib::Cell& chosen = library.cell(cell_name);

    // Distinct inputs, quadratically biased towards recent nets so the
    // circuit acquires logic depth instead of staying flat.
    std::vector<NetId> inputs;
    while (static_cast<int>(inputs.size()) < chosen.input_count()) {
      const double r = rng.next_double();
      const std::size_t idx = pool.size() - 1 -
                              static_cast<std::size_t>(r * r *
                                                       static_cast<double>(
                                                           pool.size()));
      const NetId candidate = pool[idx < pool.size() ? idx : pool.size() - 1];
      bool duplicate = false;
      for (NetId used : inputs) duplicate = duplicate || used == candidate;
      if (!duplicate) inputs.push_back(candidate);
    }
    const NetId out = nl.add_net("n" + std::to_string(g));
    nl.add_gate(std::string(cell_name) + "_g" + std::to_string(g), cell_name,
                inputs, out);
    pool.push_back(out);
  }

  // Every sink (driven net without fanout) becomes a primary output.
  int po_count = 0;
  for (NetId id = 0; id < nl.net_count(); ++id) {
    const netlist::Net& net = nl.net(id);
    if (!net.is_primary_input && net.fanouts.empty()) {
      nl.mark_primary_output(id);
      ++po_count;
    }
  }
  require(po_count > 0, "random_circuit: generated circuit has no sinks");
  nl.validate();
  return nl;
}

}  // namespace tr::benchgen
