#pragma once
// Optimization service: the daemon's execution core (DESIGN.md
// Sec. 13.3, 13.4). Owns the process-lifetime CellLibrary — the warm
// reordering-catalog cache every request shares — plus a fixed pool of
// executor threads fed by a bounded priority queue (admission control).
//
// The transport layer (server.hpp) submits raw request payloads with a
// Sink to stream results back; the service parses, admits or rejects,
// executes, and classifies the outcome into its cumulative metrics.
// Keeping the service transport-free makes the whole execution path —
// admission, priorities, cancellation, containment, determinism —
// testable in-process without a socket.
//
// Determinism under concurrency: a response is a pure function of
// (request bytes, seed). Everything concurrency-dependent is excluded
// from response JSON (include_timing and include_cache_stats off); the
// shared cache only memoizes pure per-cell catalogs, so a warm or cold
// cache changes speed, never bytes. The hammer test pins this contract
// against serial tr_opt output.

#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "celllib/library.hpp"
#include "celllib/tech.hpp"
#include "server/request.hpp"
#include "util/cancel.hpp"

namespace tr::server {

/// Streaming result consumer for one request. Methods are called from
/// executor threads; implementations must be thread-safe with respect
/// to their own state. Write failures are the sink's business (the
/// socket sink latches a dead flag its connection monitor polls) —
/// the service keeps executing until the request's token cancels.
class Sink {
public:
  virtual ~Sink() = default;
  /// One per-circuit completion frame payload (render_progress).
  virtual void on_progress(const std::string& payload) = 0;
  /// The final batch JSON document; terminal.
  virtual void on_response(const std::string& payload) = 0;
  /// A structured error payload (render_error); terminal.
  virtual void on_error(const std::string& payload) = 0;
};

struct ServiceConfig {
  /// Executor threads = maximum concurrently running requests.
  int workers = 2;
  /// Maximum queued (admitted, not yet running) requests; submissions
  /// beyond it are rejected with a resource error, not buffered —
  /// back-pressure must reach the client, not grow the heap.
  std::size_t max_queue = 64;
  /// Catalog cache bound for the shared library; 0 = unbounded.
  std::size_t catalog_capacity = 0;
  /// Bound on remembered (request_id -> response) replay entries, LRU
  /// evicted; 0 disables idempotent replay entirely. Only completed
  /// *response* payloads are remembered — error frames re-execute, so a
  /// transient failure is never replayed forever (DESIGN.md Sec. 15.4).
  std::size_t replay_capacity = 64;
};

/// Cumulative counters reported in the drain-time metrics dump.
struct ServiceMetrics {
  std::uint64_t received = 0;   ///< submissions, valid or not
  std::uint64_t ok = 0;         ///< every circuit ok
  std::uint64_t error = 0;      ///< >= 1 circuit failed, or fatal error
  std::uint64_t cancelled = 0;  ///< cancelled, none failed
  std::uint64_t rejected = 0;   ///< admission refused (full / draining)
  std::uint64_t invalid = 0;    ///< unparseable / schema-violating
  std::uint64_t replayed = 0;   ///< answered from the idempotency cache
  celllib::CatalogCacheStats cache;  ///< shared-library lifetime totals
  std::size_t cached_catalogs = 0;   ///< resident entries at sample time
};

class OptimizeService {
public:
  explicit OptimizeService(ServiceConfig config = {});
  /// Joins the executors; pending queue entries are rejected first.
  ~OptimizeService();

  OptimizeService(const OptimizeService&) = delete;
  OptimizeService& operator=(const OptimizeService&) = delete;

  /// Parses and admits one request. On success returns the request's
  /// cancellation token — the transport cancels it when the client
  /// disconnects — and the sink will later receive progress frames and
  /// exactly one terminal on_response/on_error. On failure (bad JSON,
  /// schema violation, queue full, draining) the terminal on_error is
  /// delivered synchronously and an inert token is returned.
  ///
  /// `sink` must stay alive until its terminal call returns; the socket
  /// server guarantees this by keeping the connection object alive
  /// until the executor is done with it.
  util::CancellationToken submit(const std::string& request_json,
                                 const std::shared_ptr<Sink>& sink);

  /// Graceful drain: stop admitting, finish everything in flight and
  /// queued-before-drain, then return. Idempotent.
  void drain();

  /// Snapshot of the cumulative counters plus current cache state.
  ServiceMetrics metrics() const;

  /// The drain-time metrics dump (one JSON document; DESIGN.md
  /// Sec. 13.4) — the home of the cross-request cache hit rate and
  /// eviction counters excluded from per-response JSON.
  void write_metrics_json(std::ostream& out) const;

  const celllib::CellLibrary& library() const noexcept { return library_; }

private:
  struct Job {
    OptimizeRequest request;
    std::shared_ptr<Sink> sink;
    util::CancellationToken cancel;
  };

  void executor_loop();
  void execute(Job& job) noexcept;
  void classify_outcome(const opt::BatchReport& report);
  /// Looks up a completed request_id; moves a hit to most-recent.
  /// Returns nullptr on miss (pointer valid only under mutex_).
  const std::string* find_replay_locked(const std::string& request_id);
  /// Remembers a completed response, evicting the least recent beyond
  /// replay_capacity. Thread-safe.
  void remember_response(const std::string& request_id,
                         const std::string& payload);

  ServiceConfig config_;
  celllib::CellLibrary library_;
  celllib::Tech tech_;

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;  ///< executors wait for work
  std::condition_variable idle_cv_;   ///< drain waits for quiescence
  /// Admitted-but-not-running jobs, keyed {-priority, sequence}: the
  /// map's smallest key is the highest priority, FIFO within a level.
  std::map<std::pair<int, std::uint64_t>, Job> queue_;
  std::uint64_t next_sequence_ = 0;
  /// Idempotency replay cache: completed request_id -> response bytes,
  /// most-recently-used at the back of replay_order_. Guarded by mutex_.
  std::map<std::string, std::string> replay_;
  std::list<std::string> replay_order_;
  int running_ = 0;
  bool draining_ = false;  ///< no further admissions
  bool stopping_ = false;  ///< executors exit once the queue is empty
  ServiceMetrics counters_;  ///< cache fields filled at snapshot time

  std::vector<std::thread> executors_;
};

}  // namespace tr::server
