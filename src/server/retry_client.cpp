#include "server/retry_client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace tr::server {

namespace {

using Clock = std::chrono::steady_clock;

struct FdGuard {
  int fd;
  ~FdGuard() {
    if (fd >= 0) ::close(fd);
  }
};

[[noreturn]] void throw_disconnect(const std::string& message) {
  throw Error("client: " + message, ErrorCode::disconnect);
}

/// One bounded attempt: connect, send, stream until the terminal frame.
/// Each read slice is bounded by timeout_ms via read_frame's interrupt
/// predicate — per *read*, not per attempt, so long optimizations that
/// keep streaming progress never trip it.
ClientResult attempt_once(
    const std::string& host, int port, const std::string& request_json,
    double timeout_ms,
    const std::function<void(const std::string&)>& on_progress) {
  const FdGuard guard{connect_tcp_timeout(host, port, timeout_ms)};
  if (!write_frame(guard.fd, kFrameRequest, request_json)) {
    throw_disconnect("request send failed");
  }

  ClientResult result;
  for (;;) {
    Frame frame;
    std::function<bool()> interrupted;
    if (timeout_ms >= 0.0) {
      const Clock::time_point deadline =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double, std::milli>(
                                 timeout_ms));
      interrupted = [deadline] { return Clock::now() >= deadline; };
    }
    const ReadResult r =
        read_frame(guard.fd, frame, kDefaultMaxFrameBytes, interrupted);
    if (r == ReadResult::interrupted) {
      throw_disconnect("no frame within " +
                       std::to_string(static_cast<long long>(timeout_ms)) +
                       " ms (daemon hung or unreachable)");
    }
    if (r != ReadResult::ok) {
      throw_disconnect(read_result_message(r, frame, kDefaultMaxFrameBytes));
    }
    if (frame.type == kFrameProgress) {
      if (on_progress) on_progress(frame.payload);
      result.progress.push_back(std::move(frame.payload));
      continue;
    }
    if (frame.type == kFrameResponse || frame.type == kFrameError) {
      result.type = frame.type;
      result.payload = std::move(frame.payload);
      return result;
    }
    throw Error(std::string("client: unexpected frame type '") + frame.type +
                "'");
  }
}

/// True when an error-frame payload says the failure is worth retrying
/// ("retryable": true, schema v4). A payload that cannot be parsed or
/// predates the field counts as non-retryable — never loop on an
/// unclassified failure.
bool error_frame_retryable(const std::string& payload) {
  try {
    const util::JsonValue doc = util::json_parse(payload);
    const util::JsonValue* retryable = doc.find("retryable");
    return retryable != nullptr && retryable->as_bool("retryable");
  } catch (...) {
    return false;
  }
}

}  // namespace

int connect_tcp_timeout(const std::string& host, int port,
                        double timeout_ms) {
  if (timeout_ms < 0.0) return connect_tcp(host, port);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  require(fd >= 0, "client: socket: " + std::string(std::strerror(errno)));
  FdGuard guard{fd};

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw Error("client: bad address '" + host + "'",
                ErrorCode::invalid_argument);
  }

  const int flags = ::fcntl(fd, F_GETFL, 0);
  require(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
          "client: fcntl: " + std::string(std::strerror(errno)));

  const std::string endpoint = host + ":" + std::to_string(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      throw_disconnect("cannot connect to " + endpoint + ": " +
                       std::strerror(errno));
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int ready =
        ::poll(&pfd, 1, static_cast<int>(std::ceil(timeout_ms)));
    if (ready == 0) {
      throw_disconnect("connect to " + endpoint + " timed out after " +
                       std::to_string(static_cast<long long>(timeout_ms)) +
                       " ms");
    }
    if (ready < 0) {
      throw_disconnect("poll: " + std::string(std::strerror(errno)));
    }
    int error = 0;
    socklen_t len = sizeof(error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &len) != 0 ||
        error != 0) {
      throw_disconnect("cannot connect to " + endpoint + ": " +
                       std::strerror(error != 0 ? error : errno));
    }
  }

  // Back to blocking: the framed reads below poll with their own
  // deadline predicate and expect blocking semantics between slices.
  require(::fcntl(fd, F_SETFL, flags) == 0,
          "client: fcntl: " + std::string(std::strerror(errno)));
  guard.fd = -1;  // ownership passes to the caller
  return fd;
}

ClientResult run_request_with_retry(
    const std::string& host, int port, const std::string& request_json,
    const RetryPolicy& policy,
    const std::function<void(const std::string&)>& on_progress) {
  Rng jitter(policy.jitter_seed);

  for (int attempt = 0;; ++attempt) {
    std::string why;
    try {
      const ClientResult result =
          attempt_once(host, port, request_json, policy.timeout_ms,
                       on_progress);
      if (result.type != kFrameError || attempt >= policy.max_retries ||
          !error_frame_retryable(result.payload)) {
        return result;
      }
      // A retryable server error (queue full, injected fault, ...):
      // worth another attempt — with an idempotency key the daemon
      // replays the response if the request did complete meanwhile.
      why = "server error: " + result.payload;
    } catch (const Error& e) {
      if (attempt >= policy.max_retries || !is_retryable(e.code())) throw;
      why = e.what();
    }

    // Exponential backoff with deterministic jitter: delay_k =
    // min(base * 2^k, max) * U[0.5, 1.0).
    const double exp_delay =
        std::min(policy.base_backoff_ms * std::ldexp(1.0, attempt),
                 policy.max_backoff_ms);
    const double delay_ms = exp_delay * jitter.uniform(0.5, 1.0);
    if (policy.on_retry) policy.on_retry(attempt + 1, delay_ms, why);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay_ms));
  }
}

}  // namespace tr::server
