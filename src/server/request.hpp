#pragma once
// Server request schema (DESIGN.md Sec. 13.2).
//
// A request frame carries one JSON object mirroring the tr_opt option
// surface. Parsing is strict: unknown fields are rejected (a typoed
// "dedline_ms" must fail loudly, not silently run without a deadline),
// and every value is type- and range-checked with the same rules as the
// CLI's argument parsing. The daemon serves embedded/generated circuit
// specs only — file paths in a network request are refused, so a client
// cannot make the server read arbitrary local files.
//
// Recognised fields (all optional except that circuits/suite must name
// at least one circuit):
//   circuits   array of spec strings (classics / suite entries)
//   suite      "classic" | "table3" | "scaled" (appended to circuits)
//   scenario   "A" | "B"                        (default "A")
//   seed       non-negative integer             (default 1)
//   jobs       integer, 0 = hardware            (default 0)
//   threads_per_circuit  integer                (default 1)
//   objective  "minimize" | "maximize"          (default minimize)
//   model      "extended" | "output_only"       (default extended)
//   delay_budget  number >= 0 or null           (default null = off)
//   engine     "catalog" | "reference" | "anneal"  (default catalog)
//   anneal_seed   non-negative integer          (default 1)
//   anneal_iters  integer >= 1, moves per gate  (default 256)
//   restrict_instance  bool                     (default false)
//   keep_going bool                             (default true)
//   deadline_ms  finite number >= 0 or null     (default null = none)
//   priority   integer; higher runs first       (default 0)
//   gate_configs  bool, emit per-gate arrays    (default true)
//   request_id non-empty string: idempotency key — the daemon replays
//              the stored response of a completed ID instead of
//              re-executing it (default absent = every submission runs)

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "opt/batch.hpp"
#include "util/json.hpp"

namespace tr::server {

struct OptimizeRequest {
  std::vector<std::string> circuits;
  char scenario = 'A';
  std::uint64_t seed = 1;
  opt::BatchOptions batch;  ///< cancel/progress wired by the service
  /// Absent = no deadline; present = finite, >= 0 (enforced at parse).
  std::optional<double> deadline_ms;
  int priority = 0;
  bool gate_configs = true;
  std::string request_id;  ///< empty = no idempotency key
};

/// Parses and validates a request document. Throws tr::Error
/// (ErrorCode::invalid_argument) with a "request: ..." message on any
/// schema violation; propagates the parser's "json: ..." errors
/// (ErrorCode::parse) for malformed JSON.
OptimizeRequest parse_request(std::string_view json_text);

/// Renders one progress frame payload:
///   {"type":"progress","index":I,"circuit":NAME,"status":STATUS}
std::string render_progress(std::size_t index,
                            const opt::BatchCircuitResult& result);

/// Renders one error frame payload:
///   {"type":"error","code":CODE,"site":SITE,"message":MESSAGE}
std::string render_error(const opt::CircuitError& error);

}  // namespace tr::server
