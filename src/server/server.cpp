#include "server/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <ostream>
#include <thread>

#include "server/request.hpp"
#include "util/error.hpp"

namespace tr::server {

namespace {

// Monitor/accept poll slice; bounds how stale a drain or disconnect
// observation can be.
constexpr int kPollSliceMs = 100;

opt::CircuitError wire_error(ErrorCode code, const std::string& message) {
  opt::CircuitError error;
  error.code = code;
  error.site = "wire";
  error.message = message;
  return error;
}

/// Sink that frames payloads onto one connection socket. A failed send
/// latches `dead` (the peer is gone; MSG_NOSIGNAL turned the SIGPIPE
/// into an error) and every later send becomes a no-op — the monitor
/// loop observes the flag and cancels the request.
class SocketSink : public Sink {
public:
  explicit SocketSink(int fd) : fd_(fd) {}

  void on_progress(const std::string& payload) override {
    send(kFrameProgress, payload);
  }
  void on_response(const std::string& payload) override {
    send(kFrameResponse, payload);
    done_.store(true);
  }
  void on_error(const std::string& payload) override {
    send(kFrameError, payload);
    done_.store(true);
  }

  /// Terminal frame delivered (or dropped on a dead peer).
  bool done() const noexcept { return done_.load(); }
  /// A send failed; the peer is unreachable.
  bool dead() const noexcept { return dead_.load(); }

private:
  void send(char type, const std::string& payload) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (dead_.load()) return;
    if (!write_frame(fd_, type, payload)) dead_.store(true);
  }

  int fd_;
  std::mutex mutex_;  ///< serialises frames from executor vs monitor
  std::atomic<bool> done_{false};
  std::atomic<bool> dead_{false};
};

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error("server: " + what + ": " + std::strerror(errno),
              ErrorCode::internal);
}

}  // namespace

Server::Server(ServerConfig config)
    : config_(std::move(config)), service_(config_.service) {}

Server::~Server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (drain_pipe_[0] >= 0) ::close(drain_pipe_[0]);
  if (drain_pipe_[1] >= 0) ::close(drain_pipe_[1]);
  // serve() joins connection threads; a server destroyed without
  // serve() never spawned any.
}

void Server::start() {
  if (::pipe(drain_pipe_) != 0) throw_errno("pipe");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("socket");

  const int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    throw Error("server: bad bind address '" + config_.host + "'",
                ErrorCode::invalid_argument);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    throw_errno("bind to " + config_.host + ":" +
                std::to_string(config_.port));
  }
  if (::listen(listen_fd_, 64) != 0) throw_errno("listen");

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

void Server::serve() {
  require(listen_fd_ >= 0, "server: serve() before start()");
  while (!draining_.load()) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {drain_pipe_[0], POLLIN, 0};
    const int ready = ::poll(fds, 2, kPollSliceMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // drain requested
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    const std::lock_guard<std::mutex> lock(threads_mutex_);
    connection_threads_.emplace_back([this, fd] { handle_connection(fd); });
  }
  draining_.store(true);

  // Stop accepting, finish in-flight, join the transport. Connection
  // reads poll `draining_`, so idle clients cannot hold the drain open.
  ::close(listen_fd_);
  listen_fd_ = -1;
  service_.drain();
  std::vector<std::thread> threads;
  {
    const std::lock_guard<std::mutex> lock(threads_mutex_);
    threads.swap(connection_threads_);
  }
  for (std::thread& thread : threads) thread.join();
}

void Server::request_drain() noexcept {
  draining_.store(true);
  if (drain_pipe_[1] >= 0) {
    const char byte = 'd';
    // Single write to a pipe: async-signal-safe, and the accept loop
    // only needs readability, so a full pipe is still a wake-up.
    [[maybe_unused]] const ssize_t r = ::write(drain_pipe_[1], &byte, 1);
  }
}

void Server::write_metrics_json(std::ostream& out) const {
  service_.write_metrics_json(out);
}

void Server::handle_connection(int fd) {
  const auto interrupted = [this] { return draining_.load(); };

  Frame frame;
  const ReadResult result =
      read_frame(fd, frame, config_.max_frame_bytes, interrupted);

  if (result != ReadResult::ok) {
    // Malformed framing gets a structured parse error; a clean EOF or
    // an interrupted read just closes. Either way the stream is
    // unsynchronised, so the connection ends here.
    if (result == ReadResult::truncated_header ||
        result == ReadResult::truncated_payload ||
        result == ReadResult::oversized) {
      write_frame(fd, kFrameError,
                  render_error(wire_error(
                      ErrorCode::parse,
                      read_result_message(result, frame,
                                          config_.max_frame_bytes))));
    }
    ::close(fd);
    return;
  }

  if (frame.type == kFrameShutdown) {
    write_frame(fd, kFrameShutdownAck, "");
    ::close(fd);
    request_drain();
    return;
  }

  if (frame.type != kFrameRequest) {
    write_frame(fd, kFrameError,
                render_error(wire_error(
                    ErrorCode::invalid_argument,
                    std::string("wire: unexpected frame type '") +
                        frame.type + "'")));
    ::close(fd);
    return;
  }

  const auto sink = std::make_shared<SocketSink>(fd);
  const util::CancellationToken token = service_.submit(frame.payload, sink);

  // Monitor until the terminal frame: watch the socket for disconnect
  // (EOF/POLLRDHUP/error) and the sink for write failure, and cancel
  // the request on either. A valid token means the job was admitted;
  // an inert one means the terminal error was already delivered.
  while (token.valid() && !sink->done()) {
    if (sink->dead()) {
      token.request_cancel();
      break;
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN | POLLRDHUP;
    const int ready = ::poll(&pfd, 1, kPollSliceMs);
    if (ready < 0 && errno != EINTR) {
      token.request_cancel();
      break;
    }
    if (ready > 0) {
      if ((pfd.revents & (POLLRDHUP | POLLERR | POLLHUP | POLLNVAL)) != 0) {
        token.request_cancel();
        break;
      }
      if ((pfd.revents & POLLIN) != 0) {
        char buf[256];
        const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
        if (r == 0) {  // orderly shutdown from the client
          token.request_cancel();
          break;
        }
        if (r < 0 && errno != EINTR && errno != EAGAIN &&
            errno != EWOULDBLOCK) {
          token.request_cancel();
          break;
        }
        // Any bytes after the request frame are protocol junk; drain
        // and ignore them so POLLIN does not spin.
      }
    }
  }

  // A cancelled request still ends with a terminal frame attempt from
  // the executor; wait for it so `sink` outlives every use of fd.
  while (token.valid() && !sink->done()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ::close(fd);
}

}  // namespace tr::server
