#pragma once
// Socket transport of the optimization daemon (DESIGN.md Sec. 13.1,
// 13.4): accept loop, per-connection threads, disconnect-driven
// cancellation and graceful drain. All execution lives in
// OptimizeService — this layer only moves frames.
//
// Connection lifecycle: read one frame. 'Q' submits the payload to the
// service with a socket-backed sink, then the connection thread turns
// into a monitor: it polls the socket for disconnect (POLLRDHUP/EOF)
// and the sink for write failure, and cancels the request's token on
// either — a client that went away must not keep burning executor time.
// 'S' acknowledges with 'B' and triggers drain. Malformed frames are
// answered with a structured error frame; the stream is then
// unsynchronised, so the connection closes.
//
// Drain (SIGTERM via request_drain(), or an 'S' frame): stop accepting,
// interrupt idle reads, let in-flight requests finish, join connection
// threads, then serve() returns and the caller flushes the metrics
// dump. request_drain() is async-signal-safe (one write to a self-pipe).

#include <atomic>
#include <cstddef>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/protocol.hpp"
#include "server/service.hpp"

namespace tr::server {

struct ServerConfig {
  ServiceConfig service;
  /// Bind address. Loopback by default: the daemon trusts its clients
  /// (there is no authentication), so exposure beyond the host must be
  /// an explicit decision.
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  int port = 0;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
};

class Server {
public:
  explicit Server(ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens; throws tr::Error on socket failures. After
  /// start(), port() returns the actually-bound port.
  void start();
  int port() const noexcept { return port_; }

  /// Runs the accept loop until drain is requested, then drains the
  /// service, joins connection threads and returns. Call from the
  /// thread that owns the daemon's lifetime.
  void serve();

  /// Requests graceful drain. Async-signal-safe: installable directly
  /// in a SIGTERM handler.
  void request_drain() noexcept;

  /// The drain-time metrics dump (service counters + cache totals).
  void write_metrics_json(std::ostream& out) const;

  OptimizeService& service() noexcept { return service_; }

private:
  void handle_connection(int fd);

  ServerConfig config_;
  OptimizeService service_;
  int listen_fd_ = -1;
  int port_ = 0;
  int drain_pipe_[2] = {-1, -1};  ///< [0] polled by accept, [1] written
  std::atomic<bool> draining_{false};

  std::mutex threads_mutex_;
  std::vector<std::thread> connection_threads_;
};

}  // namespace tr::server
