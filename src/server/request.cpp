#include "server/request.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "opt/circuit_load.hpp"
#include "util/error.hpp"

namespace tr::server {

namespace {

[[noreturn]] void reject(const std::string& message) {
  throw Error("request: " + message, ErrorCode::invalid_argument);
}

int to_int(const util::JsonValue& value, const std::string& what) {
  const std::int64_t wide = value.as_i64(what);
  if (wide < std::numeric_limits<int>::min() ||
      wide > std::numeric_limits<int>::max()) {
    reject(what + " is out of range");
  }
  return static_cast<int>(wide);
}

void append_circuit(const util::JsonValue& value, OptimizeRequest& request) {
  const std::string& spec = value.as_string("circuits entry");
  // The daemon refuses request-named files: only embedded classics and
  // generated suite entries are served over the network.
  if (!opt::is_embedded_spec(spec)) {
    reject("unknown circuit '" + spec +
           "' (the server serves embedded classics and suite entries only)");
  }
  request.circuits.push_back(spec);
}

}  // namespace

OptimizeRequest parse_request(std::string_view json_text) {
  const util::JsonValue doc = util::json_parse(json_text);
  if (doc.kind != util::JsonValue::Kind::object) {
    reject("document must be a JSON object");
  }

  OptimizeRequest request;
  // Fields apply in document order, so circuits / suite interleave the
  // same way positional specs and --suite do on the command line.
  for (const auto& [key, value] : doc.object) {
    if (key == "circuits") {
      if (value.kind != util::JsonValue::Kind::array) {
        reject("circuits must be an array of circuit names");
      }
      for (const util::JsonValue& entry : value.array) {
        append_circuit(entry, request);
      }
    } else if (key == "suite") {
      for (const std::string& spec :
           opt::suite_circuit_specs(value.as_string("suite"))) {
        request.circuits.push_back(spec);
      }
    } else if (key == "scenario") {
      const std::string& s = value.as_string("scenario");
      if (s != "A" && s != "B") reject("scenario must be \"A\" or \"B\"");
      request.scenario = s[0];
    } else if (key == "seed") {
      request.seed = value.as_u64("seed");
    } else if (key == "jobs") {
      request.batch.jobs = to_int(value, "jobs");
    } else if (key == "threads_per_circuit") {
      request.batch.threads_per_circuit = to_int(value, "threads_per_circuit");
    } else if (key == "objective") {
      const std::string& o = value.as_string("objective");
      if (o == "minimize") {
        request.batch.opt.objective = opt::Objective::minimize_power;
      } else if (o == "maximize") {
        request.batch.opt.objective = opt::Objective::maximize_power;
      } else {
        reject("objective must be \"minimize\" or \"maximize\"");
      }
    } else if (key == "model") {
      const std::string& m = value.as_string("model");
      if (m == "extended") {
        request.batch.opt.model = power::ModelKind::extended;
      } else if (m == "output_only") {
        request.batch.opt.model = power::ModelKind::output_only;
      } else {
        reject("model must be \"extended\" or \"output_only\"");
      }
    } else if (key == "delay_budget") {
      if (value.is_null()) {
        request.batch.opt.max_circuit_delay_increase.reset();
      } else {
        const double budget = value.as_double("delay_budget");
        if (!std::isfinite(budget) || budget < 0.0) {
          reject("delay_budget must be a non-negative number or null");
        }
        request.batch.opt.max_circuit_delay_increase = budget;
      }
    } else if (key == "engine") {
      const std::string& e = value.as_string("engine");
      if (e == "catalog") {
        request.batch.opt.engine = opt::Engine::catalog;
      } else if (e == "reference") {
        request.batch.opt.engine = opt::Engine::reference;
      } else if (e == "anneal") {
        request.batch.opt.engine = opt::Engine::anneal;
      } else {
        reject("engine must be \"catalog\", \"reference\" or \"anneal\"");
      }
    } else if (key == "anneal_seed") {
      request.batch.opt.anneal.seed = value.as_u64("anneal_seed");
    } else if (key == "anneal_iters") {
      const int iters = to_int(value, "anneal_iters");
      if (iters < 1) reject("anneal_iters must be >= 1");
      request.batch.opt.anneal.iterations_per_gate = iters;
    } else if (key == "restrict_instance") {
      request.batch.opt.restrict_to_instance =
          value.as_bool("restrict_instance");
    } else if (key == "keep_going") {
      request.batch.keep_going = value.as_bool("keep_going");
    } else if (key == "deadline_ms") {
      if (value.is_null()) {
        request.deadline_ms.reset();
      } else {
        const double deadline = value.as_double("deadline_ms");
        // The finite check mirrors CancellationToken::with_deadline_ms:
        // a NaN comparison is always false, so an unchecked NaN deadline
        // would silently never latch.
        if (!std::isfinite(deadline) || deadline < 0.0) {
          reject("deadline_ms must be a finite non-negative number or null");
        }
        request.deadline_ms = deadline;
      }
    } else if (key == "priority") {
      request.priority = to_int(value, "priority");
    } else if (key == "gate_configs") {
      request.gate_configs = value.as_bool("gate_configs");
    } else if (key == "request_id") {
      request.request_id = value.as_string("request_id");
      if (request.request_id.empty()) {
        reject("request_id must be a non-empty string");
      }
    } else {
      reject("unknown field '" + key + "'");
    }
  }

  if (request.circuits.empty()) reject("no circuits given");
  return request;
}

std::string render_progress(std::size_t index,
                            const opt::BatchCircuitResult& result) {
  std::ostringstream out;
  util::JsonWriter w(out);
  w.begin_object();
  w.key("type");
  w.value("progress");
  w.key("index");
  w.value(static_cast<std::int64_t>(index));
  w.key("circuit");
  w.value(result.name);
  w.key("status");
  w.value(opt::circuit_status_name(result.status));
  w.end_object();
  return out.str();
}

std::string render_error(const opt::CircuitError& error) {
  std::ostringstream out;
  util::JsonWriter w(out);
  w.begin_object();
  w.key("type");
  w.value("error");
  w.key("code");
  w.value(error_code_name(error.code));
  w.key("retryable");
  w.value(is_retryable(error.code));
  w.key("site");
  w.value(error.site);
  w.key("message");
  w.value(error.message);
  w.end_object();
  return out.str();
}

}  // namespace tr::server
