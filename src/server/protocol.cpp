#include "server/protocol.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstring>

namespace tr::server {

namespace {

// Poll slice between interrupt checks. Short enough that a drain stops
// an idle read promptly, long enough that waiting costs no real CPU.
constexpr int kPollSliceMs = 100;

/// Reads exactly `n` bytes into `out`. Returns the byte count actually
/// read: n on success, less on EOF/interrupt/error, with `result` set
/// to the reason when short.
std::size_t read_exact(int fd, char* out, std::size_t n,
                       const std::function<bool()>& interrupted,
                       ReadResult& result) {
  std::size_t got = 0;
  while (got < n) {
    if (interrupted && interrupted()) {
      result = ReadResult::interrupted;
      return got;
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kPollSliceMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      result = ReadResult::io_error;
      return got;
    }
    if (ready == 0) continue;  // slice elapsed; re-check interrupt
    const ssize_t r = ::recv(fd, out + got, n - got, 0);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      result = ReadResult::closed;  // caller refines to truncated_*
      return got;
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    result = ReadResult::io_error;
    return got;
  }
  result = ReadResult::ok;
  return got;
}

}  // namespace

std::string read_result_message(ReadResult result, const Frame& frame,
                                std::size_t max_payload) {
  switch (result) {
    case ReadResult::ok:
      return "";
    case ReadResult::closed:
      return "wire: connection closed";
    case ReadResult::truncated_header:
      return "wire: truncated frame header";
    case ReadResult::truncated_payload:
      return "wire: truncated frame payload (got " +
             std::to_string(frame.payload.size()) + " of " +
             std::to_string(frame.declared_length) + " bytes)";
    case ReadResult::oversized:
      return "wire: frame length " + std::to_string(frame.declared_length) +
             " exceeds limit of " + std::to_string(max_payload) + " bytes";
    case ReadResult::interrupted:
      return "wire: read interrupted";
    case ReadResult::io_error:
      return "wire: read failed";
  }
  return "wire: unknown read result";
}

ReadResult read_frame(int fd, Frame& frame, std::size_t max_payload,
                      const std::function<bool()>& interrupted) {
  frame.type = 0;
  frame.payload.clear();
  frame.declared_length = 0;

  char header[5];
  ReadResult result = ReadResult::ok;
  const std::size_t header_got =
      read_exact(fd, header, sizeof(header), interrupted, result);
  if (result != ReadResult::ok) {
    if (result == ReadResult::closed && header_got > 0) {
      return ReadResult::truncated_header;
    }
    return result;  // closed (clean EOF), interrupted, io_error
  }

  std::uint32_t length = 0;
  // Little-endian, assembled byte-by-byte so the wire format does not
  // depend on host endianness.
  for (int i = 3; i >= 0; --i) {
    length = (length << 8) | static_cast<unsigned char>(header[i]);
  }
  frame.type = header[4];
  frame.declared_length = length;

  if (length > max_payload) return ReadResult::oversized;

  frame.payload.resize(length);
  if (length > 0) {
    const std::size_t payload_got =
        read_exact(fd, frame.payload.data(), length, interrupted, result);
    if (result != ReadResult::ok) {
      frame.payload.resize(payload_got);
      if (result == ReadResult::closed) return ReadResult::truncated_payload;
      return result;
    }
  }
  return ReadResult::ok;
}

bool write_frame(int fd, char type, std::string_view payload) noexcept {
  char header[5];
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  header[0] = static_cast<char>(length & 0xff);
  header[1] = static_cast<char>((length >> 8) & 0xff);
  header[2] = static_cast<char>((length >> 16) & 0xff);
  header[3] = static_cast<char>((length >> 24) & 0xff);
  header[4] = type;

  const char* chunks[2] = {header, payload.data()};
  std::size_t sizes[2] = {sizeof(header), payload.size()};
  for (int part = 0; part < 2; ++part) {
    const char* data = chunks[part];
    std::size_t remaining = sizes[part];
    while (remaining > 0) {
      const ssize_t sent = ::send(fd, data, remaining, MSG_NOSIGNAL);
      if (sent < 0) {
        if (errno == EINTR) continue;
        return false;  // EPIPE and friends: peer is gone, caller handles
      }
      data += sent;
      remaining -= static_cast<std::size_t>(sent);
    }
  }
  return true;
}

}  // namespace tr::server
