#include "server/service.hpp"

#include <ostream>
#include <sstream>

#include "opt/batch_report.hpp"
#include "opt/circuit_load.hpp"
#include "util/fault.hpp"
#include "util/json.hpp"

namespace tr::server {

namespace {

opt::CircuitError make_error(ErrorCode code, std::string site,
                             std::string message) {
  opt::CircuitError error;
  error.code = code;
  error.site = std::move(site);
  error.message = std::move(message);
  return error;
}

}  // namespace

OptimizeService::OptimizeService(ServiceConfig config)
    : config_(config), library_(celllib::CellLibrary::standard()) {
  if (config_.workers < 1) config_.workers = 1;
  library_.set_catalog_capacity(config_.catalog_capacity);
  executors_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    executors_.emplace_back([this] { executor_loop(); });
  }
}

OptimizeService::~OptimizeService() {
  drain();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& executor : executors_) executor.join();
}

util::CancellationToken OptimizeService::submit(
    const std::string& request_json, const std::shared_ptr<Sink>& sink) {
  OptimizeRequest request;
  try {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.received;
    }
    request = parse_request(request_json);
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.invalid;
    }
    sink->on_error(render_error(opt::describe_current_exception()));
    return {};
  }

  // Idempotent replay (DESIGN.md Sec. 15.4): a request_id the service
  // already answered is served from the replay cache without touching
  // the queue — a client retrying a lost response never re-runs the
  // work. Checked after parsing so a malformed duplicate still counts
  // as invalid. No progress frames are replayed: the terminal response
  // is the contract, progress is best-effort observability.
  if (!request.request_id.empty()) {
    std::string replay;
    bool hit = false;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (const std::string* stored = find_replay_locked(request.request_id)) {
        replay = *stored;
        hit = true;
        ++counters_.replayed;
      }
    }
    if (hit) {
      sink->on_response(replay);
      return {};
    }
  }

  Job job;
  job.cancel = request.deadline_ms
                   ? util::CancellationToken::with_deadline_ms(
                         *request.deadline_ms)
                   : util::CancellationToken::cancellable();
  const util::CancellationToken token = job.cancel;
  job.request = std::move(request);
  job.sink = sink;

  std::string reject_reason;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (draining_) {
      ++counters_.rejected;
      reject_reason = "server: draining, not accepting requests";
    } else if (queue_.size() >= config_.max_queue) {
      ++counters_.rejected;
      reject_reason = "server: queue full (" +
                      std::to_string(config_.max_queue) +
                      " pending requests)";
    } else {
      // Smallest key = highest priority, FIFO within a level.
      queue_.emplace(std::make_pair(-job.request.priority, next_sequence_++),
                     std::move(job));
      queue_cv_.notify_one();
      return token;
    }
  }
  // Rejected: back-pressure is the client's problem to react to, so it
  // gets a structured resource error, synchronously.
  sink->on_error(
      render_error(make_error(ErrorCode::resource, "server", reject_reason)));
  return {};
}

void OptimizeService::executor_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and nothing left
      auto it = queue_.begin();
      job = std::move(it->second);
      queue_.erase(it);
      ++running_;
    }
    execute(job);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --running_;
    }
    idle_cv_.notify_all();
  }
}

void OptimizeService::execute(Job& job) noexcept {
  try {
    // The injectable failure point of the request path (DESIGN.md
    // Sec. 12.4): CI drills arm TR_FAULT=server.request and assert the
    // daemon answers a structured fault_injected error and lives on.
    // The fault's own site string ("server.request") is the report
    // convention, matching the golden batch.circuit fixtures.
    util::fault::check("server.request");

    // No early cancel check: an already-expired deadline still yields a
    // full deterministic report with every circuit `cancelled`, exactly
    // like `tr_opt --deadline-ms 0` (the batch layer checks the token
    // at each circuit start, so no optimization work actually runs).
    std::vector<opt::BatchCircuit> batch;
    batch.reserve(job.request.circuits.size());
    for (const std::string& spec : job.request.circuits) {
      batch.push_back(opt::make_scenario_circuit_guarded(
          spec, job.request.scenario, job.request.seed, library_,
          [&] { return opt::load_circuit_spec(spec, library_); }));
    }

    opt::BatchOptions options = job.request.batch;
    options.cancel = job.cancel;
    const std::shared_ptr<Sink> sink = job.sink;
    options.progress = [sink](std::size_t index,
                              const opt::BatchCircuitResult& result) {
      sink->on_progress(render_progress(index, result));
    };

    const opt::BatchOptimizer optimizer(library_, tech_, options);
    const opt::BatchReport report = optimizer.run(batch);

    opt::BatchJsonOptions json;
    json.include_timing = false;       // wall clock is nondeterministic
    json.include_cache_stats = false;  // deltas depend on other requests
    json.include_gate_configs = job.request.gate_configs;
    std::ostringstream out;
    write_batch_json(batch, report, options, out, json);
    const std::string payload = out.str();
    // Remember before sending: if the client dies between our send and
    // its read, its retry must find the entry already present.
    if (!job.request.request_id.empty()) {
      remember_response(job.request.request_id, payload);
    }
    job.sink->on_response(payload);
    classify_outcome(report);
  } catch (...) {
    const opt::CircuitError error = opt::describe_current_exception();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (error.code == ErrorCode::cancelled) {
        ++counters_.cancelled;
      } else {
        ++counters_.error;
      }
    }
    // The sink may be writing to a dead socket; its failure handling is
    // internal. Nothing here may throw out of the executor.
    try {
      job.sink->on_error(render_error(error));
    } catch (...) {
    }
  }
}

const std::string* OptimizeService::find_replay_locked(
    const std::string& request_id) {
  const auto it = replay_.find(request_id);
  if (it == replay_.end()) return nullptr;
  // Move to most-recent; the list is small (replay_capacity), so the
  // linear remove is noise next to the optimization work being skipped.
  replay_order_.remove(request_id);
  replay_order_.push_back(request_id);
  return &it->second;
}

void OptimizeService::remember_response(const std::string& request_id,
                                        const std::string& payload) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (config_.replay_capacity == 0) return;
  const auto it = replay_.find(request_id);
  if (it != replay_.end()) {
    // A concurrent duplicate completed first; responses are pure
    // functions of the request bytes, so the payloads agree — just
    // refresh recency.
    replay_order_.remove(request_id);
    replay_order_.push_back(request_id);
    return;
  }
  while (replay_.size() >= config_.replay_capacity) {
    replay_.erase(replay_order_.front());
    replay_order_.pop_front();
  }
  replay_.emplace(request_id, payload);
  replay_order_.push_back(request_id);
}

void OptimizeService::classify_outcome(const opt::BatchReport& report) {
  const std::lock_guard<std::mutex> lock(mutex_);
  // Mirrors the CLI's exit-code precedence: a failed circuit beats
  // cancellation, which beats ok.
  if (report.circuits_failed > 0) {
    ++counters_.error;
  } else if (report.circuits_cancelled > 0) {
    ++counters_.cancelled;
  } else {
    ++counters_.ok;
  }
}

void OptimizeService::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  draining_ = true;
  idle_cv_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

ServiceMetrics OptimizeService::metrics() const {
  ServiceMetrics snapshot;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    snapshot = counters_;
  }
  snapshot.cache = library_.catalog_cache_stats();
  snapshot.cached_catalogs = library_.cached_catalog_count();
  return snapshot;
}

void OptimizeService::write_metrics_json(std::ostream& out) const {
  const ServiceMetrics m = metrics();
  util::JsonWriter w(out);
  w.begin_object();
  w.key("generator");
  w.value("tr_opt_server");
  w.key("requests");
  w.begin_object();
  w.key("received");
  w.value(m.received);
  w.key("ok");
  w.value(m.ok);
  w.key("error");
  w.value(m.error);
  w.key("cancelled");
  w.value(m.cancelled);
  w.key("rejected");
  w.value(m.rejected);
  w.key("invalid");
  w.value(m.invalid);
  w.key("replayed");
  w.value(m.replayed);
  w.end_object();
  // The cross-request cache story lives here, not in response JSON:
  // lifetime hit/miss/eviction totals of the shared warm cache.
  w.key("catalog_cache");
  w.begin_object();
  w.key("hits");
  w.value(m.cache.hits);
  w.key("misses");
  w.value(m.cache.misses);
  w.key("lookups");
  w.value(m.cache.lookups());
  w.key("hit_rate");
  w.value(m.cache.hit_rate());
  w.key("evictions");
  w.value(m.cache.evictions);
  w.key("resident");
  w.value(static_cast<std::uint64_t>(m.cached_catalogs));
  w.key("capacity");
  w.value(static_cast<std::uint64_t>(library_.catalog_capacity()));
  w.end_object();
  w.end_object();
}

}  // namespace tr::server
