#include "server/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.hpp"

namespace tr::server {

namespace {

/// Closes the fd on every exit path of the request exchange.
struct FdGuard {
  int fd;
  ~FdGuard() {
    if (fd >= 0) ::close(fd);
  }
};

}  // namespace

int connect_tcp(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  require(fd >= 0, "client: socket: " + std::string(std::strerror(errno)));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw Error("client: bad address '" + host + "'",
                ErrorCode::invalid_argument);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string detail = std::strerror(errno);
    ::close(fd);
    // A refused/unreachable daemon is a transport condition, not a bad
    // request: ErrorCode::disconnect so retry_client classifies it as
    // retryable (the daemon may be restarting).
    throw Error("client: cannot connect to " + host + ":" +
                    std::to_string(port) + ": " + detail,
                ErrorCode::disconnect);
  }
  return fd;
}

ClientResult run_request(
    const std::string& host, int port, const std::string& request_json,
    const std::function<void(const std::string&)>& on_progress) {
  const FdGuard guard{connect_tcp(host, port)};
  if (!write_frame(guard.fd, kFrameRequest, request_json)) {
    throw Error("client: request send failed", ErrorCode::disconnect);
  }

  ClientResult result;
  for (;;) {
    Frame frame;
    // Responses can take as long as the optimization itself; there is
    // no client-side timeout — the caller's deadline travels in the
    // request and the server enforces it.
    const ReadResult r = read_frame(guard.fd, frame, kDefaultMaxFrameBytes);
    if (r != ReadResult::ok) {
      // Every mid-stream read failure — EOF before the terminal frame,
      // reset, torn header — means the daemon went away under us:
      // classify as disconnect so a retrying caller tries again.
      throw Error("client: " + read_result_message(r, frame,
                                                   kDefaultMaxFrameBytes),
                  ErrorCode::disconnect);
    }
    if (frame.type == kFrameProgress) {
      if (on_progress) on_progress(frame.payload);
      result.progress.push_back(std::move(frame.payload));
      continue;
    }
    if (frame.type == kFrameResponse || frame.type == kFrameError) {
      result.type = frame.type;
      result.payload = std::move(frame.payload);
      return result;
    }
    throw Error(std::string("client: unexpected frame type '") + frame.type +
                "'");
  }
}

bool send_shutdown(const std::string& host, int port) {
  const FdGuard guard{connect_tcp(host, port)};
  if (!write_frame(guard.fd, kFrameShutdown, "")) return false;
  Frame frame;
  const ReadResult r = read_frame(guard.fd, frame, kDefaultMaxFrameBytes);
  return r == ReadResult::ok && frame.type == kFrameShutdownAck;
}

}  // namespace tr::server
