#pragma once
// Wire protocol of the optimization server (DESIGN.md Sec. 13.1).
//
// Frames are length-prefixed so a stream socket carries a clean message
// sequence with zero parsing ambiguity:
//
//   frame := length:u32-LE | type:u8 | payload[length]
//
// The length counts payload bytes only (the 5-byte header is fixed).
// Types are printable ASCII so captures read at a glance:
//
//   client -> server:  'Q' request (JSON, Sec. 13.2)   'S' shutdown
//   server -> client:  'P' progress (JSON)  'R' response (batch JSON)
//                      'E' error (JSON)     'B' shutdown acknowledged
//
// A connection carries one request: the client sends 'Q', reads zero or
// more 'P' frames, then exactly one 'R' or 'E', and the server closes.
// 'S' asks the daemon to drain (stop accepting, finish in-flight,
// flush metrics); it is acknowledged with an empty 'B'.
//
// Every send uses MSG_NOSIGNAL: a client that disconnected mid-stream
// must surface as a write error the server can handle, never as a
// process-killing SIGPIPE (ISSUE 8 satellite). Reads poll with a short
// timeout and an interrupt predicate so a drain can abort a read from
// an idle client that never sends a frame.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace tr::server {

/// Frame type bytes (see the table above).
inline constexpr char kFrameRequest = 'Q';
inline constexpr char kFrameShutdown = 'S';
inline constexpr char kFrameProgress = 'P';
inline constexpr char kFrameResponse = 'R';
inline constexpr char kFrameError = 'E';
inline constexpr char kFrameShutdownAck = 'B';

/// Default bound on an incoming frame's payload (16 MiB): a request is
/// a small JSON document, so anything near the bound is garbage or an
/// attack, and rejecting it early keeps one client from ballooning the
/// daemon's memory.
inline constexpr std::size_t kDefaultMaxFrameBytes = 16u << 20;

struct Frame {
  char type = 0;
  std::string payload;
  /// Payload length declared by the header. On a truncated or oversized
  /// read, payload holds fewer bytes than this.
  std::uint32_t declared_length = 0;
};

/// Outcome of read_frame. The error variants map onto the structured
/// error responses of the malformed-frame corpus (DESIGN.md Sec. 13.5).
enum class ReadResult : std::uint8_t {
  ok,                 ///< frame filled
  closed,             ///< clean EOF before any header byte
  truncated_header,   ///< EOF inside the 5-byte header
  truncated_payload,  ///< EOF inside the payload
  oversized,          ///< declared length exceeds max_payload
  interrupted,        ///< the interrupt predicate fired mid-wait
  io_error,           ///< recv failed (connection reset, ...)
};

/// Human-readable detail for a non-ok ReadResult ("wire: ..."), stable
/// strings pinned by the corpus tests.
std::string read_result_message(ReadResult result, const Frame& frame,
                                std::size_t max_payload);

/// Reads one frame, blocking in short poll slices. `interrupted` (when
/// set) is checked between slices; returning true aborts the read.
/// On `oversized` the declared length is left in frame.payload's size
/// field only conceptually — the payload is NOT read, and the caller
/// must treat the stream as unsynchronised and close it.
ReadResult read_frame(int fd, Frame& frame, std::size_t max_payload,
                      const std::function<bool()>& interrupted = {});

/// Writes one frame (MSG_NOSIGNAL, full payload). False on any send
/// failure — the caller treats the peer as disconnected.
bool write_frame(int fd, char type, std::string_view payload) noexcept;

}  // namespace tr::server
