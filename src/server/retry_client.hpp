#pragma once
// Resilient client for the optimization daemon (DESIGN.md Sec. 15.4).
//
// run_request (client.hpp) is deliberately dumb: one connection, one
// attempt, block forever. This wrapper adds the three things a client
// surviving daemon restarts needs:
//
//   * timeouts — a per-attempt bound on connect and on each read, so a
//     hung daemon surfaces as a retryable failure instead of a stuck
//     client;
//   * bounded retries with exponential backoff — transport failures
//     (ErrorCode::disconnect and friends, see is_retryable) and
//     *retryable* server error responses are re-attempted up to
//     max_retries times, with delays doubling from base_backoff_ms and
//     a deterministic seeded jitter so retry storms decorrelate yet
//     tests replay exactly;
//   * idempotency keys — callers put a request_id into the request
//     document; the daemon replays the stored response of a completed
//     ID instead of re-executing, so "retry until success" composes
//     with "execute at most once" even when the first response was
//     lost in flight.
//
// Non-retryable failures (parse errors, invalid arguments — retrying
// cannot change the outcome) are rethrown/returned immediately.

#include <cstdint>
#include <functional>
#include <string>

#include "server/client.hpp"

namespace tr::server {

struct RetryPolicy {
  /// Extra attempts after the first; 0 = single attempt (still applies
  /// the timeout).
  int max_retries = 0;
  /// Backoff before the first retry; doubles per retry.
  double base_backoff_ms = 100.0;
  /// Backoff ceiling (applied before jitter).
  double max_backoff_ms = 5000.0;
  /// Per-attempt bound on the connect and on *each* frame read; < 0 =
  /// none (the server's --deadline-ms is then the only bound). The
  /// per-read scope means a slow-but-alive daemon streaming progress is
  /// never falsely timed out, while a daemon that went silent is.
  double timeout_ms = -1.0;
  /// Seed of the jitter stream: each retry's delay is scaled by a
  /// uniform factor in [0.5, 1.0] drawn from a tr::Rng seeded with
  /// this, so a fleet of clients seeded differently decorrelates while
  /// any one client's schedule is reproducible.
  std::uint64_t jitter_seed = 1;
  /// Observability hook: called before each backoff sleep with the
  /// upcoming attempt number (1-based), the jittered delay and the
  /// failure that caused the retry.
  std::function<void(int attempt, double delay_ms, const std::string& why)>
      on_retry;
};

/// run_request with the policy applied. Returns the terminal result —
/// possibly an error frame, when it is non-retryable or retries are
/// exhausted. Throws tr::Error when every attempt failed at the
/// transport level (the last failure propagates).
ClientResult run_request_with_retry(
    const std::string& host, int port, const std::string& request_json,
    const RetryPolicy& policy,
    const std::function<void(const std::string&)>& on_progress = {});

/// connect_tcp with a bound: a non-blocking connect that must complete
/// within timeout_ms (< 0 = blocking, identical to connect_tcp).
/// Throws ErrorCode::disconnect on timeout or refusal.
int connect_tcp_timeout(const std::string& host, int port, double timeout_ms);

}  // namespace tr::server
