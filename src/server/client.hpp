#pragma once
// Blocking client for the optimization daemon (DESIGN.md Sec. 13.1):
// one connection per request, used by `tr_opt --connect`, the smoke
// suite and the determinism hammer test. The client is deliberately
// dumb — it frames the request, streams progress to a callback and
// hands back the terminal payload verbatim, so byte-level comparisons
// against serial tr_opt output see exactly what travelled the wire.

#include <functional>
#include <string>
#include <vector>

#include "server/protocol.hpp"

namespace tr::server {

struct ClientResult {
  /// kFrameResponse or kFrameError.
  char type = 0;
  /// The terminal payload, byte-for-byte as received.
  std::string payload;
  /// Progress payloads in arrival order.
  std::vector<std::string> progress;
};

/// Connects to host:port; throws tr::Error on failure. Returns the fd.
int connect_tcp(const std::string& host, int port);

/// Sends one request document and blocks until the terminal frame.
/// `on_progress` (optional) sees each progress payload as it arrives.
/// Throws tr::Error on connect/framing failures or a premature close.
ClientResult run_request(
    const std::string& host, int port, const std::string& request_json,
    const std::function<void(const std::string&)>& on_progress = {});

/// Asks the daemon to drain. Returns once the shutdown is acknowledged;
/// throws on connect failure, returns false if the ack never arrived.
bool send_shutdown(const std::string& host, int port);

}  // namespace tr::server
