#include "boolfn/isop.hpp"

#include "util/error.hpp"

namespace tr::boolfn {

namespace {

/// Minato-Morreale recursion over an interval [lower, upper]:
/// returns a cube cover C with lower <= OR(C) <= upper, and writes OR(C)
/// to `cover_fn`. Cubes are built over `var_count` variables.
std::vector<Cube> isop_interval(const TruthTable& lower,
                                const TruthTable& upper, int var_count,
                                TruthTable& cover_fn) {
  TR_ASSERT((lower & ~upper).is_zero());
  if (lower.is_zero()) {
    cover_fn = TruthTable::zero(var_count);
    return {};
  }
  if (upper.is_one()) {
    cover_fn = TruthTable::one(var_count);
    return {Cube(static_cast<std::size_t>(var_count), '-')};
  }

  // Split on the first variable either bound depends on.
  int split = -1;
  for (int j = 0; j < var_count; ++j) {
    if (lower.depends_on(j) || upper.depends_on(j)) {
      split = j;
      break;
    }
  }
  TR_ASSERT(split >= 0);

  const TruthTable l0 = lower.cofactor(split, false);
  const TruthTable l1 = lower.cofactor(split, true);
  const TruthTable u0 = upper.cofactor(split, false);
  const TruthTable u1 = upper.cofactor(split, true);

  // Cubes that must contain the negative / positive literal of `split`.
  TruthTable f0(var_count), f1(var_count), fs(var_count);
  std::vector<Cube> c0 = isop_interval(l0 & ~u1, u0, var_count, f0);
  std::vector<Cube> c1 = isop_interval(l1 & ~u0, u1, var_count, f1);

  // Remaining onset not yet covered, must be covered split-independently.
  const TruthTable l_rest = (l0 & ~f0) | (l1 & ~f1);
  std::vector<Cube> cs = isop_interval(l_rest, u0 & u1, var_count, fs);

  std::vector<Cube> cover;
  cover.reserve(c0.size() + c1.size() + cs.size());
  for (Cube& c : c0) {
    c[static_cast<std::size_t>(split)] = '0';
    cover.push_back(std::move(c));
  }
  for (Cube& c : c1) {
    c[static_cast<std::size_t>(split)] = '1';
    cover.push_back(std::move(c));
  }
  for (Cube& c : cs) cover.push_back(std::move(c));

  const TruthTable x = TruthTable::variable(var_count, split);
  cover_fn = (~x & f0) | (x & f1) | fs;
  TR_ASSERT((lower & ~cover_fn).is_zero());
  TR_ASSERT((cover_fn & ~upper).is_zero());
  return cover;
}

}  // namespace

std::vector<Cube> isop(const TruthTable& f) {
  TruthTable cover_fn(f.var_count());
  std::vector<Cube> cubes = isop_interval(f, f, f.var_count(), cover_fn);
  TR_ASSERT(cover_fn == f);
  return cubes;
}

}  // namespace tr::boolfn
