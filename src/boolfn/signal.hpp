#pragma once
// Stochastic signal model: every logic signal is a 0-1 stationary Markov
// process characterised by its equilibrium probability P(x) (paper
// Def. 3.3) and its transition density D(x) in transitions per second
// (paper Def. 3.4). Propagation across a boolean function uses
// Parker-McCluskey for probabilities and Najm's transition density for
// activity (paper Sec. 3.2):
//
//     D(y) = sum_i P(dy/dx_i) * D(x_i)

#include <vector>

#include "boolfn/truth_table.hpp"

namespace tr::boolfn {

/// Equilibrium probability + transition density of one signal.
struct SignalStats {
  double prob = 0.5;     ///< P(x): probability the signal is '1'.
  double density = 0.0;  ///< D(x): transitions per time unit (both edges).
};

/// Exact equilibrium probability of f's output under spatially independent
/// inputs (Parker-McCluskey). `inputs[j]` describes variable j.
double output_probability(const TruthTable& f,
                          const std::vector<SignalStats>& inputs);

/// Najm transition density of f's output: sum_i P(df/dx_i) * D(x_i).
double output_density(const TruthTable& f,
                      const std::vector<SignalStats>& inputs);

/// Convenience: both statistics at once.
SignalStats propagate(const TruthTable& f,
                      const std::vector<SignalStats>& inputs);

}  // namespace tr::boolfn
