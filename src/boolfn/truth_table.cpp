#include "boolfn/truth_table.hpp"

#include <bit>
#include <utility>

#include "boolfn/minterm_weights.hpp"
#include "util/error.hpp"

namespace tr::boolfn {

namespace {
/// Bit mask of the in-word positions where variable `var` (< 6) is 1.
constexpr std::uint64_t kVarPattern[6] = {
    0xAAAAAAAAAAAAAAAAULL, 0xCCCCCCCCCCCCCCCCULL, 0xF0F0F0F0F0F0F0F0ULL,
    0xFF00FF00FF00FF00ULL, 0xFFFF0000FFFF0000ULL, 0xFFFFFFFF00000000ULL};
}  // namespace

TruthTable::TruthTable(int var_count) : var_count_(var_count) {
  require(var_count >= 0 && var_count <= max_vars,
          "TruthTable: var_count out of range [0, " +
              std::to_string(max_vars) + "]: " + std::to_string(var_count));
  words_.assign(word_count(), 0);
}

TruthTable TruthTable::zero(int var_count) { return TruthTable(var_count); }

TruthTable TruthTable::one(int var_count) {
  TruthTable t(var_count);
  for (auto& w : t.words_) w = ~0ULL;
  t.mask_tail();
  return t;
}

TruthTable TruthTable::variable(int var_count, int var) {
  require(var >= 0 && var < var_count,
          "TruthTable::variable: index " + std::to_string(var) +
              " out of range for " + std::to_string(var_count) + " variables");
  TruthTable t(var_count);
  if (var >= 6) {
    // Whole words alternate in blocks of 2^(var-6).
    const std::uint64_t block = 1ULL << (var - 6);
    for (std::uint64_t w = 0; w < t.word_count(); ++w) {
      if ((w / block) & 1ULL) t.words_[w] = ~0ULL;
    }
  } else {
    // Pattern repeats within each word.
    std::uint64_t pattern = 0;
    for (int bit = 0; bit < 64; ++bit) {
      if ((bit >> var) & 1) pattern |= 1ULL << bit;
    }
    for (auto& w : t.words_) w = pattern;
  }
  t.mask_tail();
  return t;
}

TruthTable TruthTable::from_bits(int var_count, const std::vector<bool>& bits) {
  TruthTable t(var_count);
  require(bits.size() == t.minterm_count(),
          "TruthTable::from_bits: expected " +
              std::to_string(t.minterm_count()) + " bits, got " +
              std::to_string(bits.size()));
  for (std::uint64_t m = 0; m < bits.size(); ++m) {
    if (bits[m]) t.words_[m >> 6] |= 1ULL << (m & 63);
  }
  return t;
}

TruthTable TruthTable::from_cubes(int var_count,
                                  const std::vector<std::string>& cubes) {
  TruthTable result(var_count);
  for (const std::string& cube : cubes) {
    require(static_cast<int>(cube.size()) == var_count,
            "TruthTable::from_cubes: cube '" + cube + "' has " +
                std::to_string(cube.size()) + " literals, expected " +
                std::to_string(var_count));
    TruthTable term = one(var_count);
    for (int j = 0; j < var_count; ++j) {
      switch (cube[static_cast<std::size_t>(j)]) {
        case '1': term &= variable(var_count, j); break;
        case '0': term &= ~variable(var_count, j); break;
        case '-': break;
        default:
          throw Error("TruthTable::from_cubes: bad literal '" +
                      std::string(1, cube[static_cast<std::size_t>(j)]) +
                      "' in cube '" + cube + "'");
      }
    }
    result |= term;
  }
  return result;
}

bool TruthTable::is_zero() const noexcept {
  for (auto w : words_) {
    if (w != 0) return false;
  }
  return true;
}

bool TruthTable::is_one() const noexcept { return count_ones() == minterm_count(); }

bool TruthTable::value_at(std::uint64_t minterm) const {
  TR_ASSERT(minterm < minterm_count());
  return (words_[minterm >> 6] >> (minterm & 63)) & 1ULL;
}

std::uint64_t TruthTable::count_ones() const noexcept {
  std::uint64_t total = 0;
  for (auto w : words_) total += static_cast<std::uint64_t>(std::popcount(w));
  return total;
}

bool TruthTable::depends_on(int var) const {
  return !boolean_difference(var).is_zero();
}

std::vector<int> TruthTable::support() const {
  std::vector<int> vars;
  for (int j = 0; j < var_count_; ++j) {
    if (depends_on(j)) vars.push_back(j);
  }
  return vars;
}

TruthTable TruthTable::operator&(const TruthTable& rhs) const {
  TruthTable t(*this);
  t &= rhs;
  return t;
}
TruthTable TruthTable::operator|(const TruthTable& rhs) const {
  TruthTable t(*this);
  t |= rhs;
  return t;
}
TruthTable TruthTable::operator^(const TruthTable& rhs) const {
  TruthTable t(*this);
  t ^= rhs;
  return t;
}

TruthTable TruthTable::operator~() const {
  TruthTable t(*this);
  for (auto& w : t.words_) w = ~w;
  t.mask_tail();
  return t;
}

TruthTable& TruthTable::operator&=(const TruthTable& rhs) {
  require(var_count_ == rhs.var_count_,
          "TruthTable: operands have different variable counts");
  for (std::uint64_t i = 0; i < words_.size(); ++i) words_[i] &= rhs.words_[i];
  return *this;
}
TruthTable& TruthTable::operator|=(const TruthTable& rhs) {
  require(var_count_ == rhs.var_count_,
          "TruthTable: operands have different variable counts");
  for (std::uint64_t i = 0; i < words_.size(); ++i) words_[i] |= rhs.words_[i];
  return *this;
}
TruthTable& TruthTable::operator^=(const TruthTable& rhs) {
  require(var_count_ == rhs.var_count_,
          "TruthTable: operands have different variable counts");
  for (std::uint64_t i = 0; i < words_.size(); ++i) words_[i] ^= rhs.words_[i];
  return *this;
}

bool TruthTable::operator==(const TruthTable& rhs) const {
  return var_count_ == rhs.var_count_ && words_ == rhs.words_;
}

TruthTable TruthTable::cofactor(int var, bool value) const {
  require(var >= 0 && var < var_count_,
          "TruthTable::cofactor: variable index out of range");
  TruthTable t(var_count_);
  if (var < 6) {
    // In-word: copy the selected half onto the other half of every word.
    const int shift = 1 << var;
    const std::uint64_t mask = kVarPattern[var];
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if (value) {
        const std::uint64_t hi = words_[i] & mask;
        t.words_[i] = hi | (hi >> shift);
      } else {
        const std::uint64_t lo = words_[i] & ~mask;
        t.words_[i] = lo | (lo << shift);
      }
    }
    t.mask_tail();
  } else {
    // Whole-word: every word reads its partner with the var bit forced.
    const std::size_t block = 1ULL << (var - 6);
    for (std::size_t i = 0; i < words_.size(); ++i) {
      t.words_[i] = words_[value ? (i | block) : (i & ~block)];
    }
  }
  return t;
}

TruthTable TruthTable::boolean_difference(int var) const {
  return cofactor(var, true) ^ cofactor(var, false);
}

TruthTable TruthTable::exists(int var) const {
  return cofactor(var, true) | cofactor(var, false);
}

TruthTable TruthTable::compose(int var, const TruthTable& g) const {
  require(var_count_ == g.var_count_,
          "TruthTable::compose: operands have different variable counts");
  return (g & cofactor(var, true)) | (~g & cofactor(var, false));
}

TruthTable TruthTable::widened(int new_var_count) const {
  require(new_var_count >= var_count_,
          "TruthTable::widened: cannot shrink the variable universe");
  TruthTable t(new_var_count);
  if (var_count_ >= 6) {
    // Whole words replicate with the old table's period.
    const std::size_t period = words_.size();
    for (std::size_t i = 0; i < t.words_.size(); ++i) {
      t.words_[i] = words_[i % period];
    }
  } else {
    // Replicate the 2^var_count-bit chunk across one word, then copy.
    std::uint64_t pattern = words_.empty() ? 0 : words_[0];
    for (int width = 1 << var_count_; width < 64; width *= 2) {
      pattern |= pattern << width;
    }
    for (auto& w : t.words_) w = pattern;
    t.mask_tail();
  }
  return t;
}

void TruthTable::swap_vars_inplace(int a, int b) {
  if (a == b) return;
  if (a > b) std::swap(a, b);
  if (b < 6) {
    // Delta swap inside each word: positions with var_a=1, var_b=0 trade
    // places with their partner `delta` bits up.
    const int delta = (1 << b) - (1 << a);
    const std::uint64_t mask = kVarPattern[a] & ~kVarPattern[b];
    for (auto& w : words_) {
      const std::uint64_t t = ((w >> delta) ^ w) & mask;
      w ^= t ^ (t << delta);
    }
  } else if (a < 6) {
    // Swap the var_a=1 bits of the var_b=0 word with the var_a=0 bits of
    // its var_b=1 partner word.
    const std::size_t block = 1ULL << (b - 6);
    const int shift = 1 << a;
    const std::uint64_t mask = kVarPattern[a];
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if (i & block) continue;
      std::uint64_t& lo_word = words_[i];
      std::uint64_t& hi_word = words_[i | block];
      const std::uint64_t new_lo =
          (lo_word & ~mask) | ((hi_word & ~mask) << shift);
      const std::uint64_t new_hi =
          (hi_word & mask) | ((lo_word & mask) >> shift);
      lo_word = new_lo;
      hi_word = new_hi;
    }
  } else {
    // Both above the word boundary: swap whole words between block pairs.
    const std::size_t block_a = 1ULL << (a - 6);
    const std::size_t block_b = 1ULL << (b - 6);
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if ((i & block_a) && !(i & block_b)) {
        std::swap(words_[i], words_[(i & ~block_a) | block_b]);
      }
    }
  }
}

TruthTable TruthTable::permute_vars(const std::vector<int>& perm) const {
  require(static_cast<int>(perm.size()) == var_count_,
          "TruthTable::permute_vars: permutation arity mismatch");
  std::vector<bool> seen(static_cast<std::size_t>(var_count_), false);
  for (int p : perm) {
    require(p >= 0 && p < var_count_ && !seen[static_cast<std::size_t>(p)],
            "TruthTable::permute_vars: not a permutation");
    seen[static_cast<std::size_t>(p)] = true;
  }
  TruthTable t(*this);
  // Decompose into variable swaps: `where[j]` tracks the position currently
  // playing the role of old variable j.
  std::vector<int> where(static_cast<std::size_t>(var_count_));
  std::vector<int> occupant(static_cast<std::size_t>(var_count_));
  for (int j = 0; j < var_count_; ++j) {
    where[static_cast<std::size_t>(j)] = j;
    occupant[static_cast<std::size_t>(j)] = j;
  }
  for (int j = 0; j < var_count_; ++j) {
    const int target = perm[static_cast<std::size_t>(j)];
    const int current = where[static_cast<std::size_t>(j)];
    if (current == target) continue;
    t.swap_vars_inplace(current, target);
    const int displaced = occupant[static_cast<std::size_t>(target)];
    std::swap(occupant[static_cast<std::size_t>(current)],
              occupant[static_cast<std::size_t>(target)]);
    where[static_cast<std::size_t>(displaced)] = current;
    where[static_cast<std::size_t>(j)] = target;
  }
  return t;
}

TruthTable TruthTable::compacted(const std::vector<int>& support) const {
  for (int v : support) {
    require(v >= 0 && v < var_count_, "TruthTable::compacted: bad variable");
  }
  for (int j = 0; j < var_count_; ++j) {
    bool kept = false;
    for (int v : support) kept = kept || v == j;
    require(kept || !depends_on(j),
            "TruthTable::compacted: dropped variable " + std::to_string(j) +
                " is not vacuous");
  }
  TruthTable t(static_cast<int>(support.size()));
  const std::uint64_t n = t.minterm_count();
  for (std::uint64_t m = 0; m < n; ++m) {
    std::uint64_t src = 0;
    for (std::size_t i = 0; i < support.size(); ++i) {
      if ((m >> i) & 1ULL) src |= 1ULL << support[i];
    }
    if (value_at(src)) t.words_[m >> 6] |= 1ULL << (m & 63);
  }
  return t;
}

double TruthTable::probability(const std::vector<double>& probs) const {
  require(static_cast<int>(probs.size()) == var_count_,
          "TruthTable::probability: expected " + std::to_string(var_count_) +
              " probabilities, got " + std::to_string(probs.size()));
  return MintermWeights(probs).sum(*this);
}

std::string TruthTable::to_binary_string() const {
  const std::uint64_t n = minterm_count();
  std::string s;
  s.reserve(n);
  for (std::uint64_t m = 0; m < n; ++m) s += value_at(m) ? '1' : '0';
  return s;
}

void TruthTable::mask_tail() {
  const std::uint64_t n = minterm_count();
  if (n % 64 != 0) {
    words_.back() &= (1ULL << (n % 64)) - 1;
  }
}

}  // namespace tr::boolfn
