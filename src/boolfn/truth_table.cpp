#include "boolfn/truth_table.hpp"

#include <bit>

#include "util/error.hpp"

namespace tr::boolfn {

TruthTable::TruthTable(int var_count) : var_count_(var_count) {
  require(var_count >= 0 && var_count <= max_vars,
          "TruthTable: var_count out of range [0, " +
              std::to_string(max_vars) + "]: " + std::to_string(var_count));
  words_.assign(word_count(), 0);
}

TruthTable TruthTable::zero(int var_count) { return TruthTable(var_count); }

TruthTable TruthTable::one(int var_count) {
  TruthTable t(var_count);
  for (auto& w : t.words_) w = ~0ULL;
  t.mask_tail();
  return t;
}

TruthTable TruthTable::variable(int var_count, int var) {
  require(var >= 0 && var < var_count,
          "TruthTable::variable: index " + std::to_string(var) +
              " out of range for " + std::to_string(var_count) + " variables");
  TruthTable t(var_count);
  if (var >= 6) {
    // Whole words alternate in blocks of 2^(var-6).
    const std::uint64_t block = 1ULL << (var - 6);
    for (std::uint64_t w = 0; w < t.word_count(); ++w) {
      if ((w / block) & 1ULL) t.words_[w] = ~0ULL;
    }
  } else {
    // Pattern repeats within each word.
    std::uint64_t pattern = 0;
    for (int bit = 0; bit < 64; ++bit) {
      if ((bit >> var) & 1) pattern |= 1ULL << bit;
    }
    for (auto& w : t.words_) w = pattern;
  }
  t.mask_tail();
  return t;
}

TruthTable TruthTable::from_bits(int var_count, const std::vector<bool>& bits) {
  TruthTable t(var_count);
  require(bits.size() == t.minterm_count(),
          "TruthTable::from_bits: expected " +
              std::to_string(t.minterm_count()) + " bits, got " +
              std::to_string(bits.size()));
  for (std::uint64_t m = 0; m < bits.size(); ++m) {
    if (bits[m]) t.words_[m >> 6] |= 1ULL << (m & 63);
  }
  return t;
}

TruthTable TruthTable::from_cubes(int var_count,
                                  const std::vector<std::string>& cubes) {
  TruthTable result(var_count);
  for (const std::string& cube : cubes) {
    require(static_cast<int>(cube.size()) == var_count,
            "TruthTable::from_cubes: cube '" + cube + "' has " +
                std::to_string(cube.size()) + " literals, expected " +
                std::to_string(var_count));
    TruthTable term = one(var_count);
    for (int j = 0; j < var_count; ++j) {
      switch (cube[static_cast<std::size_t>(j)]) {
        case '1': term &= variable(var_count, j); break;
        case '0': term &= ~variable(var_count, j); break;
        case '-': break;
        default:
          throw Error("TruthTable::from_cubes: bad literal '" +
                      std::string(1, cube[static_cast<std::size_t>(j)]) +
                      "' in cube '" + cube + "'");
      }
    }
    result |= term;
  }
  return result;
}

bool TruthTable::is_zero() const noexcept {
  for (auto w : words_) {
    if (w != 0) return false;
  }
  return true;
}

bool TruthTable::is_one() const noexcept { return count_ones() == minterm_count(); }

bool TruthTable::value_at(std::uint64_t minterm) const {
  TR_ASSERT(minterm < minterm_count());
  return (words_[minterm >> 6] >> (minterm & 63)) & 1ULL;
}

std::uint64_t TruthTable::count_ones() const noexcept {
  std::uint64_t total = 0;
  for (auto w : words_) total += static_cast<std::uint64_t>(std::popcount(w));
  return total;
}

bool TruthTable::depends_on(int var) const {
  return !boolean_difference(var).is_zero();
}

std::vector<int> TruthTable::support() const {
  std::vector<int> vars;
  for (int j = 0; j < var_count_; ++j) {
    if (depends_on(j)) vars.push_back(j);
  }
  return vars;
}

TruthTable TruthTable::operator&(const TruthTable& rhs) const {
  TruthTable t(*this);
  t &= rhs;
  return t;
}
TruthTable TruthTable::operator|(const TruthTable& rhs) const {
  TruthTable t(*this);
  t |= rhs;
  return t;
}
TruthTable TruthTable::operator^(const TruthTable& rhs) const {
  TruthTable t(*this);
  t ^= rhs;
  return t;
}

TruthTable TruthTable::operator~() const {
  TruthTable t(*this);
  for (auto& w : t.words_) w = ~w;
  t.mask_tail();
  return t;
}

TruthTable& TruthTable::operator&=(const TruthTable& rhs) {
  require(var_count_ == rhs.var_count_,
          "TruthTable: operands have different variable counts");
  for (std::uint64_t i = 0; i < words_.size(); ++i) words_[i] &= rhs.words_[i];
  return *this;
}
TruthTable& TruthTable::operator|=(const TruthTable& rhs) {
  require(var_count_ == rhs.var_count_,
          "TruthTable: operands have different variable counts");
  for (std::uint64_t i = 0; i < words_.size(); ++i) words_[i] |= rhs.words_[i];
  return *this;
}
TruthTable& TruthTable::operator^=(const TruthTable& rhs) {
  require(var_count_ == rhs.var_count_,
          "TruthTable: operands have different variable counts");
  for (std::uint64_t i = 0; i < words_.size(); ++i) words_[i] ^= rhs.words_[i];
  return *this;
}

bool TruthTable::operator==(const TruthTable& rhs) const {
  return var_count_ == rhs.var_count_ && words_ == rhs.words_;
}

TruthTable TruthTable::cofactor(int var, bool value) const {
  require(var >= 0 && var < var_count_,
          "TruthTable::cofactor: variable index out of range");
  TruthTable t(var_count_);
  const std::uint64_t n = minterm_count();
  for (std::uint64_t m = 0; m < n; ++m) {
    std::uint64_t src = m;
    if (value) {
      src |= 1ULL << var;
    } else {
      src &= ~(1ULL << var);
    }
    if (value_at(src)) t.words_[m >> 6] |= 1ULL << (m & 63);
  }
  return t;
}

TruthTable TruthTable::boolean_difference(int var) const {
  return cofactor(var, true) ^ cofactor(var, false);
}

TruthTable TruthTable::exists(int var) const {
  return cofactor(var, true) | cofactor(var, false);
}

TruthTable TruthTable::compose(int var, const TruthTable& g) const {
  require(var_count_ == g.var_count_,
          "TruthTable::compose: operands have different variable counts");
  return (g & cofactor(var, true)) | (~g & cofactor(var, false));
}

TruthTable TruthTable::widened(int new_var_count) const {
  require(new_var_count >= var_count_,
          "TruthTable::widened: cannot shrink the variable universe");
  TruthTable t(new_var_count);
  const std::uint64_t old_n = minterm_count();
  const std::uint64_t new_n = t.minterm_count();
  for (std::uint64_t m = 0; m < new_n; ++m) {
    if (value_at(m & (old_n - 1))) t.words_[m >> 6] |= 1ULL << (m & 63);
  }
  return t;
}

TruthTable TruthTable::permuted(const std::vector<int>& perm) const {
  require(static_cast<int>(perm.size()) == var_count_,
          "TruthTable::permuted: permutation arity mismatch");
  std::vector<bool> seen(static_cast<std::size_t>(var_count_), false);
  for (int p : perm) {
    require(p >= 0 && p < var_count_ && !seen[static_cast<std::size_t>(p)],
            "TruthTable::permuted: not a permutation");
    seen[static_cast<std::size_t>(p)] = true;
  }
  TruthTable t(var_count_);
  const std::uint64_t n = minterm_count();
  for (std::uint64_t m = 0; m < n; ++m) {
    if (!value_at(m)) continue;
    std::uint64_t dst = 0;
    for (int j = 0; j < var_count_; ++j) {
      if ((m >> j) & 1ULL) dst |= 1ULL << perm[static_cast<std::size_t>(j)];
    }
    t.words_[dst >> 6] |= 1ULL << (dst & 63);
  }
  return t;
}

TruthTable TruthTable::compacted(const std::vector<int>& support) const {
  for (int v : support) {
    require(v >= 0 && v < var_count_, "TruthTable::compacted: bad variable");
  }
  for (int j = 0; j < var_count_; ++j) {
    bool kept = false;
    for (int v : support) kept = kept || v == j;
    require(kept || !depends_on(j),
            "TruthTable::compacted: dropped variable " + std::to_string(j) +
                " is not vacuous");
  }
  TruthTable t(static_cast<int>(support.size()));
  const std::uint64_t n = t.minterm_count();
  for (std::uint64_t m = 0; m < n; ++m) {
    std::uint64_t src = 0;
    for (std::size_t i = 0; i < support.size(); ++i) {
      if ((m >> i) & 1ULL) src |= 1ULL << support[i];
    }
    if (value_at(src)) t.words_[m >> 6] |= 1ULL << (m & 63);
  }
  return t;
}

double TruthTable::probability(const std::vector<double>& probs) const {
  require(static_cast<int>(probs.size()) == var_count_,
          "TruthTable::probability: expected " + std::to_string(var_count_) +
              " probabilities, got " + std::to_string(probs.size()));
  for (double p : probs) {
    require(p >= 0.0 && p <= 1.0,
            "TruthTable::probability: probability out of [0,1]");
  }
  const std::uint64_t n = minterm_count();
  double total = 0.0;
  for (std::uint64_t m = 0; m < n; ++m) {
    if (!value_at(m)) continue;
    double weight = 1.0;
    for (int j = 0; j < var_count_; ++j) {
      weight *= ((m >> j) & 1ULL) ? probs[static_cast<std::size_t>(j)]
                                  : 1.0 - probs[static_cast<std::size_t>(j)];
    }
    total += weight;
  }
  return total;
}

std::string TruthTable::to_binary_string() const {
  const std::uint64_t n = minterm_count();
  std::string s;
  s.reserve(n);
  for (std::uint64_t m = 0; m < n; ++m) s += value_at(m) ? '1' : '0';
  return s;
}

void TruthTable::mask_tail() {
  const std::uint64_t n = minterm_count();
  if (n % 64 != 0) {
    words_.back() &= (1ULL << (n % 64)) - 1;
  }
}

}  // namespace tr::boolfn
