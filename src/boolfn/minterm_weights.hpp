#pragma once
// Precomputed Parker-McCluskey minterm weights for one input-probability
// vector:
//
//   w(m) = prod_j (bit j of m ? p_j : 1 - p_j)
//
// factored into an in-word table over variables 0..5 and one factor per
// 64-bit word over variables >= 6. Summing P(f = 1) then walks the words
// of a TruthTable (popcount-style set-bit iteration) instead of looping
// over minterms and rebuilding the product per minterm — the kernel of the
// configuration-scoring engine (DESIGN.md Sec. 7.2).
//
// Amortisation contract: building the weights costs O(2^n) multiplies,
// one sum costs O(words + ones(f)). Callers that evaluate many functions
// under the same input statistics (the gate scorer: H, G and all boolean
// differences of every node of every configuration) build one
// MintermWeights and reuse it; TruthTable::probability builds a fresh one
// per call, so both paths produce bit-identical doubles.

#include <array>
#include <vector>

#include "boolfn/truth_table.hpp"

namespace tr::boolfn {

class MintermWeights {
public:
  /// Empty; assign() before use.
  MintermWeights() = default;

  explicit MintermWeights(const std::vector<double>& probs) { assign(probs); }

  /// (Re)binds the weights to a probability vector, reusing storage.
  /// probs[j] = P(variable j = 1); all values must lie in [0, 1].
  void assign(const std::vector<double>& probs);

  int var_count() const noexcept { return var_count_; }

  /// Exact probability that f = 1 under the bound input probabilities
  /// (spatial independence). f.var_count() must equal var_count().
  double sum(const TruthTable& f) const;

private:
  int var_count_ = -1;
  /// Weight of the low min(var_count, 6) variables per in-word bit index.
  std::array<double, 64> low_{};
  /// Weight of variables >= 6 per word index (exactly one entry when
  /// var_count <= 6).
  std::vector<double> word_factor_;
};

}  // namespace tr::boolfn
