#pragma once
// Irredundant sum-of-products extraction (Minato-Morreale ISOP).
// Used by the tech mapper to decompose BLIF nodes that do not match any
// library cell, and by the BLIF writer to serialise generic logic nodes.

#include <string>
#include <vector>

#include "boolfn/truth_table.hpp"

namespace tr::boolfn {

/// One product term: literals[j] is '1' (positive), '0' (negative) or '-'
/// (absent) for variable j, in the same cube-string format accepted by
/// TruthTable::from_cubes.
using Cube = std::string;

/// Computes an irredundant SOP cover of f. The cover is exact:
/// TruthTable::from_cubes(f.var_count(), isop(f)) == f.
std::vector<Cube> isop(const TruthTable& f);

}  // namespace tr::boolfn
