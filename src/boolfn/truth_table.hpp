#pragma once
// Dense truth-table representation of boolean functions over a small,
// fixed variable universe.
//
// This is the boolean kernel for the whole library: gate output functions,
// the path functions H_nk / G_nk of the power model (paper Sec. 3.3) and
// BLIF .names nodes are all TruthTables. Gate functions have at most ~8
// inputs (the largest Table 2 cell, aoi222/oai222, has 6), so a dense
// bitset beats a BDD package both in code size and constant factors.
//
// Variables are identified by their index 0..var_count()-1. Two tables can
// be combined only when they share the same var_count (helpers widen
// automatically where noted).

#include <cstdint>
#include <string>
#include <vector>

namespace tr::boolfn {

/// Boolean function of `n` variables stored as a 2^n-bit dense table.
class TruthTable {
public:
  /// Maximum supported variable count. 2^20 bits = 128 KiB per table; BLIF
  /// nodes wider than this are rejected by the parser (the mapper
  /// decomposes them first).
  static constexpr int max_vars = 20;

  /// Constant-false function of `var_count` variables.
  explicit TruthTable(int var_count = 0);

  /// Named constructors -----------------------------------------------------

  /// Constant zero / one over `var_count` variables.
  static TruthTable zero(int var_count);
  static TruthTable one(int var_count);

  /// Projection onto variable `var` (the function f = x_var).
  static TruthTable variable(int var_count, int var);

  /// Builds from an explicit minterm value list, bit i = f(minterm i).
  /// `bits.size()` must equal 2^var_count.
  static TruthTable from_bits(int var_count, const std::vector<bool>& bits);

  /// Parses a function given as a sum of cube strings over var_count
  /// variables, e.g. {"1-0", "011"}: '1' positive literal, '0' negative,
  /// '-' don't care. Position j in the cube refers to variable j. An empty
  /// cube list yields constant zero; an empty cube ("---…") yields one.
  static TruthTable from_cubes(int var_count,
                               const std::vector<std::string>& cubes);

  /// Observers ---------------------------------------------------------------

  int var_count() const noexcept { return var_count_; }
  std::uint64_t minterm_count() const noexcept { return 1ULL << var_count_; }

  bool is_zero() const noexcept;
  bool is_one() const noexcept;

  /// Value of the function at the given minterm (bit j of `minterm` is the
  /// value of variable j).
  bool value_at(std::uint64_t minterm) const;

  /// Number of satisfying minterms.
  std::uint64_t count_ones() const noexcept;

  /// True if the function depends on variable `var`.
  bool depends_on(int var) const;

  /// Indices of all variables the function truly depends on.
  std::vector<int> support() const;

  /// Algebra (operands must have equal var_count) ----------------------------

  TruthTable operator&(const TruthTable& rhs) const;
  TruthTable operator|(const TruthTable& rhs) const;
  TruthTable operator^(const TruthTable& rhs) const;
  TruthTable operator~() const;
  TruthTable& operator&=(const TruthTable& rhs);
  TruthTable& operator|=(const TruthTable& rhs);
  TruthTable& operator^=(const TruthTable& rhs);

  bool operator==(const TruthTable& rhs) const;
  bool operator!=(const TruthTable& rhs) const { return !(*this == rhs); }

  /// Cofactors and derived operators -----------------------------------------

  /// Shannon cofactor f|_{var=value}; result keeps the same var_count (the
  /// cofactored variable becomes vacuous).
  TruthTable cofactor(int var, bool value) const;

  /// Boolean difference df/dvar = f|_{var=1} XOR f|_{var=0}
  /// (paper Sec. 3.2). Minterms where it is 1 are exactly the input states
  /// in which a toggle of `var` toggles f.
  TruthTable boolean_difference(int var) const;

  /// Existential quantification: f|_{var=0} | f|_{var=1}.
  TruthTable exists(int var) const;

  /// Composition: substitutes variable `var` by function `g` (same
  /// var_count): f[var <- g] = g·f|var=1 + ḡ·f|var=0.
  TruthTable compose(int var, const TruthTable& g) const;

  /// Returns the same function expressed over `new_var_count >= var_count()`
  /// variables (extra variables vacuous).
  TruthTable widened(int new_var_count) const;

  /// Returns the function with variables permuted: new variable `perm[j]`
  /// takes the role of old variable `j`. `perm` must be a permutation of
  /// 0..var_count-1. Implemented as a sequence of word-parallel variable
  /// swaps (delta swaps in-word, word moves above bit 6), so it is the
  /// cheap derivation step of the per-cell reordering catalogs.
  TruthTable permute_vars(const std::vector<int>& perm) const;

  /// Alias of permute_vars (historical name).
  TruthTable permuted(const std::vector<int>& perm) const {
    return permute_vars(perm);
  }

  /// Projects the function onto `support` (typically this->support()):
  /// the result has support.size() variables, variable i of the result
  /// playing the role of variable support[i]. Variables outside `support`
  /// must be vacuous.
  TruthTable compacted(const std::vector<int>& support) const;

  /// Statistics ---------------------------------------------------------------

  /// Exact probability that f = 1 when each variable j is an independent
  /// 0-1 random variable with P(x_j = 1) = probs[j]
  /// (Parker–McCluskey, spatial independence). Delegates to
  /// MintermWeights, which walks the 64-bit words rather than minterms;
  /// callers evaluating many tables under one probability vector should
  /// build a MintermWeights directly to amortise the weight construction.
  double probability(const std::vector<double>& probs) const;

  /// Raw word storage (bit m of word m/64 = f(minterm m)); the kernel API
  /// used by MintermWeights and the word-parallel algorithms.
  const std::vector<std::uint64_t>& words() const noexcept { return words_; }

  /// Rendering ----------------------------------------------------------------

  /// Binary string, minterm 0 first, e.g. "0111" for 2-input OR.
  std::string to_binary_string() const;

private:
  std::uint64_t word_count() const noexcept {
    return (minterm_count() + 63) / 64;
  }
  /// Clears the unused bits of the last word (invariant after every op).
  void mask_tail();
  /// Word-parallel in-place exchange of two variables' roles.
  void swap_vars_inplace(int a, int b);

  int var_count_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace tr::boolfn
