#pragma once
// Word-parallel evaluation of single-word truth tables (DESIGN.md
// Sec. 11.2).
//
// The simulation hot path stores every gate function as one 64-bit
// minterm-indexed word (<= 6 input pins, see SimEngine::build_flat). The
// bit-parallel simulation lane (sim/bitsim.hpp) keeps 64 independent
// replication values per signal in one uint64_t, so it needs to evaluate
// such a table at 64 *different* minterms at once: lane k's minterm is
// assembled from bit k of each input-pin word. eval_lanes() does that
// with a Shannon mux tree over the pin words — 3 word ops per cofactor
// merge, 3 * (2^n - 1) ops worst case for n variables, with constant and
// vacuous-variable subtrees folded on the fly.
//
// word_support()/word_compact() shrink a table onto its true support
// before evaluation (construction-time only), mirroring
// TruthTable::support()/compacted() on the raw word representation.

#include <cstdint>

#include "util/error.hpp"

namespace tr::boolfn {

/// All-minterms mask of an n-variable single-word table (0 <= n <= 6).
constexpr std::uint64_t word_full_mask(int n) noexcept {
  return n >= 6 ? ~std::uint64_t{0}
                : (std::uint64_t{1} << (std::uint64_t{1} << n)) - 1;
}

/// Evaluates `fn` (an n-variable single-word table, n <= 6) at the 64
/// lane minterms encoded across the pin words: bit k of pins[j] is the
/// value of variable j in lane k. Returns one word with bit k = fn(lane
/// k's minterm). Constant tables short-circuit, so subtrees that do not
/// depend on their top variable cost nothing.
inline std::uint64_t eval_lanes(std::uint64_t fn, const std::uint64_t* pins,
                                int n) noexcept {
  if (fn == 0) return 0;
  if (fn == word_full_mask(n)) return ~std::uint64_t{0};
  // Not constant, so n >= 1: Shannon-expand on the top variable.
  TR_ASSERT(n >= 1 && n <= 6);
  const std::uint64_t mask = word_full_mask(n - 1);
  const std::uint64_t lo = fn & mask;
  const std::uint64_t hi = (fn >> (1 << (n - 1))) & mask;
  if (lo == hi) return eval_lanes(lo, pins, n - 1);
  const std::uint64_t p = pins[n - 1];
  return (p & eval_lanes(hi, pins, n - 1)) |
         (~p & eval_lanes(lo, pins, n - 1));
}

/// Bitmask of the variables `fn` actually depends on (bit j set when
/// some pair of minterms differing only in variable j maps to different
/// values). Construction-time helper; O(n * 2^n) bit probes.
inline std::uint32_t word_support(std::uint64_t fn, int n) noexcept {
  TR_ASSERT(n >= 0 && n <= 6);
  std::uint32_t support = 0;
  for (int j = 0; j < n; ++j) {
    const std::uint64_t stride = std::uint64_t{1} << j;
    for (std::uint64_t m = 0; m < (std::uint64_t{1} << n); ++m) {
      if (m & stride) continue;
      if (((fn >> m) & 1u) != ((fn >> (m | stride)) & 1u)) {
        support |= std::uint32_t{1} << j;
        break;
      }
    }
  }
  return support;
}

/// Compacts `fn` onto the variables of `support` (a subset mask that
/// must cover word_support(fn, n)), renumbering them in ascending order
/// — the word-level mirror of TruthTable::compacted().
inline std::uint64_t word_compact(std::uint64_t fn, int n,
                                  std::uint32_t support) noexcept {
  TR_ASSERT(n >= 0 && n <= 6);
  int vars[6];
  int k = 0;
  for (int j = 0; j < n; ++j) {
    if ((support >> j) & 1u) vars[k++] = j;
  }
  std::uint64_t out = 0;
  for (std::uint64_t m = 0; m < (std::uint64_t{1} << k); ++m) {
    std::uint64_t full = 0;
    for (int i = 0; i < k; ++i) {
      if ((m >> i) & 1u) full |= std::uint64_t{1} << vars[i];
    }
    out |= ((fn >> full) & 1u) << m;
  }
  return out;
}

}  // namespace tr::boolfn
