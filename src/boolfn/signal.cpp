#include "boolfn/signal.hpp"

#include "util/error.hpp"

namespace tr::boolfn {

namespace {
std::vector<double> probs_of(const std::vector<SignalStats>& inputs) {
  std::vector<double> probs;
  probs.reserve(inputs.size());
  for (const auto& s : inputs) probs.push_back(s.prob);
  return probs;
}
}  // namespace

double output_probability(const TruthTable& f,
                          const std::vector<SignalStats>& inputs) {
  require(static_cast<int>(inputs.size()) == f.var_count(),
          "output_probability: input arity mismatch");
  // The minterm-weight sum is exact in the reals but can overshoot the
  // unit interval by an ulp in floating point; through thousands of
  // logic levels (the scaled batch tier) the overshoot compounds until
  // the downstream [0,1] validation trips. Clamp at the propagation
  // boundary — but only within the numerical-noise envelope: anything
  // further out is a genuine model bug that must keep failing loudly,
  // not be silently rounded into range.
  const double p = f.probability(probs_of(inputs));
  TR_ASSERT(p >= -1e-9 && p <= 1.0 + 1e-9);
  return p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p);
}

double output_density(const TruthTable& f,
                      const std::vector<SignalStats>& inputs) {
  require(static_cast<int>(inputs.size()) == f.var_count(),
          "output_density: input arity mismatch");
  const std::vector<double> probs = probs_of(inputs);
  double density = 0.0;
  for (int j = 0; j < f.var_count(); ++j) {
    const double dj = inputs[static_cast<std::size_t>(j)].density;
    if (dj == 0.0) continue;
    density += f.boolean_difference(j).probability(probs) * dj;
  }
  return density;
}

SignalStats propagate(const TruthTable& f,
                      const std::vector<SignalStats>& inputs) {
  return SignalStats{output_probability(f, inputs), output_density(f, inputs)};
}

}  // namespace tr::boolfn
