#include "boolfn/minterm_weights.hpp"

#include <bit>

#include "util/error.hpp"

namespace tr::boolfn {

void MintermWeights::assign(const std::vector<double>& probs) {
  require(probs.size() <= static_cast<std::size_t>(TruthTable::max_vars),
          "MintermWeights: too many variables");
  for (double p : probs) {
    require(p >= 0.0 && p <= 1.0,
            "MintermWeights: probability out of [0,1]");
  }
  var_count_ = static_cast<int>(probs.size());

  // Doubling construction: after step j, low_[m] is the weight of minterm
  // m over variables 0..j.
  const int low_vars = var_count_ < 6 ? var_count_ : 6;
  low_[0] = 1.0;
  for (int j = 0; j < low_vars; ++j) {
    const double p = probs[static_cast<std::size_t>(j)];
    const int half = 1 << j;
    for (int m = 0; m < half; ++m) {
      low_[static_cast<std::size_t>(half + m)] =
          low_[static_cast<std::size_t>(m)] * p;
      low_[static_cast<std::size_t>(m)] *= 1.0 - p;
    }
  }

  // Same construction over the word-index bits (variables >= 6).
  word_factor_.assign(1, 1.0);
  for (int j = 6; j < var_count_; ++j) {
    const double p = probs[static_cast<std::size_t>(j)];
    const std::size_t half = word_factor_.size();
    word_factor_.resize(half * 2);
    for (std::size_t w = 0; w < half; ++w) {
      word_factor_[half + w] = word_factor_[w] * p;
      word_factor_[w] *= 1.0 - p;
    }
  }
}

double MintermWeights::sum(const TruthTable& f) const {
  require(f.var_count() == var_count_,
          "MintermWeights::sum: expected " + std::to_string(var_count_) +
              " variables, got " + std::to_string(f.var_count()));
  const std::vector<std::uint64_t>& words = f.words();
  double total = 0.0;
  for (std::size_t wi = 0; wi < words.size(); ++wi) {
    std::uint64_t w = words[wi];
    if (w == 0) continue;
    double word_sum = 0.0;
    while (w != 0) {
      word_sum += low_[static_cast<std::size_t>(std::countr_zero(w))];
      w &= w - 1;
    }
    total += word_factor_[wi] * word_sum;
  }
  return total;
}

}  // namespace tr::boolfn
