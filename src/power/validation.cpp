#include "power/validation.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace tr::power {

namespace {

bool within(double model, const Estimate& sim, double allowance) {
  return std::abs(model - sim.mean) <= sim.ci95 + allowance * std::abs(model);
}

/// Relative disagreement, guarded against zero-power gates: a gate whose
/// model and simulated powers are both zero contributes 0.
double rel_error(double model, const Estimate& sim) {
  const double scale = std::max(std::abs(model), std::abs(sim.mean));
  if (scale == 0.0) return 0.0;
  return std::abs(model - sim.mean) / scale;
}

}  // namespace

ValidationReport validate_power_model(
    const netlist::Netlist& netlist,
    const std::map<netlist::NetId, boolfn::SignalStats>& pi_stats,
    const celllib::Tech& tech, const ValidationOptions& options) {
  require(options.rel_slack >= 0.0,
          "validate_power_model: rel_slack must be >= 0");
  require(options.bias_envelope >= 0.0,
          "validate_power_model: bias_envelope must be >= 0");

  // Model side: one activity propagation, both model kinds (the
  // output-only evaluation backs the sharp claim, the extended one the
  // envelope claim).
  const CircuitActivity activity = propagate_activity(netlist, pi_stats);
  const CircuitPower extended =
      circuit_power(netlist, activity, tech, ModelKind::extended);
  const CircuitPower output_only =
      circuit_power(netlist, activity, tech, ModelKind::output_only);

  // Simulation side: the replicated oracle, fed through the flat
  // NetId-indexed statistics boundary (DESIGN.md Sec. 10.3). PI energy
  // must be counted so the simulated PI column exists; the per-gate
  // energies never include it either way.
  sim::MonteCarloOptions mc = options.mc;
  mc.sim.count_pi_energy = true;
  const sim::SimSummary summary = sim::monte_carlo(
      netlist, sim::PiStatsTable(netlist.net_count(), pi_stats), tech, mc);
  TR_ASSERT(summary.measure_time > 0.0);
  const double to_watts = 1.0 / summary.measure_time;

  ValidationReport report;
  report.replications = summary.replications;
  report.rel_slack = options.rel_slack;
  report.bias_envelope = options.bias_envelope;
  report.truncated = summary.truncated_replications > 0;

  report.gates.reserve(static_cast<std::size_t>(netlist.gate_count()));
  for (netlist::GateId g = 0; g < netlist.gate_count(); ++g) {
    const std::size_t index = static_cast<std::size_t>(g);
    const netlist::GateInst& inst = netlist.gate(g);
    GateValidation row;
    row.gate = g;
    row.name = inst.name;
    row.cell = inst.cell;

    row.model_output_power = output_only.per_gate[index];
    row.sim_output_power =
        scaled(summary.per_gate_output_energy[index], to_watts);
    row.output_within_ci =
        within(row.model_output_power, row.sim_output_power, options.rel_slack);

    row.model_total_power = extended.per_gate[index];
    row.sim_total_power = scaled(summary.per_gate_energy[index], to_watts);
    row.total_within_envelope = within(row.model_total_power,
                                       row.sim_total_power,
                                       options.bias_envelope);

    if (row.output_within_ci) ++report.output_within_ci_count;
    if (row.total_within_envelope) ++report.total_within_envelope_count;
    report.max_output_rel_error =
        std::max(report.max_output_rel_error,
                 rel_error(row.model_output_power, row.sim_output_power));
    report.max_total_rel_error =
        std::max(report.max_total_rel_error,
                 rel_error(row.model_total_power, row.sim_total_power));
    report.gates.push_back(std::move(row));
  }

  report.model_output_total = output_only.gate_power;
  report.sim_output_total = scaled(summary.output_node_energy, to_watts);
  report.output_totals_within_ci = within(
      report.model_output_total, report.sim_output_total, options.rel_slack);

  report.model_gate_power = extended.gate_power;
  report.sim_gate_power = scaled(summary.gate_energy, to_watts);
  report.totals_within_envelope =
      within(report.model_gate_power, report.sim_gate_power,
             options.bias_envelope);

  report.model_pi_power = extended.pi_load_power;
  report.sim_pi_power = scaled(summary.pi_energy, to_watts);
  report.pi_within_ci =
      within(report.model_pi_power, report.sim_pi_power, options.rel_slack);
  return report;
}

}  // namespace tr::power
