#pragma once
// Circuit-level activity propagation and power estimation.
//
// OBTAIN_PROBABILITIES of paper Fig. 3: equilibrium probabilities
// (Parker-McCluskey [7]) and transition densities (Najm [6]) are pushed
// from the primary inputs through the mapped netlist in topological
// order, assuming spatial independence. The circuit's model power is the
// sum of the per-gate extended-model powers plus the (exact) switching
// power of the primary-input nets' loads.

#include <map>
#include <vector>

#include "boolfn/signal.hpp"
#include "netlist/netlist.hpp"
#include "power/gate_power.hpp"

namespace tr::power {

/// Which gate model to use for circuit totals.
enum class ModelKind {
  extended,     ///< the paper's model: internal nodes + output node
  output_only,  ///< ablation baseline: output node only
};

/// Per-net signal statistics for a whole netlist.
struct CircuitActivity {
  /// Indexed by NetId.
  std::vector<boolfn::SignalStats> net_stats;
};

/// Propagates `pi_stats` (keyed by primary-input NetId; every PI must be
/// present) through the circuit. Gate output statistics come from the
/// cell logic function, so they are identical for every transistor
/// configuration — the monotonicity property of paper Sec. 4.2.
CircuitActivity propagate_activity(
    const netlist::Netlist& netlist,
    const std::map<netlist::NetId, boolfn::SignalStats>& pi_stats);

/// Estimated power decomposition of a netlist under given activity.
struct CircuitPower {
  std::vector<double> per_gate;  ///< indexed by GateId [W]
  double gate_power = 0.0;       ///< sum of per_gate [W]
  double pi_load_power = 0.0;    ///< switching power of PI net loads [W]
  double total() const { return gate_power + pi_load_power; }
};

/// Evaluates the model power of every gate in its *current*
/// configuration.
CircuitPower circuit_power(const netlist::Netlist& netlist,
                           const CircuitActivity& activity,
                           const celllib::Tech& tech,
                           ModelKind kind = ModelKind::extended);

}  // namespace tr::power
