#pragma once
// Statistical validation of the stochastic power model against the
// switch-level simulator — the machine-checked form of the paper's
// Table 3 "model vs S" comparison (paper Sec. 5), DESIGN.md Sec. 8.4.
//
// The simulator is run as a replicated Monte-Carlo oracle
// (sim/monte_carlo.hpp), so every simulated power carries a 95%
// confidence interval, and each gate is gated on two claims of very
// different sharpness:
//
//  * Output node (sharp). At the output node the extended model
//    collapses exactly to Najm's transition density (DESIGN.md Sec. 2,
//    output-node consistency property), which is exact on glitch-free
//    read-once circuits — so the simulated output-node power must sit
//    inside `CI half-width + rel_slack * |model|`, where rel_slack is a
//    small allowance for the ~5% of deterministic seeds whose true mean
//    falls just outside a 95% interval.
//
//  * Extended total (envelope). The extended model's internal-node
//    statistics use the steady-state charge approximation
//    P(n) = P(H)/(P(H)+P(G)) (paper Sec. 3.3), which ignores the
//    input/state correlation of a retained charge. The resulting bias is
//    systematic (the model overestimates; measured +2% on inverters to
//    +35% on 4-high series stacks, DESIGN.md Sec. 8.4) and survives any
//    number of replications, so the total is gated on
//    `CI half-width + bias_envelope * |model|` instead of the CI alone.

#include <map>
#include <string>
#include <vector>

#include "power/circuit_power.hpp"
#include "sim/monte_carlo.hpp"
#include "util/stats.hpp"

namespace tr::power {

struct ValidationOptions {
  /// Monte-Carlo oracle configuration. Defaults to zero-delay mode: the
  /// stochastic model cannot see glitches, so model validation is only
  /// meaningful on glitch-free simulations (set `mc.sim.use_gate_delays`
  /// back to true to *measure* the glitch gap instead of gating on it).
  sim::MonteCarloOptions mc = [] {
    sim::MonteCarloOptions o;
    o.sim.use_gate_delays = false;
    return o;
  }();
  /// Sharp-claim allowance on top of every 95% CI (DESIGN.md Sec. 8.4).
  double rel_slack = 0.03;
  /// Documented internal-node model-bias envelope for the extended
  /// totals (DESIGN.md Sec. 8.4).
  double bias_envelope = 0.40;
};

/// One gate's model-vs-simulation pairing.
struct GateValidation {
  netlist::GateId gate = -1;
  std::string name;  ///< instance name
  std::string cell;  ///< library cell name

  double model_output_power = 0.0;  ///< output-only model [W]
  Estimate sim_output_power;        ///< simulated output-node power [W]
  /// Sharp: |model_output - sim mean| <= CI + rel_slack * |model|.
  bool output_within_ci = false;

  double model_total_power = 0.0;  ///< extended model (internal + output) [W]
  Estimate sim_total_power;        ///< simulated gate power [W]
  /// Envelope: |model_total - sim mean| <= CI + bias_envelope * |model|.
  bool total_within_envelope = false;
};

struct ValidationReport {
  std::vector<GateValidation> gates;  ///< indexed by GateId

  double model_output_total = 0.0;  ///< output-only model sum [W]
  Estimate sim_output_total;        ///< simulated output-node power [W]
  bool output_totals_within_ci = false;  ///< sharp claim on the sum

  double model_gate_power = 0.0;  ///< extended model sum [W]
  Estimate sim_gate_power;        ///< simulated non-PI power [W]
  bool totals_within_envelope = false;

  double model_pi_power = 0.0;  ///< PI-load switching power (exact) [W]
  Estimate sim_pi_power;
  bool pi_within_ci = false;  ///< sharp claim (the PI formula is exact)

  std::size_t output_within_ci_count = 0;
  std::size_t total_within_envelope_count = 0;
  /// Worst per-gate disagreement |model - sim| / max(|model|, |sim|) for
  /// the output-node claim (0 when both sides are zero).
  double max_output_rel_error = 0.0;
  /// Same normalisation for the extended totals.
  double max_total_rel_error = 0.0;
  /// True when any replication hit the event budget: the simulated
  /// columns then cover partial windows and the report must not be
  /// trusted — differential tests assert this is false before anything
  /// else.
  bool truncated = false;

  std::size_t replications = 0;
  double rel_slack = 0.0;      ///< the sharp tolerance the verdicts used
  double bias_envelope = 0.0;  ///< the envelope the verdicts used

  bool all_within_tolerance() const {
    return !truncated && output_totals_within_ci && totals_within_envelope &&
           pi_within_ci && output_within_ci_count == gates.size() &&
           total_within_envelope_count == gates.size();
  }
};

/// Pairs model-predicted and Monte-Carlo simulated per-gate power for
/// every gate of `netlist` (plus PI-load and whole-circuit totals) and
/// applies the tolerance verdicts described above.
ValidationReport validate_power_model(
    const netlist::Netlist& netlist,
    const std::map<netlist::NetId, boolfn::SignalStats>& pi_stats,
    const celllib::Tech& tech, const ValidationOptions& options = {});

}  // namespace tr::power
