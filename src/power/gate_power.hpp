#pragma once
// The paper's extended power-consumption model of a static CMOS gate
// (Sec. 3.3): per-node equilibrium probabilities and per-input transition
// counts derived from the H_nk / G_nk path functions, including the power
// of internal nodes.
//
// For every node n_k (internal nodes and the output):
//
//   P(n_k)     = P(H_nk) / (P(H_nk) + P(G_nk))          (steady state)
//   T_{nk,xi}  = D(x_i) * [ P(dH_nk/dx_i) * (1 - P(n_k))
//                         + P(dG_nk/dx_i) * P(n_k) ]
//   W_nk|xi    = 1/2 * C_nk * Vdd^2 * T_{nk,xi}
//
// For the output node, where G = ~H, T collapses to Najm's transition
// density (DESIGN.md Sec. 2) — this consistency is enforced by tests.

#include <vector>

#include "boolfn/minterm_weights.hpp"
#include "boolfn/signal.hpp"
#include "celllib/tech.hpp"
#include "gategraph/gate_graph.hpp"

namespace tr::power {

/// Power/activity breakdown of one node of a gate.
struct NodePower {
  int node = -1;          ///< GateGraph node id
  double prob = 0.0;      ///< equilibrium probability P(n_k)
  double density = 0.0;   ///< sum_i T_{nk,xi} [transitions / time unit]
  double capacitance = 0.0;  ///< C_nk [F]
  double power = 0.0;     ///< sum_i W_nk|xi [W]
};

/// Model evaluation result for one gate configuration.
struct GatePower {
  std::vector<NodePower> nodes;  ///< internal nodes first, output node last
  double total_power = 0.0;      ///< P_gate = sum over nodes [W]
  boolfn::SignalStats output;    ///< P(y), D(y) for downstream propagation
};

/// The shared arithmetic core of the model: evaluates one node from its
/// precomputed tables. `dh[i]` / `dg[i]` are the boolean differences of
/// h / g w.r.t. input i (arrays of inputs.size() tables), and `weights`
/// must be bound to the inputs' probabilities. Both the graph-walking
/// reference path (evaluate_gate_power) and the catalog fast path
/// (opt::score_catalog) funnel through this function, which is what makes
/// their power numbers bit-identical. The caller fills NodePower::node.
NodePower evaluate_node_tables(const boolfn::TruthTable& h,
                               const boolfn::TruthTable& g,
                               const boolfn::TruthTable* dh,
                               const boolfn::TruthTable* dg, double cap,
                               const std::vector<boolfn::SignalStats>& inputs,
                               const boolfn::MintermWeights& weights,
                               const celllib::Tech& tech);

/// Evaluates the extended model on one gate configuration.
///
/// `node_caps` is indexed by GateGraph node id (see
/// celllib::node_capacitances); `inputs[j]` are the statistics of the
/// signal bound to gate input j.
GatePower evaluate_gate_power(const gategraph::GateGraph& graph,
                              const std::vector<double>& node_caps,
                              const std::vector<boolfn::SignalStats>& inputs,
                              const celllib::Tech& tech);

/// Ablation baseline (bench/ablation_internal_nodes): the same model with
/// internal nodes ignored — only the output node's switching power, i.e.
/// the classic 1/2 C V^2 D estimate every pre-1996 flow used.
GatePower evaluate_output_only_power(
    const gategraph::GateGraph& graph, const std::vector<double>& node_caps,
    const std::vector<boolfn::SignalStats>& inputs, const celllib::Tech& tech);

}  // namespace tr::power
