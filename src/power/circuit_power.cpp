#include "power/circuit_power.hpp"

#include "util/error.hpp"

namespace tr::power {

using boolfn::SignalStats;
using netlist::GateId;
using netlist::NetId;
using netlist::Netlist;

CircuitActivity propagate_activity(
    const Netlist& netlist,
    const std::map<NetId, SignalStats>& pi_stats) {
  CircuitActivity activity;
  activity.net_stats.assign(static_cast<std::size_t>(netlist.net_count()),
                            SignalStats{0.5, 0.0});

  for (NetId id : netlist.primary_inputs()) {
    const auto it = pi_stats.find(id);
    require(it != pi_stats.end(),
            "propagate_activity: missing statistics for primary input '" +
                netlist.net(id).name + "'");
    activity.net_stats[static_cast<std::size_t>(id)] = it->second;
  }

  for (GateId g : netlist.topological_order()) {
    const netlist::GateInst& inst = netlist.gate(g);
    std::vector<SignalStats> inputs;
    inputs.reserve(inst.inputs.size());
    for (NetId in : inst.inputs) {
      inputs.push_back(activity.net_stats[static_cast<std::size_t>(in)]);
    }
    const boolfn::TruthTable f = netlist.library().cell(inst.cell).function();
    activity.net_stats[static_cast<std::size_t>(inst.output)] =
        boolfn::propagate(f, inputs);
  }
  return activity;
}

CircuitPower circuit_power(const Netlist& netlist,
                           const CircuitActivity& activity,
                           const celllib::Tech& tech, ModelKind kind) {
  require(activity.net_stats.size() ==
              static_cast<std::size_t>(netlist.net_count()),
          "circuit_power: activity arity mismatch");

  CircuitPower result;
  result.per_gate.resize(static_cast<std::size_t>(netlist.gate_count()), 0.0);

  for (GateId g = 0; g < netlist.gate_count(); ++g) {
    const netlist::GateInst& inst = netlist.gate(g);
    const gategraph::GateGraph graph(inst.config);
    const std::vector<double> caps = celllib::node_capacitances(
        graph, tech, netlist.external_load(g, tech));
    std::vector<SignalStats> inputs;
    inputs.reserve(inst.inputs.size());
    for (NetId in : inst.inputs) {
      inputs.push_back(activity.net_stats[static_cast<std::size_t>(in)]);
    }
    const GatePower gp = kind == ModelKind::extended
                             ? evaluate_gate_power(graph, caps, inputs, tech)
                             : evaluate_output_only_power(graph, caps, inputs,
                                                          tech);
    result.per_gate[static_cast<std::size_t>(g)] = gp.total_power;
    result.gate_power += gp.total_power;
  }

  // Primary-input nets: their load (fanout pin capacitance + wire) is
  // charged by the external driver; the 1/2 C V^2 D estimate is exact for
  // a net whose density is known. Configuration-independent, but included
  // so model and switch-level totals describe the same circuit.
  for (NetId id : netlist.primary_inputs()) {
    const netlist::Net& net = netlist.net(id);
    double cap = tech.c_wire;
    for (const auto& [fan_gate, pin] : net.fanouts) {
      cap += netlist.library()
                 .cell(netlist.gate(fan_gate).cell)
                 .pin_capacitance(tech, pin);
    }
    result.pi_load_power +=
        tech.energy_per_transition(cap) *
        activity.net_stats[static_cast<std::size_t>(id)].density;
  }
  return result;
}

}  // namespace tr::power
