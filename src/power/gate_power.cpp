#include "power/gate_power.hpp"

#include "util/error.hpp"

namespace tr::power {

using boolfn::SignalStats;
using boolfn::TruthTable;
using gategraph::GateGraph;

namespace {

std::vector<double> probs_of(const std::vector<SignalStats>& inputs) {
  std::vector<double> probs;
  probs.reserve(inputs.size());
  for (const auto& s : inputs) probs.push_back(s.prob);
  return probs;
}

/// Evaluates one node of the gate under the extended model: extracts the
/// path-function tables from the graph and defers to the shared core.
NodePower evaluate_node(const GateGraph& graph, int node, double cap,
                        const std::vector<SignalStats>& inputs,
                        const boolfn::MintermWeights& weights,
                        const celllib::Tech& tech) {
  const TruthTable h = graph.h_function(node);
  const TruthTable g = graph.g_function(node);
  // No rail-to-rail short through any node in a complementary gate.
  TR_ASSERT((h & g).is_zero());

  std::vector<TruthTable> dh;
  std::vector<TruthTable> dg;
  dh.reserve(inputs.size());
  dg.reserve(inputs.size());
  for (int i = 0; i < graph.input_count(); ++i) {
    dh.push_back(h.boolean_difference(i));
    dg.push_back(g.boolean_difference(i));
  }
  NodePower result =
      evaluate_node_tables(h, g, dh.data(), dg.data(), cap, inputs, weights, tech);
  result.node = node;
  return result;
}

}  // namespace

NodePower evaluate_node_tables(const TruthTable& h, const TruthTable& g,
                               const TruthTable* dh, const TruthTable* dg,
                               double cap,
                               const std::vector<SignalStats>& inputs,
                               const boolfn::MintermWeights& weights,
                               const celllib::Tech& tech) {
  const double ph = weights.sum(h);
  const double pg = weights.sum(g);

  NodePower result;
  result.capacitance = cap;
  const double denom = ph + pg;
  if (denom <= 0.0) {
    // The node is never driven under these input statistics (possible when
    // some input probability is exactly 0 or 1): it floats and never
    // switches.
    result.prob = 0.0;
    result.density = 0.0;
    result.power = 0.0;
    return result;
  }
  result.prob = ph / denom;

  double transitions = 0.0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const double di = inputs[i].density;
    if (di == 0.0) continue;
    const double charge_sensitivity = weights.sum(dh[i]);
    const double discharge_sensitivity = weights.sum(dg[i]);
    transitions += di * (charge_sensitivity * (1.0 - result.prob) +
                         discharge_sensitivity * result.prob);
  }
  result.density = transitions;
  result.power = tech.energy_per_transition(cap) * transitions;
  return result;
}

GatePower evaluate_gate_power(const GateGraph& graph,
                              const std::vector<double>& node_caps,
                              const std::vector<SignalStats>& inputs,
                              const celllib::Tech& tech) {
  require(static_cast<int>(inputs.size()) == graph.input_count(),
          "evaluate_gate_power: input statistics arity mismatch");
  require(static_cast<int>(node_caps.size()) == graph.node_count(),
          "evaluate_gate_power: node capacitance arity mismatch");
  const boolfn::MintermWeights weights(probs_of(inputs));

  GatePower result;
  for (int k = 0; k < graph.internal_node_count(); ++k) {
    const int node = GateGraph::first_internal_node + k;
    result.nodes.push_back(
        evaluate_node(graph, node, node_caps[static_cast<std::size_t>(node)],
                      inputs, weights, tech));
  }
  result.nodes.push_back(evaluate_node(
      graph, GateGraph::output_node,
      node_caps[static_cast<std::size_t>(GateGraph::output_node)], inputs,
      weights, tech));

  for (const NodePower& n : result.nodes) result.total_power += n.power;
  const NodePower& out = result.nodes.back();
  result.output = SignalStats{out.prob, out.density};
  return result;
}

GatePower evaluate_output_only_power(const GateGraph& graph,
                                     const std::vector<double>& node_caps,
                                     const std::vector<SignalStats>& inputs,
                                     const celllib::Tech& tech) {
  require(static_cast<int>(inputs.size()) == graph.input_count(),
          "evaluate_output_only_power: input statistics arity mismatch");
  require(static_cast<int>(node_caps.size()) == graph.node_count(),
          "evaluate_output_only_power: node capacitance arity mismatch");
  const boolfn::MintermWeights weights(probs_of(inputs));

  GatePower result;
  result.nodes.push_back(evaluate_node(
      graph, GateGraph::output_node,
      node_caps[static_cast<std::size_t>(GateGraph::output_node)], inputs,
      weights, tech));
  result.total_power = result.nodes.back().power;
  result.output =
      SignalStats{result.nodes.back().prob, result.nodes.back().density};
  return result;
}

}  // namespace tr::power
