#include "delay/elmore.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tr::delay {

using gategraph::DeviceType;
using gategraph::GateGraph;
using gategraph::Transistor;

namespace {

/// RC-ladder step response factor (time to 50% swing of exp settling).
constexpr double k_elmore_to_delay = 0.69;

/// Walks every simple path from the output node to `rail` and updates
/// `pin_delay` with the Elmore time constant seen by each device on the
/// path (as the last-arriving input).
void analyse_network(const GateGraph& graph,
                     const std::vector<double>& node_caps, int rail,
                     const celllib::Tech& tech,
                     std::vector<double>& pin_delay) {
  // Adjacency over transistor indices.
  const auto& transistors = graph.transistors();
  std::vector<std::vector<int>> adjacency(
      static_cast<std::size_t>(graph.node_count()));
  for (std::size_t t = 0; t < transistors.size(); ++t) {
    adjacency[static_cast<std::size_t>(transistors[t].node_out)].push_back(
        static_cast<int>(t));
    adjacency[static_cast<std::size_t>(transistors[t].node_rail)].push_back(
        static_cast<int>(t));
  }

  std::vector<bool> visited(static_cast<std::size_t>(graph.node_count()));
  std::vector<int> path;  // transistor indices, output side first

  // Scores one complete path y = n_0 -[d_0]- n_1 -[d_1]- ... -[d_{k-1}]- rail
  // (`devices[i]` = d_i, `nodes_above[i]` = n_i). When device d_m switches
  // last, the charge still to move sits on nodes n_0..n_m (nodes below d_m
  // are pre-discharged); node n_j drains through devices d_j..d_{k-1}.
  auto score_path = [&](const std::vector<int>& devices,
                        const std::vector<int>& nodes_above) {
    const std::size_t k = devices.size();
    for (std::size_t m = 0; m < k; ++m) {
      double tau = 0.0;
      for (std::size_t j = 0; j <= m; ++j) {
        double resistance = 0.0;
        for (std::size_t i = j; i < k; ++i) {
          const Transistor& t =
              transistors[static_cast<std::size_t>(devices[i])];
          resistance += t.type == DeviceType::nmos ? tech.r_n : tech.r_p;
        }
        tau += node_caps[static_cast<std::size_t>(nodes_above[j])] * resistance;
      }
      const int pin = transistors[static_cast<std::size_t>(devices[m])].input;
      pin_delay[static_cast<std::size_t>(pin)] =
          std::max(pin_delay[static_cast<std::size_t>(pin)],
                   k_elmore_to_delay * tau);
    }
  };

  std::vector<int> nodes_above;  // node above device at same index in path
  auto dfs = [&](auto&& self, int v) -> void {
    visited[static_cast<std::size_t>(v)] = true;
    for (int t : adjacency[static_cast<std::size_t>(v)]) {
      const Transistor& tx = transistors[static_cast<std::size_t>(t)];
      const int next = tx.node_out == v ? tx.node_rail : tx.node_out;
      if (visited[static_cast<std::size_t>(next)]) continue;
      if (next != rail &&
          (next == GateGraph::vss_node || next == GateGraph::vdd_node)) {
        continue;
      }
      path.push_back(t);
      nodes_above.push_back(v);
      if (next == rail) {
        score_path(path, nodes_above);
      } else {
        self(self, next);
      }
      path.pop_back();
      nodes_above.pop_back();
    }
    visited[static_cast<std::size_t>(v)] = false;
  };
  dfs(dfs, GateGraph::output_node);
}

}  // namespace

GateDelays gate_delays(const GateGraph& graph,
                       const std::vector<double>& node_caps,
                       const celllib::Tech& tech) {
  require(static_cast<int>(node_caps.size()) == graph.node_count(),
          "gate_delays: node capacitance arity mismatch");
  GateDelays result;
  result.pin_delay.assign(static_cast<std::size_t>(graph.input_count()), 0.0);
  analyse_network(graph, node_caps, GateGraph::vss_node, tech,
                  result.pin_delay);
  analyse_network(graph, node_caps, GateGraph::vdd_node, tech,
                  result.pin_delay);
  for (double d : result.pin_delay) result.worst = std::max(result.worst, d);
  return result;
}

CircuitDelay circuit_delay(const netlist::Netlist& netlist,
                           const celllib::Tech& tech) {
  CircuitDelay result;
  result.net_arrival.assign(static_cast<std::size_t>(netlist.net_count()), 0.0);

  for (netlist::GateId g : netlist.topological_order()) {
    const netlist::GateInst& inst = netlist.gate(g);
    const gategraph::GateGraph graph(inst.config);
    const std::vector<double> caps = celllib::node_capacitances(
        graph, tech, netlist.external_load(g, tech));
    const GateDelays delays = gate_delays(graph, caps, tech);
    double arrival = 0.0;
    for (std::size_t pin = 0; pin < inst.inputs.size(); ++pin) {
      arrival = std::max(
          arrival,
          result.net_arrival[static_cast<std::size_t>(inst.inputs[pin])] +
              delays.pin_delay[pin]);
    }
    result.net_arrival[static_cast<std::size_t>(inst.output)] = arrival;
  }

  for (netlist::NetId id : netlist.primary_outputs()) {
    result.critical_path = std::max(
        result.critical_path, result.net_arrival[static_cast<std::size_t>(id)]);
  }
  return result;
}

}  // namespace tr::delay
