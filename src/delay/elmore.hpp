#pragma once
// Configuration-dependent gate delay via Elmore RC analysis of the
// transistor stacks.
//
// When input pin x arrives last, every other device on the conducting
// path is already on: the internal nodes *below* x's device are already
// at the rail potential, so only the nodes between the output and x's
// device still carry charge. The Elmore time constant is therefore
//
//   tau(x via path) = sum_{nodes j above x's device} C_j * R(j -> rail)
//
// maximised over the simple paths through x's device. This reproduces
// the classic speed rule of thumb the paper cites in Sec. 5: the
// critical (late-arriving) input belongs *next to the output* for speed.
// The power-optimal ordering instead places devices by switching
// activity and signal probability, which generally disagrees with the
// timing-optimal placement of the late signal — that tension is what
// Table 3's delay column (D) measures.

#include <vector>

#include "celllib/tech.hpp"
#include "gategraph/gate_graph.hpp"
#include "netlist/netlist.hpp"

namespace tr::delay {

/// Pin-to-output delays of one gate configuration [seconds].
struct GateDelays {
  /// Worst of pull-up and pull-down Elmore delay per input pin.
  std::vector<double> pin_delay;
  /// max over pins.
  double worst = 0.0;
};

/// Computes per-pin Elmore delays for a gate configuration.
/// `node_caps` is indexed by GateGraph node id (celllib::node_capacitances).
GateDelays gate_delays(const gategraph::GateGraph& graph,
                       const std::vector<double>& node_caps,
                       const celllib::Tech& tech);

/// Static timing of a mapped netlist under the current configurations.
struct CircuitDelay {
  std::vector<double> net_arrival;  ///< indexed by NetId [s]; PIs arrive at 0
  double critical_path = 0.0;       ///< max arrival over primary outputs [s]
};

CircuitDelay circuit_delay(const netlist::Netlist& netlist,
                           const celllib::Tech& tech);

}  // namespace tr::delay
