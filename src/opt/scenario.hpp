#pragma once
// The two evaluation scenarios of paper Sec. 5.1 / Fig. 6.
//
// Scenario A: the circuit is embedded in a larger digital system, so its
// primary inputs carry arbitrary statistics — equilibrium probabilities
// uniform in [0,1] and transition densities uniform in [0, 1e6]
// transitions/second.
//
// Scenario B: the circuit *is* the digital system, with latches at its
// inputs and a fixed clock: every primary input has probability 0.5 and
// 0.5 transitions per cycle.

#include <cstdint>
#include <map>

#include "boolfn/signal.hpp"
#include "netlist/netlist.hpp"

namespace tr::opt {

/// Scenario A input statistics, one independent draw per primary input.
std::map<netlist::NetId, boolfn::SignalStats> scenario_a(
    const netlist::Netlist& netlist, std::uint64_t seed,
    double max_density = 1e6);

/// Scenario B input statistics: P = 0.5, D = 0.5 transitions per clock
/// cycle at the given clock frequency.
std::map<netlist::NetId, boolfn::SignalStats> scenario_b(
    const netlist::Netlist& netlist, double clock_hz = 1e6);

}  // namespace tr::opt
