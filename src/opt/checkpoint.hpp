#pragma once
// Checkpoint/resume journaling for batch optimization (DESIGN.md
// Sec. 15.2).
//
// Long batches (annealing sweeps, the syn1000..syn8000 tier) lose every
// completed circuit to a SIGKILL/OOM/reboot without durable progress.
// A CheckpointJournal fixes that: each circuit that completes with
// status `ok` is serialized — its report numerics plus the committed
// per-gate configurations — into one crash-consistent journal entry
// (util/journal: fsync'd temp file + atomic rename), and a resumed run
// loads those entries, re-applies the configurations to freshly loaded
// netlists, and skips the optimization work entirely.
//
// The byte-identity contract: a `--checkpoint DIR --resume` run emits
// output byte-identical to an uninterrupted run (under --no-timing
// --no-cache-stats, the same determinism carve-outs as the daemon —
// wall clock and cache deltas are nondeterministic by nature). This
// works because every journaled number is rendered by the same
// shortest-round-trip JsonWriter that renders reports, so parse-back
// reproduces the identical IEEE-754 value, and the configurations are
// re-applied to a deterministically reloaded netlist.
//
// Compatibility is guarded by a manifest: a fingerprint of everything
// that shapes the deterministic output (circuit specs, scenario, seed,
// objective/model/engine/anneal/budget/restriction) written on the
// fresh run and byte-compared on resume — resuming under different
// options is an error, never a silently mixed report. jobs/threads and
// deadlines are deliberately excluded: they never change result bytes.
//
// Damage tolerance: a torn/truncated/bit-flipped/wrong-checksum entry
// (the crash window, disk rot) is detected by the journal frame,
// reported as a JournalWarning through the ErrorCode taxonomy, and the
// circuit is simply re-optimized — corrupt progress is never trusted.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "opt/batch.hpp"

namespace tr::opt::checkpoint {

/// One non-fatal journal problem: a damaged or stale entry discovered
/// while loading (the circuit is re-run), or a failed entry write
/// (the run completed but that circuit is not resumable).
struct JournalWarning {
  std::string file;  ///< entry file name (bare, not a path)
  ErrorCode code = ErrorCode::parse;
  std::string message;
};

/// The manifest document: the run fingerprint, rendered
/// deterministically from everything that shapes result bytes.
std::string render_manifest(const std::vector<std::string>& circuit_specs,
                            char scenario, std::uint64_t seed,
                            const BatchOptions& options);

/// The entry file name of batch index `index` ("circuit-0003-alu2.jnl");
/// the zero-padded index keeps duplicate circuit names collision-free
/// and directory listings in batch order.
std::string entry_name(std::size_t index, const std::string& circuit_name);

class CheckpointJournal {
public:
  /// Opens the journal directory. Fresh mode (`resume == false`)
  /// creates the directory and writes `manifest`; an existing manifest
  /// is an error (refusing to silently mix two runs' entries). Resume
  /// mode requires the directory and manifest to exist and the manifest
  /// bytes to equal `manifest`. Throws tr::Error on violations
  /// (invalid_argument) and on I/O failure (resource).
  CheckpointJournal(std::string dir, bool resume, std::string manifest);

  /// Resume-loads every readable entry into `batch`: validates it
  /// against the loaded circuit, re-applies the journaled gate
  /// configurations to the netlist and fills BatchCircuit::resumed.
  /// Damaged or stale entries become warnings and their circuits are
  /// left to re-run. Returns the number of circuits resumed.
  int load(std::vector<BatchCircuit>& batch);

  /// Journals one completed circuit (call only for status == ok).
  /// Thread-safe; write failures are collected as warnings — the batch
  /// result stands even when durability could not be provided, the
  /// caller surfaces the warning instead.
  void record(std::size_t index, const BatchCircuit& circuit,
              const BatchCircuitResult& result);

  /// Problems collected by load() and record(), in discovery order.
  std::vector<JournalWarning> warnings() const;

  const std::string& dir() const noexcept { return dir_; }

private:
  std::string dir_;
  mutable std::mutex mutex_;
  std::vector<JournalWarning> warnings_;
};

/// Serializes one ok circuit result to an entry payload (exposed for
/// the corruption-corpus tests, which damage real payloads).
std::string render_entry(std::size_t index, const BatchCircuit& circuit,
                         const BatchCircuitResult& result);

}  // namespace tr::opt::checkpoint
