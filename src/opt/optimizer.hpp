#pragma once
// The paper's power-optimization algorithm (Sec. 4, Fig. 3).
//
// One topological traversal of the mapped netlist. For every gate:
// obtain the equilibrium probabilities and transition densities of its
// inputs (already available: fan-in gates precede it), exhaustively
// enumerate its transistor reorderings (Fig. 4), score each with the
// extended power model (Sec. 3.3), commit the best one, and propagate
// the output statistics — which are configuration-invariant, the
// monotonic property of Sec. 4.2 that makes this greedy pass
// model-optimal for the whole circuit.

#include <map>
#include <vector>

#include "boolfn/signal.hpp"
#include "celllib/tech.hpp"
#include "netlist/netlist.hpp"
#include "power/circuit_power.hpp"

namespace tr::opt {

/// Minimise for the paper's "best" netlists; maximise builds the "worst"
/// ordering the evaluation compares against (Table 3: "best case with
/// regard to worst case").
enum class Objective { minimize_power, maximize_power };

struct OptimizeOptions {
  Objective objective = Objective::minimize_power;
  /// Gate model used for scoring; output_only is the ablation baseline.
  power::ModelKind model = power::ModelKind::extended;

  /// Paper conclusion (b) / future work: when >= 0, arrival budgeting is
  /// enabled. Static timing of the incoming netlist fixes a per-net
  /// arrival budget of (1 + this fraction) x the original arrival; during
  /// the traversal a candidate configuration is admissible only if the
  /// gate's output still arrives within its budget given the *actual*
  /// (already-optimized) input arrivals. The incoming configuration
  /// always qualifies, and by induction the final critical path is within
  /// (1 + fraction) of the original — 0.0 reproduces the paper's "power
  /// reductions without increasing the delay of the circuit".
  /// Negative (default) disables the constraint.
  double max_circuit_delay_increase = -1.0;

  /// Paper conclusion (a): when true, only configurations realisable by
  /// the *same* sea-of-gates layout instance as the incoming one are
  /// explored (pure input reordering). The gap to the unconstrained
  /// optimum measures the value of adding reordered instances to the
  /// library.
  bool restrict_to_instance = false;
};

/// Per-gate outcome of the exhaustive exploration.
struct GateDecision {
  netlist::GateId gate = -1;
  int config_count = 0;       ///< reorderings explored
  double chosen_power = 0.0;  ///< model power of the committed config [W]
  double best_power = 0.0;    ///< min over configs [W]
  double worst_power = 0.0;   ///< max over configs [W]
  double original_power = 0.0;  ///< power of the incoming config [W]
  bool changed = false;         ///< configuration was rewritten
};

struct OptimizeReport {
  std::vector<GateDecision> decisions;  ///< one per gate, GateId order
  double model_power_before = 0.0;  ///< circuit gate power, incoming configs
  double model_power_after = 0.0;   ///< circuit gate power, committed configs
  int gates_changed = 0;
  /// Candidates rejected by the delay constraint (0 when disabled).
  int configs_rejected_by_delay = 0;
  /// Candidates skipped by the instance restriction (0 when disabled).
  int configs_rejected_by_instance = 0;
};

/// Scores every reordering of `config` under the given input statistics
/// and external load; returns (configuration, model power) pairs in
/// enumeration order.
std::vector<std::pair<gategraph::GateTopology, double>> score_configurations(
    const gategraph::GateTopology& config,
    const std::vector<boolfn::SignalStats>& inputs, double external_load,
    const celllib::Tech& tech,
    power::ModelKind model = power::ModelKind::extended);

/// Optimizes `netlist` in place (paper Fig. 3). `pi_stats` must cover all
/// primary inputs. Deterministic: ties keep the first configuration in
/// enumeration order.
OptimizeReport optimize(netlist::Netlist& netlist,
                        const std::map<netlist::NetId, boolfn::SignalStats>& pi_stats,
                        const celllib::Tech& tech,
                        const OptimizeOptions& options = {});

}  // namespace tr::opt
