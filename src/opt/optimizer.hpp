#pragma once
// The paper's power-optimization algorithm (Sec. 4, Fig. 3), run by a
// three-layer configuration-scoring engine (DESIGN.md Sec. 7).
//
// Signal statistics are configuration-invariant (Sec. 4.2), so the
// algorithm splits into one cheap topological pass that propagates
// probabilities and transition densities, followed by per-gate decisions
// that are fully independent: every gate looks up the precomputed
// reordering catalog of its cell (celllib::ReorderCatalog, cached in the
// CellLibrary), scores all candidate configurations with the word-parallel
// boolean kernel, and commits the best one. Gates are scored concurrently
// on a small thread pool; results are deterministic regardless of thread
// count (per-gate tie-breaking keeps enumeration order, the report is
// assembled in GateId order and accumulated in topological order, exactly
// like the reference engine).
//
// The pre-catalog implementation — rebuild a GateGraph and re-run the
// path-function DFS for every candidate — is retained as
// Engine::reference; the parity test suite asserts both engines return
// bit-identical reports.

#include <map>
#include <utility>
#include <vector>

#include "boolfn/minterm_weights.hpp"
#include "boolfn/signal.hpp"
#include "celllib/catalog.hpp"
#include "celllib/tech.hpp"
#include "netlist/netlist.hpp"
#include "power/circuit_power.hpp"
#include "util/cancel.hpp"

namespace tr::opt {

/// Minimise for the paper's "best" netlists; maximise builds the "worst"
/// ordering the evaluation compares against (Table 3: "best case with
/// regard to worst case").
enum class Objective { minimize_power, maximize_power };

/// Which scoring engine optimize() runs.
enum class Engine {
  /// Catalog + word-parallel kernel + gate-parallel traversal (default).
  catalog,
  /// The retained per-candidate graph-rebuild scorer: the parity oracle,
  /// and the only engine supporting arrival budgeting (which makes
  /// per-gate decisions order-dependent).
  reference,
};

struct OptimizeOptions {
  Objective objective = Objective::minimize_power;
  /// Gate model used for scoring; output_only is the ablation baseline.
  power::ModelKind model = power::ModelKind::extended;

  /// Paper conclusion (b) / future work: when >= 0, arrival budgeting is
  /// enabled. Static timing of the incoming netlist fixes a per-net
  /// arrival budget of (1 + this fraction) x the original arrival; during
  /// the traversal a candidate configuration is admissible only if the
  /// gate's output still arrives within its budget given the *actual*
  /// (already-optimized) input arrivals. The incoming configuration
  /// always qualifies, and by induction the final critical path is within
  /// (1 + fraction) of the original — 0.0 reproduces the paper's "power
  /// reductions without increasing the delay of the circuit".
  /// Negative (default) disables the constraint. Budgeted runs always use
  /// the reference engine: a gate's admissible set depends on its fan-in
  /// gates' committed configurations, so the decisions are not
  /// independent and cannot be scored in parallel.
  double max_circuit_delay_increase = -1.0;

  /// Paper conclusion (a): when true, only configurations realisable by
  /// the *same* sea-of-gates layout instance as the incoming one are
  /// explored (pure input reordering). The gap to the unconstrained
  /// optimum measures the value of adding reordered instances to the
  /// library.
  bool restrict_to_instance = false;

  /// Scoring engine selection (see Engine).
  Engine engine = Engine::catalog;

  /// Worker threads for the gate-parallel phase; 0 = one per hardware
  /// thread, 1 = serial. Ignored by the reference engine.
  int threads = 0;

  /// Cooperative cancellation, polled at gate granularity. A cancelled
  /// run throws tr::Cancelled before any configuration is committed
  /// (catalog engine) or mid-traversal (reference engine — the batch
  /// layer restores the netlist), so the caller never observes a
  /// partially optimized circuit with result numbers attached. The
  /// default token is inert.
  util::CancellationToken cancel;
};

/// Per-gate outcome of the exhaustive exploration.
struct GateDecision {
  netlist::GateId gate = -1;
  int config_count = 0;       ///< reorderings explored
  double chosen_power = 0.0;  ///< model power of the committed config [W]
  double best_power = 0.0;    ///< min over configs [W]
  double worst_power = 0.0;   ///< max over configs [W]
  double original_power = 0.0;  ///< power of the incoming config [W]
  bool changed = false;         ///< configuration was rewritten
};

struct OptimizeReport {
  std::vector<GateDecision> decisions;  ///< one per gate, GateId order
  double model_power_before = 0.0;  ///< circuit gate power, incoming configs
  double model_power_after = 0.0;   ///< circuit gate power, committed configs
  int gates_changed = 0;
  /// Candidates rejected by the delay constraint (0 when disabled).
  int configs_rejected_by_delay = 0;
  /// Candidates skipped by the instance restriction (0 when disabled).
  int configs_rejected_by_instance = 0;
};

/// Reusable scoring buffers. One scratch per thread amortises the
/// probability-weight construction and the input-statistics staging across
/// every candidate of every gate the thread scores (allocation-free steady
/// state).
struct ScoreScratch {
  boolfn::MintermWeights weights;
  std::vector<double> probs;
  std::vector<double> powers;
};

/// Scores every configuration of `catalog` under the given input
/// statistics and external load. Returns the model power per
/// configuration, in catalog (= enumeration) order, backed by
/// scratch.powers. Bit-identical to scoring each configuration with
/// evaluate_gate_power / evaluate_output_only_power.
const std::vector<double>& score_catalog(
    const celllib::ReorderCatalog& catalog,
    const std::vector<boolfn::SignalStats>& inputs, double external_load,
    const celllib::Tech& tech, power::ModelKind model, ScoreScratch& scratch);

/// Scores every reordering of `config` under the given input statistics
/// and external load; returns (configuration, model power) pairs in
/// enumeration order. Builds a one-off catalog; callers scoring the same
/// cell repeatedly should go through CellLibrary::catalog + score_catalog.
std::vector<std::pair<gategraph::GateTopology, double>> score_configurations(
    const gategraph::GateTopology& config,
    const std::vector<boolfn::SignalStats>& inputs, double external_load,
    const celllib::Tech& tech,
    power::ModelKind model = power::ModelKind::extended);

/// Overload reusing caller-owned scratch buffers across calls.
std::vector<std::pair<gategraph::GateTopology, double>> score_configurations(
    const gategraph::GateTopology& config,
    const std::vector<boolfn::SignalStats>& inputs, double external_load,
    const celllib::Tech& tech, power::ModelKind model, ScoreScratch& scratch);

/// The retained pre-catalog scorer: rebuilds a GateGraph and re-runs the
/// path-function DFS per candidate. Kept as the parity oracle for the
/// fast path (tests/test_opt_parity.cpp); not used on the hot path.
std::vector<std::pair<gategraph::GateTopology, double>>
score_configurations_reference(
    const gategraph::GateTopology& config,
    const std::vector<boolfn::SignalStats>& inputs, double external_load,
    const celllib::Tech& tech,
    power::ModelKind model = power::ModelKind::extended);

/// Optimizes `netlist` in place (paper Fig. 3). `pi_stats` must cover all
/// primary inputs. Deterministic: ties keep the first configuration in
/// enumeration order, independent of options.threads.
OptimizeReport optimize(netlist::Netlist& netlist,
                        const std::map<netlist::NetId, boolfn::SignalStats>& pi_stats,
                        const celllib::Tech& tech,
                        const OptimizeOptions& options = {});

}  // namespace tr::opt
