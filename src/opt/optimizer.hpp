#pragma once
// The paper's power-optimization algorithm (Sec. 4, Fig. 3), run by a
// three-layer configuration-scoring engine (DESIGN.md Sec. 7).
//
// Signal statistics are configuration-invariant (Sec. 4.2), so the
// algorithm splits into one cheap topological pass that propagates
// probabilities and transition densities, followed by per-gate decisions
// that are fully independent: every gate looks up the precomputed
// reordering catalog of its cell (celllib::ReorderCatalog, cached in the
// CellLibrary), scores all candidate configurations with the word-parallel
// boolean kernel, and commits the best one. Gates are scored concurrently
// on a small thread pool; results are deterministic regardless of thread
// count (per-gate tie-breaking keeps enumeration order, the report is
// assembled in GateId order and accumulated in topological order, exactly
// like the reference engine).
//
// The pre-catalog implementation — rebuild a GateGraph and re-run the
// path-function DFS for every candidate — is retained as
// Engine::reference; the parity test suite asserts both engines return
// bit-identical reports.

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "boolfn/minterm_weights.hpp"
#include "boolfn/signal.hpp"
#include "celllib/catalog.hpp"
#include "celllib/tech.hpp"
#include "netlist/netlist.hpp"
#include "power/circuit_power.hpp"
#include "util/cancel.hpp"

namespace tr::opt {

/// Minimise for the paper's "best" netlists; maximise builds the "worst"
/// ordering the evaluation compares against (Table 3: "best case with
/// regard to worst case").
enum class Objective { minimize_power, maximize_power };

/// Which scoring engine optimize() runs.
enum class Engine {
  /// Catalog + word-parallel kernel + gate-parallel traversal (default).
  catalog,
  /// The retained per-candidate graph-rebuild scorer: the parity oracle,
  /// and the legacy fallback for arrival budgeting (which makes per-gate
  /// decisions order-dependent).
  reference,
  /// Iterated local search / simulated annealing over joint gate
  /// configurations on the incremental fanout-cone rescorer
  /// (opt/search.hpp, DESIGN.md Sec. 14). Seeded from a table-driven
  /// greedy that is bit-identical to the reference engine, so the result
  /// never loses to greedy at the same delay budget. Deterministic per
  /// (inputs, options, anneal.seed); always runs its search serially.
  anneal,
};

/// Stable lowercase engine names — the JSON/report encoding of Engine.
const char* engine_name(Engine engine) noexcept;

/// Knobs of the annealing engine (used when engine == Engine::anneal).
/// All defaults are deterministic; the search length is a pure function
/// of the circuit size, never of wall-clock time.
struct AnnealParams {
  /// Seed of the move stream. Same seed, inputs and options => a
  /// byte-identical report.
  std::uint64_t seed = 1;
  /// Move budget per gate: iterations = max(min_iterations,
  /// iterations_per_gate * gate_count).
  int iterations_per_gate = 256;
  int min_iterations = 4096;
  /// Initial temperature as a fraction of the mean per-gate power span
  /// (max - min over the gate's configurations); the schedule decays
  /// geometrically to final_temp_ratio * T0 over the move budget.
  double initial_temp_scale = 0.5;
  double final_temp_ratio = 1e-3;
  /// Accepted moves between required-time (slack) refreshes; stale slack
  /// only weakens the early-rejection prune, never correctness.
  int slack_refresh = 32;
};

struct OptimizeOptions {
  Objective objective = Objective::minimize_power;
  /// Gate model used for scoring; output_only is the ablation baseline.
  power::ModelKind model = power::ModelKind::extended;

  /// Paper conclusion (b): when set, arrival budgeting is enabled.
  /// Static timing of the incoming netlist fixes a per-net arrival
  /// budget of (1 + this fraction) x the original arrival; during the
  /// traversal a candidate configuration is admissible only if the
  /// gate's output still arrives within its budget given the *actual*
  /// (already-optimized) input arrivals. The incoming configuration
  /// always qualifies, and by induction the final critical path is
  /// within (1 + fraction) of the original — 0.0 is a legitimate
  /// zero-slack budget that reproduces the paper's "power reductions
  /// without increasing the delay of the circuit", distinct from
  /// nullopt (the default), which disables the constraint entirely.
  /// The value must be finite and >= 0 (enforced by optimize()).
  /// Budgeted greedy runs fall back to the sequential reference engine
  /// (a gate's admissible set depends on its fan-in gates' committed
  /// configurations); Engine::anneal lifts that restriction to a global
  /// search over per-output ceilings (DESIGN.md Sec. 14).
  std::optional<double> max_circuit_delay_increase;

  /// Paper conclusion (a): when true, only configurations realisable by
  /// the *same* sea-of-gates layout instance as the incoming one are
  /// explored (pure input reordering). The gap to the unconstrained
  /// optimum measures the value of adding reordered instances to the
  /// library.
  bool restrict_to_instance = false;

  /// Scoring engine selection (see Engine).
  Engine engine = Engine::catalog;

  /// Annealing knobs; consulted only when engine == Engine::anneal.
  AnnealParams anneal;

  /// Worker threads for the gate-parallel phase; 0 = one per hardware
  /// thread, 1 = serial. Ignored by the reference engine.
  int threads = 0;

  /// Cooperative cancellation, polled at gate granularity. A cancelled
  /// run throws tr::Cancelled before any configuration is committed
  /// (catalog engine) or mid-traversal (reference engine — the batch
  /// layer restores the netlist), so the caller never observes a
  /// partially optimized circuit with result numbers attached. The
  /// default token is inert.
  util::CancellationToken cancel;
};

/// Per-gate outcome of the exhaustive exploration.
struct GateDecision {
  netlist::GateId gate = -1;
  int config_count = 0;       ///< reorderings explored
  double chosen_power = 0.0;  ///< model power of the committed config [W]
  double best_power = 0.0;    ///< min over configs [W]
  double worst_power = 0.0;   ///< max over configs [W]
  double original_power = 0.0;  ///< power of the incoming config [W]
  bool changed = false;         ///< configuration was rewritten
};

/// Search statistics of an annealing run (OptimizeReport::anneal).
struct AnnealStats {
  std::uint64_t iterations = 0;       ///< moves drawn (incl. null moves)
  std::uint64_t accepted = 0;         ///< moves kept (incl. uphill)
  std::uint64_t uphill_accepted = 0;  ///< kept despite a worse objective
  /// Moves rejected because a primary output would leave its ceiling
  /// (includes the slack-prune early rejections).
  std::uint64_t rejected_delay = 0;
  double greedy_power = 0.0;  ///< power of the greedy seed solution [W]
  double final_power = 0.0;   ///< power of the committed best state [W]
};

struct OptimizeReport {
  std::vector<GateDecision> decisions;  ///< one per gate, GateId order
  double model_power_before = 0.0;  ///< circuit gate power, incoming configs
  double model_power_after = 0.0;   ///< circuit gate power, committed configs
  int gates_changed = 0;
  /// Candidates rejected by the delay constraint (0 when disabled). For
  /// the annealing engine this counts the greedy seed phase, whose
  /// semantics match the reference engine; move-level rejections live in
  /// `anneal`.
  int configs_rejected_by_delay = 0;
  /// Candidates skipped by the instance restriction (0 when disabled).
  int configs_rejected_by_instance = 0;
  /// The engine that actually ran — recorded by optimize() itself, so
  /// consumers never have to re-infer routing from the options (a
  /// delay-budgeted Engine::catalog request is downgraded to reference
  /// while that fallback exists; see optimize()).
  Engine engine_used = Engine::catalog;
  /// Gate-level worker threads the scoring phase actually used (1 for
  /// the sequential reference and annealing engines) — surfaces the
  /// silent thread-count downgrade of budgeted runs.
  int threads_used = 1;
  /// Present iff engine_used == Engine::anneal.
  std::optional<AnnealStats> anneal;
};

/// Reusable scoring buffers. One scratch per thread amortises the
/// probability-weight construction and the input-statistics staging across
/// every candidate of every gate the thread scores (allocation-free steady
/// state).
struct ScoreScratch {
  boolfn::MintermWeights weights;
  std::vector<double> probs;
  std::vector<double> powers;
};

/// Scores every configuration of `catalog` under the given input
/// statistics and external load. Returns the model power per
/// configuration, in catalog (= enumeration) order, backed by
/// scratch.powers. Bit-identical to scoring each configuration with
/// evaluate_gate_power / evaluate_output_only_power.
const std::vector<double>& score_catalog(
    const celllib::ReorderCatalog& catalog,
    const std::vector<boolfn::SignalStats>& inputs, double external_load,
    const celllib::Tech& tech, power::ModelKind model, ScoreScratch& scratch);

/// Scores every reordering of `config` under the given input statistics
/// and external load; returns (configuration, model power) pairs in
/// enumeration order. Builds a one-off catalog; callers scoring the same
/// cell repeatedly should go through CellLibrary::catalog + score_catalog.
std::vector<std::pair<gategraph::GateTopology, double>> score_configurations(
    const gategraph::GateTopology& config,
    const std::vector<boolfn::SignalStats>& inputs, double external_load,
    const celllib::Tech& tech,
    power::ModelKind model = power::ModelKind::extended);

/// Overload reusing caller-owned scratch buffers across calls.
std::vector<std::pair<gategraph::GateTopology, double>> score_configurations(
    const gategraph::GateTopology& config,
    const std::vector<boolfn::SignalStats>& inputs, double external_load,
    const celllib::Tech& tech, power::ModelKind model, ScoreScratch& scratch);

/// The retained pre-catalog scorer: rebuilds a GateGraph and re-runs the
/// path-function DFS per candidate. Kept as the parity oracle for the
/// fast path (tests/test_opt_parity.cpp); not used on the hot path.
std::vector<std::pair<gategraph::GateTopology, double>>
score_configurations_reference(
    const gategraph::GateTopology& config,
    const std::vector<boolfn::SignalStats>& inputs, double external_load,
    const celllib::Tech& tech,
    power::ModelKind model = power::ModelKind::extended);

/// Optimizes `netlist` in place (paper Fig. 3). `pi_stats` must cover all
/// primary inputs. Deterministic: ties keep the first configuration in
/// enumeration order, independent of options.threads.
OptimizeReport optimize(netlist::Netlist& netlist,
                        const std::map<netlist::NetId, boolfn::SignalStats>& pi_stats,
                        const celllib::Tech& tech,
                        const OptimizeOptions& options = {});

}  // namespace tr::opt
