#include "opt/scenario.hpp"

#include "util/rng.hpp"

namespace tr::opt {

std::map<netlist::NetId, boolfn::SignalStats> scenario_a(
    const netlist::Netlist& netlist, std::uint64_t seed, double max_density) {
  Rng rng(seed);
  std::map<netlist::NetId, boolfn::SignalStats> stats;
  for (netlist::NetId id : netlist.primary_inputs()) {
    boolfn::SignalStats s;
    s.prob = rng.next_double();
    s.density = rng.uniform(0.0, max_density);
    stats[id] = s;
  }
  return stats;
}

std::map<netlist::NetId, boolfn::SignalStats> scenario_b(
    const netlist::Netlist& netlist, double clock_hz) {
  std::map<netlist::NetId, boolfn::SignalStats> stats;
  for (netlist::NetId id : netlist.primary_inputs()) {
    stats[id] = boolfn::SignalStats{0.5, 0.5 * clock_hz};
  }
  return stats;
}

}  // namespace tr::opt
