#include "opt/search.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "celllib/cell.hpp"
#include "delay/elmore.hpp"
#include "gategraph/gate_graph.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace tr::opt::search {

using boolfn::SignalStats;
using celllib::ReorderCatalog;
using gategraph::GateGraph;
using netlist::GateId;
using netlist::NetId;
using netlist::Netlist;

namespace {

/// Admissibility slop of the arrival ceilings — the same epsilon the
/// reference engine applies to its per-net budgets, so "feasible" means
/// the same thing in both engines.
constexpr double k_budget_epsilon = 1e-18;

constexpr double k_inf = std::numeric_limits<double>::infinity();

}  // namespace

IncrementalScorer::IncrementalScorer(
    const Netlist& netlist, const std::map<NetId, SignalStats>& pi_stats,
    const celllib::Tech& tech, power::ModelKind model,
    const util::CancellationToken& cancel)
    : netlist_(&netlist) {
  netlist.validate();

  // Signal statistics are configuration-invariant (paper Sec. 4.2): one
  // topological pass fixes every gate's input statistics for good.
  std::vector<SignalStats> net_stats(
      static_cast<std::size_t>(netlist.net_count()), SignalStats{0.5, 0.0});
  for (NetId id : netlist.primary_inputs()) {
    const auto it = pi_stats.find(id);
    require(it != pi_stats.end(),
            "search: missing statistics for primary input '" +
                netlist.net(id).name + "'");
    net_stats[static_cast<std::size_t>(id)] = it->second;
  }

  topo_order_ = netlist.topological_order();
  topo_rank_.assign(static_cast<std::size_t>(netlist.gate_count()), 0);
  for (std::size_t i = 0; i < topo_order_.size(); ++i) {
    topo_rank_[static_cast<std::size_t>(topo_order_[i])] = static_cast<int>(i);
  }

  // Per-gate tables. Powers go through the word-parallel catalog scorer
  // (bit-identical to the reference per-candidate scorer by the parity
  // suite); pin delays go through the very delay::gate_delays code path
  // the reference engine runs, memoised per (catalog, external load) —
  // gates sharing a cell configuration and load share one delay table.
  tables_.resize(static_cast<std::size_t>(netlist.gate_count()));
  std::map<std::pair<const ReorderCatalog*, double>,
           std::shared_ptr<const std::vector<std::vector<double>>>>
      delay_cache;
  ScoreScratch scratch;
  const bool cancellable = cancel.valid();
  for (GateId g : topo_order_) {
    if (cancellable) cancel.check("search");
    const netlist::GateInst& inst = netlist.gate(g);
    std::vector<SignalStats> inputs;
    inputs.reserve(inst.inputs.size());
    for (NetId in : inst.inputs) {
      inputs.push_back(net_stats[static_cast<std::size_t>(in)]);
    }

    GateTable& table = tables_[static_cast<std::size_t>(g)];
    table.catalog = with_error_site("characterize", [&] {
      return netlist.library().catalog(inst.config);
    });
    const double load = netlist.external_load(g, tech);
    table.power = with_error_site("score", [&] {
      return score_catalog(*table.catalog, inputs, load, tech, model, scratch);
    });

    const auto key = std::make_pair(table.catalog.get(), load);
    auto cached = delay_cache.find(key);
    if (cached == delay_cache.end()) {
      auto delays = std::make_shared<std::vector<std::vector<double>>>();
      delays->reserve(table.catalog->configs().size());
      for (const celllib::CatalogConfig& config : table.catalog->configs()) {
        const GateGraph graph(config.topology);
        const std::vector<double> caps =
            celllib::node_capacitances(graph, tech, load);
        delays->push_back(delay::gate_delays(graph, caps, tech).pin_delay);
      }
      cached = delay_cache.emplace(key, std::move(delays)).first;
    }
    table.pin_delay = cached->second;

    net_stats[static_cast<std::size_t>(inst.output)] = boolfn::propagate(
        netlist.library().cell(inst.cell).function(), inputs);
  }

  config_.assign(static_cast<std::size_t>(netlist.gate_count()), 0);
  arrival_.assign(static_cast<std::size_t>(netlist.net_count()), 0.0);
  po_ceiling_.assign(static_cast<std::size_t>(netlist.net_count()), k_inf);
  queued_.assign(static_cast<std::size_t>(netlist.gate_count()), 0);
  recompute_state();
}

void IncrementalScorer::recompute_state() {
  // The exact circuit_delay recurrence: arrival = max over pins of
  // (input arrival + pin delay), starting from 0.0, in pin order.
  std::fill(arrival_.begin(), arrival_.end(), 0.0);
  total_power_ = 0.0;
  for (GateId g : topo_order_) {
    const netlist::GateInst& inst = netlist_->gate(g);
    const GateTable& table = tables_[static_cast<std::size_t>(g)];
    const int cfg = config_[static_cast<std::size_t>(g)];
    const std::vector<double>& pd =
        (*table.pin_delay)[static_cast<std::size_t>(cfg)];
    double arrival = 0.0;
    for (std::size_t pin = 0; pin < inst.inputs.size(); ++pin) {
      arrival = std::max(
          arrival, arrival_[static_cast<std::size_t>(inst.inputs[pin])] +
                       pd[pin]);
    }
    arrival_[static_cast<std::size_t>(inst.output)] = arrival;
    total_power_ += table.power[static_cast<std::size_t>(cfg)];
  }
  po_violations_ = 0;
  if (has_ceilings_) {
    for (NetId id : netlist_->primary_outputs()) {
      if (arrival_[static_cast<std::size_t>(id)] >
          po_ceiling_[static_cast<std::size_t>(id)] + k_budget_epsilon) {
        ++po_violations_;
      }
    }
  }
}

double IncrementalScorer::total_power_in_topo_order() const {
  double total = 0.0;
  for (GateId g : topo_order_) {
    total += tables_[static_cast<std::size_t>(g)]
                 .power[static_cast<std::size_t>(
                     config_[static_cast<std::size_t>(g)])];
  }
  return total;
}

void IncrementalScorer::set_delay_budget(double fraction) {
  require(std::isfinite(fraction) && fraction >= 0.0,
          "search: delay budget must be finite and >= 0");
  for (NetId id : netlist_->primary_outputs()) {
    po_ceiling_[static_cast<std::size_t>(id)] =
        arrival_[static_cast<std::size_t>(id)] * (1.0 + fraction);
  }
  has_ceilings_ = true;
  po_violations_ = 0;
  for (NetId id : netlist_->primary_outputs()) {
    if (arrival_[static_cast<std::size_t>(id)] >
        po_ceiling_[static_cast<std::size_t>(id)] + k_budget_epsilon) {
      ++po_violations_;
    }
  }
}

IncrementalScorer::Undo IncrementalScorer::apply(GateId g, int config) {
  Undo undo;
  undo.gate = g;
  undo.old_config = config_[static_cast<std::size_t>(g)];
  undo.old_total_power = total_power_;
  undo.old_po_violations = po_violations_;

  const GateTable& moved = tables_[static_cast<std::size_t>(g)];
  total_power_ += moved.power[static_cast<std::size_t>(config)] -
                  moved.power[static_cast<std::size_t>(undo.old_config)];
  config_[static_cast<std::size_t>(g)] = config;

  // Fanout-cone arrival propagation: a min-rank worklist pops each gate
  // at most once (a gate's fan-in drivers all have strictly lower rank,
  // so by the time it pops, its inputs are final) and stops wherever the
  // recomputed arrival is bit-identical to the stored one.
  const auto by_rank_greater = [](const std::pair<int, GateId>& a,
                                  const std::pair<int, GateId>& b) {
    return a > b;
  };
  TR_ASSERT(heap_.empty());
  heap_.emplace_back(topo_rank_[static_cast<std::size_t>(g)], g);
  queued_[static_cast<std::size_t>(g)] = 1;
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), by_rank_greater);
    const GateId u = heap_.back().second;
    heap_.pop_back();
    queued_[static_cast<std::size_t>(u)] = 0;

    const netlist::GateInst& inst = netlist_->gate(u);
    const std::vector<double>& pd =
        (*tables_[static_cast<std::size_t>(u)].pin_delay)[
            static_cast<std::size_t>(config_[static_cast<std::size_t>(u)])];
    double arrival = 0.0;
    for (std::size_t pin = 0; pin < inst.inputs.size(); ++pin) {
      arrival = std::max(
          arrival, arrival_[static_cast<std::size_t>(inst.inputs[pin])] +
                       pd[pin]);
    }
    const NetId out = inst.output;
    double& stored = arrival_[static_cast<std::size_t>(out)];
    if (arrival == stored) continue;
    undo.arrivals.emplace_back(out, stored);
    if (has_ceilings_) {
      const double ceiling =
          po_ceiling_[static_cast<std::size_t>(out)] + k_budget_epsilon;
      po_violations_ +=
          static_cast<int>(arrival > ceiling) - static_cast<int>(stored > ceiling);
    }
    stored = arrival;
    for (const std::pair<GateId, int>& fanout : netlist_->net(out).fanouts) {
      const GateId f = fanout.first;
      if (!queued_[static_cast<std::size_t>(f)]) {
        queued_[static_cast<std::size_t>(f)] = 1;
        heap_.emplace_back(topo_rank_[static_cast<std::size_t>(f)], f);
        std::push_heap(heap_.begin(), heap_.end(), by_rank_greater);
      }
    }
  }
  return undo;
}

void IncrementalScorer::revert(const Undo& undo) {
  config_[static_cast<std::size_t>(undo.gate)] = undo.old_config;
  total_power_ = undo.old_total_power;
  po_violations_ = undo.old_po_violations;
  for (auto it = undo.arrivals.rbegin(); it != undo.arrivals.rend(); ++it) {
    arrival_[static_cast<std::size_t>(it->first)] = it->second;
  }
}

void IncrementalScorer::set_configs(const std::vector<int>& configs) {
  require(configs.size() == config_.size(),
          "search: configuration vector arity mismatch");
  config_ = configs;
  recompute_state();
}

std::vector<double> IncrementalScorer::full_arrivals() const {
  std::vector<double> arrival(
      static_cast<std::size_t>(netlist_->net_count()), 0.0);
  for (GateId g : topo_order_) {
    const netlist::GateInst& inst = netlist_->gate(g);
    const std::vector<double>& pd =
        (*tables_[static_cast<std::size_t>(g)].pin_delay)[
            static_cast<std::size_t>(config_[static_cast<std::size_t>(g)])];
    double out = 0.0;
    for (std::size_t pin = 0; pin < inst.inputs.size(); ++pin) {
      out = std::max(
          out,
          arrival[static_cast<std::size_t>(inst.inputs[pin])] + pd[pin]);
    }
    arrival[static_cast<std::size_t>(inst.output)] = out;
  }
  return arrival;
}

std::vector<double> IncrementalScorer::required_times() const {
  require(has_ceilings_, "search: required_times needs a delay budget");
  std::vector<double> required(
      static_cast<std::size_t>(netlist_->net_count()), k_inf);
  for (NetId id : netlist_->primary_outputs()) {
    required[static_cast<std::size_t>(id)] =
        std::min(required[static_cast<std::size_t>(id)],
                 po_ceiling_[static_cast<std::size_t>(id)]);
  }
  for (auto it = topo_order_.rbegin(); it != topo_order_.rend(); ++it) {
    const netlist::GateInst& inst = netlist_->gate(*it);
    const double out_required = required[static_cast<std::size_t>(inst.output)];
    const std::vector<double>& pd =
        (*tables_[static_cast<std::size_t>(*it)].pin_delay)[
            static_cast<std::size_t>(config_[static_cast<std::size_t>(*it)])];
    for (std::size_t pin = 0; pin < inst.inputs.size(); ++pin) {
      double& in_required = required[static_cast<std::size_t>(inst.inputs[pin])];
      in_required = std::min(in_required, out_required - pd[pin]);
    }
  }
  return required;
}

GreedySeed greedy_seed(const IncrementalScorer& scorer,
                       const OptimizeOptions& options) {
  for (int cfg : scorer.configs()) {
    require(cfg == 0, "greedy_seed: scorer must hold the incoming configs");
  }
  const Netlist& netlist = scorer.netlist();
  GreedySeed seed;
  seed.configs.assign(static_cast<std::size_t>(scorer.gate_count()), 0);

  // The reference engine's arrival budgeting, off the tables: per-net
  // ceilings of (1 + f) x the original arrival (the scorer still holds
  // configuration 0 everywhere, so its arrivals are the original ones),
  // running arrivals of the partially committed netlist, and the same
  // 1e-18 admissibility epsilon.
  const bool budget_delay = options.max_circuit_delay_increase.has_value();
  std::vector<double> arrival_budget;
  std::vector<double> arrival;
  if (budget_delay) {
    const std::vector<double>& original = scorer.arrivals();
    arrival_budget.resize(original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
      arrival_budget[i] =
          original[i] * (1.0 + *options.max_circuit_delay_increase);
    }
    arrival.assign(static_cast<std::size_t>(netlist.net_count()), 0.0);
  }

  for (GateId g : scorer.topo_order()) {
    const GateTable& table = scorer.table(g);
    const netlist::GateInst& inst = netlist.gate(g);
    const std::size_t n = table.power.size();

    std::vector<bool> admissible(n, true);
    if (options.restrict_to_instance) {
      for (std::size_t i = 0; i < n; ++i) {
        if (!table.same_instance(static_cast<int>(i))) {
          admissible[i] = false;
          ++seed.rejected_instance;
        }
      }
    }
    std::vector<double> candidate_arrival(n, 0.0);
    if (budget_delay) {
      const double budget =
          arrival_budget[static_cast<std::size_t>(inst.output)];
      for (std::size_t i = 0; i < n; ++i) {
        const std::vector<double>& pd = (*table.pin_delay)[i];
        double out = 0.0;
        for (std::size_t pin = 0; pin < inst.inputs.size(); ++pin) {
          out = std::max(
              out, arrival[static_cast<std::size_t>(inst.inputs[pin])] +
                       pd[pin]);
        }
        candidate_arrival[i] = out;
        if (i > 0 && out > budget + k_budget_epsilon) {
          admissible[i] = false;
          ++seed.rejected_delay;
        }
      }
      TR_ASSERT(candidate_arrival[0] <= budget + 1e-15);
    }

    std::size_t chosen = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!admissible[i]) continue;
      const bool better = options.objective == Objective::minimize_power
                              ? table.power[i] < table.power[chosen]
                              : table.power[i] > table.power[chosen];
      if (better) chosen = i;
    }
    seed.configs[static_cast<std::size_t>(g)] = static_cast<int>(chosen);
    if (budget_delay) {
      arrival[static_cast<std::size_t>(inst.output)] =
          candidate_arrival[chosen];
    }
  }
  return seed;
}

OptimizeReport anneal_optimize(Netlist& netlist,
                               const std::map<NetId, SignalStats>& pi_stats,
                               const celllib::Tech& tech,
                               const OptimizeOptions& options) {
  const AnnealParams& params = options.anneal;
  require(params.iterations_per_gate >= 0, "anneal: iterations_per_gate < 0");
  require(params.min_iterations >= 0, "anneal: min_iterations < 0");
  require(std::isfinite(params.initial_temp_scale) &&
              params.initial_temp_scale >= 0.0,
          "anneal: initial_temp_scale must be finite and >= 0");
  require(params.final_temp_ratio > 0.0 && params.final_temp_ratio <= 1.0,
          "anneal: final_temp_ratio must be in (0, 1]");
  require(params.slack_refresh >= 1, "anneal: slack_refresh must be >= 1");

  const bool cancellable = options.cancel.valid();
  IncrementalScorer scorer(netlist, pi_stats, tech, options.model,
                           options.cancel);
  const GreedySeed seed = greedy_seed(scorer, options);
  if (options.max_circuit_delay_increase) {
    scorer.set_delay_budget(*options.max_circuit_delay_increase);
  }
  scorer.set_configs(seed.configs);
  TR_ASSERT(scorer.feasible());  // the greedy seed honours per-net budgets
  const double greedy_power = scorer.total_power_in_topo_order();

  const int gates = scorer.gate_count();
  const std::uint64_t total_iters = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(params.min_iterations),
      static_cast<std::uint64_t>(params.iterations_per_gate) *
          static_cast<std::uint64_t>(gates));

  // Initial temperature: a fraction of the mean per-gate power span, so
  // early uphill moves can cross typical single-gate barriers; geometric
  // decay to final_temp_ratio x T0 across the whole move budget.
  double span_sum = 0.0;
  for (GateId g = 0; g < gates; ++g) {
    const std::vector<double>& power = scorer.table(g).power;
    const auto [lo, hi] = std::minmax_element(power.begin(), power.end());
    span_sum += *hi - *lo;
  }
  const double t0 =
      params.initial_temp_scale * (gates > 0 ? span_sum / gates : 0.0);

  // Minimisation throughout: E = sign * power.
  const double sign =
      options.objective == Objective::minimize_power ? 1.0 : -1.0;

  AnnealStats stats;
  std::vector<int> best = scorer.configs();
  double best_energy = sign * scorer.total_power();
  std::vector<double> required;
  if (scorer.has_delay_budget()) required = scorer.required_times();
  int accepted_since_refresh = 0;

  if (t0 > 0.0 && gates > 0 && total_iters > 1) {
    tr::Rng rng(params.seed);
    const double alpha =
        std::pow(params.final_temp_ratio,
                 1.0 / static_cast<double>(total_iters - 1));
    double temp = t0;
    for (std::uint64_t it = 0; it < total_iters; ++it, temp *= alpha) {
      if (cancellable && (it & 1023u) == 0) options.cancel.check("anneal");
      ++stats.iterations;

      // Move: uniform gate, uniform *other* configuration of that gate.
      const GateId g =
          static_cast<GateId>(rng.next_below(static_cast<std::uint64_t>(gates)));
      const GateTable& table = scorer.table(g);
      const int n = table.config_count();
      if (n <= 1) continue;
      const int current = scorer.config_of(g);
      int candidate = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(n - 1)));
      if (candidate >= current) ++candidate;
      if (options.restrict_to_instance && !table.same_instance(candidate)) {
        continue;
      }

      // Slack prune: reject before propagating when the gate's own output
      // would already overshoot its required time. Required times go stale
      // between refreshes, which can only over-reject (a quality knob) —
      // acceptance is always validated by the exact propagation below.
      if (!required.empty()) {
        const netlist::GateInst& inst = netlist.gate(g);
        const std::vector<double>& pd =
            (*table.pin_delay)[static_cast<std::size_t>(candidate)];
        double out = 0.0;
        for (std::size_t pin = 0; pin < inst.inputs.size(); ++pin) {
          out = std::max(
              out, scorer.arrival(inst.inputs[pin]) + pd[pin]);
        }
        if (out > required[static_cast<std::size_t>(inst.output)] +
                      k_budget_epsilon) {
          ++stats.rejected_delay;
          continue;
        }
      }

      const IncrementalScorer::Undo undo = scorer.apply(g, candidate);
      if (scorer.has_delay_budget() && !scorer.feasible()) {
        scorer.revert(undo);
        ++stats.rejected_delay;
        continue;
      }
      const double delta = sign * (scorer.total_power() - undo.old_total_power);
      bool accept = delta <= 0.0;
      if (!accept && temp > 0.0) {
        accept = rng.next_double() < std::exp(-delta / temp);
      }
      if (!accept) {
        scorer.revert(undo);
        continue;
      }
      ++stats.accepted;
      if (delta > 0.0) ++stats.uphill_accepted;
      const double energy = sign * scorer.total_power();
      if (energy < best_energy) {
        best_energy = energy;
        best = scorer.configs();
      }
      if (!required.empty() &&
          ++accepted_since_refresh >= params.slack_refresh) {
        required = scorer.required_times();
        accepted_since_refresh = 0;
      }
    }
  }

  // Last cancellation point: past here the netlist is mutated.
  if (cancellable) options.cancel.check("anneal");

  // Final commit compares *true* (topo-order) objective values, so the
  // result never loses to the greedy seed — ties and any accumulated
  // exact-difference drift both resolve to the seed.
  scorer.set_configs(best);
  const double best_power = scorer.total_power_in_topo_order();
  const bool use_best = options.objective == Objective::minimize_power
                            ? best_power < greedy_power
                            : best_power > greedy_power;
  if (!use_best) scorer.set_configs(seed.configs);
  TR_ASSERT(scorer.feasible());

  OptimizeReport report;
  report.engine_used = Engine::anneal;
  report.threads_used = 1;
  report.configs_rejected_by_delay = seed.rejected_delay;
  report.configs_rejected_by_instance = seed.rejected_instance;
  report.decisions.resize(static_cast<std::size_t>(gates));
  for (GateId g = 0; g < gates; ++g) {
    const GateTable& table = scorer.table(g);
    GateDecision decision;
    decision.gate = g;
    decision.config_count = table.config_count();
    decision.original_power = table.power.front();
    decision.best_power = table.power.front();
    decision.worst_power = table.power.front();
    for (const double p : table.power) {
      if (p < decision.best_power) decision.best_power = p;
      if (p > decision.worst_power) decision.worst_power = p;
    }
    const int cfg = scorer.config_of(g);
    decision.chosen_power = table.power[static_cast<std::size_t>(cfg)];
    decision.changed = cfg != 0;
    if (decision.changed) {
      netlist.set_config(
          g, table.catalog->configs()[static_cast<std::size_t>(cfg)].topology);
      ++report.gates_changed;
    }
    report.decisions[static_cast<std::size_t>(g)] = decision;
  }
  for (GateId g : scorer.topo_order()) {
    report.model_power_before +=
        report.decisions[static_cast<std::size_t>(g)].original_power;
    report.model_power_after +=
        report.decisions[static_cast<std::size_t>(g)].chosen_power;
  }
  stats.greedy_power = greedy_power;
  stats.final_power = report.model_power_after;
  report.anneal = stats;
  return report;
}

}  // namespace tr::opt::search
