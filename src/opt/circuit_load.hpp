#pragma once
// Circuit-spec resolution shared by the tr_opt CLI and the optimization
// server (DESIGN.md Sec. 9.1, Sec. 13.2): one string names an embedded
// classic, a generated suite entry, or a BLIF/Verilog file on disk, and
// loads into a netlist mapped onto the given library. Extracted from
// tools/tr_opt.cpp so the server's request executor resolves specs with
// byte-identical semantics to the batch CLI.

#include <string>
#include <vector>

#include "celllib/library.hpp"
#include "netlist/netlist.hpp"

namespace tr::opt {

/// The circuit specs of a named suite in suite order; throws tr::Error
/// for an unknown suite name. Known suites: classic, table3, scaled.
std::vector<std::string> suite_circuit_specs(const std::string& suite);

/// True when `spec` names an embedded classic or a generated suite
/// entry — the specs a network server is willing to serve (file-path
/// specs stay CLI-only; the daemon does not read request-named files).
bool is_embedded_spec(const std::string& spec);

/// Loads one circuit spec:
///   * an embedded classic (benchgen::classic_names) is parsed from its
///     embedded BLIF and mapped onto `library`;
///   * a table3/scaled suite entry is generated on the fly;
///   * a `.blif` file is read as mapped (.gate) or generic (.names,
///     through the technology mapper) BLIF;
///   * a `.v` file is read as structural Verilog (the writer's subset).
/// Anything else throws tr::Error.
netlist::Netlist load_circuit_spec(const std::string& spec,
                                   const celllib::CellLibrary& library);

}  // namespace tr::opt
