#pragma once
// Rule-based reordering baseline (paper Sec. 2 related work).
//
// Shen, Lin and Wang [9] give fixed transistor-reordering *rules* for
// power; Carlson [2] reorders without any activity model at all. This
// baseline implements the rule family those papers represent: within
// every series chain, order the sub-networks by the switching activity
// of their inputs — the hottest device goes next to the output node
// (the serial-stack result of Hossain et al. [4], which our model
// reproduces as a closed form, see docs/MODEL.md Sec. 4). No power
// model is evaluated; probabilities are ignored.
//
// The gap between this baseline and the model-driven optimizer is the
// value of the paper's actual contribution: a model that weighs
// probabilities, per-node capacitances and both networks together
// instead of a one-dimensional rule.

#include <map>

#include "boolfn/signal.hpp"
#include "celllib/tech.hpp"
#include "netlist/netlist.hpp"

namespace tr::opt {

struct RuleBasedReport {
  int gates_changed = 0;
};

/// Reorders every gate of `netlist` in place by the activity rule:
/// series children sorted by descending subtree temperature (maximum
/// input transition density in the subtree), output side first.
/// Deterministic: ties keep the incoming relative order.
RuleBasedReport optimize_rule_based(
    netlist::Netlist& netlist,
    const std::map<netlist::NetId, boolfn::SignalStats>& pi_stats);

}  // namespace tr::opt
