#include "opt/batch.hpp"

#include <chrono>

#include "delay/elmore.hpp"
#include "opt/scenario.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/thread_pool.hpp"

namespace tr::opt {

namespace {

double ms_between(std::chrono::steady_clock::time_point t0,
                  std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

const char* circuit_status_name(CircuitStatus status) noexcept {
  switch (status) {
    case CircuitStatus::ok:
      return "ok";
    case CircuitStatus::error:
      return "error";
    case CircuitStatus::cancelled:
      return "cancelled";
  }
  return "error";
}

CircuitError describe_current_exception() {
  try {
    throw;
  } catch (const Error& e) {
    return {e.code(), e.site_chain(), e.what()};
  } catch (const std::bad_alloc&) {
    return {ErrorCode::resource, "", "allocation failure (std::bad_alloc)"};
  } catch (const std::exception& e) {
    return {ErrorCode::unknown, "", e.what()};
  } catch (...) {
    return {ErrorCode::unknown, "", "unknown exception"};
  }
}

BatchOptimizer::BatchOptimizer(const celllib::CellLibrary& library,
                               const celllib::Tech& tech, BatchOptions options)
    : library_(&library), tech_(tech), options_(std::move(options)) {
  require(options_.threads_per_circuit >= 0,
          "BatchOptimizer: threads_per_circuit must be >= 0");
}

BatchReport BatchOptimizer::run(std::vector<BatchCircuit>& batch) const {
  for (const BatchCircuit& circuit : batch) {
    require(&circuit.netlist.library() == library_,
            "BatchOptimizer: circuit '" + circuit.name +
                "' references a different CellLibrary than the shared one; "
                "cross-circuit catalog sharing requires one library "
                "instance for the whole batch");
  }

  const celllib::CatalogCacheStats before = library_->catalog_cache_stats();
  const auto batch_t0 = std::chrono::steady_clock::now();

  BatchReport report;
  report.circuits.resize(batch.size());

  OptimizeOptions per_circuit = options_.opt;
  // threads == 0 would route every circuit through the process-wide
  // shared pool and serialise the batch on its guard mutex; the batch
  // driver always hands each optimize() its own explicit worker count.
  per_circuit.threads = options_.threads_per_circuit == 0
                            ? 1
                            : options_.threads_per_circuit;

  per_circuit.cancel = options_.cancel;

  util::ThreadPool pool(options_.jobs);
  pool.parallel_for(batch.size(), [&](std::size_t i) {
    BatchCircuit& circuit = batch[i];
    BatchCircuitResult& result = report.circuits[i];
    const auto t0 = std::chrono::steady_clock::now();
    result.name = circuit.name;

    if (circuit.load_error) {
      // The circuit never loaded; its placeholder netlist carries no
      // work. Surface the stored record (which may itself be a
      // cancellation) without running anything.
      result.status = circuit.load_error->code == ErrorCode::cancelled
                          ? CircuitStatus::cancelled
                          : CircuitStatus::error;
      result.error = circuit.load_error;
      result.elapsed_ms = ms_between(t0, std::chrono::steady_clock::now());
      if (!options_.keep_going) {
        throw Error(circuit.name + ": " + circuit.load_error->message,
                    circuit.load_error->code);
      }
      if (options_.progress) options_.progress(i, result);
      return;
    }

    if (circuit.resumed) {
      // Checkpoint resume: adopt the journaled result verbatim — the
      // configurations are already applied to the netlist, no scoring
      // runs, no cache traffic, no fault sites. Only the wall clock is
      // this run's own (it measures the adoption, and is excluded from
      // the byte-identity contract like all timing).
      result = *circuit.resumed;
      result.elapsed_ms = ms_between(t0, std::chrono::steady_clock::now());
      if (options_.progress) options_.progress(i, result);
      return;
    }

    // Name this worker's unit of work so `site @ circuit` fault
    // targeting is deterministic regardless of jobs. The context is
    // thread-local: with threads_per_circuit == 1 the whole circuit runs
    // on this thread and every site below sees it.
    const util::fault::ScopedContext fault_context(circuit.name);

    // All-or-nothing: optimize() mutates the netlist as it commits, so
    // keep the incoming configuration to move back on any failure. One
    // netlist copy per circuit — noise next to the scoring work.
    netlist::Netlist snapshot = circuit.netlist;
    try {
      options_.cancel.check("batch");
      if (util::fault::enabled()) {
        util::fault::check("batch.circuit");
      }
      result.gates = circuit.netlist.gate_count();
      result.primary_inputs =
          static_cast<int>(circuit.netlist.primary_inputs().size());
      result.primary_outputs =
          static_cast<int>(circuit.netlist.primary_outputs().size());
      result.critical_path_before =
          delay::circuit_delay(circuit.netlist, tech_).critical_path;
      result.report =
          optimize(circuit.netlist, circuit.pi_stats, tech_, per_circuit);
      result.critical_path_after =
          delay::circuit_delay(circuit.netlist, tech_).critical_path;
      result.elapsed_ms = ms_between(t0, std::chrono::steady_clock::now());
      // Durability before visibility: journal the completed circuit
      // first, so an emitted progress frame implies the entry survives
      // a crash from here on.
      if (options_.journal) options_.journal(i, circuit, result);
      if (options_.progress) options_.progress(i, result);
    } catch (...) {
      circuit.netlist = std::move(snapshot);
      const CircuitError error = describe_current_exception();
      // Reset to defaults first: nothing numeric from the failed attempt
      // may survive into the record.
      result = BatchCircuitResult{};
      result.name = circuit.name;
      result.status = error.code == ErrorCode::cancelled
                          ? CircuitStatus::cancelled
                          : CircuitStatus::error;
      result.error = error;
      result.elapsed_ms = ms_between(t0, std::chrono::steady_clock::now());
      if (!options_.keep_going) throw;
      if (options_.progress) options_.progress(i, result);
    }
  });

  for (const BatchCircuitResult& result : report.circuits) {
    switch (result.status) {
      case CircuitStatus::ok:
        ++report.circuits_ok;
        break;
      case CircuitStatus::error:
        ++report.circuits_failed;
        continue;
      case CircuitStatus::cancelled:
        ++report.circuits_cancelled;
        continue;
    }
    report.gates_total += result.gates;
    report.gates_changed += result.report.gates_changed;
    report.model_power_before += result.report.model_power_before;
    report.model_power_after += result.report.model_power_after;
  }

  const celllib::CatalogCacheStats after = library_->catalog_cache_stats();
  report.cache.hits = after.hits - before.hits;
  report.cache.misses = after.misses - before.misses;
  report.cache.evictions = after.evictions - before.evictions;
  report.jobs = pool.thread_count();
  report.elapsed_ms = ms_between(batch_t0, std::chrono::steady_clock::now());
  return report;
}

std::uint64_t circuit_seed(std::uint64_t master_seed,
                           const std::string& name) {
  // FNV-1a over the master seed's bytes, then the name — stable across
  // platforms and releases (same rationale as benchgen's suite seeds).
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (int shift = 0; shift < 64; shift += 8) {
    h ^= (master_seed >> shift) & 0xffULL;
    h *= 0x100000001b3ULL;
  }
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

BatchCircuit make_scenario_circuit(netlist::Netlist netlist, char scenario,
                                   std::uint64_t master_seed) {
  require(scenario == 'A' || scenario == 'B',
          "make_scenario_circuit: scenario must be 'A' or 'B'");
  BatchCircuit circuit{netlist.name(), std::move(netlist), {}, {}};
  circuit.pi_stats =
      scenario == 'A'
          ? scenario_a(circuit.netlist,
                       circuit_seed(master_seed, circuit.name))
          : scenario_b(circuit.netlist);
  return circuit;
}

BatchCircuit make_scenario_circuit_guarded(
    const std::string& name, char scenario, std::uint64_t master_seed,
    const celllib::CellLibrary& library,
    const std::function<netlist::Netlist()>& loader) {
  try {
    // A successful load keeps the netlist's own name, exactly like
    // make_scenario_circuit; `name` labels only the failure placeholder.
    return with_error_site("load", [&] {
      return make_scenario_circuit(loader(), scenario, master_seed);
    });
  } catch (...) {
    BatchCircuit placeholder{name, netlist::Netlist(library, name), {}, {}};
    placeholder.load_error = describe_current_exception();
    return placeholder;
  }
}

}  // namespace tr::opt
