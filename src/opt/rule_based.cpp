#include "opt/rule_based.hpp"

#include <algorithm>

#include "power/circuit_power.hpp"
#include "util/error.hpp"

namespace tr::opt {

using boolfn::SignalStats;
using gategraph::SpNode;
using netlist::GateId;
using netlist::NetId;
using netlist::Netlist;

namespace {

/// Hottest input density within the subtree.
double temperature(const SpNode& node, const std::vector<double>& density) {
  if (node.is_leaf()) {
    return density[static_cast<std::size_t>(node.input)];
  }
  double t = 0.0;
  for (const SpNode& child : node.children) {
    t = std::max(t, temperature(child, density));
  }
  return t;
}

/// Recursively sorts series children by descending temperature (stable,
/// so ties keep the incoming order). Parallel children are left alone —
/// their order is electrically meaningless.
SpNode apply_rule(const SpNode& node, const std::vector<double>& density) {
  if (node.is_leaf()) return node;
  SpNode out;
  out.kind = node.kind;
  out.children.reserve(node.children.size());
  for (const SpNode& child : node.children) {
    out.children.push_back(apply_rule(child, density));
  }
  if (node.kind == SpNode::Kind::series) {
    std::stable_sort(out.children.begin(), out.children.end(),
                     [&](const SpNode& a, const SpNode& b) {
                       return temperature(a, density) >
                              temperature(b, density);
                     });
  }
  return out;
}

}  // namespace

RuleBasedReport optimize_rule_based(
    Netlist& netlist, const std::map<NetId, SignalStats>& pi_stats) {
  netlist.validate();
  const power::CircuitActivity activity =
      power::propagate_activity(netlist, pi_stats);

  RuleBasedReport report;
  for (GateId g = 0; g < netlist.gate_count(); ++g) {
    const netlist::GateInst& inst = netlist.gate(g);
    std::vector<double> density;
    density.reserve(inst.inputs.size());
    for (NetId in : inst.inputs) {
      density.push_back(
          activity.net_stats[static_cast<std::size_t>(in)].density);
    }
    gategraph::GateTopology candidate(apply_rule(inst.config.nmos(), density),
                                      apply_rule(inst.config.pmos(), density),
                                      inst.config.input_count());
    if (candidate.canonical_key() != inst.config.canonical_key()) {
      netlist.set_config(g, std::move(candidate));
      ++report.gates_changed;
    }
  }
  return report;
}

}  // namespace tr::opt
