#include "opt/checkpoint.hpp"

#include <filesystem>
#include <map>
#include <sstream>

#include "gategraph/sp_parse.hpp"
#include "util/journal.hpp"
#include "util/json.hpp"

namespace tr::opt::checkpoint {

namespace fs = std::filesystem;

namespace {

/// Journal payload schema version (independent of the report schema:
/// entries are internal to one tr_opt version's checkpoint directory).
constexpr std::int64_t kEntryVersion = 1;

constexpr const char* kManifestName = "manifest.jnl";

std::string sanitize(const std::string& name) {
  std::string out;
  for (const char c : name) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                      c == '.';
    out += safe ? c : '_';
  }
  return out.empty() ? "circuit" : out;
}

const char* objective_name(Objective objective) {
  return objective == Objective::minimize_power ? "minimize_power"
                                                : "maximize_power";
}

const char* model_name(power::ModelKind model) {
  return model == power::ModelKind::extended ? "extended" : "output_only";
}

Engine engine_from_name(const std::string& name) {
  if (name == "catalog") return Engine::catalog;
  if (name == "reference") return Engine::reference;
  if (name == "anneal") return Engine::anneal;
  throw Error("checkpoint: unknown engine '" + name + "'", ErrorCode::parse);
}

/// Required-field lookup with a checkpoint-flavoured error.
const util::JsonValue& field(const util::JsonValue& doc, const char* key) {
  const util::JsonValue* value = doc.find(key);
  if (value == nullptr) {
    throw Error("checkpoint: entry is missing field '" + std::string(key) +
                    "'",
                ErrorCode::parse);
  }
  return *value;
}

}  // namespace

std::string entry_name(std::size_t index, const std::string& circuit_name) {
  std::string number = std::to_string(index);
  if (number.size() < 4) number.insert(0, 4 - number.size(), '0');
  return "circuit-" + number + "-" + sanitize(circuit_name) + ".jnl";
}

std::string render_manifest(const std::vector<std::string>& circuit_specs,
                            char scenario, std::uint64_t seed,
                            const BatchOptions& options) {
  std::ostringstream out;
  util::JsonWriter w(out);
  w.begin_object();
  w.key("journal_version");
  w.value(kEntryVersion);
  w.key("generator");
  w.value("tr_opt_checkpoint");
  w.key("circuits");
  w.begin_array();
  for (const std::string& spec : circuit_specs) w.value(spec);
  w.end_array();
  w.key("scenario");
  w.value(std::string(1, scenario));
  w.key("seed");
  w.value(seed);
  w.key("objective");
  w.value(objective_name(options.opt.objective));
  w.key("model");
  w.value(model_name(options.opt.model));
  w.key("engine");
  w.value(engine_name(options.opt.engine));
  w.key("anneal_seed");
  w.value(options.opt.anneal.seed);
  w.key("anneal_iters");
  w.value(options.opt.anneal.iterations_per_gate);
  w.key("delay_budget");
  if (options.opt.max_circuit_delay_increase) {
    w.value(*options.opt.max_circuit_delay_increase);
  } else {
    w.null_value();
  }
  w.key("restrict_instance");
  w.value(options.opt.restrict_to_instance);
  // threads_per_circuit never changes result numbers, but it IS
  // rendered (the per-circuit "threads" field), so it shapes bytes.
  // jobs does not — resuming under a different --jobs is the point.
  w.key("threads_per_circuit");
  w.value(options.threads_per_circuit);
  w.end_object();
  return out.str();
}

std::string render_entry(std::size_t index, const BatchCircuit& circuit,
                         const BatchCircuitResult& result) {
  TR_ASSERT(result.status == CircuitStatus::ok);
  std::ostringstream out;
  util::JsonWriter w(out);
  w.begin_object();
  w.key("journal_version");
  w.value(kEntryVersion);
  w.key("index");
  w.value(static_cast<std::int64_t>(index));
  w.key("name");
  w.value(result.name);
  w.key("gates");
  w.value(result.gates);
  w.key("primary_inputs");
  w.value(result.primary_inputs);
  w.key("primary_outputs");
  w.value(result.primary_outputs);
  w.key("engine");
  w.value(engine_name(result.report.engine_used));
  w.key("threads");
  w.value(result.report.threads_used);
  w.key("model_power_before_w");
  w.value(result.report.model_power_before);
  w.key("model_power_after_w");
  w.value(result.report.model_power_after);
  w.key("critical_path_before_s");
  w.value(result.critical_path_before);
  w.key("critical_path_after_s");
  w.value(result.critical_path_after);
  w.key("gates_changed");
  w.value(result.report.gates_changed);
  w.key("configs_rejected_by_delay");
  w.value(result.report.configs_rejected_by_delay);
  w.key("configs_rejected_by_instance");
  w.value(result.report.configs_rejected_by_instance);
  if (result.report.anneal) {
    const AnnealStats& anneal = *result.report.anneal;
    w.key("anneal");
    w.begin_object();
    w.key("iterations");
    w.value(anneal.iterations);
    w.key("accepted");
    w.value(anneal.accepted);
    w.key("uphill_accepted");
    w.value(anneal.uphill_accepted);
    w.key("rejected_delay");
    w.value(anneal.rejected_delay);
    w.key("greedy_power_w");
    w.value(anneal.greedy_power);
    w.key("final_power_w");
    w.value(anneal.final_power);
    w.end_object();
  }
  // Only *changed* decisions are journaled: they are exactly what the
  // report renders and what the netlist needs re-applied; unchanged
  // gates are already in their loaded configuration.
  w.key("decisions");
  w.begin_array();
  for (const GateDecision& decision : result.report.decisions) {
    if (!decision.changed) continue;
    const netlist::GateInst& inst = circuit.netlist.gate(decision.gate);
    w.begin_object();
    // Keyed by output net name — the identity BLIF round-trips preserve
    // (same convention as the configuration sidecar, config_io.hpp).
    w.key("output");
    w.value(circuit.netlist.net(inst.output).name);
    w.key("cell");
    w.value(inst.cell);
    w.key("config");
    w.value(inst.config.canonical_key());
    w.key("power_before_w");
    w.value(decision.original_power);
    w.key("power_after_w");
    w.value(decision.chosen_power);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return out.str();
}

CheckpointJournal::CheckpointJournal(std::string dir, bool resume,
                                     std::string manifest)
    : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw Error("checkpoint: cannot create directory '" + dir_ +
                    "': " + ec.message(),
                ErrorCode::resource);
  }

  const std::string manifest_path = dir_ + "/" + kManifestName;
  const util::journal::ReadResult existing =
      util::journal::read_entry(manifest_path);

  if (resume) {
    if (existing.status == util::journal::EntryStatus::missing) {
      throw Error("checkpoint: --resume but '" + dir_ +
                      "' holds no readable manifest (" + kManifestName +
                      " missing) — was the directory ever checkpointed?",
                  ErrorCode::invalid_argument);
    }
    if (existing.status != util::journal::EntryStatus::ok) {
      throw Error(
          "checkpoint: manifest '" + manifest_path + "' is damaged (" +
              util::journal::entry_status_name(existing.status) +
              "); refusing to resume from an unidentifiable journal — "
              "remove the directory to start fresh",
          ErrorCode::parse);
    }
    if (existing.payload != manifest) {
      throw Error(
          "checkpoint: manifest mismatch — the journal in '" + dir_ +
              "' was written under different options/circuits/seed than "
              "this run; resuming would mix incompatible results "
              "(remove the directory to start fresh)",
          ErrorCode::invalid_argument);
    }
    return;  // manifest verified; entries are loaded by load()
  }

  if (existing.status != util::journal::EntryStatus::missing) {
    throw Error("checkpoint: '" + dir_ +
                    "' already holds a journal; pass --resume to continue "
                    "it or remove the directory to start fresh",
                ErrorCode::invalid_argument);
  }
  util::journal::write_entry(dir_, kManifestName, manifest);
}

int CheckpointJournal::load(std::vector<BatchCircuit>& batch) {
  int resumed = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    BatchCircuit& circuit = batch[i];
    if (circuit.load_error) continue;  // nothing to apply results onto
    const std::string name = entry_name(i, circuit.name);
    const std::string path = dir_ + "/" + name;
    const util::journal::ReadResult entry = util::journal::read_entry(path);
    if (entry.status == util::journal::EntryStatus::missing) continue;
    if (entry.status != util::journal::EntryStatus::ok) {
      // The crash window (torn temp file never renamed, truncated
      // write) or plain disk damage: detected, reported, re-run.
      const std::lock_guard<std::mutex> lock(mutex_);
      warnings_.push_back(
          {name, ErrorCode::parse,
           std::string("journal entry is damaged (") +
               util::journal::entry_status_name(entry.status) +
               "); re-optimizing '" + circuit.name + "'"});
      continue;
    }

    try {
      const util::JsonValue doc = util::json_parse(entry.payload);
      if (field(doc, "journal_version").as_i64("journal_version") !=
          kEntryVersion) {
        throw Error("checkpoint: entry version is not " +
                        std::to_string(kEntryVersion),
                    ErrorCode::parse);
      }
      if (field(doc, "index").as_i64("index") !=
              static_cast<std::int64_t>(i) ||
          field(doc, "name").as_string("name") != circuit.name) {
        throw Error("checkpoint: entry does not describe batch index " +
                        std::to_string(i) + " ('" + circuit.name + "')",
                    ErrorCode::invalid_argument);
      }

      BatchCircuitResult result;
      result.name = circuit.name;
      result.status = CircuitStatus::ok;
      result.gates = static_cast<int>(field(doc, "gates").as_i64("gates"));
      if (result.gates != circuit.netlist.gate_count()) {
        throw Error(
            "checkpoint: entry was journaled for a netlist with " +
                std::to_string(result.gates) + " gates, reloaded netlist "
                "has " + std::to_string(circuit.netlist.gate_count()),
            ErrorCode::invalid_argument);
      }
      result.primary_inputs = static_cast<int>(
          field(doc, "primary_inputs").as_i64("primary_inputs"));
      result.primary_outputs = static_cast<int>(
          field(doc, "primary_outputs").as_i64("primary_outputs"));
      result.report.engine_used =
          engine_from_name(field(doc, "engine").as_string("engine"));
      result.report.threads_used =
          static_cast<int>(field(doc, "threads").as_i64("threads"));
      result.report.model_power_before =
          field(doc, "model_power_before_w").as_double("model_power_before_w");
      result.report.model_power_after =
          field(doc, "model_power_after_w").as_double("model_power_after_w");
      result.critical_path_before =
          field(doc, "critical_path_before_s")
              .as_double("critical_path_before_s");
      result.critical_path_after =
          field(doc, "critical_path_after_s")
              .as_double("critical_path_after_s");
      result.report.gates_changed = static_cast<int>(
          field(doc, "gates_changed").as_i64("gates_changed"));
      result.report.configs_rejected_by_delay =
          static_cast<int>(field(doc, "configs_rejected_by_delay")
                               .as_i64("configs_rejected_by_delay"));
      result.report.configs_rejected_by_instance =
          static_cast<int>(field(doc, "configs_rejected_by_instance")
                               .as_i64("configs_rejected_by_instance"));
      if (const util::JsonValue* anneal = doc.find("anneal")) {
        AnnealStats stats;
        stats.iterations = field(*anneal, "iterations").as_u64("iterations");
        stats.accepted = field(*anneal, "accepted").as_u64("accepted");
        stats.uphill_accepted =
            field(*anneal, "uphill_accepted").as_u64("uphill_accepted");
        stats.rejected_delay =
            field(*anneal, "rejected_delay").as_u64("rejected_delay");
        stats.greedy_power =
            field(*anneal, "greedy_power_w").as_double("greedy_power_w");
        stats.final_power =
            field(*anneal, "final_power_w").as_double("final_power_w");
        result.report.anneal = stats;
      }

      // Re-apply the committed configurations. The reloaded netlist is
      // deterministic, so output-net lookup pins each decision to the
      // same gate the original run rewrote; set_config re-validates
      // that the key computes the gate's function.
      const util::JsonValue& decisions = field(doc, "decisions");
      if (decisions.kind != util::JsonValue::Kind::array) {
        throw Error("checkpoint: decisions must be an array",
                    ErrorCode::parse);
      }
      std::map<std::string, netlist::GateId> by_output;
      for (netlist::GateId g = 0; g < circuit.netlist.gate_count(); ++g) {
        by_output.emplace(
            circuit.netlist.net(circuit.netlist.gate(g).output).name, g);
      }
      for (const util::JsonValue& entry_doc : decisions.array) {
        const std::string& output =
            field(entry_doc, "output").as_string("output");
        const auto it = by_output.find(output);
        if (it == by_output.end()) {
          throw Error("checkpoint: no gate drives a net named '" + output +
                          "'",
                      ErrorCode::invalid_argument);
        }
        const netlist::GateInst& inst = circuit.netlist.gate(it->second);
        if (inst.cell != field(entry_doc, "cell").as_string("cell")) {
          throw Error("checkpoint: gate driving '" + output +
                          "' is not a '" +
                          field(entry_doc, "cell").as_string("cell") + "'",
                      ErrorCode::invalid_argument);
        }
        circuit.netlist.set_config(
            it->second,
            gategraph::topology_from_key(
                field(entry_doc, "config").as_string("config"),
                static_cast<int>(inst.inputs.size())));
        GateDecision decision;
        decision.gate = it->second;
        decision.changed = true;
        decision.original_power =
            field(entry_doc, "power_before_w").as_double("power_before_w");
        decision.chosen_power =
            field(entry_doc, "power_after_w").as_double("power_after_w");
        result.report.decisions.push_back(decision);
      }

      circuit.resumed = std::move(result);
      ++resumed;
    } catch (...) {
      // Stale or semantically inconsistent entry (or a bug in an old
      // writer): report it and fall back to re-running the circuit.
      // Any half-applied configurations are overwritten by the rerun's
      // optimizer, which explores from the current state's catalog.
      const CircuitError why = describe_current_exception();
      const std::lock_guard<std::mutex> lock(mutex_);
      warnings_.push_back({name, why.code,
                           why.message + "; re-optimizing '" +
                               circuit.name + "'"});
      circuit.resumed.reset();
    }
  }
  return resumed;
}

void CheckpointJournal::record(std::size_t index, const BatchCircuit& circuit,
                               const BatchCircuitResult& result) {
  if (result.status != CircuitStatus::ok) return;
  const std::string name = entry_name(index, result.name);
  try {
    util::journal::write_entry(dir_, name,
                               render_entry(index, circuit, result));
  } catch (...) {
    // Durability lost for this circuit, but its in-memory result is
    // intact: surface a warning instead of failing the batch.
    const CircuitError why = describe_current_exception();
    const std::lock_guard<std::mutex> lock(mutex_);
    warnings_.push_back({name, why.code, why.message});
  }
}

std::vector<JournalWarning> CheckpointJournal::warnings() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return warnings_;
}

}  // namespace tr::opt::checkpoint
