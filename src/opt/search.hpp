#pragma once
// Delay-constrained global search (DESIGN.md Sec. 14).
//
// The greedy engines commit one configuration per gate in a single
// topological pass. Under a delay budget that is doubly conservative:
// every *net* is pinned to its original arrival ceiling (a gate may not
// borrow slack a downstream path never uses), and decisions are never
// revisited. This layer replaces the one-pass commit with a global
// search over joint gate configurations, following the Verle/LIRMM
// low-power-under-delay protocol (PAPERS.md): optimize non-critical
// paths aggressively while the primary-output ceilings protect the
// critical ones.
//
// Two pieces:
//
//  * IncrementalScorer — the rescoring core. One-time setup precomputes,
//    per gate, the model power and the per-pin Elmore delays of *every*
//    catalog configuration (power through the word-parallel catalog
//    scorer, delays through the same delay::gate_delays path the
//    reference engine runs, memoised per (catalog, external load)).
//    After that a configuration move costs only a table lookup plus an
//    arrival propagation over the move's fanout cone: gates are
//    re-evaluated in topological-rank order, each at most once, and
//    propagation stops where arrivals are unchanged. Every mutation
//    returns an Undo record, so trial moves revert exactly. The
//    differential oracle contract — cone-rescored arrivals are
//    field-identical to a from-scratch topological recompute (and to
//    delay::circuit_delay on the materialised netlist) — is pinned by
//    tests/test_search.cpp.
//
//  * anneal_optimize — iterated local search / simulated annealing over
//    the scorer. Seeded from greedy_seed (a table-driven replica of the
//    engines' greedy pass, bit-identical to them by the parity suite),
//    it draws single-gate configuration moves from a seeded stream,
//    keeps per-output arrival ceilings hard (a move that leaves any
//    primary output beyond (1 + budget) x its original arrival is
//    rejected), prunes obviously infeasible moves early against
//    periodically refreshed required times (per-path slack budgets),
//    and tracks the best feasible state. Because the search starts at
//    the greedy solution and the final commit never picks a worse true
//    objective than the seed, annealing meets or beats greedy at the
//    same delay budget on every circuit, deterministically per seed.

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "boolfn/signal.hpp"
#include "celllib/catalog.hpp"
#include "celllib/tech.hpp"
#include "netlist/netlist.hpp"
#include "opt/optimizer.hpp"
#include "util/cancel.hpp"

namespace tr::opt::search {

/// Precomputed scoring tables of one gate: the model power and the
/// per-pin Elmore delays of every configuration, in catalog (=
/// enumeration) order; index 0 is the incoming configuration.
struct GateTable {
  std::shared_ptr<const celllib::ReorderCatalog> catalog;
  std::vector<double> power;  ///< model power per configuration [W]
  /// pin_delay[config][pin]: worst Elmore pin-to-output delay [s],
  /// identical to delay::gate_delays on that configuration's graph.
  std::shared_ptr<const std::vector<std::vector<double>>> pin_delay;

  int config_count() const noexcept { return static_cast<int>(power.size()); }
  /// Same-layout-instance flag of a configuration (for
  /// OptimizeOptions::restrict_to_instance).
  bool same_instance(int config) const {
    return catalog->configs()[static_cast<std::size_t>(config)]
        .same_instance_as_first;
  }
};

/// Incremental power + Elmore-arrival state over joint gate
/// configurations. Construction leaves every gate at configuration 0
/// (the incoming netlist) with arrivals equal to delay::circuit_delay
/// of the incoming mapping, field-exactly.
class IncrementalScorer {
public:
  /// Builds the per-gate tables (the expensive one-time pass; polls
  /// `cancel` per gate). `pi_stats` must cover all primary inputs.
  IncrementalScorer(const netlist::Netlist& netlist,
                    const std::map<netlist::NetId, boolfn::SignalStats>&
                        pi_stats,
                    const celllib::Tech& tech, power::ModelKind model,
                    const util::CancellationToken& cancel = {});

  const netlist::Netlist& netlist() const noexcept { return *netlist_; }
  int gate_count() const noexcept { return static_cast<int>(tables_.size()); }
  const GateTable& table(netlist::GateId g) const {
    return tables_[static_cast<std::size_t>(g)];
  }
  const std::vector<netlist::GateId>& topo_order() const noexcept {
    return topo_order_;
  }

  int config_of(netlist::GateId g) const {
    return config_[static_cast<std::size_t>(g)];
  }
  const std::vector<int>& configs() const noexcept { return config_; }

  double arrival(netlist::NetId n) const {
    return arrival_[static_cast<std::size_t>(n)];
  }
  const std::vector<double>& arrivals() const noexcept { return arrival_; }

  /// Running objective value: the sum of every gate's current
  /// configuration power, maintained by exact-difference updates. Use
  /// total_power_in_topo_order() for reported totals (the engines'
  /// accumulation convention).
  double total_power() const noexcept { return total_power_; }
  /// Sum of the current per-gate powers accumulated in topological
  /// order — bit-identical to the greedy engines' running sums.
  double total_power_in_topo_order() const;

  /// Fixes per-primary-output arrival ceilings at
  /// (1 + fraction) x the *current* arrival — call while the scorer
  /// still holds the incoming configurations. Violation counting is
  /// maintained incrementally from here on.
  void set_delay_budget(double fraction);
  bool has_delay_budget() const noexcept { return has_ceilings_; }
  /// Number of primary outputs currently beyond their ceiling.
  int po_violations() const noexcept { return po_violations_; }
  bool feasible() const noexcept { return po_violations_ == 0; }

  /// One committed configuration move and everything needed to take it
  /// back. `arrivals` holds (net, previous arrival) pairs in the order
  /// the cone propagation rewrote them.
  struct Undo {
    netlist::GateId gate = -1;
    int old_config = 0;
    double old_total_power = 0.0;
    int old_po_violations = 0;
    std::vector<std::pair<netlist::NetId, double>> arrivals;
  };

  /// Moves gate `g` to configuration `config` and re-evaluates arrivals
  /// over the move's fanout cone only (topological-rank worklist, each
  /// gate at most once, propagation stops where arrivals are
  /// unchanged). Field-exact against a full recompute by contract.
  Undo apply(netlist::GateId g, int config);

  /// Exact rollback of apply().
  void revert(const Undo& undo);

  /// Replaces all configurations at once and recomputes arrivals,
  /// violations and the running total from scratch (the total in
  /// topological order, resynchronising any accumulated
  /// exact-difference drift).
  void set_configs(const std::vector<int>& configs);

  /// The differential oracle: a from-scratch topological recompute of
  /// all arrivals under the current configurations. The incremental
  /// `arrivals()` must equal this field-exactly after any apply/revert
  /// sequence.
  std::vector<double> full_arrivals() const;

  /// Latest admissible arrival per net under the current
  /// configurations and the PO ceilings (backward pass; +infinity where
  /// unconstrained). A net beyond its required time proves some primary
  /// output beyond its ceiling. Requires set_delay_budget().
  std::vector<double> required_times() const;

private:
  void recompute_state();  ///< arrivals + violations + topo-order total

  const netlist::Netlist* netlist_;
  std::vector<GateTable> tables_;
  std::vector<netlist::GateId> topo_order_;
  std::vector<int> topo_rank_;             ///< by GateId
  std::vector<int> config_;                ///< by GateId
  std::vector<double> arrival_;            ///< by NetId
  std::vector<double> po_ceiling_;         ///< by NetId; +inf off-PO
  bool has_ceilings_ = false;
  int po_violations_ = 0;
  double total_power_ = 0.0;
  /// Scratch for apply(): min-rank worklist + queued flags.
  std::vector<std::pair<int, netlist::GateId>> heap_;
  std::vector<char> queued_;
};

/// Table-driven replica of the greedy engines' one-pass commit:
/// topological traversal, per-net arrival budgets of
/// (1 + budget) x original, enumeration-order tie-breaking — produced
/// purely from the scorer's tables, bit-identical in its decisions to
/// optimize() with Engine::reference (budgeted) or Engine::catalog
/// (unconstrained), as pinned by tests/test_search.cpp. The scorer must
/// still hold the incoming configurations (all zero).
struct GreedySeed {
  std::vector<int> configs;  ///< chosen configuration per gate, GateId order
  int rejected_delay = 0;
  int rejected_instance = 0;
};
GreedySeed greedy_seed(const IncrementalScorer& scorer,
                       const OptimizeOptions& options);

/// The annealing engine behind optimize(Engine::anneal): greedy seed,
/// seeded simulated annealing over single-gate configuration moves with
/// hard per-output ceilings, best-feasible tracking, and a final commit
/// that never reports a worse true objective than the seed. Cancellation
/// is all-or-nothing: a cancelled run throws before the netlist is
/// touched. Deterministic per (netlist, pi_stats, tech, options).
OptimizeReport anneal_optimize(
    netlist::Netlist& netlist,
    const std::map<netlist::NetId, boolfn::SignalStats>& pi_stats,
    const celllib::Tech& tech, const OptimizeOptions& options);

}  // namespace tr::opt::search
