#include "opt/batch_report.hpp"

#include <ostream>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"

namespace tr::opt {

namespace {

using util::JsonWriter;

const char* objective_name(Objective objective) {
  return objective == Objective::minimize_power ? "minimize_power"
                                                : "maximize_power";
}

const char* model_name(power::ModelKind model) {
  return model == power::ModelKind::extended ? "extended" : "output_only";
}

void write_error_object(JsonWriter& w, const CircuitError& error) {
  w.begin_object();
  w.key("code");
  w.value(error_code_name(error.code));
  // Schema v4: the machine-readable retry classification rides next to
  // the code, so clients need not hard-code the taxonomy.
  w.key("retryable");
  w.value(is_retryable(error.code));
  w.key("site");
  w.value(error.site);
  w.key("message");
  w.value(error.message);
  w.end_object();
}

void write_circuit_object(JsonWriter& w, const BatchCircuit& circuit,
                          const BatchCircuitResult& result,
                          const BatchJsonOptions& json) {
  w.begin_object();
  w.key("name");
  w.value(result.name);
  w.key("status");
  w.value(circuit_status_name(result.status));
  if (result.status != CircuitStatus::ok) {
    // The all-or-nothing contract in the schema itself: a failed or
    // cancelled circuit gets its error record and nothing numeric.
    w.key("error");
    write_error_object(w, result.error ? *result.error : CircuitError{});
    if (json.include_timing) {
      w.key("elapsed_ms");
      w.value(result.elapsed_ms);
    }
    w.end_object();
    return;
  }
  w.key("gates");
  w.value(result.gates);
  w.key("primary_inputs");
  w.value(result.primary_inputs);
  w.key("primary_outputs");
  w.value(result.primary_outputs);
  // The engine that actually optimized this circuit, straight from the
  // report (never re-inferred from the options: a delay-budgeted catalog
  // request is downgraded to reference, and the annealing engine must
  // not be mislabelled), plus the worker threads the scoring phase
  // really used — budgeted runs are sequential whatever was requested.
  w.key("engine");
  w.value(engine_name(result.report.engine_used));
  w.key("threads");
  w.value(result.report.threads_used);
  w.key("model_power_before_w");
  w.value(result.report.model_power_before);
  w.key("model_power_after_w");
  w.value(result.report.model_power_after);
  w.key("power_reduction_pct");
  w.value(percent_reduction(result.report.model_power_before,
                            result.report.model_power_after));
  w.key("critical_path_before_s");
  w.value(result.critical_path_before);
  w.key("critical_path_after_s");
  w.value(result.critical_path_after);
  w.key("gates_changed");
  w.value(result.report.gates_changed);
  w.key("configs_rejected_by_delay");
  w.value(result.report.configs_rejected_by_delay);
  w.key("configs_rejected_by_instance");
  w.value(result.report.configs_rejected_by_instance);
  if (result.report.anneal) {
    const AnnealStats& anneal = *result.report.anneal;
    w.key("anneal");
    w.begin_object();
    w.key("iterations");
    w.value(static_cast<std::int64_t>(anneal.iterations));
    w.key("accepted");
    w.value(static_cast<std::int64_t>(anneal.accepted));
    w.key("uphill_accepted");
    w.value(static_cast<std::int64_t>(anneal.uphill_accepted));
    w.key("rejected_delay");
    w.value(static_cast<std::int64_t>(anneal.rejected_delay));
    w.key("greedy_power_w");
    w.value(anneal.greedy_power);
    w.key("final_power_w");
    w.value(anneal.final_power);
    w.end_object();
  }
  if (json.include_gate_configs) {
    // Committed configurations of every *changed* gate, GateId order —
    // enough to re-apply the result to a canonically-configured netlist
    // (the same contract as the configuration sidecar, config_io.hpp).
    w.key("gate_configs");
    w.begin_array();
    for (const GateDecision& decision : result.report.decisions) {
      if (!decision.changed) continue;
      const netlist::GateInst& inst = circuit.netlist.gate(decision.gate);
      w.begin_object();
      w.key("gate");
      w.value(inst.name);
      w.key("cell");
      w.value(inst.cell);
      w.key("output");
      w.value(circuit.netlist.net(inst.output).name);
      w.key("config");
      w.value(inst.config.canonical_key());
      w.key("power_before_w");
      w.value(decision.original_power);
      w.key("power_after_w");
      w.value(decision.chosen_power);
      w.end_object();
    }
    w.end_array();
  }
  if (json.include_timing) {
    w.key("elapsed_ms");
    w.value(result.elapsed_ms);
  }
  w.end_object();
}

void write_cache_object(JsonWriter& w, const celllib::CatalogCacheStats& c) {
  w.begin_object();
  w.key("hits");
  w.value(c.hits);
  w.key("misses");
  w.value(c.misses);
  w.key("lookups");
  w.value(c.lookups());
  w.key("hit_rate");
  w.value(c.hit_rate());
  w.end_object();
}

}  // namespace

void write_batch_json(const std::vector<BatchCircuit>& batch,
                      const BatchReport& report, const BatchOptions& options,
                      std::ostream& out, const BatchJsonOptions& json) {
  require(batch.size() == report.circuits.size(),
          "write_batch_json: batch and report sizes differ");
  JsonWriter w(out);
  w.begin_object();
  // Schema v3: the top-level engine key became "engine_requested" (the
  // option), and every ok circuit carries "engine" + "threads" (what
  // actually ran, from the report). Schema v4: error objects carry
  // "retryable" (the ErrorCode retry classification, DESIGN.md
  // Sec. 15.3).
  w.key("schema_version");
  w.value(4);
  w.key("generator");
  w.value("tr_opt");
  w.key("objective");
  w.value(objective_name(options.opt.objective));
  w.key("model");
  w.value(model_name(options.opt.model));
  w.key("engine_requested");
  w.value(engine_name(options.opt.engine));
  w.key("delay_budget");
  if (options.opt.max_circuit_delay_increase) {
    w.value(*options.opt.max_circuit_delay_increase);
  } else {
    w.null_value();
  }
  w.key("restrict_to_instance");
  w.value(options.opt.restrict_to_instance);

  w.key("circuits");
  w.begin_array();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    write_circuit_object(w, batch[i], report.circuits[i], json);
  }
  w.end_array();

  // Non-ok circuits repeated as a flat index, so "did anything fail"
  // needs no scan of the circuits array.
  w.key("errors");
  w.begin_array();
  for (const BatchCircuitResult& result : report.circuits) {
    if (result.status == CircuitStatus::ok) continue;
    w.begin_object();
    w.key("name");
    w.value(result.name);
    w.key("status");
    w.value(circuit_status_name(result.status));
    w.key("error");
    write_error_object(w, result.error ? *result.error : CircuitError{});
    w.end_object();
  }
  w.end_array();

  w.key("totals");
  w.begin_object();
  w.key("circuits");
  w.value(static_cast<std::int64_t>(report.circuits.size()));
  w.key("circuits_ok");
  w.value(report.circuits_ok);
  w.key("circuits_error");
  w.value(report.circuits_failed);
  w.key("circuits_cancelled");
  w.value(report.circuits_cancelled);
  w.key("gates");
  w.value(report.gates_total);
  w.key("gates_changed");
  w.value(report.gates_changed);
  w.key("model_power_before_w");
  w.value(report.model_power_before);
  w.key("model_power_after_w");
  w.value(report.model_power_after);
  w.key("power_reduction_pct");
  w.value(percent_reduction(report.model_power_before,
                            report.model_power_after));
  w.end_object();

  if (json.include_cache_stats) {
    w.key("catalog_cache");
    write_cache_object(w, report.cache);
  }

  if (json.include_timing) {
    w.key("timing");
    w.begin_object();
    w.key("jobs");
    w.value(report.jobs);
    w.key("elapsed_ms");
    w.value(report.elapsed_ms);
    w.end_object();
  }
  w.end_object();
}

void write_circuit_json(const BatchCircuit& circuit,
                        const BatchCircuitResult& result, std::ostream& out,
                        const BatchJsonOptions& json) {
  JsonWriter w(out);
  write_circuit_object(w, circuit, result, json);
}

}  // namespace tr::opt
