#pragma once
// Batch optimization driver (DESIGN.md Sec. 9).
//
// The paper's flow is batch-shaped: it reorders an entire benchmark
// suite per scenario. BatchOptimizer is the production entry point for
// that shape — it takes N mapped circuits that all reference one shared
// CellLibrary and optimizes them with two-level parallelism:
//
//   * circuit level: circuits fan out over a util::ThreadPool, each
//     worker owning one circuit end to end (timing, optimize, result);
//   * gate level: inside each circuit, opt::optimize() scores gates
//     concurrently with `threads_per_circuit` workers (default 1, so a
//     wide batch does not oversubscribe the machine; a batch of one can
//     instead spend every core inside the single optimize call).
//
// The shared library is the cache-sharing contract: its catalog cache is
// concurrency-safe and characterises each distinct structural form
// exactly once per batch, no matter how many circuits instantiate it or
// which worker asks first. The report carries the hit/miss delta of the
// run so callers can assert cache effectiveness.
//
// Determinism: every field of the report except the wall-clock
// measurements (elapsed_ms) is bit-identical for any `jobs` and
// `threads_per_circuit` values — circuits are independent, workers write
// disjoint slots, results are assembled in input order, and optimize()
// itself is deterministic by contract.
//
// Fault isolation (DESIGN.md Sec. 12.2): with keep_going (the default) a
// circuit that throws — malformed input, injected fault, bad_alloc,
// cancellation — becomes a structured per-circuit error record while
// every other circuit completes byte-identical to a run that never
// contained it. A failed or cancelled circuit is all-or-nothing: its
// netlist is restored from a pre-optimize snapshot and its result
// carries no partial numbers.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "boolfn/signal.hpp"
#include "celllib/library.hpp"
#include "celllib/tech.hpp"
#include "netlist/netlist.hpp"
#include "opt/optimizer.hpp"
#include "util/cancel.hpp"

namespace tr::opt {

/// Per-circuit outcome classification (JSON `status`, DESIGN.md
/// Sec. 12.2). `cancelled` is split from `error` because it reflects the
/// caller's budget, not the circuit's input — retrying a cancelled
/// circuit with a longer deadline is sound, retrying a parse error is
/// not.
enum class CircuitStatus : std::uint8_t { ok, error, cancelled };

/// Stable lowercase names, the JSON/report encoding of CircuitStatus.
const char* circuit_status_name(CircuitStatus status) noexcept;

/// Structured description of why a circuit produced no result.
struct CircuitError {
  ErrorCode code = ErrorCode::unknown;
  /// Pipeline location, outermost-first ("optimize/score"); empty when
  /// the exception carried no site annotations.
  std::string site;
  std::string message;
};

/// Builds a CircuitError from the in-flight exception. Must be called
/// inside a catch block; folds foreign exceptions into the taxonomy
/// (bad_alloc -> resource, std::exception -> unknown).
CircuitError describe_current_exception();

/// Per-circuit outcome, in batch input order. For a non-ok circuit only
/// `name`, `status`, `error` and `elapsed_ms` are meaningful — every
/// numeric field stays default-initialised (the all-or-nothing
/// contract: no partial numbers ever escape a failed circuit).
struct BatchCircuitResult {
  std::string name;
  CircuitStatus status = CircuitStatus::ok;
  std::optional<CircuitError> error;  ///< set iff status != ok
  int gates = 0;
  int primary_inputs = 0;
  int primary_outputs = 0;
  OptimizeReport report;
  double critical_path_before = 0.0;  ///< Elmore critical path [s]
  double critical_path_after = 0.0;
  double elapsed_ms = 0.0;  ///< wall clock of this circuit's optimize
};

/// One circuit of a batch job; the netlist is optimized in place. The
/// netlist must reference the batch's shared CellLibrary (enforced by
/// identity in BatchOptimizer::run), otherwise each circuit would
/// characterise into its own cache and the batch would share nothing.
struct BatchCircuit {
  std::string name;
  netlist::Netlist netlist;
  std::map<netlist::NetId, boolfn::SignalStats> pi_stats;
  /// Set when loading/preparing this circuit already failed (see
  /// make_scenario_circuit_guarded): the netlist is an empty placeholder
  /// and BatchOptimizer turns this record into the circuit's result
  /// without touching it, keeping batch input order intact.
  std::optional<CircuitError> load_error;
  /// Set by checkpoint resume (opt/checkpoint, DESIGN.md Sec. 15.2): the
  /// journaled result of a previous run, its committed configurations
  /// already re-applied to `netlist`. BatchOptimizer adopts the record
  /// verbatim instead of optimizing — the byte-identity contract relies
  /// on the journal round-tripping every rendered value exactly.
  std::optional<BatchCircuitResult> resumed;
};

struct BatchOptions {
  /// Circuit-level workers; 0 = one per hardware thread, 1 = serial.
  int jobs = 0;
  /// Gate-level workers inside each optimize() call (the second level).
  /// Overrides OptimizeOptions::threads. Keep at 1 when the batch is
  /// wide; raise it for small batches of large circuits.
  int threads_per_circuit = 1;
  /// Per-circuit optimization settings (objective, model, delay budget,
  /// instance restriction). `opt.threads` is ignored.
  OptimizeOptions opt;
  /// Fault isolation: true (default) contains a throwing circuit as an
  /// error record and completes the rest; false rethrows the first
  /// failure out of run() after aborting the unclaimed circuits.
  bool keep_going = true;
  /// Cooperative cancellation/deadline for the whole batch, forwarded
  /// into every optimize() call. Circuits that observe it report
  /// CircuitStatus::cancelled; already-finished circuits keep their
  /// results.
  util::CancellationToken cancel;
  /// Called once per circuit as it completes (ok, error or cancelled),
  /// with the batch index and the finished result record — the server's
  /// streaming-progress hook (DESIGN.md Sec. 13.2). Invoked from the
  /// circuit's worker thread, so the callback must be thread-safe;
  /// completion *order* is scheduling-dependent and explicitly outside
  /// the determinism contract (the assembled report is not). With
  /// fail-fast, a circuit that rethrows reports no progress.
  std::function<void(std::size_t, const BatchCircuitResult&)> progress;
  /// Durability hook (opt/checkpoint): called after each circuit that
  /// was *freshly* optimized — never for resumed or non-ok circuits —
  /// with the circuit (for config lookups) and its finished result.
  /// Invoked from the worker thread; must be thread-safe. Runs before
  /// `progress`, so a progress frame implies the entry is durable.
  std::function<void(std::size_t, const BatchCircuit&,
                     const BatchCircuitResult&)>
      journal;
};

struct BatchReport {
  std::vector<BatchCircuitResult> circuits;  ///< batch input order
  int circuits_ok = 0;
  int circuits_failed = 0;     ///< status == error
  int circuits_cancelled = 0;  ///< status == cancelled
  /// Aggregates below sum over ok circuits only.
  int gates_total = 0;
  int gates_changed = 0;
  double model_power_before = 0.0;  ///< sum over circuits [W]
  double model_power_after = 0.0;
  /// Catalog-cache delta of this run (requires the batch to be the
  /// library's only concurrent user for the delta to be attributable).
  celllib::CatalogCacheStats cache;
  int jobs = 0;            ///< circuit-level workers actually used
  double elapsed_ms = 0.0; ///< wall clock of the whole batch
};

class BatchOptimizer {
public:
  /// `library` is the shared cache carrier; it must outlive the
  /// optimizer and every batch netlist.
  BatchOptimizer(const celllib::CellLibrary& library,
                 const celllib::Tech& tech, BatchOptions options = {});

  /// Optimizes every circuit of `batch` in place and reports per-circuit
  /// and aggregate results. Throws tr::Error when a netlist references a
  /// different library than the shared one. With keep_going (default), a
  /// throwing circuit becomes an error/cancelled record — its netlist
  /// restored to the incoming configuration — and the other circuits'
  /// results are byte-identical to a batch that never contained it; with
  /// fail-fast the first exception aborts the remaining unclaimed
  /// circuits and is rethrown.
  BatchReport run(std::vector<BatchCircuit>& batch) const;

  const BatchOptions& options() const noexcept { return options_; }

private:
  const celllib::CellLibrary* library_;
  celllib::Tech tech_;
  BatchOptions options_;
};

/// Deterministic per-circuit seed for scenario statistics: an FNV-1a mix
/// of the master seed and the circuit name, so every circuit of a batch
/// draws an independent stream while the whole batch stays reproducible
/// from one --seed value.
std::uint64_t circuit_seed(std::uint64_t master_seed, const std::string& name);

/// Wraps a netlist as a BatchCircuit with scenario statistics attached:
/// scenario 'A' draws per-input statistics from circuit_seed(master_seed,
/// name); scenario 'B' uses the fixed latch statistics (seed unused).
/// The circuit name is the netlist's name.
BatchCircuit make_scenario_circuit(netlist::Netlist netlist, char scenario,
                                   std::uint64_t master_seed);

/// Fault-isolating wrapper for batch assembly: runs `loader` (parse a
/// file, generate a netlist, ...) and wraps the result like
/// make_scenario_circuit (a successful load keeps the netlist's own
/// name). When the loader or the statistics generation throws, returns
/// a placeholder circuit — an empty netlist bound to `library` under
/// `name` — whose load_error carries the structured description, so one
/// unreadable file cannot abort assembling the rest of the batch.
BatchCircuit make_scenario_circuit_guarded(
    const std::string& name, char scenario, std::uint64_t master_seed,
    const celllib::CellLibrary& library,
    const std::function<netlist::Netlist()>& loader);

}  // namespace tr::opt
