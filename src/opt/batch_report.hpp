#pragma once
// Machine-readable rendering of batch results (DESIGN.md Sec. 9.3).
//
// One JSON document per batch. The renderer is shared by the tr_opt CLI
// and the golden-file regression tests, so the schema is the CLI's
// output contract: every field except the wall-clock block is a pure
// function of (circuits, options, seed), byte-identical across runs and
// across --jobs values. Goldens disable the wall-clock block with
// `include_timing = false`.

#include <iosfwd>

#include "opt/batch.hpp"

namespace tr::opt {

struct BatchJsonOptions {
  /// Emit the nondeterministic wall-clock fields (per-circuit and batch
  /// elapsed_ms, worker counts). Off for byte-stable golden output.
  bool include_timing = true;
  /// Emit the per-gate configuration arrays (committed reorderings of
  /// every changed gate). Off shrinks reports for very large batches.
  bool include_gate_configs = true;
  /// Emit the catalog_cache block. The batch CLI keeps it on; server
  /// responses turn it off because hit/miss deltas against a shared warm
  /// cache depend on what other requests ran concurrently — the one
  /// field that would break the byte-identical-to-a-serial-run contract
  /// (DESIGN.md Sec. 13.3). The server reports cumulative cache
  /// counters in its drain-time metrics dump instead.
  bool include_cache_stats = true;
};

/// Writes the whole-batch JSON document. `batch` must be the vector the
/// report was produced from (same order); the post-optimization netlists
/// supply the per-gate committed configurations.
void write_batch_json(const std::vector<BatchCircuit>& batch,
                      const BatchReport& report, const BatchOptions& options,
                      std::ostream& out, const BatchJsonOptions& json = {});

/// Writes one circuit's JSON document (the same object shape as the
/// entries of the whole-batch document's "circuits" array).
void write_circuit_json(const BatchCircuit& circuit,
                        const BatchCircuitResult& result, std::ostream& out,
                        const BatchJsonOptions& json = {});

}  // namespace tr::opt
