#include "opt/optimizer.hpp"

#include "celllib/cell.hpp"
#include "delay/elmore.hpp"
#include "gategraph/gate_graph.hpp"
#include "power/gate_power.hpp"
#include "util/error.hpp"

namespace tr::opt {

using boolfn::SignalStats;
using gategraph::GateGraph;
using gategraph::GateTopology;
using netlist::GateId;
using netlist::NetId;
using netlist::Netlist;

std::vector<std::pair<GateTopology, double>> score_configurations(
    const GateTopology& config, const std::vector<SignalStats>& inputs,
    double external_load, const celllib::Tech& tech, power::ModelKind model) {
  std::vector<std::pair<GateTopology, double>> scored;
  for (GateTopology& candidate : config.all_reorderings()) {
    const GateGraph graph(candidate);
    const std::vector<double> caps =
        celllib::node_capacitances(graph, tech, external_load);
    const power::GatePower gp =
        model == power::ModelKind::extended
            ? power::evaluate_gate_power(graph, caps, inputs, tech)
            : power::evaluate_output_only_power(graph, caps, inputs, tech);
    scored.emplace_back(std::move(candidate), gp.total_power);
  }
  return scored;
}

OptimizeReport optimize(Netlist& netlist,
                        const std::map<NetId, SignalStats>& pi_stats,
                        const celllib::Tech& tech,
                        const OptimizeOptions& options) {
  netlist.validate();

  // OBTAIN_PROBABILITIES: net statistics, filled during the traversal.
  std::vector<SignalStats> net_stats(
      static_cast<std::size_t>(netlist.net_count()), SignalStats{0.5, 0.0});
  for (NetId id : netlist.primary_inputs()) {
    const auto it = pi_stats.find(id);
    require(it != pi_stats.end(),
            "optimize: missing statistics for primary input '" +
                netlist.net(id).name + "'");
    net_stats[static_cast<std::size_t>(id)] = it->second;
  }

  OptimizeReport report;
  report.decisions.resize(static_cast<std::size_t>(netlist.gate_count()));

  // Arrival budgeting (conclusion (b)): per-net arrival ceilings from the
  // incoming mapping, and the running arrivals of the optimized netlist.
  const bool budget_delay = options.max_circuit_delay_increase >= 0.0;
  std::vector<double> arrival_budget;
  std::vector<double> arrival;
  if (budget_delay) {
    const delay::CircuitDelay timing = delay::circuit_delay(netlist, tech);
    arrival_budget.resize(timing.net_arrival.size());
    for (std::size_t i = 0; i < timing.net_arrival.size(); ++i) {
      arrival_budget[i] =
          timing.net_arrival[i] * (1.0 + options.max_circuit_delay_increase);
    }
    arrival.assign(static_cast<std::size_t>(netlist.net_count()), 0.0);
  }

  // DEPTH_FIRST_TRAVERSE: every gate after its transitive fan-in.
  for (GateId g : netlist.topological_order()) {
    const netlist::GateInst& inst = netlist.gate(g);

    // OBTAIN_PROB_AND_DENS.
    std::vector<SignalStats> inputs;
    inputs.reserve(inst.inputs.size());
    for (NetId in : inst.inputs) {
      inputs.push_back(net_stats[static_cast<std::size_t>(in)]);
    }

    // FIND_BEST_REORDERING: exhaustive exploration (Fig. 4) + model.
    const double load = netlist.external_load(g, tech);
    const auto scored =
        score_configurations(inst.config, inputs, load, tech, options.model);
    TR_ASSERT(!scored.empty());

    // Admissibility filters (paper conclusions (a) and (b)).
    std::vector<bool> admissible(scored.size(), true);
    if (options.restrict_to_instance) {
      const std::string instance = inst.config.instance_key();
      for (std::size_t i = 0; i < scored.size(); ++i) {
        if (scored[i].first.instance_key() != instance) {
          admissible[i] = false;
          ++report.configs_rejected_by_instance;
        }
      }
    }
    std::vector<double> candidate_arrival(scored.size(), 0.0);
    if (budget_delay) {
      const auto arrival_of = [&](const gategraph::GateTopology& config) {
        const GateGraph graph(config);
        const auto caps = celllib::node_capacitances(graph, tech, load);
        const delay::GateDelays delays = delay::gate_delays(graph, caps, tech);
        double out = 0.0;
        for (std::size_t pin = 0; pin < inst.inputs.size(); ++pin) {
          out = std::max(
              out, arrival[static_cast<std::size_t>(inst.inputs[pin])] +
                       delays.pin_delay[pin]);
        }
        return out;
      };
      const double budget =
          arrival_budget[static_cast<std::size_t>(inst.output)];
      for (std::size_t i = 0; i < scored.size(); ++i) {
        candidate_arrival[i] = arrival_of(scored[i].first);
        // The incoming configuration (i == 0) always fits the budget (its
        // pin delays are the original ones and input arrivals are within
        // their own budgets), so the fallback is always available.
        if (i > 0 && candidate_arrival[i] > budget + 1e-18) {
          admissible[i] = false;
          ++report.configs_rejected_by_delay;
        }
      }
      TR_ASSERT(candidate_arrival[0] <= budget + 1e-15);
    }

    GateDecision decision;
    decision.gate = g;
    decision.config_count = static_cast<int>(scored.size());
    decision.original_power = scored.front().second;  // incoming config first
    decision.best_power = scored.front().second;
    decision.worst_power = scored.front().second;
    std::size_t chosen = 0;
    for (std::size_t i = 0; i < scored.size(); ++i) {
      const double p = scored[i].second;
      if (p < decision.best_power) decision.best_power = p;
      if (p > decision.worst_power) decision.worst_power = p;
      if (!admissible[i]) continue;
      const bool better = options.objective == Objective::minimize_power
                              ? p < scored[chosen].second
                              : p > scored[chosen].second;
      if (better) chosen = i;
    }
    decision.chosen_power = scored[chosen].second;
    decision.changed = chosen != 0;
    if (decision.changed) {
      netlist.set_config(g, scored[chosen].first);
      ++report.gates_changed;
    }
    if (budget_delay) {
      arrival[static_cast<std::size_t>(inst.output)] =
          candidate_arrival[chosen];
    }
    report.model_power_before += decision.original_power;
    report.model_power_after += decision.chosen_power;
    report.decisions[static_cast<std::size_t>(g)] = decision;

    // CALCULATE_DENS + UPDATE_CIRCUIT_INFORMATION: output statistics from
    // the cell function — identical for every configuration (Sec. 4.2).
    const boolfn::TruthTable f =
        netlist.library().cell(inst.cell).function();
    net_stats[static_cast<std::size_t>(inst.output)] =
        boolfn::propagate(f, inputs);
  }
  return report;
}

}  // namespace tr::opt
