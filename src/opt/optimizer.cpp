#include "opt/optimizer.hpp"

#include <cmath>
#include <mutex>
#include <optional>

#include "celllib/cell.hpp"
#include "delay/elmore.hpp"
#include "gategraph/gate_graph.hpp"
#include "opt/search.hpp"
#include "power/gate_power.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/thread_pool.hpp"

namespace tr::opt {

const char* engine_name(Engine engine) noexcept {
  switch (engine) {
    case Engine::catalog: return "catalog";
    case Engine::reference: return "reference";
    case Engine::anneal: return "anneal";
  }
  return "unknown";
}

using boolfn::SignalStats;
using celllib::CatalogConfig;
using celllib::CatalogNode;
using celllib::ReorderCatalog;
using gategraph::GateGraph;
using gategraph::GateTopology;
using netlist::GateId;
using netlist::NetId;
using netlist::Netlist;

std::vector<std::pair<GateTopology, double>> score_configurations_reference(
    const GateTopology& config, const std::vector<SignalStats>& inputs,
    double external_load, const celllib::Tech& tech, power::ModelKind model) {
  std::vector<std::pair<GateTopology, double>> scored;
  for (GateTopology& candidate : config.all_reorderings()) {
    const GateGraph graph(candidate);
    const std::vector<double> caps =
        celllib::node_capacitances(graph, tech, external_load);
    const power::GatePower gp =
        model == power::ModelKind::extended
            ? power::evaluate_gate_power(graph, caps, inputs, tech)
            : power::evaluate_output_only_power(graph, caps, inputs, tech);
    scored.emplace_back(std::move(candidate), gp.total_power);
  }
  return scored;
}

const std::vector<double>& score_catalog(const ReorderCatalog& catalog,
                                         const std::vector<SignalStats>& inputs,
                                         double external_load,
                                         const celllib::Tech& tech,
                                         power::ModelKind model,
                                         ScoreScratch& scratch) {
  if (util::fault::enabled()) util::fault::check("opt.score");
  require(static_cast<int>(inputs.size()) == catalog.input_count(),
          "score_catalog: input statistics arity mismatch");
  scratch.probs.clear();
  scratch.probs.reserve(inputs.size());
  for (const SignalStats& s : inputs) scratch.probs.push_back(s.prob);
  scratch.weights.assign(scratch.probs);

  // One node's model power from its precomputed tables.
  const auto node_power = [&](const CatalogNode& node) {
    const double cap =
        celllib::node_capacitance(tech, node.terminal_count,
                                  node.node == GateGraph::output_node,
                                  external_load);
    return power::evaluate_node_tables(node.h, node.g, node.dh.data(),
                                       node.dg.data(), cap, inputs,
                                       scratch.weights, tech)
        .power;
  };

  scratch.powers.clear();
  scratch.powers.reserve(catalog.configs().size());
  for (const CatalogConfig& config : catalog.configs()) {
    double total = 0.0;
    if (model == power::ModelKind::extended) {
      for (const CatalogNode& node : config.nodes) total += node_power(node);
    } else {
      // Output-only ablation: the output node is stored last.
      total += node_power(config.nodes.back());
    }
    scratch.powers.push_back(total);
  }
  return scratch.powers;
}

std::vector<std::pair<GateTopology, double>> score_configurations(
    const GateTopology& config, const std::vector<SignalStats>& inputs,
    double external_load, const celllib::Tech& tech, power::ModelKind model,
    ScoreScratch& scratch) {
  const ReorderCatalog catalog = ReorderCatalog::build(config);
  const std::vector<double>& powers =
      score_catalog(catalog, inputs, external_load, tech, model, scratch);
  std::vector<std::pair<GateTopology, double>> scored;
  scored.reserve(powers.size());
  for (std::size_t i = 0; i < powers.size(); ++i) {
    scored.emplace_back(catalog.configs()[i].topology, powers[i]);
  }
  return scored;
}

std::vector<std::pair<GateTopology, double>> score_configurations(
    const GateTopology& config, const std::vector<SignalStats>& inputs,
    double external_load, const celllib::Tech& tech, power::ModelKind model) {
  ScoreScratch scratch;
  return score_configurations(config, inputs, external_load, tech, model,
                              scratch);
}

namespace {

/// The retained sequential engine (pre-catalog implementation): scores
/// with per-candidate graph rebuilds and commits gate by gate along the
/// topological traversal. Sole engine for arrival-budgeted runs, whose
/// admissibility depends on already-committed fan-in configurations.
OptimizeReport optimize_reference(Netlist& netlist,
                                  const std::map<NetId, SignalStats>& pi_stats,
                                  const celllib::Tech& tech,
                                  const OptimizeOptions& options) {
  netlist.validate();

  // OBTAIN_PROBABILITIES: net statistics, filled during the traversal.
  std::vector<SignalStats> net_stats(
      static_cast<std::size_t>(netlist.net_count()), SignalStats{0.5, 0.0});
  for (NetId id : netlist.primary_inputs()) {
    const auto it = pi_stats.find(id);
    require(it != pi_stats.end(),
            "optimize: missing statistics for primary input '" +
                netlist.net(id).name + "'");
    net_stats[static_cast<std::size_t>(id)] = it->second;
  }

  OptimizeReport report;
  report.engine_used = Engine::reference;
  report.threads_used = 1;  // the traversal is inherently sequential
  report.decisions.resize(static_cast<std::size_t>(netlist.gate_count()));

  // Arrival budgeting (conclusion (b)): per-net arrival ceilings from the
  // incoming mapping, and the running arrivals of the optimized netlist.
  const bool budget_delay = options.max_circuit_delay_increase.has_value();
  std::vector<double> arrival_budget;
  std::vector<double> arrival;
  if (budget_delay) {
    const delay::CircuitDelay timing = delay::circuit_delay(netlist, tech);
    arrival_budget.resize(timing.net_arrival.size());
    for (std::size_t i = 0; i < timing.net_arrival.size(); ++i) {
      arrival_budget[i] =
          timing.net_arrival[i] * (1.0 + *options.max_circuit_delay_increase);
    }
    arrival.assign(static_cast<std::size_t>(netlist.net_count()), 0.0);
  }

  // DEPTH_FIRST_TRAVERSE: every gate after its transitive fan-in.
  // Cancellation mid-traversal leaves committed configurations behind;
  // the containment layer (BatchOptimizer) restores the netlist from its
  // pre-optimize snapshot, keeping cancellation all-or-nothing.
  const bool cancellable = options.cancel.valid();
  for (GateId g : netlist.topological_order()) {
    if (cancellable) options.cancel.check("optimize");
    const netlist::GateInst& inst = netlist.gate(g);

    // OBTAIN_PROB_AND_DENS.
    std::vector<SignalStats> inputs;
    inputs.reserve(inst.inputs.size());
    for (NetId in : inst.inputs) {
      inputs.push_back(net_stats[static_cast<std::size_t>(in)]);
    }

    // FIND_BEST_REORDERING: exhaustive exploration (Fig. 4) + model.
    const double load = netlist.external_load(g, tech);
    const auto scored = score_configurations_reference(inst.config, inputs,
                                                       load, tech,
                                                       options.model);
    TR_ASSERT(!scored.empty());

    // Admissibility filters (paper conclusions (a) and (b)).
    std::vector<bool> admissible(scored.size(), true);
    if (options.restrict_to_instance) {
      const std::string instance = inst.config.instance_key();
      for (std::size_t i = 0; i < scored.size(); ++i) {
        if (scored[i].first.instance_key() != instance) {
          admissible[i] = false;
          ++report.configs_rejected_by_instance;
        }
      }
    }
    std::vector<double> candidate_arrival(scored.size(), 0.0);
    if (budget_delay) {
      const auto arrival_of = [&](const gategraph::GateTopology& config) {
        const GateGraph graph(config);
        const auto caps = celllib::node_capacitances(graph, tech, load);
        const delay::GateDelays delays = delay::gate_delays(graph, caps, tech);
        double out = 0.0;
        for (std::size_t pin = 0; pin < inst.inputs.size(); ++pin) {
          out = std::max(
              out, arrival[static_cast<std::size_t>(inst.inputs[pin])] +
                       delays.pin_delay[pin]);
        }
        return out;
      };
      const double budget =
          arrival_budget[static_cast<std::size_t>(inst.output)];
      for (std::size_t i = 0; i < scored.size(); ++i) {
        candidate_arrival[i] = arrival_of(scored[i].first);
        // The incoming configuration (i == 0) always fits the budget (its
        // pin delays are the original ones and input arrivals are within
        // their own budgets), so the fallback is always available.
        if (i > 0 && candidate_arrival[i] > budget + 1e-18) {
          admissible[i] = false;
          ++report.configs_rejected_by_delay;
        }
      }
      TR_ASSERT(candidate_arrival[0] <= budget + 1e-15);
    }

    GateDecision decision;
    decision.gate = g;
    decision.config_count = static_cast<int>(scored.size());
    decision.original_power = scored.front().second;  // incoming config first
    decision.best_power = scored.front().second;
    decision.worst_power = scored.front().second;
    std::size_t chosen = 0;
    for (std::size_t i = 0; i < scored.size(); ++i) {
      const double p = scored[i].second;
      if (p < decision.best_power) decision.best_power = p;
      if (p > decision.worst_power) decision.worst_power = p;
      if (!admissible[i]) continue;
      const bool better = options.objective == Objective::minimize_power
                              ? p < scored[chosen].second
                              : p > scored[chosen].second;
      if (better) chosen = i;
    }
    decision.chosen_power = scored[chosen].second;
    decision.changed = chosen != 0;
    if (decision.changed) {
      netlist.set_config(g, scored[chosen].first);
      ++report.gates_changed;
    }
    if (budget_delay) {
      arrival[static_cast<std::size_t>(inst.output)] =
          candidate_arrival[chosen];
    }
    report.model_power_before += decision.original_power;
    report.model_power_after += decision.chosen_power;
    report.decisions[static_cast<std::size_t>(g)] = decision;

    // CALCULATE_DENS + UPDATE_CIRCUIT_INFORMATION: output statistics from
    // the cell function — identical for every configuration (Sec. 4.2).
    const boolfn::TruthTable f =
        netlist.library().cell(inst.cell).function();
    net_stats[static_cast<std::size_t>(inst.output)] =
        boolfn::propagate(f, inputs);
  }
  return report;
}

/// The default gate-parallel engine (catalog + word-parallel kernel).
OptimizeReport optimize_catalog(Netlist& netlist,
                                const std::map<NetId, SignalStats>& pi_stats,
                                const celllib::Tech& tech,
                                const OptimizeOptions& options) {
  netlist.validate();

  // OBTAIN_PROBABILITIES + CALCULATE_DENS as one up-front topological
  // pass: output statistics come from the cell function and are identical
  // for every configuration (Sec. 4.2), so they never depend on any
  // reordering decision.
  std::vector<SignalStats> net_stats(
      static_cast<std::size_t>(netlist.net_count()), SignalStats{0.5, 0.0});
  for (NetId id : netlist.primary_inputs()) {
    const auto it = pi_stats.find(id);
    require(it != pi_stats.end(),
            "optimize: missing statistics for primary input '" +
                netlist.net(id).name + "'");
    net_stats[static_cast<std::size_t>(id)] = it->second;
  }
  const std::vector<GateId> topo_order = netlist.topological_order();
  std::vector<std::vector<SignalStats>> gate_inputs(
      static_cast<std::size_t>(netlist.gate_count()));
  for (GateId g : topo_order) {
    const netlist::GateInst& inst = netlist.gate(g);
    std::vector<SignalStats>& inputs = gate_inputs[static_cast<std::size_t>(g)];
    inputs.reserve(inst.inputs.size());
    for (NetId in : inst.inputs) {
      inputs.push_back(net_stats[static_cast<std::size_t>(in)]);
    }
    net_stats[static_cast<std::size_t>(inst.output)] = boolfn::propagate(
        netlist.library().cell(inst.cell).function(), inputs);
  }

  // Catalog prefetch, serial: the CellLibrary cache makes this one
  // characterisation per distinct cell configuration, shared by all gates.
  const bool cancellable = options.cancel.valid();
  std::vector<std::shared_ptr<const ReorderCatalog>> catalogs(
      static_cast<std::size_t>(netlist.gate_count()));
  for (GateId g = 0; g < netlist.gate_count(); ++g) {
    if (cancellable) options.cancel.check("optimize");
    catalogs[static_cast<std::size_t>(g)] = with_error_site("characterize", [&] {
      return netlist.library().catalog(netlist.gate(g).config);
    });
  }

  // FIND_BEST_REORDERING for all gates, concurrently: decisions are
  // independent, each worker writes only its own gate's slot.
  struct GateOutcome {
    GateDecision decision;
    std::size_t chosen = 0;
    int rejected_instance = 0;
  };
  std::vector<GateOutcome> outcomes(
      static_cast<std::size_t>(netlist.gate_count()));
  // Auto-sized runs share one long-lived pool (spawning and joining
  // threads per optimize() call would dominate small netlists); the pool
  // is a single-submitter structure, so concurrent optimize() calls
  // serialise their parallel phases on the guard mutex. An explicit
  // thread count gets a dedicated pool.
  util::ThreadPool* pool = nullptr;
  std::unique_lock<std::mutex> shared_guard;
  std::optional<util::ThreadPool> own_pool;
  if (options.threads == 0) {
    static std::mutex shared_pool_mutex;
    static util::ThreadPool shared_pool(0);
    shared_guard = std::unique_lock<std::mutex>(shared_pool_mutex);
    pool = &shared_pool;
  } else {
    own_pool.emplace(options.threads);
    pool = &*own_pool;
  }
  pool->parallel_for(
      static_cast<std::size_t>(netlist.gate_count()), [&](std::size_t gi) {
        if (cancellable) options.cancel.check("optimize");
        thread_local ScoreScratch scratch;
        const GateId g = static_cast<GateId>(gi);
        const ReorderCatalog& catalog = *catalogs[gi];
        const double load = netlist.external_load(g, tech);
        const std::vector<double>& powers = with_error_site("score", [&]() -> const std::vector<double>& {
          return score_catalog(catalog, gate_inputs[gi], load, tech,
                               options.model, scratch);
        });
        TR_ASSERT(!powers.empty());

        GateOutcome& outcome = outcomes[gi];
        GateDecision& decision = outcome.decision;
        decision.gate = g;
        decision.config_count = static_cast<int>(powers.size());
        decision.original_power = powers.front();  // incoming config first
        decision.best_power = powers.front();
        decision.worst_power = powers.front();
        std::size_t chosen = 0;
        for (std::size_t i = 0; i < powers.size(); ++i) {
          const double p = powers[i];
          if (p < decision.best_power) decision.best_power = p;
          if (p > decision.worst_power) decision.worst_power = p;
          if (options.restrict_to_instance &&
              !catalog.configs()[i].same_instance_as_first) {
            ++outcome.rejected_instance;
            continue;
          }
          const bool better = options.objective == Objective::minimize_power
                                  ? p < powers[chosen]
                                  : p > powers[chosen];
          if (better) chosen = i;
        }
        decision.chosen_power = powers[chosen];
        decision.changed = chosen != 0;
        outcome.chosen = chosen;
      });

  // Last cancellation point: past here the netlist is mutated, so the
  // commit runs to completion and the result is the full deterministic
  // report (all-or-nothing without needing a snapshot on this engine).
  if (cancellable) options.cancel.check("optimize");

  // UPDATE_CIRCUIT_INFORMATION: commit and assemble deterministically in
  // GateId order; power totals accumulate in topological order to stay
  // bit-identical with the reference engine's running sums.
  OptimizeReport report;
  report.engine_used = Engine::catalog;
  report.threads_used = pool->thread_count();
  report.decisions.resize(static_cast<std::size_t>(netlist.gate_count()));
  for (GateId g = 0; g < netlist.gate_count(); ++g) {
    const GateOutcome& outcome = outcomes[static_cast<std::size_t>(g)];
    report.decisions[static_cast<std::size_t>(g)] = outcome.decision;
    report.configs_rejected_by_instance += outcome.rejected_instance;
    if (outcome.decision.changed) {
      netlist.set_config(
          g, catalogs[static_cast<std::size_t>(g)]->configs()[outcome.chosen]
                 .topology);
      ++report.gates_changed;
    }
  }
  for (GateId g : topo_order) {
    report.model_power_before +=
        report.decisions[static_cast<std::size_t>(g)].original_power;
    report.model_power_after +=
        report.decisions[static_cast<std::size_t>(g)].chosen_power;
  }
  return report;
}

}  // namespace

OptimizeReport optimize(Netlist& netlist,
                        const std::map<NetId, SignalStats>& pi_stats,
                        const celllib::Tech& tech,
                        const OptimizeOptions& options) {
  return with_error_site("optimize", [&] {
    if (options.max_circuit_delay_increase) {
      const double budget = *options.max_circuit_delay_increase;
      require(std::isfinite(budget) && budget >= 0.0,
              "optimize: max_circuit_delay_increase must be finite and >= 0");
    }
    if (options.engine == Engine::anneal) {
      return search::anneal_optimize(netlist, pi_stats, tech, options);
    }
    // Arrival budgeting couples a gate's admissible set to its fan-in
    // gates' committed configurations — inherently sequential, so a
    // budgeted catalog request is downgraded to the reference engine
    // (legacy fallback; Engine::anneal lifts the restriction — see
    // DESIGN.md Sec. 14 for the removal plan). The report's engine_used
    // records the downgrade.
    if (options.engine == Engine::reference ||
        options.max_circuit_delay_increase.has_value()) {
      return optimize_reference(netlist, pi_stats, tech, options);
    }
    return optimize_catalog(netlist, pi_stats, tech, options);
  });
}

}  // namespace tr::opt
