#include "opt/circuit_load.hpp"

#include <fstream>
#include <sstream>

#include "benchgen/classic.hpp"
#include "benchgen/suite.hpp"
#include "mapper/mapper.hpp"
#include "netlist/blif.hpp"
#include "netlist/verilog.hpp"
#include "util/error.hpp"

namespace tr::opt {

namespace {

bool is_classic(const std::string& name) {
  for (const std::string& classic : benchgen::classic_names()) {
    if (classic == name) return true;
  }
  return false;
}

const benchgen::BenchmarkSpec* find_suite_entry(const std::string& name) {
  for (const auto& spec : benchgen::table3_suite()) {
    if (spec.name == name) return &spec;
  }
  for (const auto& spec : benchgen::scaled_suite()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

}  // namespace

std::vector<std::string> suite_circuit_specs(const std::string& suite) {
  std::vector<std::string> specs;
  if (suite == "classic") {
    for (const std::string& name : benchgen::classic_names()) {
      specs.push_back(name);
    }
  } else if (suite == "table3") {
    for (const auto& spec : benchgen::table3_suite()) {
      specs.push_back(spec.name);
    }
  } else if (suite == "scaled") {
    for (const auto& spec : benchgen::scaled_suite()) {
      specs.push_back(spec.name);
    }
  } else {
    throw Error("unknown suite '" + suite +
                "' (expected classic, table3 or scaled)");
  }
  return specs;
}

bool is_embedded_spec(const std::string& spec) {
  return is_classic(spec) || find_suite_entry(spec) != nullptr;
}

netlist::Netlist load_circuit_spec(const std::string& spec,
                                   const celllib::CellLibrary& library) {
  if (is_classic(spec)) {
    const auto logic =
        netlist::read_blif_logic_string(benchgen::classic_blif(spec), spec);
    return mapper::map_network(logic, library);
  }
  if (const benchgen::BenchmarkSpec* entry = find_suite_entry(spec)) {
    return benchgen::build_benchmark(library, *entry);
  }
  if (spec.ends_with(".blif")) {
    std::ifstream in(spec);
    require(in.good(), "cannot open BLIF file '" + spec + "'");
    std::stringstream text;
    text << in.rdbuf();
    // Mapped BLIF carries .gate lines; generic BLIF carries .names
    // blocks and goes through the technology mapper.
    if (text.str().find("\n.gate") != std::string::npos) {
      return netlist::read_blif_mapped_string(text.str(), library, spec);
    }
    return mapper::map_network(
        netlist::read_blif_logic_string(text.str(), spec), library);
  }
  if (spec.ends_with(".v")) {
    std::ifstream in(spec);
    require(in.good(), "cannot open Verilog file '" + spec + "'");
    return netlist::read_verilog(library, in, spec);
  }
  throw Error("unknown circuit '" + spec +
              "' (not a classic, suite entry, .blif or .v file)");
}

}  // namespace tr::opt
