#pragma once
// Persistence for optimized transistor configurations.
//
// BLIF .gate lines identify the cell and the pin binding but not the
// transistor ordering the optimizer chose, so a mapped netlist written
// to BLIF silently reverts to canonical configurations on re-read. The
// configuration sidecar fixes that: a small text format mapping each
// gate — identified by its *output net name*, which BLIF preserves,
// unlike instance names — to the configuration's canonical key,
//
//   # reordering configuration sidecar v1
//   <output-net-name> <nmos-tree>|<pmos-tree>
//
// written next to the BLIF and re-applied after reading it back.

#include <iosfwd>

#include "netlist/netlist.hpp"

namespace tr::netlist {

/// Writes one line per gate whose configuration differs from the cell's
/// canonical topology (identical configurations are omitted).
void write_config_sidecar(const Netlist& netlist, std::ostream& out);

/// Applies a sidecar to `netlist`. Unknown output net names and
/// function-changing keys raise tr::Error; gates absent from the sidecar
/// keep their current configuration. Returns the number of gates
/// reconfigured.
int read_config_sidecar(Netlist& netlist, std::istream& in,
                        const std::string& source_name = "<sidecar>");

}  // namespace tr::netlist
