#include "netlist/logic_network.hpp"

#include <map>
#include <set>

#include "util/error.hpp"

namespace tr::netlist {

void LogicNetwork::add_input(const std::string& name) {
  require(!name.empty(), "LogicNetwork::add_input: empty name");
  require(!is_input(name) && node_index(name) < 0,
          "LogicNetwork::add_input: duplicate signal '" + name + "'");
  inputs_.push_back(name);
}

void LogicNetwork::add_output(const std::string& name) {
  require(!name.empty(), "LogicNetwork::add_output: empty name");
  outputs_.push_back(name);
}

void LogicNetwork::add_node(LogicNode node) {
  require(!node.name.empty(), "LogicNetwork::add_node: empty node name");
  require(!is_input(node.name) && node_index(node.name) < 0,
          "LogicNetwork::add_node: duplicate signal '" + node.name + "'");
  require(static_cast<int>(node.fanins.size()) == node.function.var_count(),
          "LogicNetwork::add_node: '" + node.name +
              "' fanin arity does not match its function");
  nodes_.push_back(std::move(node));
}

int LogicNetwork::node_index(const std::string& name) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

bool LogicNetwork::is_input(const std::string& name) const {
  for (const std::string& in : inputs_) {
    if (in == name) return true;
  }
  return false;
}

std::vector<int> LogicNetwork::topological_nodes() const {
  std::vector<int> pending(nodes_.size(), 0);
  std::map<std::string, std::vector<int>> waiters;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (const std::string& fanin : nodes_[i].fanins) {
      if (is_input(fanin)) continue;
      require(node_index(fanin) >= 0, "LogicNetwork: fanin '" + fanin +
                                          "' of node '" + nodes_[i].name +
                                          "' is not driven");
      ++pending[i];
      waiters[fanin].push_back(static_cast<int>(i));
    }
  }
  std::vector<int> ready;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (pending[i] == 0) ready.push_back(static_cast<int>(i));
  }
  std::vector<int> order;
  order.reserve(nodes_.size());
  for (std::size_t head = 0; head < ready.size(); ++head) {
    const int i = ready[head];
    order.push_back(i);
    const auto it = waiters.find(nodes_[static_cast<std::size_t>(i)].name);
    if (it == waiters.end()) continue;
    for (int w : it->second) {
      if (--pending[static_cast<std::size_t>(w)] == 0) ready.push_back(w);
    }
  }
  require(order.size() == nodes_.size(),
          "LogicNetwork: combinational cycle detected");
  return order;
}

void LogicNetwork::validate() const {
  std::set<std::string> names(inputs_.begin(), inputs_.end());
  require(names.size() == inputs_.size(), "LogicNetwork: duplicate inputs");
  for (const LogicNode& n : nodes_) {
    require(names.insert(n.name).second,
            "LogicNetwork: duplicate signal '" + n.name + "'");
  }
  for (const std::string& out : outputs_) {
    require(names.contains(out),
            "LogicNetwork: output '" + out + "' is not driven");
  }
  (void)topological_nodes();
}

std::vector<bool> LogicNetwork::evaluate(
    const std::vector<bool>& input_values) const {
  require(input_values.size() == inputs_.size(),
          "LogicNetwork::evaluate: input arity mismatch");
  std::map<std::string, bool> values;
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    values[inputs_[i]] = input_values[i];
  }
  for (int i : topological_nodes()) {
    const LogicNode& node = nodes_[static_cast<std::size_t>(i)];
    std::uint64_t minterm = 0;
    for (std::size_t j = 0; j < node.fanins.size(); ++j) {
      const auto it = values.find(node.fanins[j]);
      require(it != values.end(), "LogicNetwork::evaluate: undriven fanin '" +
                                      node.fanins[j] + "'");
      if (it->second) minterm |= 1ULL << j;
    }
    values[node.name] = node.function.value_at(minterm);
  }
  std::vector<bool> out;
  out.reserve(outputs_.size());
  for (const std::string& name : outputs_) {
    const auto it = values.find(name);
    require(it != values.end(),
            "LogicNetwork::evaluate: output '" + name + "' undriven");
    out.push_back(it->second);
  }
  return out;
}

}  // namespace tr::netlist
