#include "netlist/activity_io.hpp"

#include <istream>
#include <ostream>
#include <set>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace tr::netlist {

void write_activity(const Netlist& netlist,
                    const std::vector<boolfn::SignalStats>& net_stats,
                    std::ostream& out, bool all_nets) {
  require(net_stats.size() == static_cast<std::size_t>(netlist.net_count()),
          "write_activity: statistics arity mismatch");
  out << "# activity v1\n";
  out << "# net  P(net=1)  transitions/s\n";
  for (NetId id = 0; id < netlist.net_count(); ++id) {
    const Net& net = netlist.net(id);
    if (!all_nets && !net.is_primary_input) continue;
    const auto& s = net_stats[static_cast<std::size_t>(id)];
    out << net.name << ' ' << format_fixed(s.prob, 6) << ' '
        << format_fixed(s.density, 3) << '\n';
  }
}

std::map<NetId, boolfn::SignalStats> read_activity(
    const Netlist& netlist, std::istream& in, const std::string& source_name) {
  std::map<NetId, boolfn::SignalStats> stats;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view body = trim(line);
    if (body.empty() || body.front() == '#') continue;
    const std::vector<std::string> tokens = split(body);
    if (tokens.size() != 3) {
      throw ParseError(source_name, line_no,
                       "expected '<net> <probability> <density>'");
    }
    const NetId id = netlist.find_net(tokens[0]);
    if (id < 0) {
      throw ParseError(source_name, line_no,
                       "unknown net '" + tokens[0] + "'");
    }
    if (!netlist.net(id).is_primary_input) {
      throw ParseError(source_name, line_no,
                       "net '" + tokens[0] + "' is not a primary input");
    }
    boolfn::SignalStats s;
    try {
      s.prob = std::stod(tokens[1]);
      s.density = std::stod(tokens[2]);
    } catch (const std::exception&) {
      throw ParseError(source_name, line_no, "malformed number");
    }
    if (s.prob < 0.0 || s.prob > 1.0 || s.density < 0.0) {
      throw ParseError(source_name, line_no,
                       "probability must be in [0,1], density >= 0");
    }
    if (!stats.emplace(id, s).second) {
      throw ParseError(source_name, line_no,
                       "duplicate entry for net '" + tokens[0] + "'");
    }
  }
  for (NetId id : netlist.primary_inputs()) {
    require(stats.contains(id),
            source_name + ": missing activity for primary input '" +
                netlist.net(id).name + "'");
  }
  return stats;
}

}  // namespace tr::netlist
