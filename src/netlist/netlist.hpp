#pragma once
// Mapped gate-level netlist: instances of library cells connected by
// nets. This is the circuit representation the optimization algorithm
// (paper Fig. 3) traverses, and the one the switch-level simulator runs.
//
// Each gate instance carries its *current transistor configuration*
// (a gategraph::GateTopology); the optimizer rewrites these in place.
// The cell library must outlive the netlist.

#include <string>
#include <vector>

#include "celllib/library.hpp"
#include "celllib/tech.hpp"
#include "gategraph/gate_topology.hpp"

namespace tr::netlist {

using NetId = int;
using GateId = int;

/// A net (wire). Either a primary input or driven by exactly one gate.
struct Net {
  std::string name;
  GateId driver = -1;  ///< driving gate, or -1 for primary inputs
  /// (gate, pin) pairs this net feeds.
  std::vector<std::pair<GateId, int>> fanouts;
  bool is_primary_input = false;
  bool is_primary_output = false;
};

/// An instance of a library cell.
struct GateInst {
  std::string name;                  ///< instance name (unique)
  std::string cell;                  ///< library cell name
  std::vector<NetId> inputs;         ///< nets bound to pins, pin order
  NetId output = -1;                 ///< driven net
  gategraph::GateTopology config;    ///< current transistor configuration
};

/// A mapped combinational circuit.
class Netlist {
public:
  /// `library` must outlive the netlist (non-owning).
  explicit Netlist(const celllib::CellLibrary& library, std::string name = "top");

  const std::string& name() const noexcept { return name_; }
  const celllib::CellLibrary& library() const noexcept { return *library_; }

  /// Creates a net; names must be unique and non-empty.
  NetId add_net(const std::string& net_name);
  /// Returns the net id for a name, or -1 if absent.
  NetId find_net(const std::string& net_name) const;
  /// Finds or creates.
  NetId ensure_net(const std::string& net_name);

  void mark_primary_input(NetId net);
  void mark_primary_output(NetId net);

  /// Instantiates `cell_name` with the given pin binding. The output net
  /// must not already have a driver. The instance starts in the cell's
  /// canonical configuration.
  GateId add_gate(const std::string& instance_name,
                  const std::string& cell_name, std::vector<NetId> inputs,
                  NetId output);

  int net_count() const noexcept { return static_cast<int>(nets_.size()); }
  int gate_count() const noexcept { return static_cast<int>(gates_.size()); }
  const Net& net(NetId id) const;
  const GateInst& gate(GateId id) const;
  const std::vector<Net>& nets() const noexcept { return nets_; }
  const std::vector<GateInst>& gates() const noexcept { return gates_; }

  std::vector<NetId> primary_inputs() const;
  std::vector<NetId> primary_outputs() const;

  /// Replaces a gate's transistor configuration. The new configuration
  /// must compute the same logic function over the same pins.
  void set_config(GateId id, gategraph::GateTopology config);

  /// Gates ordered so every gate appears after all its transitive fan-in
  /// gates (the traversal order of paper Fig. 3). Throws on
  /// combinational cycles.
  std::vector<GateId> topological_order() const;

  /// External load on a gate's output net: wire capacitance plus the gate
  /// capacitance of every fanout pin (primary outputs add one more wire
  /// load to model the pad).
  double external_load(GateId id, const celllib::Tech& tech) const;

  /// Structural sanity: every non-PI net has a driver, every gate's pin
  /// arity matches its cell, no combinational cycles, POs exist.
  void validate() const;

  /// Logic simulation of one input vector: `pi_values` follows
  /// primary_inputs() order; the result follows primary_outputs() order.
  /// Used by equivalence tests (mapper vs source network).
  std::vector<bool> evaluate(const std::vector<bool>& pi_values) const;

private:
  const celllib::CellLibrary* library_;
  std::string name_;
  std::vector<Net> nets_;
  std::vector<GateInst> gates_;
  std::map<std::string, NetId> net_index_;
};

}  // namespace tr::netlist
