#pragma once
// Switching-activity file I/O (a SAIF-flavoured plain-text format).
//
// Real flows obtain input statistics from simulation traces rather than
// the paper's synthetic scenarios; this format carries them:
//
//   # activity v1
//   <net-name> <equilibrium-probability> <transition-density>
//
// Probabilities are in [0,1]; densities in transitions/second. The
// reader resolves names against a netlist's primary inputs; the writer
// can dump a whole circuit's propagated activity for inspection.

#include <iosfwd>
#include <map>

#include "boolfn/signal.hpp"
#include "netlist/netlist.hpp"

namespace tr::netlist {

/// Writes one line per primary input (or per net when `all_nets`).
void write_activity(const Netlist& netlist,
                    const std::vector<boolfn::SignalStats>& net_stats,
                    std::ostream& out, bool all_nets = false);

/// Reads primary-input statistics. Every line must name a primary input
/// of `netlist`; every primary input must be covered. Throws tr::Error /
/// tr::ParseError on violations.
std::map<NetId, boolfn::SignalStats> read_activity(
    const Netlist& netlist, std::istream& in,
    const std::string& source_name = "<activity>");

}  // namespace tr::netlist
