#include "netlist/blif.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "boolfn/isop.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/strings.hpp"

namespace tr::netlist {

namespace {

struct Line {
  int number = 0;  ///< 1-based line number of the first physical line
  std::vector<std::string> tokens;
};

/// Reads physical lines, strips comments, folds '\' continuations and
/// tokenises. Empty lines are dropped.
std::vector<Line> logical_lines(std::istream& in) {
  std::vector<Line> lines;
  std::string physical;
  int line_no = 0;
  std::string pending;
  int pending_start = 0;
  while (std::getline(in, physical)) {
    ++line_no;
    const std::size_t hash = physical.find('#');
    if (hash != std::string::npos) physical.erase(hash);
    std::string_view body = trim(physical);
    bool continues = false;
    if (!body.empty() && body.back() == '\\') {
      continues = true;
      body.remove_suffix(1);
    }
    if (pending.empty()) pending_start = line_no;
    pending += ' ';
    pending += body;
    if (continues) continue;
    const std::vector<std::string> tokens = split(pending);
    if (!tokens.empty()) lines.push_back({pending_start, tokens});
    pending.clear();
  }
  return lines;
}

[[noreturn]] void fail(const std::string& source, int line,
                       const std::string& message) {
  throw ParseError(source, line, message);
}

/// Parses the cover rows of a .names block starting after `header_index`;
/// advances `i` past the block. Returns the node.
LogicNode parse_names_block(const std::vector<Line>& lines, std::size_t& i,
                            const std::string& source) {
  const Line& header = lines[i];
  TR_ASSERT(header.tokens[0] == ".names");
  if (header.tokens.size() < 2) {
    fail(source, header.number, ".names needs at least an output signal");
  }
  LogicNode node;
  node.name = header.tokens.back();
  node.fanins.assign(header.tokens.begin() + 1, header.tokens.end() - 1);
  const int n = static_cast<int>(node.fanins.size());
  if (n > boolfn::TruthTable::max_vars) {
    fail(source, header.number,
         ".names node '" + node.name + "' has too many fanins");
  }

  std::vector<std::string> cubes;
  char output_phase = 0;
  ++i;
  for (; i < lines.size(); ++i) {
    const Line& row = lines[i];
    if (row.tokens[0].front() == '.') break;  // next directive
    std::string cube;
    char value = 0;
    if (n == 0) {
      if (row.tokens.size() != 1 || row.tokens[0].size() != 1) {
        fail(source, row.number, "constant .names row must be a single bit");
      }
      value = row.tokens[0][0];
    } else {
      if (row.tokens.size() != 2) {
        fail(source, row.number, ".names row must be '<cube> <value>'");
      }
      cube = row.tokens[0];
      if (static_cast<int>(cube.size()) != n) {
        fail(source, row.number, "cube width does not match fanin count");
      }
      if (row.tokens[1].size() != 1) {
        fail(source, row.number, "output value must be a single bit");
      }
      value = row.tokens[1][0];
    }
    if (value != '0' && value != '1') {
      fail(source, row.number, "output value must be 0 or 1");
    }
    if (output_phase == 0) output_phase = value;
    if (value != output_phase) {
      fail(source, row.number, "mixed output phases in one .names block");
    }
    cubes.push_back(cube);
  }

  if (n == 0) {
    node.function = cubes.empty() || output_phase == '0'
                        ? boolfn::TruthTable::zero(0)
                        : boolfn::TruthTable::one(0);
    return node;
  }
  boolfn::TruthTable cover = boolfn::TruthTable::from_cubes(n, cubes);
  node.function = output_phase == '0' ? ~cover : cover;
  return node;
}

struct ModelHeader {
  std::string model = "top";
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
};

/// Parses directives common to both dialects; returns body line indices of
/// .names / .gate headers for the caller to process.
ModelHeader parse_header_directives(const std::vector<Line>& lines,
                                    const std::string& source) {
  ModelHeader h;
  for (const Line& line : lines) {
    const std::string& kw = line.tokens[0];
    if (kw == ".model") {
      if (line.tokens.size() >= 2) h.model = line.tokens[1];
    } else if (kw == ".inputs") {
      h.inputs.insert(h.inputs.end(), line.tokens.begin() + 1,
                      line.tokens.end());
    } else if (kw == ".outputs") {
      h.outputs.insert(h.outputs.end(), line.tokens.begin() + 1,
                       line.tokens.end());
    } else if (kw == ".latch" || kw == ".clock") {
      fail(source, line.number,
           "sequential BLIF is not supported (combinational flow only)");
    }
  }
  return h;
}

}  // namespace

LogicNetwork read_blif_logic(std::istream& in, const std::string& source) {
  if (util::fault::enabled()) util::fault::check("parse.blif");
  const std::vector<Line> lines = logical_lines(in);
  const ModelHeader header = parse_header_directives(lines, source);

  LogicNetwork network(header.model);
  for (const std::string& name : header.inputs) network.add_input(name);
  for (const std::string& name : header.outputs) network.add_output(name);

  for (std::size_t i = 0; i < lines.size();) {
    const std::string& kw = lines[i].tokens[0];
    if (kw == ".names") {
      network.add_node(parse_names_block(lines, i, source));
    } else if (kw == ".gate") {
      fail(source, lines[i].number,
           "mapped BLIF: use read_blif_mapped for .gate models");
    } else {
      ++i;
    }
  }
  network.validate();
  return network;
}

LogicNetwork read_blif_logic_string(const std::string& text,
                                    const std::string& source) {
  std::istringstream in(text);
  return read_blif_logic(in, source);
}

LogicNetwork read_blif_logic_file(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "cannot open BLIF file '" + path + "'");
  return read_blif_logic(in, path);
}

Netlist read_blif_mapped(std::istream& in, const celllib::CellLibrary& library,
                         const std::string& source) {
  if (util::fault::enabled()) util::fault::check("parse.blif_mapped");
  const std::vector<Line> lines = logical_lines(in);
  const ModelHeader header = parse_header_directives(lines, source);

  Netlist netlist(library, header.model);
  for (const std::string& name : header.inputs) {
    netlist.mark_primary_input(netlist.ensure_net(name));
  }

  int instance_counter = 0;
  for (const Line& line : lines) {
    if (line.tokens[0] != ".gate") continue;
    if (line.tokens.size() < 3) {
      fail(source, line.number, ".gate needs a cell name and pin bindings");
    }
    const std::string& cell_name = line.tokens[1];
    const celllib::Cell* cell = library.find(cell_name);
    if (cell == nullptr) {
      fail(source, line.number, "unknown cell '" + cell_name + "'");
    }
    std::vector<NetId> inputs(static_cast<std::size_t>(cell->input_count()), -1);
    NetId output = -1;
    for (std::size_t t = 2; t < line.tokens.size(); ++t) {
      const std::string& binding = line.tokens[t];
      const std::size_t eq = binding.find('=');
      if (eq == std::string::npos) {
        fail(source, line.number, "pin binding '" + binding +
                                      "' is not of the form pin=net");
      }
      const std::string pin = binding.substr(0, eq);
      const std::string net_name = binding.substr(eq + 1);
      const NetId net = netlist.ensure_net(net_name);
      if (pin == "y") {
        output = net;
        continue;
      }
      int pin_index = -1;
      for (int p = 0; p < cell->input_count(); ++p) {
        if (cell->pin_names()[static_cast<std::size_t>(p)] == pin) {
          pin_index = p;
          break;
        }
      }
      if (pin_index < 0) {
        fail(source, line.number,
             "cell '" + cell_name + "' has no pin '" + pin + "'");
      }
      inputs[static_cast<std::size_t>(pin_index)] = net;
    }
    if (output < 0) {
      fail(source, line.number, "missing output binding y=<net>");
    }
    for (std::size_t p = 0; p < inputs.size(); ++p) {
      if (inputs[p] < 0) {
        fail(source, line.number,
             "missing binding for pin '" + cell->pin_names()[p] + "'");
      }
    }
    netlist.add_gate(cell_name + "_" + std::to_string(instance_counter++),
                     cell_name, std::move(inputs), output);
  }

  for (const std::string& name : header.outputs) {
    const NetId net = netlist.find_net(name);
    require(net >= 0, source + ": primary output '" + name + "' is undriven");
    netlist.mark_primary_output(net);
  }
  netlist.validate();
  return netlist;
}

Netlist read_blif_mapped_string(const std::string& text,
                                const celllib::CellLibrary& library,
                                const std::string& source) {
  std::istringstream in(text);
  return read_blif_mapped(in, library, source);
}

void write_blif(const LogicNetwork& network, std::ostream& out) {
  out << ".model " << network.model() << '\n';
  out << ".inputs " << join(network.inputs(), " ") << '\n';
  out << ".outputs " << join(network.outputs(), " ") << '\n';
  for (const LogicNode& node : network.nodes()) {
    out << ".names";
    for (const std::string& fanin : node.fanins) out << ' ' << fanin;
    out << ' ' << node.name << '\n';
    if (node.function.var_count() == 0) {
      if (node.function.is_one()) out << "1\n";
      continue;
    }
    for (const boolfn::Cube& cube : boolfn::isop(node.function)) {
      out << cube << " 1\n";
    }
  }
  out << ".end\n";
}

void write_blif(const Netlist& netlist, std::ostream& out) {
  out << ".model " << netlist.name() << '\n';
  out << ".inputs";
  for (NetId id : netlist.primary_inputs()) out << ' ' << netlist.net(id).name;
  out << '\n';
  out << ".outputs";
  for (NetId id : netlist.primary_outputs()) out << ' ' << netlist.net(id).name;
  out << '\n';
  for (const GateInst& gate : netlist.gates()) {
    const celllib::Cell& cell = netlist.library().cell(gate.cell);
    out << ".gate " << gate.cell;
    for (std::size_t p = 0; p < gate.inputs.size(); ++p) {
      out << ' ' << cell.pin_names()[p] << '='
          << netlist.net(gate.inputs[p]).name;
    }
    out << " y=" << netlist.net(gate.output).name << '\n';
  }
  out << ".end\n";
}

}  // namespace tr::netlist
