#pragma once
// Technology-independent logic network: named nodes carrying arbitrary
// boolean functions of named fanins. This is what the BLIF reader
// produces (.names blocks) and what the tech mapper consumes.

#include <string>
#include <vector>

#include "boolfn/truth_table.hpp"

namespace tr::netlist {

/// One logic node: signal `name` = function(fanins).
struct LogicNode {
  std::string name;
  std::vector<std::string> fanins;
  /// Function over the fanins; variable j = fanins[j]. Constant nodes
  /// have no fanins and a 0-variable table.
  boolfn::TruthTable function{0};
};

/// A multi-level combinational logic network.
class LogicNetwork {
public:
  explicit LogicNetwork(std::string model_name = "top")
      : model_(std::move(model_name)) {}

  const std::string& model() const noexcept { return model_; }

  void add_input(const std::string& name);
  void add_output(const std::string& name);
  /// Adds a node; the name must not collide with an input or another node.
  void add_node(LogicNode node);

  const std::vector<std::string>& inputs() const noexcept { return inputs_; }
  const std::vector<std::string>& outputs() const noexcept { return outputs_; }
  const std::vector<LogicNode>& nodes() const noexcept { return nodes_; }

  /// Index of the node driving `name`, or -1 (primary input or unknown).
  int node_index(const std::string& name) const;
  bool is_input(const std::string& name) const;

  /// Node indices ordered so each node follows all its fanin nodes.
  /// Throws on cycles or undriven fanins.
  std::vector<int> topological_nodes() const;

  /// Checks: every output and every fanin is either an input or a node;
  /// no duplicate signal names; acyclic.
  void validate() const;

  /// Evaluates all signals for one primary-input assignment (keyed by
  /// input order). Returns values of the primary outputs, in output
  /// order. Used by equivalence tests against mapped netlists.
  std::vector<bool> evaluate(const std::vector<bool>& input_values) const;

private:
  std::string model_;
  std::vector<std::string> inputs_;
  std::vector<std::string> outputs_;
  std::vector<LogicNode> nodes_;
};

}  // namespace tr::netlist
