#include "netlist/netlist.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace tr::netlist {

Netlist::Netlist(const celllib::CellLibrary& library, std::string name)
    : library_(&library), name_(std::move(name)) {}

NetId Netlist::add_net(const std::string& net_name) {
  require(!net_name.empty(), "Netlist::add_net: empty net name");
  require(!net_index_.contains(net_name),
          "Netlist::add_net: duplicate net '" + net_name + "'");
  const NetId id = static_cast<NetId>(nets_.size());
  Net n;
  n.name = net_name;
  nets_.push_back(std::move(n));
  net_index_.emplace(net_name, id);
  return id;
}

NetId Netlist::find_net(const std::string& net_name) const {
  const auto it = net_index_.find(net_name);
  return it == net_index_.end() ? -1 : it->second;
}

NetId Netlist::ensure_net(const std::string& net_name) {
  const NetId existing = find_net(net_name);
  return existing >= 0 ? existing : add_net(net_name);
}

void Netlist::mark_primary_input(NetId id) {
  require(id >= 0 && id < net_count(), "Netlist: bad net id");
  require(nets_[static_cast<std::size_t>(id)].driver < 0,
          "Netlist: net '" + nets_[static_cast<std::size_t>(id)].name +
              "' cannot be a primary input, it has a driver");
  nets_[static_cast<std::size_t>(id)].is_primary_input = true;
}

void Netlist::mark_primary_output(NetId id) {
  require(id >= 0 && id < net_count(), "Netlist: bad net id");
  nets_[static_cast<std::size_t>(id)].is_primary_output = true;
}

GateId Netlist::add_gate(const std::string& instance_name,
                         const std::string& cell_name,
                         std::vector<NetId> inputs, NetId output) {
  const celllib::Cell& cell = library_->cell(cell_name);
  require(static_cast<int>(inputs.size()) == cell.input_count(),
          "Netlist::add_gate: '" + instance_name + "' binds " +
              std::to_string(inputs.size()) + " pins, cell " + cell_name +
              " has " + std::to_string(cell.input_count()));
  require(output >= 0 && output < net_count(),
          "Netlist::add_gate: bad output net");
  Net& out = nets_[static_cast<std::size_t>(output)];
  require(out.driver < 0 && !out.is_primary_input,
          "Netlist::add_gate: net '" + out.name + "' already driven");
  for (NetId in : inputs) {
    require(in >= 0 && in < net_count(), "Netlist::add_gate: bad input net");
    require(in != output,
            "Netlist::add_gate: '" + instance_name + "' drives its own input");
  }

  const GateId id = static_cast<GateId>(gates_.size());
  GateInst inst{instance_name, cell_name, std::move(inputs), output,
                cell.topology()};
  for (std::size_t pin = 0; pin < inst.inputs.size(); ++pin) {
    nets_[static_cast<std::size_t>(inst.inputs[pin])].fanouts.emplace_back(
        id, static_cast<int>(pin));
  }
  out.driver = id;
  gates_.push_back(std::move(inst));
  return id;
}

const Net& Netlist::net(NetId id) const {
  require(id >= 0 && id < net_count(), "Netlist::net: bad id");
  return nets_[static_cast<std::size_t>(id)];
}

const GateInst& Netlist::gate(GateId id) const {
  require(id >= 0 && id < gate_count(), "Netlist::gate: bad id");
  return gates_[static_cast<std::size_t>(id)];
}

std::vector<NetId> Netlist::primary_inputs() const {
  std::vector<NetId> out;
  for (NetId id = 0; id < net_count(); ++id) {
    if (nets_[static_cast<std::size_t>(id)].is_primary_input) out.push_back(id);
  }
  return out;
}

std::vector<NetId> Netlist::primary_outputs() const {
  std::vector<NetId> out;
  for (NetId id = 0; id < net_count(); ++id) {
    if (nets_[static_cast<std::size_t>(id)].is_primary_output) out.push_back(id);
  }
  return out;
}

void Netlist::set_config(GateId id, gategraph::GateTopology config) {
  require(id >= 0 && id < gate_count(), "Netlist::set_config: bad id");
  GateInst& inst = gates_[static_cast<std::size_t>(id)];
  require(config.output_function() == inst.config.output_function(),
          "Netlist::set_config: configuration changes the logic function of '" +
              inst.name + "'");
  inst.config = std::move(config);
}

std::vector<GateId> Netlist::topological_order() const {
  // Kahn's algorithm over gate->gate edges through nets.
  std::vector<int> pending(gates_.size(), 0);
  for (std::size_t g = 0; g < gates_.size(); ++g) {
    for (NetId in : gates_[g].inputs) {
      if (nets_[static_cast<std::size_t>(in)].driver >= 0) ++pending[g];
    }
  }
  std::vector<GateId> ready;
  for (std::size_t g = 0; g < gates_.size(); ++g) {
    if (pending[g] == 0) ready.push_back(static_cast<GateId>(g));
  }
  std::vector<GateId> order;
  order.reserve(gates_.size());
  for (std::size_t head = 0; head < ready.size(); ++head) {
    const GateId g = ready[head];
    order.push_back(g);
    const Net& out = nets_[static_cast<std::size_t>(gates_[static_cast<std::size_t>(g)].output)];
    for (const auto& [fan_gate, pin] : out.fanouts) {
      if (--pending[static_cast<std::size_t>(fan_gate)] == 0) {
        ready.push_back(fan_gate);
      }
    }
  }
  require(order.size() == gates_.size(),
          "Netlist::topological_order: combinational cycle detected");
  return order;
}

double Netlist::external_load(GateId id, const celllib::Tech& tech) const {
  const GateInst& inst = gate(id);
  const Net& out = nets_[static_cast<std::size_t>(inst.output)];
  double load = tech.c_wire;
  for (const auto& [fan_gate, pin] : out.fanouts) {
    const celllib::Cell& cell =
        library_->cell(gates_[static_cast<std::size_t>(fan_gate)].cell);
    load += cell.pin_capacitance(tech, pin);
  }
  if (out.is_primary_output) load += tech.c_wire;
  return load;
}

std::vector<bool> Netlist::evaluate(const std::vector<bool>& pi_values) const {
  const std::vector<NetId> pis = primary_inputs();
  require(pi_values.size() == pis.size(),
          "Netlist::evaluate: input arity mismatch");
  std::vector<bool> value(nets_.size(), false);
  for (std::size_t i = 0; i < pis.size(); ++i) {
    value[static_cast<std::size_t>(pis[i])] = pi_values[i];
  }
  for (GateId g : topological_order()) {
    const GateInst& inst = gates_[static_cast<std::size_t>(g)];
    std::uint64_t minterm = 0;
    for (std::size_t pin = 0; pin < inst.inputs.size(); ++pin) {
      if (value[static_cast<std::size_t>(inst.inputs[pin])]) {
        minterm |= 1ULL << pin;
      }
    }
    value[static_cast<std::size_t>(inst.output)] =
        library_->cell(inst.cell).function().value_at(minterm);
  }
  std::vector<bool> out;
  for (NetId id : primary_outputs()) {
    out.push_back(value[static_cast<std::size_t>(id)]);
  }
  return out;
}

void Netlist::validate() const {
  require(!nets_.empty(), "Netlist: no nets");
  for (const Net& n : nets_) {
    require(n.is_primary_input || n.driver >= 0,
            "Netlist: net '" + n.name + "' has no driver and is not a PI");
    require(!(n.is_primary_input && n.driver >= 0),
            "Netlist: PI net '" + n.name + "' has a driver");
  }
  bool has_po = false;
  for (const Net& n : nets_) has_po = has_po || n.is_primary_output;
  require(has_po, "Netlist: no primary outputs");
  for (const GateInst& g : gates_) {
    const celllib::Cell& cell = library_->cell(g.cell);
    require(static_cast<int>(g.inputs.size()) == cell.input_count(),
            "Netlist: gate '" + g.name + "' pin arity mismatch");
  }
  (void)topological_order();  // throws on cycles
}

}  // namespace tr::netlist
