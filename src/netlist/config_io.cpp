#include "netlist/config_io.hpp"

#include <istream>
#include <map>
#include <ostream>

#include "gategraph/sp_parse.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace tr::netlist {

void write_config_sidecar(const Netlist& netlist, std::ostream& out) {
  out << "# reordering configuration sidecar v1\n";
  out << "# model " << netlist.name() << "\n";
  for (const GateInst& gate : netlist.gates()) {
    const auto& canonical =
        netlist.library().cell(gate.cell).topology();
    if (gate.config.canonical_key() == canonical.canonical_key()) continue;
    out << netlist.net(gate.output).name << ' '
        << gate.config.canonical_key() << '\n';
  }
}

int read_config_sidecar(Netlist& netlist, std::istream& in,
                        const std::string& source_name) {
  std::map<std::string, GateId> by_output_net;
  for (GateId g = 0; g < netlist.gate_count(); ++g) {
    by_output_net.emplace(netlist.net(netlist.gate(g).output).name, g);
  }

  int applied = 0;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view body = trim(line);
    if (body.empty() || body.front() == '#') continue;
    const std::vector<std::string> tokens = split(body);
    if (tokens.size() != 2) {
      throw ParseError(source_name, line_no,
                       "expected '<instance> <config-key>'");
    }
    const auto it = by_output_net.find(tokens[0]);
    if (it == by_output_net.end()) {
      throw ParseError(source_name, line_no,
                       "no gate drives a net named '" + tokens[0] + "'");
    }
    const GateInst& gate = netlist.gate(it->second);
    const int inputs = static_cast<int>(gate.inputs.size());
    // set_config validates that the key computes the same function.
    netlist.set_config(it->second,
                       gategraph::topology_from_key(tokens[1], inputs));
    ++applied;
  }
  return applied;
}

}  // namespace tr::netlist
