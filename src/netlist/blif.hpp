#pragma once
// BLIF (Berkeley Logic Interchange Format) I/O.
//
// Two dialects are supported, matching how the MCNC benchmarks circulate:
//  * generic logic (.names blocks)  <-> LogicNetwork
//  * mapped netlists (.gate blocks) <-> Netlist (cells resolved against a
//    CellLibrary; pin syntax `pin=net`, output pin named `y`)
//
// Supported directives: .model .inputs .outputs .names .gate .end,
// '#' comments and '\' line continuations. Latch/clock directives are
// rejected: the paper's flow is purely combinational.

#include <iosfwd>
#include <string>

#include "netlist/logic_network.hpp"
#include "netlist/netlist.hpp"

namespace tr::netlist {

/// Parses a generic BLIF (.names) model. `source_name` is used in error
/// messages only.
LogicNetwork read_blif_logic(std::istream& in,
                             const std::string& source_name = "<blif>");
LogicNetwork read_blif_logic_string(const std::string& text,
                                    const std::string& source_name = "<blif>");
LogicNetwork read_blif_logic_file(const std::string& path);

/// Parses a mapped BLIF (.gate) model against `library`.
Netlist read_blif_mapped(std::istream& in, const celllib::CellLibrary& library,
                         const std::string& source_name = "<blif>");
Netlist read_blif_mapped_string(const std::string& text,
                                const celllib::CellLibrary& library,
                                const std::string& source_name = "<blif>");

/// Serialises a logic network as .names blocks (ISOP covers).
void write_blif(const LogicNetwork& network, std::ostream& out);

/// Serialises a mapped netlist as .gate lines.
void write_blif(const Netlist& netlist, std::ostream& out);

}  // namespace tr::netlist
