#pragma once
// Structural Verilog I/O for mapped netlists: one module, one cell
// instantiation per gate with named port connections (.a(net), ... ,
// .y(net)). Interchange with downstream flows; transistor orderings ride
// in the configuration sidecar (config_io.hpp), referenced from a header
// comment.
//
// The reader accepts exactly the structural subset the writer emits
// (declarations before instances, named port connections, cells resolved
// against a library), so write -> read -> write is a fixed point — the
// round-trip contract tests/test_io_formats.cpp enforces.

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace tr::netlist {

/// Writes the netlist as a structural Verilog module. Net names are
/// sanitised into Verilog identifiers (non-alphanumerics -> '_', leading
/// digit escaped); the original name is kept in a trailing comment when
/// it had to change.
void write_verilog(const Netlist& netlist, std::ostream& out);

/// Reads one structural Verilog module in the writer's subset: named
/// port connections only, every net declared (input/output/wire) before
/// use, every instantiated cell present in `library`, output pin `y`,
/// and `// tr:primary_output <net>` directive comments marking primary
/// outputs that legal Verilog cannot declare (a PI fed straight out).
/// Gate configurations start canonical (orderings live in the config
/// sidecar, not in Verilog). Throws tr::ParseError on malformed input
/// and tr::Error on semantic violations. `library` must outlive the
/// returned netlist.
Netlist read_verilog(const celllib::CellLibrary& library, std::istream& in,
                     const std::string& source_name = "<verilog>");

}  // namespace tr::netlist
