#pragma once
// Structural Verilog writer for mapped netlists: one module, one cell
// instantiation per gate with named port connections (.a(net), ... ,
// .y(net)). Interchange with downstream flows; transistor orderings ride
// in the configuration sidecar (config_io.hpp), referenced from a header
// comment.

#include <iosfwd>

#include "netlist/netlist.hpp"

namespace tr::netlist {

/// Writes the netlist as a structural Verilog module. Net names are
/// sanitised into Verilog identifiers (non-alphanumerics -> '_', leading
/// digit escaped); the original name is kept in a trailing comment when
/// it had to change.
void write_verilog(const Netlist& netlist, std::ostream& out);

}  // namespace tr::netlist
