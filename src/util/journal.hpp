#pragma once
// Crash-consistent journal entries (DESIGN.md Sec. 15.1).
//
// A journal is a directory of independent entry files, one per unit of
// durable progress. The write protocol makes each entry atomic with
// respect to power loss and SIGKILL:
//
//   1. the framed payload is written to a temp file in the same
//      directory (same filesystem, so the rename below cannot degrade
//      to a copy),
//   2. the temp file is fsync'd — the bytes are on stable storage
//      before any name points at them,
//   3. the temp file is rename(2)'d onto the final entry name — POSIX
//      guarantees the name either refers to the complete new file or
//      (crash before the rename reaches disk) does not exist,
//   4. the directory is fsync'd so the rename itself is durable.
//
// A reader therefore only ever observes an entry file that is either
// complete or detectably damaged (a torn page inside an fsync'd file is
// a hardware-level fault the checksum still catches). The entry frame:
//
//   magic "TRJL" | version:u32-LE | payload_len:u64-LE |
//   fnv1a64(payload):u64-LE | payload bytes
//
// read_entry validates every field and NEVER trusts a damaged entry:
// short header, version from the future, length mismatch in either
// direction, or a checksum mismatch all classify the entry as corrupt —
// the caller treats it as absent and redoes the work it recorded.

#include <cstdint>
#include <string>
#include <string_view>

namespace tr::util::journal {

/// On-disk frame version written by this build. Readers reject newer
/// versions (an older binary must not half-understand a newer frame).
inline constexpr std::uint32_t kFrameVersion = 1;

/// FNV-1a 64-bit over the payload bytes — the integrity check of the
/// entry frame. Stable across platforms and releases.
std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// Why an entry could not be read. Everything except `ok` means the
/// entry must be treated as absent.
enum class EntryStatus : std::uint8_t {
  ok,
  missing,           ///< no file at the path
  io_error,          ///< open/read failed (permissions, transient I/O)
  truncated_header,  ///< shorter than the fixed frame header
  bad_magic,         ///< not a journal entry file
  bad_version,       ///< written by a newer frame version
  truncated_payload, ///< payload shorter than the declared length
  trailing_bytes,    ///< payload longer than the declared length
  bad_checksum,      ///< payload bytes do not match the stored FNV-1a
};

/// Stable lowercase names ("bad_checksum"), used in warnings and tests.
const char* entry_status_name(EntryStatus status) noexcept;

struct ReadResult {
  EntryStatus status = EntryStatus::missing;
  std::string payload;  ///< filled iff status == ok
};

/// Reads and validates one entry file. Never throws on damaged input —
/// damage is a classification, not an exception (the crash the journal
/// exists to survive can tear the last entry).
ReadResult read_entry(const std::string& path);

/// Durably writes `payload` to `dir/name` via the temp-file +
/// fsync + atomic-rename protocol above. `name` must be a bare file
/// name (no '/'). Throws tr::Error (ErrorCode::resource) when any step
/// fails — a journal that cannot persist must fail loudly, silently
/// dropping durability would defeat its purpose. On failure the final
/// name is untouched (either the old entry or nothing).
void write_entry(const std::string& dir, const std::string& name,
                 std::string_view payload);

/// fsync's a directory so a completed rename inside it is durable.
/// Throws tr::Error (ErrorCode::resource) on failure.
void sync_directory(const std::string& dir);

}  // namespace tr::util::journal
