#pragma once
// A small fixed-size thread pool with one operation: parallel_for over an
// index range. Built for the gate-parallel optimizer (DESIGN.md Sec. 7.3):
// per-gate decisions are independent once signal statistics are known, so
// workers claim gate indices from a shared queue and write their results
// into disjoint slots — results are deterministic regardless of thread
// count or scheduling.
//
// Index claims take the pool mutex. That is deliberate: the unit of work
// is one whole gate (microseconds at minimum), so claim contention is
// negligible, and generation-tagged claims make late-waking workers
// provably unable to touch a newer job. parallel_for may only be called
// from one submitting thread at a time (the optimizer's main thread), and
// the calling thread participates in the work, so a pool of size 1 (or a
// single-core machine) degenerates to a plain loop.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tr::util {

class ThreadPool {
public:
  /// `threads` <= 0 selects one thread per hardware thread.
  explicit ThreadPool(int threads = 0) {
    int count = threads > 0 ? threads
                            : static_cast<int>(std::thread::hardware_concurrency());
    if (count < 1) count = 1;
    thread_count_ = count;
    workers_.reserve(static_cast<std::size_t>(count - 1));
    for (int t = 0; t + 1 < count; ++t) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
      ++generation_;
    }
    job_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const noexcept { return thread_count_; }

  /// Runs fn(i) for every i in [0, n), distributed over the pool; blocks
  /// until all calls complete. The first exception thrown by fn aborts
  /// the remaining unclaimed indices and is rethrown here.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    if (workers_.empty() || n == 1) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    std::uint64_t my_generation = 0;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      fn_ = &fn;
      total_ = n;
      next_ = 0;
      in_flight_ = 0;
      failure_ = nullptr;
      my_generation = ++generation_;
    }
    job_cv_.notify_all();
    run_share(my_generation);
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return next_ >= total_ && in_flight_ == 0; });
    if (failure_) std::rethrow_exception(failure_);
  }

private:
  /// Claims one index of job `generation`; false when the job is drained
  /// or a newer job replaced it (late-waking worker).
  bool claim(std::uint64_t generation, std::size_t& index,
             const std::function<void(std::size_t)>** fn) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (generation != generation_ || next_ >= total_) return false;
    index = next_++;
    ++in_flight_;
    *fn = fn_;
    return true;
  }

  void finish(std::uint64_t generation, std::exception_ptr error) {
    bool done = false;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (generation != generation_) return;
      if (error) {
        if (!failure_) failure_ = error;
        next_ = total_;  // abort unclaimed indices
      }
      --in_flight_;
      done = next_ >= total_ && in_flight_ == 0;
    }
    if (done) done_cv_.notify_all();
  }

  /// Claims and runs indices of job `generation` until none remain.
  void run_share(std::uint64_t generation) {
    std::size_t index = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    while (claim(generation, index, &fn)) {
      std::exception_ptr error;
      try {
        (*fn)(index);
      } catch (...) {
        error = std::current_exception();
      }
      finish(generation, error);
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        job_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
      }
      run_share(seen);
    }
  }

  int thread_count_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable job_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;

  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t total_ = 0;
  std::size_t next_ = 0;
  std::size_t in_flight_ = 0;
  std::exception_ptr failure_;
};

}  // namespace tr::util
