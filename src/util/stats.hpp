#pragma once
// Lightweight descriptive statistics used by the simulator and the
// benchmark harnesses (Welford running moments, min/max, relative change).

#include <cstddef>
#include <vector>

namespace tr {

/// Numerically stable running mean/variance accumulator (Welford).
class RunningStats {
public:
  void add(double x);

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  double max() const noexcept { return n_ > 0 ? max_ : 0.0; }
  /// Standard error of the mean; 0 when fewer than two samples.
  double sem() const noexcept;

private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentage reduction of `optimized` with respect to `baseline`:
/// 100 * (baseline - optimized) / baseline. Returns 0 when baseline == 0.
double percent_reduction(double baseline, double optimized);

/// Percentage increase of `value` with respect to `baseline`:
/// 100 * (value - baseline) / baseline. Returns 0 when baseline == 0.
double percent_increase(double baseline, double value);

/// Arithmetic mean of a vector; 0 for an empty vector.
double mean_of(const std::vector<double>& xs);

}  // namespace tr
