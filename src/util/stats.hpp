#pragma once
// Lightweight descriptive statistics used by the simulator and the
// benchmark harnesses (Welford running moments, min/max, confidence
// intervals, relative change).

#include <cstddef>
#include <vector>

namespace tr {

/// Two-sided 95% Student-t critical value for `df` degrees of freedom
/// (t such that P(|T_df| <= t) = 0.95). Exact-to-3-decimals table for
/// small df, conservative (next lower tabulated df) in between, 1.960 in
/// the normal limit. t_critical_975(0) returns 0 (no interval from one
/// sample).
double t_critical_975(std::size_t df);

/// A Monte-Carlo estimate of one scalar: sample moments over `count`
/// independent replications plus the half-width of the two-sided 95%
/// Student-t confidence interval for the mean.
struct Estimate {
  double mean = 0.0;
  double stddev = 0.0;  ///< unbiased sample standard deviation
  double sem = 0.0;     ///< standard error of the mean
  double ci95 = 0.0;    ///< 95% CI half-width: t_{.975,n-1} * sem
  std::size_t count = 0;

  /// True when `x` lies inside the 95% confidence interval.
  bool contains(double x) const {
    const double d = x - mean;
    return (d < 0 ? -d : d) <= ci95;
  }
};

/// An Estimate linearly rescaled by `factor` (e.g. energy -> power).
Estimate scaled(const Estimate& e, double factor);

/// Numerically stable running mean/variance accumulator (Welford).
class RunningStats {
public:
  void add(double x);

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  double max() const noexcept { return n_ > 0 ? max_ : 0.0; }
  /// Standard error of the mean; 0 when fewer than two samples.
  double sem() const noexcept;
  /// Half-width of the two-sided 95% Student-t confidence interval; 0
  /// when fewer than two samples.
  double ci95_half_width() const noexcept;
  /// The accumulated moments as one Estimate.
  Estimate estimate() const noexcept;

private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentage reduction of `optimized` with respect to `baseline`:
/// 100 * (baseline - optimized) / baseline. Returns 0 when baseline == 0.
double percent_reduction(double baseline, double optimized);

/// Percentage increase of `value` with respect to `baseline`:
/// 100 * (value - baseline) / baseline. Returns 0 when baseline == 0.
double percent_increase(double baseline, double value);

/// Arithmetic mean of a vector; 0 for an empty vector.
double mean_of(const std::vector<double>& xs);

}  // namespace tr
