#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace tr {

TextTable::TextTable(std::vector<std::string> header, std::vector<Align> aligns)
    : header_(std::move(header)), aligns_(std::move(aligns)) {
  require(!header_.empty(), "TextTable: header must not be empty");
  if (aligns_.empty()) {
    aligns_.assign(header_.size(), Align::right);
    aligns_[0] = Align::left;  // first column is usually a name
  }
  require(aligns_.size() == header_.size(),
          "TextTable: alignment arity must match header arity");
}

void TextTable::add_row(std::vector<std::string> cells) {
  require(cells.size() == header_.size(),
          "TextTable: row arity must match header arity");
  rows_.push_back(std::move(cells));
}

void TextTable::add_separator() { rows_.emplace_back(); }

std::size_t TextTable::row_count() const noexcept {
  std::size_t n = 0;
  for (const auto& r : rows_) {
    if (!r.empty()) ++n;
  }
  return n;
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto print_line = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      const std::size_t pad = widths[c] - cell.size();
      os << ' ';
      if (aligns_[c] == Align::right) os << std::string(pad, ' ');
      os << cell;
      if (aligns_[c] == Align::left) os << std::string(pad, ' ');
      os << " |";
    }
    os << '\n';
  };
  const auto print_rule = [&] {
    os << "+";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << '+';
    }
    os << '\n';
  };

  print_rule();
  print_line(header_);
  print_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      print_rule();
    } else {
      print_line(row);
    }
  }
  print_rule();
}

std::string TextTable::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

}  // namespace tr
