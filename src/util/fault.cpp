#include "util/fault.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <mutex>
#include <new>
#include <stdexcept>

namespace tr::util::fault {
namespace {

struct Config {
  std::string site;
  std::uint64_t nth = 1;
  FaultKind kind = FaultKind::error;
  std::optional<std::string> context;
  std::uint64_t hits = 0;
  bool fired = false;
};

// `armed` is the disarmed-fast-path gate; `config` (guarded by `mu`)
// holds the single active fault. thread_local `current_context` names
// the work unit on this thread for `@context` targeting.
std::atomic<bool> armed{false};
std::mutex mu;
Config config;
thread_local std::string current_context;

[[noreturn]] void throw_kind(FaultKind kind, const std::string& site) {
  switch (kind) {
    case FaultKind::error:
      throw FaultInjected(site);
    case FaultKind::internal:
      throw InternalError("injected internal fault at site '" + site + "'");
    case FaultKind::bad_alloc:
      throw std::bad_alloc();
    case FaultKind::runtime:
      throw std::runtime_error("injected runtime fault at site '" + site +
                               "'");
  }
  throw FaultInjected(site);
}

bool parse_kind(const std::string& text, FaultKind& kind) {
  if (text == "error") {
    kind = FaultKind::error;
  } else if (text == "internal") {
    kind = FaultKind::internal;
  } else if (text == "bad_alloc") {
    kind = FaultKind::bad_alloc;
  } else if (text == "runtime") {
    kind = FaultKind::runtime;
  } else {
    return false;
  }
  return true;
}

void arm(const std::string& site, std::uint64_t nth, FaultKind kind,
         std::optional<std::string> context) {
  const auto& registry = sites();
  require(std::find(registry.begin(), registry.end(), site) != registry.end(),
          "unknown fault site '" + site + "'");
  require(nth >= 1, "fault nth must be >= 1");
  std::lock_guard<std::mutex> lock(mu);
  require(!armed.load(std::memory_order_relaxed),
          "a fault is already armed (site '" + config.site + "')");
  config = Config{site, nth, kind, std::move(context), 0, false};
  armed.store(true, std::memory_order_relaxed);
}

}  // namespace

const std::vector<std::string>& sites() {
  static const std::vector<std::string> registry = {
      "parse.blif",           "parse.blif_mapped", "parse.verilog",
      "celllib.characterize", "opt.score",         "sim.replicate",
      "batch.circuit",        "server.request",
  };
  return registry;
}

bool enabled() noexcept { return armed.load(std::memory_order_relaxed); }

void check(const char* site) {
  if (!enabled()) return;
  FaultKind kind;
  {
    std::lock_guard<std::mutex> lock(mu);
    if (!armed.load(std::memory_order_relaxed)) return;
    if (config.site != site) return;
    if (config.context && *config.context != current_context) return;
    ++config.hits;
    if (config.hits != config.nth || config.fired) return;
    config.fired = true;
    kind = config.kind;
  }
  // Throw outside the lock so the unwinding path can re-enter check().
  throw_kind(kind, site);
}

ScopedContext::ScopedContext(const std::string& context)
    : previous_(std::move(current_context)) {
  current_context = context;
}

ScopedContext::~ScopedContext() { current_context = std::move(previous_); }

ScopedFault::ScopedFault(const std::string& site, std::uint64_t nth,
                         FaultKind kind, std::optional<std::string> context) {
  arm(site, nth, kind, std::move(context));
}

ScopedFault::~ScopedFault() { clear(); }

std::uint64_t ScopedFault::hits() const {
  std::lock_guard<std::mutex> lock(mu);
  return config.hits;
}

bool ScopedFault::fired() const {
  std::lock_guard<std::mutex> lock(mu);
  return config.fired;
}

bool install_from_env() {
  const char* env = std::getenv("TR_FAULT");
  if (env == nullptr || *env == '\0') return false;
  std::string spec = env;

  // site[:nth][:kind][@context]
  std::optional<std::string> context;
  if (auto at = spec.find('@'); at != std::string::npos) {
    context = spec.substr(at + 1);
    spec.resize(at);
  }
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    auto colon = spec.find(':', start);
    parts.push_back(spec.substr(start, colon - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  require(!parts.empty() && !parts[0].empty(),
          "TR_FAULT: expected site[:nth][:kind][@context], got '" +
              std::string(env) + "'");

  std::uint64_t nth = 1;
  FaultKind kind = FaultKind::error;
  for (std::size_t i = 1; i < parts.size(); ++i) {
    const std::string& part = parts[i];
    if (!part.empty() &&
        std::all_of(part.begin(), part.end(),
                    [](unsigned char c) { return std::isdigit(c); })) {
      nth = std::stoull(part);
    } else if (!parse_kind(part, kind)) {
      throw Error("TR_FAULT: unknown field '" + part +
                  "' (expected a count or error|internal|bad_alloc|runtime)");
    }
  }
  arm(parts[0], nth, kind, std::move(context));
  return true;
}

void clear() {
  std::lock_guard<std::mutex> lock(mu);
  armed.store(false, std::memory_order_relaxed);
  config = Config{};
}

}  // namespace tr::util::fault
