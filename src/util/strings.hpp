#pragma once
// Small string helpers shared by the BLIF parser and report printers.

#include <string>
#include <string_view>
#include <vector>

namespace tr {

/// Splits on any run of the characters in `delims`; no empty tokens.
std::vector<std::string> split(std::string_view text,
                               std::string_view delims = " \t");

/// Removes leading and trailing whitespace.
std::string_view trim(std::string_view text);

/// ASCII lower-casing (cell and net names are ASCII).
std::string to_lower(std::string_view text);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Fixed-point formatting with `digits` decimals (printf %.*f).
std::string format_fixed(double value, int digits);

/// Joins the items with `sep` between them.
std::string join(const std::vector<std::string>& items, std::string_view sep);

}  // namespace tr
