#pragma once
// ASCII table printer used by every benchmark harness to emit the
// paper-style tables (Table 1(b), Table 2, Table 3) with aligned columns.

#include <iosfwd>
#include <string>
#include <vector>

namespace tr {

/// Column alignment within a TextTable.
enum class Align { left, right };

/// Builds and prints a fixed-column ASCII table.
///
/// Usage:
///   TextTable t({"circuit", "G", "M", "S", "D"});
///   t.add_row({"alu2", "401", "5.4", "4.5", "5.5"});
///   t.print(std::cout);
class TextTable {
public:
  explicit TextTable(std::vector<std::string> header,
                     std::vector<Align> aligns = {});

  /// Appends a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator line.
  void add_separator();

  std::size_t row_count() const noexcept;

  void print(std::ostream& os) const;
  std::string to_string() const;

private:
  std::vector<std::string> header_;
  std::vector<Align> aligns_;
  // A separator is encoded as an empty row.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tr
