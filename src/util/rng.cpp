#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace tr {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // xoshiro must not start from the all-zero state.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  TR_ASSERT(bound > 0);
  // Lemire's nearly-divisionless method with rejection.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    const unsigned __int128 m =
        static_cast<unsigned __int128>(r) * static_cast<unsigned __int128>(bound);
    if (static_cast<std::uint64_t>(m) >= threshold) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

double Rng::next_double() {
  // 53 top bits -> [0,1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  TR_ASSERT(lo <= hi);
  return lo + (hi - lo) * next_double();
}

bool Rng::bernoulli(double p) { return next_double() < p; }

double Rng::exponential(double rate) {
  TR_ASSERT(rate > 0.0);
  // Inversion; 1 - u avoids log(0).
  return -std::log(1.0 - next_double()) / rate;
}

std::uint64_t Rng::derive_stream(std::uint64_t seed, std::uint64_t stream) {
  // Two full splitmix64 rounds over a mix of both words. A single round
  // of either word alone would leave (seed, stream) and (seed', stream')
  // collisions trivially constructible; after mixing the first round's
  // output with an odd-multiplied stream index, any colliding pair must
  // invert splitmix64.
  std::uint64_t x = seed;
  std::uint64_t h = splitmix64(x);
  x = h ^ ((stream + 1) * 0xd1b54a32d192ed03ULL);
  return splitmix64(x);
}

void Rng::derive_streams(std::uint64_t seed, std::uint64_t first_stream,
                         std::uint64_t* out, std::size_t count) {
  // Identical function to derive_stream(seed, first_stream + i): the
  // first splitmix64 round depends only on the seed, so it is hoisted
  // out of the loop and only the per-stream round runs per entry.
  std::uint64_t x = seed;
  const std::uint64_t h = splitmix64(x);
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t y = h ^ ((first_stream + i + 1) * 0xd1b54a32d192ed03ULL);
    out[i] = splitmix64(y);
  }
}

Rng Rng::split() {
  Rng child(0);
  child.state_[0] = next_u64();
  child.state_[1] = next_u64();
  child.state_[2] = next_u64();
  child.state_[3] = next_u64();
  if (child.state_[0] == 0 && child.state_[1] == 0 && child.state_[2] == 0 &&
      child.state_[3] == 0) {
    child.state_[0] = 1;
  }
  return child;
}

}  // namespace tr
