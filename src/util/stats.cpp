#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace tr {

double t_critical_975(std::size_t df) {
  // Standard two-sided 95% table. Above df = 30 the value is taken from
  // the largest tabulated df not exceeding the request, which
  // overestimates t slightly — confidence intervals only get wider.
  static constexpr double small_df[] = {
      0.0,                                                          // df 0
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,      // 1-8
      2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,      // 9-16
      2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,      // 17-24
      2.060,  2.056, 2.052, 2.048, 2.045, 2.042};                   // 25-30
  if (df <= 30) return small_df[df];
  if (df < 40) return 2.042;
  if (df < 60) return 2.021;
  if (df < 120) return 2.000;
  return 1.960;
}

Estimate scaled(const Estimate& e, double factor) {
  Estimate out = e;
  const double mag = factor < 0 ? -factor : factor;
  out.mean *= factor;
  out.stddev *= mag;
  out.sem *= mag;
  out.ci95 *= mag;
  return out;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::sem() const noexcept {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double RunningStats::ci95_half_width() const noexcept {
  if (n_ < 2) return 0.0;
  return t_critical_975(n_ - 1) * sem();
}

Estimate RunningStats::estimate() const noexcept {
  Estimate e;
  e.mean = mean();
  e.stddev = stddev();
  e.sem = sem();
  e.ci95 = ci95_half_width();
  e.count = n_;
  return e;
}

double percent_reduction(double baseline, double optimized) {
  if (baseline == 0.0) return 0.0;
  return 100.0 * (baseline - optimized) / baseline;
}

double percent_increase(double baseline, double value) {
  if (baseline == 0.0) return 0.0;
  return 100.0 * (value - baseline) / baseline;
}

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

}  // namespace tr
