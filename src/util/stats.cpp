#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace tr {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::sem() const noexcept {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double percent_reduction(double baseline, double optimized) {
  if (baseline == 0.0) return 0.0;
  return 100.0 * (baseline - optimized) / baseline;
}

double percent_increase(double baseline, double value) {
  if (baseline == 0.0) return 0.0;
  return 100.0 * (value - baseline) / baseline;
}

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

}  // namespace tr
