#include "util/strings.hpp"

#include <cctype>
#include <cstdio>

namespace tr {

std::vector<std::string> split(std::string_view text, std::string_view delims) {
  std::vector<std::string> tokens;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t start = text.find_first_not_of(delims, pos);
    if (start == std::string_view::npos) break;
    std::size_t end = text.find_first_of(delims, start);
    if (end == std::string_view::npos) end = text.size();
    tokens.emplace_back(text.substr(start, end - start));
    pos = end;
  }
  return tokens;
}

std::string_view trim(std::string_view text) {
  const char* ws = " \t\r\n";
  const std::size_t first = text.find_first_not_of(ws);
  if (first == std::string_view::npos) return {};
  const std::size_t last = text.find_last_not_of(ws);
  return text.substr(first, last - first + 1);
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::string format_fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

}  // namespace tr
