#pragma once
// Error handling for the transistor-reordering library.
//
// All recoverable failures (malformed netlists, unknown cells, invalid
// arguments at API boundaries) throw tr::Error. Programming errors inside
// the library use TR_ASSERT, which throws tr::InternalError so that tests
// can exercise failure paths without aborting the process.
//
// Every tr::Error carries a machine-readable ErrorCode and a site chain
// (DESIGN.md Sec. 12.1): boundaries append their site name as the
// exception unwinds, so a containment layer (opt::BatchOptimizer, the
// tr_opt CLI) can report *where* in the pipeline a circuit failed —
// "optimize/score" — without parsing the message. The code, not the C++
// type, is the classification contract: containment layers map codes to
// report fields and exit codes.

#include <source_location>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace tr {

/// Failure classification carried by every tr::Error (DESIGN.md
/// Sec. 12.1). Containment boundaries switch on the code — never on the
/// exception's dynamic type — when building error records and exit
/// codes, so foreign exceptions can be folded into the same taxonomy.
enum class ErrorCode : std::uint8_t {
  invalid_argument,  ///< bad user-supplied data at an API boundary
  parse,             ///< malformed netlist/BLIF/Verilog input
  internal,          ///< violated invariant (library bug, TR_ASSERT)
  cancelled,         ///< cooperative cancellation / deadline exceeded
  fault_injected,    ///< util::fault test harness injection
  resource,          ///< allocation failure (mapped from std::bad_alloc)
  unknown,           ///< foreign exception folded in at a boundary
  disconnect,        ///< peer went away / transport failure (sockets)
};

/// Stable lowercase names, the JSON/report encoding of ErrorCode.
const char* error_code_name(ErrorCode code) noexcept;

/// Retry classification (DESIGN.md Sec. 15.3): true when the same
/// request may legitimately succeed on a later attempt, so a resilient
/// client should back off and retry; false when the failure is a
/// property of the request itself (or a bug) and retrying can only burn
/// time repeating it.
///
///   retryable:      cancelled (the caller's budget, not the input),
///                   resource (allocation/queue pressure is transient),
///                   disconnect (the daemon may come back),
///                   fault_injected (the harness fires on one passage —
///                   chaos drills retry straight through it)
///   not retryable:  invalid_argument, parse (deterministic rejections
///                   of the input), internal (a bug does not heal),
///                   unknown (unclassified — retrying blind is worse
///                   than surfacing it)
constexpr bool is_retryable(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::cancelled:
    case ErrorCode::resource:
    case ErrorCode::disconnect:
    case ErrorCode::fault_injected:
      return true;
    case ErrorCode::invalid_argument:
    case ErrorCode::parse:
    case ErrorCode::internal:
    case ErrorCode::unknown:
      return false;
  }
  return false;
}

/// Base class for all exceptions thrown by the library.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what_arg,
                 ErrorCode code = ErrorCode::invalid_argument)
      : std::runtime_error(what_arg), code_(code) {}

  ErrorCode code() const noexcept { return code_; }

  /// Appends a boundary name to the site chain as the exception unwinds
  /// (innermost site first); see with_error_site.
  void add_site(std::string site) { sites_.push_back(std::move(site)); }

  /// The recorded boundary names, innermost first.
  const std::vector<std::string>& sites() const noexcept { return sites_; }

  /// The chain rendered outermost-first as a path ("optimize/score");
  /// empty when no boundary annotated the error.
  std::string site_chain() const {
    std::string chain;
    for (auto it = sites_.rbegin(); it != sites_.rend(); ++it) {
      if (!chain.empty()) chain += '/';
      chain += *it;
    }
    return chain;
  }

private:
  ErrorCode code_;
  std::vector<std::string> sites_;
};

/// Thrown when parsing a netlist/BLIF file fails.
class ParseError : public Error {
public:
  ParseError(const std::string& file, int line, const std::string& message)
      : Error(file + ":" + std::to_string(line) + ": " + message,
              ErrorCode::parse),
        file_(file),
        line_(line) {}

  const std::string& file() const noexcept { return file_; }
  int line() const noexcept { return line_; }

private:
  std::string file_;
  int line_;
};

/// Thrown when an internal invariant is violated (library bug).
class InternalError : public Error {
public:
  explicit InternalError(const std::string& what_arg)
      : Error(what_arg, ErrorCode::internal) {}
};

inline const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::invalid_argument:
      return "invalid_argument";
    case ErrorCode::parse:
      return "parse";
    case ErrorCode::internal:
      return "internal";
    case ErrorCode::cancelled:
      return "cancelled";
    case ErrorCode::fault_injected:
      return "fault_injected";
    case ErrorCode::resource:
      return "resource";
    case ErrorCode::unknown:
      return "unknown";
    case ErrorCode::disconnect:
      return "disconnect";
  }
  return "unknown";
}

/// Runs `f()`, appending `site` to the chain of any tr::Error that
/// escapes (rethrown unchanged otherwise). Free on the success path.
template <typename F>
decltype(auto) with_error_site(const char* site, F&& f) {
  try {
    return std::forward<F>(f)();
  } catch (Error& e) {
    e.add_site(site);
    throw;
  }
}

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr,
                                     const std::source_location& loc) {
  throw InternalError(std::string("internal invariant violated: ") + expr +
                      " at " + loc.file_name() + ":" +
                      std::to_string(loc.line()) + " (" +
                      loc.function_name() + ")");
}
}  // namespace detail

/// Checks an internal invariant; throws InternalError when violated.
/// Always enabled (the checks are cheap relative to the algorithms).
#define TR_ASSERT(expr)                                                  \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::tr::detail::assert_fail(#expr, std::source_location::current()); \
    }                                                                    \
  } while (false)

/// Throws tr::Error with the given message if `cond` is false. Used for
/// validating user-supplied data at API boundaries.
inline void require(bool cond, const std::string& message) {
  if (!cond) throw Error(message);
}

}  // namespace tr
