#pragma once
// Error handling for the transistor-reordering library.
//
// All recoverable failures (malformed netlists, unknown cells, invalid
// arguments at API boundaries) throw tr::Error. Programming errors inside
// the library use TR_ASSERT, which throws tr::InternalError so that tests
// can exercise failure paths without aborting the process.

#include <source_location>
#include <stdexcept>
#include <string>

namespace tr {

/// Base class for all exceptions thrown by the library.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

/// Thrown when parsing a netlist/BLIF file fails.
class ParseError : public Error {
public:
  ParseError(const std::string& file, int line, const std::string& message)
      : Error(file + ":" + std::to_string(line) + ": " + message),
        file_(file),
        line_(line) {}

  const std::string& file() const noexcept { return file_; }
  int line() const noexcept { return line_; }

private:
  std::string file_;
  int line_;
};

/// Thrown when an internal invariant is violated (library bug).
class InternalError : public Error {
public:
  using Error::Error;
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr,
                                     const std::source_location& loc) {
  throw InternalError(std::string("internal invariant violated: ") + expr +
                      " at " + loc.file_name() + ":" +
                      std::to_string(loc.line()) + " (" +
                      loc.function_name() + ")");
}
}  // namespace detail

/// Checks an internal invariant; throws InternalError when violated.
/// Always enabled (the checks are cheap relative to the algorithms).
#define TR_ASSERT(expr)                                                  \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::tr::detail::assert_fail(#expr, std::source_location::current()); \
    }                                                                    \
  } while (false)

/// Throws tr::Error with the given message if `cond` is false. Used for
/// validating user-supplied data at API boundaries.
inline void require(bool cond, const std::string& message) {
  if (!cond) throw Error(message);
}

}  // namespace tr
