#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "util/error.hpp"

namespace tr::util {

std::string json_double(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[64];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof buffer, value);
  TR_ASSERT(ec == std::errc());
  std::string text(buffer, end);
  // JSON has no bare "1e+30" exponent restriction, but shortest-form
  // integers ("42") are valid JSON numbers already; nothing to fix up.
  return text;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonWriter::JsonWriter(std::ostream& out) : out_(&out) {}

void JsonWriter::write_indent() {
  for (std::size_t i = 0; i < stack_.size(); ++i) *out_ << "  ";
}

void JsonWriter::prepare_value() {
  if (stack_.empty()) return;  // root value
  if (key_pending_) {
    key_pending_ = false;
    return;  // the key already wrote the separator and indent
  }
  TR_ASSERT(stack_.back() == Frame::array);
  if (has_entries_.back()) *out_ << ',';
  *out_ << '\n';
  write_indent();
  has_entries_.back() = true;
}

void JsonWriter::key(std::string_view name) {
  TR_ASSERT(!stack_.empty() && stack_.back() == Frame::object);
  TR_ASSERT(!key_pending_);
  if (has_entries_.back()) *out_ << ',';
  *out_ << '\n';
  write_indent();
  *out_ << '"' << json_escape(name) << "\": ";
  has_entries_.back() = true;
  key_pending_ = true;
}

void JsonWriter::begin_object() {
  prepare_value();
  *out_ << '{';
  stack_.push_back(Frame::object);
  has_entries_.push_back(false);
}

void JsonWriter::end_object() {
  TR_ASSERT(!stack_.empty() && stack_.back() == Frame::object);
  TR_ASSERT(!key_pending_);
  const bool had_entries = has_entries_.back();
  stack_.pop_back();
  has_entries_.pop_back();
  if (had_entries) {
    *out_ << '\n';
    write_indent();
  }
  *out_ << '}';
  if (stack_.empty()) *out_ << '\n';
}

void JsonWriter::begin_array() {
  prepare_value();
  *out_ << '[';
  stack_.push_back(Frame::array);
  has_entries_.push_back(false);
}

void JsonWriter::end_array() {
  TR_ASSERT(!stack_.empty() && stack_.back() == Frame::array);
  TR_ASSERT(!key_pending_);
  const bool had_entries = has_entries_.back();
  stack_.pop_back();
  has_entries_.pop_back();
  if (had_entries) {
    *out_ << '\n';
    write_indent();
  }
  *out_ << ']';
  if (stack_.empty()) *out_ << '\n';
}

void JsonWriter::value(std::string_view text) {
  prepare_value();
  *out_ << '"' << json_escape(text) << '"';
}

void JsonWriter::value(double number) {
  prepare_value();
  *out_ << json_double(number);
}

void JsonWriter::value(std::int64_t number) {
  prepare_value();
  *out_ << number;
}

void JsonWriter::value(std::uint64_t number) {
  prepare_value();
  *out_ << number;
}

void JsonWriter::value(bool flag) {
  prepare_value();
  *out_ << (flag ? "true" : "false");
}

void JsonWriter::null_value() {
  prepare_value();
  *out_ << "null";
}

// ---------------------------------------------------------------------------
// Parser

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind != Kind::object) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

bool JsonValue::as_bool(const std::string& what) const {
  require(kind == Kind::boolean, what + " must be true or false");
  return boolean;
}

double JsonValue::as_double(const std::string& what) const {
  require(kind == Kind::number, what + " must be a number");
  return number;
}

std::int64_t JsonValue::as_i64(const std::string& what) const {
  require(kind == Kind::number && has_i64, what + " must be an integer");
  return i64;
}

std::uint64_t JsonValue::as_u64(const std::string& what) const {
  require(kind == Kind::number && has_u64,
          what + " must be a non-negative integer");
  return u64;
}

const std::string& JsonValue::as_string(const std::string& what) const {
  require(kind == Kind::string, what + " must be a string");
  return string;
}

namespace {

/// Recursive-descent parser over a bounded view. Offsets in diagnostics
/// are byte offsets into the document, stable enough to pin in tests.
class JsonParser {
public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing content after JSON document");
    return value;
  }

private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& message) const {
    throw Error("json: offset " + std::to_string(pos_) + ": " + message,
                ErrorCode::parse);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + text_[pos_] + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    if (++depth_ > kMaxDepth) fail("document nested deeper than 64 levels");
    const char c = peek();
    JsonValue value;
    switch (c) {
      case '{': value = parse_object(); break;
      case '[': value = parse_array(); break;
      case '"':
        value.kind = JsonValue::Kind::string;
        value.string = parse_string();
        break;
      case 't':
        if (!consume_literal("true")) fail("expected a JSON value");
        value.kind = JsonValue::Kind::boolean;
        value.boolean = true;
        break;
      case 'f':
        if (!consume_literal("false")) fail("expected a JSON value");
        value.kind = JsonValue::Kind::boolean;
        value.boolean = false;
        break;
      case 'n':
        if (!consume_literal("null")) fail("expected a JSON value");
        value.kind = JsonValue::Kind::null;
        break;
      default:
        if (c == '-' || (c >= '0' && c <= '9')) {
          value = parse_number();
        } else {
          fail("expected a JSON value");
        }
    }
    --depth_;
    return value;
  }

  JsonValue parse_object() {
    JsonValue value;
    value.kind = JsonValue::Kind::object;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    for (;;) {
      if (peek() != '"') fail("expected an object key string");
      std::string key = parse_string();
      for (const auto& [existing, ignored] : value.object) {
        if (existing == key) fail("duplicate object key '" + key + "'");
      }
      expect(':');
      value.object.emplace_back(std::move(key), parse_value());
      const char next = peek();
      ++pos_;
      if (next == '}') return value;
      if (next != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    JsonValue value;
    value.kind = JsonValue::Kind::array;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    for (;;) {
      value.array.push_back(parse_value());
      const char next = peek();
      ++pos_;
      if (next == ']') return value;
      if (next != ',') fail("expected ',' or ']' in array");
    }
  }

  unsigned parse_hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) fail("unexpected end of input in \\u escape");
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid hex digit in \\u escape");
      }
    }
    return code;
  }

  void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape sequence");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = parse_hex4();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: require the paired low surrogate.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail("unpaired UTF-16 surrogate in \\u escape");
            }
            pos_ += 2;
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) {
              fail("unpaired UTF-16 surrogate in \\u escape");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired UTF-16 surrogate in \\u escape");
          }
          append_utf8(out, code);
          break;
        }
        default:
          fail("invalid escape sequence");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
      pos_ = start;
      fail("invalid number");
    }
    // Leading zeros are invalid JSON ("01"), a single zero is fine.
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
        text_[pos_ + 1] >= '0' && text_[pos_ + 1] <= '9') {
      fail("invalid number (leading zero)");
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        fail("invalid number (missing fraction digits)");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        fail("invalid number (missing exponent digits)");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }

    const std::string_view lexeme = text_.substr(start, pos_ - start);
    JsonValue value;
    value.kind = JsonValue::Kind::number;
    {
      const auto [end, ec] = std::from_chars(
          lexeme.data(), lexeme.data() + lexeme.size(), value.number);
      if (ec != std::errc() || end != lexeme.data() + lexeme.size()) {
        // from_chars overflows to ERANGE for huge exponents; JSON allows
        // them but a request surface has no use for 1e999.
        fail("number out of double range");
      }
    }
    if (integral) {
      {
        std::int64_t parsed = 0;
        const auto [end, ec] = std::from_chars(
            lexeme.data(), lexeme.data() + lexeme.size(), parsed);
        if (ec == std::errc() && end == lexeme.data() + lexeme.size()) {
          value.i64 = parsed;
          value.has_i64 = true;
        }
      }
      if (lexeme.front() != '-') {
        std::uint64_t parsed = 0;
        const auto [end, ec] = std::from_chars(
            lexeme.data(), lexeme.data() + lexeme.size(), parsed);
        if (ec == std::errc() && end == lexeme.data() + lexeme.size()) {
          value.u64 = parsed;
          value.has_u64 = true;
        }
      }
    }
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

JsonValue json_parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

}  // namespace tr::util
