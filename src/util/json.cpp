#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "util/error.hpp"

namespace tr::util {

std::string json_double(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[64];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof buffer, value);
  TR_ASSERT(ec == std::errc());
  std::string text(buffer, end);
  // JSON has no bare "1e+30" exponent restriction, but shortest-form
  // integers ("42") are valid JSON numbers already; nothing to fix up.
  return text;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonWriter::JsonWriter(std::ostream& out) : out_(&out) {}

void JsonWriter::write_indent() {
  for (std::size_t i = 0; i < stack_.size(); ++i) *out_ << "  ";
}

void JsonWriter::prepare_value() {
  if (stack_.empty()) return;  // root value
  if (key_pending_) {
    key_pending_ = false;
    return;  // the key already wrote the separator and indent
  }
  TR_ASSERT(stack_.back() == Frame::array);
  if (has_entries_.back()) *out_ << ',';
  *out_ << '\n';
  write_indent();
  has_entries_.back() = true;
}

void JsonWriter::key(std::string_view name) {
  TR_ASSERT(!stack_.empty() && stack_.back() == Frame::object);
  TR_ASSERT(!key_pending_);
  if (has_entries_.back()) *out_ << ',';
  *out_ << '\n';
  write_indent();
  *out_ << '"' << json_escape(name) << "\": ";
  has_entries_.back() = true;
  key_pending_ = true;
}

void JsonWriter::begin_object() {
  prepare_value();
  *out_ << '{';
  stack_.push_back(Frame::object);
  has_entries_.push_back(false);
}

void JsonWriter::end_object() {
  TR_ASSERT(!stack_.empty() && stack_.back() == Frame::object);
  TR_ASSERT(!key_pending_);
  const bool had_entries = has_entries_.back();
  stack_.pop_back();
  has_entries_.pop_back();
  if (had_entries) {
    *out_ << '\n';
    write_indent();
  }
  *out_ << '}';
  if (stack_.empty()) *out_ << '\n';
}

void JsonWriter::begin_array() {
  prepare_value();
  *out_ << '[';
  stack_.push_back(Frame::array);
  has_entries_.push_back(false);
}

void JsonWriter::end_array() {
  TR_ASSERT(!stack_.empty() && stack_.back() == Frame::array);
  TR_ASSERT(!key_pending_);
  const bool had_entries = has_entries_.back();
  stack_.pop_back();
  has_entries_.pop_back();
  if (had_entries) {
    *out_ << '\n';
    write_indent();
  }
  *out_ << ']';
  if (stack_.empty()) *out_ << '\n';
}

void JsonWriter::value(std::string_view text) {
  prepare_value();
  *out_ << '"' << json_escape(text) << '"';
}

void JsonWriter::value(double number) {
  prepare_value();
  *out_ << json_double(number);
}

void JsonWriter::value(std::int64_t number) {
  prepare_value();
  *out_ << number;
}

void JsonWriter::value(std::uint64_t number) {
  prepare_value();
  *out_ << number;
}

void JsonWriter::value(bool flag) {
  prepare_value();
  *out_ << (flag ? "true" : "false");
}

void JsonWriter::null_value() {
  prepare_value();
  *out_ << "null";
}

}  // namespace tr::util
