#pragma once
// Deterministic fault injection (DESIGN.md Sec. 12.4).
//
// Recovery paths are worthless untested. This harness plants named
// injection sites at the pipeline boundaries (parse, characterize,
// score, simulate, batch worker); a test — or `TR_FAULT=...` in the
// environment — arms exactly one site, and the nth passage through it
// throws a chosen exception kind. Everything downstream (BatchOptimizer
// containment, ThreadPool propagation, tr_opt exit codes) is then
// exercised for real.
//
// Determinism under parallelism: passage counting across worker threads
// is scheduling-dependent, so faults can instead be scoped to a
// *context* — a thread-local string the batch worker sets to the
// circuit name (ScopedContext). `site @ context` targeting fires for
// exactly one circuit regardless of jobs/threads. Plain nth-based
// targeting is for serial paths (CLI loads, threads=1 runs).
//
// The disarmed fast path is one relaxed atomic load; sites stay in
// release builds.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace tr::util::fault {

/// Thrown by an armed site with kind FaultKind::error. Carries
/// ErrorCode::fault_injected and the site name in the site chain.
class FaultInjected : public Error {
public:
  explicit FaultInjected(const std::string& site)
      : Error("injected fault at site '" + site + "'",
              ErrorCode::fault_injected) {
    add_site(site);
  }
};

/// What an armed site throws when it fires.
enum class FaultKind : std::uint8_t {
  error,      ///< FaultInjected (a tr::Error) — the default
  internal,   ///< tr::InternalError, as if TR_ASSERT fired
  bad_alloc,  ///< std::bad_alloc, as if an allocation failed
  runtime,    ///< plain std::runtime_error (foreign exception)
};

/// The fixed registry of injection sites. Arming a site not in this
/// list throws tr::Error — a typo'd TR_FAULT must not silently no-op.
const std::vector<std::string>& sites();

/// True while any fault is armed. One relaxed atomic load; hot call
/// sites use `if (enabled()) check(site);`.
bool enabled() noexcept;

/// A registered injection site. No-op unless a fault is armed for
/// `site` (and its context filter, if any, matches the current
/// ScopedContext); the nth matching passage throws.
void check(const char* site);

/// Names the work unit on this thread (e.g. the circuit a batch worker
/// is processing) so faults can target it deterministically. The
/// context is thread-local: it does not follow work handed to nested
/// pool workers.
class ScopedContext {
public:
  explicit ScopedContext(const std::string& context);
  ~ScopedContext();

  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

private:
  std::string previous_;
};

/// RAII arming of one fault. At most one fault is armed at a time
/// (tests serialise on this); destruction disarms even if it never
/// fired.
class ScopedFault {
public:
  explicit ScopedFault(const std::string& site, std::uint64_t nth = 1,
                       FaultKind kind = FaultKind::error,
                       std::optional<std::string> context = std::nullopt);
  ~ScopedFault();

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  /// Matching passages seen so far / whether the fault has thrown.
  std::uint64_t hits() const;
  bool fired() const;
};

/// Arms a fault from `TR_FAULT=site[:nth][:kind][@context]` if set;
/// returns whether one was armed. The fault stays armed for the
/// process lifetime (CLI use). kind: error|internal|bad_alloc|runtime.
bool install_from_env();

/// Disarms any armed fault (test teardown safety net).
void clear();

}  // namespace tr::util::fault
