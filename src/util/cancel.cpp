#include "util/cancel.hpp"

#include <cmath>

namespace tr::util {

CancellationToken CancellationToken::cancellable() {
  CancellationToken token;
  token.state_ = std::make_shared<State>();
  return token;
}

CancellationToken CancellationToken::with_deadline_ms(double ms) {
  // A NaN deadline would never latch (every clock comparison is false)
  // and an infinite one silently degrades to "no deadline" — both are
  // caller bugs, so fail loudly instead of arming a token that can
  // never fire (ISSUE 8: a daemon must not accept a deadline it cannot
  // enforce).
  require(std::isfinite(ms),
          "CancellationToken: deadline must be finite, got " +
              std::to_string(ms) + " ms");
  CancellationToken token = cancellable();
  token.state_->has_deadline = true;
  token.state_->deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(ms));
  return token;
}

void CancellationToken::request_cancel() const noexcept {
  if (state_ != nullptr) {
    state_->cancelled.store(true, std::memory_order_relaxed);
  }
}

bool CancellationToken::should_cancel() const noexcept {
  if (state_ == nullptr) return false;
  if (state_->cancelled.load(std::memory_order_relaxed)) return true;
  // Latch an expired deadline into the flag so later polls skip the
  // clock read (the flag is monotone: checkpoints never disagree).
  if (state_->has_deadline &&
      std::chrono::steady_clock::now() >= state_->deadline) {
    state_->cancelled.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

}  // namespace tr::util
