#include "util/journal.hpp"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define TR_JOURNAL_POSIX 1
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace tr::util::journal {

namespace {

constexpr char kMagic[4] = {'T', 'R', 'J', 'L'};
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8;

void put_u32(std::string& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xffu));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xffu));
  }
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

[[noreturn]] void fail(const std::string& what) {
  throw Error("journal: " + what + ": " + std::strerror(errno),
              ErrorCode::resource);
}

}  // namespace

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

const char* entry_status_name(EntryStatus status) noexcept {
  switch (status) {
    case EntryStatus::ok:
      return "ok";
    case EntryStatus::missing:
      return "missing";
    case EntryStatus::io_error:
      return "io_error";
    case EntryStatus::truncated_header:
      return "truncated_header";
    case EntryStatus::bad_magic:
      return "bad_magic";
    case EntryStatus::bad_version:
      return "bad_version";
    case EntryStatus::truncated_payload:
      return "truncated_payload";
    case EntryStatus::trailing_bytes:
      return "trailing_bytes";
    case EntryStatus::bad_checksum:
      return "bad_checksum";
  }
  return "io_error";
}

ReadResult read_entry(const std::string& path) {
  ReadResult result;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    // Absence is the common crash-window case (the rename never
    // happened); anything else is an I/O problem worth distinguishing.
    std::error_code ec;
    result.status = std::filesystem::exists(path, ec)
                        ? EntryStatus::io_error
                        : EntryStatus::missing;
    return result;
  }

  std::string bytes;
  {
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) {
      result.status = EntryStatus::io_error;
      return result;
    }
    bytes = std::move(buffer).str();
  }

  if (bytes.size() < kHeaderBytes) {
    result.status = EntryStatus::truncated_header;
    return result;
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    result.status = EntryStatus::bad_magic;
    return result;
  }
  const std::uint32_t version = get_u32(bytes.data() + 4);
  if (version > kFrameVersion) {
    result.status = EntryStatus::bad_version;
    return result;
  }
  const std::uint64_t declared = get_u64(bytes.data() + 8);
  const std::uint64_t checksum = get_u64(bytes.data() + 16);
  const std::uint64_t actual = bytes.size() - kHeaderBytes;
  if (actual < declared) {
    result.status = EntryStatus::truncated_payload;
    return result;
  }
  if (actual > declared) {
    result.status = EntryStatus::trailing_bytes;
    return result;
  }
  const std::string_view payload(bytes.data() + kHeaderBytes,
                                 static_cast<std::size_t>(declared));
  if (fnv1a64(payload) != checksum) {
    result.status = EntryStatus::bad_checksum;
    return result;
  }
  result.status = EntryStatus::ok;
  result.payload.assign(payload);
  return result;
}

#ifdef TR_JOURNAL_POSIX

void write_entry(const std::string& dir, const std::string& name,
                 std::string_view payload) {
  require(name.find('/') == std::string::npos,
          "journal: entry name '" + name + "' must not contain '/'");

  std::string frame;
  frame.reserve(kHeaderBytes + payload.size());
  frame.append(kMagic, sizeof(kMagic));
  put_u32(frame, kFrameVersion);
  put_u64(frame, payload.size());
  put_u64(frame, fnv1a64(payload));
  frame.append(payload);

  // The temp name carries the pid so two processes journaling into the
  // same directory (user error, but survivable) cannot tear each
  // other's in-flight writes; the final rename still serialises them.
  const std::string temp_path =
      dir + "/." + name + ".tmp." + std::to_string(::getpid());
  const std::string final_path = dir + "/" + name;

  const int fd = ::open(temp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                        0644);
  if (fd < 0) fail("cannot create temp entry '" + temp_path + "'");

  std::size_t written = 0;
  while (written < frame.size()) {
    const ssize_t n =
        ::write(fd, frame.data() + written, frame.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      ::unlink(temp_path.c_str());
      errno = saved;
      fail("write to '" + temp_path + "' failed");
    }
    written += static_cast<std::size_t>(n);
  }

  // Data must be stable before any name points at it; fsync before
  // rename is the whole crash-consistency argument.
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    ::unlink(temp_path.c_str());
    errno = saved;
    fail("fsync of '" + temp_path + "' failed");
  }
  if (::close(fd) != 0) {
    const int saved = errno;
    ::unlink(temp_path.c_str());
    errno = saved;
    fail("close of '" + temp_path + "' failed");
  }
  if (::rename(temp_path.c_str(), final_path.c_str()) != 0) {
    const int saved = errno;
    ::unlink(temp_path.c_str());
    errno = saved;
    fail("rename to '" + final_path + "' failed");
  }
  sync_directory(dir);
}

void sync_directory(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) fail("cannot open directory '" + dir + "'");
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail("fsync of directory '" + dir + "' failed");
  }
  ::close(fd);
}

#else  // !TR_JOURNAL_POSIX

// Portability fallback (the server subsystem is UNIX-only, but the
// journal is part of the core library): plain buffered writes without
// durability barriers. Crash-atomicity degrades to the checksum — a
// torn entry is still *detected*, it just becomes more likely.
void write_entry(const std::string& dir, const std::string& name,
                 std::string_view payload) {
  require(name.find('/') == std::string::npos,
          "journal: entry name '" + name + "' must not contain '/'");
  std::string frame;
  frame.reserve(kHeaderBytes + payload.size());
  frame.append(kMagic, sizeof(kMagic));
  put_u32(frame, kFrameVersion);
  put_u64(frame, payload.size());
  put_u64(frame, fnv1a64(payload));
  frame.append(payload);
  const std::string final_path = dir + "/" + name;
  std::ofstream out(final_path, std::ios::binary | std::ios::trunc);
  out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  out.close();
  if (!out.good()) {
    throw Error("journal: write to '" + final_path + "' failed",
                ErrorCode::resource);
  }
}

void sync_directory(const std::string&) {}

#endif  // TR_JOURNAL_POSIX

}  // namespace tr::util::journal
