#pragma once
// Cooperative cancellation and deadlines (DESIGN.md Sec. 12.3).
//
// A CancellationToken is a cheap copyable handle to shared cancellation
// state. Long-running loops poll it at natural checkpoints (per gate
// decision in the optimizer, every few thousand events in the
// simulator, per replication in monte_carlo) and abandon the work unit
// by throwing Cancelled. Cancellation is all-or-nothing at the
// containment boundary: a cancelled circuit reports `cancelled` and no
// numbers — never a partially optimized result.
//
// The default-constructed token is inert: valid() is false and every
// check is a no-op, so call sites can poll unconditionally (hot loops
// hoist `valid()` out and skip the poll entirely, keeping the checks
// free when no deadline is set).
//
// Deadline semantics are latching: once the deadline passes (or
// request_cancel() is called), should_cancel() stays true forever, so
// every subsequent checkpoint in the same run agrees — the first
// checkpoint past the deadline cancels, nothing downstream can
// "un-cancel" and produce partial results.

#include <atomic>
#include <chrono>
#include <memory>
#include <string>

#include "util/error.hpp"

namespace tr::util {

/// Thrown by CancellationToken::check when cancellation was requested
/// or the deadline passed. Carries ErrorCode::cancelled; the message is
/// deterministic (no timestamps) so cancelled-circuit reports are
/// byte-stable.
class Cancelled : public Error {
public:
  explicit Cancelled(const std::string& what_arg)
      : Error(what_arg, ErrorCode::cancelled) {}
};

class CancellationToken {
public:
  /// Inert token: valid() is false, checks never fire.
  CancellationToken() = default;

  /// A live token with no deadline; cancels only via request_cancel().
  static CancellationToken cancellable();

  /// A live token whose deadline is `ms` milliseconds from now
  /// (steady clock). `ms <= 0` means already expired.
  static CancellationToken with_deadline_ms(double ms);

  /// Whether this token can ever cancel. Hot loops hoist this.
  bool valid() const noexcept { return state_ != nullptr; }

  /// Requests cancellation (thread-safe, idempotent).
  void request_cancel() const noexcept;

  /// Polls: true once cancellation was requested or the deadline
  /// passed. Latches — never reverts to false.
  bool should_cancel() const noexcept;

  /// Throws Cancelled("<what> cancelled") when should_cancel().
  void check(const char* what) const {
    if (state_ != nullptr && should_cancel()) {
      throw Cancelled(std::string(what) + " cancelled");
    }
  }

private:
  struct State {
    std::atomic<bool> cancelled{false};
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
  };

  std::shared_ptr<State> state_;
};

}  // namespace tr::util
