#pragma once
// Deterministic pseudo-random number generation.
//
// Every stochastic component of the library (input-process generation,
// scenario sampling, synthetic benchmark generation) takes an explicit
// 64-bit seed and derives all randomness from an Rng instance, so that
// every experiment in the paper reproduction is bit-reproducible.
//
// The generator is xoshiro256++ (Blackman & Vigna), which is small, fast
// and has no measurable bias in the statistics this library consumes.

#include <array>
#include <cstddef>
#include <cstdint>

namespace tr {

/// xoshiro256++ pseudo-random generator with distribution helpers.
class Rng {
public:
  using result_type = std::uint64_t;

  /// Seeds the generator via splitmix64 so that nearby seeds produce
  /// uncorrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-seeds in place (same expansion as the constructor).
  void reseed(std::uint64_t seed);

  /// Raw 64 uniformly distributed bits.
  std::uint64_t next_u64();

  /// UniformInt in [0, bound) without modulo bias. `bound` must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli trial with probability `p` of returning true.
  bool bernoulli(double p);

  /// Exponentially distributed sample with the given rate (mean 1/rate).
  /// Used for the paper's exponential inter-transition times.
  double exponential(double rate);

  /// Fisher–Yates shuffle of [first, last).
  template <typename It>
  void shuffle(It first, It last) {
    const auto n = static_cast<std::uint64_t>(last - first);
    for (std::uint64_t i = n; i > 1; --i) {
      const auto j = next_below(i);
      using std::swap;
      swap(first[i - 1], first[j]);
    }
  }

  /// A child generator with an independent stream, for spawning
  /// per-component RNGs from one master seed.
  Rng split();

  /// Derives the seed of stream `stream` from a master seed, stateless:
  /// derive_stream(s, k) is a fixed function of (s, k), so the k-th
  /// Monte-Carlo replicate gets the same stream no matter which worker
  /// thread runs it or in which order. Distinct (seed, stream) pairs map
  /// to uncorrelated seeds (double splitmix64 mixing), and stream 0 is
  /// decorrelated from Rng(seed) itself.
  static std::uint64_t derive_stream(std::uint64_t seed, std::uint64_t stream);

  /// Batch fan-out of derive_stream: fills out[i] = derive_stream(seed,
  /// first_stream + i) for i in [0, count) — the bit-parallel simulation
  /// lane seeds its 64 per-lane streams with one call, sharing the
  /// seed-side mixing round across the batch.
  static void derive_streams(std::uint64_t seed, std::uint64_t first_stream,
                             std::uint64_t* out, std::size_t count);

  // UniformRandomBitGenerator interface (usable with <random> adaptors).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace tr
