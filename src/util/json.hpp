#pragma once
// A minimal streaming JSON writer + strict recursive-descent parser for
// the machine-readable reports the batch driver emits and the requests
// the optimization server accepts (DESIGN.md Sec. 9.3, Sec. 13.2).
//
// Hand-rolled on purpose: the container image carries no JSON library,
// and the golden-file regression layer needs *byte-stable* output — the
// writer therefore fixes every formatting decision (2-space indentation,
// one key per line, no trailing whitespace) and renders doubles with the
// shortest representation that round-trips to the same IEEE-754 value
// (std::to_chars), so equal numbers always serialise to equal bytes.
//
// Non-finite doubles are rendered as `null` by contract: JSON has no
// nan/inf literals, and a server must never stream invalid JSON to a
// client. Report producers keep their rate fields finite by guarding
// zero-elapsed divisions (sim_engine, monte_carlo, percent_reduction),
// so a `null` in a numeric field marks a producer bug — visible, but
// still parseable by every client.
//
// Usage is push-style and validated with assertions, not a DOM:
//
//   JsonWriter w(out);
//   w.begin_object();
//   w.key("name"); w.value("alu2");
//   w.key("gates"); w.value(401);
//   w.key("circuits"); w.begin_array();
//   ... w.end_array();
//   w.end_object();  // emits the final newline

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tr::util {

/// Renders one double as the shortest decimal string that parses back to
/// the identical IEEE-754 value. Non-finite values (which valid reports
/// never contain — see the producer audit above) render as null.
std::string json_double(double value);

/// Escapes a string body per RFC 8259 (quotes, backslash, control chars).
std::string json_escape(std::string_view text);

class JsonWriter {
public:
  /// Writes to `out`; the stream must outlive the writer.
  explicit JsonWriter(std::ostream& out);

  /// Containers. end_object / end_array close the innermost container;
  /// closing the outermost container emits a trailing newline.
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Key of the next value; only valid directly inside an object.
  void key(std::string_view name);

  /// Scalars.
  void value(std::string_view text);
  void value(const char* text) { value(std::string_view(text)); }
  void value(double number);
  void value(std::int64_t number);
  void value(std::uint64_t number);
  void value(int number) { value(static_cast<std::int64_t>(number)); }
  void value(bool flag);
  void null_value();

private:
  enum class Frame { object, array };

  void prepare_value();  ///< comma/newline/indent bookkeeping before a value
  void write_indent();

  std::ostream* out_;
  std::vector<Frame> stack_;
  std::vector<bool> has_entries_;  ///< per frame: wrote at least one entry
  bool key_pending_ = false;
};

/// One parsed JSON value (the server's request-side DOM). Numbers keep
/// both the double rendering and, when the lexeme was integral and fits,
/// the exact 64-bit value — a request seed of 2^63 must not round-trip
/// through a double. Object member order is preserved.
struct JsonValue {
  enum class Kind : std::uint8_t { null, boolean, number, string, array, object };

  Kind kind = Kind::null;
  bool boolean = false;
  double number = 0.0;      ///< always set for numbers
  std::int64_t i64 = 0;     ///< exact value when has_i64
  std::uint64_t u64 = 0;    ///< exact value when has_u64
  bool has_i64 = false;     ///< lexeme was integral and fits int64
  bool has_u64 = false;     ///< lexeme was integral, non-negative, fits uint64
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const noexcept { return kind == Kind::null; }

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const noexcept;

  /// Typed accessors; throw tr::Error (invalid_argument) naming `what`
  /// on a kind/range mismatch, so request parsing reports the field.
  bool as_bool(const std::string& what) const;
  double as_double(const std::string& what) const;
  std::int64_t as_i64(const std::string& what) const;
  std::uint64_t as_u64(const std::string& what) const;
  const std::string& as_string(const std::string& what) const;
};

/// Parses one complete JSON document (RFC 8259: objects, arrays,
/// strings with full \uXXXX escapes incl. surrogate pairs, numbers,
/// true/false/null). Strict by design — the wire protocol feeds it
/// untrusted bytes: trailing content, duplicate object keys, unescaped
/// control characters and documents nested deeper than 64 levels are
/// all rejected with tr::Error (ErrorCode::parse, "json: offset N: ...").
/// JSON has no nan/inf literals, so parsed numbers are always finite.
JsonValue json_parse(std::string_view text);

}  // namespace tr::util
