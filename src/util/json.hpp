#pragma once
// A minimal streaming JSON writer for the machine-readable reports the
// batch driver emits (DESIGN.md Sec. 9.3).
//
// Hand-rolled on purpose: the container image carries no JSON library,
// and the golden-file regression layer needs *byte-stable* output — the
// writer therefore fixes every formatting decision (2-space indentation,
// one key per line, no trailing whitespace) and renders doubles with the
// shortest representation that round-trips to the same IEEE-754 value
// (std::to_chars), so equal numbers always serialise to equal bytes.
//
// Usage is push-style and validated with assertions, not a DOM:
//
//   JsonWriter w(out);
//   w.begin_object();
//   w.key("name"); w.value("alu2");
//   w.key("gates"); w.value(401);
//   w.key("circuits"); w.begin_array();
//   ... w.end_array();
//   w.end_object();  // emits the final newline

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace tr::util {

/// Renders one double as the shortest decimal string that parses back to
/// the identical IEEE-754 value. Non-finite values (which valid reports
/// never contain) are rendered as null.
std::string json_double(double value);

/// Escapes a string body per RFC 8259 (quotes, backslash, control chars).
std::string json_escape(std::string_view text);

class JsonWriter {
public:
  /// Writes to `out`; the stream must outlive the writer.
  explicit JsonWriter(std::ostream& out);

  /// Containers. end_object / end_array close the innermost container;
  /// closing the outermost container emits a trailing newline.
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Key of the next value; only valid directly inside an object.
  void key(std::string_view name);

  /// Scalars.
  void value(std::string_view text);
  void value(const char* text) { value(std::string_view(text)); }
  void value(double number);
  void value(std::int64_t number);
  void value(std::uint64_t number);
  void value(int number) { value(static_cast<std::int64_t>(number)); }
  void value(bool flag);
  void null_value();

private:
  enum class Frame { object, array };

  void prepare_value();  ///< comma/newline/indent bookkeeping before a value
  void write_indent();

  std::ostream* out_;
  std::vector<Frame> stack_;
  std::vector<bool> has_entries_;  ///< per frame: wrote at least one entry
  bool key_pending_ = false;
};

}  // namespace tr::util
