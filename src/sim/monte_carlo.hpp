#pragma once
// Replicated Monte-Carlo simulation with confidence intervals
// (DESIGN.md Sec. 8.2).
//
// N independent replications of a SimEngine run across a
// util::ThreadPool; replicate k is driven by the seed stream
// Rng::derive_stream(master_seed, k), and the Welford reduction into the
// summary always happens in replicate-index order, so a SimSummary is
// bit-identical for 1 and N worker threads. An optional early-stop mode
// keeps adding fixed-size batches of replications until the 95%
// confidence interval of the total energy is tighter than a target
// relative error (batch size is an option, never the thread count, to
// keep the stopping decision deterministic).
//
// Each worker thread owns one ReplicationScratch reused across all the
// replications it executes (and across monte_carlo calls on the same
// pool), so steady-state replication allocates nothing; result slots are
// likewise recycled batch over batch (DESIGN.md Sec. 10.2). Only the
// wall-clock throughput diagnostics of the summary depend on this —
// every estimate is a pure function of the options.

#include <cstdint>
#include <map>
#include <vector>

#include "sim/sim_engine.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace tr::sim {

/// Replication packing selection. `automatic` routes full 64-replicate
/// groups through the bit-parallel lane (sim/bitsim.hpp) whenever the
/// engine supports it (zero- or unit-delay model, fast path available)
/// and the batch shape makes packing worthwhile; the explicit values pin
/// one route for differential tests (`packed` throws when the engine
/// cannot be packed). The choice never affects the estimates — packed
/// and scalar replications are bit-identical replicate by replicate —
/// only wall time.
enum class PackingMode : std::uint8_t { automatic, packed, scalar };

struct MonteCarloOptions {
  /// Per-replication simulation options; `sim.seed` is the master seed
  /// every replicate stream derives from.
  SimOptions sim;
  /// Replication count in fixed mode (target_rel_ci == 0); the size of
  /// the first batch in early-stop mode.
  int replications = 16;
  /// Worker threads; <= 0 selects one per hardware thread. Never affects
  /// the summary values, only wall time.
  int threads = 0;
  /// > 0 enables early stop: replicate until the energy estimate's 95%
  /// CI half-width is <= target_rel_ci * |mean| (or max_replications).
  double target_rel_ci = 0.0;
  /// Replicates added per early-stop round after the first batch.
  int batch_size = 8;
  /// Hard cap on replications in early-stop mode.
  int max_replications = 256;
  /// Bit-parallel replication routing (see PackingMode).
  PackingMode packing = PackingMode::automatic;
};

/// Mean/spread of one net's observed statistics across replications.
struct NetEstimate {
  Estimate prob;
  Estimate density;
};

/// Streaming (Welford) statistics over N independent replications.
struct SimSummary {
  Estimate energy;                ///< total switching energy per window [J]
  Estimate power;                 ///< [W]
  Estimate output_node_energy;    ///< [J]
  Estimate internal_node_energy;  ///< [J]
  Estimate pi_energy;             ///< [J]
  Estimate gate_energy;           ///< energy minus PI share, per window [J]
  std::vector<Estimate> per_gate_energy;  ///< indexed by GateId [J]
  /// Output-node share of per_gate_energy, the simulated side of the
  /// exact output-node model bridge (DESIGN.md Sec. 2).
  std::vector<Estimate> per_gate_output_energy;
  std::vector<NetEstimate> nets;          ///< indexed by NetId

  std::size_t replications = 0;
  /// Replications that hit max_events; any non-zero count means the
  /// estimates mix complete and partial windows — consumers that need a
  /// complete window (the differential validation suite) must fail.
  std::size_t truncated_replications = 0;
  std::uint64_t total_events = 0;
  double measure_time = 0.0;  ///< per-replication window [s]
  /// Early-stop mode only: the target was met before max_replications.
  bool target_reached = false;
  /// Per-replicate total energy, in replicate order [J] — the raw sample
  /// behind `energy`, kept for paired comparisons and diagnostics.
  std::vector<double> replicate_energy;

  // Throughput diagnostics (DESIGN.md Sec. 10.4): wall-clock figures,
  // excluded from the determinism contract (every estimate above is a
  // pure function of the options; these depend on machine and threads).
  double elapsed_seconds = 0.0;        ///< wall time of the whole call [s]
  double events_per_sec = 0.0;         ///< total_events / elapsed_seconds
  double replications_per_sec = 0.0;   ///< replications / elapsed_seconds
  /// Largest ReplicationScratch footprint any replicate reported.
  std::size_t scratch_high_water_bytes = 0;
};

/// Runs the replications on `pool` (or a private pool when null).
SimSummary monte_carlo(const SimEngine& engine,
                       const MonteCarloOptions& options,
                       util::ThreadPool* pool = nullptr);

/// Convenience: builds the engine and runs.
SimSummary monte_carlo(const netlist::Netlist& netlist,
                       const PiStatsTable& pi_stats,
                       const celllib::Tech& tech,
                       const MonteCarloOptions& options);

/// Convenience overload over the legacy map boundary.
SimSummary monte_carlo(
    const netlist::Netlist& netlist,
    const std::map<netlist::NetId, boolfn::SignalStats>& pi_stats,
    const celllib::Tech& tech, const MonteCarloOptions& options);

}  // namespace tr::sim
