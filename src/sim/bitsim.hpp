#pragma once
// Bit-parallel Monte-Carlo simulation lane (DESIGN.md Sec. 11).
//
// Runs 64 independent replications of one SimEngine at once: every net,
// gate input pin, internal stack node and pending-commit flag holds a
// 64-wide uint64_t whose bit k is replication lane k's value. Gates are
// evaluated for all lanes per visit through the word-parallel Shannon
// kernel (boolfn/word_eval.hpp) over support-compacted single-word truth
// tables, and per-lane transition/energy accounting is recovered from
// the XOR change masks (one bit-scan per changed lane).
//
// The lane is exact, not approximate: extract_lane(k) reconstructs a
// scalar-shaped SimResult that is field-identical to
// SimEngine::run_reference(lane_seeds[k]) in every non-diagnostic field
// (tests/test_bitsim_differential.cpp pins all 64 lanes). That works
// because the packed loop replays, per lane, the exact event sequence of
// the scalar loop:
//
//  * Rounds. Each round advances every active lane by exactly one PI
//    toggle plus its full cascade. Lanes toggling the *same* PI in a
//    round share the word flip and the fanout arc visits; lanes toggling
//    different PIs only share gate-table reads. The per-lane next-toggle
//    draw happens before any state mutation (the scalar stream position
//    is the same — nothing draws between a toggle's pop and its
//    reschedule), so the round can check that the lane's next event
//    falls strictly after this toggle's cascade horizon.
//  * Cascades. Within a round, scheduled commits drain from a shared
//    (step, level, seq) heap — step counts uniform-delay hops from the
//    toggle, level is the delta-cycle levelization rank, seq a strictly
//    increasing schedule counter — which realises, for each lane, the
//    scalar scheduler's exact (time, level, seq) pop order. Per-lane
//    commit times are chain-added (cur_time += delta per hop), matching
//    the scalar loop's `now + delay` floating-point computation exactly.
//  * Deferral. A lane whose next toggle lands inside the cascade horizon
//    (possible under unit delay, or a zero-gap exponential draw) cannot
//    be packed round-wise; it is removed from the packed run *before any
//    of its state mutates* and rerun through the scalar fast path with
//    the same seed. Still exact, just not packed; deferral is
//    deterministic in the seeds.
//
// Only the zero- and unit-delay models are packable (uniform per-arc
// delay is what makes the hop count a complete time order); Elmore lanes
// stay on the PR 5 scalar scheduler. sim/monte_carlo.cpp routes full
// 64-replicate groups here when the model permits and the results are
// bit-identical to the scalar route at the SimSummary level.

#include <array>
#include <cstdint>
#include <vector>

#include "sim/sim_engine.hpp"
#include "sim/switch_sim.hpp"
#include "util/rng.hpp"

namespace tr::sim {

/// Mutable state of one packed 64-lane run. Owned by exactly one thread
/// at a time and reusable across runs (arena capacities are kept, so
/// steady-state packed replication allocates nothing). Members are an
/// implementation detail of BitSim — public only because the runner
/// lives in bitsim.cpp and tests inspect the deferral mask.
struct BitSimScratch {
  /// Intra-round cascade queue entry: the pending commits of `gate` for
  /// the lanes in `mask`, ordered by (step, level, seq).
  struct Entry {
    std::uint32_t step = 0;   ///< uniform-delay hops from the toggle
    std::uint32_t level = 0;  ///< levelization rank of the output net
    std::uint64_t seq = 0;    ///< schedule order, strictly increasing
    std::uint32_t gate = 0;
    std::uint64_t mask = 0;   ///< lanes this entry may commit
  };

  // Packed simulation state: one 64-lane word per entity.
  std::vector<std::uint64_t> net_value;      ///< per net
  std::vector<std::uint64_t> pin_value;      ///< per gate input pin (CSR)
  std::vector<std::uint64_t> node_state;     ///< per internal node
  std::vector<std::uint64_t> pending_flag;   ///< per gate
  std::vector<std::uint64_t> pending_value;  ///< per gate
  std::vector<std::uint64_t> pending_seq;    ///< per gate x lane

  /// Per-gate overwrite tracking, stamped by round: lanes whose pending
  /// commit was rescheduled while still in flight this round. Under zero
  /// delay all of a gate's calendar entries share one level bucket and
  /// pop in seq order, so a popped entry's flagged lanes are always
  /// current unless overwritten — only overwritten lanes need the
  /// per-lane pending_seq compare.
  std::vector<std::uint64_t> ow_mask;        ///< per gate
  std::vector<std::uint64_t> ow_round;       ///< per gate
  std::vector<std::uint64_t> group_mask;     ///< per PI round toggle group

  // Per-entity per-lane accounting, indexed [entity * 64 + lane].
  std::vector<double> last_change;           ///< per net x lane
  std::vector<double> ones_time;             ///< per net x lane
  std::vector<std::uint64_t> transitions;    ///< per net x lane
  std::vector<double> per_gate_energy;       ///< per gate x lane
  std::vector<double> per_gate_output_energy;

  // Per-lane scalars.
  std::array<Rng, 64> rng;
  std::array<double, 64> energy{}, output_node_energy{},
      internal_node_energy{}, pi_energy{}, last_event_time{}, t_final{},
      cur_time{}, toggle_time{};
  std::array<std::uint64_t, 64> event_count{}, tie_counter{}, seeds{};
  std::array<std::uint32_t, 64> cur_step{};
  std::array<std::int32_t, 64> toggle_pi{};
  std::uint64_t truncated_mask = 0;
  std::uint64_t deferred_mask = 0;

  /// Per-lane pending-toggle calendar, indexed [lane * pi_count + pi]:
  /// the absolute next toggle time of that PI in that lane (+inf for a
  /// frozen input) plus its push-order tie-break.
  std::vector<double> next_toggle;
  std::vector<std::uint64_t> next_tie;

  /// Intra-round cascade calendar: one bucket per hop step (unit delay)
  /// or per levelization rank (zero delay). A pop only ever schedules
  /// into a strictly later bucket, so a forward sweep over the buckets
  /// realises the global (step, level, seq) order at append cost — no
  /// global priority queue. Zero-delay buckets are already in pop order
  /// (same level, seq = append order); unit-delay buckets get one small
  /// (level, seq) sort before processing.
  std::vector<std::vector<Entry>> cascade_slot;

  // Deferred lanes: rerun through the scalar fast path at the end of the
  // packed run; extract_lane serves them from these slots.
  std::vector<int> deferred_lane;
  std::vector<SimResult> deferred_result;
  ReplicationScratch scalar_scratch;

  /// Bytes of owned storage (capacities), the high-water figure surfaced
  /// as SimResult::scratch_bytes on extraction.
  std::size_t high_water_bytes() const noexcept;
};

/// Immutable compiled form of one SimEngine for packed execution. Built
/// once per engine (support-compacted word tables, flat fanout arcs, PI
/// process parameters) and shared by any number of concurrent runs, each
/// owning its BitSimScratch — a packed run is a pure function of its 64
/// lane seeds.
class BitSim {
public:
  static constexpr int lane_count = 64;

  /// True when `engine` can be packed: the simulation fast path is
  /// available and the resolved delay model is zero or unit.
  static bool supported(const SimEngine& engine) noexcept;

  /// Compiles the packed tables. `engine` must satisfy supported() and
  /// outlive the BitSim.
  explicit BitSim(const SimEngine& engine);

  /// Runs 64 independent replications at once, lane k driven by
  /// lane_seeds[k]. Thread-safe across distinct scratches.
  void run(const std::uint64_t* lane_seeds, BitSimScratch& scratch) const;

  /// Scalar-shaped extraction of one lane from a finished run:
  /// field-identical to SimEngine::run_reference(lane_seeds[lane]) in
  /// every non-diagnostic SimResult field. A lane that hit max_events is
  /// marked truncated individually — other lanes are unaffected.
  void extract_lane(const BitSimScratch& scratch, int lane,
                    SimResult& out) const;
  SimResult extract_lane(const BitSimScratch& scratch, int lane) const;

private:
  /// Support-compacted single-word function: `nvars` variables mapping
  /// to the gate pin offsets prog_vars_[vars_off ...], evaluated over
  /// the packed pin words via boolfn::eval_lanes.
  struct Prog {
    std::uint64_t fn = 0;
    std::uint32_t vars_off = 0;
    std::uint8_t nvars = 0;
  };
  struct NodeRec {
    Prog h, g;
    double energy = 0.0;
  };
  struct GateRec {
    Prog out;
    std::uint32_t pin_off = 0;  ///< pin-word block start (CSR)
    std::uint32_t node_begin = 0, node_end = 0;
    std::uint32_t level = 0;
    std::int32_t out_net = -1;
    double out_energy = 0.0;
  };
  struct ArcRec {
    std::uint32_t gate = 0;
    std::uint32_t pin = 0;
  };
  struct PiRec {
    std::int32_t net = -1;
    double rate_up = 0.0, rate_down = 0.0, prob = 0.0, energy = 0.0;
  };

  struct Runner;  // the packed event loop (bitsim.cpp)

  Prog compile(std::uint64_t fn, int gate_vars);
  std::uint64_t eval(const Prog& prog,
                     const std::uint64_t* pin_words) const noexcept;

  const SimEngine& engine_;
  double delta_ = 0.0;       ///< uniform commit delay; 0 = zero-delay
  double span_guard_ = 0.0;  ///< cascade time-extent bound per toggle
  std::uint32_t slot_count_ = 0;  ///< cascade calendar size: max level + 2
  std::vector<GateRec> gate_;
  std::vector<NodeRec> node_;             ///< CSR via GateRec
  std::vector<std::uint8_t> prog_vars_;   ///< Prog variable pools
  std::vector<ArcRec> arc_;               ///< fanout arcs, CSR by net
  std::vector<std::uint32_t> arc_off_;    ///< [nets + 1]
  std::vector<PiRec> pi_;                 ///< in engine pi_order
  std::vector<netlist::GateId> topo_;
};

}  // namespace tr::sim
